//===----------------------------------------------------------------------===//
///
/// \file
/// RFC 8259 JSON string escaping shared by griftd's response writer and
/// its unit tests (tests/test_jsonescape.cpp).
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_TOOLS_JSONESCAPE_H
#define GRIFT_TOOLS_JSONESCAPE_H

#include <cstdio>
#include <string>

namespace griftd {

/// RFC 8259 string escaping. Controls and DEL are \u-escaped, and the
/// output is always valid UTF-8: well-formed multi-byte sequences pass
/// through unchanged, while stray bytes (lone continuation bytes,
/// overlong or truncated sequences, surrogates — hostile ids and
/// program output can contain any of them) are escaped as \u00XX
/// instead of being copied raw into the response document.
inline std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  auto escapeByte = [&Out](unsigned char B) {
    char Buf[8];
    std::snprintf(Buf, sizeof Buf, "\\u%04x", B);
    Out += Buf;
  };
  for (size_t I = 0; I < S.size(); ++I) {
    unsigned char C = static_cast<unsigned char>(S[I]);
    switch (C) {
    case '"': Out += "\\\""; continue;
    case '\\': Out += "\\\\"; continue;
    case '\n': Out += "\\n"; continue;
    case '\t': Out += "\\t"; continue;
    case '\r': Out += "\\r"; continue;
    default: break;
    }
    if (C < 0x20 || C == 0x7F) {
      escapeByte(C);
      continue;
    }
    if (C < 0x80) {
      Out.push_back(static_cast<char>(C));
      continue;
    }
    // Multi-byte lead: validate the whole sequence before passing it on.
    // 0x80–0xC1 (continuations and overlong 2-byte leads) get Len 0.
    size_t Len = C >= 0xF0 ? 4 : C >= 0xE0 ? 3 : C >= 0xC2 ? 2 : 0;
    bool OK = Len != 0 && I + Len <= S.size();
    for (size_t J = 1; OK && J < Len; ++J)
      OK = (static_cast<unsigned char>(S[I + J]) & 0xC0) == 0x80;
    if (OK && Len > 2) {
      unsigned char C1 = static_cast<unsigned char>(S[I + 1]);
      if (C == 0xE0)
        OK = C1 >= 0xA0; // overlong 3-byte
      else if (C == 0xED)
        OK = C1 < 0xA0; // UTF-16 surrogates
      else if (C == 0xF0)
        OK = C1 >= 0x90; // overlong 4-byte
      else if (C == 0xF4)
        OK = C1 < 0x90; // above U+10FFFF
      else if (C > 0xF4)
        OK = false; // no such code point
    }
    if (OK) {
      Out.append(S, I, Len);
      I += Len - 1;
    } else {
      escapeByte(C);
    }
  }
  return Out;
}

} // namespace griftd

#endif // GRIFT_TOOLS_JSONESCAPE_H
