//===----------------------------------------------------------------------===//
///
/// \file
/// griftd — job executor over the hardened execution service, in two
/// front ends sharing one job schema (service/Protocol.h):
///
/// Batch:   griftd [options] (manifest.jsonl | -)
///
/// Reads one JSON job object per input line, streams the jobs across an
/// EnginePool, and emits one structured JSON result line per job in
/// manifest order. Hostile input is a per-job outcome, never a crash: a
/// malformed, oversized, or unknown-keyed line yields a "bad-request"
/// record and the batch keeps going.
///
/// Serve:   griftd --serve [--socket=PATH | --port=N] [options]
///
/// Runs the multi-tenant server (service/Server.h): length-prefixed
/// frames over a Unix or loopback TCP socket, per-tenant quotas, global
/// admission control, deadline propagation, and drain-on-SIGTERM. On
/// startup one JSON line announcing the bound address is printed to
/// stdout; on drain the final stats object follows, and the exit status
/// is 0.
///
/// Shared options:
///   --threads=N              worker threads (default: hardware)
///   --retries=N              max retries for transient OOM (default 2)
///   --breaker-threshold=N    consecutive resource failures that open a
///                            circuit (default 3; 0 disables)
///   --breaker-cooldown-ms=N  circuit cooldown (default 5000)
///   --no-cache               disable the per-engine compile cache
///   --gc-torture=N           FaultInjector: force GC every Nth alloc
///   --gc-minor-torture=N     FaultInjector: force a minor (nursery)
///                            GC every Nth alloc and every Nth cast
///   --fail-alloc=N           FaultInjector: fail every Nth alloc
///   --cache-dir=DIR          persistent compiled-program store (warm
///                            starts; store_* counters in stats)
///   --cache-max-bytes=N      store eviction cap (default 256 MiB)
///   --file-short-write=N     store faults: truncate the Nth entry write
///   --file-fail-fsync=N      store faults: fail the Nth fsync
///   --file-flip-bit=N        store faults: flip one bit of the Nth read
///   --file-flip-bit-index=N  which bit the flip targets (default 0)
///
/// Batch options:
///   --summary                append outcome-class counts after results
///   --summary-only           print only the summary (golden-file tests)
///   --max-line-bytes=N       per-line input bound (default 1 MiB)
///
/// Serve options:
///   --socket=PATH            Unix listener (precedence over --port)
///   --port=N                 loopback TCP listener (0 = ephemeral)
///   --queue-depth=N          ExecService queue bound (default 64)
///   --max-connections=N      concurrent connections (default 64)
///   --max-inflight=N         global admitted-request bound (default 256)
///   --max-inflight-bytes=N   global admitted-payload bound (default 64 MiB)
///   --max-request-bytes=N    per-request payload bound (default 1 MiB)
///   --write-timeout-ms=N     slow-client write bound (default 5000)
///   --default-deadline-ms=N  deadline for requests without one (30000)
///   --max-deadline-ms=N      ceiling on requested deadlines (300000)
///   --tenant-rps=F           per-tenant request rate (0 = unlimited)
///   --tenant-burst=F         request bucket depth (default 8)
///   --tenant-fuel-per-sec=F  per-tenant fuel budget (0 = unlimited)
///   --tenant-max-inflight=N  per-tenant concurrent requests
///
/// Batch exit status is the worst outcome across jobs: 0 all ok, 1
/// program error (blame/trap/compile error/bad request), 3 resource
/// exhaustion or rejection, 4 watchdog cancellation.
///
//===----------------------------------------------------------------------===//
#include "service/Protocol.h"
#include "service/Server.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include <csignal>
#include <unistd.h>

using namespace grift;
using namespace grift::service;
using namespace grift::service::protocol;

namespace {

/// The one-word outcome class used for the summary and the exit status.
std::string outcomeClass(const JobResult &R) {
  switch (R.Status) {
  case JobStatus::Done:
    return "ok";
  case JobStatus::CompileError:
    return "compile-error";
  case JobStatus::Rejected:
    return "rejected";
  case JobStatus::Failed:
    return errorKindName(R.Kind);
  }
  return "?";
}

int severity(const JobResult &R) {
  if (R.Status == JobStatus::Done)
    return 0;
  if (R.Status == JobStatus::CompileError)
    return 1;
  if (R.Status == JobStatus::Rejected)
    return 3;
  if (R.Kind == ErrorKind::Cancelled)
    return 4;
  return R.Kind == ErrorKind::Blame || R.Kind == ErrorKind::Trap ? 1 : 3;
}

void printUsage() {
  std::fprintf(stderr,
               "usage: griftd [options] (manifest.jsonl | -)\n"
               "       griftd --serve [--socket=PATH | --port=N] [options]\n"
               "run 'griftd --help' for the full option list\n");
}

void printHelp() {
  std::fprintf(
      stderr,
      "griftd — batch and server front ends over the execution service\n"
      "  batch: griftd [options] (manifest.jsonl | -)\n"
      "  serve: griftd --serve [--socket=PATH | --port=N] [options]\n"
      "shared: --threads=N --retries=N --breaker-threshold=N\n"
      "        --breaker-cooldown-ms=N --no-cache --gc-torture=N\n"
      "        --gc-minor-torture=N --fail-alloc=N\n"
      "        --cache-dir=DIR --cache-max-bytes=N (persistent compiled-\n"
      "        program store; store_* counters appear in stats)\n"
      "        --file-short-write=N --file-fail-fsync=N --file-flip-bit=N\n"
      "        --file-flip-bit-index=N (store fault injection, Nth op)\n"
      "batch:  --summary --summary-only --max-line-bytes=N\n"
      "serve:  --queue-depth=N --max-connections=N --max-inflight=N\n"
      "        --max-inflight-bytes=N --max-request-bytes=N\n"
      "        --write-timeout-ms=N --default-deadline-ms=N "
      "--max-deadline-ms=N\n"
      "        --tenant-rps=F --tenant-burst=F --tenant-fuel-per-sec=F\n"
      "        --tenant-max-inflight=N\n");
}

bool parseUint(const std::string &Arg, const char *Prefix, uint64_t &Out) {
  size_t Len = std::strlen(Prefix);
  if (Arg.compare(0, Len, Prefix) != 0)
    return false;
  char *End = nullptr;
  Out = std::strtoull(Arg.c_str() + Len, &End, 10);
  return End != Arg.c_str() + Len && *End == '\0';
}

bool parseDouble(const std::string &Arg, const char *Prefix, double &Out) {
  size_t Len = std::strlen(Prefix);
  if (Arg.compare(0, Len, Prefix) != 0)
    return false;
  char *End = nullptr;
  Out = std::strtod(Arg.c_str() + Len, &End);
  return End != Arg.c_str() + Len && *End == '\0';
}

//===----------------------------------------------------------------------===//
// Serve mode: SIGTERM/SIGINT drain via self-pipe.
//===----------------------------------------------------------------------===//

int SignalPipe[2] = {-1, -1};

void onTermSignal(int) {
  char B = 1;
  [[maybe_unused]] ssize_t N = ::write(SignalPipe[1], &B, 1);
}

int runServe(ServerConfig Config) {
  if (::pipe(SignalPipe) != 0) {
    std::perror("griftd: pipe");
    return 2;
  }
  struct sigaction SA{};
  SA.sa_handler = onTermSignal;
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);

  Server Srv(Config);
  std::string Error;
  if (!Srv.start(Error)) {
    std::fprintf(stderr, "griftd: %s\n", Error.c_str());
    return 2;
  }
  if (!Config.UnixSocketPath.empty())
    std::printf("{\"status\":\"serving\",\"socket\":\"%s\"}\n",
                Config.UnixSocketPath.c_str());
  else
    std::printf("{\"status\":\"serving\",\"port\":%u}\n",
                static_cast<unsigned>(Srv.tcpPort()));
  std::fflush(stdout);

  // Park until SIGTERM/SIGINT; the self-pipe makes the wait signal-safe.
  char B;
  while (::read(SignalPipe[0], &B, 1) < 0 && errno == EINTR)
    ;

  Srv.beginDrain();
  Srv.waitDrained();
  std::printf("%s\n", Srv.renderStats().c_str());
  return 0;
}

//===----------------------------------------------------------------------===//
// Batch mode: streaming manifest execution with hostile-input hardening.
//===----------------------------------------------------------------------===//

int runBatch(ServiceConfig Config, const std::string &ManifestPath,
             bool Summary, bool SummaryOnly, size_t MaxLineBytes) {
  std::ifstream FileIn;
  std::istream *In = &std::cin;
  if (ManifestPath != "-") {
    FileIn.open(ManifestPath);
    if (!FileIn) {
      std::fprintf(stderr, "griftd: cannot open '%s'\n", ManifestPath.c_str());
      return 2;
    }
    In = &FileIn;
  }

  // One output slot per manifest line, in manifest order: either a
  // pending future or a pre-rendered bad-request record. Slots drain
  // from the front whenever the window fills, so arbitrarily long
  // manifests stream in bounded memory.
  struct Slot {
    std::future<JobResult> F;
    bool HasJob = false;
    std::string BadLine; ///< rendered record when !HasJob
  };
  std::deque<Slot> Window;
  constexpr size_t MaxWindow = 4096;

  std::map<std::string, uint64_t> Counts;
  int Worst = 0;

  auto drainOne = [&] {
    Slot S = std::move(Window.front());
    Window.pop_front();
    if (!S.HasJob) {
      ++Counts["bad-request"];
      Worst = std::max(Worst, 1);
      if (!SummaryOnly)
        std::printf("%s\n", S.BadLine.c_str());
      return;
    }
    JobResult R = S.F.get();
    ++Counts[outcomeClass(R)];
    Worst = std::max(Worst, severity(R));
    if (!SummaryOnly)
      std::printf("%s\n", renderResult(R).c_str());
  };

  ExecService Service(Config);
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(*In, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    Slot S;
    std::string DefaultId = "job-" + std::to_string(LineNo);
    if (MaxLineBytes && Line.size() > MaxLineBytes) {
      // Report the bound without echoing the oversized payload back.
      S.BadLine = renderBadRequest(
          DefaultId,
          "line exceeds max_line_bytes (" + std::to_string(Line.size()) +
              " > " + std::to_string(MaxLineBytes) + ")",
          "too-large");
    } else {
      Request Req;
      Req.Spec.Id = DefaultId;
      std::string Error;
      std::string Reason;
      if (!parseRequest(Line, Req, Error, &Reason))
        S.BadLine = renderBadRequest(DefaultId, Error, Reason);
      else if (Req.StatsRequest)
        S.BadLine = renderBadRequest(DefaultId, "\"stats\" is not a batch job",
                                     "stats-in-batch");
      else {
        S.HasJob = true;
        S.F = Service.submit(std::move(Req.Spec));
      }
    }
    Window.push_back(std::move(S));
    while (Window.size() >= MaxWindow)
      drainOne();
  }
  while (!Window.empty())
    drainOne();

  if (Summary) {
    // Lexicographically sorted "class: count" lines — the deterministic
    // shape the CI smoke test diffs against its golden file.
    for (const auto &[Class, N] : Counts)
      std::printf("%s: %llu\n", Class.c_str(),
                  static_cast<unsigned long long>(N));
    if (!Config.CacheDir.empty()) {
      // Only with --cache-dir, so cache-less goldens are untouched.
      ServiceStats S = Service.stats();
      std::printf("store: hits=%llu misses=%llu corrupt=%llu evicted=%llu\n",
                  static_cast<unsigned long long>(S.StoreHits),
                  static_cast<unsigned long long>(S.StoreMisses),
                  static_cast<unsigned long long>(S.StoreCorrupt),
                  static_cast<unsigned long long>(S.StoreEvicted));
    }
  }
  return Worst;
}

} // namespace

int main(int Argc, char **Argv) {
  ServerConfig Server;
  ServiceConfig &Exec = Server.Exec;
  bool Serve = false;
  bool Summary = false;
  bool SummaryOnly = false;
  size_t MaxLineBytes = 1u << 20;
  bool QueueDepthSet = false;
  std::string ManifestPath;
  uint64_t Tmp = 0;
  double TmpD = 0;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (parseUint(Arg, "--threads=", Tmp)) {
      Exec.Threads = static_cast<unsigned>(Tmp);
    } else if (parseUint(Arg, "--retries=", Tmp)) {
      Exec.Retry.MaxRetries = static_cast<uint32_t>(Tmp);
    } else if (parseUint(Arg, "--breaker-threshold=", Tmp)) {
      Exec.Breaker.FailureThreshold = static_cast<uint32_t>(Tmp);
    } else if (parseUint(Arg, "--breaker-cooldown-ms=", Tmp)) {
      Exec.Breaker.CooldownNanos = static_cast<int64_t>(Tmp) * 1000000;
    } else if (parseUint(Arg, "--gc-torture=", Tmp)) {
      Exec.GCTorturePeriod = Tmp;
    } else if (parseUint(Arg, "--gc-minor-torture=", Tmp)) {
      Exec.MinorGCTorturePeriod = Tmp;
    } else if (parseUint(Arg, "--fail-alloc=", Tmp)) {
      Exec.FailAllocPeriod = Tmp;
    } else if (Arg.rfind("--cache-dir=", 0) == 0) {
      Exec.CacheDir = Arg.substr(12);
    } else if (parseUint(Arg, "--cache-max-bytes=", Tmp)) {
      Exec.CacheMaxBytes = Tmp;
    } else if (parseUint(Arg, "--file-short-write=", Tmp)) {
      Exec.FileShortWriteAt = Tmp;
    } else if (parseUint(Arg, "--file-fail-fsync=", Tmp)) {
      Exec.FileFailFsyncAt = Tmp;
    } else if (parseUint(Arg, "--file-flip-bit=", Tmp)) {
      Exec.FileFlipReadBitAt = Tmp;
    } else if (parseUint(Arg, "--file-flip-bit-index=", Tmp)) {
      Exec.FileFlipReadBitIndex = Tmp;
    } else if (Arg == "--no-cache") {
      Exec.CompileCache = false;
    } else if (Arg == "--serve") {
      Serve = true;
    } else if (Arg.rfind("--socket=", 0) == 0) {
      Server.UnixSocketPath = Arg.substr(9);
    } else if (parseUint(Arg, "--port=", Tmp)) {
      Server.TcpPort = static_cast<uint16_t>(Tmp);
    } else if (parseUint(Arg, "--queue-depth=", Tmp)) {
      Exec.MaxQueueDepth = static_cast<size_t>(Tmp);
      QueueDepthSet = true;
    } else if (parseUint(Arg, "--max-connections=", Tmp)) {
      Server.MaxConnections = static_cast<unsigned>(Tmp);
    } else if (parseUint(Arg, "--max-inflight=", Tmp)) {
      Server.Admission.MaxInflight = static_cast<uint32_t>(Tmp);
    } else if (parseUint(Arg, "--max-inflight-bytes=", Tmp)) {
      Server.Admission.MaxInflightBytes = static_cast<size_t>(Tmp);
    } else if (parseUint(Arg, "--max-request-bytes=", Tmp)) {
      Server.MaxRequestBytes = static_cast<size_t>(Tmp);
    } else if (parseUint(Arg, "--write-timeout-ms=", Tmp)) {
      Server.WriteTimeoutNanos = static_cast<int64_t>(Tmp) * 1000000;
    } else if (parseUint(Arg, "--default-deadline-ms=", Tmp)) {
      Server.DefaultDeadlineNanos = static_cast<int64_t>(Tmp) * 1000000;
    } else if (parseUint(Arg, "--max-deadline-ms=", Tmp)) {
      Server.MaxDeadlineNanos = static_cast<int64_t>(Tmp) * 1000000;
    } else if (parseDouble(Arg, "--tenant-rps=", TmpD)) {
      Server.Quota.RequestsPerSec = TmpD;
    } else if (parseDouble(Arg, "--tenant-burst=", TmpD)) {
      Server.Quota.BurstRequests = TmpD;
    } else if (parseDouble(Arg, "--tenant-fuel-per-sec=", TmpD)) {
      Server.Quota.FuelPerSec = TmpD;
    } else if (parseUint(Arg, "--tenant-max-inflight=", Tmp)) {
      Server.Quota.MaxInflight = static_cast<uint32_t>(Tmp);
    } else if (parseUint(Arg, "--max-line-bytes=", Tmp)) {
      MaxLineBytes = static_cast<size_t>(Tmp);
    } else if (Arg == "--summary") {
      Summary = true;
    } else if (Arg == "--summary-only") {
      Summary = SummaryOnly = true;
    } else if (Arg == "--help" || Arg == "-h") {
      printHelp();
      return 0;
    } else if (Arg.size() > 1 && Arg[0] == '-' && Arg != "-") {
      std::fprintf(stderr, "griftd: unknown option '%s'\n", Arg.c_str());
      printUsage();
      return 2;
    } else {
      ManifestPath = Arg;
    }
  }

  if (Serve) {
    // A server must never queue unboundedly; apply the default bound
    // only here so batch mode keeps enqueueing whole manifests.
    if (!QueueDepthSet)
      Exec.MaxQueueDepth = 64;
    return runServe(std::move(Server));
  }
  if (ManifestPath.empty()) {
    printUsage();
    return 2;
  }
  return runBatch(Exec, ManifestPath, Summary, SummaryOnly, MaxLineBytes);
}
