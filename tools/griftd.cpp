//===----------------------------------------------------------------------===//
///
/// \file
/// griftd — batch job executor over the hardened execution service.
///
///   griftd [options] (manifest.jsonl | -)
///
/// Reads one JSON job object per input line and fans the jobs across an
/// EnginePool, emitting one structured JSON result line per job in
/// manifest order. Job fields (all but "source" optional):
///
///   {"id": "j1", "source": "(+ 1 2)", "mode": "coercions",
///    "input": "", "optimize": false,
///    "max_steps": 0, "max_heap": 0, "max_depth": 0, "max_wall_ms": 0,
///    "deadline_ms": 0}
///
/// Options:
///   --threads=N              worker threads (default: hardware)
///   --retries=N              max retries for transient OOM (default 2)
///   --breaker-threshold=N    consecutive resource failures that open a
///                            circuit (default 3; 0 disables)
///   --breaker-cooldown-ms=N  circuit cooldown (default 5000)
///   --no-cache               disable the per-engine compile cache
///   --summary                append ErrorKind counts after the results
///   --summary-only           print only the summary (golden-file tests)
///
/// Exit status is the worst outcome across jobs: 0 all ok, 1 program
/// error (blame/trap/compile error), 3 resource exhaustion or circuit
/// rejection, 4 watchdog cancellation.
///
//===----------------------------------------------------------------------===//
#include "service/ExecService.h"

#include "JsonEscape.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace grift;
using namespace grift::service;
using griftd::jsonEscape;

namespace {

//===----------------------------------------------------------------------===//
// Minimal JSON (flat objects of string/number/bool — exactly the job
// manifest shape; no arrays, no nesting).
//===----------------------------------------------------------------------===//

struct JsonValue {
  enum Kind { Str, Num, Bool } K = Str;
  std::string S;
  double N = 0;
  bool B = false;
};

class JsonLineParser {
public:
  explicit JsonLineParser(const std::string &Text) : Text(Text) {}

  /// Parses {"key": value, ...} into \p Out; false + Error on malformed
  /// input.
  bool parse(std::map<std::string, JsonValue> &Out) {
    skipWS();
    if (!eat('{'))
      return fail("expected '{'");
    skipWS();
    if (eat('}'))
      return true;
    for (;;) {
      skipWS();
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWS();
      if (!eat(':'))
        return fail("expected ':'");
      skipWS();
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out[Key] = std::move(V);
      skipWS();
      if (eat(','))
        continue;
      if (eat('}'))
        return true;
      return fail("expected ',' or '}'");
    }
  }

  std::string Error;

private:
  const std::string &Text;
  size_t Pos = 0;

  bool fail(const char *Why) {
    Error = std::string(Why) + " at offset " + std::to_string(Pos);
    return false;
  }
  void skipWS() {
    while (Pos < Text.size() && std::isspace(static_cast<unsigned char>(
                                    Text[Pos])))
      ++Pos;
  }
  bool eat(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool parseValue(JsonValue &V) {
    if (Pos >= Text.size())
      return fail("unexpected end");
    char C = Text[Pos];
    if (C == '"') {
      V.K = JsonValue::Str;
      return parseString(V.S);
    }
    if (Text.compare(Pos, 4, "true") == 0) {
      V.K = JsonValue::Bool;
      V.B = true;
      Pos += 4;
      return true;
    }
    if (Text.compare(Pos, 5, "false") == 0) {
      V.K = JsonValue::Bool;
      V.B = false;
      Pos += 5;
      return true;
    }
    if (Text.compare(Pos, 4, "null") == 0) {
      V.K = JsonValue::Str; // null reads as the empty string
      Pos += 4;
      return true;
    }
    // Number.
    size_t Start = Pos;
    if (C == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected a JSON value");
    V.K = JsonValue::Num;
    V.N = std::strtod(Text.c_str() + Start, nullptr);
    return true;
  }

  bool parseString(std::string &Out) {
    if (!eat('"'))
      return fail("expected '\"'");
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= Text.size())
        return fail("dangling escape");
      char E = Text[Pos++];
      switch (E) {
      case '"': Out.push_back('"'); break;
      case '\\': Out.push_back('\\'); break;
      case '/': Out.push_back('/'); break;
      case 'n': Out.push_back('\n'); break;
      case 't': Out.push_back('\t'); break;
      case 'r': Out.push_back('\r'); break;
      case 'b': Out.push_back('\b'); break;
      case 'f': Out.push_back('\f'); break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("short \\u escape");
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= H - '0';
          else if (H >= 'a' && H <= 'f')
            Code |= H - 'a' + 10;
          else if (H >= 'A' && H <= 'F')
            Code |= H - 'A' + 10;
          else
            return fail("bad \\u escape");
        }
        // Manifest sources are ASCII; encode anything else as UTF-8.
        if (Code < 0x80) {
          Out.push_back(static_cast<char>(Code));
        } else if (Code < 0x800) {
          Out.push_back(static_cast<char>(0xC0 | (Code >> 6)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        } else {
          Out.push_back(static_cast<char>(0xE0 | (Code >> 12)));
          Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }
};

bool parseMode(const std::string &Name, CastMode &Mode) {
  if (Name == "coercions")
    Mode = CastMode::Coercions;
  else if (Name == "type-based")
    Mode = CastMode::TypeBased;
  else if (Name == "static")
    Mode = CastMode::Static;
  else if (Name == "monotonic")
    Mode = CastMode::Monotonic;
  else
    return false;
  return true;
}

/// The one-word outcome class used for the summary and the exit status.
std::string outcomeClass(const JobResult &R) {
  switch (R.Status) {
  case JobStatus::Done:
    return "ok";
  case JobStatus::CompileError:
    return "compile-error";
  case JobStatus::Rejected:
    return "rejected";
  case JobStatus::Failed:
    return errorKindName(R.Kind);
  }
  return "?";
}

int severity(const JobResult &R) {
  if (R.Status == JobStatus::Done)
    return 0;
  if (R.Status == JobStatus::CompileError)
    return 1;
  if (R.Status == JobStatus::Rejected)
    return 3;
  if (R.Kind == ErrorKind::Cancelled)
    return 4;
  return R.Kind == ErrorKind::Blame || R.Kind == ErrorKind::Trap ? 1 : 3;
}

int exitCodeFor(int Severity) {
  // 0 ok < 1 program error < 3 resource < 4 cancelled: the "worst"
  // outcome wins, and 4 outranks 3 because a cancellation means the
  // watchdog had to step in — the strongest signal of a hostile job.
  return Severity;
}

void printUsage() {
  std::fprintf(stderr,
               "usage: griftd [--threads=N] [--retries=N]\n"
               "              [--breaker-threshold=N] "
               "[--breaker-cooldown-ms=N]\n"
               "              [--no-cache] [--summary] [--summary-only]\n"
               "              (manifest.jsonl | -)\n");
}

bool parseUint(const std::string &Arg, const char *Prefix, uint64_t &Out) {
  size_t Len = std::strlen(Prefix);
  if (Arg.compare(0, Len, Prefix) != 0)
    return false;
  char *End = nullptr;
  Out = std::strtoull(Arg.c_str() + Len, &End, 10);
  return End != Arg.c_str() + Len && *End == '\0';
}

} // namespace

int main(int Argc, char **Argv) {
  ServiceConfig Config;
  bool Summary = false;
  bool SummaryOnly = false;
  std::string ManifestPath;
  uint64_t Tmp = 0;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (parseUint(Arg, "--threads=", Tmp)) {
      Config.Threads = static_cast<unsigned>(Tmp);
    } else if (parseUint(Arg, "--retries=", Tmp)) {
      Config.Retry.MaxRetries = static_cast<uint32_t>(Tmp);
    } else if (parseUint(Arg, "--breaker-threshold=", Tmp)) {
      Config.Breaker.FailureThreshold = static_cast<uint32_t>(Tmp);
    } else if (parseUint(Arg, "--breaker-cooldown-ms=", Tmp)) {
      Config.Breaker.CooldownNanos = static_cast<int64_t>(Tmp) * 1000000;
    } else if (Arg == "--no-cache") {
      Config.CompileCache = false;
    } else if (Arg == "--summary") {
      Summary = true;
    } else if (Arg == "--summary-only") {
      Summary = SummaryOnly = true;
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    } else if (Arg.size() > 1 && Arg[0] == '-') {
      std::fprintf(stderr, "griftd: unknown option '%s'\n", Arg.c_str());
      printUsage();
      return 2;
    } else {
      ManifestPath = Arg;
    }
  }
  if (ManifestPath.empty()) {
    printUsage();
    return 2;
  }

  std::ifstream FileIn;
  std::istream *In = &std::cin;
  if (ManifestPath != "-") {
    FileIn.open(ManifestPath);
    if (!FileIn) {
      std::fprintf(stderr, "griftd: cannot open '%s'\n", ManifestPath.c_str());
      return 2;
    }
    In = &FileIn;
  }

  // Parse the whole manifest before starting: a malformed line is a
  // usage error, not a job failure, and should stop the batch cold.
  std::vector<JobSpec> Jobs;
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(*In, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    JsonLineParser P(Line);
    std::map<std::string, JsonValue> Obj;
    if (!P.parse(Obj)) {
      std::fprintf(stderr, "griftd: manifest line %zu: %s\n", LineNo,
                   P.Error.c_str());
      return 2;
    }
    JobSpec Spec;
    Spec.Id = "job-" + std::to_string(LineNo);
    for (const auto &[Key, V] : Obj) {
      if (Key == "id")
        Spec.Id = V.S;
      else if (Key == "source")
        Spec.Source = V.S;
      else if (Key == "input")
        Spec.Input = V.S;
      else if (Key == "mode") {
        if (!parseMode(V.S, Spec.Mode)) {
          std::fprintf(stderr, "griftd: manifest line %zu: unknown mode '%s'\n",
                       LineNo, V.S.c_str());
          return 2;
        }
      } else if (Key == "optimize")
        Spec.Optimize = V.B;
      else if (Key == "max_steps")
        Spec.Limits.MaxSteps = static_cast<uint64_t>(V.N);
      else if (Key == "max_heap")
        Spec.Limits.MaxHeapBytes = static_cast<size_t>(V.N);
      else if (Key == "max_depth")
        Spec.Limits.MaxFrames = static_cast<uint32_t>(V.N);
      else if (Key == "max_wall_ms")
        Spec.Limits.MaxWallNanos = static_cast<int64_t>(V.N * 1e6);
      else if (Key == "deadline_ms")
        Spec.DeadlineNanos = static_cast<int64_t>(V.N * 1e6);
      else {
        std::fprintf(stderr, "griftd: manifest line %zu: unknown key '%s'\n",
                     LineNo, Key.c_str());
        return 2;
      }
    }
    if (Spec.Source.empty()) {
      std::fprintf(stderr, "griftd: manifest line %zu: missing \"source\"\n",
                   LineNo);
      return 2;
    }
    Jobs.push_back(std::move(Spec));
  }

  // Fan out, then collect futures in manifest order so the output is
  // deterministic regardless of completion order.
  ExecService Service(Config);
  std::vector<std::future<JobResult>> Futures;
  Futures.reserve(Jobs.size());
  for (JobSpec &Spec : Jobs)
    Futures.push_back(Service.submit(std::move(Spec)));

  std::map<std::string, uint64_t> Counts;
  int Worst = 0;
  for (std::future<JobResult> &F : Futures) {
    JobResult R = F.get();
    ++Counts[outcomeClass(R)];
    Worst = std::max(Worst, severity(R));
    if (SummaryOnly)
      continue;
    std::ostringstream Out;
    Out << "{\"id\":\"" << jsonEscape(R.Id) << "\",\"status\":\""
        << jobStatusName(R.Status) << '"';
    if (R.Status == JobStatus::Done)
      Out << ",\"result\":\"" << jsonEscape(R.ResultText) << '"';
    if (R.Status == JobStatus::Failed)
      Out << ",\"error_kind\":\"" << errorKindName(R.Kind) << '"';
    if (R.Status != JobStatus::Done)
      Out << ",\"error\":\"" << jsonEscape(R.ErrorMessage) << '"';
    Out << ",\"attempts\":" << R.Attempts << ",\"retries\":" << R.Retries
        << ",\"cache_hit\":" << (R.CompileCacheHit ? "true" : "false")
        << ",\"wall_ms\":" << R.WallNanos / 1e6 << ",\"fuel\":" << R.FuelUsed
        << ",\"peak_heap\":" << R.PeakHeapBytes << ",\"casts\":"
        << R.Stats.CastsApplied << "}";
    std::printf("%s\n", Out.str().c_str());
  }

  if (Summary) {
    // Lexicographically sorted "class: count" lines — the deterministic
    // shape the CI smoke test diffs against its golden file.
    for (const auto &[Class, N] : Counts)
      std::printf("%s: %llu\n", Class.c_str(),
                  static_cast<unsigned long long>(N));
  }
  return exitCodeFor(Worst);
}
