//===----------------------------------------------------------------------===//
///
/// \file
/// griftload — SLO-enforcing load generator for griftd --serve.
///
///   griftload [--griftd=PATH | --socket=PATH] [options]
///
/// Drives a griftd server over its Unix socket with a deterministic mix
/// of requests across several tenants: quick bench/fuzz programs (the
/// latency workload), wedged programs under a deadline (the watchdog
/// workload), oversized and malformed frames (the hostile workload).
/// Per-request latencies are aggregated into p50/p99/p999 and emitted as
/// a grift-bench-v1 JSON document alongside the server's own shed and
/// quota counters, so tools/bench_compare.py can gate them as SLOs.
///
/// With --griftd=PATH the server is spawned, driven, SIGTERMed, and
/// required to drain and exit 0 — the overload acceptance contract in
/// one command. With --socket=PATH an already-running server is used.
///
/// Options:
///   --griftd=PATH        spawn this griftd binary with --serve
///   --socket=PATH        connect to an existing server socket
///   --server-arg=ARG     extra argument for the spawned griftd
///                        (repeatable; e.g. --server-arg=--tenant-rps=50)
///   --conns=N            concurrent client connections (default 8)
///   --requests=N         total requests (default 400)
///   --tenants=N          tenant pool size (default 4)
///   --deadline-ms=N      per-request deadline (default 2000)
///   --wedged-pct=N       percent of requests that diverge (default 10)
///   --hostile-pct=N      percent of malformed requests (default 5)
///   --seed=N             workload RNG seed (default 1)
///   --name=STR           benchmark row name (default "load/default")
///   --out=FILE           write the benchjson document here (else stdout)
///   --max-shed-rate=F    fail (exit 1) when sheds/requests exceeds F
///   --min-ok=N           fail when fewer than N requests came back ok
///
/// Exit: 0 on success, 1 on SLO violation or a server that crashed or
/// failed to drain, 2 on usage errors.
///
//===----------------------------------------------------------------------===//
#include "bench_programs/Benchmarks.h"
#include "fuzz/FuzzGen.h"
#include "grift/Grift.h"
#include "service/Protocol.h"
#include "support/Json.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace grift;
using namespace grift::service::protocol;

namespace {

const char *DivergentLoop = "(letrec ([loop (lambda () (loop))]) (loop))";

bool parseUint(const std::string &Arg, const char *Prefix, uint64_t &Out) {
  size_t Len = std::strlen(Prefix);
  if (Arg.compare(0, Len, Prefix) != 0)
    return false;
  char *End = nullptr;
  Out = std::strtoull(Arg.c_str() + Len, &End, 10);
  return End != Arg.c_str() + Len && *End == '\0';
}

//===----------------------------------------------------------------------===//
// Client connection (Unix socket, blocking, 60 s read bound).
//===----------------------------------------------------------------------===//

class Conn {
public:
  explicit Conn(const std::string &Path) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return;
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Path.c_str(), sizeof Addr.sun_path - 1);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) != 0) {
      ::close(Fd);
      Fd = -1;
      return;
    }
    timeval TV{60, 0};
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &TV, sizeof TV);
  }
  ~Conn() {
    if (Fd >= 0)
      ::close(Fd);
  }
  bool ok() const { return Fd >= 0; }

  bool sendFrame(const std::string &Payload) {
    std::string F = frame(Payload);
    size_t Sent = 0;
    while (Sent < F.size()) {
      ssize_t N = ::send(Fd, F.data() + Sent, F.size() - Sent, MSG_NOSIGNAL);
      if (N <= 0)
        return false;
      Sent += static_cast<size_t>(N);
    }
    return true;
  }

  /// One response frame; empty on error/EOF.
  std::string recvFrame() {
    std::string Header;
    char C;
    while (Header.size() < 24) {
      if (::recv(Fd, &C, 1, 0) != 1)
        return "";
      if (C == '\n')
        break;
      if (C < '0' || C > '9')
        return "";
      Header.push_back(C);
    }
    if (Header.empty())
      return "";
    size_t Len = std::stoull(Header);
    std::string Payload(Len, '\0');
    size_t Got = 0;
    while (Got < Len) {
      ssize_t N = ::recv(Fd, Payload.data() + Got, Len - Got, 0);
      if (N <= 0)
        return "";
      Got += static_cast<size_t>(N);
    }
    return Payload;
  }

private:
  int Fd = -1;
};

//===----------------------------------------------------------------------===//
// Workload
//===----------------------------------------------------------------------===//

struct QuickJob {
  std::string Source;
  std::string Input;
};

struct Workload {
  std::vector<QuickJob> Quick; ///< fast programs (latency rows)
  unsigned WedgedPct = 10;
  unsigned HostilePct = 5;
};

/// Deterministic program pool: quick arithmetic and cast-heavy snippets
/// set the latency floor, fuzz-generated structural programs exercise
/// the compiler under load, and two real suite benchmarks (small
/// inputs) add compile+run weight.
Workload buildWorkload(uint64_t Seed) {
  Workload W;
  W.Quick = {
      {"(+ 40 2)", ""},
      {"(* 6 7)", ""},
      {"(ann (ann 42 Dyn) Int)", ""},
      {"(repeat (i 0 2000) (acc : Int 0) (+ acc (ann (ann i Dyn) Int)))", ""},
      {"(vector-ref (make-vector 64 7) 63)", ""},
      {getBenchmark("tak").Source, "10 5 1"},
      {getBenchmark("quicksort").Source, "32"},
  };
  Grift G;
  RNG Gen(Seed);
  fuzz::GenOptions Opts;
  Opts.Structural = true;
  for (int I = 0; I != 8; ++I) {
    fuzz::ProgramGen P(G.types(), Gen, Opts);
    W.Quick.push_back({P.program(), ""});
  }
  return W;
}

struct Tally {
  std::mutex M;
  std::vector<int64_t> LatencyNanos; ///< completed request round trips
  uint64_t Sent = 0, Ok = 0, Failed = 0, Rejected = 0, BadRequest = 0,
           Lost = 0;
};

bool contains(const std::string &H, const std::string &N) {
  return H.find(N) != std::string::npos;
}

void worker(const std::string &Socket, const Workload &W, uint64_t Seed,
            unsigned Requests, unsigned Tenants, unsigned DeadlineMs,
            Tally &T) {
  RNG Gen(Seed);
  std::unique_ptr<Conn> C;
  auto reconnect = [&] {
    C = std::make_unique<Conn>(Socket);
    return C->ok();
  };
  for (unsigned I = 0; I != Requests; ++I) {
    if ((!C || !C->ok()) && !reconnect()) {
      std::lock_guard<std::mutex> Lock(T.M);
      T.Lost += Requests - I;
      return;
    }
    std::string Tenant = "tenant-" + std::to_string(Gen.below(Tenants));
    uint64_t Roll = Gen.below(100);
    std::string Payload;
    bool Hostile = false;
    if (Roll < W.HostilePct) {
      // Malformed JSON: must come back as a structured bad-request on
      // the same connection.
      Payload = "{\"id\": oops not json";
      Hostile = true;
    } else if (Roll < W.HostilePct + W.WedgedPct) {
      Payload = std::string("{\"tenant\":\"") + Tenant +
                "\",\"source\":\"" + DivergentLoop +
                "\",\"deadline_ms\":" +
                std::to_string(std::max(50u, DeadlineMs / 4)) + "}";
    } else {
      const QuickJob &Q = W.Quick[Gen.below(W.Quick.size())];
      Payload = std::string("{\"tenant\":\"") + Tenant +
                "\",\"source\":\"" + json::escape(Q.Source) + "\"";
      if (!Q.Input.empty())
        Payload += ",\"input\":\"" + json::escape(Q.Input) + "\"";
      Payload += ",\"deadline_ms\":" + std::to_string(DeadlineMs) + "}";
    }
    auto Start = std::chrono::steady_clock::now();
    if (!C->sendFrame(Payload)) {
      C.reset();
      std::lock_guard<std::mutex> Lock(T.M);
      T.Sent++;
      T.Lost++;
      continue;
    }
    std::string R = C->recvFrame();
    auto Nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
    std::lock_guard<std::mutex> Lock(T.M);
    T.Sent++;
    if (R.empty()) {
      T.Lost++;
      C.reset();
      continue;
    }
    if (!Hostile)
      T.LatencyNanos.push_back(Nanos);
    if (contains(R, "\"status\":\"ok\""))
      T.Ok++;
    else if (contains(R, "\"status\":\"rejected\""))
      T.Rejected++;
    else if (contains(R, "\"status\":\"bad-request\""))
      T.BadRequest++;
    else
      T.Failed++;
  }
}

int64_t percentile(std::vector<int64_t> &Sorted, double Q) {
  if (Sorted.empty())
    return 0;
  size_t Idx = static_cast<size_t>(Q * static_cast<double>(Sorted.size()));
  return Sorted[std::min(Idx, Sorted.size() - 1)];
}

/// Pulls "\"key\":<uint>" out of the server's stats object.
uint64_t statOf(const std::string &Stats, const std::string &Key) {
  size_t P = Stats.find("\"" + Key + "\":");
  if (P == std::string::npos)
    return 0;
  return std::strtoull(Stats.c_str() + P + Key.size() + 3, nullptr, 10);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string GriftdPath, SocketPath, OutPath, Name = "load/default";
  std::vector<std::string> ServerArgs;
  unsigned Conns = 8, Requests = 400, Tenants = 4, DeadlineMs = 2000;
  unsigned WedgedPct = 10, HostilePct = 5;
  uint64_t Seed = 1;
  double MaxShedRate = -1;
  uint64_t MinOk = 0;
  uint64_t Tmp = 0;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--griftd=", 0) == 0)
      GriftdPath = Arg.substr(9);
    else if (Arg.rfind("--socket=", 0) == 0)
      SocketPath = Arg.substr(9);
    else if (Arg.rfind("--server-arg=", 0) == 0)
      ServerArgs.push_back(Arg.substr(13));
    else if (Arg.rfind("--out=", 0) == 0)
      OutPath = Arg.substr(6);
    else if (Arg.rfind("--name=", 0) == 0)
      Name = Arg.substr(7);
    else if (parseUint(Arg, "--conns=", Tmp))
      Conns = static_cast<unsigned>(Tmp);
    else if (parseUint(Arg, "--requests=", Tmp))
      Requests = static_cast<unsigned>(Tmp);
    else if (parseUint(Arg, "--tenants=", Tmp))
      Tenants = std::max(1u, static_cast<unsigned>(Tmp));
    else if (parseUint(Arg, "--deadline-ms=", Tmp))
      DeadlineMs = static_cast<unsigned>(Tmp);
    else if (parseUint(Arg, "--wedged-pct=", Tmp))
      WedgedPct = static_cast<unsigned>(Tmp);
    else if (parseUint(Arg, "--hostile-pct=", Tmp))
      HostilePct = static_cast<unsigned>(Tmp);
    else if (parseUint(Arg, "--seed=", Tmp))
      Seed = Tmp;
    else if (parseUint(Arg, "--min-ok=", Tmp))
      MinOk = Tmp;
    else if (Arg.rfind("--max-shed-rate=", 0) == 0)
      MaxShedRate = std::strtod(Arg.c_str() + 16, nullptr);
    else {
      std::fprintf(stderr, "griftload: unknown option '%s'\n", Arg.c_str());
      return 2;
    }
  }
  if (GriftdPath.empty() == SocketPath.empty()) {
    std::fprintf(stderr,
                 "griftload: exactly one of --griftd= or --socket= needed\n");
    return 2;
  }

  // Spawn griftd --serve when asked, and wait for its ready line.
  pid_t Child = -1;
  int ChildOut = -1;
  if (!GriftdPath.empty()) {
    SocketPath =
        "/tmp/griftload-" + std::to_string(::getpid()) + ".sock";
    int Out[2];
    if (::pipe(Out) != 0) {
      std::perror("griftload: pipe");
      return 2;
    }
    Child = ::fork();
    if (Child < 0) {
      std::perror("griftload: fork");
      return 2;
    }
    if (Child == 0) {
      ::dup2(Out[1], STDOUT_FILENO);
      ::close(Out[0]);
      ::close(Out[1]);
      std::vector<std::string> Args = {GriftdPath, "--serve",
                                       "--socket=" + SocketPath};
      Args.insert(Args.end(), ServerArgs.begin(), ServerArgs.end());
      std::vector<char *> Argp;
      for (std::string &A : Args)
        Argp.push_back(A.data());
      Argp.push_back(nullptr);
      ::execv(GriftdPath.c_str(), Argp.data());
      std::perror("griftload: execv");
      _exit(127);
    }
    ::close(Out[1]);
    // Block until the "serving" line appears (or the child dies).
    std::string Ready;
    char C;
    while (::read(Out[0], &C, 1) == 1 && C != '\n')
      Ready.push_back(C);
    if (Ready.find("\"serving\"") == std::string::npos) {
      std::fprintf(stderr, "griftload: server failed to start: %s\n",
                   Ready.c_str());
      ::kill(Child, SIGKILL);
      return 1;
    }
    // Keep the pipe open: the server prints its final stats on drain,
    // and a closed stdout would turn that into a SIGPIPE death.
    ChildOut = Out[0];
  }

  Workload W = buildWorkload(Seed);
  W.WedgedPct = WedgedPct;
  W.HostilePct = HostilePct;

  Tally T;
  auto LoadStart = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> Threads;
    unsigned PerConn = std::max(1u, Requests / std::max(1u, Conns));
    for (unsigned I = 0; I != Conns; ++I)
      Threads.emplace_back([&, I] {
        worker(SocketPath, W, Seed * 1000003 + I, PerConn, Tenants,
               DeadlineMs, T);
      });
    for (std::thread &Th : Threads)
      Th.join();
  }
  auto LoadNanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - LoadStart)
                       .count();

  // Pull the server's own counters before shutting it down.
  std::string Stats;
  {
    Conn C(SocketPath);
    if (C.ok() && C.sendFrame("{\"stats\": true}"))
      Stats = C.recvFrame();
  }

  // SIGTERM the spawned server: it must drain and exit 0.
  bool DrainOk = true;
  if (Child > 0) {
    ::kill(Child, SIGTERM);
    // Drain the server's final stats line so its exit is not wedged on
    // a full pipe.
    char Buf[4096];
    std::string FinalStats;
    ssize_t N;
    while ((N = ::read(ChildOut, Buf, sizeof Buf)) > 0)
      FinalStats.append(Buf, static_cast<size_t>(N));
    ::close(ChildOut);
    int Status = 0;
    if (::waitpid(Child, &Status, 0) != Child || !WIFEXITED(Status) ||
        WEXITSTATUS(Status) != 0) {
      std::fprintf(stderr,
                   "griftload: server did not drain cleanly (status %d)\n",
                   Status);
      DrainOk = false;
    }
    if (Stats.empty())
      Stats = FinalStats; // fall back to the drain-time snapshot
  }

  std::sort(T.LatencyNanos.begin(), T.LatencyNanos.end());
  int64_t P50 = percentile(T.LatencyNanos, 0.50);
  int64_t P99 = percentile(T.LatencyNanos, 0.99);
  int64_t P999 = percentile(T.LatencyNanos, 0.999);
  uint64_t ShedTotal = statOf(Stats, "shed_total") + T.Rejected;
  double ShedRate =
      T.Sent ? static_cast<double>(T.Rejected) / static_cast<double>(T.Sent)
             : 0;

  std::ostringstream Json;
  Json << "{\n  \"schema\": \"grift-bench-v1\",\n  \"repeats\": 1,\n"
       << "  \"results\": [\n"
       << "    {\"name\": \"" << Name << "\", \"mode\": \"coercions\""
       << ", \"median_ns\": " << P50 << ", \"p50_ns\": " << P50
       << ", \"p99_ns\": " << P99 << ", \"p999_ns\": " << P999
       << ", \"requests\": " << T.Sent << ", \"ok\": " << T.Ok
       << ", \"failed\": " << T.Failed << ", \"rejected\": " << T.Rejected
       << ", \"bad_requests\": " << T.BadRequest << ", \"lost\": " << T.Lost
       << ", \"shed_total\": " << ShedTotal
       << ", \"shed_rate_pct\": " << static_cast<uint64_t>(ShedRate * 100)
       << ", \"quota_rejects\": " << statOf(Stats, "quota_rejects")
       << ", \"watchdog_kills\": " << statOf(Stats, "watchdog_kills")
       << ", \"deadline_expired\": " << statOf(Stats, "deadline_expired")
       << ", \"slow_client_drops\": " << statOf(Stats, "slow_client_drops")
       << ", \"store_hits\": " << statOf(Stats, "store_hits")
       << ", \"store_misses\": " << statOf(Stats, "store_misses")
       << ", \"store_corrupt\": " << statOf(Stats, "store_corrupt")
       << ", \"store_evicted\": " << statOf(Stats, "store_evicted")
       << ", \"wall_ns\": " << LoadNanos << "}\n  ]\n}\n";

  if (OutPath.empty()) {
    std::fputs(Json.str().c_str(), stdout);
  } else {
    std::ofstream OutF(OutPath);
    OutF << Json.str();
  }
  std::fprintf(stderr,
               "griftload: %llu sent, %llu ok, %llu failed, %llu rejected, "
               "%llu bad, %llu lost | p50 %.2f ms p99 %.2f ms p999 %.2f ms "
               "| shed rate %.1f%%\n",
               (unsigned long long)T.Sent, (unsigned long long)T.Ok,
               (unsigned long long)T.Failed, (unsigned long long)T.Rejected,
               (unsigned long long)T.BadRequest, (unsigned long long)T.Lost,
               P50 / 1e6, P99 / 1e6, P999 / 1e6, ShedRate * 100);

  bool SloOk = true;
  if (!DrainOk)
    SloOk = false;
  if (T.Lost > 0) {
    std::fprintf(stderr, "griftload: FAIL: %llu requests got no response\n",
                 (unsigned long long)T.Lost);
    SloOk = false;
  }
  if (MaxShedRate >= 0 && ShedRate > MaxShedRate) {
    std::fprintf(stderr, "griftload: FAIL: shed rate %.2f > %.2f\n", ShedRate,
                 MaxShedRate);
    SloOk = false;
  }
  if (T.Ok < MinOk) {
    std::fprintf(stderr, "griftload: FAIL: only %llu ok < min-ok %llu\n",
                 (unsigned long long)T.Ok, (unsigned long long)MinOk);
    SloOk = false;
  }
  return SloOk ? 0 : 1;
}
