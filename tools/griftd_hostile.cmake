# Asserts griftd's exit status over the hostile manifest is exactly 1:
# bad-request records are program-error severity — worse than ok (0),
# never resource (3) or cancelled (4), and never the abort (2) the old
# stop-the-batch behaviour produced. Invoked by ctest as
#   cmake -DGRIFTD=<path> -DMANIFEST=<path> -P griftd_hostile.cmake

execute_process(
  COMMAND ${GRIFTD} --threads=2 --summary-only ${MANIFEST}
  OUTPUT_VARIABLE SUMMARY
  ERROR_VARIABLE ERRORS
  RESULT_VARIABLE EXIT_CODE
  TIMEOUT 120
)

if(NOT EXIT_CODE EQUAL 1)
  message(FATAL_ERROR
      "griftd exited ${EXIT_CODE} on the hostile manifest, expected 1\n"
      "summary: ${SUMMARY}\nstderr: ${ERRORS}")
endif()

message(STATUS "griftd hostile manifest: exit 1, batch never aborted")
