# Asserts griftd's exit status over the hostile manifest is exactly 1:
# bad-request records are program-error severity — worse than ok (0),
# never resource (3) or cancelled (4), and never the abort (2) the old
# stop-the-batch behaviour produced. Invoked by ctest as
#   cmake -DGRIFTD=<path> -DMANIFEST=<path> -P griftd_hostile.cmake

execute_process(
  COMMAND ${GRIFTD} --threads=2 --summary ${MANIFEST}
  OUTPUT_VARIABLE OUTPUT
  ERROR_VARIABLE ERRORS
  RESULT_VARIABLE EXIT_CODE
  TIMEOUT 120
)

if(NOT EXIT_CODE EQUAL 1)
  message(FATAL_ERROR
      "griftd exited ${EXIT_CODE} on the hostile manifest, expected 1\n"
      "output: ${OUTPUT}\nstderr: ${ERRORS}")
endif()

# The garbled-mode line must be rejected as a structured bad-request with
# the machine-readable reason class, not just prose in "error".
if(NOT OUTPUT MATCHES "\"reason\":\"unknown-mode\"")
  message(FATAL_ERROR
      "garbled mode was not rejected with reason \"unknown-mode\"\n"
      "output: ${OUTPUT}")
endif()

message(STATUS "griftd hostile manifest: exit 1, batch never aborted, "
               "garbled mode rejected with unknown-mode")
