#!/usr/bin/env python3
"""Compare two benchjson documents (schema grift-bench-v1).

Usage: bench_compare.py BASELINE.json [CURRENT.json] [--tolerance 0.5]
                        [--slo NAME:FIELD<=VALUE ...]

Exit status is non-zero when

  * a benchmark's median_ns regressed by more than the tolerance
    (default 50% — generous because CI machines are noisy; the point is
    to catch the order-of-magnitude regressions that dropping an inline
    cache or un-threading the dispatch loop would cause),
  * a deterministic counter (casts, longest_chain, compositions,
    cache_hits, cache_misses, alloc_bytes, alloc_objects, alloc_by_class,
    collections) changed at all — counters do not depend on machine
    speed, so any drift means the cast semantics or the allocation
    behaviour changed and the baseline must be regenerated deliberately,
  * the CURRENT file violates a paper shape invariant (see below), or
  * an --slo gate fails (see below).

GC pause times (gc_pause_total_ns / gc_pause_max_ns) and the griftload
service-level fields (p50_ns, p99_ns, p999_ns, shed_total, shed_rate_pct,
quota_rejects, watchdog_kills, deadline_expired, slow_client_drops,
requests, ok, rejected, bad_requests, lost) are run-dependent: they are
reported alongside the medians but never fail a baseline comparison.
Counters absent from one side (older baselines) are skipped rather than
treated as drift.

SLO gates (--slo, repeatable) enforce absolute bounds on the CURRENT
rows instead of relative drift. The spec is NAME:FIELD OP VALUE where
OP is <= or >= and NAME is a substring match against the row name:

    bench_compare.py --tolerance 0.5 base.json cur.json \
        --slo 'load/soak:p999_ns<=2000000000' \
        --slo 'load/soak:shed_rate_pct<=25' \
        --slo 'load/soak:ok>=100'

A gate may also bound a field *relative to the baseline's value for the
same row*: NAME:FIELD<=K*BASELINE multiplies the baseline row's FIELD
by K to get the bound. This is how CI phrases "the generational
collector's worst pause must stay within 10x of the old baseline's"
without hard-coding machine-dependent nanosecond values:

    bench_compare.py base.json cur.json \
        --slo 'gc/ray/gen:gc_pause_max_ns<=10*BASELINE'

Relative gates need a baseline row carrying the field, so they are
rejected in single-file mode.

When only SLOs matter (a load run with no perf baseline), CURRENT may
be omitted and the gates are applied to BASELINE's rows directly:

    bench_compare.py soak.json --slo 'load/soak:lost<=0'

A gate whose NAME matches no row is an error — a silently-skipped SLO
is worse than no SLO.

Shape invariants checked on CURRENT (paper Section 4.2 / Figure 4):

  * fig4/evenodd coercions: longest proxy chain stays at 1 — space
    efficiency means composition keeps chains flat.
  * fig4/evenodd/20000 type-based: longest chain is Theta(n) (>= 1000)
    — the baseline semantics really does build the bad chains.
  * fig4/evenodd coercions: inline-cache hit rate >= 90% — the per-site
    caches are doing their job on the monomorphic hot path.

Speedups and peak-heap changes are reported but never fail the run.
"""

import argparse
import json
import math
import re
import sys

COUNTERS = ("casts", "longest_chain", "max_ret_casts", "compositions",
            "cache_hits", "cache_misses", "alloc_bytes", "alloc_objects",
            "alloc_by_class", "collections", "gc_minor_pauses",
            "gc_promoted_bytes", "remembered_set_peak")

# Run-dependent observability: reported, never enforced by the baseline
# diff (use --slo for absolute bounds on these).
REPORTED = ("gc_pause_total_ns", "gc_pause_max_ns",
            "gc_minor_pause_max_ns", "gc_pause_ratio_pct",
            "p50_ns", "p99_ns", "p999_ns",
            "shed_total", "shed_rate_pct", "quota_rejects",
            "watchdog_kills", "deadline_expired", "slow_client_drops",
            "requests", "ok", "failed", "rejected", "bad_requests",
            "lost", "wall_ns",
            "cold_compile_ns", "warm_load_ns", "warm_over_cold_pct",
            "store_hits", "store_misses", "store_corrupt", "store_evicted")

SLO_RE = re.compile(r"^(?P<name>[^:]+):(?P<field>[A-Za-z0-9_]+)"
                    r"(?P<op><=|>=)(?P<value>-?[0-9.]+)"
                    r"(?P<rel>\*BASELINE)?$")


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "grift-bench-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return {(r["name"], r["mode"]): r for r in doc["results"]}


def parse_slo(spec):
    m = SLO_RE.match(spec)
    if not m:
        sys.exit(f"bad --slo spec {spec!r}; expected NAME:FIELD<=VALUE, "
                 "NAME:FIELD>=VALUE, or NAME:FIELD<=K*BASELINE")
    return (m["name"], m["field"], m["op"], float(m["value"]),
            m["rel"] is not None)


def check_slos(current, slos, baseline=None):
    """Bounds on CURRENT rows; substring match on the name. Relative
    gates (K*BASELINE) scale the baseline row's value of the same field
    to get the bound."""
    errors = []
    for name_pat, field, op, factor, relative in slos:
        matched = False
        for (name, mode), row in sorted(current.items()):
            if name_pat not in name:
                continue
            matched = True
            if field not in row:
                errors.append(f"{name} [{mode}]: SLO field {field!r} "
                              "missing from the row")
                continue
            val = row[field]
            if relative:
                ref = (baseline or {}).get((name, mode), {}).get(field)
                if (not isinstance(ref, (int, float))
                        or isinstance(ref, bool) or math.isnan(ref)):
                    errors.append(
                        f"{name} [{mode}]: relative SLO on {field!r} "
                        f"needs a finite baseline value (got {ref!r})")
                    continue
                bound = factor * ref
            else:
                bound = factor
            # A gate over a null/NaN/non-numeric field must fail, not
            # silently pass: `None <= bound` raising (or NaN comparing
            # false both ways) means the harness stopped producing the
            # number the SLO exists to watch. bool is excluded — JSON
            # true/false in a gated field is a schema bug, not a metric.
            if (not isinstance(val, (int, float)) or isinstance(val, bool)
                    or math.isnan(val)):
                errors.append(f"{name} [{mode}]: SLO field {field!r} is "
                              f"not a finite number (got {val!r})")
                continue
            ok = val <= bound if op == "<=" else val >= bound
            verdict = "ok" if ok else "VIOLATED"
            print(f"SLO {name} [{mode}]: {field}={val} {op} {bound:g}  "
                  f"{verdict}")
            if not ok:
                errors.append(f"{name} [{mode}]: SLO {field}={val} "
                              f"violates {field}{op}{bound:g}")
        if not matched:
            errors.append(f"--slo {name_pat!r}: no row name contains "
                          f"{name_pat!r} (gate never applied)")
    return errors


def check_shapes(current):
    """Paper shape invariants on the CURRENT results."""
    errors = []
    for (name, mode), row in sorted(current.items()):
        if name.startswith("fig4/evenodd") and mode == "coercions":
            if row["longest_chain"] != 1:
                errors.append(
                    f"{name} [{mode}]: longest_chain = {row['longest_chain']}"
                    ", expected 1 (coercions must keep proxy chains flat)")
            probes = row["cache_hits"] + row["cache_misses"]
            if probes:
                rate = row["cache_hits"] / probes
                if rate < 0.9:
                    errors.append(
                        f"{name} [{mode}]: inline-cache hit rate "
                        f"{rate:.2%} < 90%")
    tb = current.get(("fig4/evenodd/20000", "type-based"))
    if tb is not None and tb["longest_chain"] < 1000:
        errors.append(
            f"fig4/evenodd/20000 [type-based]: longest_chain = "
            f"{tb['longest_chain']}, expected Theta(n) chain (>= 1000)")
    return errors


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current", nargs="?",
                    help="omit to apply --slo gates to BASELINE alone")
    ap.add_argument("--tolerance", type=float, default=0.5,
                    help="allowed fractional median_ns regression "
                         "(default 0.5 = 50%%)")
    ap.add_argument("--slo", action="append", default=[],
                    metavar="NAME:FIELD<=VALUE",
                    help="absolute bound on a CURRENT row field; "
                         "NAME is a substring of the row name; "
                         "repeatable")
    args = ap.parse_args()

    slos = [parse_slo(s) for s in args.slo]

    errors = []
    base = None
    if args.current is None:
        # SLO-only mode: one file, no baseline diff.
        if not slos:
            ap.error("single-file mode requires at least one --slo")
        if any(s[4] for s in slos):
            ap.error("relative (K*BASELINE) SLOs need a baseline and a "
                     "current file")
        cur = load(args.baseline)
    else:
        base = load(args.baseline)
        cur = load(args.current)
        for key in sorted(base):
            name, mode = key
            tag = f"{name} [{mode}]"
            if key not in cur:
                errors.append(f"{tag}: missing from {args.current}")
                continue
            b, c = base[key], cur[key]
            for counter in COUNTERS:
                if counter not in b or counter not in c:
                    continue  # older schema on one side: not drift
                if b[counter] != c[counter]:
                    errors.append(f"{tag}: {counter} changed "
                                  f"{b[counter]} -> {c[counter]} "
                                  "(deterministic counter; regenerate the "
                                  "baseline if this is intentional)")
            for field in REPORTED:
                if field in b and field in c and b[field] != c[field]:
                    print(f"{tag}: {field} {b[field]} -> {c[field]} "
                          "(run-dependent; informational only)")
            ratio = c["median_ns"] / b["median_ns"] if b["median_ns"] else 1.0
            note = ""
            if ratio > 1.0 + args.tolerance:
                errors.append(
                    f"{tag}: median {b['median_ns']/1e6:.3f} ms -> "
                    f"{c['median_ns']/1e6:.3f} ms "
                    f"({ratio:.2f}x, tolerance {1 + args.tolerance:.2f}x)")
                note = "  REGRESSION"
            print(f"{tag:46s} {b['median_ns']/1e6:9.3f} -> "
                  f"{c['median_ns']/1e6:9.3f} ms  ({ratio:5.2f}x){note}")
        for key in sorted(cur):
            if key not in base:
                print(f"{key[0]} [{key[1]}]: new benchmark (no baseline)")
        errors += check_shapes(cur)

    errors += check_slos(cur, slos, base)

    if errors:
        print(f"\n{len(errors)} problem(s):", file=sys.stderr)
        for e in errors:
            print(f"  * {e}", file=sys.stderr)
        return 1
    print("\nOK: within tolerance, counters stable, gates hold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
