#!/usr/bin/env python3
"""Compare two benchjson documents (schema grift-bench-v1).

Usage: bench_compare.py BASELINE.json CURRENT.json [--tolerance 0.5]

Exit status is non-zero when

  * a benchmark's median_ns regressed by more than the tolerance
    (default 50% — generous because CI machines are noisy; the point is
    to catch the order-of-magnitude regressions that dropping an inline
    cache or un-threading the dispatch loop would cause),
  * a deterministic counter (casts, longest_chain, compositions,
    cache_hits, cache_misses, alloc_bytes, alloc_objects, alloc_by_class,
    collections) changed at all — counters do not depend on machine
    speed, so any drift means the cast semantics or the allocation
    behaviour changed and the baseline must be regenerated deliberately,
    or
  * the CURRENT file violates a paper shape invariant (see below).

GC pause times (gc_pause_total_ns / gc_pause_max_ns) are wall-clock and
machine-dependent: they are reported alongside the medians but never
fail the run. Counters absent from one side (older baselines) are
skipped rather than treated as drift.

Shape invariants checked on CURRENT (paper Section 4.2 / Figure 4):

  * fig4/evenodd coercions: longest proxy chain stays at 1 — space
    efficiency means composition keeps chains flat.
  * fig4/evenodd/20000 type-based: longest chain is Theta(n) (>= 1000)
    — the baseline semantics really does build the bad chains.
  * fig4/evenodd coercions: inline-cache hit rate >= 90% — the per-site
    caches are doing their job on the monomorphic hot path.

Speedups and peak-heap changes are reported but never fail the run.
"""

import argparse
import json
import sys

COUNTERS = ("casts", "longest_chain", "compositions", "cache_hits",
            "cache_misses", "alloc_bytes", "alloc_objects",
            "alloc_by_class", "collections")

# Wall-clock observability: reported, never enforced.
REPORTED = ("gc_pause_total_ns", "gc_pause_max_ns")


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "grift-bench-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return {(r["name"], r["mode"]): r for r in doc["results"]}


def check_shapes(current):
    """Paper shape invariants on the CURRENT results."""
    errors = []
    for (name, mode), row in sorted(current.items()):
        if name.startswith("fig4/evenodd") and mode == "coercions":
            if row["longest_chain"] != 1:
                errors.append(
                    f"{name} [{mode}]: longest_chain = {row['longest_chain']}"
                    ", expected 1 (coercions must keep proxy chains flat)")
            probes = row["cache_hits"] + row["cache_misses"]
            if probes:
                rate = row["cache_hits"] / probes
                if rate < 0.9:
                    errors.append(
                        f"{name} [{mode}]: inline-cache hit rate "
                        f"{rate:.2%} < 90%")
    tb = current.get(("fig4/evenodd/20000", "type-based"))
    if tb is not None and tb["longest_chain"] < 1000:
        errors.append(
            f"fig4/evenodd/20000 [type-based]: longest_chain = "
            f"{tb['longest_chain']}, expected Theta(n) chain (>= 1000)")
    return errors


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.5,
                    help="allowed fractional median_ns regression "
                         "(default 0.5 = 50%%)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    errors = []
    for key in sorted(base):
        name, mode = key
        tag = f"{name} [{mode}]"
        if key not in cur:
            errors.append(f"{tag}: missing from {args.current}")
            continue
        b, c = base[key], cur[key]
        for counter in COUNTERS:
            if counter not in b or counter not in c:
                continue  # older schema on one side: not drift
            if b[counter] != c[counter]:
                errors.append(f"{tag}: {counter} changed "
                              f"{b[counter]} -> {c[counter]} (deterministic "
                              "counter; regenerate the baseline if this is "
                              "intentional)")
        for field in REPORTED:
            if field in b and field in c and b[field] != c[field]:
                print(f"{tag}: {field} {b[field]} -> {c[field]} "
                      "(wall-clock; informational only)")
        ratio = c["median_ns"] / b["median_ns"] if b["median_ns"] else 1.0
        note = ""
        if ratio > 1.0 + args.tolerance:
            errors.append(f"{tag}: median {b['median_ns']/1e6:.3f} ms -> "
                          f"{c['median_ns']/1e6:.3f} ms "
                          f"({ratio:.2f}x, tolerance {1 + args.tolerance:.2f}x)")
            note = "  REGRESSION"
        print(f"{tag:46s} {b['median_ns']/1e6:9.3f} -> "
              f"{c['median_ns']/1e6:9.3f} ms  ({ratio:5.2f}x){note}")
    for key in sorted(cur):
        if key not in base:
            print(f"{key[0]} [{key[1]}]: new benchmark (no baseline)")

    errors += check_shapes(cur)

    if errors:
        print(f"\n{len(errors)} problem(s):", file=sys.stderr)
        for e in errors:
            print(f"  * {e}", file=sys.stderr)
        return 1
    print("\nOK: within tolerance, counters stable, shape invariants hold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
