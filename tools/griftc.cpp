//===----------------------------------------------------------------------===//
///
/// \file
/// griftc — command-line compiler and runner for GTLC+.
///
///   griftc [options] file.grift [-- input words...]
///
/// Options:
///   --mode=coercions|type-based|static|monotonic
///                    cast implementation (default coercions)
///   --dynamic        erase every type annotation before compiling
///   --optimize       enable the optional core-IR optimizer
///   --ref-interp     run on the Appendix-B definitional interpreter
///   --stats          print runtime statistics after the run
///   --dump-core      print the explicit-cast core IR and exit
///   --dump-bytecode  print the compiled bytecode and exit
///   --expr 'SRC'     compile SRC instead of reading a file
///   --benchmark NAME load a built-in benchmark program
///   --input 'WORDS'  input words for read-int / read-char
///
//===----------------------------------------------------------------------===//
#include "bench_programs/Benchmarks.h"
#include "grift/Grift.h"
#include "lattice/Lattice.h"
#include "refinterp/RefInterp.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace grift;

namespace {

void printUsage() {
  std::fprintf(
      stderr,
      "usage: griftc [--mode=coercions|type-based|static|monotonic]\n"
      "              [--dynamic] [--optimize] [--ref-interp]\n"
      "              [--stats] [--dump-core] [--dump-bytecode]\n"
      "              (file.grift | --expr 'SRC' | --benchmark NAME)\n"
      "              [--input 'WORDS']\n");
}

} // namespace

int main(int Argc, char **Argv) {
  CastMode Mode = CastMode::Coercions;
  bool Dynamic = false;
  bool Optimize = false;
  bool RefInterp = false;
  bool Stats = false;
  bool DumpCore = false;
  bool DumpBytecode = false;
  std::string Source;
  std::string Input;
  std::string File;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--mode=coercions") {
      Mode = CastMode::Coercions;
    } else if (Arg == "--mode=type-based") {
      Mode = CastMode::TypeBased;
    } else if (Arg == "--mode=static") {
      Mode = CastMode::Static;
    } else if (Arg == "--mode=monotonic") {
      Mode = CastMode::Monotonic;
    } else if (Arg == "--dynamic") {
      Dynamic = true;
    } else if (Arg == "--optimize") {
      Optimize = true;
    } else if (Arg == "--ref-interp") {
      RefInterp = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--dump-core") {
      DumpCore = true;
    } else if (Arg == "--dump-bytecode") {
      DumpBytecode = true;
    } else if (Arg == "--expr" && I + 1 < Argc) {
      Source = Argv[++I];
    } else if (Arg == "--benchmark" && I + 1 < Argc) {
      const BenchProgram &B = getBenchmark(Argv[++I]);
      Source = B.Source;
      if (Input.empty())
        Input = B.BenchInput;
    } else if (Arg == "--input" && I + 1 < Argc) {
      Input = Argv[++I];
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "griftc: unknown option '%s'\n", Arg.c_str());
      printUsage();
      return 2;
    } else {
      File = Arg;
    }
  }

  if (Source.empty()) {
    if (File.empty()) {
      printUsage();
      return 2;
    }
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "griftc: cannot open '%s'\n", File.c_str());
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  }

  Grift G;
  std::string Errors;
  auto Ast = G.parse(Source, Errors);
  if (!Ast) {
    std::fprintf(stderr, "%s", Errors.c_str());
    return 1;
  }
  if (Dynamic)
    *Ast = eraseTypes(*Ast, G.types());

  if (DumpCore) {
    auto Core = G.check(*Ast, Errors);
    if (!Core) {
      std::fprintf(stderr, "%s", Errors.c_str());
      return 1;
    }
    std::printf("%s", Core->str().c_str());
    return 0;
  }

  if (RefInterp) {
    // Run on the Appendix-B definitional interpreter instead of the VM.
    auto Core = G.check(*Ast, Errors);
    if (!Core) {
      std::fprintf(stderr, "%s", Errors.c_str());
      return 1;
    }
    refinterp::RefResult R =
        refinterp::interpret(G.types(), G.coercions(), *Core, Input);
    std::fputs(R.Output.c_str(), stdout);
    if (!R.Output.empty() && R.Output.back() != '\n')
      std::fputc('\n', stdout);
    if (!R.OK) {
      if (R.IsBlame)
        std::fprintf(stderr, "blame %s: %s\n", R.Label.c_str(),
                     R.Message.c_str());
      else
        std::fprintf(stderr, "trap: %s\n", R.Message.c_str());
      return 1;
    }
    std::printf("=> %s\n", R.ResultText.c_str());
    return 0;
  }

  auto Exe = G.compileAst(*Ast, Mode, Errors, Optimize);
  if (!Exe) {
    std::fprintf(stderr, "%s", Errors.c_str());
    return 1;
  }
  if (DumpBytecode) {
    std::printf("%s", Exe->program().str().c_str());
    return 0;
  }

  RunResult R = Exe->run(Input);
  std::fputs(R.Output.c_str(), stdout);
  if (!R.Output.empty() && R.Output.back() != '\n')
    std::fputc('\n', stdout);
  if (!R.OK) {
    std::fprintf(stderr, "%s\n", R.Error.str().c_str());
    return 1;
  }
  std::printf("=> %s\n", R.ResultText.c_str());
  if (Stats) {
    std::printf("; mode: %s\n", castModeName(Mode));
    std::printf("; wall: %.3f ms\n", R.WallNanos / 1e6);
    if (R.Stats.TimedNanos >= 0)
      std::printf("; timed region: %.3f ms\n", R.Stats.TimedNanos / 1e6);
    std::printf("; casts applied: %llu\n",
                static_cast<unsigned long long>(R.Stats.CastsApplied));
    std::printf("; compositions: %llu\n",
                static_cast<unsigned long long>(R.Stats.Compositions));
    std::printf("; longest proxy chain: %llu\n",
                static_cast<unsigned long long>(R.Stats.LongestProxyChain));
    std::printf("; proxies allocated: %llu\n",
                static_cast<unsigned long long>(R.Stats.ProxiesAllocated));
  }
  return 0;
}
