//===----------------------------------------------------------------------===//
///
/// \file
/// griftc — command-line compiler and runner for GTLC+.
///
///   griftc [options] file.grift [-- input words...]
///
/// Options:
///   --mode=coercions|type-based|static|monotonic|coercion-passing
///                    cast implementation (default coercions)
///   --dynamic        erase every type annotation before compiling
///   --optimize       enable the optional core-IR optimizer
///   --ref-interp     run on the Appendix-B definitional interpreter
///   --stats          print runtime statistics after the run
///   --dump-core      print the explicit-cast core IR and exit
///   --dump-bytecode  print the compiled bytecode and exit
///   --expr 'SRC'     compile SRC instead of reading a file
///   --benchmark NAME load a built-in benchmark program
///   --input 'WORDS'  input words for read-int / read-char
///
/// Resource governance (untrusted / hostile input):
///   --max-steps=N    fuel budget in interpreter steps (0 = unlimited)
///   --max-heap=N     live-heap budget in bytes; k/m/g suffixes accepted
///   --max-depth=N    call-depth budget in frames
///   --max-wall-ms=N  wall-clock budget in milliseconds
///   --deadline-ms=N  watchdog deadline: a separate thread preemptively
///                    cancels the run this long after it starts
///   --gc-torture=N   force a full GC every Nth allocation (bug hunting)
///   --gc-minor-torture=N  force a minor (nursery) GC every Nth
///                    allocation and every Nth cast application
///   --gc-nursery=N   nursery size in bytes (k/m/g suffixes accepted);
///                    0 disables the generational layer entirely
///   --gc-stats       print the GC profile after the run: collection
///                    counts, pause totals/max, promotion volume,
///                    remembered-set peak, per-phase pause histograms
///   --fail-alloc=N   inject an allocation failure at allocation #N
///
/// Persistent store (src/store):
///   --cache-dir=DIR  warm-start compiles from the content-addressed
///                    image store (and publish fresh compiles into it)
///   --cache-max-bytes=N  store eviction cap (default 256 MiB)
///   --store-verify   offline integrity sweep: deep-validate every entry
///                    under --cache-dir, delete corrupt entries and stray
///                    temp files, print a summary, exit 0
///
/// A program stopped by a budget exits with status 3 and prints the
/// machine-readable error kind (fuel-exhausted, out-of-memory, ...);
/// a run killed by the watchdog exits with status 4 (cancelled);
/// program errors (blame, trap) still exit with status 1.
///
//===----------------------------------------------------------------------===//
#include "bench_programs/Benchmarks.h"
#include "grift/Grift.h"
#include "lattice/Lattice.h"
#include "refinterp/RefInterp.h"
#include "service/Watchdog.h"
#include "store/Store.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

using namespace grift;

namespace {

void printUsage() {
  std::fprintf(
      stderr,
      "usage: griftc [--mode=coercions|type-based|static|monotonic|\n"
      "                      coercion-passing]\n"
      "              [--dynamic] [--optimize] [--ref-interp]\n"
      "              [--stats] [--dump-core] [--dump-bytecode]\n"
      "              [--max-steps=N] [--max-heap=N[k|m|g]]\n"
      "              [--max-depth=N] [--max-wall-ms=N] [--deadline-ms=N]\n"
      "              [--gc-torture=N] [--gc-minor-torture=N]\n"
      "              [--gc-nursery=N[k|m|g]] [--gc-stats] [--fail-alloc=N]\n"
      "              [--cache-dir=DIR [--cache-max-bytes=N]]\n"
      "              (file.grift | --expr 'SRC' | --benchmark NAME)\n"
      "              [--input 'WORDS']\n"
      "       griftc --store-verify --cache-dir=DIR\n");
}

/// Exit status for a failed run: program errors 1, resource exhaustion
/// 3, watchdog cancellation 4 (see docs/INTERNALS.md exit-code table).
int exitForError(grift::ErrorKind Kind) {
  if (Kind == grift::ErrorKind::Blame || Kind == grift::ErrorKind::Trap)
    return 1;
  return Kind == grift::ErrorKind::Cancelled ? 4 : 3;
}

/// Parses "--opt=123" style values with an optional k/m/g size suffix.
bool parseSize(const std::string &Arg, const char *Prefix, uint64_t &Out) {
  size_t Len = std::strlen(Prefix);
  if (Arg.compare(0, Len, Prefix) != 0)
    return false;
  const char *S = Arg.c_str() + Len;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S)
    return false;
  uint64_t Scale = 1;
  if (*End == 'k' || *End == 'K')
    Scale = 1ull << 10, ++End;
  else if (*End == 'm' || *End == 'M')
    Scale = 1ull << 20, ++End;
  else if (*End == 'g' || *End == 'G')
    Scale = 1ull << 30, ++End;
  if (*End != '\0')
    return false;
  Out = V * Scale;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  CastMode Mode = CastMode::Coercions;
  bool Dynamic = false;
  bool Optimize = false;
  bool RefInterp = false;
  bool Stats = false;
  bool GCStats = false;
  bool DumpCore = false;
  bool DumpBytecode = false;
  std::string Source;
  std::string Input;
  std::string File;
  std::string CacheDir;
  uint64_t CacheMaxBytes = 256ull << 20;
  bool StoreVerify = false;
  RunLimits Limits;
  FaultInjector Injector;
  int64_t DeadlineNanos = 0;
  uint64_t Tmp = 0;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (parseSize(Arg, "--max-steps=", Tmp)) {
      Limits.MaxSteps = Tmp;
    } else if (parseSize(Arg, "--deadline-ms=", Tmp)) {
      DeadlineNanos = static_cast<int64_t>(Tmp) * 1000000;
    } else if (parseSize(Arg, "--max-heap=", Tmp)) {
      Limits.MaxHeapBytes = static_cast<size_t>(Tmp);
    } else if (parseSize(Arg, "--max-depth=", Tmp)) {
      Limits.MaxFrames = static_cast<uint32_t>(Tmp);
    } else if (parseSize(Arg, "--max-wall-ms=", Tmp)) {
      Limits.MaxWallNanos = static_cast<int64_t>(Tmp) * 1000000;
    } else if (parseSize(Arg, "--gc-torture=", Tmp)) {
      Injector.GCTorturePeriod = Tmp;
    } else if (parseSize(Arg, "--gc-minor-torture=", Tmp)) {
      Injector.MinorGCTorturePeriod = Tmp;
    } else if (parseSize(Arg, "--gc-nursery=", Tmp)) {
      Limits.GCNurseryBytes = static_cast<size_t>(Tmp);
    } else if (Arg == "--gc-stats") {
      GCStats = true;
    } else if (parseSize(Arg, "--fail-alloc=", Tmp)) {
      Injector.FailAllocAt = Tmp;
    } else if (Arg.rfind("--cache-dir=", 0) == 0) {
      CacheDir = Arg.substr(12);
    } else if (parseSize(Arg, "--cache-max-bytes=", Tmp)) {
      CacheMaxBytes = Tmp;
    } else if (Arg == "--store-verify") {
      StoreVerify = true;
    } else if (Arg.rfind("--mode=", 0) == 0) {
      // Shared parser (runtime/Mode.h): accepts exactly the registered
      // backend names, so griftc and the griftd protocol agree.
      if (!castModeFromName(Arg.substr(7), Mode)) {
        std::fprintf(stderr, "griftc: unknown mode '%s'\n",
                     Arg.substr(7).c_str());
        printUsage();
        return 2;
      }
    } else if (Arg == "--dynamic") {
      Dynamic = true;
    } else if (Arg == "--optimize") {
      Optimize = true;
    } else if (Arg == "--ref-interp") {
      RefInterp = true;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--dump-core") {
      DumpCore = true;
    } else if (Arg == "--dump-bytecode") {
      DumpBytecode = true;
    } else if (Arg == "--expr" && I + 1 < Argc) {
      Source = Argv[++I];
    } else if (Arg == "--benchmark" && I + 1 < Argc) {
      const BenchProgram &B = getBenchmark(Argv[++I]);
      Source = B.Source;
      if (Input.empty())
        Input = B.BenchInput;
    } else if (Arg == "--input" && I + 1 < Argc) {
      Input = Argv[++I];
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "griftc: unknown option '%s'\n", Arg.c_str());
      printUsage();
      return 2;
    } else {
      File = Arg;
    }
  }

  if (StoreVerify) {
    // Offline integrity sweep: deep-validate every cache entry, delete
    // the ones that fail, and report what happened. MaxBytes is irrelevant
    // here (no writes), so leave the default.
    if (CacheDir.empty()) {
      std::fprintf(stderr, "griftc: --store-verify requires --cache-dir\n");
      return 2;
    }
    store::StoreConfig SC;
    SC.Dir = CacheDir;
    store::Store S(std::move(SC));
    store::Store::VerifyResult V = S.verifyAll();
    std::printf("{\"status\":\"store-verify\",\"valid\":%llu,"
                "\"removed\":%llu,\"tmp_removed\":%llu}\n",
                static_cast<unsigned long long>(V.Valid),
                static_cast<unsigned long long>(V.Removed),
                static_cast<unsigned long long>(V.TmpRemoved));
    return 0;
  }

  if (Source.empty()) {
    if (File.empty()) {
      printUsage();
      return 2;
    }
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "griftc: cannot open '%s'\n", File.c_str());
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  }

  Grift G;
  std::string Errors;
  auto Ast = G.parse(Source, Errors);
  if (!Ast) {
    std::fprintf(stderr, "%s", Errors.c_str());
    return 1;
  }
  if (Dynamic)
    *Ast = eraseTypes(*Ast, G.types());

  if (DumpCore) {
    auto Core = G.check(*Ast, Errors);
    if (!Core) {
      std::fprintf(stderr, "%s", Errors.c_str());
      return 1;
    }
    std::printf("%s", Core->str().c_str());
    return 0;
  }

  // Watchdog state shared by both run paths; armed immediately before
  // the run so compilation time does not count against the deadline.
  std::atomic<bool> CancelToken{false};
  std::optional<service::Watchdog> Dog;
  auto armWatchdog = [&] {
    if (DeadlineNanos <= 0)
      return;
    Dog.emplace();
    Dog->watch(CancelToken, service::Watchdog::Clock::now() +
                                std::chrono::nanoseconds(DeadlineNanos));
    Limits.Cancel = &CancelToken;
  };

  if (RefInterp) {
    // Run on the Appendix-B definitional interpreter instead of the VM.
    auto Core = G.check(*Ast, Errors);
    if (!Core) {
      std::fprintf(stderr, "%s", Errors.c_str());
      return 1;
    }
    armWatchdog();
    refinterp::RefResult R =
        refinterp::interpret(G.types(), G.coercions(), *Core, Input, Limits);
    std::fputs(R.Output.c_str(), stdout);
    if (!R.Output.empty() && R.Output.back() != '\n')
      std::fputc('\n', stdout);
    if (!R.OK) {
      if (R.isBlame())
        std::fprintf(stderr, "blame %s: %s\n", R.Label.c_str(),
                     R.Message.c_str());
      else
        std::fprintf(stderr, "%s: %s\n", errorKindName(R.Kind),
                     R.Message.c_str());
      return exitForError(R.Kind);
    }
    std::printf("=> %s\n", R.ResultText.c_str());
    return 0;
  }

  // Persistent store: warm-start from a prior compile of the same
  // (source, mode, optimize) triple when --cache-dir is set. --dynamic
  // is keyed on the original source but compiles the erased AST, so it
  // must bypass the store entirely.
  std::optional<store::Store> PStore;
  uint64_t StoreKey = 0;
  if (!CacheDir.empty() && !Dynamic) {
    store::StoreConfig SC;
    SC.Dir = CacheDir;
    SC.MaxBytes = CacheMaxBytes;
    PStore.emplace(std::move(SC));
    StoreKey = store::Store::key(Source, Mode, Optimize);
  }

  std::optional<Executable> Exe;
  if (PStore && PStore->enabled()) {
    VMProgram Prog;
    if (PStore->load(StoreKey, G.types(), G.coercions(), Prog))
      Exe = G.adopt(std::move(Prog));
  }
  if (!Exe) {
    Exe = G.compileAst(*Ast, Mode, Errors, Optimize);
    if (Exe && PStore && PStore->enabled())
      PStore->put(StoreKey, Exe->program());
  }
  if (!Exe) {
    std::fprintf(stderr, "%s", Errors.c_str());
    return 1;
  }
  if (DumpBytecode) {
    std::printf("%s", Exe->program().str().c_str());
    return 0;
  }

  armWatchdog();
  RunResult R = Exe->run(Input, Limits, &Injector);
  std::fputs(R.Output.c_str(), stdout);
  if (!R.Output.empty() && R.Output.back() != '\n')
    std::fputc('\n', stdout);
  if (!R.OK) {
    std::fprintf(stderr, "%s\n", R.Error.str().c_str());
    return exitForError(R.Error.Kind);
  }
  std::printf("=> %s\n", R.ResultText.c_str());
  if (Stats) {
    std::printf("; mode: %s\n", castModeName(Mode));
    std::printf("; wall: %.3f ms\n", R.WallNanos / 1e6);
    if (R.Stats.TimedNanos >= 0)
      std::printf("; timed region: %.3f ms\n", R.Stats.TimedNanos / 1e6);
    std::printf("; casts applied: %llu\n",
                static_cast<unsigned long long>(R.Stats.CastsApplied));
    std::printf("; compositions: %llu\n",
                static_cast<unsigned long long>(R.Stats.Compositions));
    std::printf("; longest proxy chain: %llu\n",
                static_cast<unsigned long long>(R.Stats.LongestProxyChain));
    std::printf("; proxies allocated: %llu\n",
                static_cast<unsigned long long>(R.Stats.ProxiesAllocated));
  }
  if (GCStats) {
    auto U = [](uint64_t V) { return static_cast<unsigned long long>(V); };
    const RuntimeStats &S = R.Stats;
    std::printf("; gc: alloc %llu bytes in %llu objects\n", U(S.AllocBytes),
                U(S.allocObjects()));
    std::printf("; gc: %llu minor / %llu major collections\n",
                U(S.MinorCollections), U(S.Collections));
    std::printf("; gc: minor pauses %llu ns total, %llu ns max\n",
                U(S.GCMinorPauseTotalNs), U(S.GCMinorPauseMaxNs));
    std::printf("; gc: all pauses %llu ns total, %llu ns max\n",
                U(S.GCPauseTotalNs), U(S.GCPauseMaxNs));
    std::printf("; gc: promoted %llu bytes in %llu objects\n",
                U(S.PromotedBytes), U(S.PromotedObjects));
    std::printf("; gc: remembered-set peak %llu\n", U(S.RememberedSetPeak));
    // Log2 pause histograms: bucket 0 is < 1 µs, each bucket doubles.
    auto printHist = [&](const char *Phase, const uint64_t *Hist) {
      std::printf("; gc: %s pause histogram:", Phase);
      for (unsigned B = 0; B != RuntimeStats::NumPauseBuckets; ++B)
        std::printf(" %llu", U(Hist[B]));
      std::printf("\n");
    };
    printHist("minor", S.MinorPauseHist);
    printHist("major", S.MajorPauseHist);
  }
  return 0;
}
