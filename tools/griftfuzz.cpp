//===----------------------------------------------------------------------===//
///
/// \file
/// griftfuzz — metamorphic gradual-guarantee fuzzer with a
/// blame-differential oracle and automatic shrinking.
///
///   griftfuzz [options]
///
/// Options:
///   --oracle=lattice|blame|all  which oracle(s) to run (default all)
///   --iters=N          programs per oracle (default 100; 0 = unbounded,
///                      requires --budget-ms)
///   --budget-ms=N      stop an oracle's loop after N milliseconds
///   --seed=S           base seed (default 1); iteration i uses
///                      S + i * 0x9E3779B9, so --seed=<failing> --iters=1
///                      replays exactly one failure
///   --bins=N           fine-grained precision bins per program (default 4)
///   --per-bin=N        configurations sampled per bin (default 2)
///   --coarse-max=N     module-lattice configurations (default 8)
///   --shrink-attempts=N  delta-debugging budget per failure (default 1200)
///   --no-shrink        dump failures unshrunk
///   --artifact-dir=DIR where to write repro artifacts
///                      (default griftfuzz-repros)
///   --max-failures=N   stop after N failures (default 5)
///   --quiet            no per-chunk progress lines
///   --gc-torture=N     force a full collection every Nth allocation in
///                      every VM run (0 = off)
///   --gc-minor-torture=N  force a minor (nursery) collection every Nth
///                      allocation and every Nth cast application
///   --gc-nursery=BYTES nursery size for every VM run (0 disables the
///                      generational layer)
///   --gc-differential  enroll a --gc-nursery=0 twin of every VM engine;
///                      the generational and pre-generational collectors
///                      must agree on every program in every cast mode
///
/// Exit status: 0 when every check passed, 1 when any oracle failed,
/// 2 on usage errors.
///
/// Each failure is minimized by the AST-aware shrinker and dumped as a
/// pair of artifacts: <artifact-dir>/<oracle>-seed<NNN>.grift (the
/// shrunk program) and .repro.txt (seeds, expectation, observed
/// behaviour, original source, one-command rerun line).
///
//===----------------------------------------------------------------------===//
#include "fuzz/FuzzGen.h"
#include "fuzz/Oracle.h"
#include "fuzz/Shrink.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

using namespace grift;
using namespace grift::fuzz;

namespace {

struct Options {
  bool RunLattice = true;
  bool RunBlame = true;
  uint64_t Iters = 100;
  uint64_t BudgetMs = 0;
  uint64_t Seed = 1;
  unsigned MaxFailures = 5;
  bool Shrink = true;
  bool Quiet = false;
  std::string ArtifactDir = "griftfuzz-repros";
  OracleOptions Oracle;
};

void printUsage() {
  std::fprintf(stderr,
               "usage: griftfuzz [--oracle=lattice|blame|all] [--iters=N]\n"
               "                 [--budget-ms=N] [--seed=S] [--bins=N]\n"
               "                 [--per-bin=N] [--coarse-max=N]\n"
               "                 [--shrink-attempts=N] [--no-shrink]\n"
               "                 [--artifact-dir=DIR] [--max-failures=N]\n"
               "                 [--quiet] [--gc-torture=N]\n"
               "                 [--gc-minor-torture=N] [--gc-nursery=BYTES]\n"
               "                 [--gc-differential]\n");
}

bool parseUnsigned(const std::string &Arg, const char *Prefix,
                   uint64_t &Out) {
  size_t Len = std::strlen(Prefix);
  if (Arg.compare(0, Len, Prefix) != 0)
    return false;
  char *End = nullptr;
  Out = std::strtoull(Arg.c_str() + Len, &End, 10);
  return End && *End == '\0' && End != Arg.c_str() + Len;
}

/// Spreads iteration indices across the seed space so neighbouring base
/// seeds do not re-explore the same programs.
uint64_t iterationSeed(uint64_t Base, uint64_t Iteration) {
  return Base + Iteration * 0x9E3779B9ull;
}

class Harness {
public:
  explicit Harness(const Options &Opts) : Opts(Opts) {}

  /// Runs one oracle's loop. Returns the number of failures found.
  unsigned runOracle(OracleKind Kind) {
    using Clock = std::chrono::steady_clock;
    auto Start = Clock::now();
    auto elapsedMs = [&] {
      return static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              Clock::now() - Start)
              .count());
    };

    unsigned Failures = 0;
    uint64_t Iteration = 0;
    while (true) {
      if (Opts.Iters != 0 && Iteration >= Opts.Iters)
        break;
      if (Opts.BudgetMs != 0 && elapsedMs() >= Opts.BudgetMs)
        break;
      if (Opts.Iters == 0 && Opts.BudgetMs == 0)
        break; // defensive: never spin forever without a budget

      uint64_t Seed = iterationSeed(Opts.Seed, Iteration);
      std::optional<OracleFailure> Failure =
          Kind == OracleKind::Lattice ? checkLattice(Seed, Opts.Oracle)
                                      : checkBlame(Seed, Opts.Oracle);
      ++Iteration;
      ++Programs;
      if (Failure) {
        ++Failures;
        report(*Failure);
        if (Failures >= Opts.MaxFailures) {
          std::fprintf(stderr,
                       "griftfuzz: %s oracle: stopping after %u failures\n",
                       oracleKindName(Kind), Failures);
          break;
        }
      }
      if (!Opts.Quiet && Iteration % 25 == 0)
        std::fprintf(stderr,
                     "griftfuzz: %s oracle: %llu programs, %u failures, "
                     "%llu ms\n",
                     oracleKindName(Kind),
                     static_cast<unsigned long long>(Iteration), Failures,
                     static_cast<unsigned long long>(elapsedMs()));
    }
    std::fprintf(stderr,
                 "griftfuzz: %s oracle done: %llu programs, %u failures, "
                 "%llu ms\n",
                 oracleKindName(Kind),
                 static_cast<unsigned long long>(Iteration), Failures,
                 static_cast<unsigned long long>(elapsedMs()));
    return Failures;
  }

  uint64_t programsRun() const { return Programs; }

private:
  void report(const OracleFailure &Failure) {
    std::fprintf(stderr,
                 "\ngriftfuzz: FAILURE (%s oracle, seed %llu)\n  %s\n"
                 "  expected: %s\n  actual:   %s\n",
                 oracleKindName(Failure.Oracle),
                 static_cast<unsigned long long>(Failure.Seed),
                 Failure.What.c_str(), Failure.Expected.c_str(),
                 Failure.Actual.c_str());

    std::string Shrunk = Failure.Source;
    if (Opts.Shrink) {
      ShrinkStats Stats;
      Shrunk = shrinkFailure(Failure, Opts.Oracle, &Stats);
      std::fprintf(stderr,
                   "  shrink: %zu -> %zu bytes (%u candidates, %u accepted, "
                   "%u rounds)\n",
                   Failure.Source.size(), Shrunk.size(), Stats.Attempts,
                   Stats.Accepted, Stats.Rounds);
    }
    std::fprintf(stderr, "  shrunk repro:\n%s", Shrunk.c_str());
    if (!Shrunk.empty() && Shrunk.back() != '\n')
      std::fprintf(stderr, "\n");
    writeArtifacts(Failure, Shrunk);
  }

  void writeArtifacts(const OracleFailure &Failure,
                      const std::string &Shrunk) {
    std::error_code EC;
    std::filesystem::create_directories(Opts.ArtifactDir, EC);
    if (EC) {
      std::fprintf(stderr, "griftfuzz: cannot create artifact dir %s: %s\n",
                   Opts.ArtifactDir.c_str(), EC.message().c_str());
      return;
    }
    std::string Stem = Opts.ArtifactDir + "/" +
                       oracleKindName(Failure.Oracle) + "-seed" +
                       std::to_string(Failure.Seed);
    {
      std::ofstream Out(Stem + ".grift");
      Out << Shrunk;
    }
    {
      std::ofstream Out(Stem + ".repro.txt");
      Out << reproText(Failure, Shrunk);
    }
    std::fprintf(stderr, "  artifacts: %s.grift, %s.repro.txt\n",
                 Stem.c_str(), Stem.c_str());
  }

  const Options &Opts;
  uint64_t Programs = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    uint64_t Value = 0;
    if (Arg == "--oracle=lattice") {
      Opts.RunBlame = false;
    } else if (Arg == "--oracle=blame") {
      Opts.RunLattice = false;
    } else if (Arg == "--oracle=all") {
      Opts.RunLattice = Opts.RunBlame = true;
    } else if (parseUnsigned(Arg, "--iters=", Value)) {
      Opts.Iters = Value;
    } else if (parseUnsigned(Arg, "--budget-ms=", Value)) {
      Opts.BudgetMs = Value;
    } else if (parseUnsigned(Arg, "--seed=", Value)) {
      Opts.Seed = Value;
    } else if (parseUnsigned(Arg, "--bins=", Value)) {
      Opts.Oracle.Bins = static_cast<unsigned>(Value);
    } else if (parseUnsigned(Arg, "--per-bin=", Value)) {
      Opts.Oracle.PerBin = static_cast<unsigned>(Value);
    } else if (parseUnsigned(Arg, "--coarse-max=", Value)) {
      Opts.Oracle.CoarseMax = static_cast<unsigned>(Value);
    } else if (parseUnsigned(Arg, "--shrink-attempts=", Value)) {
      Opts.Oracle.ShrinkAttempts = static_cast<unsigned>(Value);
    } else if (parseUnsigned(Arg, "--max-failures=", Value)) {
      Opts.MaxFailures = Value ? static_cast<unsigned>(Value) : 1;
    } else if (parseUnsigned(Arg, "--gc-torture=", Value)) {
      Opts.Oracle.GCTorturePeriod = Value;
    } else if (parseUnsigned(Arg, "--gc-minor-torture=", Value)) {
      Opts.Oracle.MinorGCTorturePeriod = Value;
    } else if (parseUnsigned(Arg, "--gc-nursery=", Value)) {
      Opts.Oracle.Limits.GCNurseryBytes = static_cast<size_t>(Value);
    } else if (Arg == "--gc-differential") {
      Opts.Oracle.GCDifferential = true;
    } else if (Arg == "--no-shrink") {
      Opts.Shrink = false;
    } else if (Arg == "--quiet") {
      Opts.Quiet = true;
    } else if (Arg.rfind("--artifact-dir=", 0) == 0) {
      Opts.ArtifactDir = Arg.substr(std::strlen("--artifact-dir="));
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    } else {
      std::fprintf(stderr, "griftfuzz: unknown argument '%s'\n",
                   Arg.c_str());
      printUsage();
      return 2;
    }
  }
  if (Opts.Iters == 0 && Opts.BudgetMs == 0) {
    std::fprintf(stderr, "griftfuzz: --iters=0 requires --budget-ms\n");
    printUsage();
    return 2;
  }

  Harness H(Opts);
  unsigned Failures = 0;
  if (Opts.RunLattice)
    Failures += H.runOracle(OracleKind::Lattice);
  if (Opts.RunBlame)
    Failures += H.runOracle(OracleKind::Blame);

  std::fprintf(stderr, "griftfuzz: %llu programs total, %u failure(s)\n",
               static_cast<unsigned long long>(H.programsRun()), Failures);
  return Failures ? 1 : 0;
}
