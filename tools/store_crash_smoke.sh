#!/usr/bin/env bash
#===----------------------------------------------------------------------===#
#
# Crash-recovery smoke for the persistent program store.
#
#   store_crash_smoke.sh GRIFTD GRIFTC [ITERS]
#
# Each iteration starts a griftd batch run that populates a --cache-dir,
# kills it with SIGKILL at a random instant (so some runs die mid-write,
# leaving torn temp files), and then requires:
#
#   1. `griftc --store-verify` over the surviving directory exits 0,
#      removes every invalid entry and stray temp file, and a second
#      sweep finds nothing left to remove (the sweep is idempotent);
#   2. a clean batch run over the same directory completes with the
#      expected per-class summary — a crashed store never poisons the
#      service, at worst it recompiles.
#
# After the kill loop, a final pair of batch runs asserts the store
# actually warms: the second run must report store hits.
#
#===----------------------------------------------------------------------===#
set -u

GRIFTD=${1:?usage: store_crash_smoke.sh GRIFTD GRIFTC [ITERS]}
GRIFTC=${2:?usage: store_crash_smoke.sh GRIFTD GRIFTC [ITERS]}
ITERS=${3:-10}

WORK=$(mktemp -d)
CACHE=$WORK/cache
mkdir -p "$CACHE"
trap 'rm -rf "$WORK"' EXIT

fail() {
  echo "store_crash_smoke: FAIL: $*" >&2
  exit 1
}

# A manifest big enough that the kill usually lands mid-run. Distinct
# sources => distinct store entries.
MANIFEST=$WORK/manifest.jsonl
: > "$MANIFEST"
for I in $(seq 1 60); do
  echo "{\"id\":\"job-$I\",\"source\":\"(+ $I $I)\"}" >> "$MANIFEST"
done

for I in $(seq 1 "$ITERS"); do
  "$GRIFTD" --threads=2 --cache-dir="$CACHE" --summary-only \
      "$MANIFEST" >/dev/null 2>&1 &
  PID=$!
  # 0-40 ms in: early kills hit the store cold path, late ones mid-write.
  SLEEP_US=$(( (RANDOM % 40) * 1000 ))
  if [ "$SLEEP_US" -gt 0 ]; then
    sleep "0.0$(printf '%05d' $((SLEEP_US / 10)))" 2>/dev/null || sleep 0.02
  fi
  kill -9 "$PID" 2>/dev/null
  wait "$PID" 2>/dev/null

  # Recovery gate 1: the offline sweep must succeed and converge.
  "$GRIFTC" --store-verify --cache-dir="$CACHE" > "$WORK/verify1.json" ||
      fail "store-verify exited non-zero after kill #$I"
  "$GRIFTC" --store-verify --cache-dir="$CACHE" > "$WORK/verify2.json" ||
      fail "second store-verify exited non-zero after kill #$I"
  grep -q '"removed":0,"tmp_removed":0' "$WORK/verify2.json" ||
      fail "sweep not idempotent after kill #$I: $(cat "$WORK/verify2.json")"

  # Recovery gate 2: the next batch over the same directory serves.
  "$GRIFTD" --threads=2 --cache-dir="$CACHE" --summary-only \
      "$MANIFEST" > "$WORK/summary.txt" ||
      fail "clean batch failed after kill #$I"
  grep -q '^ok: 60$' "$WORK/summary.txt" ||
      fail "unexpected summary after kill #$I: $(cat "$WORK/summary.txt")"
done

# Warm-start gate: with the store now fully populated, a fresh run must
# be served from images (hits > 0) and see zero corruption.
"$GRIFTD" --threads=2 --cache-dir="$CACHE" --summary-only \
    "$MANIFEST" > "$WORK/summary.txt" || fail "final batch failed"
STORE_LINE=$(grep '^store: ' "$WORK/summary.txt") ||
    fail "no store line in summary: $(cat "$WORK/summary.txt")"
case "$STORE_LINE" in
  *"hits=0"*) fail "no store hits on a warm directory: $STORE_LINE" ;;
esac
case "$STORE_LINE" in
  *"corrupt=0"*) : ;;
  *) fail "corruption on a verified directory: $STORE_LINE" ;;
esac

echo "store_crash_smoke: OK ($ITERS kills survived; $STORE_LINE)"
