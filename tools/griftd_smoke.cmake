# Runs griftd over the 50-job smoke manifest and diffs the ErrorKind
# summary against the golden file. Invoked by ctest as
#   cmake -DGRIFTD=<path> -DMANIFEST=<path> -DGOLDEN=<path> -P griftd_smoke.cmake
# Every job in the manifest has a deterministic outcome (see the
# manifest header), so the summary — and the exit status, 4 because the
# manifest contains watchdog-cancelled jobs — must reproduce exactly.

execute_process(
  COMMAND ${GRIFTD} --threads=4 --summary-only ${MANIFEST}
  OUTPUT_VARIABLE SUMMARY
  ERROR_VARIABLE ERRORS
  RESULT_VARIABLE EXIT_CODE
  TIMEOUT 300
)

if(NOT EXIT_CODE EQUAL 4)
  message(FATAL_ERROR
      "griftd exited ${EXIT_CODE}, expected 4 (worst outcome: cancelled)\n"
      "stderr: ${ERRORS}")
endif()

file(READ ${GOLDEN} EXPECTED)
if(NOT SUMMARY STREQUAL EXPECTED)
  message(FATAL_ERROR
      "griftd summary diverged from ${GOLDEN}\n"
      "--- expected ---\n${EXPECTED}"
      "--- actual ---\n${SUMMARY}")
endif()

message(STATUS "griftd smoke: 50 jobs, summary matches golden")
