//===----------------------------------------------------------------------===//
///
/// \file
/// An interactive GTLC+ read-eval-print loop. Definitions accumulate;
/// every input is type checked against everything defined so far, so you
/// can explore gradual typing interactively:
///
///   grift> (define (inc [x : Int]) : Int (+ x 1))
///   grift> (inc (ann 41 Dyn))
///   42 : Int
///   grift> (inc #t)
///   error: 1:1: cannot cast Bool to Int
///   grift> :mode type-based        ; switch cast implementation
///   grift> :stats                  ; toggle per-input statistics
///
/// Implementation note: each input recompiles the accumulated program —
/// compilation is milliseconds, and it keeps the example honest about
/// using only the public API.
///
//===----------------------------------------------------------------------===//
#include "grift/Grift.h"

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

using namespace grift;

namespace {

/// Counts unbalanced parentheses so multi-line forms work.
int parenBalance(const std::string &Text) {
  int Depth = 0;
  bool InString = false;
  for (size_t I = 0; I != Text.size(); ++I) {
    char C = Text[I];
    if (InString) {
      if (C == '\\')
        ++I;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"')
      InString = true;
    else if (C == ';') {
      while (I < Text.size() && Text[I] != '\n')
        ++I;
    } else if (C == '(' || C == '[')
      ++Depth;
    else if (C == ')' || C == ']')
      --Depth;
  }
  return Depth;
}

} // namespace

int main() {
  std::vector<std::string> Definitions;
  CastMode Mode = CastMode::Coercions;
  bool ShowStats = false;

  std::printf("Grift-CXX REPL — GTLC+ with gradual typing.\n"
              "Commands: :mode coercions|type-based|monotonic, :stats, "
              ":defs, :quit\n");

  std::string Pending;
  for (;;) {
    std::printf(Pending.empty() ? "grift> " : "  ...> ");
    std::fflush(stdout);
    std::string Line;
    if (!std::getline(std::cin, Line))
      break;
    Pending += Line + "\n";
    if (parenBalance(Pending) > 0)
      continue; // keep reading a multi-line form
    std::string Input = Pending;
    Pending.clear();
    if (Input.find_first_not_of(" \t\n") == std::string::npos)
      continue;

    // Meta-commands.
    if (Input[0] == ':') {
      if (Input.rfind(":quit", 0) == 0)
        break;
      if (Input.rfind(":stats", 0) == 0) {
        ShowStats = !ShowStats;
        std::printf("statistics %s\n", ShowStats ? "on" : "off");
        continue;
      }
      if (Input.rfind(":defs", 0) == 0) {
        for (const std::string &D : Definitions)
          std::printf("%s", D.c_str());
        continue;
      }
      if (Input.rfind(":mode ", 0) == 0) {
        std::string Name = Input.substr(6);
        Name.erase(Name.find_last_not_of(" \n") + 1);
        if (Name == "coercions")
          Mode = CastMode::Coercions;
        else if (Name == "type-based")
          Mode = CastMode::TypeBased;
        else if (Name == "monotonic")
          Mode = CastMode::Monotonic;
        else {
          std::printf("unknown mode '%s'\n", Name.c_str());
          continue;
        }
        std::printf("cast mode: %s\n", castModeName(Mode));
        continue;
      }
      std::printf("unknown command\n");
      continue;
    }

    // Compile accumulated definitions + this input.
    Grift G;
    std::string Program;
    for (const std::string &D : Definitions)
      Program += D;
    Program += Input;
    std::string Errors;
    auto Exe = G.compile(Program, Mode, Errors);
    if (!Exe) {
      std::printf("%s", Errors.c_str());
      continue;
    }
    RunResult R = Exe->run();
    if (!R.Output.empty())
      std::printf("%s\n", R.Output.c_str());
    if (!R.OK) {
      std::printf("%s\n", R.Error.str().c_str());
      continue;
    }
    // A definition joins the environment; an expression prints its value.
    bool IsDefine = Input.rfind("(define", 0) == 0;
    if (IsDefine)
      Definitions.push_back(Input);
    else if (R.ResultText != "()")
      std::printf("%s\n", R.ResultText.c_str());
    if (ShowStats)
      std::printf("; %.3f ms, %llu casts, longest chain %llu\n",
                  R.WallNanos / 1e6,
                  static_cast<unsigned long long>(R.Stats.CastsApplied),
                  static_cast<unsigned long long>(
                      R.Stats.LongestProxyChain));
  }
  std::printf("\n");
  return 0;
}
