//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: compile and run gradually typed GTLC+ programs with the
/// public API, in three steps:
///
///   1. create a grift::Grift compiler,
///   2. compile source for a cast mode,
///   3. run the executable and inspect the result.
///
//===----------------------------------------------------------------------===//
#include "grift/Grift.h"

#include <cstdio>

using namespace grift;

int main() {
  Grift G;
  std::string Errors;

  // A partially typed program: `n` is dynamic, the recursion is typed.
  const char *Source =
      "(define (fib [n : Int]) : Int"
      "  (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))"
      "(define input : Dyn 20)" // an untyped value crossing into typed code
      "(fib input)";

  auto Exe = G.compile(Source, CastMode::Coercions, Errors);
  if (!Exe) {
    std::fprintf(stderr, "compile error:\n%s", Errors.c_str());
    return 1;
  }

  RunResult R = Exe->run();
  if (!R.OK) {
    std::fprintf(stderr, "runtime error: %s\n", R.Error.str().c_str());
    return 1;
  }
  std::printf("(fib input) = %s\n", R.ResultText.c_str());
  std::printf("runtime casts executed: %llu\n",
              static_cast<unsigned long long>(R.Stats.CastsApplied));

  // The same program with a type error that only manifests dynamically:
  // the Dyn value is a Bool, and the cast into `fib` blames its site.
  const char *Bad = "(define (fib [n : Int]) : Int"
                    "  (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))"
                    "(define input : Dyn #t)"
                    "(fib input)";
  auto BadExe = G.compile(Bad, CastMode::Coercions, Errors);
  if (!BadExe) {
    std::fprintf(stderr, "compile error:\n%s", Errors.c_str());
    return 1;
  }
  RunResult BadRun = BadExe->run();
  std::printf("ill-typed value crossing the boundary: %s\n",
              BadRun.OK ? "unexpectedly succeeded"
                        : BadRun.Error.str().c_str());

  // Static errors are still static errors:
  auto Nope = G.compile("(+ 1 #t)", CastMode::Coercions, Errors);
  std::printf("(+ 1 #t) %s\n",
              Nope ? "compiled (bug!)" : "rejected statically, as it must be");
  return 0;
}
