//===----------------------------------------------------------------------===//
///
/// \file
/// The gradual-typing migration story, quantified: starting from the
/// untyped n-body benchmark, sample configurations at increasing type
/// precision (the paper's Section 4.1 methodology) and measure how the
/// runtime falls as annotations are added — a miniature of Figure 7.
///
//===----------------------------------------------------------------------===//
#include "bench_programs/Benchmarks.h"
#include "grift/Grift.h"
#include "lattice/Lattice.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace grift;

int main() {
  const BenchProgram &Bench = getBenchmark("n-body");
  const std::string Input = "400";

  Grift G;
  std::string Errors;
  auto Ast = G.parse(Bench.Source, Errors);
  if (!Ast) {
    std::fprintf(stderr, "%s", Errors.c_str());
    return 1;
  }

  std::printf("Migrating %s from untyped to typed (input %s, coercions):\n\n",
              Bench.Name.c_str(), Input.c_str());
  std::printf("%-12s %12s %14s\n", "%% typed", "time(ms)", "runtime casts");

  auto measure = [&](const Program &Prog, double Precision) {
    auto Exe = G.compileAst(Prog, CastMode::Coercions, Errors);
    if (!Exe) {
      std::fprintf(stderr, "%s", Errors.c_str());
      return;
    }
    RunResult R = Exe->run(Input);
    if (!R.OK) {
      std::fprintf(stderr, "%s\n", R.Error.str().c_str());
      return;
    }
    std::printf("%11.0f%% %12.2f %14llu\n", Precision * 100,
                R.Stats.TimedNanos / 1e6,
                static_cast<unsigned long long>(R.Stats.CastsApplied));
  };

  // Fully dynamic first, then sampled intermediate precisions, then typed.
  measure(eraseTypes(*Ast, G.types()), 0.0);
  std::vector<Configuration> Configs =
      sampleFineGrained(*Ast, G.types(), /*Bins=*/4, /*PerBin=*/1, 2026);
  std::sort(Configs.begin(), Configs.end(),
            [](const Configuration &A, const Configuration &B) {
              return A.Precision < B.Precision;
            });
  for (const Configuration &C : Configs)
    measure(C.Prog, C.Precision);
  measure(*Ast, 1.0);

  std::printf("\nAnnotations pay for themselves: casts disappear from the\n"
              "hot loop as the types around it become precise.\n");
  return 0;
}
