//===----------------------------------------------------------------------===//
///
/// \file
/// A tour of blame tracking under lazy-D coercions: every failed cast
/// reports the source location (blame label) of the cast that made the
/// broken promise — including promises smuggled through higher-order
/// wrappers and references, where the failure surfaces far from its
/// origin.
///
//===----------------------------------------------------------------------===//
#include "grift/Grift.h"

#include <cstdio>

using namespace grift;

namespace {

void demo(Grift &G, const char *Title, const char *Source) {
  std::printf("-- %s\n   %s\n", Title, Source);
  std::string Errors;
  auto Exe = G.compile(Source, CastMode::Coercions, Errors);
  if (!Exe) {
    std::printf("   static error:\n%s\n", Errors.c_str());
    return;
  }
  RunResult R = Exe->run();
  if (R.OK)
    std::printf("   => %s\n\n", R.ResultText.c_str());
  else
    std::printf("   => %s\n\n", R.Error.str().c_str());
}

} // namespace

int main() {
  Grift G;
  std::printf("Blame labels are line:column positions of the cast sites "
              "that fail.\n\n");

  demo(G, "A first-order projection failure",
       "(let ([d : Dyn #t]) (ann d Int))");

  demo(G, "Higher-order: the lie is only caught at the call",
       "(define f : (Dyn -> Dyn) (lambda ([x : Int]) x))\n(f #t)");

  demo(G, "References: a write through a Dyn view is checked",
       "(let ([v : (Vect Int) (make-vector 2 0)])\n"
       "  (let ([w : (Vect Dyn) v]) (vector-set! w 0 #f)))");

  demo(G, "Deep structure: blame threads through tuples",
       "(let ([p : (Tuple Int Dyn) (tuple 1 #t)])\n"
       "  (ann (tuple-proj p 1) Float))");

  demo(G, "A cast that succeeds — no blame, just a value",
       "(define g : (Dyn -> Dyn) (lambda ([x : Int]) (* x 2)))\n(g 21)");

  std::printf("The paper's lazy-D semantics: values cross boundaries "
              "eagerly for first-order\ndata and lazily (via proxies) for "
              "functions and references;\nblame always names the cast "
              "whose static assumption was violated.\n");
  return 0;
}
