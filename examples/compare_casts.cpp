//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 4 in miniature: run the paper's CPS even/odd (Figure 2) and the
/// one-Dyn-annotation quicksort (Figure 3) under both cast strategies and
/// watch type-based proxies pile up while coercions stay flat.
///
//===----------------------------------------------------------------------===//
#include "bench_programs/Benchmarks.h"
#include "grift/Grift.h"

#include <cstdio>

using namespace grift;

namespace {

void runBoth(const char *Title, const std::string &Source,
             const std::string &Input) {
  std::printf("== %s (input %s) ==\n", Title, Input.c_str());
  std::printf("%-12s %10s %14s %14s\n", "mode", "time(ms)", "casts",
              "longest chain");
  Grift G;
  for (CastMode Mode : {CastMode::Coercions, CastMode::TypeBased}) {
    std::string Errors;
    auto Exe = G.compile(Source, Mode, Errors);
    if (!Exe) {
      std::fprintf(stderr, "compile error: %s\n", Errors.c_str());
      return;
    }
    RunResult R = Exe->run(Input);
    if (!R.OK) {
      std::fprintf(stderr, "runtime error: %s\n", R.Error.str().c_str());
      return;
    }
    std::printf("%-12s %10.2f %14llu %14llu\n", castModeName(Mode),
                R.Stats.TimedNanos / 1e6,
                static_cast<unsigned long long>(R.Stats.CastsApplied),
                static_cast<unsigned long long>(R.Stats.LongestProxyChain));
  }
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("Space-efficient coercions vs. traditional type-based casts\n"
              "(paper Figures 2-4). Watch the longest-proxy-chain column.\n\n");
  runBoth("even/odd CPS, Figure 2", evenOddSource(), "20000");
  runBoth("quicksort with one Dyn, Figure 3", quicksortFig3Source(), "300");
  std::printf("Coercions compose casts at proxy-creation time, so a chain\n"
              "never forms; type-based casts defer all work to use sites,\n"
              "where the whole chain must be traversed again and again.\n");
  return 0;
}
