//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Figure 9a: performance on *statically typed* programs. Each
/// benchmark runs fully typed under Static Grift (no gradual typing
/// support compiled in) and under Grift with coercions and with
/// type-based casts; the `vs_static` counter is the speedup relative to
/// Static Grift — the figure's y-axis.
///
/// Expected shape: gradual Grift stays close to Static Grift on typed
/// code (the paper reports dips to ~0.5x on array-intensive benchmarks
/// from proxy checks; on our uniform bytecode substrate the dip is
/// smaller because dispatch dominates — see EXPERIMENTS.md).
///
/// The paper's OCaml and Typed Racket columns require those toolchains
/// and are out of scope (DESIGN.md §5).
///
//===----------------------------------------------------------------------===//
#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <map>

using namespace grift;
using namespace grift::bench;

namespace {

/// Static-Grift baseline per benchmark, measured once.
double staticBaselineMs(const BenchProgram &B) {
  static std::map<std::string, double> Cache;
  auto It = Cache.find(B.Name);
  if (It != Cache.end())
    return It->second;
  Grift G;
  Measurement M = measure(compileOrDie(G, B.Source, CastMode::Static),
                          B.BenchInput, 3);
  double Ms = M.OK ? M.Millis : -1;
  Cache.emplace(B.Name, Ms);
  return Ms;
}

void runTyped(benchmark::State &State, const BenchProgram &B, CastMode Mode) {
  Grift G;
  Executable Exe = compileOrDie(G, B.Source, Mode);
  double Baseline = staticBaselineMs(B);
  for (auto _ : State) {
    Measurement M = runOnce(Exe, B.BenchInput);
    if (!M.OK) {
      State.SkipWithError(M.Error.c_str());
      return;
    }
    State.SetIterationTime(M.Millis / 1000.0);
    if (Baseline > 0)
      State.counters["vs_static"] = Baseline / M.Millis;
  }
}

} // namespace

int main(int Argc, char **Argv) {
  for (const BenchProgram &B : allBenchmarks()) {
    for (CastMode Mode :
         {CastMode::Static, CastMode::Coercions, CastMode::TypeBased}) {
      std::string Name = "fig9a/" + B.Name + "/" + castModeName(Mode);
      benchmark::RegisterBenchmark(
          Name.c_str(),
          [&B, Mode](benchmark::State &State) { runTyped(State, B, Mode); })
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(3);
    }
  }
  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
