//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Figure 4 (right): quicksort with a single Dyn annotation
/// (Figure 3) on already-sorted (worst-case) input. Sweeps the array
/// length and reports runtime, `casts`, and `chain` per cast mode.
///
/// Expected shape: type-based casts turn the O(n²) worst case into
/// O(n³) — proxy chains of length O(n) are traversed by every read and
/// write — while coercions keep chains at 1 and runtime at O(n²).
///
//===----------------------------------------------------------------------===//
#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace grift;
using namespace grift::bench;

namespace {

void runQuicksort(benchmark::State &State, CastMode Mode) {
  int64_t N = State.range(0);
  Grift G;
  Executable Exe = compileOrDie(G, quicksortFig3Source(), Mode);
  for (auto _ : State) {
    Measurement M = runOnce(Exe, std::to_string(N));
    if (!M.OK) {
      State.SkipWithError(M.Error.c_str());
      return;
    }
    State.SetIterationTime(M.Millis / 1000.0);
    State.counters["casts"] = static_cast<double>(M.Casts);
    State.counters["chain"] = static_cast<double>(M.Chain);
    State.counters["peak_heap"] = static_cast<double>(M.PeakHeap);
  }
}

void quicksortCoercions(benchmark::State &State) {
  runQuicksort(State, CastMode::Coercions);
}

void quicksortTypeBased(benchmark::State &State) {
  runQuicksort(State, CastMode::TypeBased);
}

} // namespace

BENCHMARK(quicksortCoercions)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(192)
    ->Arg(256)
    ->Arg(384)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// Type-based runs are O(n³); keep a single iteration per size.
BENCHMARK(quicksortTypeBased)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(192)
    ->Arg(256)
    ->Arg(384)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK_MAIN();
