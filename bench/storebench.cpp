//===----------------------------------------------------------------------===//
///
/// \file
/// Cold-vs-warm compile latency harness for the persistent program
/// store (src/store). For each benchmark/mode pair it measures
///
///   cold_compile_ns  median of fresh parse+check+compile+fuse runs
///   warm_load_ns     median of Store::load + Grift::adopt runs against
///                    a freshly constructed engine (the path griftd
///                    takes after a restart with a warm --cache-dir)
///
/// and emits one grift-bench-v1 document with both timings plus the
/// store hit/miss/corrupt/evict counters, so CI can gate the warm-start
/// SLO with tools/bench_compare.py:
///
///   storebench --out store.json
///   bench_compare.py store.json \
///       --slo 'store/synthetic:warm_over_cold_pct<=20' \
///       --slo 'store/:store_hits>=1' --slo 'store/:store_corrupt<=0'
///
/// The latency SLO is gated on the synthetic module-sized row; the tiny
/// benchmark rows (tak compiles cold in ~50us) sit inside the store's
/// fixed per-load cost and are reported for context, not gated.
///
/// Every warm executable is run once and its result text compared
/// against the cold one — a store that is fast but wrong fails here,
/// not in CI triage. Repeats come from GRIFT_BENCH_REPEATS (default 5).
///
///   storebench [--out FILE] [--cache-dir DIR]
///
/// Without --cache-dir a fresh directory is created under TMPDIR and
/// removed on exit; with it, images persist for post-mortem.
///
//===----------------------------------------------------------------------===//
#include "bench_programs/Benchmarks.h"
#include "grift/Grift.h"
#include "store/Store.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <dirent.h>
#include <unistd.h>

using namespace grift;

namespace {

unsigned repeatsFromEnv() {
  if (const char *Env = std::getenv("GRIFT_BENCH_REPEATS")) {
    int N = std::atoi(Env);
    if (N > 0)
      return static_cast<unsigned>(N);
  }
  return 5;
}

int64_t median(std::vector<int64_t> Xs) {
  std::sort(Xs.begin(), Xs.end());
  size_t N = Xs.size();
  return (Xs[(N - 1) / 2] + Xs[N / 2]) / 2;
}

int64_t nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Removes every regular file in \p Dir, then the directory itself.
/// Only used on directories this process created.
void removeTree(const std::string &Dir) {
  if (DIR *D = ::opendir(Dir.c_str())) {
    while (dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      if (Name != "." && Name != "..")
        ::unlink((Dir + "/" + Name).c_str());
    }
    ::closedir(D);
  }
  ::rmdir(Dir.c_str());
}

struct Row {
  const char *Bench;
  const char *Input;
  CastMode Mode;
};

/// A chain of \p N distinct one-argument functions. Tiny benchmark
/// programs compile in tens of microseconds, where the store's fixed
/// per-load cost (open, map, checksum) dominates the ratio; this row is
/// sized like a real module so the warm/cold SLO measures the scaling
/// regime the store exists for.
std::string syntheticSource(unsigned N) {
  std::string S = "(define f0 : (Int -> Int) (lambda ([x : Int]) (+ x 1)))\n";
  for (unsigned I = 1; I != N; ++I) {
    std::string Prev = std::to_string(I - 1), Cur = std::to_string(I);
    S += "(define f" + Cur + " : (Int -> Int) (lambda ([x : Int]) (+ (f" +
         Prev + " x) " + Cur + ")))\n";
  }
  S += "(f" + std::to_string(N - 1) + " 0)\n";
  return S;
}

} // namespace

int main(int argc, char **argv) {
  std::string OutPath;
  std::string CacheDir;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--out") == 0 && I + 1 < argc) {
      OutPath = argv[++I];
    } else if (std::strcmp(argv[I], "--cache-dir") == 0 && I + 1 < argc) {
      CacheDir = argv[++I];
    } else {
      std::fprintf(stderr, "usage: storebench [--out FILE] [--cache-dir DIR]\n");
      return 2;
    }
  }

  bool OwnDir = CacheDir.empty();
  if (OwnDir) {
    const char *Tmp = std::getenv("TMPDIR");
    std::string Templ =
        std::string(Tmp && *Tmp ? Tmp : "/tmp") + "/storebench.XXXXXX";
    std::vector<char> Buf(Templ.begin(), Templ.end());
    Buf.push_back('\0');
    if (!::mkdtemp(Buf.data())) {
      std::fprintf(stderr, "storebench: mkdtemp failed\n");
      return 1;
    }
    CacheDir = Buf.data();
  }

  // Cold compilation varies from sub-millisecond (tak) to a few
  // milliseconds (ray); the spread exercises both the fixed per-load
  // cost and the per-node scaling. Every registered cast mode appears
  // (sieve × AllCastModes below) so the serializer's mode byte and the
  // coercion section (present under the coercion-compiling modes) are
  // all measured.
  const Row Rows[] = {
      {"quicksort", "128", CastMode::Coercions},
      {"tak", "16 12 6", CastMode::Coercions},
      {"ray", "10", CastMode::Coercions},
  };

  unsigned Repeats = repeatsFromEnv();

  std::string Json;
  Json += "{\n  \"schema\": \"grift-bench-v1\",\n";
  Json += "  \"repeats\": " + std::to_string(Repeats) + ",\n";
  Json += "  \"results\": [\n";
  bool First = true;

  store::StoreConfig SC;
  SC.Dir = CacheDir;
  store::Store S(std::move(SC));
  if (!S.enabled()) {
    std::fprintf(stderr, "storebench: cannot use cache dir '%s'\n",
                 CacheDir.c_str());
    return 1;
  }

  struct Spec {
    std::string Name;
    std::string Source;
    std::string Input;
    CastMode Mode;
  };
  std::vector<Spec> Specs;
  {
    const BenchProgram &Sieve = getBenchmark("sieve");
    for (CastMode Mode : AllCastModes)
      Specs.push_back({"sieve", Sieve.Source, "100", Mode});
  }
  for (const Row &R : Rows) {
    const BenchProgram &B = getBenchmark(R.Bench);
    Specs.push_back({R.Bench, B.Source, R.Input, R.Mode});
  }
  Specs.push_back(
      {"synthetic/400", syntheticSource(400), "", CastMode::Coercions});

  int Status = 0;
  for (const Spec &R : Specs) {
    uint64_t Key = store::Store::key(R.Source, R.Mode, /*Optimize=*/false);

    // Cold: the full front-to-back pipeline the store short-circuits.
    std::vector<int64_t> ColdNs;
    std::string ColdResult;
    for (unsigned I = 0; I != Repeats; ++I) {
      Grift G;
      std::string Errors;
      int64_t T0 = nowNanos();
      auto Exe = G.compile(R.Source, R.Mode, Errors);
      int64_t T1 = nowNanos();
      if (!Exe) {
        std::fprintf(stderr, "storebench: compile failed for %s [%s]: %s\n",
                     R.Name.c_str(), castModeName(R.Mode), Errors.c_str());
        return 1;
      }
      ColdNs.push_back(T1 - T0);
      if (I == 0) {
        S.put(Key, Exe->program());
        RunResult Run = Exe->run(R.Input);
        if (!Run.OK) {
          std::fprintf(stderr, "storebench: cold run failed for %s [%s]\n",
                       R.Name.c_str(), castModeName(R.Mode));
          return 1;
        }
        ColdResult = Run.ResultText;
      }
    }

    // Warm: fresh engine each time — exactly a post-restart first job.
    std::vector<int64_t> WarmNs;
    for (unsigned I = 0; I != Repeats; ++I) {
      Grift G;
      VMProgram Prog;
      int64_t T0 = nowNanos();
      bool Loaded = S.load(Key, G.types(), G.coercions(), Prog);
      if (!Loaded) {
        std::fprintf(stderr, "storebench: warm load MISSED for %s [%s]: %s\n",
                     R.Name.c_str(), castModeName(R.Mode), S.lastReason().c_str());
        return 1;
      }
      Executable Exe = G.adopt(std::move(Prog));
      int64_t T1 = nowNanos();
      WarmNs.push_back(T1 - T0);
      if (I == 0) {
        RunResult Run = Exe.run(R.Input);
        if (!Run.OK || Run.ResultText != ColdResult) {
          std::fprintf(stderr,
                       "storebench: WARM RESULT DIVERGES for %s [%s]: "
                       "cold '%s' warm '%s'\n",
                       R.Name.c_str(), castModeName(R.Mode), ColdResult.c_str(),
                       Run.OK ? Run.ResultText.c_str() : "<error>");
          Status = 1;
        }
      }
    }

    int64_t Cold = median(ColdNs);
    int64_t Warm = median(WarmNs);
    uint64_t Pct =
        Cold > 0 ? static_cast<uint64_t>((Warm * 100 + Cold - 1) / Cold) : 0;
    store::StoreStats SS = S.stats();

    if (!First)
      Json += ",\n";
    First = false;
    Json += std::string("    {\"name\": \"store/") + R.Name + "\", " +
            "\"mode\": \"" + castModeName(R.Mode) + "\"";
    Json += ", \"median_ns\": " + std::to_string(Warm);
    Json += ", \"cold_compile_ns\": " + std::to_string(Cold);
    Json += ", \"warm_load_ns\": " + std::to_string(Warm);
    Json += ", \"warm_over_cold_pct\": " + std::to_string(Pct);
    Json += ", \"store_hits\": " + std::to_string(SS.Hits);
    Json += ", \"store_misses\": " + std::to_string(SS.Misses);
    Json += ", \"store_corrupt\": " + std::to_string(SS.Corrupt);
    Json += ", \"store_evicted\": " + std::to_string(SS.Evicted);
    Json += "}";

    std::fprintf(stderr, "store/%-12s %-11s cold %8.3f ms  warm %8.3f ms  "
                         "(%llu%%)\n",
                 R.Name.c_str(), castModeName(R.Mode), Cold / 1e6, Warm / 1e6,
                 static_cast<unsigned long long>(Pct));
  }
  Json += "\n  ]\n}\n";

  if (OutPath.empty()) {
    std::fputs(Json.c_str(), stdout);
  } else {
    std::ofstream Out(OutPath);
    if (!Out) {
      std::fprintf(stderr, "storebench: cannot open %s\n", OutPath.c_str());
      return 1;
    }
    Out << Json;
  }

  if (OwnDir)
    removeTree(CacheDir);
  return Status;
}
