//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the per-figure benchmark harnesses: compile
/// configurations, take mean-of-N timings of the (time ...) region, and
/// print aligned tables. Methodology follows paper Section 4.1: internal
/// timing (setup excluded) and the mean of repeated measurements.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_BENCH_BENCHUTIL_H
#define GRIFT_BENCH_BENCHUTIL_H

#include "bench_programs/Benchmarks.h"
#include "grift/Grift.h"
#include "lattice/Lattice.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace grift::bench {

/// One timed run.
struct Measurement {
  bool OK = false;
  double Millis = 0;       ///< timed region (falls back to wall time)
  uint64_t Casts = 0;      ///< runtime casts executed
  uint64_t Chain = 0;      ///< longest proxy chain traversed
  uint64_t PeakHeap = 0;   ///< heap high-water mark in bytes
  std::string Error;
};

inline Executable compileOrDie(Grift &G, const std::string &Source,
                               CastMode Mode) {
  std::string Errors;
  auto Exe = G.compile(Source, Mode, Errors);
  if (!Exe) {
    std::fprintf(stderr, "bench compile error: %s\n", Errors.c_str());
    std::exit(1);
  }
  return std::move(*Exe);
}

inline Executable compileAstOrDie(Grift &G, const Program &Ast,
                                  CastMode Mode) {
  std::string Errors;
  auto Exe = G.compileAst(Ast, Mode, Errors);
  if (!Exe) {
    std::fprintf(stderr, "bench compile error: %s\n", Errors.c_str());
    std::exit(1);
  }
  return std::move(*Exe);
}

inline Measurement runOnce(const Executable &Exe, const std::string &Input) {
  RunResult R = Exe.run(Input);
  Measurement M;
  M.OK = R.OK;
  if (!R.OK) {
    M.Error = R.Error.str();
    return M;
  }
  int64_t Nanos = R.Stats.TimedNanos >= 0 ? R.Stats.TimedNanos : R.WallNanos;
  M.Millis = Nanos / 1e6;
  M.Casts = R.Stats.CastsApplied;
  M.Chain = R.Stats.LongestProxyChain;
  M.PeakHeap = R.PeakHeapBytes;
  return M;
}

/// Mean of \p Repeats timed runs (counters from the last run; they are
/// deterministic across runs).
inline Measurement measure(const Executable &Exe, const std::string &Input,
                           unsigned Repeats = 5) {
  Measurement Total;
  for (unsigned I = 0; I != Repeats; ++I) {
    Measurement M = runOnce(Exe, Input);
    if (!M.OK)
      return M;
    Total.OK = true;
    Total.Millis += M.Millis;
    Total.Casts = M.Casts;
    Total.Chain = M.Chain;
    Total.PeakHeap = M.PeakHeap;
  }
  Total.Millis /= Repeats;
  return Total;
}

/// Reads an optional scale factor from GRIFT_BENCH_REPEATS (default 5).
inline unsigned repeatsFromEnv() {
  if (const char *Env = std::getenv("GRIFT_BENCH_REPEATS")) {
    int N = std::atoi(Env);
    if (N > 0)
      return static_cast<unsigned>(N);
  }
  return 5;
}

} // namespace grift::bench

#endif // GRIFT_BENCH_BENCHUTIL_H
