//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Figure 8: cumulative performance across the configuration
/// lattice. For each benchmark we measure coarse-grained (per-define,
/// left column of the figure) and fine-grained (right column)
/// configurations under both cast implementations and report the
/// cumulative distribution of slowdowns.
///
/// Substitution note (DESIGN.md §5): the paper normalizes slowdowns to
/// Racket; we normalize to Dynamic Grift with coercions, which preserves
/// the ordering and spread of configurations — the claim under test is
/// that coercions eliminate the far-right catastrophic tail that
/// type-based casts exhibit (quicksort, sieve).
///
//===----------------------------------------------------------------------===//
#include "BenchUtil.h"

#include <algorithm>
#include <vector>

using namespace grift;
using namespace grift::bench;

namespace {

struct LatticeRow {
  const char *Name;
  const char *Input;
};

constexpr LatticeRow Rows[] = {
    {"sieve", "100"},     {"n-body", "500"},  {"tak", "16 12 6"},
    {"ray", "20"},        {"quicksort", "128"}, {"blackscholes", "4000"},
    {"matmult", "20"},    {"fft", "1024"},
};

void printCdf(const char *Label, std::vector<double> Slowdowns) {
  std::sort(Slowdowns.begin(), Slowdowns.end());
  std::printf("  %-22s n=%-3zu", Label, Slowdowns.size());
  for (double Threshold : {1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 100.0}) {
    size_t Count = std::upper_bound(Slowdowns.begin(), Slowdowns.end(),
                                    Threshold) -
                   Slowdowns.begin();
    std::printf("  <=%.0fx:%3zu", Threshold, Count);
  }
  std::printf("  worst: %.2fx\n", Slowdowns.empty() ? 0.0 : Slowdowns.back());
}

void latticeFor(const LatticeRow &Row, unsigned Repeats) {
  const BenchProgram &B = getBenchmark(Row.Name);
  Grift G;
  std::string Errors;
  auto Ast = G.parse(B.Source, Errors);
  if (!Ast) {
    std::fprintf(stderr, "%s", Errors.c_str());
    std::exit(1);
  }

  // Baseline: Dynamic Grift with coercions (stands in for Racket).
  Program Erased = eraseTypes(*Ast, G.types());
  Measurement Base = measure(compileAstOrDie(G, Erased, CastMode::Coercions),
                             Row.Input, Repeats);
  if (!Base.OK || Base.Millis <= 0) {
    std::fprintf(stderr, "baseline failed for %s\n", Row.Name);
    return;
  }

  auto Coarse = coarseConfigs(*Ast, G.types(), /*MaxConfigs=*/16, 7);
  auto Fine = sampleFineGrained(*Ast, G.types(), /*Bins=*/4, /*PerBin=*/3,
                                20190622);

  std::printf("%s (baseline: dynamic coercions %.2f ms)\n", Row.Name,
              Base.Millis);
  for (bool FineGrained : {false, true}) {
    const auto &Configs = FineGrained ? Fine : Coarse;
    for (CastMode Mode : {CastMode::Coercions, CastMode::TypeBased}) {
      std::vector<double> Slowdowns;
      for (const Configuration &C : Configs) {
        Measurement M =
            measure(compileAstOrDie(G, C.Prog, Mode), Row.Input, Repeats);
        if (M.OK)
          Slowdowns.push_back(M.Millis / Base.Millis);
      }
      std::string Label = std::string(FineGrained ? "fine" : "coarse") + " " +
                          castModeName(Mode);
      printCdf(Label.c_str(), std::move(Slowdowns));
    }
  }
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("Figure 8: cumulative slowdown over configuration lattices\n"
              "(counts of configurations within each slowdown of the "
              "dynamic baseline;\nhigher counts at low thresholds = the "
              "steeply-climbing lines of the figure)\n\n");
  for (const LatticeRow &Row : Rows)
    latticeFor(Row, /*Repeats=*/2);
  return 0;
}
