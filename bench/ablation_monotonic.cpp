//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation for the paper's Section 5 direction: monotonic references.
/// The paper reports that operations on references "always check whether
/// the address is proxied even in typed code regions, which causes
/// slowdowns in array intensive benchmarks" and that monotonic
/// references eliminate those overheads.
///
/// Two experiments:
///   * typed array-intensive benchmarks under Static / Coercions /
///     Monotonic — monotonic compiles fully static reference operations
///     to the same unchecked instructions as Static Grift;
///   * the Figure 3 quicksort (one Dyn annotation) under Coercions /
///     TypeBased / Monotonic — monotonic removes the per-operation proxy
///     conversion entirely (the cell is strengthened once).
///
//===----------------------------------------------------------------------===//
#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <map>

using namespace grift;
using namespace grift::bench;

namespace {

double staticBaselineMs(const std::string &Name, const std::string &Source,
                        const std::string &Input) {
  static std::map<std::string, double> Cache;
  auto It = Cache.find(Name);
  if (It != Cache.end())
    return It->second;
  Grift G;
  Measurement M =
      measure(compileOrDie(G, Source, CastMode::Static), Input, 3);
  double Ms = M.OK ? M.Millis : -1;
  Cache.emplace(Name, Ms);
  return Ms;
}

void runTypedArray(benchmark::State &State, const char *Name, CastMode Mode) {
  const BenchProgram &B = getBenchmark(Name);
  Grift G;
  Executable Exe = compileOrDie(G, B.Source, Mode);
  double Baseline = staticBaselineMs(B.Name, B.Source, B.BenchInput);
  for (auto _ : State) {
    Measurement M = runOnce(Exe, B.BenchInput);
    if (!M.OK) {
      State.SkipWithError(M.Error.c_str());
      return;
    }
    State.SetIterationTime(M.Millis / 1000.0);
    if (Baseline > 0)
      State.counters["vs_static"] = Baseline / M.Millis;
  }
}

void runFig3(benchmark::State &State, CastMode Mode) {
  Grift G;
  Executable Exe = compileOrDie(G, quicksortFig3Source(), Mode);
  for (auto _ : State) {
    Measurement M = runOnce(Exe, "256");
    if (!M.OK) {
      State.SkipWithError(M.Error.c_str());
      return;
    }
    State.SetIterationTime(M.Millis / 1000.0);
    State.counters["casts"] = static_cast<double>(M.Casts);
    State.counters["chain"] = static_cast<double>(M.Chain);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  for (const char *Name : {"matmult", "quicksort", "fft", "n-body"}) {
    for (CastMode Mode :
         {CastMode::Static, CastMode::Coercions, CastMode::Monotonic}) {
      std::string Label =
          std::string("typed_arrays/") + Name + "/" + castModeName(Mode);
      benchmark::RegisterBenchmark(Label.c_str(),
                                   [Name, Mode](benchmark::State &State) {
                                     runTypedArray(State, Name, Mode);
                                   })
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(3);
    }
  }
  for (CastMode Mode :
       {CastMode::Coercions, CastMode::TypeBased, CastMode::Monotonic}) {
    std::string Label =
        std::string("fig3_quicksort_one_dyn/") + castModeName(Mode);
    benchmark::RegisterBenchmark(
        Label.c_str(),
        [Mode](benchmark::State &State) { runFig3(State, Mode); })
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(Mode == CastMode::TypeBased ? 1 : 3);
  }
  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
