//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Figures 19 and 20 (Appendix C): the partially typed sweep for
/// the remaining benchmarks — tak, ray, quicksort, and matmult.
///
/// Expected shapes: quicksort shows catastrophic type-based
/// configurations (chains in the hundreds); tak, ray, and matmult do not
/// elicit long chains, so the two cast implementations track each other.
///
//===----------------------------------------------------------------------===//
#include "PartialSweep.h"

using namespace grift::bench;

int main() {
  std::printf("Figures 19-20 (appendix): partially typed configurations\n\n");
  SweepOptions Opts;
  sweepBenchmark("tak", "18 12 6", Opts);
  sweepBenchmark("ray", "30", Opts);
  sweepBenchmark("quicksort", "256", Opts);
  sweepBenchmark("matmult", "28", Opts);
  return 0;
}
