//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation microbenchmarks on the runtime primitives behind the paper's
/// results (DESIGN.md §3's design-choice index):
///
///   * coercion creation, interned-cache hits vs. first-time builds;
///   * coercion composition — the even/odd compression pair;
///   * applying coercions to values (identity / inject / project);
///   * proxied reference reads: one composed coercion proxy vs.
///     type-based chains of depth 1..64 (the essence of Figure 4);
///   * proxied function calls per mode;
///   * heap allocation + GC throughput.
///
//===----------------------------------------------------------------------===//
#include "BenchUtil.h"

#include "service/ExecService.h"

#include <benchmark/benchmark.h>

#include <future>

using namespace grift;
using namespace grift::bench;

namespace {

//===----------------------------------------------------------------------===//
// Coercion creation and composition
//===----------------------------------------------------------------------===//

void makeCoercionCached(benchmark::State &State) {
  TypeContext Types;
  CoercionFactory F(Types);
  const Type *Fn = Types.function({Types.dyn()}, Types.boolean());
  const Type *Fn2 = Types.function({Types.boolean()}, Types.boolean());
  F.make(Fn, Fn2, "p"); // warm the cache
  for (auto _ : State)
    benchmark::DoNotOptimize(F.make(Fn, Fn2, "p"));
}
BENCHMARK(makeCoercionCached);

void makeCoercionFresh(benchmark::State &State) {
  TypeContext Types;
  CoercionFactory F(Types);
  uint64_t I = 0;
  for (auto _ : State) {
    // A fresh label defeats the cache, measuring a full build.
    benchmark::DoNotOptimize(
        F.make(Types.function({Types.dyn()}, Types.boolean()),
               Types.function({Types.boolean()}, Types.boolean()),
               "p" + std::to_string(I++)));
  }
}
BENCHMARK(makeCoercionFresh);

void composeEvenOddPair(benchmark::State &State) {
  // The composition that keeps even/odd's continuation proxy at size 1.
  TypeContext Types;
  CoercionFactory F(Types);
  const Type *DynBool = Types.function({Types.dyn()}, Types.boolean());
  const Type *BoolBool = Types.function({Types.boolean()}, Types.boolean());
  const Coercion *A = F.make(DynBool, BoolBool, "a");
  const Coercion *B = F.make(BoolBool, DynBool, "b");
  const Coercion *Acc = A;
  for (auto _ : State) {
    Acc = F.compose(Acc, Acc == A ? B : A);
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(composeEvenOddPair);

void composeRecursiveStream(benchmark::State &State) {
  // Composition through μ-coercions (sieve's stream type).
  TypeContext Types;
  CoercionFactory F(Types);
  const Type *S = Types.rec(
      Types.tuple({Types.integer(), Types.function({}, Types.var(0))}));
  const Type *SD = Types.rec(
      Types.tuple({Types.dyn(), Types.function({}, Types.var(0))}));
  const Coercion *Up = F.make(S, SD, "u");
  const Coercion *Down = F.make(SD, S, "d");
  for (auto _ : State)
    benchmark::DoNotOptimize(F.compose(Up, Down));
}
BENCHMARK(composeRecursiveStream);

//===----------------------------------------------------------------------===//
// Applying coercions to values
//===----------------------------------------------------------------------===//

void applyInjectProject(benchmark::State &State) {
  TypeContext Types;
  CoercionFactory F(Types);
  Runtime RT(Types, F, CastMode::Coercions);
  const Coercion *Up = F.make(Types.integer(), Types.dyn(), "u");
  const Coercion *Down = F.make(Types.dyn(), Types.integer(), "d");
  Value V = Value::fromFixnum(42);
  for (auto _ : State) {
    Value D = RT.applyCoercion(V, Up);
    benchmark::DoNotOptimize(RT.applyCoercion(D, Down));
  }
}
BENCHMARK(applyInjectProject);

void proxiedReadDepth(benchmark::State &State) {
  // Reading through a type-based proxy chain of the given depth vs. the
  // single composed proxy coercions maintain (depth taken from the
  // benchmark argument; depth 1 ≈ the coercion case).
  int64_t Depth = State.range(0);
  TypeContext Types;
  CoercionFactory F(Types);
  Runtime RT(Types, F, CastMode::TypeBased);
  const Type *RefInt = Types.box(Types.integer());
  const Type *RefDyn = Types.box(Types.dyn());
  Value Box = RT.heap().allocBox(Value::fromFixnum(7));
  Rooted Root(RT.heap(), Box);
  Value P = Box;
  for (int64_t I = 0; I != Depth; ++I)
    P = RT.applyTypeBased(P, I % 2 == 0 ? RefInt : RefDyn,
                          I % 2 == 0 ? RefDyn : RefInt, nullptr);
  Rooted KeepP(RT.heap(), P);
  for (auto _ : State)
    benchmark::DoNotOptimize(RT.boxRead(P));
}
BENCHMARK(proxiedReadDepth)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void proxiedReadCoercions(benchmark::State &State) {
  // The coercion-mode counterpart: any number of casts composes to one
  // proxy, so reads cost the same regardless of cast history.
  int64_t Casts = State.range(0);
  TypeContext Types;
  CoercionFactory F(Types);
  Runtime RT(Types, F, CastMode::Coercions);
  const Type *RefInt = Types.box(Types.integer());
  const Type *RefDyn = Types.box(Types.dyn());
  Value Box = RT.heap().allocBox(Value::fromFixnum(7));
  Rooted Root(RT.heap(), Box);
  Value P = Box;
  for (int64_t I = 0; I != Casts; ++I)
    P = RT.applyCoercion(P, F.make(I % 2 == 0 ? RefInt : RefDyn,
                                   I % 2 == 0 ? RefDyn : RefInt, "p"));
  Rooted KeepP(RT.heap(), P);
  for (auto _ : State)
    benchmark::DoNotOptimize(RT.boxRead(P));
}
BENCHMARK(proxiedReadCoercions)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

//===----------------------------------------------------------------------===//
// Whole-program primitives
//===----------------------------------------------------------------------===//

void vmCallThroughProxy(benchmark::State &State) {
  // A hot loop calling a function that has been cast (and so is proxied)
  // under each cast mode.
  CastMode Mode = static_cast<CastMode>(State.range(0));
  Grift G;
  const char *Source =
      "(define f : (Dyn -> Dyn) (lambda ([x : Int]) : Int (+ x 1)))"
      "(define g : (Int -> Int) f)"
      "(time (repeat (i 0 100000) (acc : Int 0) (g acc)))";
  Executable Exe = compileOrDie(G, Source, Mode);
  for (auto _ : State) {
    Measurement M = runOnce(Exe, "");
    if (!M.OK) {
      State.SkipWithError(M.Error.c_str());
      return;
    }
    State.SetIterationTime(M.Millis / 1000.0);
  }
}
BENCHMARK(vmCallThroughProxy)
    ->Arg(static_cast<int>(CastMode::Coercions))
    ->Arg(static_cast<int>(CastMode::TypeBased))
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void gcAllocationThroughput(benchmark::State &State) {
  Grift G;
  const char *Source = "(time (repeat (i 0 200000) (acc : Int 0)"
                       "  (+ acc (tuple-proj (tuple i i i) 0))))";
  Executable Exe = compileOrDie(G, Source, CastMode::Static);
  for (auto _ : State) {
    Measurement M = runOnce(Exe, "");
    if (!M.OK) {
      State.SkipWithError(M.Error.c_str());
      return;
    }
    State.SetIterationTime(M.Millis / 1000.0);
  }
}
BENCHMARK(gcAllocationThroughput)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

//===----------------------------------------------------------------------===//
// Service layer
//===----------------------------------------------------------------------===//

void servicePoolThroughput(benchmark::State &State) {
  // Jobs/sec through an 8-thread pool: Arg(1) = warm per-slot compile
  // caches (hot-program steady state), Arg(0) = caches disabled (every
  // job pays a full compile — the cold / adversarial-traffic floor).
  // items_per_second is the service-layer regression observable.
  const bool Warm = State.range(0) != 0;
  grift::service::ServiceConfig Config;
  Config.Threads = 8;
  Config.CompileCache = Warm;
  grift::service::ExecService Service(Config);

  std::vector<std::string> Sources;
  for (int I = 0; I != 16; ++I)
    Sources.push_back(
        "(letrec ([fact : (Int -> Int) (lambda ([n : Int]) : Int"
        "           (if (= n 0) 1 (* n (fact (- n 1)))))])"
        "  (+ " +
        std::to_string(I) + " (fact 12)))");

  auto RunBatch = [&]() -> bool {
    std::vector<std::future<grift::service::JobResult>> Futures;
    Futures.reserve(Sources.size());
    for (const std::string &S : Sources) {
      grift::service::JobSpec Spec;
      Spec.Source = S;
      Futures.push_back(Service.submit(std::move(Spec)));
    }
    for (auto &F : Futures)
      if (!F.get().ok())
        return false;
    return true;
  };

  if (Warm) {
    // Populate every slot's cache (jobs land on arbitrary slots, so a
    // few rounds make a cold hit in the timed region unlikely).
    for (int Round = 0; Round != 8; ++Round)
      if (!RunBatch()) {
        State.SkipWithError("warmup job failed");
        return;
      }
  }
  for (auto _ : State) {
    if (!RunBatch()) {
      State.SkipWithError("job failed");
      return;
    }
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Sources.size()));
}
BENCHMARK(servicePoolThroughput)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"warm_cache"})
    // Wall time, not submitter CPU time: the submitting thread mostly
    // blocks on futures while the pool does the work.
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
