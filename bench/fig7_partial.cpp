//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Figure 7: runtime, cast count, and longest proxy chain across
/// partially typed configurations of sieve, n-body, blackscholes, and
/// fft, comparing Grift with coercions against Grift with type-based
/// casts, with Static and Dynamic Grift as reference lines.
///
/// Expected shapes (paper Section 4.2):
///   * sieve elicits very long type-based proxy chains on some
///     configurations — the catastrophic cases coercions eliminate;
///   * n-body shows mild chains and a mild coercion advantage;
///   * blackscholes and fft elicit no chains: the two cast
///     implementations perform comparably.
///
//===----------------------------------------------------------------------===//
#include "PartialSweep.h"

using namespace grift::bench;

int main() {
  std::printf("Figure 7: partially typed configurations "
              "(binned fine-grained samples)\n\n");
  SweepOptions Opts;
  sweepBenchmark("sieve", "120", Opts);
  sweepBenchmark("n-body", "1000", Opts);
  sweepBenchmark("blackscholes", "10000", Opts);
  sweepBenchmark("fft", "4096", Opts);
  return 0;
}
