//===----------------------------------------------------------------------===//
///
/// \file
/// The partially-typed sweep shared by the Figure 7 and Figure 19/20
/// harnesses: for one benchmark, measure the Static and Dynamic Grift
/// reference lines and a binned sample of fine-grained configurations
/// under both cast implementations, printing one row per measurement
/// (the three y-axes of the figures: runtime, runtime cast count,
/// longest proxy chain) and the §4.2-style speedup summary.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_BENCH_PARTIALSWEEP_H
#define GRIFT_BENCH_PARTIALSWEEP_H

#include "BenchUtil.h"

#include <algorithm>
#include <vector>

namespace grift::bench {

struct SweepOptions {
  unsigned Bins = 5;
  unsigned PerBin = 3;
  unsigned Repeats = 3;
  uint64_t Seed = 20190622; // PLDI'19
};

inline void printRow(const char *Bench, const char *Config, double Precision,
                     const char *Mode, const Measurement &M) {
  if (!M.OK) {
    std::printf("%-13s %-9s %7.1f%% %-11s %12s  error: %s\n", Bench, Config,
                Precision * 100, Mode, "-", M.Error.c_str());
    return;
  }
  std::printf("%-13s %-9s %7.1f%% %-11s %12.3f %14llu %10llu\n", Bench,
              Config, Precision * 100, Mode, M.Millis,
              static_cast<unsigned long long>(M.Casts),
              static_cast<unsigned long long>(M.Chain));
}

inline void sweepBenchmark(const std::string &Name, const std::string &Input,
                           const SweepOptions &Opts) {
  const BenchProgram &B = getBenchmark(Name);
  Grift G;
  std::string Errors;
  auto Ast = G.parse(B.Source, Errors);
  if (!Ast) {
    std::fprintf(stderr, "%s", Errors.c_str());
    std::exit(1);
  }

  std::printf("%-13s %-9s %8s %-11s %12s %14s %10s\n", "benchmark", "config",
              "typed", "mode", "time(ms)", "casts", "chain");

  // Reference lines.
  Measurement Static =
      measure(compileAstOrDie(G, *Ast, CastMode::Static), Input,
              Opts.Repeats);
  printRow(Name.c_str(), "static", 1.0, "static", Static);

  Program Erased = eraseTypes(*Ast, G.types());
  for (CastMode Mode : {CastMode::Coercions, CastMode::TypeBased}) {
    Measurement M =
        measure(compileAstOrDie(G, Erased, Mode), Input, Opts.Repeats);
    printRow(Name.c_str(), "dynamic", 0.0, castModeName(Mode), M);
  }

  // Sampled partially typed configurations, both cast implementations.
  auto Configs =
      sampleFineGrained(*Ast, G.types(), Opts.Bins, Opts.PerBin, Opts.Seed);
  std::sort(Configs.begin(), Configs.end(),
            [](const Configuration &A, const Configuration &B) {
              return A.Precision < B.Precision;
            });
  double MinRatio = 1e30;
  double MaxRatio = 0;
  for (const Configuration &C : Configs) {
    Measurement MC = measure(compileAstOrDie(G, C.Prog, CastMode::Coercions),
                             Input, Opts.Repeats);
    Measurement MT = measure(compileAstOrDie(G, C.Prog, CastMode::TypeBased),
                             Input, Opts.Repeats);
    printRow(Name.c_str(), "sampled", C.Precision, "coercions", MC);
    printRow(Name.c_str(), "sampled", C.Precision, "type-based", MT);
    if (MC.OK && MT.OK && MC.Millis > 0) {
      double Ratio = MT.Millis / MC.Millis;
      MinRatio = std::min(MinRatio, Ratio);
      MaxRatio = std::max(MaxRatio, Ratio);
    }
  }
  // The Section 4.2 claim format: "coercions are Ax to Bx faster than
  // type-based casts on <benchmark>".
  if (MaxRatio > 0)
    std::printf("%-13s summary: coercions are %.2fx to %.2fx faster than "
                "type-based casts\n\n",
                Name.c_str(), MinRatio, MaxRatio);
}

} // namespace grift::bench

#endif // GRIFT_BENCH_PARTIALSWEEP_H
