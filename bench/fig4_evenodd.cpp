//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Figure 4 (left): the CPS even/odd program of Figure 2. Sweeps
/// the input n and reports, per cast mode, the runtime of the timed
/// region plus the `casts` and `chain` (longest proxy chain) counters —
/// the three y-axes of the figure.
///
/// Expected shape: `chain` grows linearly with n under type-based casts
/// and stays at 1 under coercions; coercion runtime stays linear with a
/// small constant.
///
//===----------------------------------------------------------------------===//
#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace grift;
using namespace grift::bench;

namespace {

void runEvenOdd(benchmark::State &State, CastMode Mode) {
  int64_t N = State.range(0);
  Grift G;
  Executable Exe = compileOrDie(G, evenOddSource(), Mode);
  for (auto _ : State) {
    Measurement M = runOnce(Exe, std::to_string(N));
    if (!M.OK) {
      State.SkipWithError(M.Error.c_str());
      return;
    }
    State.SetIterationTime(M.Millis / 1000.0);
    State.counters["casts"] = static_cast<double>(M.Casts);
    State.counters["chain"] = static_cast<double>(M.Chain);
    State.counters["peak_heap"] = static_cast<double>(M.PeakHeap);
  }
}

void evenOddCoercions(benchmark::State &State) {
  runEvenOdd(State, CastMode::Coercions);
}

void evenOddTypeBased(benchmark::State &State) {
  runEvenOdd(State, CastMode::TypeBased);
}

} // namespace

BENCHMARK(evenOddCoercions)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(20000)
    ->Arg(50000)
    ->Arg(100000)
    ->Arg(200000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

BENCHMARK(evenOddTypeBased)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(20000)
    ->Arg(50000)
    ->Arg(100000)
    ->Arg(200000)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

BENCHMARK_MAIN();
