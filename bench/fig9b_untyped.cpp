//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Figure 9b: performance on *untyped* programs. Every benchmark
/// is type-erased (Dynamic Grift) and run under both cast
/// implementations. The paper compares against Racket, Gambit, and Chez
/// Scheme, which require those toolchains; instead the `vs_static`
/// counter reports the dynamic program's slowdown relative to Static
/// Grift on the typed version — the cost of full dynamism on an
/// otherwise identical substrate (DESIGN.md §5).
///
/// Expected shape: untyped code pays a constant factor (first-order
/// checks on every primitive) but no catastrophic blowups, and the two
/// cast implementations are nearly identical because the Dyn
/// elimination forms never allocate proxies (the paper's Section 3
/// optimization).
///
//===----------------------------------------------------------------------===//
#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <map>

using namespace grift;
using namespace grift::bench;

namespace {

double staticBaselineMs(const BenchProgram &B) {
  static std::map<std::string, double> Cache;
  auto It = Cache.find(B.Name);
  if (It != Cache.end())
    return It->second;
  Grift G;
  Measurement M = measure(compileOrDie(G, B.Source, CastMode::Static),
                          B.BenchInput, 3);
  double Ms = M.OK ? M.Millis : -1;
  Cache.emplace(B.Name, Ms);
  return Ms;
}

void runUntyped(benchmark::State &State, const BenchProgram &B,
                CastMode Mode) {
  Grift G;
  std::string Errors;
  auto Ast = G.parse(B.Source, Errors);
  if (!Ast) {
    State.SkipWithError(Errors.c_str());
    return;
  }
  Program Erased = eraseTypes(*Ast, G.types());
  Executable Exe = compileAstOrDie(G, Erased, Mode);
  double Baseline = staticBaselineMs(B);
  for (auto _ : State) {
    Measurement M = runOnce(Exe, B.BenchInput);
    if (!M.OK) {
      State.SkipWithError(M.Error.c_str());
      return;
    }
    State.SetIterationTime(M.Millis / 1000.0);
    State.counters["casts"] = static_cast<double>(M.Casts);
    if (Baseline > 0)
      State.counters["vs_static"] = Baseline / M.Millis;
  }
}

} // namespace

int main(int Argc, char **Argv) {
  for (const BenchProgram &B : allBenchmarks()) {
    for (CastMode Mode : {CastMode::Coercions, CastMode::TypeBased}) {
      std::string Name = "fig9b/" + B.Name + "/" + castModeName(Mode);
      benchmark::RegisterBenchmark(
          Name.c_str(),
          [&B, Mode](benchmark::State &State) { runUntyped(State, B, Mode); })
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(3);
    }
  }
  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
