//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation for the paper's Section 5 conjecture: "optimizations such as
/// ... constant propagation, constant folding ... will eliminate many
/// first-order checks, the main cause of slowdowns in dynamically typed
/// code." Runs every benchmark fully erased (Dynamic Grift, coercions)
/// with the core-IR optimizer off and on; the `casts` counter shows the
/// first-order checks removed and `vs_plain` the resulting speedup.
///
//===----------------------------------------------------------------------===//
#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <map>

using namespace grift;
using namespace grift::bench;

namespace {

double plainBaselineMs(const BenchProgram &B) {
  static std::map<std::string, double> Cache;
  auto It = Cache.find(B.Name);
  if (It != Cache.end())
    return It->second;
  Grift G;
  std::string Errors;
  auto Ast = G.parse(B.Source, Errors);
  if (!Ast) {
    std::fprintf(stderr, "%s", Errors.c_str());
    std::exit(1);
  }
  Program Erased = eraseTypes(*Ast, G.types());
  auto Exe = G.compileAst(Erased, CastMode::Coercions, Errors, false);
  if (!Exe) {
    std::fprintf(stderr, "%s", Errors.c_str());
    std::exit(1);
  }
  Measurement M = measure(*Exe, B.BenchInput, 3);
  Cache.emplace(B.Name, M.OK ? M.Millis : -1);
  return Cache.at(B.Name);
}

void runErased(benchmark::State &State, const BenchProgram &B,
               bool Optimize) {
  Grift G;
  std::string Errors;
  auto Ast = G.parse(B.Source, Errors);
  if (!Ast) {
    State.SkipWithError(Errors.c_str());
    return;
  }
  Program Erased = eraseTypes(*Ast, G.types());
  auto Exe = G.compileAst(Erased, CastMode::Coercions, Errors, Optimize);
  if (!Exe) {
    State.SkipWithError(Errors.c_str());
    return;
  }
  double Baseline = plainBaselineMs(B);
  for (auto _ : State) {
    Measurement M = runOnce(*Exe, B.BenchInput);
    if (!M.OK) {
      State.SkipWithError(M.Error.c_str());
      return;
    }
    State.SetIterationTime(M.Millis / 1000.0);
    State.counters["casts"] = static_cast<double>(M.Casts);
    if (Baseline > 0)
      State.counters["vs_plain"] = Baseline / M.Millis;
  }
}

} // namespace

int main(int Argc, char **Argv) {
  for (const BenchProgram &B : allBenchmarks()) {
    for (bool Optimize : {false, true}) {
      std::string Name = std::string("dynamic/") + B.Name + "/" +
                         (Optimize ? "optimized" : "plain");
      benchmark::RegisterBenchmark(
          Name.c_str(), [&B, Optimize](benchmark::State &State) {
            runErased(State, B, Optimize);
          })
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(3);
    }
  }
  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
