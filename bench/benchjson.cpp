//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-readable perf harness for regression tracking. Runs a fixed
/// suite — the Figure 4 even/odd and quicksort programs, a mid-lattice
/// Figure 7 configuration, the Figure 8 benchmarks (typed and fully
/// dynamic), a cast-heavy microloop, and a GC pause suite (each program
/// under the generational collector and its nursery-off stop-the-world
/// twin) — across cast modes, and emits one JSON document of
/// median-of-N timings plus the deterministic runtime counters (casts,
/// chain, compositions, inline-cache hits, allocation bytes/objects,
/// minor/major collections, promotion volume, remembered-set peak) and
/// the machine-dependent GC pause times.
///
///   benchjson [--out FILE]
///
/// Repeats come from GRIFT_BENCH_REPEATS (default 5). Timing is the
/// program's internal (time ...) region when present, wall time
/// otherwise, following paper Section 4.1. Counters are taken from the
/// last run; they are deterministic across runs.
///
/// tools/bench_compare.py diffs two of these documents (tolerance-based,
/// counters exact, pauses reported but never failing) and enforces the
/// paper's shape invariants; CI runs it against the checked-in
/// BENCH_PR4.json.
///
//===----------------------------------------------------------------------===//
#include "bench_programs/Benchmarks.h"
#include "grift/Grift.h"
#include "lattice/Lattice.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

using namespace grift;

namespace {

struct Spec {
  std::string Name;   ///< stable benchmark id, e.g. "fig8/sieve/typed"
  std::string Source; ///< program text (already configured/erased)
  std::string Input;
  std::vector<CastMode> Modes;
  RunLimits Limits; ///< defaults; the gc/ suite overrides GCNurseryBytes
};

// Mode names come from the shared registry (castModeName in
// runtime/Mode.h), so benchjson rows, griftc, and the griftd protocol
// always agree on spelling.

/// Cast-heavy microloop: one Cast instruction site executed 200k times —
/// the inline-cache best case (and the type-based MakeCache worst case).
const char *CastLoop =
    "(time (repeat (i 0 200000) (acc : Int 0)"
    "  (+ acc (ann (ann i Dyn) Int))))";

std::vector<Spec> buildSuite(Grift &G) {
  std::vector<Spec> Suite;
  // Every gradual backend in the registry (coercions, type-based,
  // monotonic, coercion-passing): a backend added to GradualCastModes
  // is automatically benchmarked.
  const std::vector<CastMode> AllGradual(std::begin(GradualCastModes),
                                         std::end(GradualCastModes));
  const std::vector<CastMode> CoerceVsType = {CastMode::Coercions,
                                              CastMode::TypeBased};

  // Figure 4: the partially-typed even/odd (Figure 2) and quicksort
  // (Figure 3). Type-based even/odd builds Θ(n) proxy chains, so the
  // large size runs only where chains stay flat.
  Suite.push_back(
      {"fig4/evenodd/20000", evenOddSource(), "20000", AllGradual, {}});
  Suite.push_back({"fig4/evenodd/100000", evenOddSource(), "100000",
                   {CastMode::Coercions, CastMode::Monotonic,
                    CastMode::CoercionPassing},
                   {}});
  Suite.push_back(
      {"fig4/quicksort-fig3/256", quicksortFig3Source(), "256", AllGradual, {}});

  // Figure 7: one deterministic mid-precision fine-grained configuration
  // of quicksort (casts scattered through the hot loop).
  {
    const BenchProgram &B = getBenchmark("quicksort");
    std::string Errors;
    auto Ast = G.parse(B.Source, Errors);
    if (!Ast) {
      std::fprintf(stderr, "benchjson: parse failed: %s\n", Errors.c_str());
      std::exit(1);
    }
    auto Configs = sampleFineGrained(*Ast, G.types(), /*Bins=*/4,
                                     /*PerBin=*/1, 0x51C7);
    const Configuration *Mid = nullptr;
    for (const Configuration &C : Configs)
      if (!Mid || std::abs(C.Precision - 0.5) <
                      std::abs(Mid->Precision - 0.5))
        Mid = &C;
    if (Mid)
      Suite.push_back({"fig7/quicksort-mid/128", Mid->Prog.str(), "128",
                       CoerceVsType, {}});
  }

  // Figure 8: every suite benchmark, fully typed and fully dynamic.
  struct Row {
    const char *Name;
    const char *Input;
  };
  constexpr Row Rows[] = {
      {"sieve", "100"},      {"n-body", "500"},    {"tak", "16 12 6"},
      {"ray", "20"},         {"quicksort", "128"}, {"blackscholes", "4000"},
      {"matmult", "20"},     {"matmult-float", "20"}, {"fft", "1024"},
  };
  for (const Row &R : Rows) {
    const BenchProgram &B = getBenchmark(R.Name);
    Suite.push_back({std::string("fig8/") + R.Name + "/typed", B.Source,
                     R.Input, CoerceVsType, {}});
    std::string Errors;
    auto Ast = G.parse(B.Source, Errors);
    if (!Ast) {
      std::fprintf(stderr, "benchjson: parse failed: %s\n", Errors.c_str());
      std::exit(1);
    }
    Program Erased = eraseTypes(*Ast, G.types());
    Suite.push_back({std::string("fig8/") + R.Name + "/dynamic",
                     Erased.str(), R.Input, CoerceVsType, {}});
  }

  // Microbench: single-site cast loop.
  Suite.push_back({"micro/castloop/200000", CastLoop, "", AllGradual, {}});

  // GC pause suite: the same program and input, generational (64 KiB
  // nursery) vs the nursery-off stop-the-world baseline, under a
  // uniform pressure harness — a pre-tenured 350k-slot vector gives
  // major collections real mark work, and a 150k-box churn loop
  // guarantees the nursery-off twin crosses the major threshold. The
  // /gen rows emit gc_pause_ratio_pct — their median max pause as a
  // percentage of the /stw twin's — which CI gates with
  // bench_compare --slo. (Sieve is capped at 200: its lazy streams
  // survive minors, and a bigger input would promote the /gen row past
  // the major threshold, making the pair measure two majors instead of
  // minors vs majors.)
  const std::string GCLive =
      "(define gc-live : (Vect Int) (make-vector 350000 0))\n"
      "(define gc-churn : Int (repeat (i 0 150000) (acc : Int 0)"
      " (+ acc (unbox (box i)))))\n";
  constexpr Row GCRows[] = {
      {"quicksort", "2000"}, {"sieve", "200"}, {"ray", "150"}};
  for (const Row &R : GCRows) {
    const BenchProgram &B = getBenchmark(R.Name);
    RunLimits Stw;
    Stw.GCNurseryBytes = 0;
    RunLimits Gen;
    Gen.GCNurseryBytes = 64u << 10;
    Suite.push_back({std::string("gc/") + R.Name + "/stw",
                     GCLive + B.Source, R.Input,
                     {CastMode::Coercions}, Stw});
    Suite.push_back({std::string("gc/") + R.Name + "/gen",
                     GCLive + B.Source, R.Input,
                     {CastMode::Coercions}, Gen});
  }
  return Suite;
}

unsigned repeatsFromEnv() {
  if (const char *Env = std::getenv("GRIFT_BENCH_REPEATS")) {
    int N = std::atoi(Env);
    if (N > 0)
      return static_cast<unsigned>(N);
  }
  return 5;
}

int64_t median(std::vector<int64_t> Xs) {
  std::sort(Xs.begin(), Xs.end());
  size_t N = Xs.size();
  return (Xs[(N - 1) / 2] + Xs[N / 2]) / 2;
}

} // namespace

int main(int argc, char **argv) {
  std::string OutPath;
  std::string Filter;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--out") == 0 && I + 1 < argc) {
      OutPath = argv[++I];
    } else if (std::strcmp(argv[I], "--filter") == 0 && I + 1 < argc) {
      Filter = argv[++I];
    } else {
      std::fprintf(stderr, "usage: benchjson [--out FILE] [--filter SUBSTR]\n");
      return 2;
    }
  }

  unsigned Repeats = repeatsFromEnv();
  Grift Setup; // for lattice sampling / erasure during suite construction
  std::vector<Spec> Suite = buildSuite(Setup);

  std::map<std::string, int64_t> StwMaxPause;
  std::string Json;
  Json += "{\n  \"schema\": \"grift-bench-v1\",\n";
  Json += "  \"repeats\": " + std::to_string(Repeats) + ",\n";
  Json += "  \"results\": [\n";
  bool First = true;

  for (const Spec &S : Suite) {
    if (!Filter.empty() && S.Name.find(Filter) == std::string::npos)
      continue;
    for (CastMode Mode : S.Modes) {
      Grift G;
      std::string Errors;
      auto Exe = G.compile(S.Source, Mode, Errors);
      if (!Exe) {
        std::fprintf(stderr, "benchjson: compile failed for %s [%s]: %s\n",
                     S.Name.c_str(), castModeName(Mode), Errors.c_str());
        return 1;
      }
      std::vector<int64_t> Nanos;
      std::vector<int64_t> MaxPauses;
      std::vector<int64_t> MinorMaxPauses;
      RunResult Last;
      for (unsigned R = 0; R != Repeats; ++R) {
        Last = Exe->run(S.Input, S.Limits);
        if (!Last.OK) {
          std::fprintf(stderr, "benchjson: run failed for %s [%s]: %s\n",
                       S.Name.c_str(), castModeName(Mode),
                       Last.Error.str().c_str());
          return 1;
        }
        Nanos.push_back(Last.Stats.TimedNanos >= 0 ? Last.Stats.TimedNanos
                                                   : Last.WallNanos);
        MaxPauses.push_back(
            static_cast<int64_t>(Last.Stats.GCPauseMaxNs));
        MinorMaxPauses.push_back(
            static_cast<int64_t>(Last.Stats.GCMinorPauseMaxNs));
      }
      // Pause maxima are machine-dependent; median-of-repeats keeps the
      // gc/ ratio SLO stable against one noisy run.
      int64_t MaxPause = median(MaxPauses);
      int64_t MinorMaxPause = median(MinorMaxPauses);
      if (!First)
        Json += ",\n";
      First = false;
      Json += "    {\"name\": \"" + S.Name + "\", \"mode\": \"" +
              castModeName(Mode) + "\"";
      Json += ", \"median_ns\": " + std::to_string(median(Nanos));
      Json += ", \"casts\": " + std::to_string(Last.Stats.CastsApplied);
      Json += ", \"longest_chain\": " +
              std::to_string(Last.Stats.LongestProxyChain);
      Json += ", \"max_ret_casts\": " +
              std::to_string(Last.Stats.MaxRetCastsPerFrame);
      Json +=
          ", \"compositions\": " + std::to_string(Last.Stats.Compositions);
      Json += ", \"cache_hits\": " + std::to_string(Last.Stats.CacheHits);
      Json +=
          ", \"cache_misses\": " + std::to_string(Last.Stats.CacheMisses);
      Json += ", \"peak_heap\": " + std::to_string(Last.PeakHeapBytes);
      // Allocator observability: byte/object counters are deterministic
      // (bench_compare checks them exactly); pause times are wall-clock
      // and only ever reported.
      Json += ", \"alloc_bytes\": " + std::to_string(Last.Stats.AllocBytes);
      Json += ", \"alloc_objects\": " +
              std::to_string(Last.Stats.allocObjects());
      Json += ", \"alloc_by_class\": [";
      for (unsigned C = 0; C != RuntimeStats::NumAllocClasses; ++C)
        Json += (C ? ", " : "") +
                std::to_string(Last.Stats.AllocObjectsByClass[C]);
      Json += "]";
      Json += ", \"collections\": " + std::to_string(Last.Stats.Collections);
      Json += ", \"gc_pause_total_ns\": " +
              std::to_string(Last.Stats.GCPauseTotalNs);
      Json += ", \"gc_pause_max_ns\": " + std::to_string(MaxPause);
      // Generational observability: minor-collection count and pause
      // share, promotion volume, remembered-set peak. Counters are
      // deterministic; the minor pause max is median-of-repeats.
      Json += ", \"gc_minor_pauses\": " +
              std::to_string(Last.Stats.MinorCollections);
      Json += ", \"gc_minor_pause_max_ns\": " +
              std::to_string(MinorMaxPause);
      Json += ", \"gc_promoted_bytes\": " +
              std::to_string(Last.Stats.PromotedBytes);
      Json += ", \"remembered_set_peak\": " +
              std::to_string(Last.Stats.RememberedSetPeak);
      // The /gen half of a gc/ pair reports its max pause as a
      // percentage of its /stw twin (suite order guarantees the twin
      // ran first); the <=10 SLO on this field is the paper-level
      // "10x lower pauses" claim, gated in CI.
      if (S.Name.rfind("gc/", 0) == 0 &&
          S.Name.size() > 4 &&
          S.Name.compare(S.Name.size() - 4, 4, "/gen") == 0) {
        std::string Peer = S.Name.substr(0, S.Name.size() - 4);
        auto It = StwMaxPause.find(Peer);
        double Ratio = 0.0;
        if (It != StwMaxPause.end() && It->second > 0)
          Ratio = 100.0 * static_cast<double>(MaxPause) /
                  static_cast<double>(It->second);
        char Buf[32];
        std::snprintf(Buf, sizeof(Buf), "%.2f", Ratio);
        Json += std::string(", \"gc_pause_ratio_pct\": ") + Buf;
      } else if (S.Name.rfind("gc/", 0) == 0 && S.Name.size() > 4 &&
                 S.Name.compare(S.Name.size() - 4, 4, "/stw") == 0) {
        StwMaxPause[S.Name.substr(0, S.Name.size() - 4)] = MaxPause;
      }
      Json += "}";
      std::fprintf(stderr, "%-28s %-11s %8.3f ms  casts=%llu chain=%llu "
                           "ic=%llu/%llu\n",
                   S.Name.c_str(), castModeName(Mode), median(Nanos) / 1e6,
                   static_cast<unsigned long long>(Last.Stats.CastsApplied),
                   static_cast<unsigned long long>(
                       Last.Stats.LongestProxyChain),
                   static_cast<unsigned long long>(Last.Stats.CacheHits),
                   static_cast<unsigned long long>(Last.Stats.CacheMisses));
    }
  }
  Json += "\n  ]\n}\n";

  if (OutPath.empty()) {
    std::fputs(Json.c_str(), stdout);
  } else {
    std::ofstream Out(OutPath);
    if (!Out) {
      std::fprintf(stderr, "benchjson: cannot open %s\n", OutPath.c_str());
      return 1;
    }
    Out << Json;
  }
  return 0;
}
