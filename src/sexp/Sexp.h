//===----------------------------------------------------------------------===//
///
/// \file
/// S-expression datum produced by the Reader. GTLC+ surface syntax (paper
/// Figure 5) is Lisp-style, so the front end first reads generic
/// s-expressions and then parses them into the AST.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_SEXP_SEXP_H
#define GRIFT_SEXP_SEXP_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <vector>

namespace grift {

/// One s-expression datum: an atom or a (possibly empty) list.
class Sexp {
public:
  enum class Kind : uint8_t {
    Symbol, ///< identifier, e.g. `vector-ref`
    Int,    ///< integer literal
    Float,  ///< floating point literal
    Bool,   ///< `#t` / `#f`
    Char,   ///< `#\a`, `#\newline`, ...
    String, ///< double-quoted string (used for blame labels in tests)
    List,   ///< `(...)` — the empty list doubles as the unit literal
  };

  static Sexp makeSymbol(std::string Name, SourceLoc Loc);
  static Sexp makeInt(int64_t Value, SourceLoc Loc);
  static Sexp makeFloat(double Value, SourceLoc Loc);
  static Sexp makeBool(bool Value, SourceLoc Loc);
  static Sexp makeChar(char Value, SourceLoc Loc);
  static Sexp makeString(std::string Value, SourceLoc Loc);
  static Sexp makeList(std::vector<Sexp> Elements, SourceLoc Loc);

  Kind kind() const { return TheKind; }
  SourceLoc loc() const { return Loc; }

  bool isSymbol() const { return TheKind == Kind::Symbol; }
  /// True if this is the symbol \p Name.
  bool isSymbol(std::string_view Name) const {
    return TheKind == Kind::Symbol && Text == Name;
  }
  bool isList() const { return TheKind == Kind::List; }
  bool isEmptyList() const { return isList() && Elements.empty(); }

  const std::string &symbol() const;
  const std::string &string() const;
  int64_t intValue() const;
  double floatValue() const;
  bool boolValue() const;
  char charValue() const;

  const std::vector<Sexp> &elements() const;
  size_t size() const { return elements().size(); }
  const Sexp &operator[](size_t Index) const;

  /// Renders the datum back to text (for diagnostics and round-trip tests).
  std::string str() const;

private:
  Kind TheKind = Kind::List;
  SourceLoc Loc;
  std::string Text;      // Symbol / String
  int64_t IntVal = 0;    // Int, Char (as code point)
  double FloatVal = 0;   // Float
  std::vector<Sexp> Elements;
};

} // namespace grift

#endif // GRIFT_SEXP_SEXP_H
