//===----------------------------------------------------------------------===//
///
/// \file
/// The s-expression reader: turns GTLC+ source text into a vector of
/// top-level Sexp data. Handles `;` line comments, `#|...|#` block
/// comments, `[` / `]` as parenthesis synonyms (Grift style), and the
/// literal syntaxes of Figure 5.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_SEXP_READER_H
#define GRIFT_SEXP_READER_H

#include "sexp/Sexp.h"
#include "support/Diagnostics.h"

#include <string_view>
#include <vector>

namespace grift {

/// Reads every top-level datum in \p Source. Errors are reported through
/// \p Diags; on error the returned vector holds the data read so far.
std::vector<Sexp> readSexps(std::string_view Source, DiagnosticEngine &Diags);

} // namespace grift

#endif // GRIFT_SEXP_READER_H
