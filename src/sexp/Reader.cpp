#include "sexp/Reader.h"

#include "support/StringUtil.h"

#include <cassert>
#include <cctype>

using namespace grift;

namespace {

/// Recursive-descent s-expression reader over a text buffer.
class Reader {
public:
  Reader(std::string_view Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  std::vector<Sexp> readAll() {
    std::vector<Sexp> Result;
    for (;;) {
      skipTrivia();
      if (atEnd())
        break;
      Sexp Datum = readDatum();
      if (Failed)
        break;
      Result.push_back(std::move(Datum));
    }
    return Result;
  }

private:
  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
  bool Failed = false;

  bool atEnd() const { return Pos >= Source.size(); }
  char peek() const { return Source[Pos]; }

  char advance() {
    char C = Source[Pos++];
    if (C == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
    return C;
  }

  SourceLoc here() const { return SourceLoc(Line, Column); }

  void fail(SourceLoc Loc, std::string Message) {
    if (!Failed)
      Diags.error(Loc, std::move(Message));
    Failed = true;
  }

  static bool isDelimiter(char C) {
    return std::isspace(static_cast<unsigned char>(C)) || C == '(' ||
           C == ')' || C == '[' || C == ']' || C == '"' || C == ';';
  }

  void skipTrivia() {
    while (!atEnd()) {
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      if (C == ';') {
        while (!atEnd() && peek() != '\n')
          advance();
        continue;
      }
      if (C == '#' && Pos + 1 < Source.size() && Source[Pos + 1] == '|') {
        SourceLoc Start = here();
        advance();
        advance();
        unsigned Depth = 1;
        while (!atEnd() && Depth != 0) {
          char D = advance();
          if (D == '#' && !atEnd() && peek() == '|') {
            advance();
            ++Depth;
          } else if (D == '|' && !atEnd() && peek() == '#') {
            advance();
            --Depth;
          }
        }
        if (Depth != 0)
          fail(Start, "unterminated block comment");
        continue;
      }
      break;
    }
  }

  Sexp readDatum() {
    SourceLoc Loc = here();
    char C = peek();
    if (C == '(' || C == '[')
      return readList(C == '(' ? ')' : ']');
    if (C == ')' || C == ']') {
      fail(Loc, "unexpected closing parenthesis");
      advance();
      return Sexp::makeList({}, Loc);
    }
    if (C == '"')
      return readString();
    if (C == '#')
      return readHash();
    return readAtom();
  }

  Sexp readList(char Close) {
    SourceLoc Loc = here();
    advance(); // consume the opener
    std::vector<Sexp> Elements;
    for (;;) {
      skipTrivia();
      if (atEnd()) {
        fail(Loc, "unterminated list");
        break;
      }
      char C = peek();
      if (C == ')' || C == ']') {
        if (C != Close)
          fail(here(), "mismatched closing parenthesis");
        advance();
        break;
      }
      Sexp Datum = readDatum();
      if (Failed)
        break;
      Elements.push_back(std::move(Datum));
    }
    return Sexp::makeList(std::move(Elements), Loc);
  }

  Sexp readString() {
    SourceLoc Loc = here();
    advance(); // consume the quote
    std::string Text;
    for (;;) {
      if (atEnd()) {
        fail(Loc, "unterminated string literal");
        break;
      }
      char C = advance();
      if (C == '"')
        break;
      if (C == '\\') {
        if (atEnd()) {
          fail(Loc, "unterminated string escape");
          break;
        }
        char E = advance();
        switch (E) {
        case 'n':
          Text += '\n';
          break;
        case 't':
          Text += '\t';
          break;
        case '\\':
        case '"':
          Text += E;
          break;
        default:
          fail(Loc, std::string("unknown string escape '\\") + E + "'");
          break;
        }
        continue;
      }
      Text += C;
    }
    return Sexp::makeString(std::move(Text), Loc);
  }

  Sexp readHash() {
    SourceLoc Loc = here();
    advance(); // consume '#'
    if (atEnd()) {
      fail(Loc, "dangling '#'");
      return Sexp::makeList({}, Loc);
    }
    char C = advance();
    if (C == 't' || C == 'f') {
      if (!atEnd() && !isDelimiter(peek()))
        fail(Loc, "junk after boolean literal");
      return Sexp::makeBool(C == 't', Loc);
    }
    if (C == '\\')
      return readChar(Loc);
    fail(Loc, std::string("unknown '#' syntax '#") + C + "'");
    return Sexp::makeList({}, Loc);
  }

  Sexp readChar(SourceLoc Loc) {
    if (atEnd()) {
      fail(Loc, "dangling character literal");
      return Sexp::makeChar('?', Loc);
    }
    std::string Name;
    Name += advance();
    while (!atEnd() && !isDelimiter(peek()))
      Name += advance();
    if (Name.size() == 1)
      return Sexp::makeChar(Name[0], Loc);
    if (Name == "newline")
      return Sexp::makeChar('\n', Loc);
    if (Name == "space")
      return Sexp::makeChar(' ', Loc);
    if (Name == "tab")
      return Sexp::makeChar('\t', Loc);
    if (Name == "nul")
      return Sexp::makeChar('\0', Loc);
    fail(Loc, "unknown character name '#\\" + Name + "'");
    return Sexp::makeChar('?', Loc);
  }

  Sexp readAtom() {
    SourceLoc Loc = here();
    std::string Text;
    while (!atEnd() && !isDelimiter(peek()))
      Text += advance();
    assert(!Text.empty() && "empty atom");
    int64_t IntValue = 0;
    if (parseInt64(Text, IntValue))
      return Sexp::makeInt(IntValue, Loc);
    // A float needs a digit somewhere; bare `-`, `...`, etc. are symbols.
    bool HasDigit = false;
    for (char C : Text)
      if (std::isdigit(static_cast<unsigned char>(C)))
        HasDigit = true;
    double FloatValue = 0;
    if (HasDigit && parseDouble(Text, FloatValue))
      return Sexp::makeFloat(FloatValue, Loc);
    return Sexp::makeSymbol(std::move(Text), Loc);
  }
};

} // namespace

std::vector<Sexp> grift::readSexps(std::string_view Source,
                                   DiagnosticEngine &Diags) {
  return Reader(Source, Diags).readAll();
}
