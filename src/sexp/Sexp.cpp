#include "sexp/Sexp.h"

#include "support/StringUtil.h"

#include <cassert>

using namespace grift;

Sexp Sexp::makeSymbol(std::string Name, SourceLoc Loc) {
  Sexp S;
  S.TheKind = Kind::Symbol;
  S.Text = std::move(Name);
  S.Loc = Loc;
  return S;
}

Sexp Sexp::makeInt(int64_t Value, SourceLoc Loc) {
  Sexp S;
  S.TheKind = Kind::Int;
  S.IntVal = Value;
  S.Loc = Loc;
  return S;
}

Sexp Sexp::makeFloat(double Value, SourceLoc Loc) {
  Sexp S;
  S.TheKind = Kind::Float;
  S.FloatVal = Value;
  S.Loc = Loc;
  return S;
}

Sexp Sexp::makeBool(bool Value, SourceLoc Loc) {
  Sexp S;
  S.TheKind = Kind::Bool;
  S.IntVal = Value ? 1 : 0;
  S.Loc = Loc;
  return S;
}

Sexp Sexp::makeChar(char Value, SourceLoc Loc) {
  Sexp S;
  S.TheKind = Kind::Char;
  S.IntVal = static_cast<unsigned char>(Value);
  S.Loc = Loc;
  return S;
}

Sexp Sexp::makeString(std::string Value, SourceLoc Loc) {
  Sexp S;
  S.TheKind = Kind::String;
  S.Text = std::move(Value);
  S.Loc = Loc;
  return S;
}

Sexp Sexp::makeList(std::vector<Sexp> Elements, SourceLoc Loc) {
  Sexp S;
  S.TheKind = Kind::List;
  S.Elements = std::move(Elements);
  S.Loc = Loc;
  return S;
}

const std::string &Sexp::symbol() const {
  assert(TheKind == Kind::Symbol && "not a symbol");
  return Text;
}

const std::string &Sexp::string() const {
  assert(TheKind == Kind::String && "not a string");
  return Text;
}

int64_t Sexp::intValue() const {
  assert(TheKind == Kind::Int && "not an int");
  return IntVal;
}

double Sexp::floatValue() const {
  assert(TheKind == Kind::Float && "not a float");
  return FloatVal;
}

bool Sexp::boolValue() const {
  assert(TheKind == Kind::Bool && "not a bool");
  return IntVal != 0;
}

char Sexp::charValue() const {
  assert(TheKind == Kind::Char && "not a char");
  return static_cast<char>(IntVal);
}

const std::vector<Sexp> &Sexp::elements() const {
  assert(TheKind == Kind::List && "not a list");
  return Elements;
}

const Sexp &Sexp::operator[](size_t Index) const {
  assert(Index < elements().size() && "sexp index out of range");
  return Elements[Index];
}

std::string Sexp::str() const {
  switch (TheKind) {
  case Kind::Symbol:
    return Text;
  case Kind::Int:
    return std::to_string(IntVal);
  case Kind::Float:
    return formatDouble(FloatVal);
  case Kind::Bool:
    return IntVal ? "#t" : "#f";
  case Kind::Char: {
    char C = static_cast<char>(IntVal);
    if (C == '\n')
      return "#\\newline";
    if (C == ' ')
      return "#\\space";
    if (C == '\t')
      return "#\\tab";
    return std::string("#\\") + C;
  }
  case Kind::String: {
    std::string Out = "\"";
    for (char C : Text) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
    Out += '"';
    return Out;
  }
  case Kind::List: {
    std::string Out = "(";
    for (size_t I = 0; I != Elements.size(); ++I) {
      if (I != 0)
        Out += ' ';
      Out += Elements[I].str();
    }
    Out += ')';
    return Out;
  }
  }
  return "<?>";
}
