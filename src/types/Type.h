//===----------------------------------------------------------------------===//
///
/// \file
/// GTLC+ types (paper Figure 5):
///
///   T ::= Dyn | Unit | Bool | Int | Char | Float
///       | (T ... -> T) | (Tuple T ...) | (Ref T) | (Vect T) | (Rec x T)
///
/// Types are hash-consed by TypeContext so that structural equality is
/// pointer equality, mirroring the runtime representation described in the
/// paper's Figure 11 ("heap allocated types are hoisted and shared ... so
/// that structural equality is equivalent to pointer equality").
/// Recursive types use de Bruijn indices: `Var(k)` refers to the k-th
/// enclosing `Rec` binder, which makes alpha-equivalent types identical
/// under interning.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_TYPES_TYPE_H
#define GRIFT_TYPES_TYPE_H

#include <cstdint>
#include <string>
#include <vector>

namespace grift {

class TypeContext;

/// The constructor of a type.
enum class TypeKind : uint8_t {
  Dyn,
  Unit,
  Bool,
  Int,
  Char,
  Float,
  Function, ///< children = params..., return (last)
  Tuple,    ///< children = elements
  Box,      ///< (Ref T); children = [element]
  Vect,     ///< (Vect T); children = [element]
  Rec,      ///< (Rec x T); children = [body]
  Var,      ///< de Bruijn reference to an enclosing Rec
};

/// An immutable, interned type. Never construct directly; use TypeContext.
class Type {
public:
  TypeKind kind() const { return Kind; }
  uint64_t hash() const { return Hash; }
  uint32_t id() const { return Id; }

  bool isDyn() const { return Kind == TypeKind::Dyn; }
  bool isAtomic() const {
    return Kind == TypeKind::Unit || Kind == TypeKind::Bool ||
           Kind == TypeKind::Int || Kind == TypeKind::Char ||
           Kind == TypeKind::Float;
  }
  bool isFunction() const { return Kind == TypeKind::Function; }
  bool isTuple() const { return Kind == TypeKind::Tuple; }
  bool isBox() const { return Kind == TypeKind::Box; }
  bool isVect() const { return Kind == TypeKind::Vect; }
  bool isRec() const { return Kind == TypeKind::Rec; }
  bool isVar() const { return Kind == TypeKind::Var; }
  /// True for Box and Vect, the two reference-like constructors that are
  /// implemented with read/write proxies.
  bool isRefLike() const { return isBox() || isVect(); }

  const std::vector<const Type *> &children() const { return Children; }

  /// Function parameter count.
  size_t arity() const;
  /// Function parameter \p Index.
  const Type *param(size_t Index) const;
  /// Function return type.
  const Type *result() const;
  /// Tuple element count.
  size_t tupleSize() const;
  /// Tuple element \p Index.
  const Type *element(size_t Index) const;
  /// Box/Vect element, or Rec body.
  const Type *inner() const;
  /// de Bruijn index of a Var.
  uint32_t varIndex() const;

  /// True if this (closed) type mentions Dyn anywhere.
  bool hasDyn() const { return HasDyn; }
  /// True if this type is fully static, i.e. mentions no Dyn.
  bool isStatic() const { return !HasDyn; }
  /// True if any Rec binder occurs inside.
  bool hasRec() const { return HasRec; }
  /// Largest de Bruijn index of a free Var, plus one (0 when closed).
  uint32_t freeVarBound() const { return FreeVarBound; }

  /// Total number of type constructors (for the precision metric).
  uint32_t nodeCount() const { return NodeCount; }
  /// Number of constructors that are not Dyn.
  uint32_t typedNodeCount() const { return TypedNodeCount; }
  /// Height of the type tree (atomics have height 1). The paper's space
  /// bound for normal-form coercions is stated in terms of this height.
  uint32_t height() const { return Height; }

  /// Renders GTLC+ concrete syntax, e.g. "(Int -> Bool)".
  std::string str() const;

private:
  friend class TypeContext;
  Type() = default;

  TypeKind Kind = TypeKind::Dyn;
  uint32_t Id = 0;
  uint32_t VarIdx = 0;
  uint64_t Hash = 0;
  bool HasDyn = false;
  bool HasRec = false;
  uint32_t FreeVarBound = 0;
  uint32_t NodeCount = 1;
  uint32_t TypedNodeCount = 0;
  uint32_t Height = 1;
  std::vector<const Type *> Children;
};

} // namespace grift

#endif // GRIFT_TYPES_TYPE_H
