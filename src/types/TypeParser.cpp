#include "types/TypeParser.h"

#include <vector>

using namespace grift;

namespace {

class TypeParser {
public:
  TypeParser(TypeContext &Ctx, DiagnosticEngine &Diags)
      : Ctx(Ctx), Diags(Diags) {}

  const Type *parse(const Sexp &Datum) {
    if (Datum.isSymbol())
      return parseName(Datum);
    if (Datum.isList())
      return parseList(Datum);
    Diags.error(Datum.loc(), "expected a type, found '" + Datum.str() + "'");
    return nullptr;
  }

private:
  TypeContext &Ctx;
  DiagnosticEngine &Diags;
  std::vector<std::string> RecVars; // innermost binder last

  const Type *parseName(const Sexp &Datum) {
    const std::string &Name = Datum.symbol();
    if (Name == "Dyn")
      return Ctx.dyn();
    if (Name == "Unit")
      return Ctx.unit();
    if (Name == "Bool")
      return Ctx.boolean();
    if (Name == "Int")
      return Ctx.integer();
    if (Name == "Char")
      return Ctx.character();
    if (Name == "Float")
      return Ctx.floating();
    // A Rec-bound variable: innermost binder has de Bruijn index 0.
    for (size_t I = RecVars.size(); I-- > 0;)
      if (RecVars[I] == Name)
        return Ctx.var(static_cast<uint32_t>(RecVars.size() - 1 - I));
    Diags.error(Datum.loc(), "unknown type name '" + Name + "'");
    return nullptr;
  }

  const Type *parseList(const Sexp &Datum) {
    const auto &Elements = Datum.elements();
    if (Elements.empty())
      return Ctx.unit(); // `()` — the Unit type, as in `-> ()`.
    // Function types contain a `->` in the second-to-last position.
    if (Elements.size() >= 2 && Elements[Elements.size() - 2].isSymbol("->"))
      return parseFunction(Datum);
    const Sexp &Head = Elements[0];
    if (Head.isSymbol("Tuple")) {
      std::vector<const Type *> Members;
      for (size_t I = 1; I != Elements.size(); ++I) {
        const Type *T = parse(Elements[I]);
        if (!T)
          return nullptr;
        Members.push_back(T);
      }
      if (Members.empty()) {
        Diags.error(Datum.loc(), "tuple type needs at least one element");
        return nullptr;
      }
      return Ctx.tuple(std::move(Members));
    }
    if (Head.isSymbol("Ref") || Head.isSymbol("Vect")) {
      if (Elements.size() != 2) {
        Diags.error(Datum.loc(),
                    Head.symbol() + " type takes exactly one element type");
        return nullptr;
      }
      const Type *Element = parse(Elements[1]);
      if (!Element)
        return nullptr;
      return Head.isSymbol("Ref") ? Ctx.box(Element) : Ctx.vect(Element);
    }
    if (Head.isSymbol("Rec")) {
      if (Elements.size() != 3 || !Elements[1].isSymbol()) {
        Diags.error(Datum.loc(), "expected (Rec x T)");
        return nullptr;
      }
      RecVars.push_back(Elements[1].symbol());
      const Type *Body = parse(Elements[2]);
      RecVars.pop_back();
      if (!Body)
        return nullptr;
      return Ctx.rec(Body);
    }
    Diags.error(Datum.loc(), "malformed type '" + Datum.str() + "'");
    return nullptr;
  }

  const Type *parseFunction(const Sexp &Datum) {
    const auto &Elements = Datum.elements();
    std::vector<const Type *> Params;
    for (size_t I = 0; I + 2 < Elements.size(); ++I) {
      const Type *P = parse(Elements[I]);
      if (!P)
        return nullptr;
      Params.push_back(P);
    }
    const Type *Result = parse(Elements.back());
    if (!Result)
      return nullptr;
    return Ctx.function(std::move(Params), Result);
  }
};

} // namespace

const Type *grift::parseType(TypeContext &Ctx, const Sexp &Datum,
                             DiagnosticEngine &Diags) {
  return TypeParser(Ctx, Diags).parse(Datum);
}
