//===----------------------------------------------------------------------===//
///
/// \file
/// Parses GTLC+ type syntax from s-expressions:
///
///   Dyn Unit Bool Int Char Float
///   (T ... -> T)  (Tuple T ...)  (Ref T)  (Vect T)  (Rec x T)
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_TYPES_TYPEPARSER_H
#define GRIFT_TYPES_TYPEPARSER_H

#include "sexp/Sexp.h"
#include "support/Diagnostics.h"
#include "types/TypeContext.h"

namespace grift {

/// Parses \p Datum as a type. Returns nullptr and reports a diagnostic on
/// malformed syntax (including unbound Rec variables).
const Type *parseType(TypeContext &Ctx, const Sexp &Datum,
                      DiagnosticEngine &Diags);

} // namespace grift

#endif // GRIFT_TYPES_TYPEPARSER_H
