#include "types/TypeContext.h"

#include "support/StringUtil.h"

#include <cassert>

using namespace grift;

size_t TypeContext::KeyHash::operator()(const Key &K) const {
  uint64_t Hash = hashCombine(static_cast<uint64_t>(K.Kind), K.VarIdx);
  for (const Type *Child : K.Children)
    Hash = hashCombine(Hash, Child->hash());
  return static_cast<size_t>(Hash);
}

TypeContext::TypeContext() {
  DynTy = makeAtomic(TypeKind::Dyn);
  UnitTy = makeAtomic(TypeKind::Unit);
  BoolTy = makeAtomic(TypeKind::Bool);
  IntTy = makeAtomic(TypeKind::Int);
  CharTy = makeAtomic(TypeKind::Char);
  FloatTy = makeAtomic(TypeKind::Float);
}

const Type *TypeContext::makeAtomic(TypeKind Kind) {
  return intern(Kind, {}, 0);
}

const Type *TypeContext::intern(TypeKind Kind,
                                std::vector<const Type *> Children,
                                uint32_t VarIdx) {
  Key K{Kind, VarIdx, Children};
  auto It = Interner.find(K);
  if (It != Interner.end())
    return It->second;

  auto Owned = std::unique_ptr<Type>(new Type());
  Type *T = Owned.get();
  T->Kind = Kind;
  T->VarIdx = VarIdx;
  T->Children = std::move(Children);
  T->Id = static_cast<uint32_t>(AllTypes.size());

  uint64_t Hash = hashCombine(static_cast<uint64_t>(Kind), VarIdx);
  uint32_t Nodes = 1;
  uint32_t Typed = Kind == TypeKind::Dyn ? 0 : 1;
  uint32_t Height = 1;
  bool HasDyn = Kind == TypeKind::Dyn;
  bool HasRec = Kind == TypeKind::Rec;
  uint32_t FreeBound = Kind == TypeKind::Var ? VarIdx + 1 : 0;
  for (const Type *Child : T->Children) {
    Hash = hashCombine(Hash, Child->hash());
    Nodes += Child->nodeCount();
    Typed += Child->typedNodeCount();
    Height = std::max(Height, Child->height() + 1);
    HasDyn |= Child->hasDyn();
    HasRec |= Child->hasRec();
    uint32_t ChildFree = Child->freeVarBound();
    if (Kind == TypeKind::Rec)
      ChildFree = ChildFree > 0 ? ChildFree - 1 : 0;
    FreeBound = std::max(FreeBound, ChildFree);
  }
  T->Hash = Hash;
  T->NodeCount = Nodes;
  T->TypedNodeCount = Typed;
  T->Height = Height;
  T->HasDyn = HasDyn;
  T->HasRec = HasRec;
  T->FreeVarBound = FreeBound;

  const Type *Result = T;
  AllTypes.push_back(std::move(Owned));
  Interner.emplace(std::move(K), Result);
  return Result;
}

const Type *TypeContext::function(std::vector<const Type *> Params,
                                  const Type *Result) {
  assert(Result && "null return type");
  std::vector<const Type *> Children = std::move(Params);
  Children.push_back(Result);
  return intern(TypeKind::Function, std::move(Children), 0);
}

const Type *TypeContext::tuple(std::vector<const Type *> Elements) {
  return intern(TypeKind::Tuple, std::move(Elements), 0);
}

const Type *TypeContext::box(const Type *Element) {
  assert(Element && "null box element");
  return intern(TypeKind::Box, {Element}, 0);
}

const Type *TypeContext::vect(const Type *Element) {
  assert(Element && "null vector element");
  return intern(TypeKind::Vect, {Element}, 0);
}

const Type *TypeContext::var(uint32_t Index) {
  return intern(TypeKind::Var, {}, Index);
}

const Type *TypeContext::rec(const Type *Body) {
  assert(Body && "null rec body");
  // Normalize degenerate binders so every interned type is canonical:
  // (Rec x Dyn) => Dyn, (Rec x x) => Dyn, and a binder whose variable
  // never occurs in the body is dropped.
  if (Body->isDyn())
    return DynTy;
  if (Body->isVar() && Body->varIndex() == 0)
    return DynTy;
  if (Body->freeVarBound() == 0)
    return Body;
  return intern(TypeKind::Rec, {Body}, 0);
}

const Type *TypeContext::substitute(const Type *T, const Type *Replacement,
                                    uint32_t Depth) {
  if (T->freeVarBound() <= Depth)
    return T; // No occurrence of Var(Depth) or anything freer.
  if (T->isVar()) {
    if (T->varIndex() == Depth)
      return Replacement;
    assert(T->varIndex() < Depth && "unexpected free variable");
    return T;
  }
  std::vector<const Type *> NewChildren;
  NewChildren.reserve(T->children().size());
  uint32_t ChildDepth = T->isRec() ? Depth + 1 : Depth;
  for (const Type *Child : T->children())
    NewChildren.push_back(substitute(Child, Replacement, ChildDepth));
  switch (T->kind()) {
  case TypeKind::Function: {
    const Type *Result = NewChildren.back();
    NewChildren.pop_back();
    return function(std::move(NewChildren), Result);
  }
  case TypeKind::Tuple:
    return tuple(std::move(NewChildren));
  case TypeKind::Box:
    return box(NewChildren[0]);
  case TypeKind::Vect:
    return vect(NewChildren[0]);
  case TypeKind::Rec:
    return rec(NewChildren[0]);
  default:
    assert(false && "substitute: unexpected type kind");
    return T;
  }
}

const Type *TypeContext::unfold(const Type *RecTy) {
  assert(RecTy->isRec() && "unfold requires a Rec type");
  auto It = UnfoldCache.find(RecTy);
  if (It != UnfoldCache.end())
    return It->second;
  const Type *Result = substitute(RecTy->inner(), RecTy, 0);
  UnfoldCache.emplace(RecTy, Result);
  return Result;
}
