//===----------------------------------------------------------------------===//
///
/// \file
/// The two relations of paper Figure 17:
///
///   * consistency `T₁ ~ T₂` — the gradual typing relation that permits an
///     implicit cast. Dyn is consistent with everything; structural types
///     are consistent componentwise. Extended coinductively to
///     equirecursive types with an assumption set.
///
///   * meet `T₁ ⊓ T₂` — the greatest lower bound in the precision order
///     (Dyn is the least precise). Used to combine static information at
///     `if` joins during cast insertion.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_TYPES_TYPEOPS_H
#define GRIFT_TYPES_TYPEOPS_H

#include "types/TypeContext.h"

namespace grift {

/// True if \p A ~ \p B (an implicit cast between them is allowed).
bool consistent(TypeContext &Ctx, const Type *A, const Type *B);

/// Greatest lower bound of \p A and \p B in the precision order, or
/// nullptr when the types are inconsistent.
const Type *meet(TypeContext &Ctx, const Type *A, const Type *B);

/// Precision of \p T in [0, 1]: fraction of constructors that are not Dyn.
/// A fully static type has precision 1; Dyn itself has precision 0.
double precision(const Type *T);

/// True if \p A is less or equally precise than \p B (A ⊑ B): A can be
/// obtained from B by replacing subtrees with Dyn.
bool lessPrecise(TypeContext &Ctx, const Type *A, const Type *B);

} // namespace grift

#endif // GRIFT_TYPES_TYPEOPS_H
