//===----------------------------------------------------------------------===//
///
/// \file
/// TypeContext interns types so structural equality is pointer equality.
/// The smart constructors normalize degenerate recursive types:
///   (Rec x Dyn)        => Dyn
///   (Rec x T), x ∉ T   => T
///   (Rec x x)          => Dyn   (the fully unconstrained infinite type)
/// so every interned type has a unique canonical representation.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_TYPES_TYPECONTEXT_H
#define GRIFT_TYPES_TYPECONTEXT_H

#include "types/Type.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace grift {

/// Owns and interns every Type. All Type pointers returned by a context are
/// valid for the lifetime of the context.
class TypeContext {
public:
  TypeContext();
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;

  const Type *dyn() const { return DynTy; }
  const Type *unit() const { return UnitTy; }
  const Type *boolean() const { return BoolTy; }
  const Type *integer() const { return IntTy; }
  const Type *character() const { return CharTy; }
  const Type *floating() const { return FloatTy; }

  /// (T1 ... Tn -> R)
  const Type *function(std::vector<const Type *> Params, const Type *Result);
  /// (Tuple T1 ... Tn)
  const Type *tuple(std::vector<const Type *> Elements);
  /// (Ref T)
  const Type *box(const Type *Element);
  /// (Vect T)
  const Type *vect(const Type *Element);
  /// (Rec x T) with \p Body using de Bruijn Var(0) for x.
  const Type *rec(const Type *Body);
  /// de Bruijn variable; only valid inside a Rec body being constructed.
  const Type *var(uint32_t Index);

  /// Unfolds a recursive type one step: (Rec x T) => T[x := (Rec x T)].
  /// Results are memoized. \p RecTy must be a Rec.
  const Type *unfold(const Type *RecTy);

  /// Substitutes \p Replacement for free Var(Depth) in \p T (used by
  /// unfold; exposed for tests).
  const Type *substitute(const Type *T, const Type *Replacement,
                         uint32_t Depth = 0);

  /// Number of distinct interned types (diagnostics/tests).
  size_t size() const { return AllTypes.size(); }

private:
  const Type *intern(TypeKind Kind, std::vector<const Type *> Children,
                     uint32_t VarIdx);
  const Type *makeAtomic(TypeKind Kind);

  struct Key {
    TypeKind Kind;
    uint32_t VarIdx;
    std::vector<const Type *> Children;
    bool operator==(const Key &Other) const {
      return Kind == Other.Kind && VarIdx == Other.VarIdx &&
             Children == Other.Children;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const;
  };

  std::unordered_map<Key, const Type *, KeyHash> Interner;
  std::vector<std::unique_ptr<Type>> AllTypes;
  std::unordered_map<const Type *, const Type *> UnfoldCache;

  const Type *DynTy = nullptr;
  const Type *UnitTy = nullptr;
  const Type *BoolTy = nullptr;
  const Type *IntTy = nullptr;
  const Type *CharTy = nullptr;
  const Type *FloatTy = nullptr;
};

} // namespace grift

#endif // GRIFT_TYPES_TYPECONTEXT_H
