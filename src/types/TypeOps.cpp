#include "types/TypeOps.h"

#include "support/StringUtil.h"

#include <cassert>
#include <unordered_set>
#include <vector>

using namespace grift;

namespace {

struct PairHash {
  size_t operator()(const std::pair<const Type *, const Type *> &P) const {
    return static_cast<size_t>(
        hashCombine(reinterpret_cast<uintptr_t>(P.first),
                    reinterpret_cast<uintptr_t>(P.second)));
  }
};

using PairSet =
    std::unordered_set<std::pair<const Type *, const Type *>, PairHash>;

/// Coinductive consistency: assume pairs already under consideration are
/// consistent. Because interned types form a finite subterm closure under
/// unfolding, the assumption set guarantees termination.
bool consistentImpl(TypeContext &Ctx, const Type *A, const Type *B,
                    PairSet &Assumed) {
  if (A == B)
    return true;
  if (A->isDyn() || B->isDyn())
    return true;
  if (A->isRec() || B->isRec()) {
    if (!Assumed.insert({A, B}).second)
      return true;
    const Type *AU = A->isRec() ? Ctx.unfold(A) : A;
    const Type *BU = B->isRec() ? Ctx.unfold(B) : B;
    return consistentImpl(Ctx, AU, BU, Assumed);
  }
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case TypeKind::Function: {
    if (A->arity() != B->arity())
      return false;
    for (size_t I = 0; I != A->arity(); ++I)
      if (!consistentImpl(Ctx, A->param(I), B->param(I), Assumed))
        return false;
    return consistentImpl(Ctx, A->result(), B->result(), Assumed);
  }
  case TypeKind::Tuple: {
    if (A->tupleSize() != B->tupleSize())
      return false;
    for (size_t I = 0; I != A->tupleSize(); ++I)
      if (!consistentImpl(Ctx, A->element(I), B->element(I), Assumed))
        return false;
    return true;
  }
  case TypeKind::Box:
  case TypeKind::Vect:
    return consistentImpl(Ctx, A->inner(), B->inner(), Assumed);
  default:
    // Distinct atomic kinds were rejected by the kind comparison; equal
    // atomic kinds were caught by pointer equality.
    return false;
  }
}

/// Shifts free variables with index > 0 down by one; Var(0) must not occur.
const Type *shiftDown(TypeContext &Ctx, const Type *T, uint32_t Depth) {
  if (T->freeVarBound() <= Depth)
    return T;
  if (T->isVar()) {
    assert(T->varIndex() != Depth && "shiftDown: variable still in use");
    return T->varIndex() > Depth ? Ctx.var(T->varIndex() - 1) : T;
  }
  std::vector<const Type *> Children;
  Children.reserve(T->children().size());
  uint32_t ChildDepth = T->isRec() ? Depth + 1 : Depth;
  for (const Type *Child : T->children())
    Children.push_back(shiftDown(Ctx, Child, ChildDepth));
  switch (T->kind()) {
  case TypeKind::Function: {
    const Type *Result = Children.back();
    Children.pop_back();
    return Ctx.function(std::move(Children), Result);
  }
  case TypeKind::Tuple:
    return Ctx.tuple(std::move(Children));
  case TypeKind::Box:
    return Ctx.box(Children[0]);
  case TypeKind::Vect:
    return Ctx.vect(Children[0]);
  case TypeKind::Rec:
    return Ctx.rec(Children[0]);
  default:
    assert(false && "shiftDown: unexpected kind");
    return T;
  }
}

/// True if Var(\p Depth) occurs free in \p T.
bool usesVar(const Type *T, uint32_t Depth) {
  if (T->freeVarBound() <= Depth)
    return false;
  if (T->isVar())
    return T->varIndex() == Depth;
  uint32_t ChildDepth = T->isRec() ? Depth + 1 : Depth;
  for (const Type *Child : T->children())
    if (usesVar(Child, ChildDepth))
      return true;
  return false;
}

/// Meet with support for recursive types. `Stack` records the (A, B) pairs
/// currently being met; re-encountering a pair emits a back-reference
/// Var(k) to the corresponding binder. Every Rec-involved frame wraps its
/// result in a binder, which is dropped afterwards if unused.
class MeetBuilder {
public:
  explicit MeetBuilder(TypeContext &Ctx) : Ctx(Ctx) {}

  const Type *run(const Type *A, const Type *B) {
    if (!consistent(Ctx, A, B))
      return nullptr;
    return meetRec(A, B);
  }

private:
  TypeContext &Ctx;
  std::vector<std::pair<const Type *, const Type *>> Stack;

  // Note: the traversed A and B are always closed interned types (unfolding
  // a closed Rec yields a closed type); de Bruijn Vars appear only in the
  // result being built.
  const Type *meetRec(const Type *A, const Type *B) {
    if (A == B)
      return A;
    if (A->isDyn())
      return B;
    if (B->isDyn())
      return A;
    if (A->isRec() || B->isRec()) {
      for (size_t I = Stack.size(); I-- > 0;) {
        if (Stack[I].first == A && Stack[I].second == B)
          return Ctx.var(static_cast<uint32_t>(Stack.size() - 1 - I));
      }
      Stack.push_back({A, B});
      const Type *AU = A->isRec() ? Ctx.unfold(A) : A;
      const Type *BU = B->isRec() ? Ctx.unfold(B) : B;
      const Type *Body = meetRec(AU, BU);
      Stack.pop_back();
      if (!Body)
        return nullptr;
      if (usesVar(Body, 0))
        return Ctx.rec(Body);
      return shiftDown(Ctx, Body, 0);
    }
    if (A->kind() != B->kind())
      return nullptr;
    switch (A->kind()) {
    case TypeKind::Function: {
      if (A->arity() != B->arity())
        return nullptr;
      std::vector<const Type *> Params;
      Params.reserve(A->arity());
      for (size_t I = 0; I != A->arity(); ++I) {
        const Type *P = meetRec(A->param(I), B->param(I));
        if (!P)
          return nullptr;
        Params.push_back(P);
      }
      const Type *Result = meetRec(A->result(), B->result());
      if (!Result)
        return nullptr;
      return Ctx.function(std::move(Params), Result);
    }
    case TypeKind::Tuple: {
      if (A->tupleSize() != B->tupleSize())
        return nullptr;
      std::vector<const Type *> Elements;
      Elements.reserve(A->tupleSize());
      for (size_t I = 0; I != A->tupleSize(); ++I) {
        const Type *E = meetRec(A->element(I), B->element(I));
        if (!E)
          return nullptr;
        Elements.push_back(E);
      }
      return Ctx.tuple(std::move(Elements));
    }
    case TypeKind::Box: {
      const Type *E = meetRec(A->inner(), B->inner());
      return E ? Ctx.box(E) : nullptr;
    }
    case TypeKind::Vect: {
      const Type *E = meetRec(A->inner(), B->inner());
      return E ? Ctx.vect(E) : nullptr;
    }
    default:
      return nullptr;
    }
  }
};

} // namespace

bool grift::consistent(TypeContext &Ctx, const Type *A, const Type *B) {
  PairSet Assumed;
  return consistentImpl(Ctx, A, B, Assumed);
}

const Type *grift::meet(TypeContext &Ctx, const Type *A, const Type *B) {
  return MeetBuilder(Ctx).run(A, B);
}

double grift::precision(const Type *T) {
  if (T->nodeCount() == 0)
    return 1.0;
  return static_cast<double>(T->typedNodeCount()) / T->nodeCount();
}

namespace {

/// A ⊑ B coinductively: A is B with some subtrees replaced by Dyn.
bool lessPreciseImpl(TypeContext &Ctx, const Type *A, const Type *B,
                     PairSet &Assumed) {
  if (A->isDyn())
    return true;
  if (A == B)
    return true;
  if (A->isRec() || B->isRec()) {
    if (!Assumed.insert({A, B}).second)
      return true;
    const Type *AU = A->isRec() ? Ctx.unfold(A) : A;
    const Type *BU = B->isRec() ? Ctx.unfold(B) : B;
    return lessPreciseImpl(Ctx, AU, BU, Assumed);
  }
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case TypeKind::Function: {
    if (A->arity() != B->arity())
      return false;
    for (size_t I = 0; I != A->arity(); ++I)
      if (!lessPreciseImpl(Ctx, A->param(I), B->param(I), Assumed))
        return false;
    return lessPreciseImpl(Ctx, A->result(), B->result(), Assumed);
  }
  case TypeKind::Tuple: {
    if (A->tupleSize() != B->tupleSize())
      return false;
    for (size_t I = 0; I != A->tupleSize(); ++I)
      if (!lessPreciseImpl(Ctx, A->element(I), B->element(I), Assumed))
        return false;
    return true;
  }
  case TypeKind::Box:
  case TypeKind::Vect:
    return lessPreciseImpl(Ctx, A->inner(), B->inner(), Assumed);
  default:
    return false;
  }
}

} // namespace

bool grift::lessPrecise(TypeContext &Ctx, const Type *A, const Type *B) {
  PairSet Assumed;
  return lessPreciseImpl(Ctx, A, B, Assumed);
}
