#include "types/Type.h"

#include <cassert>

using namespace grift;

size_t Type::arity() const {
  assert(isFunction() && "arity of non-function");
  return Children.size() - 1;
}

const Type *Type::param(size_t Index) const {
  assert(isFunction() && Index < arity() && "bad parameter index");
  return Children[Index];
}

const Type *Type::result() const {
  assert(isFunction() && "result of non-function");
  return Children.back();
}

size_t Type::tupleSize() const {
  assert(isTuple() && "tupleSize of non-tuple");
  return Children.size();
}

const Type *Type::element(size_t Index) const {
  assert(isTuple() && Index < Children.size() && "bad tuple index");
  return Children[Index];
}

const Type *Type::inner() const {
  assert((isBox() || isVect() || isRec()) && "inner of leaf type");
  return Children[0];
}

uint32_t Type::varIndex() const {
  assert(isVar() && "varIndex of non-var");
  return VarIdx;
}

/// Renders a type; \p Depth counts enclosing Rec binders so bound
/// variables can be printed as r0, r1, ...
static void printType(const Type *T, uint32_t Depth, std::string &Out) {
  switch (T->kind()) {
  case TypeKind::Dyn:
    Out += "Dyn";
    return;
  case TypeKind::Unit:
    Out += "Unit";
    return;
  case TypeKind::Bool:
    Out += "Bool";
    return;
  case TypeKind::Int:
    Out += "Int";
    return;
  case TypeKind::Char:
    Out += "Char";
    return;
  case TypeKind::Float:
    Out += "Float";
    return;
  case TypeKind::Function: {
    Out += '(';
    for (size_t I = 0; I != T->arity(); ++I) {
      printType(T->param(I), Depth, Out);
      Out += ' ';
    }
    Out += "-> ";
    printType(T->result(), Depth, Out);
    Out += ')';
    return;
  }
  case TypeKind::Tuple: {
    Out += "(Tuple";
    for (size_t I = 0; I != T->tupleSize(); ++I) {
      Out += ' ';
      printType(T->element(I), Depth, Out);
    }
    Out += ')';
    return;
  }
  case TypeKind::Box:
    Out += "(Ref ";
    printType(T->inner(), Depth, Out);
    Out += ')';
    return;
  case TypeKind::Vect:
    Out += "(Vect ";
    printType(T->inner(), Depth, Out);
    Out += ')';
    return;
  case TypeKind::Rec:
    Out += "(Rec r" + std::to_string(Depth) + " ";
    printType(T->inner(), Depth + 1, Out);
    Out += ')';
    return;
  case TypeKind::Var: {
    // Var(k) refers to the binder k levels out; that binder was printed
    // with index Depth - 1 - k.
    assert(T->varIndex() < Depth && "free type variable while printing");
    Out += "r" + std::to_string(Depth - 1 - T->varIndex());
    return;
  }
  }
}

std::string Type::str() const {
  std::string Out;
  printType(this, 0, Out);
  return Out;
}
