#include "coercions/Coercion.h"

#include <cassert>
#include <unordered_map>
#include <unordered_set>

using namespace grift;

unsigned Coercion::size() const {
  std::unordered_set<const Coercion *> Visited;
  std::vector<const Coercion *> Worklist = {this};
  unsigned Count = 0;
  while (!Worklist.empty()) {
    const Coercion *C = Worklist.back();
    Worklist.pop_back();
    if (!Visited.insert(C).second)
      continue;
    ++Count;
    for (const Coercion *Part : C->Parts)
      Worklist.push_back(Part);
  }
  return Count;
}

namespace {

/// Prints a coercion; μ nodes get fresh names and back references print
/// the bound name.
struct Printer {
  std::unordered_map<const Coercion *, std::string> MuNames;
  unsigned NextMu = 0;

  void print(const Coercion *C, std::string &Out) {
    switch (C->kind()) {
    case CoercionKind::Id:
      Out += "id";
      return;
    case CoercionKind::Project:
      Out += C->type()->str();
      Out += "?";
      Out += C->label();
      return;
    case CoercionKind::Inject:
      Out += C->type()->str();
      Out += "!";
      return;
    case CoercionKind::Sequence:
      Out += "(";
      print(C->first(), Out);
      Out += " ; ";
      print(C->second(), Out);
      Out += ")";
      return;
    case CoercionKind::Fail:
      Out += "Fail^";
      Out += C->label();
      return;
    case CoercionKind::Fun: {
      Out += "(";
      for (size_t I = 0; I != C->arity(); ++I) {
        if (I != 0)
          Out += " ";
        print(C->arg(I), Out);
      }
      Out += " -> ";
      print(C->result(), Out);
      Out += ")";
      return;
    }
    case CoercionKind::RefC:
      Out += "(Ref ";
      print(C->writeCoercion(), Out);
      Out += " ";
      print(C->readCoercion(), Out);
      Out += ")";
      return;
    case CoercionKind::TupleC: {
      Out += "(Tup";
      for (size_t I = 0; I != C->tupleSize(); ++I) {
        Out += " ";
        print(C->element(I), Out);
      }
      Out += ")";
      return;
    }
    case CoercionKind::Rec: {
      auto It = MuNames.find(C);
      if (It != MuNames.end()) {
        Out += It->second; // back reference
        return;
      }
      std::string Name = "X" + std::to_string(NextMu++);
      MuNames.emplace(C, Name);
      Out += "(mu ";
      Out += Name;
      Out += ". ";
      print(C->body(), Out);
      Out += ")";
      return;
    }
    }
  }
};

} // namespace

std::string Coercion::str() const {
  std::string Out;
  Printer P;
  P.print(this, Out);
  return Out;
}
