//===----------------------------------------------------------------------===//
///
/// \file
/// CoercionFactory owns all coercions and implements the two operations
/// the runtime needs:
///
///   * `make(S, T, p)` — coercion creation (T₁ ⇒ᵖ T₂) of paper Figure 17,
///     extended to equirecursive types with μ back-edges.
///
///   * `compose(c, d)` — the space-efficiency workhorse (c ⨟ d) of
///     Figures 15/17: composes two normal-form coercions into a
///     normal-form coercion, using an association stack to tie recursive
///     knots and collapsing identity-equivalent recursive results to ι.
///
/// `make` results are interned per (S, T, label) triple and `compose`
/// results are memoized for μ-free pairs, so the memory used by coercions
/// is bounded by the number of distinct casts, mirroring the paper's
/// statically-allocated coercions plus a bounded runtime cache.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_COERCIONS_COERCIONFACTORY_H
#define GRIFT_COERCIONS_COERCIONFACTORY_H

#include "coercions/Coercion.h"
#include "types/TypeContext.h"

#include <deque>
#include <memory>
#include <string_view>
#include <unordered_map>

namespace grift {

class CoercionFactory {
public:
  explicit CoercionFactory(TypeContext &Types);
  CoercionFactory(const CoercionFactory &) = delete;
  CoercionFactory &operator=(const CoercionFactory &) = delete;

  TypeContext &typeContext() { return Types; }

  /// ι.
  const Coercion *id() const { return IdC; }
  /// ⊥ᵖ.
  const Coercion *fail(std::string_view Label);
  /// T! — \p T must not be Dyn.
  const Coercion *inject(const Type *T);
  /// T?ᵖ — \p T must not be Dyn. (Only appears inside sequences.)
  const Coercion *project(const Type *T, std::string_view Label);

  /// Coercion creation (S ⇒ᵖ T). Requires nothing of S and T; returns
  /// ⊥ᵖ when they are inconsistent.
  const Coercion *make(const Type *S, const Type *T, std::string_view Label);

  /// Hot-path variant taking an already-interned label (from a coercion
  /// or a compiled cast site); avoids re-interning on every runtime
  /// projection.
  const Coercion *makeInterned(const Type *S, const Type *T,
                               const std::string *Label);

  /// Interns \p Label in this factory's label arena.
  const std::string *internLabel(std::string_view Label);

  /// The runtime-projection fast path of Figure 6: the coercion from the
  /// runtime type \p Source to \p Projection's target, memoized per
  /// (projection, source-type) pair.
  const Coercion *makeForProjection(const Coercion *Projection,
                                    const Type *Source);

  /// Space-efficient composition c ⨟ d. Both inputs and the result are in
  /// normal form.
  const Coercion *compose(const Coercion *C, const Coercion *D);

  /// True if \p C satisfies the normal-form grammar (tests).
  static bool isNormalForm(const Coercion *C);

  /// Number of coercion nodes allocated so far (space-bound tests).
  size_t allocatedNodes() const { return Arena.size(); }

  /// Drops every coercion, label, and memo table and starts a fresh
  /// epoch. All `const Coercion *` and interned-label pointers handed
  /// out before the call dangle afterwards, so callers must discard
  /// every Executable compiled against this factory in the same epoch
  /// (EnginePool does exactly that when a long-lived slot's arena grows
  /// past its cap).
  void reset();

  //===------------------------------------------------------------------===//
  // Store-deserialization hooks (src/store/Serialize.cpp). These rebuild
  // a coercion graph loaded from a persistent image through the same
  // interner make/compose use, so a loaded node is pointer-identical to
  // the node this factory would build itself and the interning
  // invariants (structural equality = pointer equality, zero new nodes
  // on re-make) survive the round trip.
  //===------------------------------------------------------------------===//

  /// Rebuilds one non-μ node from its loaded pieces. Every normal-form
  /// precondition is re-checked explicitly (a store image is untrusted
  /// input and release builds compile the asserts out); violations
  /// return nullptr with \p Error set instead of constructing a
  /// malformed node.
  const Coercion *buildForLoad(CoercionKind Kind, const Type *Ty,
                               const std::string *Label,
                               const std::vector<const Coercion *> &Parts,
                               std::string &Error);

  /// μ nodes load in two steps so back edges have a target before the
  /// body subgraph exists: allocate all μ placeholders first, then seal
  /// each with its body. sealRecForLoad rejects double-sealing and
  /// non-μ arguments instead of asserting.
  Coercion *newRecForLoad() { return newRec(); }
  bool sealRecForLoad(Coercion *Mu, const Coercion *Body);

  /// Seeds the make() memo with a loaded (S ⇒ᵖ T) ↦ C association so a
  /// later makeInterned on a store-loaded program returns the loaded
  /// node with zero allocations (the makeSub zero-new-nodes property).
  /// An existing entry wins: a warm factory's own derivation is never
  /// displaced by a loaded image.
  void seedMakeCache(const Type *S, const Type *T, const std::string *Label,
                     const Coercion *C);

private:
  friend class Composer;

  TypeContext &Types;
  std::deque<std::unique_ptr<Coercion>> Arena;
  std::deque<std::string> LabelArena;
  std::unordered_map<std::string, const std::string *> LabelInterner;

  const Coercion *IdC = nullptr;

  // Interners (pointer-keyed; cheap and exact).
  struct Key {
    CoercionKind Kind;
    const Type *Ty;
    const std::string *Label;
    std::vector<const Coercion *> Parts;
    bool operator==(const Key &Other) const {
      return Kind == Other.Kind && Ty == Other.Ty && Label == Other.Label &&
             Parts == Other.Parts;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const;
  };
  std::unordered_map<Key, const Coercion *, KeyHash> Interner;

  struct TripleKey {
    const Type *S;
    const Type *T;
    const std::string *Label;
    bool operator==(const TripleKey &Other) const {
      return S == Other.S && T == Other.T && Label == Other.Label;
    }
  };
  struct TripleHash {
    size_t operator()(const TripleKey &K) const;
  };
  std::unordered_map<TripleKey, const Coercion *, TripleHash> MakeCache;

  struct PairKey {
    const void *C;
    const void *D;
    bool operator==(const PairKey &Other) const {
      return C == Other.C && D == Other.D;
    }
  };
  struct PairHash {
    size_t operator()(const PairKey &K) const;
  };
  std::unordered_map<PairKey, const Coercion *, PairHash> ComposeCache;
  std::unordered_map<PairKey, const Coercion *, PairHash> ProjectCache;
  const Coercion *intern(CoercionKind Kind, const Type *Ty,
                         const std::string *Label,
                         std::vector<const Coercion *> Parts);
  Coercion *allocate();

  // Normal-form smart constructors (shared by make and compose).
  // Reference coercions record their target reference type and blame
  // label so the monotonic-reference runtime can interpret them as
  // in-place cell strengthening (Mode::Monotonic).
  const Coercion *sequence(const Coercion *First, const Coercion *Second);
  const Coercion *fun(std::vector<const Coercion *> ArgsAndRet);
  const Coercion *refc(const Coercion *Write, const Coercion *Read,
                       const Type *Target, const std::string *Label);
  const Coercion *tup(std::vector<const Coercion *> Elements);
  Coercion *newRec();
  void sealRec(Coercion *Mu, const Coercion *Body);

  struct MakeFrame {
    const Type *S;
    const Type *T;
    Coercion *Mu; // lazily allocated on back-reference
  };
  const Coercion *makeImpl(const Type *S, const Type *T,
                           const std::string *Label,
                           std::vector<MakeFrame> &Stack);

  /// Structural subderivation of makeImpl. With no μ frames on \p Stack
  /// the subpair is self-contained, so the derivation is routed through
  /// makeInterned — consulting (and seeding) MakeCache for every nested
  /// subpair instead of re-deriving identical sub-coercions on each
  /// outer make.
  const Coercion *makeSub(const Type *S, const Type *T,
                          const std::string *Label,
                          std::vector<MakeFrame> &Stack);
};

} // namespace grift

#endif // GRIFT_COERCIONS_COERCIONFACTORY_H
