//===----------------------------------------------------------------------===//
///
/// \file
/// Henglein-style coercions in the lazy-D space-efficient normal form of
/// paper Figure 17:
///
///   c, d ::= i | (I?ᵖ ; i)                 (space-efficient coercions)
///   i    ::= g | (g ; I!) | ⊥ᵖ             (final coercions)
///   g    ::= ι | c → d | c × d | Ref c d | μ  (middle coercions)
///
/// Representation notes (paper Section 3.2):
///  * Sequence nodes only ever take the two normal-form shapes
///    (Project ; final) and (middle ; Inject).
///  * Ref coercions carry a write coercion (applied when storing) and a
///    read coercion (applied when loading); they serve both `Ref` boxes
///    and `Vect` vectors.
///  * Recursive (μ) coercions are back-edge targets for casts between
///    equirecursive types; their body is sealed after creation and may
///    contain pointers back to the node itself.
///
/// All coercions are immutable after construction (μ bodies are sealed
/// exactly once by the factory) and live as long as their
/// CoercionFactory; structural equality is pointer equality for all
/// non-μ coercions.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_COERCIONS_COERCION_H
#define GRIFT_COERCIONS_COERCION_H

#include "types/Type.h"

#include <cstdint>
#include <string>
#include <vector>

namespace grift {

enum class CoercionKind : uint8_t {
  Id,       ///< ι — returns the value unchanged
  Project,  ///< T?ᵖ — check a Dyn value against T, blame p on failure
  Inject,   ///< T! — tag a value of type T as Dyn
  Sequence, ///< (c ; d) — apply c then d (normal-form shapes only)
  Fail,     ///< ⊥ᵖ — signal blame p when applied
  Fun,      ///< (c₁ ... cₙ → d) — proxy a function
  RefC,     ///< Ref c d — proxy a box/vector (c = write, d = read)
  TupleC,   ///< (c₁ × ... × cₙ) — convert a tuple eagerly
  Rec,      ///< μX. c — back-edge target for equirecursive casts
};

/// An immutable coercion node. Construct through CoercionFactory only.
class Coercion {
public:
  CoercionKind kind() const { return Kind; }

  bool isId() const { return Kind == CoercionKind::Id; }
  bool isFail() const { return Kind == CoercionKind::Fail; }
  bool isSequence() const { return Kind == CoercionKind::Sequence; }
  /// Sequence that begins with a projection: (I?ᵖ ; i).
  bool isProjectSeq() const {
    return isSequence() && Parts[0]->kind() == CoercionKind::Project;
  }
  /// Sequence that ends with an injection: (g ; I!).
  bool isInjectSeq() const {
    return isSequence() && Parts[1]->kind() == CoercionKind::Inject;
  }
  /// Middle coercion per the grammar (ι, →, ×, Ref, μ).
  bool isMiddle() const {
    switch (Kind) {
    case CoercionKind::Id:
    case CoercionKind::Fun:
    case CoercionKind::RefC:
    case CoercionKind::TupleC:
    case CoercionKind::Rec:
      return true;
    default:
      return false;
    }
  }

  /// True if a μ node occurs anywhere below (conservative for sealed
  /// bodies; see CoercionFactory).
  bool hasRec() const { return HasRec; }

  /// Project/Inject: the type checked or tagged.
  const Type *type() const { return Ty; }
  /// Project/Fail: the blame label.
  const std::string &label() const { return *Label; }
  /// Project/Fail: the interned label pointer (fast-path coercion
  /// creation keys on it).
  const std::string *labelPointer() const { return Label; }

  const Coercion *first() const { return Parts[0]; }  ///< Sequence
  const Coercion *second() const { return Parts[1]; } ///< Sequence

  /// Fun: argument count.
  size_t arity() const { return Parts.size() - 1; }
  /// Fun: coercion for argument \p Index (applied to call arguments).
  const Coercion *arg(size_t Index) const { return Parts[Index]; }
  /// Fun: coercion for the result.
  const Coercion *result() const { return Parts.back(); }

  const Coercion *writeCoercion() const { return Parts[0]; } ///< RefC
  const Coercion *readCoercion() const { return Parts[1]; }  ///< RefC

  /// TupleC: element count / element coercions.
  size_t tupleSize() const { return Parts.size(); }
  const Coercion *element(size_t Index) const { return Parts[Index]; }

  /// Rec: the sealed body (valid after creation completes).
  const Coercion *body() const { return Parts[0]; }

  /// Number of distinct nodes reachable from this coercion (μ-safe).
  /// This is the "size" of the paper's space bound size(c) ≤ 5(2ʰ − 1).
  unsigned size() const;

  /// Renders the coercion, e.g. "(Int? ; (ι → Int!))".
  std::string str() const;

private:
  friend class CoercionFactory;
  Coercion() = default;

  CoercionKind Kind = CoercionKind::Id;
  bool HasRec = false;
  const Type *Ty = nullptr;
  const std::string *Label = nullptr;
  std::vector<const Coercion *> Parts;
};

} // namespace grift

#endif // GRIFT_COERCIONS_COERCION_H
