#include "coercions/CoercionFactory.h"

#include "support/StringUtil.h"
#include "types/TypeOps.h"

#include <cassert>

using namespace grift;

//===----------------------------------------------------------------------===//
// Hashing
//===----------------------------------------------------------------------===//

size_t CoercionFactory::KeyHash::operator()(const Key &K) const {
  uint64_t Hash = hashCombine(static_cast<uint64_t>(K.Kind),
                              reinterpret_cast<uintptr_t>(K.Ty));
  Hash = hashCombine(Hash, reinterpret_cast<uintptr_t>(K.Label));
  for (const Coercion *Part : K.Parts)
    Hash = hashCombine(Hash, reinterpret_cast<uintptr_t>(Part));
  return static_cast<size_t>(Hash);
}

size_t CoercionFactory::TripleHash::operator()(const TripleKey &K) const {
  uint64_t Hash = hashCombine(reinterpret_cast<uintptr_t>(K.S),
                              reinterpret_cast<uintptr_t>(K.T));
  return static_cast<size_t>(
      hashCombine(Hash, reinterpret_cast<uintptr_t>(K.Label)));
}

size_t CoercionFactory::PairHash::operator()(const PairKey &K) const {
  return static_cast<size_t>(hashCombine(
      reinterpret_cast<uintptr_t>(K.C), reinterpret_cast<uintptr_t>(K.D)));
}

//===----------------------------------------------------------------------===//
// Allocation and interning
//===----------------------------------------------------------------------===//

CoercionFactory::CoercionFactory(TypeContext &Types) : Types(Types) {
  IdC = intern(CoercionKind::Id, nullptr, nullptr, {});
}

void CoercionFactory::reset() {
  Arena.clear();
  LabelArena.clear();
  LabelInterner.clear();
  Interner.clear();
  MakeCache.clear();
  ComposeCache.clear();
  ProjectCache.clear();
  IdC = intern(CoercionKind::Id, nullptr, nullptr, {});
}

Coercion *CoercionFactory::allocate() {
  Arena.push_back(std::unique_ptr<Coercion>(new Coercion()));
  return Arena.back().get();
}

const std::string *CoercionFactory::internLabel(std::string_view Label) {
  std::string Key(Label);
  auto It = LabelInterner.find(Key);
  if (It != LabelInterner.end())
    return It->second;
  LabelArena.push_back(Key);
  const std::string *Stable = &LabelArena.back();
  LabelInterner.emplace(std::move(Key), Stable);
  return Stable;
}

const Coercion *CoercionFactory::intern(CoercionKind Kind, const Type *Ty,
                                        const std::string *Label,
                                        std::vector<const Coercion *> Parts) {
  Key K{Kind, Ty, Label, Parts};
  auto It = Interner.find(K);
  if (It != Interner.end())
    return It->second;
  Coercion *C = allocate();
  C->Kind = Kind;
  C->Ty = Ty;
  C->Label = Label;
  C->Parts = std::move(Parts);
  C->HasRec = Kind == CoercionKind::Rec;
  for (const Coercion *Part : C->Parts)
    C->HasRec |= Part->hasRec();
  Interner.emplace(std::move(K), C);
  return C;
}

const Coercion *CoercionFactory::fail(std::string_view Label) {
  return intern(CoercionKind::Fail, nullptr, internLabel(Label), {});
}

const Coercion *CoercionFactory::inject(const Type *T) {
  assert(!T->isDyn() && "cannot inject Dyn into Dyn");
  return intern(CoercionKind::Inject, T, nullptr, {});
}

const Coercion *CoercionFactory::project(const Type *T,
                                         std::string_view Label) {
  assert(!T->isDyn() && "cannot project to Dyn");
  return intern(CoercionKind::Project, T, internLabel(Label), {});
}

const Coercion *CoercionFactory::sequence(const Coercion *First,
                                          const Coercion *Second) {
  assert((First->kind() == CoercionKind::Project ||
          Second->kind() == CoercionKind::Inject) &&
         "sequence must be (I? ; i) or (g ; I!)");
  return intern(CoercionKind::Sequence, nullptr, nullptr, {First, Second});
}

const Coercion *
CoercionFactory::fun(std::vector<const Coercion *> ArgsAndRet) {
  for (const Coercion *Part : ArgsAndRet)
    if (!Part->isId())
      return intern(CoercionKind::Fun, nullptr, nullptr,
                    std::move(ArgsAndRet));
  return IdC; // identity on every argument and the result
}

const Coercion *CoercionFactory::refc(const Coercion *Write,
                                      const Coercion *Read,
                                      const Type *Target,
                                      const std::string *Label) {
  if (Write->isId() && Read->isId())
    return IdC;
  return intern(CoercionKind::RefC, Target, Label, {Write, Read});
}

const Coercion *CoercionFactory::tup(std::vector<const Coercion *> Elements) {
  for (const Coercion *Part : Elements)
    if (!Part->isId())
      return intern(CoercionKind::TupleC, nullptr, nullptr,
                    std::move(Elements));
  return IdC;
}

Coercion *CoercionFactory::newRec() {
  Coercion *Mu = allocate();
  Mu->Kind = CoercionKind::Rec;
  Mu->HasRec = true;
  return Mu;
}

void CoercionFactory::sealRec(Coercion *Mu, const Coercion *Body) {
  assert(Mu->Kind == CoercionKind::Rec && Mu->Parts.empty() &&
         "μ coercion sealed twice");
  Mu->Parts.push_back(Body);
}

//===----------------------------------------------------------------------===//
// Store-deserialization hooks
//===----------------------------------------------------------------------===//

const Coercion *
CoercionFactory::buildForLoad(CoercionKind Kind, const Type *Ty,
                              const std::string *Label,
                              const std::vector<const Coercion *> &Parts,
                              std::string &Error) {
  auto Reject = [&](const char *Why) -> const Coercion * {
    Error = Why;
    return nullptr;
  };
  for (const Coercion *Part : Parts)
    if (!Part)
      return Reject("null part");
  switch (Kind) {
  case CoercionKind::Id:
    if (Ty || Label || !Parts.empty())
      return Reject("malformed ι node");
    return IdC;
  case CoercionKind::Fail:
    if (Ty || !Label || !Parts.empty())
      return Reject("malformed ⊥ node");
    return intern(CoercionKind::Fail, nullptr, Label, {});
  case CoercionKind::Inject:
    if (!Ty || Ty->isDyn() || Label || !Parts.empty())
      return Reject("malformed injection");
    return intern(CoercionKind::Inject, Ty, nullptr, {});
  case CoercionKind::Project:
    if (!Ty || Ty->isDyn() || !Label || !Parts.empty())
      return Reject("malformed projection");
    return intern(CoercionKind::Project, Ty, Label, {});
  case CoercionKind::Sequence: {
    if (Ty || Label || Parts.size() != 2)
      return Reject("malformed sequence");
    const Coercion *First = Parts[0], *Second = Parts[1];
    // Normal form admits exactly (I?ᵖ ; i) and (g ; I!).
    bool ProjectSeq = First->kind() == CoercionKind::Project &&
                      (Second->isMiddle() || Second->isFail() ||
                       Second->isInjectSeq());
    bool InjectSeq =
        Second->kind() == CoercionKind::Inject && First->isMiddle();
    if (!ProjectSeq && !InjectSeq)
      return Reject("sequence outside the normal-form grammar");
    return sequence(First, Second);
  }
  case CoercionKind::Fun:
    if (Ty || Label || Parts.empty())
      return Reject("malformed function coercion");
    return fun(Parts);
  case CoercionKind::RefC:
    if (!Ty || !Ty->isRefLike() || !Label || Parts.size() != 2)
      return Reject("malformed reference coercion");
    return refc(Parts[0], Parts[1], Ty, Label);
  case CoercionKind::TupleC:
    if (Ty || Label || Parts.empty())
      return Reject("malformed tuple coercion");
    return tup(Parts);
  case CoercionKind::Rec:
    return Reject("μ nodes load through newRecForLoad/sealRecForLoad");
  }
  return Reject("unknown coercion kind");
}

bool CoercionFactory::sealRecForLoad(Coercion *Mu, const Coercion *Body) {
  if (!Mu || Mu->Kind != CoercionKind::Rec || !Mu->Parts.empty() || !Body)
    return false;
  Mu->Parts.push_back(Body);
  return true;
}

void CoercionFactory::seedMakeCache(const Type *S, const Type *T,
                                    const std::string *Label,
                                    const Coercion *C) {
  MakeCache.emplace(TripleKey{S, T, Label}, C);
}

//===----------------------------------------------------------------------===//
// Coercion creation: (S ⇒ᵖ T) of Figure 17
//===----------------------------------------------------------------------===//

const Coercion *CoercionFactory::make(const Type *S, const Type *T,
                                      std::string_view Label) {
  return makeInterned(S, T, internLabel(Label));
}

const Coercion *CoercionFactory::makeInterned(const Type *S, const Type *T,
                                              const std::string *L) {
  TripleKey K{S, T, L};
  auto It = MakeCache.find(K);
  if (It != MakeCache.end())
    return It->second;
  std::vector<MakeFrame> Stack;
  const Coercion *C = makeImpl(S, T, L, Stack);
  MakeCache.emplace(K, C);
  return C;
}

const Coercion *CoercionFactory::makeForProjection(const Coercion *Projection,
                                                   const Type *Source) {
  assert(Projection->kind() == CoercionKind::Project);
  PairKey K{Projection, Source};
  auto It = ProjectCache.find(K);
  if (It != ProjectCache.end())
    return It->second;
  const Coercion *C =
      makeInterned(Source, Projection->type(), Projection->labelPointer());
  ProjectCache.emplace(K, C);
  return C;
}

const Coercion *CoercionFactory::makeImpl(const Type *S, const Type *T,
                                          const std::string *Label,
                                          std::vector<MakeFrame> &Stack) {
  if (S == T)
    return IdC; // covers (B ⇒ B), (Dyn ⇒ Dyn), identical structures
  if (S->isDyn())
    return sequence(project(T, *Label), IdC); // (T?ᵖ ; ι)
  if (T->isDyn())
    return sequence(IdC, inject(S)); // (ι ; S!) — lazy-D: any S injects
  if (!consistent(Types, S, T))
    return fail(*Label);

  if (S->isRec() || T->isRec()) {
    // Tie recursive knots: a revisited (S, T) pair becomes a back edge to
    // a μ node allocated on demand.
    for (size_t I = Stack.size(); I-- > 0;) {
      if (Stack[I].S == S && Stack[I].T == T) {
        if (!Stack[I].Mu)
          Stack[I].Mu = newRec();
        return Stack[I].Mu;
      }
    }
    Stack.push_back({S, T, nullptr});
    const Type *SU = S->isRec() ? Types.unfold(S) : S;
    const Type *TU = T->isRec() ? Types.unfold(T) : T;
    const Coercion *Body = makeImpl(SU, TU, Label, Stack);
    MakeFrame Frame = Stack.back();
    Stack.pop_back();
    if (!Frame.Mu)
      return Body; // no back edge was needed
    sealRec(Frame.Mu, Body);
    return Frame.Mu;
  }

  assert(S->kind() == T->kind() && "consistency guarantees matching kinds");
  switch (S->kind()) {
  case TypeKind::Function: {
    assert(S->arity() == T->arity() && "consistency guarantees equal arity");
    std::vector<const Coercion *> Parts;
    Parts.reserve(S->arity() + 1);
    for (size_t I = 0; I != S->arity(); ++I)
      Parts.push_back(makeSub(T->param(I), S->param(I), Label, Stack));
    Parts.push_back(makeSub(S->result(), T->result(), Label, Stack));
    return fun(std::move(Parts));
  }
  case TypeKind::Tuple: {
    std::vector<const Coercion *> Parts;
    Parts.reserve(S->tupleSize());
    for (size_t I = 0; I != S->tupleSize(); ++I)
      Parts.push_back(makeSub(S->element(I), T->element(I), Label, Stack));
    return tup(std::move(Parts));
  }
  case TypeKind::Box:
  case TypeKind::Vect: {
    const Coercion *Write = makeSub(T->inner(), S->inner(), Label, Stack);
    const Coercion *Read = makeSub(S->inner(), T->inner(), Label, Stack);
    return refc(Write, Read, T, Label);
  }
  default:
    // Equal atomic kinds were caught by pointer equality above.
    assert(false && "makeImpl: unexpected type kind");
    return fail(*Label);
  }
}

const Coercion *CoercionFactory::makeSub(const Type *S, const Type *T,
                                         const std::string *Label,
                                         std::vector<MakeFrame> &Stack) {
  // Inside a μ derivation the subpair may close over an outer frame, so
  // it must share the association stack; see makeImpl's Rec case.
  if (Stack.empty())
    return makeInterned(S, T, Label);
  return makeImpl(S, T, Label, Stack);
}

//===----------------------------------------------------------------------===//
// Space-efficient composition: c ⨟ d of Figures 15 and 17
//===----------------------------------------------------------------------===//

namespace grift {

/// One composition run. Holds the association stack used to tie recursive
/// knots and the free-variable count used to collapse identity-equivalent
/// recursive compositions back to ι (paper Figure 15).
class Composer {
public:
  explicit Composer(CoercionFactory &F) : F(F) {}

  const Coercion *run(const Coercion *C, const Coercion *D) {
    bool IdEqv = true;
    return compose(C, D, IdEqv);
  }

private:
  CoercionFactory &F;
  struct Entry {
    const Coercion *C;
    const Coercion *D;
    Coercion *Mu; // allocated lazily when a back edge appears
  };
  std::vector<Entry> Stack;
  int FreeVars = 0;

  /// \p IdEqv is an accumulator: it stays true only while the result is
  /// identity-equivalent under the assumption that μ back-references
  /// created by this run denote identity.
  const Coercion *compose(const Coercion *C, const Coercion *D, bool &IdEqv) {
    // Identity short-circuits.
    if (C->isId() && D->isId())
      return F.id();
    if (C->isId()) {
      IdEqv = false;
      return D;
    }
    if (D->isId()) {
      IdEqv = false;
      return C;
    }

    // Memoized μ-free pairs (pure, stack-independent).
    bool Cacheable = !C->hasRec() && !D->hasRec();
    if (Cacheable) {
      auto It = F.ComposeCache.find({C, D});
      if (It != F.ComposeCache.end()) {
        if (!It->second->isId())
          IdEqv = false;
        return It->second;
      }
    }

    const Coercion *Result = composeUncached(C, D, IdEqv);
    if (Cacheable)
      F.ComposeCache.emplace(CoercionFactory::PairKey{C, D}, Result);
    return Result;
  }

  const Coercion *composeUncached(const Coercion *C, const Coercion *D,
                                  bool &IdEqv) {
    // ⊥ᵖ ⨟ d = ⊥ᵖ
    if (C->isFail()) {
      IdEqv = false;
      return C;
    }
    // (I?ᵖ ; i) ⨟ d = (I?ᵖ ; (i ⨟ d))
    if (C->isProjectSeq()) {
      IdEqv = false;
      bool Unused = true;
      return F.sequence(C->first(), compose(C->second(), D, Unused));
    }
    // (g ; I!) ⨟ ...
    if (C->isInjectSeq()) {
      if (D->isFail()) {
        IdEqv = false;
        return D;
      }
      assert(D->isProjectSeq() &&
             "coercion from Dyn must be ι, ⊥, or start with a projection");
      // (g ; I!) ⨟ (J?ᵠ ; i) = g ⨟ (I ⇒ᵠ J) ⨟ i — this is where long
      // chains collapse: the injection meets the projection and both
      // disappear into a direct coercion.
      const Type *I = C->second()->type();
      const Type *J = D->first()->type();
      const Coercion *Mid =
          F.makeInterned(I, J, D->first()->labelPointer());
      const Coercion *Left = compose(C->first(), Mid, IdEqv);
      return compose(Left, D->second(), IdEqv);
    }

    assert(C->isMiddle() && "normal form exhausted");
    if (D->isFail()) {
      IdEqv = false;
      return D;
    }
    // g ⨟ (h ; J!) = ((g ⨟ h) ; J!)
    if (D->isInjectSeq()) {
      IdEqv = false;
      bool Unused = true;
      const Coercion *Left = compose(C, D->first(), Unused);
      if (Left->isFail())
        return Left;
      return F.sequence(Left, D->second());
    }
    assert(D->isMiddle() &&
           "projection sequence cannot follow a non-Dyn-targeted coercion");

    // Recursive coercions: tie the knot with the association stack.
    if (C->kind() == CoercionKind::Rec || D->kind() == CoercionKind::Rec)
      return composeRec(C, D, IdEqv);

    switch (C->kind()) {
    case CoercionKind::Fun: {
      assert(D->kind() == CoercionKind::Fun && C->arity() == D->arity() &&
             "function coercions compose with function coercions");
      std::vector<const Coercion *> Parts;
      Parts.reserve(C->arity() + 1);
      for (size_t I = 0; I != C->arity(); ++I)
        Parts.push_back(compose(D->arg(I), C->arg(I), IdEqv));
      Parts.push_back(compose(C->result(), D->result(), IdEqv));
      return F.fun(std::move(Parts));
    }
    case CoercionKind::RefC: {
      assert(D->kind() == CoercionKind::RefC);
      const Coercion *Read = compose(C->readCoercion(), D->readCoercion(),
                                     IdEqv);
      const Coercion *Write = compose(D->writeCoercion(), C->writeCoercion(),
                                      IdEqv);
      // The composite converts to D's target view; blame the newer cast.
      return F.refc(Write, Read, D->type(), D->labelPointer());
    }
    case CoercionKind::TupleC: {
      assert(D->kind() == CoercionKind::TupleC &&
             C->tupleSize() == D->tupleSize());
      std::vector<const Coercion *> Parts;
      Parts.reserve(C->tupleSize());
      for (size_t I = 0; I != C->tupleSize(); ++I)
        Parts.push_back(compose(C->element(I), D->element(I), IdEqv));
      return F.tup(std::move(Parts));
    }
    default:
      assert(false && "composeUncached: impossible middle kind");
      return F.id();
    }
  }

  const Coercion *composeRec(const Coercion *C, const Coercion *D,
                             bool &IdEqv) {
    for (size_t I = Stack.size(); I-- > 0;) {
      if (Stack[I].C == C && Stack[I].D == D) {
        if (!Stack[I].Mu) {
          Stack[I].Mu = F.newRec();
          ++FreeVars;
        }
        return Stack[I].Mu; // a maybe-identity back edge: IdEqv unchanged
      }
    }
    Stack.push_back({C, D, nullptr});
    bool NewIdEqv = true;
    const Coercion *CU = C->kind() == CoercionKind::Rec ? C->body() : C;
    const Coercion *DU = D->kind() == CoercionKind::Rec ? D->body() : D;
    const Coercion *Body = compose(CU, DU, NewIdEqv);
    Entry Popped = Stack.back();
    Stack.pop_back();
    if (!NewIdEqv)
      IdEqv = false;
    if (!Popped.Mu)
      return Body;
    --FreeVars;
    if (FreeVars == 0 && NewIdEqv)
      return F.id(); // μX.c where c ≡ ι modulo X: the whole thing is ι
    F.sealRec(Popped.Mu, Body);
    return Popped.Mu;
  }
};

} // namespace grift

const Coercion *CoercionFactory::compose(const Coercion *C,
                                         const Coercion *D) {
  return Composer(*this).run(C, D);
}

//===----------------------------------------------------------------------===//
// Normal-form validation
//===----------------------------------------------------------------------===//

namespace {

bool validTop(const Coercion *C);

bool validMiddle(const Coercion *C) {
  switch (C->kind()) {
  case CoercionKind::Id:
    return true;
  case CoercionKind::Fun: {
    for (size_t I = 0; I != C->arity(); ++I)
      if (!validTop(C->arg(I)))
        return false;
    return validTop(C->result());
  }
  case CoercionKind::RefC:
    return validTop(C->writeCoercion()) && validTop(C->readCoercion());
  case CoercionKind::TupleC: {
    for (size_t I = 0; I != C->tupleSize(); ++I)
      if (!validTop(C->element(I)))
        return false;
    return true;
  }
  case CoercionKind::Rec:
    // The body participates in a cycle; checking it here would not
    // terminate. Its shape is enforced at construction.
    return !C->body()->isFail();
  default:
    return false;
  }
}

bool validFinal(const Coercion *C) {
  if (C->isFail())
    return true;
  if (C->isInjectSeq())
    return !C->second()->type()->isDyn() && validMiddle(C->first());
  return validMiddle(C);
}

bool validTop(const Coercion *C) {
  if (C->isProjectSeq())
    return !C->first()->type()->isDyn() && validFinal(C->second());
  return validFinal(C);
}

} // namespace

bool CoercionFactory::isNormalForm(const Coercion *C) { return validTop(C); }
