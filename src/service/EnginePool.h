//===----------------------------------------------------------------------===//
///
/// \file
/// A pool of per-thread Grift engines. Each slot owns one engine, one
/// compile cache and one cancel token; the executor leases slot i to
/// worker thread i for the thread's whole lifetime and binds the engine
/// to it (Grift::bindToCurrentThread), so the engine-per-thread affinity
/// rule in Grift.h is enforced by construction — and, in debug builds,
/// by asserts on every compile and run.
///
/// The compile cache is keyed on (source, CastMode, optimize): hot
/// programs resubmitted to the same slot skip parse/check/compile
/// entirely. Compile *failures* are cached too (negative cache) — a
/// malformed program resubmitted in a tight loop costs one map lookup,
/// not a re-parse. Caches are per-slot and unsynchronized: a program
/// compiles at most once per worker, never under a lock.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_SERVICE_ENGINEPOOL_H
#define GRIFT_SERVICE_ENGINEPOOL_H

#include "grift/Grift.h"
#include "service/Job.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace grift::store {
class Store;
} // namespace grift::store

namespace grift::service {

class EnginePool {
public:
  /// A cached compile outcome: either an Executable or the error text.
  struct CacheEntry {
    std::optional<Executable> Exe;
    std::string Errors;
  };

  /// One engine slot. Leased to exactly one worker thread at a time.
  struct Slot {
    Grift Engine;
    /// Cancel token threaded into every run on this slot. Reset by the
    /// worker before each attempt, stored by the watchdog on kill.
    std::atomic<bool> CancelToken{false};
    /// (mode|optimize|source) -> compile outcome.
    std::unordered_map<std::string, CacheEntry> Cache;
    // Atomic so stats() can snapshot while the worker is mid-job.
    std::atomic<uint64_t> CacheHits{0};
    std::atomic<uint64_t> CacheMisses{0};

    // Atomic so stats() can snapshot while the worker is mid-job.
    std::atomic<uint64_t> EpochResets{0};

    /// Compiles \p Spec through the cache. Returns the cached entry and
    /// sets \p WasHit. The returned reference is owned by the cache and
    /// stays valid until the next epoch reset (or forever when
    /// MaxCoercionNodes is 0 — the cache is then bounded only by the set
    /// of distinct programs submitted).
    ///
    /// With \p ProgStore set, the lookup order on a slot-cache miss is
    /// persistent store → compile: a validated on-disk image is
    /// deserialized into this slot's engine (zero front-end work) and
    /// adopted; otherwise the program compiles normally and, on success,
    /// is published to the store for the next cold start. Store lookup
    /// outcomes are counted by the store itself.
    const CacheEntry &compileCached(const JobSpec &Spec, bool &WasHit,
                                    bool UseCache = true,
                                    store::Store *ProgStore = nullptr);

    /// Epoch reset: when the engine's coercion arena has grown past
    /// \p MaxNodes, drops the compile cache and resets the coercion
    /// factory *together* — cached Executables hold `const Coercion *`
    /// into the arena, so neither may outlive the other. Bounds slot
    /// memory across long job streams with many distinct casts.
    /// \p MaxNodes == 0 disables the reset. Returns true if it fired.
    /// Must only be called between jobs (no Executable in flight).
    bool maybeResetEpoch(size_t MaxNodes);
  };

  /// Creates \p N slots (at least 1).
  explicit EnginePool(unsigned N);

  unsigned size() const { return static_cast<unsigned>(Slots.size()); }
  Slot &slot(unsigned I) { return *Slots[I]; }

  uint64_t totalCacheHits() const;
  uint64_t totalCacheMisses() const;
  uint64_t totalEpochResets() const;

private:
  // unique_ptr: Grift and std::atomic are immovable, and slots must not
  // share cache lines' worth of false sharing across workers anyway.
  std::vector<std::unique_ptr<Slot>> Slots;
};

} // namespace grift::service

#endif // GRIFT_SERVICE_ENGINEPOOL_H
