#include "service/ExecService.h"

#include <algorithm>
#include <chrono>

using namespace grift;
using namespace grift::service;

ExecService::ExecService(ServiceConfig C)
    : Config(C),
      Pool(C.Threads ? C.Threads
                     : std::max(1u, std::thread::hardware_concurrency())),
      Breaker(C.Breaker) {
  Workers.reserve(Pool.size());
  for (unsigned I = 0; I != Pool.size(); ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ExecService::~ExecService() {
  {
    std::lock_guard<std::mutex> Lock(QueueM);
    Stopping = true;
  }
  QueueCV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

std::future<JobResult> ExecService::submit(JobSpec Spec) {
  Submitted.fetch_add(1, std::memory_order_relaxed);
  Pending P;
  P.Spec = std::move(Spec);
  std::future<JobResult> F = P.Promise.get_future();
  {
    // Workers drain the queue before exiting, so a job enqueued any time
    // before the destructor runs is guaranteed a result.
    std::lock_guard<std::mutex> Lock(QueueM);
    Queue.push_back(std::move(P));
  }
  QueueCV.notify_one();
  return F;
}

void ExecService::workerLoop(unsigned SlotIdx) {
  EnginePool::Slot &Slot = Pool.slot(SlotIdx);
  // This thread owns the slot's engine for its whole lifetime; debug
  // builds now assert every compile/run of this engine happens here.
  Slot.Engine.bindToCurrentThread();
  for (;;) {
    Pending P;
    {
      std::unique_lock<std::mutex> Lock(QueueM);
      QueueCV.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty()) {
        if (Stopping)
          return; // drained: stop only once no work is left
        continue;
      }
      P = std::move(Queue.front());
      Queue.pop_front();
    }
    JobResult R = executeJob(Slot, P.Spec);
    // Between jobs nothing on this slot holds coercion pointers, so this
    // is the one safe point to bound the arena.
    Slot.maybeResetEpoch(Config.MaxCoercionNodes);
    Completed.fetch_add(1, std::memory_order_relaxed);
    P.Promise.set_value(std::move(R));
  }
}

JobResult ExecService::executeJob(EnginePool::Slot &Slot, JobSpec &Spec) {
  JobResult R;
  R.Id = Spec.Id;
  uint64_t Key = jobKey(Spec.Source, Spec.Mode, Spec.Optimize);

  if (!Breaker.admit(Key)) {
    R.Status = JobStatus::Rejected;
    R.ErrorMessage = "circuit open: quarantined after repeated resource "
                     "failures; retry after cooldown";
    return R;
  }

  bool CacheHit = false;
  const EnginePool::CacheEntry &Entry =
      Slot.compileCached(Spec, CacheHit, Config.CompileCache);
  R.CompileCacheHit = CacheHit;
  if (!Entry.Exe) {
    R.Status = JobStatus::CompileError;
    R.ErrorMessage = Entry.Errors;
    // Compile errors are deterministic program errors: they neither trip
    // nor reset the breaker (and the negative cache makes them cheap).
    return R;
  }

  RunLimits Limits = Spec.Limits;
  Limits.Cancel = &Slot.CancelToken;

  for (uint32_t Attempt = 0;; ++Attempt) {
    Slot.CancelToken.store(false, std::memory_order_relaxed);
    uint64_t WatchHandle = 0;
    if (Spec.DeadlineNanos > 0)
      WatchHandle = Dog.watch(Slot.CancelToken,
                              Watchdog::Clock::now() +
                                  std::chrono::nanoseconds(Spec.DeadlineNanos));
    RunResult Run = Entry.Exe->run(Spec.Input, Limits);
    if (WatchHandle)
      Dog.unwatch(WatchHandle);

    ++R.Attempts;
    R.WallNanos += Run.WallNanos;
    R.Output = std::move(Run.Output);
    R.FuelUsed = Run.Steps;
    R.PeakHeapBytes = Run.PeakHeapBytes;
    R.Stats = Run.Stats;

    if (Run.OK) {
      R.Status = JobStatus::Done;
      R.ResultText = std::move(Run.ResultText);
      Breaker.recordSuccess(Key);
      return R;
    }

    R.Status = JobStatus::Failed;
    R.Kind = Run.Error.Kind;
    R.ErrorMessage = Run.Error.str();

    if (Config.Retry.isTransient(Run.Error.Kind) &&
        Attempt < Config.Retry.MaxRetries) {
      ++R.Retries;
      RetryCount.fetch_add(1, std::memory_order_relaxed);
      int64_t Backoff = Config.Retry.backoffNanos(R.Retries);
      if (Backoff > 0)
        std::this_thread::sleep_for(std::chrono::nanoseconds(Backoff));
      // Fresh heap is automatic (each run() builds its own Runtime);
      // optionally give the retry more room to make OOM genuinely
      // transient when the original budget was finite.
      if (Limits.MaxHeapBytes && Config.Retry.HeapGrowthFactor > 1.0)
        Limits.MaxHeapBytes = static_cast<size_t>(
            static_cast<double>(Limits.MaxHeapBytes) *
            Config.Retry.HeapGrowthFactor);
      continue;
    }

    if (Run.Error.isResourceExhaustion())
      Breaker.recordResourceFailure(Key);
    // Program errors (Blame/Trap) end the streak: the program is
    // answering deterministically, not straining the pool.
    else
      Breaker.recordSuccess(Key);
    return R;
  }
}

ServiceStats ExecService::stats() const {
  ServiceStats S;
  S.JobsSubmitted = Submitted.load(std::memory_order_relaxed);
  S.JobsCompleted = Completed.load(std::memory_order_relaxed);
  S.JobsRejected = Breaker.rejections();
  S.Retries = RetryCount.load(std::memory_order_relaxed);
  S.WatchdogKills = Dog.kills();
  S.CacheHits = Pool.totalCacheHits();
  S.CacheMisses = Pool.totalCacheMisses();
  S.EpochResets = Pool.totalEpochResets();
  return S;
}
