#include "service/ExecService.h"

#include <algorithm>
#include <chrono>

using namespace grift;
using namespace grift::service;

ExecService::ExecService(ServiceConfig C)
    : Config(C),
      Pool(C.Threads ? C.Threads
                     : std::max(1u, std::thread::hardware_concurrency())),
      Breaker(C.Breaker) {
  if (!Config.CacheDir.empty()) {
    FileFaults.ShortWriteAt = Config.FileShortWriteAt;
    FileFaults.FailFsyncAt = Config.FileFailFsyncAt;
    FileFaults.FlipReadBitAt = Config.FileFlipReadBitAt;
    FileFaults.FlipReadBitIndex = Config.FileFlipReadBitIndex;
    store::StoreConfig SC;
    SC.Dir = Config.CacheDir;
    SC.MaxBytes = Config.CacheMaxBytes;
    SC.Faults = Config.FileShortWriteAt || Config.FileFailFsyncAt ||
                        Config.FileFlipReadBitAt
                    ? &FileFaults
                    : nullptr;
    ProgStore = std::make_unique<store::Store>(std::move(SC));
  }
  Workers.reserve(Pool.size());
  for (unsigned I = 0; I != Pool.size(); ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ExecService::~ExecService() {
  {
    std::lock_guard<std::mutex> Lock(QueueM);
    Stopping = true;
  }
  QueueCV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

std::future<JobResult> ExecService::submit(JobSpec Spec) {
  Submitted.fetch_add(1, std::memory_order_relaxed);
  Pending P;
  P.Spec = std::move(Spec);
  std::future<JobResult> F = P.Promise.get_future();
  {
    // Workers drain the queue before exiting, so a job enqueued any time
    // before the destructor runs is guaranteed a result.
    std::lock_guard<std::mutex> Lock(QueueM);
    if (Config.MaxQueueDepth && Queue.size() >= Config.MaxQueueDepth) {
      // Admission bound: shed now, under the same lock that admitted the
      // jobs ahead of us, so the depth check and the verdict are atomic.
      Sheds.fetch_add(1, std::memory_order_relaxed);
      JobResult R;
      R.Id = std::move(P.Spec.Id);
      R.Status = JobStatus::Rejected;
      R.Kind = ErrorKind::Overloaded;
      R.ErrorMessage = "overloaded: queue depth at limit (" +
                       std::to_string(Config.MaxQueueDepth) +
                       " waiting); retry later";
      P.Promise.set_value(std::move(R));
      return F;
    }
    Queue.push_back(std::move(P));
    uint64_t Depth = Queue.size();
    if (Depth > PeakQueue.load(std::memory_order_relaxed))
      PeakQueue.store(Depth, std::memory_order_relaxed);
  }
  QueueCV.notify_one();
  return F;
}

size_t ExecService::queueDepth() const {
  std::lock_guard<std::mutex> Lock(QueueM);
  return Queue.size();
}

void ExecService::workerLoop(unsigned SlotIdx) {
  EnginePool::Slot &Slot = Pool.slot(SlotIdx);
  // This thread owns the slot's engine for its whole lifetime; debug
  // builds now assert every compile/run of this engine happens here.
  Slot.Engine.bindToCurrentThread();
  // Per-slot fault injector (allocation counter spans jobs) and RNG for
  // retry jitter. Distinct seeds per slot are the whole point: slots that
  // fail together must not sleep together.
  FaultInjector Injector;
  Injector.GCTorturePeriod = Config.GCTorturePeriod;
  Injector.MinorGCTorturePeriod = Config.MinorGCTorturePeriod;
  RNG Gen(0x5eedba5eULL + SlotIdx);
  for (;;) {
    Pending P;
    {
      std::unique_lock<std::mutex> Lock(QueueM);
      QueueCV.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty()) {
        if (Stopping)
          return; // drained: stop only once no work is left
        continue;
      }
      P = std::move(Queue.front());
      Queue.pop_front();
    }
    JobResult R = executeJob(Slot, P.Spec, Injector, Gen);
    // Between jobs nothing on this slot holds coercion pointers, so this
    // is the one safe point to bound the arena.
    Slot.maybeResetEpoch(Config.MaxCoercionNodes);
    Completed.fetch_add(1, std::memory_order_relaxed);
    P.Promise.set_value(std::move(R));
  }
}

JobResult ExecService::executeJob(EnginePool::Slot &Slot, JobSpec &Spec,
                                  FaultInjector &Injector, RNG &Gen) {
  using Clock = std::chrono::steady_clock;
  JobResult R;
  R.Id = Spec.Id;
  uint64_t Key = jobKey(Spec.Source, Spec.Mode, Spec.Optimize);

  // End-to-end deadline: a job that expired while queued is failed
  // without burning an engine on it — the client has already given up.
  const bool HasQueueDeadline = Spec.QueueDeadline != Clock::time_point{};
  if (HasQueueDeadline && Clock::now() >= Spec.QueueDeadline) {
    Expired.fetch_add(1, std::memory_order_relaxed);
    R.Status = JobStatus::Failed;
    R.Kind = ErrorKind::Timeout;
    R.ErrorMessage = "timeout: deadline expired while queued";
    return R;
  }

  if (!Breaker.admit(Key)) {
    R.Status = JobStatus::Rejected;
    R.Kind = ErrorKind::Overloaded;
    R.ErrorMessage = "circuit open: quarantined after repeated resource "
                     "failures; retry after cooldown";
    return R;
  }

  bool CacheHit = false;
  const EnginePool::CacheEntry &Entry =
      Slot.compileCached(Spec, CacheHit, Config.CompileCache, ProgStore.get());
  R.CompileCacheHit = CacheHit;
  if (!Entry.Exe) {
    R.Status = JobStatus::CompileError;
    R.ErrorMessage = Entry.Errors;
    // Compile errors are deterministic program errors: they neither trip
    // nor reset the breaker (and the negative cache makes them cheap).
    return R;
  }

  RunLimits Limits = Spec.Limits;
  Limits.Cancel = &Slot.CancelToken;

  int64_t PrevBackoff = 0;
  for (uint32_t Attempt = 0;; ++Attempt) {
    Slot.CancelToken.store(false, std::memory_order_relaxed);
    // Clamp every attempt to the time left before the absolute deadline:
    // both the in-band wall budget and the watchdog follow the client's
    // remaining patience, not the original per-attempt allowance.
    int64_t RemainingNanos = 0;
    if (HasQueueDeadline) {
      RemainingNanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           Spec.QueueDeadline - Clock::now())
                           .count();
      if (RemainingNanos <= 0) {
        Expired.fetch_add(1, std::memory_order_relaxed);
        R.Status = JobStatus::Failed;
        R.Kind = ErrorKind::Timeout;
        R.ErrorMessage = "timeout: deadline expired between attempts";
        return R;
      }
      if (Limits.MaxWallNanos == 0 || Limits.MaxWallNanos > RemainingNanos)
        Limits.MaxWallNanos = RemainingNanos;
    }
    int64_t WatchNanos = Spec.DeadlineNanos;
    if (RemainingNanos > 0 && (WatchNanos == 0 || WatchNanos > RemainingNanos))
      WatchNanos = RemainingNanos;
    uint64_t WatchHandle = 0;
    if (WatchNanos > 0)
      WatchHandle = Dog.watch(Slot.CancelToken,
                              Watchdog::Clock::now() +
                                  std::chrono::nanoseconds(WatchNanos));
    FaultInjector *Faults = nullptr;
    if (Config.GCTorturePeriod || Config.MinorGCTorturePeriod ||
        Config.FailAllocPeriod) {
      // Periodic re-arm: FailAllocAt is one-shot, so schedule the next
      // failure relative to the counter the previous runs advanced.
      if (Config.FailAllocPeriod)
        Injector.FailAllocAt = Injector.AllocCount + Config.FailAllocPeriod;
      Faults = &Injector;
    }
    RunResult Run = Entry.Exe->run(Spec.Input, Limits, Faults);
    if (WatchHandle)
      Dog.unwatch(WatchHandle);

    ++R.Attempts;
    R.WallNanos += Run.WallNanos;
    R.Output = std::move(Run.Output);
    R.FuelUsed = Run.Steps;
    R.PeakHeapBytes = Run.PeakHeapBytes;
    R.Stats = Run.Stats;

    if (Run.OK) {
      R.Status = JobStatus::Done;
      R.ResultText = std::move(Run.ResultText);
      Breaker.recordSuccess(Key);
      return R;
    }

    R.Status = JobStatus::Failed;
    R.Kind = Run.Error.Kind;
    R.ErrorMessage = Run.Error.str();

    if (Config.Retry.isTransient(Run.Error.Kind) &&
        Attempt < Config.Retry.MaxRetries) {
      ++R.Retries;
      RetryCount.fetch_add(1, std::memory_order_relaxed);
      int64_t Backoff =
          Config.Retry.jitteredBackoffNanos(R.Retries, PrevBackoff, Gen);
      if (Backoff > 0)
        std::this_thread::sleep_for(std::chrono::nanoseconds(Backoff));
      // Fresh heap is automatic (each run() builds its own Runtime);
      // optionally give the retry more room to make OOM genuinely
      // transient when the original budget was finite.
      if (Limits.MaxHeapBytes && Config.Retry.HeapGrowthFactor > 1.0)
        Limits.MaxHeapBytes = static_cast<size_t>(
            static_cast<double>(Limits.MaxHeapBytes) *
            Config.Retry.HeapGrowthFactor);
      continue;
    }

    if (Run.Error.isResourceExhaustion())
      Breaker.recordResourceFailure(Key);
    // Program errors (Blame/Trap) end the streak: the program is
    // answering deterministically, not straining the pool.
    else
      Breaker.recordSuccess(Key);
    return R;
  }
}

ServiceStats ExecService::stats() const {
  ServiceStats S;
  S.JobsSubmitted = Submitted.load(std::memory_order_relaxed);
  S.JobsCompleted = Completed.load(std::memory_order_relaxed);
  S.JobsRejected = Breaker.rejections();
  S.JobsShed = Sheds.load(std::memory_order_relaxed);
  S.DeadlineExpired = Expired.load(std::memory_order_relaxed);
  S.Retries = RetryCount.load(std::memory_order_relaxed);
  S.WatchdogKills = Dog.kills();
  S.CacheHits = Pool.totalCacheHits();
  S.CacheMisses = Pool.totalCacheMisses();
  S.EpochResets = Pool.totalEpochResets();
  S.PeakQueueDepth = PeakQueue.load(std::memory_order_relaxed);
  if (ProgStore) {
    store::StoreStats SS = ProgStore->stats();
    S.StoreHits = SS.Hits;
    S.StoreMisses = SS.Misses;
    S.StoreCorrupt = SS.Corrupt;
    S.StoreEvicted = SS.Evicted;
  }
  return S;
}
