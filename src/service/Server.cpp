#include "service/Server.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace grift;
using namespace grift::service;
using namespace grift::service::protocol;

namespace {

void setRecvTimeout(int Fd, int64_t Nanos) {
  timeval TV;
  TV.tv_sec = Nanos / 1'000'000'000;
  TV.tv_usec = (Nanos % 1'000'000'000) / 1000;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &TV, sizeof TV);
}

void setSendTimeout(int Fd, int64_t Nanos) {
  timeval TV;
  TV.tv_sec = Nanos / 1'000'000'000;
  TV.tv_usec = (Nanos % 1'000'000'000) / 1000;
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &TV, sizeof TV);
}

/// The read-slice between drain-flag polls: short enough that SIGTERM
/// drains promptly, long enough that an idle connection costs ~4 wakeups
/// a second.
constexpr int64_t ReadSliceNanos = 250'000'000;

} // namespace

Server::Server(ServerConfig C)
    : Config(C), Exec(C.Exec), Adm(C.Admission), Quota(C.Quota) {}

Server::~Server() {
  if (Started.load()) {
    beginDrain();
    waitDrained();
  }
  if (WakeR >= 0)
    ::close(WakeR);
  if (WakeW >= 0)
    ::close(WakeW);
}

bool Server::start(std::string &Error) {
  int Pipe[2];
  if (::pipe(Pipe) != 0) {
    Error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  WakeR = Pipe[0];
  WakeW = Pipe[1];

  if (!Config.UnixSocketPath.empty()) {
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    if (Config.UnixSocketPath.size() >= sizeof Addr.sun_path) {
      Error = "socket path too long: " + Config.UnixSocketPath;
      return false;
    }
    std::strncpy(Addr.sun_path, Config.UnixSocketPath.c_str(),
                 sizeof Addr.sun_path - 1);
    ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0) {
      Error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    ::unlink(Config.UnixSocketPath.c_str());
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) !=
        0) {
      Error = "bind " + Config.UnixSocketPath + ": " + std::strerror(errno);
      ::close(ListenFd);
      ListenFd = -1;
      return false;
    }
  } else {
    ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (ListenFd < 0) {
      Error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    int One = 1;
    ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof One);
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    Addr.sin_port = htons(Config.TcpPort);
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) !=
        0) {
      Error = "bind 127.0.0.1:" + std::to_string(Config.TcpPort) + ": " +
              std::strerror(errno);
      ::close(ListenFd);
      ListenFd = -1;
      return false;
    }
    sockaddr_in Bound{};
    socklen_t Len = sizeof Bound;
    ::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Bound), &Len);
    BoundPort = ntohs(Bound.sin_port);
  }

  if (::listen(ListenFd, 128) != 0) {
    Error = std::string("listen: ") + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }

  Started.store(true);
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::beginDrain() {
  bool Expected = false;
  if (!Drain.compare_exchange_strong(Expected, true))
    return;
  if (WakeW >= 0) {
    char B = 1;
    [[maybe_unused]] ssize_t N = ::write(WakeW, &B, 1);
  }
}

void Server::waitDrained() {
  if (Acceptor.joinable())
    Acceptor.join();
  reapFinished(/*JoinAll=*/true);
  if (!Config.UnixSocketPath.empty())
    ::unlink(Config.UnixSocketPath.c_str());
}

void Server::reapFinished(bool JoinAll) {
  std::list<Conn> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(ConnM);
    for (auto It = Conns.begin(); It != Conns.end();) {
      if (JoinAll || It->Done->load(std::memory_order_acquire)) {
        ToJoin.splice(ToJoin.end(), Conns, It++);
      } else {
        ++It;
      }
    }
  }
  for (Conn &C : ToJoin)
    if (C.T.joinable())
      C.T.join();
}

void Server::acceptLoop() {
  for (;;) {
    pollfd PFDs[2] = {{ListenFd, POLLIN, 0}, {WakeR, POLLIN, 0}};
    int N = ::poll(PFDs, 2, 1000);
    if (Drain.load(std::memory_order_relaxed))
      break;
    if (N <= 0)
      continue;
    if (!(PFDs[0].revents & POLLIN))
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    reapFinished(/*JoinAll=*/false);
    size_t Open;
    {
      std::lock_guard<std::mutex> Lock(ConnM);
      Open = Conns.size();
    }
    setSendTimeout(Fd, Config.WriteTimeoutNanos);
    if (Config.MaxConnections && Open >= Config.MaxConnections) {
      // Refuse with a structured frame, not a silent close: the client
      // learns it was shed, not that the server died.
      Refused.fetch_add(1, std::memory_order_relaxed);
      JobResult R = makeReject("", ErrorKind::Overloaded,
                               "overloaded: connection limit reached");
      writeFrame(Fd, renderResult(R, "overloaded:connections"));
      ::close(Fd);
      continue;
    }
    Accepted.fetch_add(1, std::memory_order_relaxed);
    setRecvTimeout(Fd, ReadSliceNanos);
    auto Done = std::make_shared<std::atomic<bool>>(false);
    std::thread T([this, Fd, Done] {
      handleConnection(Fd);
      Done->store(true, std::memory_order_release);
    });
    std::lock_guard<std::mutex> Lock(ConnM);
    Conns.push_back(Conn{std::move(T), std::move(Done)});
  }
  ::close(ListenFd);
  ListenFd = -1;
}

bool Server::respond(int Fd, const std::string &Payload) {
  if (!writeFrame(Fd, Payload)) {
    SlowDrops.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  ResponseCount.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Server::handleConnection(int Fd) {
  FrameReader Reader(Fd, Config.MaxRequestBytes);
  std::string Payload;
  for (;;) {
    ReadStatus St = Reader.read(Payload);
    if (St == ReadStatus::Timeout) {
      if (Drain.load(std::memory_order_relaxed))
        break; // idle at drain: close; in-flight requests already finished
      continue;
    }
    if (St == ReadStatus::Closed)
      break;
    if (St == ReadStatus::TooLarge) {
      // The header told us the client wants more than we will buffer;
      // refusing without reading the body is the point of the length
      // prefix. The stream position is unknowable now, so close.
      BadRequests.fetch_add(1, std::memory_order_relaxed);
      respond(Fd, renderBadRequest(
                      "",
                      "request exceeds max_request_bytes (" +
                          std::to_string(Config.MaxRequestBytes) + ")",
                      "too-large"));
      break;
    }
    if (St == ReadStatus::Malformed) {
      BadRequests.fetch_add(1, std::memory_order_relaxed);
      respond(Fd,
              renderBadRequest("", "malformed frame header",
                               "malformed-frame"));
      break;
    }
    serveRequest(Fd, Payload);
    if (Drain.load(std::memory_order_relaxed))
      break; // response flushed; now close
  }
  ::close(Fd);
}

void Server::serveRequest(int Fd, const std::string &Payload) {
  RequestCount.fetch_add(1, std::memory_order_relaxed);

  Request Req;
  std::string ParseError;
  std::string ParseReason;
  if (!parseRequest(Payload, Req, ParseError, &ParseReason)) {
    // Malformed JSON or schema: a per-request error response, and the
    // connection keeps serving — one bad line never kills a stream.
    BadRequests.fetch_add(1, std::memory_order_relaxed);
    respond(Fd, renderBadRequest(Req.Spec.Id, ParseError, ParseReason));
    return;
  }
  if (Req.StatsRequest) {
    respond(Fd, renderStats());
    return;
  }

  const size_t Bytes = Payload.size();
  const std::string Tenant = Req.Spec.Tenant;

  // Layer 3: per-tenant quotas.
  if (Quota.enabled()) {
    TenantQuota::Verdict V =
        Quota.admit(Tenant, Bytes, TenantQuota::Clock::now());
    if (V != TenantQuota::Verdict::Admitted) {
      JobResult R = makeReject(Req.Spec.Id, ErrorKind::Overloaded,
                               std::string("tenant quota exceeded (") +
                                   tenantVerdictName(V) + ")");
      respond(Fd, renderResult(R, tenantVerdictName(V)));
      return;
    }
  }

  // Layer 4: global admission. Released when the request completes.
  AdmissionTicket Ticket(Adm, Bytes);
  if (!Ticket.admitted()) {
    if (Quota.enabled())
      Quota.complete(Tenant, Bytes, 0);
    const char *Reason =
        Ticket.verdict() == Admission::Verdict::TooManyBytes
            ? "overloaded:bytes"
            : "overloaded:inflight";
    JobResult R = makeReject(Req.Spec.Id, ErrorKind::Overloaded,
                             std::string("overloaded: ") +
                                 (Ticket.verdict() ==
                                          Admission::Verdict::TooManyBytes
                                      ? "inflight byte budget exhausted"
                                      : "too many requests in flight"));
    respond(Fd, renderResult(R, Reason));
    return;
  }

  // Layer 5: deadline propagation. The absolute deadline covers queue
  // wait + every attempt; the watchdog and wall budget are clamped to it
  // inside ExecService.
  int64_t DeadlineNanos = Req.Spec.DeadlineNanos;
  if (DeadlineNanos <= 0)
    DeadlineNanos = Config.DefaultDeadlineNanos;
  if (Config.MaxDeadlineNanos > 0 && DeadlineNanos > Config.MaxDeadlineNanos)
    DeadlineNanos = Config.MaxDeadlineNanos;
  Req.Spec.DeadlineNanos = DeadlineNanos;
  if (DeadlineNanos > 0)
    Req.Spec.QueueDeadline = std::chrono::steady_clock::now() +
                             std::chrono::nanoseconds(DeadlineNanos);

  JobResult R = Exec.run(std::move(Req.Spec));
  if (Quota.enabled())
    Quota.complete(Tenant, Bytes, R.FuelUsed);

  std::string Reason;
  if (R.Status == JobStatus::Rejected)
    Reason = R.ErrorMessage.rfind("circuit", 0) == 0 ? "circuit-open"
                                                     : "overloaded:queue";
  respond(Fd, renderResult(R, Reason));
}

ServerStats Server::stats() const {
  ServerStats S;
  S.ConnectionsAccepted = Accepted.load(std::memory_order_relaxed);
  S.ConnectionsRefused = Refused.load(std::memory_order_relaxed);
  S.Requests = RequestCount.load(std::memory_order_relaxed);
  S.Responses = ResponseCount.load(std::memory_order_relaxed);
  S.BadRequests = BadRequests.load(std::memory_order_relaxed);
  S.SlowClientDrops = SlowDrops.load(std::memory_order_relaxed);
  S.Adm = Adm.snapshot();
  S.Quota = Quota.snapshot();
  S.Exec = Exec.stats();
  return S;
}

std::string Server::renderStats() const {
  ServerStats S = stats();
  std::ostringstream Out;
  Out << "{\"status\":\"stats\""
      << ",\"connections_accepted\":" << S.ConnectionsAccepted
      << ",\"connections_refused\":" << S.ConnectionsRefused
      << ",\"requests\":" << S.Requests << ",\"responses\":" << S.Responses
      << ",\"bad_requests\":" << S.BadRequests
      << ",\"slow_client_drops\":" << S.SlowClientDrops
      << ",\"shed_total\":" << S.shedTotal()
      << ",\"quota_rejects\":" << S.Quota.Rejects
      << ",\"quota_rate_rejects\":" << S.Quota.RateRejects
      << ",\"quota_fuel_rejects\":" << S.Quota.FuelRejects
      << ",\"breaker_rejects\":" << S.Exec.JobsRejected
      << ",\"watchdog_kills\":" << S.Exec.WatchdogKills
      << ",\"deadline_expired\":" << S.Exec.DeadlineExpired
      << ",\"jobs_submitted\":" << S.Exec.JobsSubmitted
      << ",\"jobs_completed\":" << S.Exec.JobsCompleted
      << ",\"retries\":" << S.Exec.Retries
      << ",\"cache_hits\":" << S.Exec.CacheHits
      << ",\"cache_misses\":" << S.Exec.CacheMisses
      << ",\"epoch_resets\":" << S.Exec.EpochResets
      << ",\"store_hits\":" << S.Exec.StoreHits
      << ",\"store_misses\":" << S.Exec.StoreMisses
      << ",\"store_corrupt\":" << S.Exec.StoreCorrupt
      << ",\"store_evicted\":" << S.Exec.StoreEvicted
      << ",\"peak_queue_depth\":" << S.Exec.PeakQueueDepth
      << ",\"peak_inflight\":" << S.Adm.PeakInflight
      << ",\"peak_inflight_bytes\":" << S.Adm.PeakInflightBytes
      << ",\"tenants\":" << S.Quota.Tenants << "}";
  return Out.str();
}
