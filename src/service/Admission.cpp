#include "service/Admission.h"

#include <algorithm>

using namespace grift::service;

Admission::Verdict Admission::admit(size_t Bytes) {
  std::lock_guard<std::mutex> Lock(M);
  if (Config.MaxInflight && S.Inflight >= Config.MaxInflight) {
    ++S.Sheds;
    ++S.ShedsInflight;
    return Verdict::TooManyInflight;
  }
  if (Config.MaxInflightBytes &&
      S.InflightBytes + Bytes > Config.MaxInflightBytes) {
    ++S.Sheds;
    ++S.ShedsBytes;
    return Verdict::TooManyBytes;
  }
  ++S.Admitted;
  ++S.Inflight;
  S.InflightBytes += Bytes;
  S.PeakInflight = std::max(S.PeakInflight, S.Inflight);
  S.PeakInflightBytes = std::max(S.PeakInflightBytes, S.InflightBytes);
  return Verdict::Admitted;
}

void Admission::release(size_t Bytes) {
  std::lock_guard<std::mutex> Lock(M);
  if (S.Inflight)
    --S.Inflight;
  S.InflightBytes -= std::min(S.InflightBytes, Bytes);
}

Admission::Snapshot Admission::snapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  return S;
}
