#include "service/CircuitBreaker.h"

using namespace grift::service;

bool CircuitBreaker::admit(uint64_t Key) {
  if (Config.FailureThreshold == 0)
    return true;
  std::lock_guard<std::mutex> Lock(M);
  auto It = Entries.find(Key);
  if (It == Entries.end())
    return true; // no history: closed
  Entry &E = It->second;
  switch (E.S) {
  case State::Closed:
    return true;
  case State::Open:
    if (Clock::now() < E.OpenUntil) {
      ++Rejections;
      return false;
    }
    // Cooldown elapsed: this caller becomes the half-open probe.
    E.S = State::HalfOpen;
    E.ProbeInFlight = true;
    return true;
  case State::HalfOpen:
    if (E.ProbeInFlight) {
      // One probe at a time; everyone else keeps getting rejected.
      ++Rejections;
      return false;
    }
    E.ProbeInFlight = true;
    return true;
  }
  return true;
}

void CircuitBreaker::recordSuccess(uint64_t Key) {
  if (Config.FailureThreshold == 0)
    return;
  std::lock_guard<std::mutex> Lock(M);
  auto It = Entries.find(Key);
  if (It == Entries.end())
    return;
  // Success closes the circuit and clears the failure streak; drop the
  // entry so a long-running service doesn't accumulate one per program.
  Entries.erase(It);
}

void CircuitBreaker::recordResourceFailure(uint64_t Key) {
  if (Config.FailureThreshold == 0)
    return;
  std::lock_guard<std::mutex> Lock(M);
  Entry &E = Entries[Key];
  E.ProbeInFlight = false;
  ++E.Consecutive;
  if (E.S == State::HalfOpen || E.Consecutive >= Config.FailureThreshold) {
    E.S = State::Open;
    E.OpenUntil = Clock::now() + std::chrono::nanoseconds(Config.CooldownNanos);
  }
}

uint64_t CircuitBreaker::openCircuits() const {
  std::lock_guard<std::mutex> Lock(M);
  uint64_t N = 0;
  for (const auto &[Key, E] : Entries)
    if (E.S != State::Closed)
      ++N;
  return N;
}
