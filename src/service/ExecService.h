//===----------------------------------------------------------------------===//
///
/// \file
/// The hardened concurrent execution service. Turns the single-shot
/// engine into a multi-job executor:
///
///   submit(JobSpec) -> std::future<JobResult>
///
/// with, layered in this order per job:
///
///   1. circuit breaker — (source-hash, mode) pairs with a streak of
///      resource failures are rejected before touching an engine;
///   2. engine pool — one Grift per worker thread, per-slot compile
///      cache, debug thread-affinity asserts;
///   3. watchdog — jobs carrying a DeadlineNanos are preemptively
///      cancelled from a separate thread via the RunLimits cancel token
///      (ErrorKind::Cancelled) even if they never reach an in-band
///      budget check;
///   4. retry — transient OutOfMemory results are re-run on a fresh
///      heap after capped exponential backoff, optionally with a raised
///      heap budget.
///
/// Every failure mode ends in a JobResult; submit() never throws job
/// errors and workers never die. The destructor drains queued jobs
/// (running them, not dropping them) and joins all threads.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_SERVICE_EXECSERVICE_H
#define GRIFT_SERVICE_EXECSERVICE_H

#include "service/CircuitBreaker.h"
#include "service/EnginePool.h"
#include "service/Job.h"
#include "service/RetryPolicy.h"
#include "service/Watchdog.h"
#include "store/Store.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace grift::service {

struct ServiceConfig {
  /// Worker threads (= engine slots). 0 = hardware concurrency.
  unsigned Threads = 0;
  RetryPolicy Retry;
  BreakerConfig Breaker;
  /// Per-slot compile cache on/off (benchmarking cold-compile paths).
  bool CompileCache = true;
  /// Epoch cap on each slot's coercion arena: after a job, a slot whose
  /// engine has allocated more coercion nodes than this drops its
  /// compile cache and coercion factory together (see
  /// EnginePool::Slot::maybeResetEpoch). 0 disables epoch resets.
  size_t MaxCoercionNodes = 1u << 16;
  /// Admission bound on the internal queue: submissions arriving while
  /// MaxQueueDepth jobs are already waiting are *shed* — their future is
  /// fulfilled immediately with JobStatus::Rejected / ErrorKind::
  /// Overloaded instead of queueing unboundedly. 0 = unbounded (the
  /// batch tool's mode: it enqueues a whole manifest up front by
  /// design). Server front ends layer byte-budget admission and tenant
  /// quotas on top (see service::Admission / service::TenantQuota).
  size_t MaxQueueDepth = 0;
  /// Deterministic fault injection, for soak testing the service under
  /// allocator hostility: force a GC every Nth allocation and/or fail
  /// every Nth allocation with ErrorKind::OutOfMemory (both 0 = off).
  /// Each worker owns one FaultInjector whose allocation counter spans
  /// jobs, so the faults land at ever-shifting points of each program —
  /// exactly what the GC-torture nightly wants.
  uint64_t GCTorturePeriod = 0;
  /// Minor-GC torture: a nursery collection every Nth allocation and
  /// every Nth cast application, with the same job-spanning counter.
  uint64_t MinorGCTorturePeriod = 0;
  uint64_t FailAllocPeriod = 0;
  /// Persistent compiled-program store (src/store): directory for the
  /// content-addressed image cache. Empty disables it. On a slot-cache
  /// miss the lookup order becomes slot cache → store → compile, and
  /// successful compiles are published back for the next cold start.
  std::string CacheDir;
  /// Eviction cap for the store (0 = uncapped).
  uint64_t CacheMaxBytes = 256ull << 20;
  /// Deterministic file-I/O faults against the store (crash/corruption
  /// soak): truncate the Nth entry write, fail the Nth fsync, flip one
  /// bit of the Nth entry read (all 1-based one-shots, 0 = off).
  uint64_t FileShortWriteAt = 0;
  uint64_t FileFailFsyncAt = 0;
  uint64_t FileFlipReadBitAt = 0;
  uint64_t FileFlipReadBitIndex = 0;
};

/// Monotonic counters, snapshot via ExecService::stats().
struct ServiceStats {
  uint64_t JobsSubmitted = 0;
  uint64_t JobsCompleted = 0; ///< includes failed and rejected jobs
  uint64_t JobsRejected = 0;  ///< circuit breaker refusals
  uint64_t JobsShed = 0;      ///< overload sheds (queue depth bound)
  uint64_t DeadlineExpired = 0; ///< jobs expired in queue, never run
  uint64_t Retries = 0;       ///< extra attempts across all jobs
  uint64_t WatchdogKills = 0; ///< deadline cancellations
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t EpochResets = 0; ///< coercion-arena epoch resets across slots
  uint64_t PeakQueueDepth = 0; ///< high-water mark of waiting jobs
  uint64_t StoreHits = 0;    ///< compiles served from the persistent store
  uint64_t StoreMisses = 0;  ///< store lookups that fell back to compile
  uint64_t StoreCorrupt = 0; ///< store misses caused by failed validation
  uint64_t StoreEvicted = 0; ///< store entries evicted by the size cap
};

class ExecService {
public:
  explicit ExecService(ServiceConfig Config = {});
  ~ExecService();
  ExecService(const ExecService &) = delete;
  ExecService &operator=(const ExecService &) = delete;

  /// Enqueues a job; the future is fulfilled exactly once, with a
  /// JobResult for every outcome (including rejection).
  std::future<JobResult> submit(JobSpec Spec);

  /// submit() + wait: runs \p Spec and blocks for its result.
  JobResult run(JobSpec Spec) { return submit(std::move(Spec)).get(); }

  unsigned threads() const { return Pool.size(); }

  /// The persistent program store, or nullptr when CacheDir is unset
  /// (diagnostics, tests).
  store::Store *programStore() { return ProgStore.get(); }

  /// Jobs currently waiting (not yet picked up by a worker).
  size_t queueDepth() const;

  ServiceStats stats() const;

private:
  struct Pending {
    JobSpec Spec;
    std::promise<JobResult> Promise;
  };

  void workerLoop(unsigned SlotIdx);
  JobResult executeJob(EnginePool::Slot &Slot, JobSpec &Spec,
                       FaultInjector &Injector, RNG &Gen);

  ServiceConfig Config;
  /// File-I/O fault schedule shared by every worker's store access; the
  /// store serializes consults internally. Distinct from the per-worker
  /// heap injectors in workerLoop.
  FaultInjector FileFaults;
  std::unique_ptr<store::Store> ProgStore;
  EnginePool Pool;
  Watchdog Dog;
  CircuitBreaker Breaker;

  mutable std::mutex QueueM;
  std::condition_variable QueueCV;
  std::deque<Pending> Queue;
  bool Stopping = false;

  std::atomic<uint64_t> Submitted{0};
  std::atomic<uint64_t> Completed{0};
  std::atomic<uint64_t> RetryCount{0};
  std::atomic<uint64_t> Sheds{0};
  std::atomic<uint64_t> Expired{0};
  std::atomic<uint64_t> PeakQueue{0};

  std::vector<std::thread> Workers; ///< last member: started in ctor body
};

} // namespace grift::service

#endif // GRIFT_SERVICE_EXECSERVICE_H
