#include "service/EnginePool.h"

#include "store/Store.h"

using namespace grift::service;

EnginePool::EnginePool(unsigned N) {
  if (N == 0)
    N = 1;
  Slots.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Slots.push_back(std::make_unique<Slot>());
}

const EnginePool::CacheEntry &
EnginePool::Slot::compileCached(const JobSpec &Spec, bool &WasHit,
                                bool UseCache, store::Store *ProgStore) {
  // Key layout: one byte of mode, one of optimize, then the source —
  // cheap to build and unambiguous (both prefixes are fixed-width).
  std::string Key;
  Key.reserve(Spec.Source.size() + 2);
  Key.push_back(static_cast<char>('0' + static_cast<int>(Spec.Mode)));
  Key.push_back(Spec.Optimize ? '1' : '0');
  Key += Spec.Source;

  if (UseCache) {
    auto It = Cache.find(Key);
    if (It != Cache.end()) {
      CacheHits.fetch_add(1, std::memory_order_relaxed);
      WasHit = true;
      return It->second;
    }
  }
  CacheMisses.fetch_add(1, std::memory_order_relaxed);
  WasHit = false;
  CacheEntry Entry;
  bool FromStore = false;
  uint64_t StoreKey = 0;
  if (ProgStore && ProgStore->enabled()) {
    StoreKey = store::Store::key(Spec.Source, Spec.Mode, Spec.Optimize);
    VMProgram Prog;
    // Warm start: a validated image deserializes straight into this
    // slot's engine — no parse, no typecheck, no coercion derivation.
    if (ProgStore->load(StoreKey, Engine.types(), Engine.coercions(), Prog)) {
      Entry.Exe = Engine.adopt(std::move(Prog));
      FromStore = true;
    }
  }
  if (!FromStore) {
    Entry.Exe = Engine.compile(Spec.Source, Spec.Mode, Entry.Errors,
                               Spec.Optimize);
    // Publish successful compiles so the next cold process warm-starts;
    // compile errors stay in the in-memory negative cache only.
    if (Entry.Exe && StoreKey)
      ProgStore->put(StoreKey, Entry.Exe->program());
  }
  if (!UseCache) {
    // Still store (overwriting any stale entry) so the caller gets a
    // stable reference; with the cache disabled every compile lands here.
    return Cache[Key] = std::move(Entry);
  }
  return Cache.emplace(std::move(Key), std::move(Entry)).first->second;
}

bool EnginePool::Slot::maybeResetEpoch(size_t MaxNodes) {
  if (MaxNodes == 0 || Engine.coercions().allocatedNodes() <= MaxNodes)
    return false;
  Cache.clear();
  Engine.coercions().reset();
  // Each run's Heap retires its pool blocks to a per-thread cache; drop
  // them at the same boundary that bounds the coercion arena, so a slot's
  // memory footprint cannot ratchet across long job streams.
  Heap::purgeThreadBlockCache();
  EpochResets.fetch_add(1, std::memory_order_relaxed);
  return true;
}

uint64_t EnginePool::totalCacheHits() const {
  uint64_t N = 0;
  for (const auto &S : Slots)
    N += S->CacheHits.load(std::memory_order_relaxed);
  return N;
}

uint64_t EnginePool::totalCacheMisses() const {
  uint64_t N = 0;
  for (const auto &S : Slots)
    N += S->CacheMisses.load(std::memory_order_relaxed);
  return N;
}

uint64_t EnginePool::totalEpochResets() const {
  uint64_t N = 0;
  for (const auto &S : Slots)
    N += S->EpochResets.load(std::memory_order_relaxed);
  return N;
}
