//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol of griftd: length-prefixed JSON frames over a
/// stream socket, and the job-object schema shared with the JSONL batch
/// mode. One frame is
///
///   <decimal byte count> '\n' <payload>
///
/// where the payload is exactly one flat JSON object (json::LineParser
/// subset). The length prefix is the overload story's first line of
/// defense: the server knows a request's size before buffering it, so an
/// oversized payload is refused after reading one small header instead
/// of after swallowing it.
///
/// Requests are job objects ({"id", "tenant", "source", "mode", budget
/// fields, "deadline_ms", ...}) or the control object {"stats": true}.
/// Responses reuse griftd's batch result-line schema, plus "reason" on
/// rejections ("overloaded:queue", "quota:rate", ...).
///
/// parseRequest / renderResult are also used by the batch front end, so
/// a job parses and renders identically whether it arrived on a socket
/// or in a manifest line.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_SERVICE_PROTOCOL_H
#define GRIFT_SERVICE_PROTOCOL_H

#include "service/Job.h"

#include <string>
#include <string_view>

namespace grift::service::protocol {

/// One parsed request frame.
struct Request {
  JobSpec Spec;
  bool StatsRequest = false; ///< {"stats": true}: report counters instead
};

/// Parses one JSON job object into \p Out. Returns false with a
/// description in \p Error on malformed JSON, an unknown key, an unknown
/// mode, or a missing source — every failure is a per-request error the
/// caller reports in a structured response; none may abort a stream.
/// When \p Reason is non-null it receives the machine-readable failure
/// class ("malformed-json", "unknown-mode", "unknown-key",
/// "missing-source") for the bad-request record, so clients can branch
/// without parsing the prose in "error".
bool parseRequest(const std::string &Json, Request &Out, std::string &Error,
                  std::string *Reason = nullptr);

/// Renders the one-line JSON result object for \p R (no trailing
/// newline). \p Reason, when non-empty, is appended as a "reason"
/// member — the machine-readable rejection cause.
std::string renderResult(const JobResult &R, const std::string &Reason = "");

/// Renders a bad-request error response (no job was run). \p Reason,
/// when non-empty, is emitted as the machine-readable "reason" member
/// (e.g. "unknown-mode"); \p Error stays human-readable prose.
std::string renderBadRequest(const std::string &Id, const std::string &Error,
                             const std::string &Reason = "");

/// Builds a rejection JobResult (Status == Rejected) with \p Kind.
JobResult makeReject(std::string Id, ErrorKind Kind, std::string Message);

/// Wraps \p Payload in a frame: "<len>\n<payload>".
std::string frame(std::string_view Payload);

/// Outcome of FrameReader::read.
enum class ReadStatus {
  Frame,     ///< a complete frame was delivered
  Closed,    ///< peer closed (or connection error) — stop serving
  Timeout,   ///< the socket read timed out; caller may retry (drain poll)
  TooLarge,  ///< declared length exceeds the limit — refuse and close
  Malformed, ///< header was not "<decimal>\n" — refuse and close
};

/// Incremental frame reader over a blocking socket with SO_RCVTIMEO.
/// Keeps partial-frame state across Timeout returns, so a caller polling
/// a drain flag between reads never loses bytes to the timeout.
class FrameReader {
public:
  FrameReader(int Fd, size_t MaxBytes) : Fd(Fd), MaxBytes(MaxBytes) {}

  /// Reads until one whole frame is buffered; the payload lands in
  /// \p Payload only on ReadStatus::Frame.
  ReadStatus read(std::string &Payload);

private:
  bool fill(); ///< one recv(); false on EOF/error (Eof set) or timeout

  int Fd;
  size_t MaxBytes;
  std::string Buf;
  size_t Off = 0;
  bool Eof = false;
  bool TimedOut = false;
};

/// Writes one frame. Relies on SO_SNDTIMEO for slow-client bounding:
/// returns false when the peer is gone or too slow to take the bytes.
bool writeFrame(int Fd, std::string_view Payload);

} // namespace grift::service::protocol

#endif // GRIFT_SERVICE_PROTOCOL_H
