//===----------------------------------------------------------------------===//
///
/// \file
/// Deadline watchdog: one background thread that preemptively cancels
/// runs which outlive their deadline. A worker registers its run's
/// cancel token with watch() just before entering the engine and
/// unwatch()es on the way out; if the deadline passes first, the
/// watchdog stores the token and the engine unwinds with
/// ErrorKind::Cancelled at its next cancellation point (the VM's
/// dispatch-batch boundary / the refinterp's per-eval check).
///
/// The thread sleeps until the *earliest* registered deadline, so kill
/// latency is bounded by the engine's check cadence (microseconds), not
/// by a polling period. Unlike RunLimits::MaxWallNanos — which a job
/// wedged outside the dispatch loop might never reach — the decision to
/// cancel is made on a healthy thread.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_SERVICE_WATCHDOG_H
#define GRIFT_SERVICE_WATCHDOG_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>

namespace grift::service {

class Watchdog {
public:
  using Clock = std::chrono::steady_clock;

  Watchdog();
  ~Watchdog();
  Watchdog(const Watchdog &) = delete;
  Watchdog &operator=(const Watchdog &) = delete;

  /// Arms \p Token to be stored true at \p Deadline. \p Token must stay
  /// valid until unwatch() returns. Returns a handle for unwatch().
  uint64_t watch(std::atomic<bool> &Token, Clock::time_point Deadline);

  /// Disarms a watch. Safe to call after the deadline fired (the kill is
  /// already recorded; the token stays true for the caller to observe).
  void unwatch(uint64_t Handle);

  /// Runs killed because their deadline passed.
  uint64_t kills() const { return Kills.load(std::memory_order_relaxed); }

private:
  struct Armed {
    std::atomic<bool> *Token;
    Clock::time_point Deadline;
  };

  void loop();

  std::mutex M;
  std::condition_variable CV;
  std::map<uint64_t, Armed> Active; ///< handle -> armed watch
  uint64_t NextHandle = 1;
  bool Stop = false;
  std::atomic<uint64_t> Kills{0};
  std::thread Thread; ///< last member: started after state is ready
};

} // namespace grift::service

#endif // GRIFT_SERVICE_WATCHDOG_H
