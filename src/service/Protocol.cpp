#include "service/Protocol.h"

#include "runtime/Mode.h"
#include "support/Json.h"

#include <cerrno>
#include <map>
#include <sstream>

#include <sys/socket.h>
#include <sys/types.h>

using namespace grift;
using namespace grift::service;
using namespace grift::service::protocol;

bool grift::service::protocol::parseRequest(const std::string &Json,
                                            Request &Out, std::string &Error,
                                            std::string *Reason) {
  auto failWith = [&](const char *Class) {
    if (Reason)
      *Reason = Class;
    return false;
  };
  json::LineParser P(Json);
  std::map<std::string, json::Value> Obj;
  if (!P.parse(Obj)) {
    Error = P.Error;
    return failWith("malformed-json");
  }
  for (const auto &[Key, V] : Obj) {
    if (Key == "id")
      Out.Spec.Id = V.S;
    else if (Key == "tenant")
      Out.Spec.Tenant = V.S;
    else if (Key == "source")
      Out.Spec.Source = V.S;
    else if (Key == "input")
      Out.Spec.Input = V.S;
    else if (Key == "mode") {
      // The one shared mode parser (runtime/Mode.h): griftc, the socket
      // protocol, and the batch manifest accept exactly the same names,
      // and a backend registered there is automatically reachable here.
      if (!castModeFromName(V.S, Out.Spec.Mode)) {
        Error = "unknown mode '" + V.S + "'";
        return failWith("unknown-mode");
      }
    } else if (Key == "optimize")
      Out.Spec.Optimize = V.B;
    else if (Key == "max_steps")
      Out.Spec.Limits.MaxSteps = static_cast<uint64_t>(V.N);
    else if (Key == "max_heap")
      Out.Spec.Limits.MaxHeapBytes = static_cast<size_t>(V.N);
    else if (Key == "max_depth")
      Out.Spec.Limits.MaxFrames = static_cast<uint32_t>(V.N);
    else if (Key == "max_wall_ms")
      Out.Spec.Limits.MaxWallNanos = static_cast<int64_t>(V.N * 1e6);
    else if (Key == "deadline_ms")
      Out.Spec.DeadlineNanos = static_cast<int64_t>(V.N * 1e6);
    else if (Key == "stats")
      Out.StatsRequest = V.K == json::Value::Bool ? V.B : true;
    else {
      Error = "unknown key '" + Key + "'";
      return failWith("unknown-key");
    }
  }
  if (!Out.StatsRequest && Out.Spec.Source.empty()) {
    Error = "missing \"source\"";
    return failWith("missing-source");
  }
  return true;
}

std::string grift::service::protocol::renderResult(const JobResult &R,
                                                   const std::string &Reason) {
  std::ostringstream Out;
  Out << "{\"id\":\"" << json::escape(R.Id) << "\",\"status\":\""
      << jobStatusName(R.Status) << '"';
  if (R.Status == JobStatus::Done)
    Out << ",\"result\":\"" << json::escape(R.ResultText) << '"';
  if (R.Status == JobStatus::Failed || R.Status == JobStatus::Rejected)
    Out << ",\"error_kind\":\"" << errorKindName(R.Kind) << '"';
  if (R.Status != JobStatus::Done)
    Out << ",\"error\":\"" << json::escape(R.ErrorMessage) << '"';
  if (!Reason.empty())
    Out << ",\"reason\":\"" << json::escape(Reason) << '"';
  Out << ",\"attempts\":" << R.Attempts << ",\"retries\":" << R.Retries
      << ",\"cache_hit\":" << (R.CompileCacheHit ? "true" : "false")
      << ",\"wall_ms\":" << R.WallNanos / 1e6 << ",\"fuel\":" << R.FuelUsed
      << ",\"peak_heap\":" << R.PeakHeapBytes << ",\"casts\":"
      << R.Stats.CastsApplied << "}";
  return Out.str();
}

std::string
grift::service::protocol::renderBadRequest(const std::string &Id,
                                           const std::string &Error,
                                           const std::string &Reason) {
  std::string Out = "{\"id\":\"" + json::escape(Id) +
                    "\",\"status\":\"bad-request\",\"error\":\"" +
                    json::escape(Error) + "\"";
  if (!Reason.empty())
    Out += ",\"reason\":\"" + json::escape(Reason) + "\"";
  Out += "}";
  return Out;
}

JobResult grift::service::protocol::makeReject(std::string Id, ErrorKind Kind,
                                               std::string Message) {
  JobResult R;
  R.Id = std::move(Id);
  R.Status = JobStatus::Rejected;
  R.Kind = Kind;
  R.ErrorMessage = std::move(Message);
  return R;
}

std::string grift::service::protocol::frame(std::string_view Payload) {
  std::string Out = std::to_string(Payload.size());
  Out += '\n';
  Out += Payload;
  return Out;
}

bool FrameReader::fill() {
  TimedOut = false;
  char Chunk[16384];
  ssize_t N = ::recv(Fd, Chunk, sizeof Chunk, 0);
  if (N > 0) {
    Buf.append(Chunk, static_cast<size_t>(N));
    return true;
  }
  if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
    TimedOut = true;
    return false;
  }
  Eof = true; // orderly close or hard error: either way, stop serving
  return false;
}

ReadStatus FrameReader::read(std::string &Payload) {
  for (;;) {
    // Compact consumed bytes occasionally so a long-lived connection's
    // buffer does not grow with its request count.
    if (Off > 0 && Off == Buf.size()) {
      Buf.clear();
      Off = 0;
    } else if (Off > (1u << 16)) {
      Buf.erase(0, Off);
      Off = 0;
    }
    // Header: "<decimal>\n", at most 20 digits.
    size_t NL = Buf.find('\n', Off);
    if (NL == std::string::npos) {
      if (Buf.size() - Off > 20)
        return ReadStatus::Malformed;
      if (!fill())
        return Eof ? ReadStatus::Closed : ReadStatus::Timeout;
      continue;
    }
    if (NL == Off)
      return ReadStatus::Malformed;
    uint64_t Len = 0;
    for (size_t I = Off; I != NL; ++I) {
      char C = Buf[I];
      if (C < '0' || C > '9')
        return ReadStatus::Malformed;
      Len = Len * 10 + static_cast<uint64_t>(C - '0');
      if (Len > (1ull << 32))
        return ReadStatus::TooLarge;
    }
    if (MaxBytes && Len > MaxBytes)
      return ReadStatus::TooLarge;
    while (Buf.size() - NL - 1 < Len) {
      if (!fill())
        return Eof ? ReadStatus::Closed : ReadStatus::Timeout;
    }
    Payload.assign(Buf, NL + 1, Len);
    Off = NL + 1 + Len;
    return ReadStatus::Frame;
  }
}

bool grift::service::protocol::writeFrame(int Fd, std::string_view Payload) {
  std::string Framed = frame(Payload);
  size_t Sent = 0;
  while (Sent < Framed.size()) {
    ssize_t N = ::send(Fd, Framed.data() + Sent, Framed.size() - Sent,
                       MSG_NOSIGNAL);
    if (N > 0) {
      Sent += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    // EAGAIN here means SO_SNDTIMEO expired: the client is too slow to
    // take its own response. Dropping it is the contract — one wedged
    // reader must not park a connection thread forever.
    return false;
  }
  return true;
}
