//===----------------------------------------------------------------------===//
///
/// \file
/// Job descriptions and results for the execution service. A JobSpec is
/// everything needed to compile and run one program: source, cast mode,
/// input, in-band resource budgets (RunLimits) and an out-of-band
/// watchdog deadline. A JobResult is the structured outcome griftd
/// serializes one line of: status, ErrorKind, retry count, and the
/// wall/fuel/heap consumption snapshot from the run.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_SERVICE_JOB_H
#define GRIFT_SERVICE_JOB_H

#include "runtime/Blame.h"
#include "runtime/Limits.h"
#include "runtime/Mode.h"
#include "runtime/Stats.h"

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace grift::service {

/// One program execution request.
struct JobSpec {
  std::string Id;     ///< caller-chosen identifier, echoed in the result
  std::string Tenant; ///< quota/accounting principal; empty = anonymous
  std::string Source; ///< GTLC+ source text
  CastMode Mode = CastMode::Coercions;
  bool Optimize = false;
  std::string Input;  ///< words for read-int / read-char
  /// In-band budgets enforced by the engine itself. The Cancel field is
  /// owned by the service (each attempt gets the pool slot's token); any
  /// caller-provided pointer is ignored.
  RunLimits Limits;
  /// Out-of-band watchdog deadline per attempt, in nanoseconds of wall
  /// time; 0 = no watchdog. Unlike Limits.MaxWallNanos this needs no
  /// cooperation from the budget checks being reached: the watchdog
  /// thread stores the cancel token and the run dies at the next
  /// dispatch-batch boundary with ErrorKind::Cancelled.
  int64_t DeadlineNanos = 0;
  /// Absolute end-to-end deadline (steady clock), including time spent
  /// queued behind other jobs. Default-constructed = none. When set, the
  /// service (a) fails the job with ErrorKind::Timeout *without running
  /// it* if it is already expired at dequeue, and (b) clamps both the
  /// in-band MaxWallNanos and the out-of-band watchdog deadline of every
  /// attempt to the time remaining — a request never outlives its
  /// client's patience, no matter how deep the queue was.
  std::chrono::steady_clock::time_point QueueDeadline{};
};

/// How a job ended.
enum class JobStatus : uint8_t {
  Done,         ///< ran to completion; ResultText holds the value
  CompileError, ///< parse/check/compile failed; ErrorMessage holds why
  Failed,       ///< ran and failed; Kind/ErrorMessage describe the error
  Rejected,     ///< not run at all: circuit open or load shed (see Kind)
};

inline const char *jobStatusName(JobStatus S) {
  switch (S) {
  case JobStatus::Done:
    return "ok";
  case JobStatus::CompileError:
    return "compile-error";
  case JobStatus::Failed:
    return "failed";
  case JobStatus::Rejected:
    return "rejected";
  }
  return "?";
}

/// Structured outcome of one job (all attempts included).
struct JobResult {
  std::string Id;
  JobStatus Status = JobStatus::Failed;
  std::string ResultText;       ///< final value (Status == Done)
  std::string Output;           ///< program output of the final attempt
  ErrorKind Kind = ErrorKind::Trap; ///< valid when Failed or Rejected
  std::string ErrorMessage;     ///< human-readable failure description
  uint32_t Attempts = 0;        ///< runs performed (0 when rejected)
  uint32_t Retries = 0;         ///< Attempts - 1, capped at the policy
  bool CompileCacheHit = false; ///< compiled program came from the cache
  int64_t WallNanos = 0;        ///< execution wall time, summed over attempts
  uint64_t FuelUsed = 0;        ///< interpreter steps of the final attempt
  size_t PeakHeapBytes = 0;     ///< heap high-water mark, final attempt
  RuntimeStats Stats;           ///< runtime counters, final attempt

  bool ok() const { return Status == JobStatus::Done; }
};

/// Stable 64-bit key identifying (source, mode, optimize) — the unit the
/// circuit breaker quarantines and the compile cache indexes. FNV-1a over
/// the source with the mode/optimize folded in; a collision merely shares
/// a breaker entry or cache slot with full-source verification at the
/// cache, so it degrades accounting, never correctness.
inline uint64_t jobKey(std::string_view Source, CastMode Mode,
                       bool Optimize = false) {
  uint64_t H = 1469598103934665603ull;
  for (char C : Source) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ull;
  }
  H ^= static_cast<uint64_t>(Mode) + 1;
  H *= 1099511628211ull;
  H ^= Optimize ? 0x9e3779b9ull : 0;
  return H;
}

} // namespace grift::service

#endif // GRIFT_SERVICE_JOB_H
