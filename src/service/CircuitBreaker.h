//===----------------------------------------------------------------------===//
///
/// \file
/// Per-program circuit breaker. The service keys each job by
/// (source-hash, mode); after FailureThreshold *consecutive* resource
/// failures (OOM, fuel, timeout, cancelled — all retries exhausted) the
/// key's circuit opens and further submissions are rejected without
/// running, so one poison program cannot monopolize the pool. After
/// CooldownNanos the circuit goes half-open: exactly one probe job is
/// admitted; success closes the circuit, another resource failure
/// re-opens it for a fresh cooldown.
///
/// Program errors (Blame/Trap) never trip the breaker — they are the
/// program behaving deterministically, cost one bounded run, and callers
/// deserve the real answer every time.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_SERVICE_CIRCUITBREAKER_H
#define GRIFT_SERVICE_CIRCUITBREAKER_H

#include <chrono>
#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace grift::service {

struct BreakerConfig {
  /// Consecutive resource failures that open the circuit. 0 disables
  /// the breaker entirely.
  uint32_t FailureThreshold = 3;
  /// How long an open circuit rejects before admitting a probe.
  int64_t CooldownNanos = 5'000'000'000; // 5 s
};

class CircuitBreaker {
public:
  using Clock = std::chrono::steady_clock;

  explicit CircuitBreaker(BreakerConfig Config = {}) : Config(Config) {}

  /// True if a job with \p Key may run now. May transition the key to
  /// half-open (admitting this caller as the single probe).
  bool admit(uint64_t Key);

  /// Record the outcome of an admitted run.
  void recordSuccess(uint64_t Key);
  void recordResourceFailure(uint64_t Key);

  /// Number of admissions refused so far.
  uint64_t rejections() const {
    std::lock_guard<std::mutex> Lock(M);
    return Rejections;
  }

  /// Number of currently open (or half-open) circuits.
  uint64_t openCircuits() const;

private:
  enum class State : uint8_t { Closed, Open, HalfOpen };
  struct Entry {
    State S = State::Closed;
    uint32_t Consecutive = 0;     ///< consecutive resource failures
    Clock::time_point OpenUntil;  ///< when Open may go HalfOpen
    bool ProbeInFlight = false;   ///< HalfOpen: the single probe is out
  };

  BreakerConfig Config;
  mutable std::mutex M;
  std::unordered_map<uint64_t, Entry> Entries;
  uint64_t Rejections = 0;
};

} // namespace grift::service

#endif // GRIFT_SERVICE_CIRCUITBREAKER_H
