//===----------------------------------------------------------------------===//
///
/// \file
/// Retry policy for transient failures. Of the ErrorKind taxonomy only
/// OutOfMemory is treated as transient: every attempt runs on a fresh
/// heap, so an OOM caused by a tight budget (or an injected allocator
/// fault) can genuinely succeed on retry, optionally with a raised heap
/// budget. Program errors (Blame/Trap) are deterministic and never
/// retried; Fuel/Timeout/Cancelled mean the budget or watchdog already
/// decided this job had its chance.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_SERVICE_RETRYPOLICY_H
#define GRIFT_SERVICE_RETRYPOLICY_H

#include "runtime/Blame.h"
#include "support/RNG.h"

#include <algorithm>
#include <cstdint>

namespace grift::service {

struct RetryPolicy {
  /// Additional attempts after the first (0 disables retries).
  uint32_t MaxRetries = 2;

  /// Backoff before retry N (1-based) is
  ///   min(InitialBackoffNanos * Multiplier^(N-1), MaxBackoffNanos).
  int64_t InitialBackoffNanos = 1'000'000; // 1 ms
  double BackoffMultiplier = 2.0;
  int64_t MaxBackoffNanos = 100'000'000; // 100 ms

  /// Decorrelate retry timing across the pool. With the deterministic
  /// curve, every slot that hits a transient failure at the same moment
  /// sleeps exactly the same series of delays and the whole pool
  /// thunder-herds the same hot engine again in lockstep. When enabled,
  /// each sleep is drawn uniformly from [Initial, min(Max, 3*previous)]
  /// ("decorrelated jitter"): the expected delay still grows toward the
  /// cap, but no two slots stay synchronized.
  bool DecorrelatedJitter = true;

  /// When retrying an OutOfMemory attempt whose RunLimits carried a
  /// finite MaxHeapBytes, multiply that budget by this factor (1.0 =
  /// keep the budget; the retry then only helps against injected or
  /// external allocator faults). Unlimited budgets stay unlimited.
  double HeapGrowthFactor = 2.0;

  /// Whether \p Kind is worth another attempt at all.
  bool isTransient(ErrorKind Kind) const {
    return Kind == ErrorKind::OutOfMemory;
  }

  /// Capped exponential backoff before 1-based retry \p Retry — the
  /// deterministic center curve (no jitter).
  int64_t backoffNanos(uint32_t Retry) const {
    if (Retry == 0 || InitialBackoffNanos <= 0)
      return 0;
    double B = static_cast<double>(InitialBackoffNanos);
    for (uint32_t I = 1; I < Retry; ++I) {
      B *= BackoffMultiplier;
      if (B >= static_cast<double>(MaxBackoffNanos))
        break;
    }
    return std::min(static_cast<int64_t>(B), MaxBackoffNanos);
  }

  /// Backoff before 1-based retry \p Retry with decorrelated jitter.
  /// \p PrevNanos carries the previous sleep of this job's retry chain
  /// (0 before the first retry) and is updated in place; \p Gen is the
  /// caller's (per-slot) RNG. Falls back to the deterministic curve when
  /// DecorrelatedJitter is off. The result is always within
  /// [InitialBackoffNanos, MaxBackoffNanos].
  int64_t jitteredBackoffNanos(uint32_t Retry, int64_t &PrevNanos,
                               RNG &Gen) const {
    if (!DecorrelatedJitter)
      return backoffNanos(Retry);
    if (Retry == 0 || InitialBackoffNanos <= 0)
      return 0;
    int64_t Base = std::min(InitialBackoffNanos, MaxBackoffNanos);
    int64_t Prev = PrevNanos > 0 ? PrevNanos : Base;
    int64_t Hi = Prev > MaxBackoffNanos / 3 ? MaxBackoffNanos : Prev * 3;
    int64_t Sleep =
        Hi > Base
            ? Base + static_cast<int64_t>(
                         Gen.below(static_cast<uint64_t>(Hi - Base) + 1))
            : Base;
    PrevNanos = Sleep;
    return Sleep;
  }
};

} // namespace grift::service

#endif // GRIFT_SERVICE_RETRYPOLICY_H
