#include "service/Watchdog.h"

using namespace grift::service;

Watchdog::Watchdog() : Thread([this] { loop(); }) {}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stop = true;
  }
  CV.notify_all();
  Thread.join();
}

uint64_t Watchdog::watch(std::atomic<bool> &Token, Clock::time_point Deadline) {
  std::lock_guard<std::mutex> Lock(M);
  uint64_t Handle = NextHandle++;
  Active.emplace(Handle, Armed{&Token, Deadline});
  // Wake the thread so it re-computes the nearest deadline; a new watch
  // may be earlier than whatever it is currently sleeping towards.
  CV.notify_all();
  return Handle;
}

void Watchdog::unwatch(uint64_t Handle) {
  std::lock_guard<std::mutex> Lock(M);
  Active.erase(Handle);
  // No notify needed: a spurious early wake-up just recomputes and
  // sleeps again.
}

void Watchdog::loop() {
  std::unique_lock<std::mutex> Lock(M);
  while (!Stop) {
    // Fire every expired watch. Tokens are stored under the lock, so an
    // unwatch() racing with a kill either removes the entry first (no
    // store) or blocks until the store completed — the token is always
    // valid when written.
    Clock::time_point Now = Clock::now();
    Clock::time_point Nearest = Clock::time_point::max();
    for (auto It = Active.begin(); It != Active.end();) {
      if (It->second.Deadline <= Now) {
        It->second.Token->store(true, std::memory_order_relaxed);
        Kills.fetch_add(1, std::memory_order_relaxed);
        It = Active.erase(It);
      } else {
        Nearest = std::min(Nearest, It->second.Deadline);
        ++It;
      }
    }
    if (Nearest == Clock::time_point::max())
      CV.wait(Lock, [this] { return Stop || !Active.empty(); });
    else
      CV.wait_until(Lock, Nearest);
  }
}
