#include "service/TenantQuota.h"

#include <algorithm>

using namespace grift::service;

void TenantQuota::refill(Bucket &B, Clock::time_point Now) const {
  double RequestCap =
      Config.RequestsPerSec > 0 ? std::max(Config.BurstRequests, 1.0) : 0;
  double FuelCap = Config.FuelPerSec > 0
                       ? std::max(Config.FuelBurst, Config.FuelPerSec)
                       : 0;
  if (!B.Seeded) {
    // A new tenant starts with full buckets: bursts up to the depth are
    // the contract, and a fresh tenant has banked nothing against it.
    B.RequestTokens = RequestCap;
    B.FuelTokens = FuelCap;
    B.LastRefill = Now;
    B.Seeded = true;
    return;
  }
  double Dt = std::chrono::duration<double>(Now - B.LastRefill).count();
  if (Dt <= 0)
    return;
  B.LastRefill = Now;
  if (Config.RequestsPerSec > 0)
    B.RequestTokens =
        std::min(RequestCap, B.RequestTokens + Dt * Config.RequestsPerSec);
  if (Config.FuelPerSec > 0)
    B.FuelTokens = std::min(FuelCap, B.FuelTokens + Dt * Config.FuelPerSec);
}

TenantQuota::Verdict TenantQuota::admit(const std::string &Tenant,
                                        size_t Bytes, Clock::time_point Now) {
  std::lock_guard<std::mutex> Lock(M);
  Bucket &B = Buckets[Tenant];
  refill(B, Now);
  if (Config.MaxInflight && B.Inflight >= Config.MaxInflight) {
    ++S.Rejects;
    ++S.InflightRejects;
    return Verdict::TooManyInflight;
  }
  if (Config.MaxInflightBytes &&
      B.InflightBytes + Bytes > Config.MaxInflightBytes) {
    ++S.Rejects;
    ++S.InflightRejects;
    return Verdict::TooManyBytes;
  }
  if (Config.RequestsPerSec > 0 && B.RequestTokens < 1.0) {
    ++S.Rejects;
    ++S.RateRejects;
    return Verdict::RateLimited;
  }
  // Fuel debt from earlier heavy runs must drain before new admissions.
  if (Config.FuelPerSec > 0 && B.FuelTokens <= 0) {
    ++S.Rejects;
    ++S.FuelRejects;
    return Verdict::FuelExhausted;
  }
  if (Config.RequestsPerSec > 0)
    B.RequestTokens -= 1.0;
  ++B.Inflight;
  B.InflightBytes += Bytes;
  ++S.Admitted;
  return Verdict::Admitted;
}

void TenantQuota::complete(const std::string &Tenant, size_t Bytes,
                           uint64_t FuelUsed) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Buckets.find(Tenant);
  if (It == Buckets.end())
    return;
  Bucket &B = It->second;
  if (B.Inflight)
    --B.Inflight;
  B.InflightBytes -= std::min(B.InflightBytes, Bytes);
  if (Config.FuelPerSec > 0)
    B.FuelTokens -= static_cast<double>(FuelUsed);
}

TenantQuota::Snapshot TenantQuota::snapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  Snapshot Out = S;
  Out.Tenants = Buckets.size();
  return Out;
}

const char *grift::service::tenantVerdictName(TenantQuota::Verdict V) {
  switch (V) {
  case TenantQuota::Verdict::Admitted:
    return "admitted";
  case TenantQuota::Verdict::RateLimited:
    return "quota:rate";
  case TenantQuota::Verdict::FuelExhausted:
    return "quota:fuel";
  case TenantQuota::Verdict::TooManyInflight:
    return "quota:inflight";
  case TenantQuota::Verdict::TooManyBytes:
    return "quota:bytes";
  }
  return "?";
}
