//===----------------------------------------------------------------------===//
///
/// \file
/// The long-running multi-tenant griftd server. Listens on a Unix or
/// loopback TCP socket, speaks the length-prefixed frame protocol
/// (service/Protocol.h), and pushes every request through the layered
/// robustness pipeline before an engine ever sees it:
///
///   1. connection cap — accepts beyond MaxConnections are answered
///      with an Overloaded frame and closed;
///   2. frame length check — oversized requests are refused from the
///      header alone, before the payload is buffered;
///   3. per-tenant quotas (service/TenantQuota.h) — request-rate token
///      bucket, post-charged fuel budget, per-tenant inflight caps;
///   4. global admission (service/Admission.h) — inflight request and
///      byte budgets, so no mix of tenants can OOM the process;
///   5. deadline propagation — every request gets an absolute deadline
///      (its deadline_ms or the server default) that clamps queue wait,
///      the in-band wall budget, and the watchdog together;
///   6. the hardened ExecService underneath (pool, breaker, watchdog,
///      retry).
///
/// Load shedding is always a structured response (ErrorKind::Overloaded
/// plus a "reason"), never silence, and never an unbounded queue.
///
/// Shutdown is drain-based: beginDrain() (the SIGTERM path) stops
/// accepting, lets in-flight requests finish and their responses flush,
/// then waitDrained() joins everything. Slow clients cannot stall the
/// drain: writes carry SO_SNDTIMEO and idle reads time out in 250 ms
/// slices between drain-flag polls.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_SERVICE_SERVER_H
#define GRIFT_SERVICE_SERVER_H

#include "service/Admission.h"
#include "service/ExecService.h"
#include "service/Protocol.h"
#include "service/TenantQuota.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace grift::service {

struct ServerConfig {
  /// Unix-domain listener path. Takes precedence over TCP when set; the
  /// path is unlinked on bind and again on shutdown.
  std::string UnixSocketPath;
  /// Loopback TCP listener (127.0.0.1). Used when UnixSocketPath is
  /// empty; port 0 binds an ephemeral port (see Server::tcpPort()).
  uint16_t TcpPort = 0;
  /// Concurrent connections; accepts beyond this are refused with an
  /// Overloaded frame.
  unsigned MaxConnections = 64;
  /// Per-request payload ceiling, enforced from the frame header.
  size_t MaxRequestBytes = 1u << 20; // 1 MiB
  /// Slow-client write timeout (SO_SNDTIMEO): a response the client
  /// will not read within this bound drops the connection.
  int64_t WriteTimeoutNanos = 5'000'000'000;
  /// Deadline applied to requests that carry none; 0 = requests without
  /// deadline_ms run undeadlined (not recommended).
  int64_t DefaultDeadlineNanos = 30'000'000'000;
  /// Ceiling on client-requested deadlines; 0 = no ceiling.
  int64_t MaxDeadlineNanos = 300'000'000'000;
  AdmissionConfig Admission;
  TenantQuotaConfig Quota;
  ServiceConfig Exec;
};

/// Monotonic server counters + snapshots of every layer underneath.
struct ServerStats {
  uint64_t ConnectionsAccepted = 0;
  uint64_t ConnectionsRefused = 0; ///< connection cap
  uint64_t Requests = 0;           ///< complete frames parsed as requests
  uint64_t Responses = 0;          ///< response frames fully written
  uint64_t BadRequests = 0;        ///< malformed frame/JSON/schema
  uint64_t SlowClientDrops = 0;    ///< connections dropped on write timeout
  Admission::Snapshot Adm;
  TenantQuota::Snapshot Quota;
  ServiceStats Exec;

  /// Total shed responses: global admission + queue-bound sheds.
  uint64_t shedTotal() const { return Adm.Sheds + Exec.JobsShed; }
};

class Server {
public:
  explicit Server(ServerConfig Config);
  ~Server(); ///< drains if still running

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the listener and starts the accept thread. False + \p Error
  /// when the socket cannot be set up (nothing is left running).
  bool start(std::string &Error);

  /// The bound TCP port (after start(), TCP mode). 0 in Unix mode.
  uint16_t tcpPort() const { return BoundPort; }

  /// Initiates drain: stop accepting, finish in-flight requests, flush
  /// their responses, close connections. Returns immediately; safe to
  /// call more than once and from any thread (the SIGTERM handler path
  /// defers to the main thread via a self-pipe — see griftd).
  void beginDrain();

  /// Blocks until the accept thread and every connection have exited.
  void waitDrained();

  bool draining() const { return Drain.load(std::memory_order_relaxed); }

  ServerStats stats() const;

  /// The flat JSON object served for {"stats": true} requests.
  std::string renderStats() const;

private:
  struct Conn {
    std::thread T;
    std::shared_ptr<std::atomic<bool>> Done;
  };

  void acceptLoop();
  void handleConnection(int Fd);
  void serveRequest(int Fd, const std::string &Payload);
  bool respond(int Fd, const std::string &Payload);
  void reapFinished(bool JoinAll);

  ServerConfig Config;
  ExecService Exec;
  Admission Adm;
  TenantQuota Quota;

  int ListenFd = -1;
  int WakeR = -1, WakeW = -1; ///< self-pipe: beginDrain -> accept poll
  uint16_t BoundPort = 0;
  std::atomic<bool> Drain{false};
  std::atomic<bool> Started{false};

  std::atomic<uint64_t> Accepted{0}, Refused{0}, RequestCount{0},
      ResponseCount{0}, BadRequests{0}, SlowDrops{0};

  std::mutex ConnM;
  std::list<Conn> Conns;
  std::thread Acceptor;
};

} // namespace grift::service

#endif // GRIFT_SERVICE_SERVER_H
