//===----------------------------------------------------------------------===//
///
/// \file
/// Per-tenant quotas for the multi-tenant server. Each request names a
/// tenant (empty = the anonymous tenant, governed like any other); a
/// tenant is admitted only if all of the following hold:
///
///   * request-rate token bucket — RequestsPerSec sustained, Burst deep.
///     Classic leaky bucket with continuous refill: deterministic given
///     the clock, which the tests inject.
///   * fuel budget bucket — FuelPerSec sustained. Fuel (interpreter
///     steps) is only known *after* a run, so the bucket is post-charged:
///     a completed job's FuelUsed is debited, the balance may go
///     negative (debt), and while in debt the tenant is refused. A
///     tenant that burns 10x its rate in one request pays it back in
///     refused admissions, which is exactly the aggregate-budget
///     semantics the multi-tenant story needs — one hot tenant cannot
///     starve the pool for the others.
///   * inflight caps — MaxInflight concurrent requests and
///     MaxInflightBytes of concurrent payload per tenant, so a single
///     tenant cannot occupy the whole global admission budget.
///
/// All refusals are cheap (one mutex, no engine touched) and counted per
/// reason; the server surfaces them as ErrorKind::Overloaded responses
/// with a quota reason string, and griftload aggregates them into the
/// quota_rejects SLO counter.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_SERVICE_TENANTQUOTA_H
#define GRIFT_SERVICE_TENANTQUOTA_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace grift::service {

struct TenantQuotaConfig {
  /// Sustained request admission rate per tenant. 0 = unlimited.
  double RequestsPerSec = 0;
  /// Request bucket depth (instantaneous burst). Floors at 1 when a
  /// rate is configured.
  double BurstRequests = 8;
  /// Sustained fuel (interpreter steps) budget per tenant per second.
  /// 0 = unlimited. Post-charged; see the file comment.
  double FuelPerSec = 0;
  /// Fuel bucket depth. Floors at one second's refill when a rate is
  /// configured.
  double FuelBurst = 0;
  /// Concurrent requests per tenant. 0 = unlimited.
  uint32_t MaxInflight = 0;
  /// Concurrent payload bytes per tenant. 0 = unlimited.
  size_t MaxInflightBytes = 0;
};

class TenantQuota {
public:
  using Clock = std::chrono::steady_clock;

  enum class Verdict {
    Admitted,
    RateLimited,   ///< request bucket empty
    FuelExhausted, ///< fuel bucket in debt
    TooManyInflight,
    TooManyBytes,
  };

  explicit TenantQuota(TenantQuotaConfig Config = {}) : Config(Config) {}

  /// Admission check for \p Tenant with \p Bytes of payload, at \p Now
  /// (injectable for deterministic tests; pass Clock::now() in
  /// production). On Admitted, one request token and the inflight
  /// reservations are taken; every admit MUST be paired with complete().
  Verdict admit(const std::string &Tenant, size_t Bytes,
                Clock::time_point Now);

  /// Completes an admitted request: returns the inflight reservations
  /// and post-charges \p FuelUsed against the tenant's fuel budget.
  void complete(const std::string &Tenant, size_t Bytes, uint64_t FuelUsed);

  struct Snapshot {
    uint64_t Admitted = 0;
    uint64_t Rejects = 0; ///< all refusal reasons combined
    uint64_t RateRejects = 0;
    uint64_t FuelRejects = 0;
    uint64_t InflightRejects = 0; ///< request-count and byte caps
    uint64_t Tenants = 0;         ///< tenants tracked
  };
  Snapshot snapshot() const;

  /// True when any per-tenant limit is configured (the server skips the
  /// quota stage entirely otherwise).
  bool enabled() const {
    return Config.RequestsPerSec > 0 || Config.FuelPerSec > 0 ||
           Config.MaxInflight > 0 || Config.MaxInflightBytes > 0;
  }

private:
  struct Bucket {
    double RequestTokens = 0;
    double FuelTokens = 0;
    Clock::time_point LastRefill{};
    uint32_t Inflight = 0;
    size_t InflightBytes = 0;
    bool Seeded = false;
  };

  void refill(Bucket &B, Clock::time_point Now) const;

  TenantQuotaConfig Config;
  mutable std::mutex M;
  std::unordered_map<std::string, Bucket> Buckets;
  Snapshot S;
};

/// Stable reason string for a refusal ("quota:rate", ...); "admitted"
/// for Verdict::Admitted.
const char *tenantVerdictName(TenantQuota::Verdict V);

} // namespace grift::service

#endif // GRIFT_SERVICE_TENANTQUOTA_H
