//===----------------------------------------------------------------------===//
///
/// \file
/// Admission control for the server front end. Two global bounds decide
/// whether a request may enter the execution pipeline at all:
///
///   * MaxInflight — requests admitted but not yet completed. The
///     ExecService queue bound (ServiceConfig::MaxQueueDepth) sheds at
///     the queue; this bound sheds earlier, at the socket, before the
///     request's source is even copied into a JobSpec.
///   * MaxInflightBytes — the sum of admitted requests' payload bytes.
///     Queue-depth bounds alone do not stop one tenant from parking a
///     handful of giant programs in the queue and OOMing the process;
///     the byte budget does.
///
/// Shedding is deliberate and cheap: a refused request costs one mutex
/// acquisition and produces a structured ErrorKind::Overloaded response,
/// never an unbounded queue. Counters expose shed totals and high-water
/// marks so the load harness can assert boundedness.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_SERVICE_ADMISSION_H
#define GRIFT_SERVICE_ADMISSION_H

#include <cstddef>
#include <cstdint>
#include <mutex>

namespace grift::service {

struct AdmissionConfig {
  /// Admitted-but-unfinished requests across all connections. 0 =
  /// unbounded (not recommended for a server; the default serves a
  /// saturated pool about 4x deep).
  uint32_t MaxInflight = 256;
  /// Aggregate payload bytes of admitted requests. 0 = unbounded.
  size_t MaxInflightBytes = 64u << 20; // 64 MiB
};

/// Thread-safe inflight-request accountant. admit() and release() must
/// pair exactly; the RAII Ticket below makes that hard to get wrong.
class Admission {
public:
  enum class Verdict { Admitted, TooManyInflight, TooManyBytes };

  explicit Admission(AdmissionConfig Config = {}) : Config(Config) {}

  /// Tries to admit a request of \p Bytes payload. On refusal the
  /// matching shed counter is bumped and nothing is reserved.
  Verdict admit(size_t Bytes);

  /// Returns the reservation of a previously admitted request.
  void release(size_t Bytes);

  struct Snapshot {
    uint64_t Admitted = 0;
    uint64_t Sheds = 0;          ///< both refusal reasons combined
    uint64_t ShedsInflight = 0;  ///< refused: request count bound
    uint64_t ShedsBytes = 0;     ///< refused: byte budget bound
    uint32_t Inflight = 0;
    size_t InflightBytes = 0;
    uint32_t PeakInflight = 0;
    size_t PeakInflightBytes = 0;
  };
  Snapshot snapshot() const;

private:
  AdmissionConfig Config;
  mutable std::mutex M;
  Snapshot S;
};

/// RAII admission reservation: releases on destruction if admitted.
class AdmissionTicket {
public:
  AdmissionTicket(Admission &A, size_t Bytes)
      : A(A), Bytes(Bytes), V(A.admit(Bytes)) {}
  ~AdmissionTicket() {
    if (admitted())
      A.release(Bytes);
  }
  AdmissionTicket(const AdmissionTicket &) = delete;
  AdmissionTicket &operator=(const AdmissionTicket &) = delete;

  bool admitted() const { return V == Admission::Verdict::Admitted; }
  Admission::Verdict verdict() const { return V; }

private:
  Admission &A;
  size_t Bytes;
  Admission::Verdict V;
};

} // namespace grift::service

#endif // GRIFT_SERVICE_ADMISSION_H
