//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode interpreter. A stack machine whose calling convention is
/// proxy-aware: calling through a proxy closure converts the arguments,
/// records a pending result conversion on the frame, and proceeds with
/// the underlying closure (paper Section 3.2, "Applying Functions" —
/// proxy closures share the plain-closure convention; only the pointer
/// tag must be cleared).
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_VM_VM_H
#define GRIFT_VM_VM_H

#include "runtime/Limits.h"
#include "runtime/Runtime.h"
#include "vm/Bytecode.h"

#include <chrono>
#include <string>
#include <vector>

namespace grift {

/// The outcome of running a program.
struct RunResult {
  bool OK = false;
  std::string ResultText; ///< rendered final value (when OK)
  RuntimeError Error;     ///< when !OK
  std::string Output;     ///< everything the program printed
  RuntimeStats Stats;     ///< runtime statistics snapshot
  int64_t WallNanos = 0;  ///< total execution wall time
  size_t PeakHeapBytes = 0; ///< heap high-water mark (space efficiency)
  uint64_t Steps = 0;     ///< instructions dispatched (fuel consumed)
};

class VM final : public RootProvider {
public:
  VM(Runtime &RT, const VMProgram &Prog);
  ~VM() override;
  VM(const VM &) = delete;
  VM &operator=(const VM &) = delete;

  /// Runs the program to completion or until a budget in \p Limits is
  /// exhausted. \p Input feeds read-int/read-char. Never throws: every
  /// RuntimeError and allocation failure is surfaced through the result.
  RunResult run(std::string Input = "", const RunLimits &Limits = {});

  void visitRoots(void (*Visit)(Value &, void *), void *Ctx) override;

private:
  /// A pending result conversion recorded when calling through a proxy
  /// or a Dyn application site. C is used in coercion mode; S/T/L in
  /// type-based mode (and for runtime-typed Dyn results).
  struct RetCast {
    const Coercion *C = nullptr;
    const Type *S = nullptr;
    const Type *T = nullptr;
    const std::string *L = nullptr;
  };

  struct Frame {
    uint32_t Func = 0;
    uint32_t PC = 0;
    uint32_t Base = 0;       // stack index of local 0
    uint32_t CalleeSlot = 0; // stack index holding the callee value
    Value Clos;              // closure providing FreeGet slots
    std::vector<RetCast> RetCasts; // applied LIFO at Return
  };

  Runtime &RT;
  const VMProgram &Prog;
  /// Backend call-protocol predicates, sampled once at construction so
  /// the call paths branch on a bool instead of a virtual call:
  /// proxy closures carry coercions (all modes but type-based)...
  const bool CoercionCallProtocol;
  /// ...and pending return coercions are composed into one explicit
  /// per-frame coercion argument (coercion-passing style).
  const bool ComposeReturns;
  std::vector<Value> Stack;
  size_t Top = 0;
  std::vector<Frame> Frames;
  std::vector<Value> Globals;
  std::string Output;
  std::string Input;
  size_t InputPos = 0;
  std::vector<std::chrono::steady_clock::time_point> TimeStack;
  RunLimits Limits;
  size_t FrameCap = 0; ///< resolved from Limits (or the built-in cap)
  uint64_t StepsUsed = 0;
  std::chrono::steady_clock::time_point StartTime;
  /// Per-site inline caches: one per Cast instruction and one per Dyn
  /// elimination site, indexed by the instruction's cast/site table
  /// index. Reset at the start of every run.
  std::vector<CoercionCache> CastIC;
  std::vector<CoercionCache> SiteIC;

  Value execute();

  /// Called once per dispatch batch: charges the batch against the fuel
  /// budget and samples the wall clock. Throws FuelExhausted / Timeout.
  void checkBudgets(uint32_t BatchSteps);

  void push(Value V) {
    if (Top == Stack.size())
      growStack();
    Stack[Top++] = V;
  }
  Value pop() { return Stack[--Top]; }
  Value &peek(size_t FromTop = 0) { return Stack[Top - 1 - FromTop]; }
  void growStack();
  void ensureStack(size_t Extra);

  /// Unwraps function proxies at a call site: converts arguments in
  /// place, appends pending result conversions, and returns the plain
  /// closure. \p ArgsBase indexes the first argument on the stack.
  Value resolveCallee(Value Callee, uint32_t Argc, size_t ArgsBase,
                      std::vector<RetCast> &Pending);

  /// Coercion-passing style: folds \p RC into \p Casts as a single
  /// composed coercion entry (at most one per frame) instead of
  /// stacking it. Runtime-typed entries are converted to their interned
  /// coercion first so they compose.
  void appendRetCast(std::vector<RetCast> &Casts, const RetCast &RC);

  void doCall(uint32_t Argc, bool Tail, std::vector<RetCast> Pending);
  void doReturn();
  void doPrim(PrimOp Op);

  int64_t readIntFromInput();
  char readCharFromInput();

  [[noreturn]] void trap(std::string Message) { RT.trap(std::move(Message)); }
};

} // namespace grift

#endif // GRIFT_VM_VM_H
