#include "vm/VM.h"

#include "runtime/CastBackend.h"
#include "support/StringUtil.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <new>

using namespace grift;

namespace {
constexpr size_t InitialStack = 1u << 16;
constexpr size_t MaxStackEntries = 1u << 26; // 64M values ≈ 512 MB
constexpr size_t DefaultMaxFrames = 4u << 20;
/// Fuel/wall budgets are checked once per this many dispatched
/// instructions: cheap enough for the hot loop, tight enough that a
/// divergent program overshoots its budget by at most one batch.
constexpr uint32_t StepBatch = 1024;
} // namespace

VM::VM(Runtime &RT, const VMProgram &Prog)
    : RT(RT), Prog(Prog),
      CoercionCallProtocol(RT.backend().coercionCallProtocol()),
      ComposeReturns(RT.backend().composesPendingReturns()) {
  RT.heap().addRootProvider(this);
}

VM::~VM() { RT.heap().removeRootProvider(this); }

void VM::visitRoots(void (*Visit)(Value &, void *), void *Ctx) {
  for (size_t I = 0; I != Top; ++I)
    Visit(Stack[I], Ctx);
  for (Value &G : Globals)
    Visit(G, Ctx);
  for (Frame &F : Frames)
    Visit(F.Clos, Ctx);
}

void VM::growStack() {
  if (Stack.size() >= MaxStackEntries)
    throw RuntimeError{ErrorKind::StackOverflow, "",
                       "value stack exceeded " +
                           std::to_string(MaxStackEntries) + " slots"};
  Stack.resize(Stack.size() * 2);
}

void VM::ensureStack(size_t Extra) {
  while (Top + Extra > Stack.size())
    growStack();
}

RunResult VM::run(std::string In, const RunLimits &L) {
  RunResult Result;
  Stack.assign(InitialStack, Value::unit());
  Top = 0;
  Frames.clear();
  Globals.assign(Prog.GlobalNames.size(), Value::unit());
  Output.clear();
  Input = std::move(In);
  InputPos = 0;
  TimeStack.clear();
  RT.stats().reset();
  Limits = L;
  FrameCap = Limits.MaxFrames ? Limits.MaxFrames : DefaultMaxFrames;
  StepsUsed = 0;
  CastIC.assign(Prog.Casts.size(), CoercionCache());
  SiteIC.assign(Prog.Sites.size(), CoercionCache());
  RT.heap().setHeapLimit(Limits.MaxHeapBytes);
  RT.heap().setNurserySize(Limits.GCNurseryBytes);
  size_t RootDepthAtEntry = RT.heap().tempRootDepth();

  StartTime = std::chrono::steady_clock::now();
  auto Finish = [&] {
    Result.WallNanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - StartTime)
                           .count();
    Result.Stats = RT.stats();
    const Heap &H = RT.heap();
    Result.Stats.AllocBytes = H.bytesAllocated();
    for (unsigned C = 0; C != Heap::NumSizeClasses; ++C)
      Result.Stats.AllocObjectsByClass[C] = H.objectsAllocatedInClass(C);
    Result.Stats.AllocObjectsByClass[RuntimeStats::NumAllocClasses - 1] =
        H.largeObjectsAllocated();
    Result.Stats.Collections = H.collections();
    Result.Stats.GCPauseTotalNs = H.gcPauseTotalNs();
    Result.Stats.GCPauseMaxNs = H.gcPauseMaxNs();
    Result.Stats.MinorCollections = H.minorCollections();
    Result.Stats.GCMinorPauseTotalNs = H.gcMinorPauseTotalNs();
    Result.Stats.GCMinorPauseMaxNs = H.gcMinorPauseMaxNs();
    Result.Stats.PromotedBytes = H.promotedBytes();
    Result.Stats.PromotedObjects = H.promotedObjects();
    Result.Stats.RememberedSetPeak = H.rememberedSetPeak();
    static_assert(RuntimeStats::NumPauseBuckets == Heap::PauseHistBuckets,
                  "pause histogram layouts out of sync");
    for (unsigned B = 0; B != Heap::PauseHistBuckets; ++B) {
      Result.Stats.MinorPauseHist[B] = H.minorPauseHistogram()[B];
      Result.Stats.MajorPauseHist[B] = H.majorPauseHistogram()[B];
    }
    Result.Stats.DoubleCollectionsAvoided = H.doubleCollectionsAvoided();
    Result.PeakHeapBytes = RT.heap().peakHeapBytes();
    // Exact on normal completion (Halt charges its partial batch);
    // error paths keep batch granularity — the same rounding the
    // budget check itself uses.
    Result.Steps = StepsUsed;
  };
  try {
    Value Final = execute();
    Finish();
    // valueToString can allocate (proxy reads); keep the result value
    // rooted — and updated, should rendering trigger a moving minor GC.
    Rooted FinalRoot(RT.heap(), Final);
    Result.ResultText = RT.valueToString(FinalRoot.get());
    Result.OK = true;
  } catch (RuntimeError &Error) {
    Finish();
    Result.OK = false;
    Result.Error = std::move(Error);
  } catch (std::bad_alloc &) {
    // Allocation failure outside Heap::allocateObject (frame vector or
    // value-stack growth, string building, ...): degrade to a reportable
    // OutOfMemory rather than letting the exception escape run().
    Finish();
    Result.OK = false;
    Result.Error = {ErrorKind::OutOfMemory, "",
                    "allocator failed growing interpreter state"};
  }
  Result.Output = Output;
  // Every Rooted opened during execution unwound with it; a mismatch
  // here means a manual pushTempRoot leaked past the run boundary.
  assert(RT.heap().tempRootDepth() == RootDepthAtEntry &&
         "temp-root push/pop mismatch across run()");
  (void)RootDepthAtEntry;
  return Result;
}

void VM::checkBudgets(uint32_t BatchSteps) {
  StepsUsed += BatchSteps;
  // Preemptive cancellation piggybacks on the batch boundary: one relaxed
  // load per 1024 instructions, so an external watchdog can stop a wedged
  // job within microseconds of storing the token with no hot-path cost.
  if (Limits.Cancel && Limits.Cancel->load(std::memory_order_relaxed))
    throw RuntimeError{ErrorKind::Cancelled, "",
                       "run cancelled from outside (watchdog or shutdown)"};
  if (Limits.MaxSteps && StepsUsed >= Limits.MaxSteps)
    throw RuntimeError{ErrorKind::FuelExhausted, "",
                       "step budget of " + std::to_string(Limits.MaxSteps) +
                           " instructions exhausted"};
  if (Limits.MaxWallNanos) {
    int64_t Elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - StartTime)
                          .count();
    if (Elapsed > Limits.MaxWallNanos)
      throw RuntimeError{ErrorKind::Timeout, "",
                         "wall-clock budget of " +
                             std::to_string(Limits.MaxWallNanos) +
                             " ns exhausted"};
  }
}

//===----------------------------------------------------------------------===//
// Calls
//===----------------------------------------------------------------------===//

Value VM::resolveCallee(Value Callee, uint32_t Argc, size_t ArgsBase,
                        std::vector<RetCast> &Pending) {
  // The callee lives in the stack slot below the arguments; the walk
  // keeps it there so the proxy stays rooted — and is re-derived after
  // each conversion pass, which can allocate and therefore move a young
  // proxy. The metadata read up front is immortal (types, coercions,
  // labels) and safe to hold across the conversions.
  size_t CalleeIdx = ArgsBase - 1;
  Stack[CalleeIdx] = Callee;
  unsigned Depth = 0;
  while (Stack[CalleeIdx].isProxy()) {
    HeapObject *P = Stack[CalleeIdx].object();
    if (P->kind() != ObjectKind::ProxyClosure)
      trap("call of a non-function value");
    ++Depth;
    if (CoercionCallProtocol) {
      // Coercion-flavored proxy (every mode but type-based).
      const Coercion *C = static_cast<const Coercion *>(P->meta(0));
      assert(C->kind() == CoercionKind::Fun && C->arity() == Argc &&
             "proxy coercion arity mismatch");
      for (uint32_t I = 0; I != Argc; ++I)
        Stack[ArgsBase + I] = RT.applyCoercion(Stack[ArgsBase + I], C->arg(I));
      Pending.push_back({C->result(), nullptr, nullptr, nullptr});
    } else {
      const Type *S = static_cast<const Type *>(P->meta(0));
      const Type *T = static_cast<const Type *>(P->meta(1));
      const auto *L = static_cast<const std::string *>(P->meta(2));
      assert(S->isFunction() && T->isFunction() && T->arity() == Argc);
      for (uint32_t I = 0; I != Argc; ++I)
        Stack[ArgsBase + I] =
            RT.applyTypeBased(Stack[ArgsBase + I], T->param(I), S->param(I), L);
      Pending.push_back({nullptr, S->result(), T->result(), L});
    }
    P = Stack[CalleeIdx].object(); // re-derive: conversions may have moved it
    Stack[CalleeIdx] = P->slot(0);
  }
  if (Depth)
    RT.stats().noteChain(Depth);
  return Stack[CalleeIdx];
}

void VM::appendRetCast(std::vector<RetCast> &Casts, const RetCast &RC) {
  assert(ComposeReturns && "composed return casts are coercion-passing only");
  // Runtime-typed pending entries (AppDyn's result cast) become their
  // interned coercion so they can participate in composition; this is
  // the same coercion doReturn would have built lazily.
  const Coercion *New = RC.C ? RC.C : RT.internedCoercion(RC.S, RC.T, RC.L);
  if (!Casts.empty()) {
    // doReturn applies entries LIFO, so the existing top entry would run
    // after anything appended: fold to "apply New, then the old top".
    assert(Casts.back().C && "coercion-passing frame carried a typed cast");
    New = RT.composeForReturn(New, Casts.back().C);
    Casts.pop_back();
  }
  if (!New->isId())
    Casts.push_back({New, nullptr, nullptr, nullptr});
}

void VM::doCall(uint32_t Argc, bool Tail, std::vector<RetCast> Pending) {
  size_t ArgsBase = Top - Argc;
  size_t CalleeIdx = ArgsBase - 1;
  Value Callee = resolveCallee(Stack[CalleeIdx], Argc, ArgsBase, Pending);
  if (!Callee.isHeap() || Callee.object()->kind() != ObjectKind::Closure)
    trap("call of a non-function value");
  uint32_t FnIdx = static_cast<uint32_t>(Callee.object()->raw());
  const VMFunction &Target = Prog.Functions[FnIdx];
  if (Target.NumParams != Argc)
    trap("arity mismatch calling " + Target.Name + ": expected " +
         std::to_string(Target.NumParams) + " arguments, got " +
         std::to_string(Argc));
  Stack[CalleeIdx] = Callee;

  if (Tail) {
    Frame &Cur = Frames.back();
    // Slide callee + args down over the current frame's window.
    size_t Dst = Cur.CalleeSlot;
    for (uint32_t I = 0; I != Argc + 1; ++I)
      Stack[Dst + I] = Stack[CalleeIdx + I];
    Top = Dst + 1 + Argc;
    Cur.Func = FnIdx;
    Cur.PC = 0;
    Cur.Base = static_cast<uint32_t>(Dst + 1);
    Cur.Clos = Callee;
    // The space-efficiency fork: stacked, n proxied tail calls grow the
    // reused frame's pending list Θ(n); composed (coercion-passing
    // style), the frame keeps at most one entry.
    if (ComposeReturns)
      for (const RetCast &RC : Pending)
        appendRetCast(Cur.RetCasts, RC);
    else
      for (const RetCast &RC : Pending)
        Cur.RetCasts.push_back(RC);
    if (!Cur.RetCasts.empty())
      RT.stats().noteRetCasts(Cur.RetCasts.size());
  } else {
    if (Frames.size() >= FrameCap)
      throw RuntimeError{ErrorKind::StackOverflow, "",
                         "call depth exceeded " + std::to_string(FrameCap) +
                             " frames"};
    Frame NF;
    NF.Func = FnIdx;
    NF.PC = 0;
    NF.Base = static_cast<uint32_t>(ArgsBase);
    NF.CalleeSlot = static_cast<uint32_t>(CalleeIdx);
    NF.Clos = Callee;
    if (ComposeReturns)
      for (const RetCast &RC : Pending)
        appendRetCast(NF.RetCasts, RC);
    else
      NF.RetCasts = std::move(Pending);
    if (!NF.RetCasts.empty())
      RT.stats().noteRetCasts(NF.RetCasts.size());
    Frames.push_back(std::move(NF));
  }
  ensureStack(Target.NumLocals - Argc + 16);
  for (uint32_t I = Argc; I != Target.NumLocals; ++I)
    push(Value::unit());
}

void VM::doReturn() {
  Value Result = pop();
  Frame &Cur = Frames.back();
  for (size_t I = Cur.RetCasts.size(); I-- > 0;) {
    const RetCast &RC = Cur.RetCasts[I];
    Result = RC.C ? RT.applyCoercion(Result, RC.C)
                  : RT.castRuntime(Result, RC.S, RC.T, RC.L);
  }
  Top = Cur.CalleeSlot;
  Frames.pop_back();
  push(Result);
}

//===----------------------------------------------------------------------===//
// Main loop
//===----------------------------------------------------------------------===//

// Dispatch plumbing. VM_FETCH charges one step against the batch budget,
// re-acquires the frame pointer (frames may have been pushed/popped) and
// loads the next instruction. VM_FUSED_STEP is the identical mid-
// superinstruction charge: a fused pair decrements the batch counter
// twice, so fuel accounting and the 1024-step cancel-poll boundary land
// exactly where the unfused expansion would put them.
//
// With GRIFT_COMPUTED_GOTO (CMake feature check) each handler ends by
// jumping through a per-opcode label table — token-threaded dispatch,
// one indirect branch per handler so the predictor can learn opcode
// successor patterns. Otherwise the same handler bodies compile into a
// portable for(;;)/switch loop.
#define VM_FETCH()                                                             \
  do {                                                                         \
    if (--BatchLeft == 0) {                                                    \
      checkBudgets(StepBatch);                                                 \
      BatchLeft = StepBatch;                                                   \
    }                                                                          \
    FP = &Frames.back();                                                       \
    I = Prog.Functions[FP->Func].Code[FP->PC++];                               \
  } while (0)

#define VM_FUSED_STEP()                                                        \
  do {                                                                         \
    if (--BatchLeft == 0) {                                                    \
      checkBudgets(StepBatch);                                                 \
      BatchLeft = StepBatch;                                                   \
    }                                                                          \
  } while (0)

#ifdef GRIFT_COMPUTED_GOTO
#define VM_DISPATCH_BEGIN() VM_NEXT();
#define VM_CASE(Name) Lbl_##Name:
#define VM_NEXT()                                                              \
  do {                                                                         \
    VM_FETCH();                                                                \
    goto *JumpTable[static_cast<uint8_t>(I.Code)];                             \
  } while (0)
#define VM_DISPATCH_END()
#else
#define VM_DISPATCH_BEGIN()                                                    \
  for (;;) {                                                                   \
    VM_FETCH();                                                                \
    switch (I.Code) {
#define VM_CASE(Name) case Op::Name:
#define VM_NEXT() break
#define VM_DISPATCH_END()                                                      \
    }                                                                          \
  }
#endif

Value VM::execute() {
  Frame Main;
  Main.Func = Prog.MainFunction;
  Main.PC = 0;
  Main.Base = 0;
  Main.CalleeSlot = 0;
  Frames.push_back(Main);
  ensureStack(Prog.Functions[Main.Func].NumLocals + 16);
  for (uint32_t I = 0; I != Prog.Functions[Main.Func].NumLocals; ++I)
    push(Value::unit());

  uint32_t BatchLeft = StepBatch;
  Frame *FP = nullptr;
  Instr I;

#ifdef GRIFT_COMPUTED_GOTO
  // One entry per opcode, in exact enum order (checked by the
  // static_assert below — extend both together).
  static const void *const JumpTable[] = {
      &&Lbl_PushUnit,
      &&Lbl_PushTrue,
      &&Lbl_PushFalse,
      &&Lbl_PushInt,
      &&Lbl_PushIntBig,
      &&Lbl_PushChar,
      &&Lbl_PushFloat,
      &&Lbl_LocalGet,
      &&Lbl_LocalSet,
      &&Lbl_GlobalGet,
      &&Lbl_GlobalSet,
      &&Lbl_FreeGet,
      &&Lbl_Pop,
      &&Lbl_Jump,
      &&Lbl_JumpIfFalse,
      &&Lbl_Call,
      &&Lbl_TailCall,
      &&Lbl_Return,
      &&Lbl_Halt,
      &&Lbl_MakeClosure,
      &&Lbl_ClosureInitFree,
      &&Lbl_Cast,
      &&Lbl_Prim,
      &&Lbl_MakeTuple,
      &&Lbl_TupleProj,
      &&Lbl_TupleProjDyn,
      &&Lbl_BoxNew,
      &&Lbl_BoxNewMono,
      &&Lbl_BoxGet,
      &&Lbl_BoxGetFast,
      &&Lbl_BoxGetMono,
      &&Lbl_BoxSet,
      &&Lbl_BoxSetFast,
      &&Lbl_BoxSetMono,
      &&Lbl_UnboxDyn,
      &&Lbl_BoxSetDyn,
      &&Lbl_MakeVector,
      &&Lbl_MakeVectorMono,
      &&Lbl_VecRef,
      &&Lbl_VecRefFast,
      &&Lbl_VecRefMono,
      &&Lbl_VecRefDyn,
      &&Lbl_VecSet,
      &&Lbl_VecSetFast,
      &&Lbl_VecSetMono,
      &&Lbl_VecSetDyn,
      &&Lbl_VecLen,
      &&Lbl_VecLenFast,
      &&Lbl_VecLenDyn,
      &&Lbl_AppDyn,
      &&Lbl_TimeStart,
      &&Lbl_TimeEnd,
      &&Lbl_LocalGetGet,
      &&Lbl_LocalGetCall,
      &&Lbl_LocalGetTailCall,
      &&Lbl_PushIntPrim,
      &&Lbl_PrimJumpIfFalse,
      &&Lbl_PushFloatPrim,
  };
  static_assert(sizeof(JumpTable) / sizeof(JumpTable[0]) == NumOpcodes,
                "jump table out of sync with enum Op");
#endif

  VM_DISPATCH_BEGIN()
  VM_CASE(PushUnit) {
    push(Value::unit());
    VM_NEXT();
  }
  VM_CASE(PushTrue) {
    push(Value::fromBool(true));
    VM_NEXT();
  }
  VM_CASE(PushFalse) {
    push(Value::fromBool(false));
    VM_NEXT();
  }
  VM_CASE(PushInt) {
    push(Value::fromFixnum(I.A));
    VM_NEXT();
  }
  VM_CASE(PushIntBig) {
    push(Value::fromFixnum(Prog.IntPool[I.A]));
    VM_NEXT();
  }
  VM_CASE(PushChar) {
    push(Value::fromChar(static_cast<char>(I.A)));
    VM_NEXT();
  }
  VM_CASE(PushFloat) {
    // NaN-boxed: a float literal is one stack store, no allocation.
    push(Value::fromFloat(Prog.FloatPool[I.A]));
    VM_NEXT();
  }
  VM_CASE(LocalGet) {
    push(Stack[FP->Base + I.A]);
    VM_NEXT();
  }
  VM_CASE(LocalSet) {
    Stack[FP->Base + I.A] = pop();
    VM_NEXT();
  }
  VM_CASE(GlobalGet) {
    push(Globals[I.A]);
    VM_NEXT();
  }
  VM_CASE(GlobalSet) {
    Globals[I.A] = pop();
    VM_NEXT();
  }
  VM_CASE(FreeGet) {
    push(FP->Clos.object()->slot(I.A));
    VM_NEXT();
  }
  VM_CASE(Pop) {
    --Top;
    VM_NEXT();
  }
  VM_CASE(Jump) {
    FP->PC = static_cast<uint32_t>(I.A);
    VM_NEXT();
  }
  VM_CASE(JumpIfFalse) {
    Value Cond = pop();
    assert(Cond.isBool() && "condition must be a boolean");
    if (!Cond.asBool())
      FP->PC = static_cast<uint32_t>(I.A);
    VM_NEXT();
  }
  VM_CASE(Call) {
    doCall(static_cast<uint32_t>(I.A), /*Tail=*/false, {});
    VM_NEXT();
  }
  VM_CASE(TailCall) {
    doCall(static_cast<uint32_t>(I.A), /*Tail=*/true, {});
    VM_NEXT();
  }
  VM_CASE(Return) {
    doReturn();
    VM_NEXT();
  }
  VM_CASE(Halt) {
    // Charge the partial batch so RunResult::Steps is exact on normal
    // completion (error paths keep the batch-granular rounding).
    StepsUsed += StepBatch - BatchLeft;
    return pop();
  }
  VM_CASE(MakeClosure) {
    uint32_t NumFree = static_cast<uint32_t>(I.B);
    Value Clos = RT.heap().allocClosure(static_cast<uint32_t>(I.A), NumFree);
    HeapObject *Object = Clos.object();
    for (uint32_t J = 0; J != NumFree; ++J)
      Object->slot(J) = Stack[Top - NumFree + J];
    Top -= NumFree;
    push(Clos);
    VM_NEXT();
  }
  VM_CASE(ClosureInitFree) {
    Value V = Stack[Top - 1];
    Value Clos = Stack[Top - 2];
    // Letrec backpatch: reach the underlying closure through any cast
    // wrappers (DynBox from an injection, proxy from a function cast).
    HeapObject *Object = Clos.object();
    while (Object->kind() == ObjectKind::DynBox ||
           Object->kind() == ObjectKind::ProxyClosure)
      Object = Object->slot(0).object();
    assert(Object->kind() == ObjectKind::Closure &&
           "letrec initializer did not produce a closure");
    Object->slot(static_cast<uint32_t>(I.A)) = V;
    RT.heap().recordWrite(Object, V); // backpatch can cross generations
    Top -= 2;
    VM_NEXT();
  }
  VM_CASE(Cast) {
    Value V = Stack[Top - 1];
    Stack[Top - 1] = RT.applyCast(V, Prog.Casts[I.A], &CastIC[I.A]);
    VM_NEXT();
  }
  VM_CASE(Prim) {
    doPrim(static_cast<PrimOp>(I.A));
    VM_NEXT();
  }
  VM_CASE(MakeTuple) {
    uint32_t Size = static_cast<uint32_t>(I.A);
    Value Tup = RT.heap().allocTuple(Size);
    HeapObject *Object = Tup.object();
    for (uint32_t J = 0; J != Size; ++J)
      Object->slot(J) = Stack[Top - Size + J];
    Top -= Size;
    push(Tup);
    VM_NEXT();
  }
  VM_CASE(TupleProj) {
    Value V = Stack[Top - 1];
    assert(V.isHeap() && V.object()->kind() == ObjectKind::Tuple);
    Stack[Top - 1] = V.object()->slot(static_cast<uint32_t>(I.A));
    VM_NEXT();
  }
  VM_CASE(TupleProjDyn) {
    const DynSite &Site = Prog.Sites[I.B];
    Value V = Stack[Top - 1];
    const Type *T = RT.runtimeTypeOf(V);
    if (T->isRec())
      T = RT.typeContext().unfold(T);
    uint32_t Index = static_cast<uint32_t>(I.A);
    if (!T->isTuple() || Index >= T->tupleSize())
      RT.blame(Site.Label, "tuple projection from a value of type " +
                               T->str());
    Value Tup = RT.dynUnwrap(V);
    Value Element = Tup.object()->slot(Index);
    Stack[Top - 1] = RT.castRuntime(Element, T->element(Index),
                                    RT.typeContext().dyn(), Site.Label,
                                    &SiteIC[I.B]);
    VM_NEXT();
  }
  VM_CASE(BoxNew) {
    Value V = Stack[Top - 1];
    Stack[Top - 1] = RT.heap().allocBox(V);
    VM_NEXT();
  }
  VM_CASE(BoxNewMono) {
    Value V = Stack[Top - 1];
    Value Box = RT.heap().allocBox(V);
    Box.object()->setMeta(0, Prog.TypePool[I.A]);
    Stack[Top - 1] = Box;
    VM_NEXT();
  }
  VM_CASE(BoxGetMono) {
    Stack[Top - 1] = RT.monoBoxRead(Stack[Top - 1], Prog.TypePool[I.A],
                                    Prog.Sites[I.B].Label);
    VM_NEXT();
  }
  VM_CASE(BoxSetMono) {
    RT.monoBoxWrite(Stack[Top - 2], Stack[Top - 1], Prog.TypePool[I.A],
                    Prog.Sites[I.B].Label);
    Top -= 2;
    push(Value::unit());
    VM_NEXT();
  }
  VM_CASE(BoxGetFast) {
    Value V = Stack[Top - 1];
    assert(V.isHeap() && V.object()->kind() == ObjectKind::Box);
    Stack[Top - 1] = V.object()->slot(0);
    VM_NEXT();
  }
  VM_CASE(BoxGet) {
    Stack[Top - 1] = RT.boxRead(Stack[Top - 1]);
    VM_NEXT();
  }
  VM_CASE(BoxSetFast) {
    Value V = Stack[Top - 1];
    Value Box = Stack[Top - 2];
    assert(Box.isHeap() && Box.object()->kind() == ObjectKind::Box);
    Box.object()->slot(0) = V;
    RT.heap().recordWrite(Box, V); // write barrier: old box, young value
    Top -= 2;
    push(Value::unit());
    VM_NEXT();
  }
  VM_CASE(BoxSet) {
    RT.boxWrite(Stack[Top - 2], Stack[Top - 1]);
    Top -= 2;
    push(Value::unit());
    VM_NEXT();
  }
  VM_CASE(UnboxDyn) {
    const DynSite &Site = Prog.Sites[I.A];
    Value V = Stack[Top - 1];
    const Type *T = RT.runtimeTypeOf(V);
    if (T->isRec())
      T = RT.typeContext().unfold(T);
    if (!T->isBox())
      RT.blame(Site.Label, "unbox of a value of type " + T->str());
    Value Inner = RT.dynUnwrap(V);
    Stack[Top - 1] = Inner; // keep rooted during the read + cast
    Stack[Top - 1] = RT.backend().dynBoxRead(Inner, T->inner(), Site.Label,
                                             &SiteIC[I.A]);
    VM_NEXT();
  }
  VM_CASE(BoxSetDyn) {
    const DynSite &Site = Prog.Sites[I.A];
    Value V = Stack[Top - 2];
    Value Content = Stack[Top - 1];
    const Type *T = RT.runtimeTypeOf(V);
    if (T->isRec())
      T = RT.typeContext().unfold(T);
    if (!T->isBox())
      RT.blame(Site.Label, "box-set! of a value of type " + T->str());
    Value Inner = RT.dynUnwrap(V);
    Stack[Top - 2] = Inner;
    RT.backend().dynBoxWrite(Inner, Content, T->inner(), Site.Label,
                             &SiteIC[I.A]);
    Top -= 2;
    push(Value::unit());
    VM_NEXT();
  }
  VM_CASE(MakeVector) {
    Value Init = Stack[Top - 1];
    Value Size = Stack[Top - 2];
    assert(Size.isFixnum() && "vector size must be an integer");
    int64_t N = Size.asFixnum();
    if (N < 0 || N > (INT64_C(1) << 32))
      trap("invalid vector size " + std::to_string(N));
    Value Vect = RT.heap().allocVector(static_cast<uint32_t>(N), Init);
    Top -= 2;
    push(Vect);
    VM_NEXT();
  }
  VM_CASE(MakeVectorMono) {
    Value Init = Stack[Top - 1];
    Value Size = Stack[Top - 2];
    int64_t N = Size.asFixnum();
    if (N < 0 || N > (INT64_C(1) << 32))
      trap("invalid vector size " + std::to_string(N));
    Value Vect = RT.heap().allocVector(static_cast<uint32_t>(N), Init);
    Vect.object()->setMeta(0, Prog.TypePool[I.A]);
    Top -= 2;
    push(Vect);
    VM_NEXT();
  }
  VM_CASE(VecRefMono) {
    Value Result =
        RT.monoVectorRef(Stack[Top - 2], Stack[Top - 1].asFixnum(),
                         Prog.TypePool[I.A], Prog.Sites[I.B].Label);
    Top -= 2;
    push(Result);
    VM_NEXT();
  }
  VM_CASE(VecSetMono) {
    RT.monoVectorSet(Stack[Top - 3], Stack[Top - 2].asFixnum(),
                     Stack[Top - 1], Prog.TypePool[I.A],
                     Prog.Sites[I.B].Label);
    Top -= 3;
    push(Value::unit());
    VM_NEXT();
  }
  VM_CASE(VecRefFast) {
    Value Index = Stack[Top - 1];
    Value Vect = Stack[Top - 2];
    HeapObject *Object = Vect.object();
    int64_t Idx = Index.asFixnum();
    if (Idx < 0 || Idx >= Object->slotCount())
      trap("vector index " + std::to_string(Idx) + " out of bounds");
    Top -= 2;
    push(Object->slot(static_cast<uint32_t>(Idx)));
    VM_NEXT();
  }
  VM_CASE(VecRef) {
    Value Result = RT.vectorRef(Stack[Top - 2], Stack[Top - 1].asFixnum());
    Top -= 2;
    push(Result);
    VM_NEXT();
  }
  VM_CASE(VecRefDyn) {
    const DynSite &Site = Prog.Sites[I.A];
    Value V = Stack[Top - 2];
    const Type *T = RT.runtimeTypeOf(V);
    if (T->isRec())
      T = RT.typeContext().unfold(T);
    if (!T->isVect())
      RT.blame(Site.Label, "vector-ref of a value of type " + T->str());
    Value Inner = RT.dynUnwrap(V);
    Stack[Top - 2] = Inner;
    Value Result = RT.backend().dynVectorRef(Inner, Stack[Top - 1].asFixnum(),
                                             T->inner(), Site.Label,
                                             &SiteIC[I.A]);
    Top -= 2;
    push(Result);
    VM_NEXT();
  }
  VM_CASE(VecSetFast) {
    Value Content = Stack[Top - 1];
    Value Index = Stack[Top - 2];
    Value Vect = Stack[Top - 3];
    HeapObject *Object = Vect.object();
    int64_t Idx = Index.asFixnum();
    if (Idx < 0 || Idx >= Object->slotCount())
      trap("vector index " + std::to_string(Idx) + " out of bounds");
    Object->slot(static_cast<uint32_t>(Idx)) = Content;
    RT.heap().recordWrite(Object, Content); // old vector, young element
    Top -= 3;
    push(Value::unit());
    VM_NEXT();
  }
  VM_CASE(VecSet) {
    RT.vectorSet(Stack[Top - 3], Stack[Top - 2].asFixnum(),
                 Stack[Top - 1]);
    Top -= 3;
    push(Value::unit());
    VM_NEXT();
  }
  VM_CASE(VecSetDyn) {
    const DynSite &Site = Prog.Sites[I.A];
    Value V = Stack[Top - 3];
    const Type *T = RT.runtimeTypeOf(V);
    if (T->isRec())
      T = RT.typeContext().unfold(T);
    if (!T->isVect())
      RT.blame(Site.Label, "vector-set! of a value of type " + T->str());
    Value Inner = RT.dynUnwrap(V);
    Stack[Top - 3] = Inner;
    RT.backend().dynVectorSet(Inner, Stack[Top - 2].asFixnum(),
                              Stack[Top - 1], T->inner(), Site.Label,
                              &SiteIC[I.A]);
    Top -= 3;
    push(Value::unit());
    VM_NEXT();
  }
  VM_CASE(VecLenFast) {
    Value Vect = Stack[Top - 1];
    Stack[Top - 1] = Value::fromFixnum(Vect.object()->slotCount());
    VM_NEXT();
  }
  VM_CASE(VecLen) {
    Stack[Top - 1] = Value::fromFixnum(RT.vectorLength(Stack[Top - 1]));
    VM_NEXT();
  }
  VM_CASE(VecLenDyn) {
    const DynSite &Site = Prog.Sites[I.A];
    Value V = Stack[Top - 1];
    const Type *T = RT.runtimeTypeOf(V);
    if (T->isRec())
      T = RT.typeContext().unfold(T);
    if (!T->isVect())
      RT.blame(Site.Label, "vector-length of a value of type " + T->str());
    Stack[Top - 1] = Value::fromFixnum(RT.vectorLength(RT.dynUnwrap(V)));
    VM_NEXT();
  }
  VM_CASE(AppDyn) {
    uint32_t Argc = static_cast<uint32_t>(I.A);
    const DynSite &Site = Prog.Sites[I.B];
    size_t CalleeIdx = Top - Argc - 1;
    Value Dv = Stack[CalleeIdx];
    const Type *FT = RT.runtimeTypeOf(Dv);
    if (FT->isRec())
      FT = RT.typeContext().unfold(FT);
    if (!FT->isFunction())
      RT.blame(Site.Label, "application of a value of type " + FT->str());
    if (FT->arity() != Argc)
      RT.blame(Site.Label,
               "arity mismatch: function expects " +
                   std::to_string(FT->arity()) + " arguments, got " +
                   std::to_string(Argc));
    Stack[CalleeIdx] = RT.dynUnwrap(Dv);
    const Type *Dyn = RT.typeContext().dyn();
    for (uint32_t J = 0; J != Argc; ++J)
      Stack[CalleeIdx + 1 + J] =
          RT.castRuntime(Stack[CalleeIdx + 1 + J], Dyn, FT->param(J),
                         Site.Label, &SiteIC[I.B]);
    std::vector<RetCast> Pending;
    Pending.push_back({nullptr, FT->result(), Dyn, Site.Label});
    doCall(Argc, /*Tail=*/false, std::move(Pending));
    VM_NEXT();
  }
  VM_CASE(TimeStart) {
    TimeStack.push_back(std::chrono::steady_clock::now());
    VM_NEXT();
  }
  VM_CASE(TimeEnd) {
    auto End = std::chrono::steady_clock::now();
    RT.stats().TimedNanos =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            End - TimeStack.back())
            .count();
    TimeStack.pop_back();
    VM_NEXT();
  }

  // Superinstructions. Each fuses an adjacent pair; the pair's second
  // instruction is still in the slot after this one (a placeholder the
  // compiler left in place so jump targets stay valid) and is skipped
  // with ++FP->PC. The skip happens BEFORE any call that may push a
  // frame: doCall can reallocate the Frames vector, which would
  // invalidate FP.
  VM_CASE(LocalGetGet) {
    push(Stack[FP->Base + I.A]);
    VM_FUSED_STEP();
    ++FP->PC;
    push(Stack[FP->Base + I.B]);
    VM_NEXT();
  }
  VM_CASE(LocalGetCall) {
    push(Stack[FP->Base + I.A]);
    VM_FUSED_STEP();
    ++FP->PC;
    doCall(static_cast<uint32_t>(I.B), /*Tail=*/false, {});
    VM_NEXT();
  }
  VM_CASE(LocalGetTailCall) {
    push(Stack[FP->Base + I.A]);
    VM_FUSED_STEP();
    ++FP->PC;
    doCall(static_cast<uint32_t>(I.B), /*Tail=*/true, {});
    VM_NEXT();
  }
  VM_CASE(PushIntPrim) {
    push(Value::fromFixnum(I.A));
    VM_FUSED_STEP();
    ++FP->PC;
    doPrim(static_cast<PrimOp>(I.B));
    VM_NEXT();
  }
  VM_CASE(PrimJumpIfFalse) {
    doPrim(static_cast<PrimOp>(I.A));
    VM_FUSED_STEP();
    Value Cond = pop();
    assert(Cond.isBool() && "condition must be a boolean");
    if (!Cond.asBool())
      FP->PC = static_cast<uint32_t>(I.B);
    else
      ++FP->PC; // over the placeholder JumpIfFalse
    VM_NEXT();
  }
  VM_CASE(PushFloatPrim) {
    push(Value::fromFloat(Prog.FloatPool[I.A]));
    VM_FUSED_STEP();
    ++FP->PC;
    doPrim(static_cast<PrimOp>(I.B));
    VM_NEXT();
  }
  VM_DISPATCH_END()
}

#undef VM_FETCH
#undef VM_FUSED_STEP
#undef VM_DISPATCH_BEGIN
#undef VM_CASE
#undef VM_NEXT
#undef VM_DISPATCH_END

//===----------------------------------------------------------------------===//
// Primitives
//===----------------------------------------------------------------------===//

void VM::doPrim(PrimOp Op) {
  auto popInt = [&]() {
    Value V = pop();
    assert(V.isFixnum() && "integer primitive on non-integer");
    return V.asFixnum();
  };
  auto popFloat = [&]() {
    Value V = pop();
    assert(V.isFloat() && "float primitive on non-float");
    return V.asFloat();
  };
  auto pushInt = [&](int64_t I) { push(Value::fromFixnum(I)); };
  auto pushF = [&](double D) { push(Value::fromFloat(D)); };
  auto pushBool = [&](bool B) { push(Value::fromBool(B)); };

  switch (Op) {
  case PrimOp::AddI: {
    int64_t B = popInt(), A = popInt();
    pushInt(A + B);
    return;
  }
  case PrimOp::SubI: {
    int64_t B = popInt(), A = popInt();
    pushInt(A - B);
    return;
  }
  case PrimOp::MulI: {
    int64_t B = popInt(), A = popInt();
    pushInt(A * B);
    return;
  }
  case PrimOp::DivI: {
    int64_t B = popInt(), A = popInt();
    if (B == 0)
      trap("integer division by zero");
    pushInt(A / B);
    return;
  }
  case PrimOp::ModI: {
    int64_t B = popInt(), A = popInt();
    if (B == 0)
      trap("integer modulo by zero");
    pushInt(A % B);
    return;
  }
  case PrimOp::LtI: {
    int64_t B = popInt(), A = popInt();
    pushBool(A < B);
    return;
  }
  case PrimOp::LeI: {
    int64_t B = popInt(), A = popInt();
    pushBool(A <= B);
    return;
  }
  case PrimOp::EqI: {
    int64_t B = popInt(), A = popInt();
    pushBool(A == B);
    return;
  }
  case PrimOp::GeI: {
    int64_t B = popInt(), A = popInt();
    pushBool(A >= B);
    return;
  }
  case PrimOp::GtI: {
    int64_t B = popInt(), A = popInt();
    pushBool(A > B);
    return;
  }
  case PrimOp::AddF: {
    double B = popFloat(), A = popFloat();
    pushF(A + B);
    return;
  }
  case PrimOp::SubF: {
    double B = popFloat(), A = popFloat();
    pushF(A - B);
    return;
  }
  case PrimOp::MulF: {
    double B = popFloat(), A = popFloat();
    pushF(A * B);
    return;
  }
  case PrimOp::DivF: {
    double B = popFloat(), A = popFloat();
    pushF(A / B);
    return;
  }
  case PrimOp::ModF: {
    double B = popFloat(), A = popFloat();
    pushF(std::fmod(A, B));
    return;
  }
  case PrimOp::ExptF: {
    double B = popFloat(), A = popFloat();
    pushF(std::pow(A, B));
    return;
  }
  case PrimOp::Atan2F: {
    double B = popFloat(), A = popFloat();
    pushF(std::atan2(A, B));
    return;
  }
  case PrimOp::MinF: {
    double B = popFloat(), A = popFloat();
    pushF(std::fmin(A, B));
    return;
  }
  case PrimOp::MaxF: {
    double B = popFloat(), A = popFloat();
    pushF(std::fmax(A, B));
    return;
  }
  case PrimOp::LtF: {
    double B = popFloat(), A = popFloat();
    pushBool(A < B);
    return;
  }
  case PrimOp::LeF: {
    double B = popFloat(), A = popFloat();
    pushBool(A <= B);
    return;
  }
  case PrimOp::EqF: {
    double B = popFloat(), A = popFloat();
    pushBool(A == B);
    return;
  }
  case PrimOp::GeF: {
    double B = popFloat(), A = popFloat();
    pushBool(A >= B);
    return;
  }
  case PrimOp::GtF: {
    double B = popFloat(), A = popFloat();
    pushBool(A > B);
    return;
  }
  case PrimOp::NegF:
    pushF(-popFloat());
    return;
  case PrimOp::AbsF:
    pushF(std::fabs(popFloat()));
    return;
  case PrimOp::SqrtF:
    pushF(std::sqrt(popFloat()));
    return;
  case PrimOp::SinF:
    pushF(std::sin(popFloat()));
    return;
  case PrimOp::CosF:
    pushF(std::cos(popFloat()));
    return;
  case PrimOp::TanF:
    pushF(std::tan(popFloat()));
    return;
  case PrimOp::AsinF:
    pushF(std::asin(popFloat()));
    return;
  case PrimOp::AcosF:
    pushF(std::acos(popFloat()));
    return;
  case PrimOp::AtanF:
    pushF(std::atan(popFloat()));
    return;
  case PrimOp::ExpF:
    pushF(std::exp(popFloat()));
    return;
  case PrimOp::LogF:
    pushF(std::log(popFloat()));
    return;
  case PrimOp::FloorF:
    pushF(std::floor(popFloat()));
    return;
  case PrimOp::CeilingF:
    pushF(std::ceil(popFloat()));
    return;
  case PrimOp::RoundF:
    pushF(std::nearbyint(popFloat()));
    return;
  case PrimOp::IntToFloat:
    pushF(static_cast<double>(popInt()));
    return;
  case PrimOp::FloatToInt:
    pushInt(static_cast<int64_t>(popFloat()));
    return;
  case PrimOp::IntToChar:
    push(Value::fromChar(static_cast<char>(popInt())));
    return;
  case PrimOp::CharToInt: {
    Value V = pop();
    pushInt(static_cast<unsigned char>(V.asChar()));
    return;
  }
  case PrimOp::Not: {
    Value V = pop();
    pushBool(!V.asBool());
    return;
  }
  case PrimOp::PrintInt:
    Output += std::to_string(popInt());
    push(Value::unit());
    return;
  case PrimOp::PrintFloat:
    Output += formatDouble(popFloat());
    push(Value::unit());
    return;
  case PrimOp::PrintChar:
    Output += pop().asChar();
    push(Value::unit());
    return;
  case PrimOp::PrintBool:
    Output += pop().asBool() ? "#t" : "#f";
    push(Value::unit());
    return;
  case PrimOp::ReadInt:
    pushInt(readIntFromInput());
    return;
  case PrimOp::ReadChar:
    push(Value::fromChar(readCharFromInput()));
    return;
  }
  trap("unknown primitive");
}

int64_t VM::readIntFromInput() {
  while (InputPos < Input.size() &&
         std::isspace(static_cast<unsigned char>(Input[InputPos])))
    ++InputPos;
  size_t Start = InputPos;
  if (InputPos < Input.size() &&
      (Input[InputPos] == '-' || Input[InputPos] == '+'))
    ++InputPos;
  while (InputPos < Input.size() &&
         std::isdigit(static_cast<unsigned char>(Input[InputPos])))
    ++InputPos;
  int64_t Out = 0;
  if (!parseInt64(std::string_view(Input).substr(Start, InputPos - Start),
                  Out))
    trap("read-int: no integer available on input");
  return Out;
}

char VM::readCharFromInput() {
  if (InputPos >= Input.size())
    trap("read-char: end of input");
  return Input[InputPos++];
}
