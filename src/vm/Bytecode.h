//===----------------------------------------------------------------------===//
///
/// \file
/// Bytecode for the Grift VM: a stack machine with flat closures,
/// proxy-aware calls, and explicit cast instructions. The compiler
/// (vm/Compiler.h) lowers core IR to this form after closure conversion.
///
/// Cast sites reference the program's cast table (CastDescriptor); in
/// coercion mode the table entries carry coercions allocated once at
/// program load, mirroring the paper's "coercions that are statically
/// known are allocated once at the start of the program".
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_VM_BYTECODE_H
#define GRIFT_VM_BYTECODE_H

#include "ast/Prim.h"
#include "runtime/Runtime.h"

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace grift {

enum class Op : uint8_t {
  // Constants.
  PushUnit,  ///< push ()
  PushTrue,  ///< push #t
  PushFalse, ///< push #f
  PushInt,   ///< push fixnum; A = signed 32-bit immediate
  PushIntBig,///< push fixnum; A = index into IntPool
  PushChar,  ///< push char; A = code point
  PushFloat, ///< push immediate (NaN-boxed) float; A = index into FloatPool

  // Variables. Locals are frame slots; free variables live in the
  // current closure; globals are program-wide.
  LocalGet,  ///< A = slot
  LocalSet,  ///< A = slot; pops
  GlobalGet, ///< A = global index
  GlobalSet, ///< A = global index; pops
  FreeGet,   ///< A = free-variable index of the current closure

  Pop, ///< drop the top of stack

  // Control flow. Jump targets are absolute instruction indices within
  // the current function.
  Jump,        ///< A = target
  JumpIfFalse, ///< A = target; pops condition
  Call,        ///< A = argc; stack: [callee, args...]
  TailCall,    ///< A = argc; reuses the current frame when possible
  Return,      ///< pops result, applies pending return casts
  Halt,        ///< stop; top of stack is the program result

  // Closures.
  MakeClosure,     ///< A = function index, B = capture count; pops captures
  ClosureInitFree, ///< A = free slot; stack: [closure, value]; pops value
                   ///< (letrec backpatching)

  // Casts.
  Cast, ///< A = cast-table index

  // Primitives.
  Prim, ///< A = PrimOp

  // Tuples.
  MakeTuple,    ///< A = size; pops elements
  TupleProj,    ///< A = element index
  TupleProjDyn, ///< A = element index, B = site index (blame label)

  // Boxes. *Checked ops branch on the proxy bit; *Fast ops are emitted
  // by Static Grift (and by monotonic mode at fully static views) where
  // proxies cannot exist; *Mono ops convert between the cell's runtime
  // type and the static view type (A = TypePool index, B = site index).
  BoxNew,
  BoxNewMono, ///< A = TypePool index of the element type (cell RTTI)
  BoxGet,
  BoxGetFast,
  BoxGetMono,
  BoxSet,
  BoxSetFast,
  BoxSetMono,
  UnboxDyn, ///< A = site index
  BoxSetDyn,///< A = site index

  // Vectors.
  MakeVector,
  MakeVectorMono, ///< A = TypePool index of the element type
  VecRef,
  VecRefFast,
  VecRefMono,
  VecRefDyn, ///< A = site index
  VecSet,
  VecSetFast,
  VecSetMono,
  VecSetDyn, ///< A = site index
  VecLen,
  VecLenFast,
  VecLenDyn, ///< A = site index

  // Application of a Dyn value (the Section 3 no-proxy specialization).
  AppDyn, ///< A = argc, B = site index

  // (time E) support.
  TimeStart,
  TimeEnd,

  // Fused superinstructions (peephole pass in the bytecode compiler,
  // see fuseFunction in vm/Compiler.cpp). Each one replaces the FIRST
  // instruction of an adjacent pair; the second instruction stays in its
  // slot as a never-executed placeholder (the handler skips it with
  // ++PC), so jump targets never need remapping. Handlers charge fuel
  // for both component steps so batch/cancel-poll boundaries land
  // exactly where the unfused expansion would put them.
  LocalGetGet,      ///< A, B = slots; push local A, then local B
  LocalGetCall,     ///< A = slot, B = argc; push local A, then call
  LocalGetTailCall, ///< A = slot, B = argc; push local A, then tail call
  PushIntPrim,      ///< A = signed immediate, B = PrimOp
  PrimJumpIfFalse,  ///< A = PrimOp (bool-valued), B = jump target
  PushFloatPrim,    ///< A = FloatPool index, B = PrimOp
};

/// First fused opcode; everything from here on is a superinstruction.
constexpr uint8_t FirstFusedOp = static_cast<uint8_t>(Op::LocalGetGet);

/// Number of opcodes (computed-goto jump tables are sized against this).
constexpr size_t NumOpcodes = static_cast<size_t>(Op::PushFloatPrim) + 1;

/// One fixed-width instruction.
struct Instr {
  Op Code = Op::Halt;
  int32_t A = 0;
  int32_t B = 0;
};

/// A compiled function.
struct VMFunction {
  std::string Name;
  uint32_t NumParams = 0;
  uint32_t NumLocals = 0; // including parameters
  std::vector<Instr> Code;
};

/// A Dyn elimination site: the blame label plus the expected arity for
/// AppDyn (0 for the other forms).
struct DynSite {
  const std::string *Label = nullptr;
};

/// A whole compiled program.
struct VMProgram {
  /// Deque: the compiler keeps references to functions while creating
  /// nested lambdas, so element addresses must be stable.
  std::deque<VMFunction> Functions;
  std::vector<CastDescriptor> Casts;
  std::vector<DynSite> Sites;
  std::vector<const Type *> TypePool; ///< monotonic cell/view types
  std::vector<double> FloatPool;
  std::vector<int64_t> IntPool;
  std::vector<std::string> GlobalNames;
  uint32_t MainFunction = 0;
  CastMode Mode = CastMode::Coercions;

  /// Disassembles the program (debugging, golden tests).
  std::string str() const;
};

/// Mnemonic for an opcode (disassembly).
const char *opName(Op Code);

} // namespace grift

#endif // GRIFT_VM_BYTECODE_H
