#include "vm/Compiler.h"

#include <cassert>
#include <unordered_map>

using namespace grift;
using namespace grift::core;

namespace {

/// True when the primitive leaves a boolean on the stack — the only
/// primitives PrimJumpIfFalse may fuse over (its handler pops the
/// result as a condition).
bool isBoolValuedPrim(PrimOp P) {
  switch (P) {
  case PrimOp::LtI:
  case PrimOp::LeI:
  case PrimOp::EqI:
  case PrimOp::GeI:
  case PrimOp::GtI:
  case PrimOp::LtF:
  case PrimOp::LeF:
  case PrimOp::EqF:
  case PrimOp::GeF:
  case PrimOp::GtF:
  case PrimOp::Not:
    return true;
  default:
    return false;
  }
}

/// Peephole superinstruction fusion over one compiled function.
///
/// A recognized adjacent pair is fused by overwriting its FIRST
/// instruction with the superinstruction; the second instruction stays
/// in its slot as a dead placeholder (the fused handler skips it with
/// ++PC). Jump targets are absolute instruction indices, so leaving the
/// placeholder in place means no target ever needs remapping — a pair is
/// simply not fused when some jump lands on its second slot, because the
/// jump must still be able to execute that instruction unfused.
///
/// Fuel equivalence: each fused handler charges two dispatch steps (one
/// at fetch, one mid-handler via VM_FUSED_STEP), so the 1024-step budget
/// and cancel-poll boundaries land exactly where the unfused expansion
/// would put them.
void fuseFunction(VMFunction &Fn) {
  std::vector<Instr> &Code = Fn.Code;
  std::vector<bool> IsTarget(Code.size() + 1, false);
  for (const Instr &I : Code)
    if (I.Code == Op::Jump || I.Code == Op::JumpIfFalse)
      IsTarget[static_cast<uint32_t>(I.A)] = true;
  for (size_t I = 0; I + 1 < Code.size(); ++I) {
    if (IsTarget[I + 1])
      continue;
    Instr &A = Code[I];
    const Instr &B = Code[I + 1];
    if (A.Code == Op::Prim && B.Code == Op::JumpIfFalse &&
        isBoolValuedPrim(static_cast<PrimOp>(A.A)))
      A = {Op::PrimJumpIfFalse, A.A, B.A};
    else if (A.Code == Op::PushInt && B.Code == Op::Prim)
      A = {Op::PushIntPrim, A.A, B.A};
    else if (A.Code == Op::PushFloat && B.Code == Op::Prim)
      A = {Op::PushFloatPrim, A.A, B.A};
    else if (A.Code == Op::LocalGet && B.Code == Op::Call)
      A = {Op::LocalGetCall, A.A, B.A};
    else if (A.Code == Op::LocalGet && B.Code == Op::TailCall)
      A = {Op::LocalGetTailCall, A.A, B.A};
    else if (A.Code == Op::LocalGet && B.Code == Op::LocalGet)
      A = {Op::LocalGetGet, A.A, B.A};
    else
      continue;
    ++I; // the placeholder slot can head no further pair
  }
}

/// Per-function compilation state. Tracks lexical scopes, local slot
/// allocation (watermark), and the free variables this function captures
/// from its parent.
struct FnCtx {
  FnCtx *Parent = nullptr;
  VMFunction *Fn = nullptr;
  std::vector<std::unordered_map<std::string, int>> Scopes;
  std::vector<std::string> FreeNames;
  int NextLocal = 0;
  int MaxLocal = 0;

  int allocLocal() {
    int Slot = NextLocal++;
    MaxLocal = std::max(MaxLocal, NextLocal);
    return Slot;
  }

  void pushScope() { Scopes.emplace_back(); }
  void popScope(int SavedNext) {
    Scopes.pop_back();
    NextLocal = SavedNext;
  }

  void bind(const std::string &Name, int Slot) {
    Scopes.back()[Name] = Slot;
  }

  /// Finds \p Name in this function's scopes; -1 when not local.
  int findLocal(const std::string &Name) const {
    for (size_t I = Scopes.size(); I-- > 0;) {
      auto It = Scopes[I].find(Name);
      if (It != Scopes[I].end())
        return It->second;
    }
    return -1;
  }

  /// Index of \p Name in the capture list, adding it if needed.
  int freeIndex(const std::string &Name) {
    for (size_t I = 0; I != FreeNames.size(); ++I)
      if (FreeNames[I] == Name)
        return static_cast<int>(I);
    FreeNames.push_back(Name);
    return static_cast<int>(FreeNames.size() - 1);
  }
};

class Compiler {
public:
  Compiler(const CoreProgram &Core, TypeContext &Types,
           CoercionFactory &Coercions, CastMode Mode, bool Fuse)
      : Core(Core), Types(Types), Coercions(Coercions), Mode(Mode),
        Fuse(Fuse) {
    Prog.Mode = Mode;
  }

  std::optional<VMProgram> run(std::string &Error) {
    // Static Grift admits only fully static programs: no Dyn anywhere in
    // any expression's type (and hence no casts or Dyn operations).
    if (Mode == CastMode::Static) {
      for (const Def &D : Core.Defs)
        checkStatic(*D.Body);
      if (!CompileError.empty()) {
        Error = CompileError;
        return std::nullopt;
      }
    }
    // Globals first so references resolve in any order.
    for (const Def &D : Core.Defs) {
      if (D.Name.empty())
        continue;
      int Index = static_cast<int>(Prog.GlobalNames.size());
      GlobalIndex.emplace(D.Name, Index);
      Prog.GlobalNames.push_back(D.Name);
    }

    Prog.Functions.emplace_back(); // main = function 0
    FnCtx Main;
    Main.Fn = &Prog.Functions[0];
    Main.Fn->Name = "<main>";
    Main.pushScope();
    CurrentFn = &Main;

    bool PushedResult = false;
    for (size_t I = 0; I != Core.Defs.size(); ++I) {
      const Def &D = Core.Defs[I];
      bool Last = I + 1 == Core.Defs.size();
      compile(*D.Body, /*Tail=*/false);
      if (!D.Name.empty()) {
        emit(Op::GlobalSet, GlobalIndex.at(D.Name));
        if (Last) {
          emit(Op::PushUnit);
          PushedResult = true;
        }
      } else if (!Last) {
        emit(Op::Pop);
      } else {
        PushedResult = true;
      }
    }
    if (!PushedResult)
      emit(Op::PushUnit);
    emit(Op::Halt);
    Prog.Functions[0].NumParams = 0;
    Prog.Functions[0].NumLocals = static_cast<uint32_t>(Main.MaxLocal);

    if (!CompileError.empty()) {
      Error = CompileError;
      return std::nullopt;
    }
    if (Fuse)
      for (VMFunction &Fn : Prog.Functions)
        fuseFunction(Fn);
    return std::move(Prog);
  }

private:
  const CoreProgram &Core;
  TypeContext &Types;
  CoercionFactory &Coercions;
  CastMode Mode;
  bool Fuse;
  VMProgram Prog;
  std::unordered_map<std::string, int> GlobalIndex;
  FnCtx *CurrentFn = nullptr;
  std::string CompileError;

  //===--------------------------------------------------------------------===//
  // Emission helpers
  //===--------------------------------------------------------------------===//

  std::vector<Instr> &code() { return CurrentFn->Fn->Code; }

  void emit(Op Code, int32_t A = 0, int32_t B = 0) {
    CurrentFn->Fn->Code.push_back({Code, A, B});
  }

  /// Emits a jump with a dummy target; returns its index for patching.
  size_t emitJump(Op Code) {
    emit(Code, -1);
    return CurrentFn->Fn->Code.size() - 1;
  }

  void patchJump(size_t At) {
    code()[At].A = static_cast<int32_t>(code().size());
  }

  void fail(const std::string &Message) {
    if (CompileError.empty())
      CompileError = Message;
  }

  int castIndex(const Type *Src, const Type *Tgt,
                const std::string &Label) {
    CastDescriptor Desc;
    Desc.Src = Src;
    Desc.Tgt = Tgt;
    // Labels live in the coercion factory's interner so descriptors can
    // share pointers with coercions.
    Desc.Label = internLabel(Label);
    if (castModePrebuildsCoercions(Mode))
      Desc.C = Coercions.make(Src, Tgt, Label);
    // Dedupe.
    for (size_t I = 0; I != Prog.Casts.size(); ++I) {
      const CastDescriptor &Existing = Prog.Casts[I];
      if (Existing.Src == Desc.Src && Existing.Tgt == Desc.Tgt &&
          Existing.Label == Desc.Label)
        return static_cast<int>(I);
    }
    Prog.Casts.push_back(Desc);
    return static_cast<int>(Prog.Casts.size() - 1);
  }

  const std::string *internLabel(const std::string &Label) {
    return Coercions.internLabel(Label);
  }

  int siteIndex(const std::string &Label) {
    const std::string *Interned = internLabel(Label);
    for (size_t I = 0; I != Prog.Sites.size(); ++I)
      if (Prog.Sites[I].Label == Interned)
        return static_cast<int>(I);
    Prog.Sites.push_back({Interned});
    return static_cast<int>(Prog.Sites.size() - 1);
  }

  int typeIndex(const Type *T) {
    for (size_t I = 0; I != Prog.TypePool.size(); ++I)
      if (Prog.TypePool[I] == T)
        return static_cast<int>(I);
    Prog.TypePool.push_back(T);
    return static_cast<int>(Prog.TypePool.size() - 1);
  }

  int floatIndex(double D) {
    for (size_t I = 0; I != Prog.FloatPool.size(); ++I) {
      // Bit-compare so that -0.0 and NaN payloads are preserved.
      if (__builtin_bit_cast(uint64_t, Prog.FloatPool[I]) ==
          __builtin_bit_cast(uint64_t, D))
        return static_cast<int>(I);
    }
    Prog.FloatPool.push_back(D);
    return static_cast<int>(Prog.FloatPool.size() - 1);
  }

  //===--------------------------------------------------------------------===//
  // Variable access
  //===--------------------------------------------------------------------===//

  /// Emits a load of \p Name in \p Ctx, adding capture entries as needed.
  void emitVarLoad(FnCtx &Ctx, const std::string &Name) {
    int Slot = Ctx.findLocal(Name);
    if (Slot >= 0) {
      Ctx.Fn->Code.push_back({Op::LocalGet, Slot, 0});
      return;
    }
    // Captured from an enclosing function.
    if (!Ctx.Parent) {
      fail("unbound variable '" + Name + "' during compilation");
      Ctx.Fn->Code.push_back({Op::PushUnit, 0, 0});
      return;
    }
    int Index = Ctx.freeIndex(Name);
    Ctx.Fn->Code.push_back({Op::FreeGet, Index, 0});
  }

  //===--------------------------------------------------------------------===//
  // Lambdas
  //===--------------------------------------------------------------------===//

  /// Compiles \p Lambda into a fresh VM function and returns the function
  /// index; \p FreeOut receives the capture list (names resolved in the
  /// enclosing context).
  int compileLambda(const Node &Lambda, std::vector<std::string> &FreeOut) {
    int FnIndex = static_cast<int>(Prog.Functions.size());
    Prog.Functions.emplace_back();

    FnCtx Ctx;
    Ctx.Parent = CurrentFn;
    Ctx.Fn = &Prog.Functions[FnIndex];
    Ctx.Fn->Name = "<lambda@" + Lambda.Loc.str() + ">";
    Ctx.Fn->NumParams = static_cast<uint32_t>(Lambda.ParamNames.size());
    Ctx.pushScope();
    for (const std::string &Param : Lambda.ParamNames)
      Ctx.bind(Param, Ctx.allocLocal());

    FnCtx *Saved = CurrentFn;
    CurrentFn = &Ctx;
    compile(*Lambda.Subs[0], /*Tail=*/true);
    emit(Op::Return);
    CurrentFn = Saved;

    Ctx.Fn->NumLocals = static_cast<uint32_t>(
        std::max<int>(Ctx.MaxLocal, Ctx.Fn->NumParams));
    FreeOut = Ctx.FreeNames;
    return FnIndex;
  }

  /// Emits capture loads + MakeClosure for \p Lambda in the current
  /// context. Returns the capture list for letrec backpatching.
  std::vector<std::string> emitClosure(const Node &Lambda) {
    std::vector<std::string> Free;
    int FnIndex = compileLambda(Lambda, Free);
    for (const std::string &Name : Free)
      emitVarLoad(*CurrentFn, Name);
    emit(Op::MakeClosure, FnIndex, static_cast<int32_t>(Free.size()));
    return Free;
  }

  //===--------------------------------------------------------------------===//
  // Expression compilation
  //===--------------------------------------------------------------------===//

  void compile(const Node &N, bool Tail) {
    switch (N.Kind) {
    case NodeKind::LitUnit:
      emit(Op::PushUnit);
      return;
    case NodeKind::LitBool:
      emit(N.BoolVal ? Op::PushTrue : Op::PushFalse);
      return;
    case NodeKind::LitInt: {
      if (N.IntVal >= INT32_MIN && N.IntVal <= INT32_MAX) {
        emit(Op::PushInt, static_cast<int32_t>(N.IntVal));
      } else {
        Prog.IntPool.push_back(N.IntVal);
        emit(Op::PushIntBig, static_cast<int32_t>(Prog.IntPool.size() - 1));
      }
      return;
    }
    case NodeKind::LitFloat:
      emit(Op::PushFloat, floatIndex(N.FloatVal));
      return;
    case NodeKind::LitChar:
      emit(Op::PushChar, static_cast<unsigned char>(N.CharVal));
      return;
    case NodeKind::LocalRef:
      emitVarLoad(*CurrentFn, N.Name);
      return;
    case NodeKind::GlobalRef: {
      auto It = GlobalIndex.find(N.Name);
      if (It == GlobalIndex.end()) {
        fail("unknown global '" + N.Name + "'");
        emit(Op::PushUnit);
        return;
      }
      emit(Op::GlobalGet, It->second);
      return;
    }
    case NodeKind::If: {
      compile(*N.Subs[0], false);
      size_t ElseJump = emitJump(Op::JumpIfFalse);
      compile(*N.Subs[1], Tail);
      size_t EndJump = emitJump(Op::Jump);
      patchJump(ElseJump);
      compile(*N.Subs[2], Tail);
      patchJump(EndJump);
      return;
    }
    case NodeKind::Lambda:
      emitClosure(N);
      return;
    case NodeKind::App: {
      for (const NodePtr &Sub : N.Subs)
        compile(*Sub, false);
      emit(Tail ? Op::TailCall : Op::Call,
           static_cast<int32_t>(N.Subs.size() - 1));
      return;
    }
    case NodeKind::AppDyn: {
      if (Mode == CastMode::Static)
        fail("Dyn application in a static program");
      for (const NodePtr &Sub : N.Subs)
        compile(*Sub, false);
      emit(Op::AppDyn, static_cast<int32_t>(N.Subs.size() - 1),
           siteIndex(N.BlameLabel));
      return;
    }
    case NodeKind::PrimApp: {
      for (const NodePtr &Sub : N.Subs)
        compile(*Sub, false);
      emit(Op::Prim, static_cast<int32_t>(N.Prim));
      return;
    }
    case NodeKind::Let: {
      size_t NumBindings = N.BindingNames.size();
      int SavedNext = CurrentFn->NextLocal;
      std::vector<int> Slots;
      Slots.reserve(NumBindings);
      for (size_t I = 0; I != NumBindings; ++I)
        Slots.push_back(CurrentFn->allocLocal());
      // Parallel let: initializers see the outer scope only.
      for (size_t I = 0; I != NumBindings; ++I) {
        compile(*N.Subs[I], false);
        emit(Op::LocalSet, Slots[I]);
      }
      CurrentFn->pushScope();
      for (size_t I = 0; I != NumBindings; ++I)
        CurrentFn->bind(N.BindingNames[I], Slots[I]);
      compile(*N.Subs.back(), Tail);
      CurrentFn->popScope(SavedNext);
      return;
    }
    case NodeKind::Letrec:
      compileLetrec(N, Tail);
      return;
    case NodeKind::Begin: {
      for (size_t I = 0; I + 1 < N.Subs.size(); ++I) {
        compile(*N.Subs[I], false);
        emit(Op::Pop);
      }
      compile(*N.Subs.back(), Tail);
      return;
    }
    case NodeKind::Repeat:
      compileRepeat(N);
      return;
    case NodeKind::Time:
      emit(Op::TimeStart);
      compile(*N.Subs[0], false);
      emit(Op::TimeEnd);
      return;
    case NodeKind::Tuple: {
      for (const NodePtr &Sub : N.Subs)
        compile(*Sub, false);
      emit(Op::MakeTuple, static_cast<int32_t>(N.Subs.size()));
      return;
    }
    case NodeKind::TupleProj:
      compile(*N.Subs[0], false);
      emit(Op::TupleProj, static_cast<int32_t>(N.Index));
      return;
    case NodeKind::TupleProjDyn:
      requireGradual("tuple projection on Dyn");
      compile(*N.Subs[0], false);
      emit(Op::TupleProjDyn, static_cast<int32_t>(N.Index),
           siteIndex(N.BlameLabel));
      return;
    case NodeKind::BoxAlloc:
      compile(*N.Subs[0], false);
      if (Mode == CastMode::Monotonic)
        emit(Op::BoxNewMono, typeIndex(N.Ty->inner()));
      else
        emit(Op::BoxNew);
      return;
    case NodeKind::Unbox:
      compile(*N.Subs[0], false);
      // Monotonic payoff: a fully static view needs no check at all.
      if (Mode == CastMode::Static ||
          (Mode == CastMode::Monotonic && N.Ty->isStatic()))
        emit(Op::BoxGetFast);
      else if (Mode == CastMode::Monotonic)
        emit(Op::BoxGetMono, typeIndex(N.Ty), siteIndex(N.Loc.str()));
      else
        emit(Op::BoxGet);
      return;
    case NodeKind::UnboxDyn:
      requireGradual("unbox on Dyn");
      compile(*N.Subs[0], false);
      emit(Op::UnboxDyn, siteIndex(N.BlameLabel));
      return;
    case NodeKind::BoxSet:
      compile(*N.Subs[0], false);
      compile(*N.Subs[1], false);
      if (Mode == CastMode::Static ||
          (Mode == CastMode::Monotonic && N.Subs[1]->Ty->isStatic()))
        emit(Op::BoxSetFast);
      else if (Mode == CastMode::Monotonic)
        emit(Op::BoxSetMono, typeIndex(N.Subs[1]->Ty),
             siteIndex(N.Loc.str()));
      else
        emit(Op::BoxSet);
      return;
    case NodeKind::BoxSetDyn:
      requireGradual("box-set! on Dyn");
      compile(*N.Subs[0], false);
      compile(*N.Subs[1], false);
      emit(Op::BoxSetDyn, siteIndex(N.BlameLabel));
      return;
    case NodeKind::MakeVect:
      compile(*N.Subs[0], false);
      compile(*N.Subs[1], false);
      if (Mode == CastMode::Monotonic)
        emit(Op::MakeVectorMono, typeIndex(N.Ty->inner()));
      else
        emit(Op::MakeVector);
      return;
    case NodeKind::VectRef:
      compile(*N.Subs[0], false);
      compile(*N.Subs[1], false);
      if (Mode == CastMode::Static ||
          (Mode == CastMode::Monotonic && N.Ty->isStatic()))
        emit(Op::VecRefFast);
      else if (Mode == CastMode::Monotonic)
        emit(Op::VecRefMono, typeIndex(N.Ty), siteIndex(N.Loc.str()));
      else
        emit(Op::VecRef);
      return;
    case NodeKind::VectRefDyn:
      requireGradual("vector-ref on Dyn");
      compile(*N.Subs[0], false);
      compile(*N.Subs[1], false);
      emit(Op::VecRefDyn, siteIndex(N.BlameLabel));
      return;
    case NodeKind::VectSet:
      compile(*N.Subs[0], false);
      compile(*N.Subs[1], false);
      compile(*N.Subs[2], false);
      if (Mode == CastMode::Static ||
          (Mode == CastMode::Monotonic && N.Subs[2]->Ty->isStatic()))
        emit(Op::VecSetFast);
      else if (Mode == CastMode::Monotonic)
        emit(Op::VecSetMono, typeIndex(N.Subs[2]->Ty),
             siteIndex(N.Loc.str()));
      else
        emit(Op::VecSet);
      return;
    case NodeKind::VectSetDyn:
      requireGradual("vector-set! on Dyn");
      compile(*N.Subs[0], false);
      compile(*N.Subs[1], false);
      compile(*N.Subs[2], false);
      emit(Op::VecSetDyn, siteIndex(N.BlameLabel));
      return;
    case NodeKind::VectLen:
      compile(*N.Subs[0], false);
      // Monotonic mode never proxies references, so length is unchecked.
      emit(Mode == CastMode::Static || Mode == CastMode::Monotonic
               ? Op::VecLenFast
               : Op::VecLen);
      return;
    case NodeKind::VectLenDyn:
      requireGradual("vector-length on Dyn");
      compile(*N.Subs[0], false);
      emit(Op::VecLenDyn, siteIndex(N.BlameLabel));
      return;
    case NodeKind::Cast: {
      compile(*N.Subs[0], false);
      emitCast(N);
      return;
    }
    }
  }

  /// Emits a cast unless it is the identity (e.g. equirecursive
  /// fold/unfold between a μ type and its unfolding). Identity casts are
  /// elided in every mode — this is part of the compiler's compile-time
  /// cast specialization, and it is what lets Static Grift accept fully
  /// static programs that use recursive types.
  void emitCast(const Node &N) {
    const Coercion *C = Coercions.make(N.SrcTy, N.Ty, N.BlameLabel);
    if (C->isId())
      return;
    requireGradual("cast from " + N.SrcTy->str() + " to " + N.Ty->str());
    emit(Op::Cast, castIndex(N.SrcTy, N.Ty, N.BlameLabel));
  }

  void checkStatic(const Node &N) {
    if (N.Ty && N.Ty->hasDyn())
      fail("Static Grift requires a fully static program; expression at " +
           N.Loc.str() + " has type " + N.Ty->str());
    for (const NodePtr &Sub : N.Subs)
      checkStatic(*Sub);
  }

  void requireGradual(const std::string &What) {
    if (Mode == CastMode::Static)
      fail("Static Grift requires a fully static program, found " + What);
  }

  void compileLetrec(const Node &N, bool Tail) {
    size_t NumBindings = N.BindingNames.size();
    int SavedNext = CurrentFn->NextLocal;
    CurrentFn->pushScope();
    std::vector<int> Slots;
    for (size_t I = 0; I != NumBindings; ++I) {
      int Slot = CurrentFn->allocLocal();
      Slots.push_back(Slot);
      CurrentFn->bind(N.BindingNames[I], Slot);
    }
    // First pass: create every closure. Sibling captures read the not-
    // yet-initialized local (unit) and are patched below.
    std::vector<std::vector<std::string>> Captures(NumBindings);
    for (size_t I = 0; I != NumBindings; ++I) {
      const Node &Init = *N.Subs[I];
      if (Init.Kind == NodeKind::Lambda) {
        Captures[I] = emitClosure(Init);
      } else if (Init.Kind == NodeKind::Cast &&
                 Init.Subs[0]->Kind == NodeKind::Lambda) {
        Captures[I] = emitClosure(*Init.Subs[0]);
        emitCast(Init);
      } else {
        fail("letrec initializer must be a lambda");
        emit(Op::PushUnit);
      }
      emit(Op::LocalSet, Slots[I]);
    }
    // Second pass: patch sibling captures with the now-created closures.
    for (size_t I = 0; I != NumBindings; ++I) {
      for (size_t FreeIdx = 0; FreeIdx != Captures[I].size(); ++FreeIdx) {
        const std::string &Name = Captures[I][FreeIdx];
        bool IsSibling = false;
        for (const std::string &B : N.BindingNames)
          if (B == Name)
            IsSibling = true;
        if (!IsSibling)
          continue;
        // ClosureInitFree reaches the underlying closure through any
        // cast wrappers (DynBox, proxy closure) the initializer's
        // annotation cast may have added.
        emit(Op::LocalGet, Slots[I]); // the closure to patch
        emitVarLoad(*CurrentFn, Name);
        emit(Op::ClosureInitFree, static_cast<int32_t>(FreeIdx));
      }
    }
    compile(*N.Subs.back(), Tail);
    CurrentFn->popScope(SavedNext);
  }

  void compileRepeat(const Node &N) {
    int SavedNext = CurrentFn->NextLocal;
    CurrentFn->pushScope();
    int IndexSlot = CurrentFn->allocLocal();
    int LimitSlot = CurrentFn->allocLocal();
    int AccSlot = N.HasAcc ? CurrentFn->allocLocal() : -1;

    compile(*N.Subs[0], false); // lo
    emit(Op::LocalSet, IndexSlot);
    compile(*N.Subs[1], false); // hi
    emit(Op::LocalSet, LimitSlot);
    size_t BodyIndex = 2;
    if (N.HasAcc) {
      compile(*N.Subs[2], false);
      emit(Op::LocalSet, AccSlot);
      BodyIndex = 3;
    }

    CurrentFn->bind(N.Name, IndexSlot);
    if (N.HasAcc)
      CurrentFn->bind(N.AccName, AccSlot);

    size_t LoopTop = code().size();
    emit(Op::LocalGet, IndexSlot);
    emit(Op::LocalGet, LimitSlot);
    emit(Op::Prim, static_cast<int32_t>(PrimOp::LtI));
    size_t ExitJump = emitJump(Op::JumpIfFalse);

    compile(*N.Subs[BodyIndex], false);
    if (N.HasAcc)
      emit(Op::LocalSet, AccSlot);
    else
      emit(Op::Pop);

    emit(Op::LocalGet, IndexSlot);
    emit(Op::PushInt, 1);
    emit(Op::Prim, static_cast<int32_t>(PrimOp::AddI));
    emit(Op::LocalSet, IndexSlot);
    emit(Op::Jump, static_cast<int32_t>(LoopTop));
    patchJump(ExitJump);

    if (N.HasAcc)
      emit(Op::LocalGet, AccSlot);
    else
      emit(Op::PushUnit);
    CurrentFn->popScope(SavedNext);
  }
};

} // namespace

std::optional<VMProgram> grift::compileProgram(const CoreProgram &Prog,
                                               TypeContext &Types,
                                               CoercionFactory &Coercions,
                                               CastMode Mode,
                                               std::string &Error,
                                               bool Fuse) {
  return Compiler(Prog, Types, Coercions, Mode, Fuse).run(Error);
}
