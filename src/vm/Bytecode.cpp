#include "vm/Bytecode.h"

using namespace grift;

const char *grift::opName(Op Code) {
  switch (Code) {
  case Op::PushUnit:
    return "push-unit";
  case Op::PushTrue:
    return "push-true";
  case Op::PushFalse:
    return "push-false";
  case Op::PushInt:
    return "push-int";
  case Op::PushIntBig:
    return "push-int-big";
  case Op::PushChar:
    return "push-char";
  case Op::PushFloat:
    return "push-float";
  case Op::LocalGet:
    return "local-get";
  case Op::LocalSet:
    return "local-set";
  case Op::GlobalGet:
    return "global-get";
  case Op::GlobalSet:
    return "global-set";
  case Op::FreeGet:
    return "free-get";
  case Op::Pop:
    return "pop";
  case Op::Jump:
    return "jump";
  case Op::JumpIfFalse:
    return "jump-if-false";
  case Op::Call:
    return "call";
  case Op::TailCall:
    return "tail-call";
  case Op::Return:
    return "return";
  case Op::Halt:
    return "halt";
  case Op::MakeClosure:
    return "make-closure";
  case Op::ClosureInitFree:
    return "closure-init-free";
  case Op::Cast:
    return "cast";
  case Op::Prim:
    return "prim";
  case Op::MakeTuple:
    return "make-tuple";
  case Op::TupleProj:
    return "tuple-proj";
  case Op::TupleProjDyn:
    return "tuple-proj-dyn";
  case Op::BoxNew:
    return "box-new";
  case Op::BoxNewMono:
    return "box-new-mono";
  case Op::BoxGet:
    return "box-get";
  case Op::BoxGetFast:
    return "box-get-fast";
  case Op::BoxGetMono:
    return "box-get-mono";
  case Op::BoxSet:
    return "box-set";
  case Op::BoxSetFast:
    return "box-set-fast";
  case Op::BoxSetMono:
    return "box-set-mono";
  case Op::UnboxDyn:
    return "unbox-dyn";
  case Op::BoxSetDyn:
    return "box-set-dyn";
  case Op::MakeVector:
    return "make-vector";
  case Op::MakeVectorMono:
    return "make-vector-mono";
  case Op::VecRef:
    return "vec-ref";
  case Op::VecRefFast:
    return "vec-ref-fast";
  case Op::VecRefMono:
    return "vec-ref-mono";
  case Op::VecRefDyn:
    return "vec-ref-dyn";
  case Op::VecSet:
    return "vec-set";
  case Op::VecSetFast:
    return "vec-set-fast";
  case Op::VecSetMono:
    return "vec-set-mono";
  case Op::VecSetDyn:
    return "vec-set-dyn";
  case Op::VecLen:
    return "vec-len";
  case Op::VecLenFast:
    return "vec-len-fast";
  case Op::VecLenDyn:
    return "vec-len-dyn";
  case Op::AppDyn:
    return "app-dyn";
  case Op::TimeStart:
    return "time-start";
  case Op::TimeEnd:
    return "time-end";
  case Op::LocalGetGet:
    return "local-get-get";
  case Op::LocalGetCall:
    return "local-get-call";
  case Op::LocalGetTailCall:
    return "local-get-tail-call";
  case Op::PushIntPrim:
    return "push-int-prim";
  case Op::PrimJumpIfFalse:
    return "prim-jump-if-false";
  case Op::PushFloatPrim:
    return "push-float-prim";
  }
  return "?";
}

std::string VMProgram::str() const {
  std::string Out;
  for (size_t F = 0; F != Functions.size(); ++F) {
    const VMFunction &Fn = Functions[F];
    Out += "fn " + std::to_string(F) + " \"" + Fn.Name +
           "\" params=" + std::to_string(Fn.NumParams) +
           " locals=" + std::to_string(Fn.NumLocals) + "\n";
    for (size_t I = 0; I != Fn.Code.size(); ++I) {
      const Instr &Ins = Fn.Code[I];
      Out += "  " + std::to_string(I) + ": " + opName(Ins.Code);
      Out += " " + std::to_string(Ins.A);
      if (Ins.B != 0)
        Out += " " + std::to_string(Ins.B);
      Out += "\n";
    }
  }
  return Out;
}
