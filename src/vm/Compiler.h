//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers checked core IR to VM bytecode: flat closure conversion
/// (paper Section 3: "closure conversion using a flat representation"),
/// letrec backpatching, tail-call marking, and cast-table construction.
/// In coercion mode every cast site's coercion is created here, once, at
/// compile time.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_VM_COMPILER_H
#define GRIFT_VM_COMPILER_H

#include "coercions/CoercionFactory.h"
#include "frontend/CoreIR.h"
#include "vm/Bytecode.h"

#include <optional>
#include <string>

namespace grift {

/// Compiles \p Prog for \p Mode. Returns nullopt with \p Error set when
/// the program cannot be compiled for the mode (e.g. Static mode on a
/// program that still contains casts or Dyn operations). \p Fuse
/// controls the superinstruction peephole pass; disabling it yields the
/// one-op-per-instruction expansion (used by the differential tests).
std::optional<VMProgram> compileProgram(const core::CoreProgram &Prog,
                                        TypeContext &Types,
                                        CoercionFactory &Coercions,
                                        CastMode Mode, std::string &Error,
                                        bool Fuse = true);

} // namespace grift

#endif // GRIFT_VM_COMPILER_H
