#include "store/Serialize.h"

#include "ast/Prim.h"
#include "coercions/CoercionFactory.h"
#include "types/TypeContext.h"

#include <cstring>
#include <unordered_map>

using namespace grift;
using namespace grift::store;

// All multi-byte fields are little-endian; the serializer writes native
// byte order and the supported targets are little-endian (enforced
// loosely here — a big-endian port would bump FormatVersion anyway).

namespace {

/// Sentinel reference meaning "no entry" (null coercion, absent label).
constexpr uint32_t NoRef = 0xFFFFFFFFu;

//===----------------------------------------------------------------------===//
// Bounded little-endian cursors
//===----------------------------------------------------------------------===//

class Writer {
public:
  std::string Out;

  void bytes(const void *Data, size_t Size) {
    Out.append(static_cast<const char *>(Data), Size);
  }
  void u8(uint8_t V) { bytes(&V, 1); }
  void u32(uint32_t V) { bytes(&V, 4); }
  void u64(uint64_t V) { bytes(&V, 8); }
  void i32(int32_t V) { bytes(&V, 4); }
  void i64(int64_t V) { bytes(&V, 8); }
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, 8);
    u64(Bits);
  }
  void str(std::string_view S) {
    u32(static_cast<uint32_t>(S.size()));
    bytes(S.data(), S.size());
  }
};

/// Bounds-checked reader: a read past the end sets a sticky failure flag
/// and returns zeros; callers check ok() at section granularity.
class Reader {
public:
  Reader(Span S) : P(S.Data), End(S.Data + S.Size) {}

  bool ok() const { return !Failed; }
  bool atEnd() const { return P == End && !Failed; }
  size_t remaining() const { return Failed ? 0 : size_t(End - P); }

  bool bytes(void *Dst, size_t Size) {
    if (Failed || size_t(End - P) < Size) {
      Failed = true;
      return false;
    }
    std::memcpy(Dst, P, Size);
    P += Size;
    return true;
  }
  uint8_t u8() {
    uint8_t V = 0;
    bytes(&V, 1);
    return V;
  }
  uint32_t u32() {
    uint32_t V = 0;
    bytes(&V, 4);
    return V;
  }
  uint64_t u64() {
    uint64_t V = 0;
    bytes(&V, 8);
    return V;
  }
  int32_t i32() {
    int32_t V = 0;
    bytes(&V, 4);
    return V;
  }
  int64_t i64() {
    int64_t V = 0;
    bytes(&V, 8);
    return V;
  }
  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, 8);
    return V;
  }
  /// Length-prefixed string view into the mapped image.
  std::string_view str() {
    uint32_t Len = u32();
    if (Failed || size_t(End - P) < Len) {
      Failed = true;
      return {};
    }
    std::string_view S(reinterpret_cast<const char *>(P), Len);
    P += Len;
    return S;
  }

private:
  const uint8_t *P;
  const uint8_t *End;
  bool Failed = false;
};

//===----------------------------------------------------------------------===//
// Shared-table collection (serialize side)
//===----------------------------------------------------------------------===//

/// Applies \p Fn to every part pointer of \p C, in serialization order.
template <typename Fn> void forEachPart(const Coercion *C, Fn &&Apply) {
  switch (C->kind()) {
  case CoercionKind::Id:
  case CoercionKind::Project:
  case CoercionKind::Inject:
  case CoercionKind::Fail:
    return;
  case CoercionKind::Sequence:
    Apply(C->first());
    Apply(C->second());
    return;
  case CoercionKind::Fun:
    for (size_t I = 0, E = C->arity() + 1; I != E; ++I)
      Apply(C->arg(I));
    return;
  case CoercionKind::RefC:
    Apply(C->writeCoercion());
    Apply(C->readCoercion());
    return;
  case CoercionKind::TupleC:
    for (size_t I = 0, E = C->tupleSize(); I != E; ++I)
      Apply(C->element(I));
    return;
  case CoercionKind::Rec:
    Apply(C->body());
    return;
  }
}

/// Deduplicated tables of everything a program references. Types are
/// numbered children-first (the type graph is a DAG), coercions are
/// numbered with μ nodes pre-order and everything else post-order, so on
/// load every non-μ part reference points at an already-built node and
/// only μ back edges point forward.
struct Tables {
  std::vector<const Type *> Types;
  std::unordered_map<const Type *, uint32_t> TypeIdx;
  std::vector<const std::string *> Strings;
  std::unordered_map<const std::string *, uint32_t> StringIdx;
  std::vector<const Coercion *> Coercions;
  std::unordered_map<const Coercion *, uint32_t> CoercionIdx;

  uint32_t addType(const Type *T) {
    auto It = TypeIdx.find(T);
    if (It != TypeIdx.end())
      return It->second;
    for (const Type *Child : T->children())
      addType(Child);
    uint32_t Idx = static_cast<uint32_t>(Types.size());
    Types.push_back(T);
    TypeIdx.emplace(T, Idx);
    return Idx;
  }

  uint32_t addString(const std::string *S) {
    auto It = StringIdx.find(S);
    if (It != StringIdx.end())
      return It->second;
    uint32_t Idx = static_cast<uint32_t>(Strings.size());
    Strings.push_back(S);
    StringIdx.emplace(S, Idx);
    return Idx;
  }

  uint32_t addCoercion(const Coercion *C) {
    auto It = CoercionIdx.find(C);
    if (It != CoercionIdx.end())
      return It->second;
    if (C->kind() == CoercionKind::Rec) {
      // Pre-order: the μ node gets its index before its body, so the
      // back edge inside the body resolves to an existing placeholder.
      uint32_t Idx = static_cast<uint32_t>(Coercions.size());
      Coercions.push_back(C);
      CoercionIdx.emplace(C, Idx);
      addCoercion(C->body());
      return Idx;
    }
    if (C->type())
      addType(C->type());
    if (C->labelPointer())
      addString(C->labelPointer());
    forEachPart(C, [&](const Coercion *Part) { addCoercion(Part); });
    uint32_t Idx = static_cast<uint32_t>(Coercions.size());
    Coercions.push_back(C);
    CoercionIdx.emplace(C, Idx);
    return Idx;
  }
};

void emitSection(Writer &W, std::vector<SectionEntry> &TableOut, SectionId Id,
                 const std::string &Payload) {
  SectionEntry E;
  E.Id = static_cast<uint32_t>(Id);
  E.CRC = crc32(Payload.data(), Payload.size());
  E.Offset = W.Out.size();
  E.Size = Payload.size();
  TableOut.push_back(E);
  W.bytes(Payload.data(), Payload.size());
}

} // namespace

//===----------------------------------------------------------------------===//
// Image validation
//===----------------------------------------------------------------------===//

LoadStatus store::validateImage(const uint8_t *Data, size_t Size,
                                uint64_t ExpectKeyHash, ImageSections &Out,
                                std::string &Reason) {
  auto Fail = [&](LoadStatus S, std::string Why) {
    Reason = std::move(Why);
    return S;
  };
  if (Size < sizeof(ImageHeader))
    return Fail(LoadStatus::TruncatedHeader,
                "file smaller than the fixed header");
  ImageHeader H;
  std::memcpy(&H, Data, sizeof H);
  if (H.Magic != ImageMagic)
    return Fail(LoadStatus::BadMagic, "bad magic");
  if (headerCRC(H) != H.HeaderCRC)
    return Fail(LoadStatus::BadHeaderCRC, "header checksum mismatch");
  // From here the header fields are trustworthy (modulo CRC collision).
  if (H.Version != FormatVersion)
    return Fail(LoadStatus::VersionSkew,
                "format version " + std::to_string(H.Version) +
                    " (expected " + std::to_string(FormatVersion) + ")");
  if (ExpectKeyHash != 0 && H.KeyHash != ExpectKeyHash)
    return Fail(LoadStatus::KeyMismatch, "content key mismatch");
  if (H.FileSize != Size)
    return Fail(LoadStatus::TruncatedFile,
                "declared size " + std::to_string(H.FileSize) + " but got " +
                    std::to_string(Size));
  if (H.SectionCount == 0 || H.SectionCount > MaxSections)
    return Fail(LoadStatus::BadSectionTable, "section count out of range");
  size_t TableBytes = size_t(H.SectionCount) * sizeof(SectionEntry);
  if (Size - sizeof(ImageHeader) < TableBytes)
    return Fail(LoadStatus::BadSectionTable, "section table out of bounds");
  const uint8_t *TableStart = Data + sizeof(ImageHeader);
  if (crc32(TableStart, TableBytes) != H.TableCRC)
    return Fail(LoadStatus::BadSectionTable, "section table checksum");

  size_t PayloadStart = sizeof(ImageHeader) + TableBytes;
  std::vector<SectionEntry> Entries(H.SectionCount);
  std::memcpy(Entries.data(), TableStart, TableBytes);

  Span *Slots[] = {&Out.Meta, &Out.Strings, &Out.Types, &Out.Coercions,
                   &Out.Code};
  bool Seen[5] = {};
  size_t Cursor = PayloadStart;
  for (const SectionEntry &E : Entries) {
    if (E.Id < 1 || E.Id > 5)
      return Fail(LoadStatus::BadSectionTable, "unknown section id");
    if (Seen[E.Id - 1])
      return Fail(LoadStatus::BadSectionTable, "duplicate section");
    Seen[E.Id - 1] = true;
    // Sections must tile the payload area in table order: no gaps, no
    // overlap, no reach past the declared file size.
    if (E.Offset != Cursor || E.Size > Size - Cursor)
      return Fail(LoadStatus::BadSectionTable, "section bounds");
    Cursor += E.Size;
    if (crc32(Data + E.Offset, E.Size) != E.CRC)
      return Fail(LoadStatus::BadSectionCRC,
                  "section " + std::to_string(E.Id) + " checksum");
    *Slots[E.Id - 1] = Span{Data + E.Offset, static_cast<size_t>(E.Size)};
  }
  if (Cursor != Size)
    return Fail(LoadStatus::BadSectionTable, "trailing bytes after sections");
  for (bool S : Seen)
    if (!S)
      return Fail(LoadStatus::BadSectionTable, "missing section");
  Reason.clear();
  return LoadStatus::Hit;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

std::string store::serializeProgram(const VMProgram &Prog, uint64_t KeyHash) {
  Tables T;
  // Collect in emission order so the tables are deterministic.
  for (const CastDescriptor &Cast : Prog.Casts) {
    T.addType(Cast.Src);
    T.addType(Cast.Tgt);
    if (Cast.Label)
      T.addString(Cast.Label);
    if (Cast.C)
      T.addCoercion(Cast.C);
  }
  for (const DynSite &Site : Prog.Sites)
    T.addString(Site.Label);
  for (const Type *Ty : Prog.TypePool)
    T.addType(Ty);

  Writer Meta;
  Meta.u8(static_cast<uint8_t>(Prog.Mode));
  Meta.u32(Prog.MainFunction);

  Writer Strings;
  Strings.u32(static_cast<uint32_t>(T.Strings.size()));
  for (const std::string *S : T.Strings)
    Strings.str(*S);

  Writer Types;
  Types.u32(static_cast<uint32_t>(T.Types.size()));
  for (const Type *Ty : T.Types) {
    Types.u8(static_cast<uint8_t>(Ty->kind()));
    Types.u32(Ty->isVar() ? Ty->varIndex() : 0);
    Types.u32(static_cast<uint32_t>(Ty->children().size()));
    for (const Type *Child : Ty->children())
      Types.u32(T.TypeIdx.at(Child));
  }

  Writer Coercions;
  Coercions.u32(static_cast<uint32_t>(T.Coercions.size()));
  for (const Coercion *C : T.Coercions) {
    Coercions.u8(static_cast<uint8_t>(C->kind()));
    Coercions.u32(C->type() ? T.TypeIdx.at(C->type()) : NoRef);
    Coercions.u32(C->labelPointer() ? T.StringIdx.at(C->labelPointer())
                                    : NoRef);
    uint32_t NumParts = 0;
    forEachPart(C, [&](const Coercion *) { ++NumParts; });
    Coercions.u32(NumParts);
    forEachPart(C, [&](const Coercion *Part) {
      Coercions.u32(T.CoercionIdx.at(Part));
    });
  }

  Writer Code;
  Code.u32(static_cast<uint32_t>(Prog.Functions.size()));
  for (const VMFunction &Fn : Prog.Functions) {
    Code.str(Fn.Name);
    Code.u32(Fn.NumParams);
    Code.u32(Fn.NumLocals);
    Code.u32(static_cast<uint32_t>(Fn.Code.size()));
    for (const Instr &I : Fn.Code) {
      Code.u8(static_cast<uint8_t>(I.Code));
      Code.i32(I.A);
      Code.i32(I.B);
    }
  }
  Code.u32(static_cast<uint32_t>(Prog.Casts.size()));
  for (const CastDescriptor &Cast : Prog.Casts) {
    Code.u32(T.TypeIdx.at(Cast.Src));
    Code.u32(T.TypeIdx.at(Cast.Tgt));
    Code.u32(Cast.Label ? T.StringIdx.at(Cast.Label) : NoRef);
    Code.u32(Cast.C ? T.CoercionIdx.at(Cast.C) : NoRef);
  }
  Code.u32(static_cast<uint32_t>(Prog.Sites.size()));
  for (const DynSite &Site : Prog.Sites)
    Code.u32(T.StringIdx.at(Site.Label));
  Code.u32(static_cast<uint32_t>(Prog.TypePool.size()));
  for (const Type *Ty : Prog.TypePool)
    Code.u32(T.TypeIdx.at(Ty));
  Code.u32(static_cast<uint32_t>(Prog.FloatPool.size()));
  for (double F : Prog.FloatPool)
    Code.f64(F);
  Code.u32(static_cast<uint32_t>(Prog.IntPool.size()));
  for (int64_t I : Prog.IntPool)
    Code.i64(I);
  Code.u32(static_cast<uint32_t>(Prog.GlobalNames.size()));
  for (const std::string &Name : Prog.GlobalNames)
    Code.str(Name);

  // Assemble: header, table, payloads (in SectionId order, tiling the
  // payload area exactly — validateImage enforces this layout).
  ImageHeader H;
  H.KeyHash = KeyHash;
  H.SectionCount = 5;

  Writer Image;
  Image.Out.resize(sizeof(ImageHeader) + 5 * sizeof(SectionEntry));
  std::vector<SectionEntry> Table;
  emitSection(Image, Table, SectionId::Meta, Meta.Out);
  emitSection(Image, Table, SectionId::Strings, Strings.Out);
  emitSection(Image, Table, SectionId::Types, Types.Out);
  emitSection(Image, Table, SectionId::Coercions, Coercions.Out);
  emitSection(Image, Table, SectionId::Code, Code.Out);

  H.FileSize = Image.Out.size();
  H.TableCRC = crc32(Table.data(), Table.size() * sizeof(SectionEntry));
  H.HeaderCRC = headerCRC(H);
  std::memcpy(Image.Out.data(), &H, sizeof H);
  std::memcpy(Image.Out.data() + sizeof H, Table.data(),
              Table.size() * sizeof(SectionEntry));
  return std::move(Image.Out);
}

//===----------------------------------------------------------------------===//
// Deserialization
//===----------------------------------------------------------------------===//

namespace {

/// Validates every bytecode operand that indexes a program table against
/// the loaded table sizes, plus control-flow targets and function
/// termination — the "never UB even if CRC collides" layer.
bool validateCode(const VMProgram &Prog, std::string &Error) {
  auto Bad = [&](const VMFunction &Fn, size_t PC, const char *Why) {
    Error = "function '" + Fn.Name + "' pc " + std::to_string(PC) + ": " + Why;
    return false;
  };
  const size_t NumFns = Prog.Functions.size();
  const uint32_t Prims = numPrims();
  for (const VMFunction &Fn : Prog.Functions) {
    if (Fn.NumParams > Fn.NumLocals)
      return Bad(Fn, 0, "more parameters than locals");
    const size_t Len = Fn.Code.size();
    if (Len == 0)
      return Bad(Fn, 0, "empty code");
    for (size_t PC = 0; PC != Len; ++PC) {
      const Instr &I = Fn.Code[PC];
      auto InRange = [](int32_t V, size_t Bound) {
        return V >= 0 && size_t(V) < Bound;
      };
      switch (I.Code) {
      case Op::PushIntBig:
        if (!InRange(I.A, Prog.IntPool.size()))
          return Bad(Fn, PC, "int-pool index");
        break;
      case Op::PushFloat:
        if (!InRange(I.A, Prog.FloatPool.size()))
          return Bad(Fn, PC, "float-pool index");
        break;
      case Op::LocalGet:
      case Op::LocalSet:
        if (!InRange(I.A, Fn.NumLocals))
          return Bad(Fn, PC, "local slot");
        break;
      case Op::GlobalGet:
      case Op::GlobalSet:
        if (!InRange(I.A, Prog.GlobalNames.size()))
          return Bad(Fn, PC, "global index");
        break;
      case Op::Jump:
      case Op::JumpIfFalse:
        if (!InRange(I.A, Len))
          return Bad(Fn, PC, "jump target");
        break;
      case Op::MakeClosure:
        if (!InRange(I.A, NumFns) || I.B < 0)
          return Bad(Fn, PC, "closure function index");
        break;
      case Op::Cast:
        if (!InRange(I.A, Prog.Casts.size()))
          return Bad(Fn, PC, "cast-table index");
        break;
      case Op::Prim:
        if (!InRange(I.A, Prims))
          return Bad(Fn, PC, "primitive index");
        break;
      case Op::TupleProjDyn:
        if (I.A < 0 || !InRange(I.B, Prog.Sites.size()))
          return Bad(Fn, PC, "dyn-site index");
        break;
      case Op::UnboxDyn:
      case Op::BoxSetDyn:
      case Op::VecRefDyn:
      case Op::VecSetDyn:
      case Op::VecLenDyn:
        if (!InRange(I.A, Prog.Sites.size()))
          return Bad(Fn, PC, "dyn-site index");
        break;
      case Op::AppDyn:
        if (I.A < 0 || !InRange(I.B, Prog.Sites.size()))
          return Bad(Fn, PC, "dyn-site index");
        break;
      case Op::BoxNewMono:
      case Op::MakeVectorMono:
        if (!InRange(I.A, Prog.TypePool.size()))
          return Bad(Fn, PC, "type-pool index");
        break;
      case Op::BoxGetMono:
      case Op::BoxSetMono:
      case Op::VecRefMono:
      case Op::VecSetMono:
        if (!InRange(I.A, Prog.TypePool.size()) ||
            !InRange(I.B, Prog.Sites.size()))
          return Bad(Fn, PC, "mono type/site index");
        break;
      case Op::LocalGetGet:
        if (!InRange(I.A, Fn.NumLocals) || !InRange(I.B, Fn.NumLocals))
          return Bad(Fn, PC, "fused local slot");
        break;
      case Op::LocalGetCall:
      case Op::LocalGetTailCall:
        if (!InRange(I.A, Fn.NumLocals) || I.B < 0)
          return Bad(Fn, PC, "fused local slot");
        break;
      case Op::PushIntPrim:
        if (!InRange(I.B, Prims))
          return Bad(Fn, PC, "fused primitive index");
        break;
      case Op::PrimJumpIfFalse:
        if (!InRange(I.A, Prims) || !InRange(I.B, Len))
          return Bad(Fn, PC, "fused prim/jump target");
        break;
      case Op::PushFloatPrim:
        if (!InRange(I.A, Prog.FloatPool.size()) || !InRange(I.B, Prims))
          return Bad(Fn, PC, "fused float/prim index");
        break;
      case Op::Call:
      case Op::TailCall:
      case Op::MakeTuple:
      case Op::TupleProj:
      case Op::FreeGet:
      case Op::ClosureInitFree:
        if (I.A < 0)
          return Bad(Fn, PC, "negative operand");
        break;
      default:
        break;
      }
      // Fused handlers skip the trailing placeholder with an extra ++PC,
      // so a fused opcode must never be the last instruction.
      if (static_cast<uint8_t>(I.Code) >= FirstFusedOp && PC + 1 == Len)
        return Bad(Fn, PC, "fused opcode at end of function");
    }
    // Execution must not fall off the end of the code array.
    switch (Fn.Code[Len - 1].Code) {
    case Op::Return:
    case Op::Halt:
    case Op::Jump:
    case Op::TailCall:
      break;
    default:
      return Bad(Fn, Len - 1, "function does not end in a terminator");
    }
  }
  if (Prog.MainFunction >= NumFns) {
    Error = "main-function index out of range";
    return false;
  }
  return true;
}

} // namespace

bool store::loadProgram(const ImageSections &S, TypeContext &TypesCtx,
                        CoercionFactory &Coercions, VMProgram &Out,
                        std::string &Error) {
  auto Fail = [&](std::string Why) {
    Error = std::move(Why);
    return false;
  };

  // Meta.
  Reader Meta(S.Meta);
  uint8_t ModeByte = Meta.u8();
  uint32_t Main = Meta.u32();
  if (!Meta.atEnd() || ModeByte >= NumCastModes)
    return Fail("meta section malformed");
  Out.Mode = static_cast<CastMode>(ModeByte);
  Out.MainFunction = Main;

  // Strings: re-intern in the factory's label arena.
  Reader Str(S.Strings);
  uint32_t NumStrings = Str.u32();
  if (NumStrings > Str.remaining() / 4 + 1)
    return Fail("string count exceeds section");
  std::vector<const std::string *> Strings;
  Strings.reserve(NumStrings);
  for (uint32_t I = 0; I != NumStrings; ++I) {
    std::string_view V = Str.str();
    if (!Str.ok())
      return Fail("string table truncated");
    Strings.push_back(Coercions.internLabel(V));
  }
  if (!Str.atEnd())
    return Fail("trailing bytes in string section");
  auto stringAt = [&](uint32_t Ref) -> const std::string * {
    return Ref < Strings.size() ? Strings[Ref] : nullptr;
  };

  // Types: rebuild through the context's smart constructors; children
  // always precede parents, so one forward pass suffices.
  Reader Ty(S.Types);
  uint32_t NumTypes = Ty.u32();
  if (NumTypes > Ty.remaining() / 9 + 1)
    return Fail("type count exceeds section");
  std::vector<const Type *> Types;
  Types.reserve(NumTypes);
  for (uint32_t I = 0; I != NumTypes; ++I) {
    uint8_t Kind = Ty.u8();
    uint32_t VarIdx = Ty.u32();
    uint32_t NumChildren = Ty.u32();
    if (!Ty.ok() || NumChildren > Ty.remaining() / 4)
      return Fail("type record truncated");
    std::vector<const Type *> Children;
    Children.reserve(NumChildren);
    for (uint32_t C = 0; C != NumChildren; ++C) {
      uint32_t Ref = Ty.u32();
      if (Ref >= I)
        return Fail("type child reference out of order");
      Children.push_back(Types[Ref]);
    }
    const Type *Built = nullptr;
    switch (static_cast<TypeKind>(Kind)) {
    case TypeKind::Dyn:
      Built = NumChildren == 0 ? TypesCtx.dyn() : nullptr;
      break;
    case TypeKind::Unit:
      Built = NumChildren == 0 ? TypesCtx.unit() : nullptr;
      break;
    case TypeKind::Bool:
      Built = NumChildren == 0 ? TypesCtx.boolean() : nullptr;
      break;
    case TypeKind::Int:
      Built = NumChildren == 0 ? TypesCtx.integer() : nullptr;
      break;
    case TypeKind::Char:
      Built = NumChildren == 0 ? TypesCtx.character() : nullptr;
      break;
    case TypeKind::Float:
      Built = NumChildren == 0 ? TypesCtx.floating() : nullptr;
      break;
    case TypeKind::Function:
      if (NumChildren >= 1) {
        const Type *Result = Children.back();
        Children.pop_back();
        Built = TypesCtx.function(std::move(Children), Result);
      }
      break;
    case TypeKind::Tuple:
      if (NumChildren >= 1)
        Built = TypesCtx.tuple(std::move(Children));
      break;
    case TypeKind::Box:
      if (NumChildren == 1)
        Built = TypesCtx.box(Children[0]);
      break;
    case TypeKind::Vect:
      if (NumChildren == 1)
        Built = TypesCtx.vect(Children[0]);
      break;
    case TypeKind::Rec:
      if (NumChildren == 1)
        Built = TypesCtx.rec(Children[0]);
      break;
    case TypeKind::Var:
      if (NumChildren == 0)
        Built = TypesCtx.var(VarIdx);
      break;
    }
    if (!Built)
      return Fail("malformed type record " + std::to_string(I));
    Types.push_back(Built);
  }
  if (!Ty.atEnd())
    return Fail("trailing bytes in type section");
  auto typeAt = [&](uint32_t Ref) -> const Type * {
    return Ref < Types.size() ? Types[Ref] : nullptr;
  };

  // Coercions: three passes over the records — μ placeholders first so
  // back edges resolve, then the acyclic rest in topological order, then
  // μ body sealing.
  Reader Co(S.Coercions);
  uint32_t NumCoercions = Co.u32();
  if (NumCoercions > Co.remaining() / 13 + 1)
    return Fail("coercion count exceeds section");
  struct CoRecord {
    uint8_t Kind;
    uint32_t TyRef, LabelRef;
    std::vector<uint32_t> Parts;
  };
  std::vector<CoRecord> Records;
  Records.reserve(NumCoercions);
  for (uint32_t I = 0; I != NumCoercions; ++I) {
    CoRecord R;
    R.Kind = Co.u8();
    R.TyRef = Co.u32();
    R.LabelRef = Co.u32();
    uint32_t NumParts = Co.u32();
    if (!Co.ok() || NumParts > Co.remaining() / 4)
      return Fail("coercion record truncated");
    R.Parts.reserve(NumParts);
    for (uint32_t P = 0; P != NumParts; ++P)
      R.Parts.push_back(Co.u32());
    Records.push_back(std::move(R));
  }
  if (!Co.atEnd())
    return Fail("trailing bytes in coercion section");

  std::vector<const Coercion *> Nodes(NumCoercions, nullptr);
  std::vector<Coercion *> Placeholders(NumCoercions, nullptr);
  for (uint32_t I = 0; I != NumCoercions; ++I)
    if (Records[I].Kind == static_cast<uint8_t>(CoercionKind::Rec)) {
      if (Records[I].Parts.size() != 1 || Records[I].TyRef != NoRef ||
          Records[I].LabelRef != NoRef)
        return Fail("malformed μ record");
      Placeholders[I] = Coercions.newRecForLoad();
      Nodes[I] = Placeholders[I];
    }
  for (uint32_t I = 0; I != NumCoercions; ++I) {
    const CoRecord &R = Records[I];
    if (Placeholders[I])
      continue;
    std::vector<const Coercion *> Parts;
    Parts.reserve(R.Parts.size());
    for (uint32_t Ref : R.Parts) {
      // Non-μ parts must already exist: either built earlier in this
      // pass or a μ placeholder (the only legal forward reference).
      if (Ref >= NumCoercions || !Nodes[Ref] || (Ref >= I && !Placeholders[Ref]))
        return Fail("coercion part reference out of order");
      Parts.push_back(Nodes[Ref]);
    }
    const Type *NodeTy = R.TyRef == NoRef ? nullptr : typeAt(R.TyRef);
    if (R.TyRef != NoRef && !NodeTy)
      return Fail("coercion type reference out of range");
    const std::string *NodeLabel =
        R.LabelRef == NoRef ? nullptr : stringAt(R.LabelRef);
    if (R.LabelRef != NoRef && !NodeLabel)
      return Fail("coercion label reference out of range");
    std::string BuildError;
    const Coercion *Built = Coercions.buildForLoad(
        static_cast<CoercionKind>(R.Kind), NodeTy, NodeLabel, Parts,
        BuildError);
    if (!Built)
      return Fail("coercion record " + std::to_string(I) + ": " + BuildError);
    Nodes[I] = Built;
  }
  for (uint32_t I = 0; I != NumCoercions; ++I) {
    if (!Placeholders[I])
      continue;
    uint32_t BodyRef = Records[I].Parts[0];
    if (BodyRef >= NumCoercions || !Nodes[BodyRef])
      return Fail("μ body reference out of range");
    if (!Coercions.sealRecForLoad(Placeholders[I], Nodes[BodyRef]))
      return Fail("μ node sealed twice");
  }
  auto coercionAt = [&](uint32_t Ref) -> const Coercion * {
    return Ref < Nodes.size() ? Nodes[Ref] : nullptr;
  };

  // Code.
  Reader Code(S.Code);
  uint32_t NumFns = Code.u32();
  if (NumFns > Code.remaining() / 16 + 1)
    return Fail("function count exceeds section");
  for (uint32_t F = 0; F != NumFns; ++F) {
    VMFunction Fn;
    Fn.Name = std::string(Code.str());
    Fn.NumParams = Code.u32();
    Fn.NumLocals = Code.u32();
    uint32_t Len = Code.u32();
    if (!Code.ok() || Len > Code.remaining() / 9)
      return Fail("function record truncated");
    Fn.Code.reserve(Len);
    for (uint32_t I = 0; I != Len; ++I) {
      uint8_t OpByte = Code.u8();
      if (OpByte >= NumOpcodes)
        return Fail("unknown opcode " + std::to_string(OpByte));
      Instr Ins;
      Ins.Code = static_cast<Op>(OpByte);
      Ins.A = Code.i32();
      Ins.B = Code.i32();
      Fn.Code.push_back(Ins);
    }
    Out.Functions.push_back(std::move(Fn));
  }
  uint32_t NumCasts = Code.u32();
  if (NumCasts > Code.remaining() / 16 + 1)
    return Fail("cast count exceeds section");
  for (uint32_t I = 0; I != NumCasts; ++I) {
    CastDescriptor Cast;
    uint32_t SrcRef = Code.u32(), TgtRef = Code.u32();
    uint32_t LabelRef = Code.u32(), CoRef = Code.u32();
    if (!Code.ok())
      return Fail("cast table truncated");
    Cast.Src = typeAt(SrcRef);
    Cast.Tgt = typeAt(TgtRef);
    Cast.Label = LabelRef == NoRef ? nullptr : stringAt(LabelRef);
    if (!Cast.Src || !Cast.Tgt || (LabelRef != NoRef && !Cast.Label))
      return Fail("cast reference out of range");
    if (CoRef != NoRef) {
      Cast.C = coercionAt(CoRef);
      if (!Cast.C)
        return Fail("cast coercion reference out of range");
      if (!CoercionFactory::isNormalForm(Cast.C))
        return Fail("cast coercion not in normal form");
      // Seed the make() memo: re-making this cast must return the loaded
      // node with zero fresh allocations (the interning invariant).
      if (Cast.Label)
        Coercions.seedMakeCache(Cast.Src, Cast.Tgt, Cast.Label, Cast.C);
    }
    Out.Casts.push_back(Cast);
  }
  uint32_t NumSites = Code.u32();
  if (NumSites > Code.remaining() / 4 + 1)
    return Fail("site count exceeds section");
  for (uint32_t I = 0; I != NumSites; ++I) {
    const std::string *Label = stringAt(Code.u32());
    if (!Code.ok() || !Label)
      return Fail("dyn-site label reference out of range");
    Out.Sites.push_back(DynSite{Label});
  }
  uint32_t NumPoolTypes = Code.u32();
  if (NumPoolTypes > Code.remaining() / 4 + 1)
    return Fail("type-pool count exceeds section");
  for (uint32_t I = 0; I != NumPoolTypes; ++I) {
    const Type *PoolTy = typeAt(Code.u32());
    if (!Code.ok() || !PoolTy)
      return Fail("type-pool reference out of range");
    Out.TypePool.push_back(PoolTy);
  }
  uint32_t NumFloats = Code.u32();
  if (NumFloats > Code.remaining() / 8 + 1)
    return Fail("float-pool count exceeds section");
  for (uint32_t I = 0; I != NumFloats; ++I)
    Out.FloatPool.push_back(Code.f64());
  uint32_t NumInts = Code.u32();
  if (!Code.ok() || NumInts > Code.remaining() / 8 + 1)
    return Fail("int-pool count exceeds section");
  for (uint32_t I = 0; I != NumInts; ++I)
    Out.IntPool.push_back(Code.i64());
  uint32_t NumGlobals = Code.u32();
  if (!Code.ok() || NumGlobals > Code.remaining() / 4 + 1)
    return Fail("global count exceeds section");
  for (uint32_t I = 0; I != NumGlobals; ++I) {
    std::string_view Name = Code.str();
    if (!Code.ok())
      return Fail("global name truncated");
    Out.GlobalNames.emplace_back(Name);
  }
  if (!Code.atEnd())
    return Fail("trailing bytes in code section");

  return validateCode(Out, Error);
}
