#include "store/Store.h"

#include "coercions/CoercionFactory.h"
#include "types/TypeContext.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

using namespace grift;
using namespace grift::store;

namespace {

/// Entries larger than this are treated as corrupt before mapping —
/// an "oversized section" at file granularity (a legitimate image for a
/// request-sized program is a few KiB to a few MiB).
constexpr uint64_t MaxImageBytes = 1ull << 30;

/// FNV-1a, the same construction Job::jobKey uses.
uint64_t fnv1a(uint64_t Hash, const void *Data, size_t Size) {
  const auto *P = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I != Size; ++I) {
    Hash ^= P[I];
    Hash *= 1099511628211ull;
  }
  return Hash;
}

std::string hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof Buf, "%016llx", static_cast<unsigned long long>(V));
  return Buf;
}

/// Parses a `<16-hex>.img` entry name back to its key; false otherwise.
bool parseEntryName(const char *Name, uint64_t &Key) {
  if (std::strlen(Name) != 20 || std::strcmp(Name + 16, ".img") != 0)
    return false;
  Key = 0;
  for (int I = 0; I != 16; ++I) {
    char C = Name[I];
    uint64_t Digit;
    if (C >= '0' && C <= '9')
      Digit = C - '0';
    else if (C >= 'a' && C <= 'f')
      Digit = C - 'a' + 10;
    else
      return false;
    Key = Key << 4 | Digit;
  }
  return true;
}

bool isTmpName(const char *Name) {
  size_t Len = std::strlen(Name);
  return Len > 4 && std::strcmp(Name + Len - 4, ".tmp") == 0;
}

/// Full write(2) loop; short kernel writes are retried, injected short
/// writes are not (they model a crash mid-write).
bool writeAll(int Fd, const char *Data, size_t Size) {
  while (Size != 0) {
    ssize_t N = ::write(Fd, Data, Size);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Size -= size_t(N);
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// MappedImage
//===----------------------------------------------------------------------===//

MappedImage::MappedImage(MappedImage &&Other) noexcept
    : Data(Other.Data), Size(Other.Size) {
  Other.Data = nullptr;
  Other.Size = 0;
}

MappedImage &MappedImage::operator=(MappedImage &&Other) noexcept {
  if (this != &Other) {
    this->~MappedImage();
    Data = Other.Data;
    Size = Other.Size;
    Other.Data = nullptr;
    Other.Size = 0;
  }
  return *this;
}

MappedImage::~MappedImage() {
  if (Data)
    ::munmap(Data, Size);
}

//===----------------------------------------------------------------------===//
// Store
//===----------------------------------------------------------------------===//

Store::Store(StoreConfig C) : Config(std::move(C)) {
  if (!enabled())
    return;
  // Best-effort recursive-free mkdir: the configured dir plus nothing
  // else (operators create parents; the common case is one level).
  ::mkdir(Config.Dir.c_str(), 0755);
}

uint64_t Store::key(std::string_view Source, CastMode Mode, bool Optimize) {
  uint64_t Hash = 1469598103934665603ull; // FNV offset basis
  Hash = fnv1a(Hash, Source.data(), Source.size());
  uint8_t ModeByte = static_cast<uint8_t>(Mode);
  uint8_t OptByte = Optimize ? 1 : 0;
  uint32_t Version = FormatVersion;
  Hash = fnv1a(Hash, &ModeByte, 1);
  Hash = fnv1a(Hash, &OptByte, 1);
  Hash = fnv1a(Hash, &Version, sizeof Version);
  // Key 0 is reserved as "no expectation" in validateImage.
  return Hash ? Hash : 1;
}

std::string Store::entryPath(uint64_t Key) const {
  return Config.Dir + "/" + hex16(Key) + ".img";
}

LoadStatus Store::mapEntry(const std::string &Path, MappedImage &Out) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return errno == ENOENT ? LoadStatus::Missing : LoadStatus::IOError;
  struct stat St;
  if (::fstat(Fd, &St) != 0 || !S_ISREG(St.st_mode)) {
    ::close(Fd);
    return LoadStatus::IOError;
  }
  if (St.st_size == 0) {
    ::close(Fd);
    return LoadStatus::TruncatedHeader;
  }
  if (uint64_t(St.st_size) > MaxImageBytes) {
    ::close(Fd);
    return LoadStatus::BadSectionTable; // oversized entry
  }
  size_t Size = size_t(St.st_size);
  uint64_t BitIndex = 0;
  bool Flip = false;
  if (Config.Faults) {
    // The injector's counters are plain fields; serialize consults from
    // concurrent loaders on the same mutex the write path holds.
    std::lock_guard<std::mutex> Lock(WriteMu);
    Flip = Config.Faults->shouldFlipReadBit(BitIndex);
  }
  // A fault-armed read maps a private copy-on-write view so the injected
  // flip corrupts only what this reader sees, not the file.
  void *P = ::mmap(nullptr, Size, Flip ? PROT_READ | PROT_WRITE : PROT_READ,
                   Flip ? MAP_PRIVATE : MAP_SHARED, Fd, 0);
  ::close(Fd);
  if (P == MAP_FAILED)
    return LoadStatus::IOError;
  Out.Data = static_cast<uint8_t *>(P);
  Out.Size = Size;
  if (Flip) {
    BitIndex %= uint64_t(Size) * 8;
    Out.Data[BitIndex / 8] ^= uint8_t(1u << (BitIndex % 8));
  }
  return LoadStatus::Hit;
}

void Store::noteMiss(LoadStatus Status, std::string Reason, bool IsCorrupt) {
  Misses.fetch_add(1, std::memory_order_relaxed);
  if (IsCorrupt)
    Corrupt.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(WriteMu);
  LastStatus = Status;
  LastReason = std::move(Reason);
}

void Store::removeEntry(const std::string &Path) { ::unlink(Path.c_str()); }

bool Store::load(uint64_t Key, TypeContext &Types, CoercionFactory &Coercions,
                 VMProgram &Out) {
  if (!enabled())
    return false;
  std::string Path = entryPath(Key);
  MappedImage Img;
  LoadStatus St = mapEntry(Path, Img);
  if (St == LoadStatus::Missing || St == LoadStatus::IOError) {
    // Nothing on disk (or the environment failed us) — a plain miss,
    // nothing to delete.
    noteMiss(St, St == LoadStatus::Missing ? "" : "open/map failed", false);
    return false;
  }
  std::string Reason;
  ImageSections Secs;
  if (St == LoadStatus::Hit)
    St = validateImage(Img.data(), Img.size(), Key, Secs, Reason);
  if (St != LoadStatus::Hit) {
    // Structurally bad entry: count it, remove it, recompile over it.
    noteMiss(St, std::move(Reason), true);
    removeEntry(Path);
    return false;
  }
  VMProgram Prog;
  if (!loadProgram(Secs, Types, Coercions, Prog, Reason)) {
    noteMiss(LoadStatus::BadPayload, std::move(Reason), true);
    removeEntry(Path);
    return false;
  }
  Out = std::move(Prog);
  Hits.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Store::writeAtomic(const std::string &Path, const std::string &Bytes) {
  std::string Tmp = Config.Dir + "/." +
                    std::to_string(uint64_t(::getpid())) + "." +
                    std::to_string(TmpSeq.fetch_add(1)) + ".tmp";
  int Fd = ::open(Tmp.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (Fd < 0)
    return false;
  size_t Size = Bytes.size();
  bool Torn = Config.Faults && Config.Faults->shouldShortWrite();
  if (Torn)
    Size /= 2; // model a crash mid-write: bytes stop, nothing cleans up
  bool Ok = writeAll(Fd, Bytes.data(), Size) && !Torn;
  if (Ok) {
    bool FsyncFailed = Config.Faults && Config.Faults->shouldFailFsync();
    if (FsyncFailed || ::fsync(Fd) != 0)
      Ok = false;
  }
  if (::close(Fd) != 0)
    Ok = false;
  if (!Ok) {
    // A torn write deliberately leaves its temp file behind, exactly as
    // a crash would — verifyAll() sweeps strays. Clean failures clean up.
    if (!Torn)
      ::unlink(Tmp.c_str());
    return false;
  }
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    return false;
  }
  // Make the rename itself durable (best-effort; a lost rename after a
  // crash is just a cold start).
  int DirFd = ::open(Config.Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (DirFd >= 0) {
    ::fsync(DirFd);
    ::close(DirFd);
  }
  return true;
}

bool Store::put(uint64_t Key, const VMProgram &Prog) {
  if (!enabled())
    return false;
  std::string Image = serializeProgram(Prog, Key);
  if (Config.MaxBytes && Image.size() > Config.MaxBytes)
    return false; // could never survive eviction anyway
  std::lock_guard<std::mutex> Lock(WriteMu);
  std::string Path = entryPath(Key);
  if (!writeAtomic(Path, Image))
    return false;
  evictToCap(Path);
  return true;
}

void Store::evictToCap(const std::string &JustWritten) {
  // Caller holds WriteMu.
  if (!Config.MaxBytes)
    return;
  DIR *D = ::opendir(Config.Dir.c_str());
  if (!D)
    return;
  struct Entry {
    std::string Path;
    uint64_t Size;
    uint64_t MTimeNs; ///< nanosecond mtime: bursts of puts within one
                      ///< second must still sort in write order
  };
  std::vector<Entry> Entries;
  uint64_t Total = 0;
  while (struct dirent *E = ::readdir(D)) {
    uint64_t Key;
    if (!parseEntryName(E->d_name, Key))
      continue;
    std::string Path = Config.Dir + "/" + E->d_name;
    struct stat St;
    if (::stat(Path.c_str(), &St) != 0 || !S_ISREG(St.st_mode))
      continue;
    uint64_t MTimeNs = uint64_t(St.st_mtim.tv_sec) * 1000000000ull +
                       uint64_t(St.st_mtim.tv_nsec);
    Entries.push_back({std::move(Path), uint64_t(St.st_size), MTimeNs});
    Total += uint64_t(St.st_size);
  }
  ::closedir(D);
  if (Total <= Config.MaxBytes)
    return;
  // Oldest first, with the path as a deterministic secondary key:
  // nanosecond mtimes can still collide (coarse filesystem clocks,
  // same-tick put bursts), and with an unstable sort and no tie-break
  // the victim among equal-mtime entries would depend on readdir order.
  std::sort(Entries.begin(), Entries.end(),
            [](const Entry &A, const Entry &B) {
              if (A.MTimeNs != B.MTimeNs)
                return A.MTimeNs < B.MTimeNs;
              return A.Path < B.Path;
            });
  // Never evict the entry just written — serving it beats strict cap
  // adherence for a single program — which an mtime tie could otherwise
  // sort anywhere, so it is exempted by identity, not by position.
  for (size_t I = 0; I != Entries.size() && Total > Config.MaxBytes; ++I) {
    if (Entries[I].Path == JustWritten)
      continue;
    ::unlink(Entries[I].Path.c_str());
    Total -= Entries[I].Size;
    Evicted.fetch_add(1, std::memory_order_relaxed);
  }
}

Store::VerifyResult Store::verifyAll() {
  VerifyResult R;
  if (!enabled())
    return R;
  DIR *D = ::opendir(Config.Dir.c_str());
  if (!D)
    return R;
  std::vector<std::pair<std::string, uint64_t>> Images; // path, key
  std::vector<std::string> Tmps;
  while (struct dirent *E = ::readdir(D)) {
    uint64_t Key;
    if (parseEntryName(E->d_name, Key))
      Images.emplace_back(Config.Dir + "/" + E->d_name, Key);
    else if (isTmpName(E->d_name))
      Tmps.push_back(Config.Dir + "/" + E->d_name);
  }
  ::closedir(D);
  for (const std::string &Tmp : Tmps) {
    ::unlink(Tmp.c_str());
    ++R.TmpRemoved;
  }
  for (const auto &[Path, Key] : Images) {
    MappedImage Img;
    bool Ok = mapEntry(Path, Img) == LoadStatus::Hit;
    std::string Reason;
    ImageSections Secs;
    if (Ok)
      Ok = validateImage(Img.data(), Img.size(), Key, Secs, Reason) ==
           LoadStatus::Hit;
    if (Ok) {
      // Deep check: the payload must deserialize against a scratch
      // engine, not merely checksum.
      TypeContext Types;
      CoercionFactory Coercions(Types);
      VMProgram Prog;
      Ok = loadProgram(Secs, Types, Coercions, Prog, Reason);
    }
    if (Ok) {
      ++R.Valid;
    } else {
      ::unlink(Path.c_str());
      ++R.Removed;
    }
  }
  return R;
}

LoadStatus Store::lastStatus() const {
  std::lock_guard<std::mutex> Lock(WriteMu);
  return LastStatus;
}

std::string Store::lastReason() const {
  std::lock_guard<std::mutex> Lock(WriteMu);
  return LastReason;
}

StoreStats Store::stats() const {
  StoreStats S;
  S.Hits = Hits.load(std::memory_order_relaxed);
  S.Misses = Misses.load(std::memory_order_relaxed);
  S.Corrupt = Corrupt.load(std::memory_order_relaxed);
  S.Evicted = Evicted.load(std::memory_order_relaxed);
  return S;
}
