//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization of a compiled VMProgram — bytecode, the interned type
/// table, blame labels, and the normal-form coercion graph — to and from
/// the store image format (Format.h).
///
/// Loading re-interns everything through the owning TypeContext and
/// CoercionFactory instead of trusting raw pointers, so a loaded program
/// obeys the same invariants as a freshly compiled one: structural
/// equality is pointer equality, every cast root is in normal form, and
/// the make() memo is seeded so re-making a loaded cast allocates zero
/// new nodes. μ (Rec) coercions — the only cycles in the graph — load in
/// three passes: allocate all μ placeholders, build the acyclic rest in
/// topological order, then seal each μ body.
///
/// Every byte of payload is treated as untrusted even though the caller
/// has already CRC-validated it: reads are bounds-checked, every table
/// index is range-checked, and every bytecode operand that indexes a
/// program table is validated against that table's loaded size. A
/// structural violation returns false with a reason, never UB.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_STORE_SERIALIZE_H
#define GRIFT_STORE_SERIALIZE_H

#include "store/Format.h"
#include "vm/Bytecode.h"

#include <string>

namespace grift {
class TypeContext;
class CoercionFactory;
} // namespace grift

namespace grift::store {

/// One section's payload bytes inside a mapped image.
struct Span {
  const uint8_t *Data = nullptr;
  size_t Size = 0;
};

/// The validated sections of an image, one span per SectionId.
struct ImageSections {
  Span Meta, Strings, Types, Coercions, Code;
};

/// Validates header, section table, and every section CRC of the image
/// at [Data, Data+Size) without interpreting any payload byte. On
/// LoadStatus::Hit, \p Out holds the five section spans. \p ExpectKeyHash
/// guards against a mixed-up file: non-zero and != header key is a
/// KeyMismatch. \p Reason carries a human-readable diagnostic on failure.
LoadStatus validateImage(const uint8_t *Data, size_t Size,
                         uint64_t ExpectKeyHash, ImageSections &Out,
                         std::string &Reason);

/// Serializes \p Prog into a complete image (header, section table,
/// payloads, CRCs) keyed by \p KeyHash.
std::string serializeProgram(const VMProgram &Prog, uint64_t KeyHash);

/// Deserializes a validated image into \p Out, re-interning types and
/// labels through \p TypesCtx / \p Coercions and rebuilding the coercion
/// graph through the factory's smart constructors. Returns false with
/// \p Error set on any structural violation (the caller maps this to
/// LoadStatus::BadPayload and a recompile).
bool loadProgram(const ImageSections &S, TypeContext &TypesCtx,
                 CoercionFactory &Coercions, VMProgram &Out,
                 std::string &Error);

} // namespace grift::store

#endif // GRIFT_STORE_SERIALIZE_H
