//===----------------------------------------------------------------------===//
///
/// \file
/// A crash-only, content-addressed on-disk cache of compiled programs.
///
/// Entries live under a cache directory as `<16-hex-key>.img`, where the
/// key hashes (source, cast mode, optimize flag, format version). Writes
/// go through a private temp file + fsync + atomic rename, so a reader
/// never observes a half-written entry and a crash at any instant leaves
/// either the old image, the new image, or a stray `.tmp` file — never a
/// torn visible entry. Reads mmap the file and fully validate header,
/// section table, and per-section CRCs before a single payload byte is
/// interpreted; any validation failure is a counted structured miss that
/// deletes the bad entry and falls back to the in-memory compile path.
/// Nothing in this layer aborts the process.
///
/// Eviction is a size-capped oldest-first scan, itself crash-safe: each
/// eviction is one unlink, and a concurrently mapped image stays valid
/// after its file is unlinked (POSIX keeps the mapping alive).
///
/// Fault injection: an optional FaultInjector (not owned) supplies the
/// file-I/O fault family — short write, fsync failure, and a single bit
/// flip on read. The bit flip is applied to a MAP_PRIVATE copy, so the
/// reader observes the corruption while the file on disk stays intact,
/// exactly like a decaying sector read.
///
/// Thread-safety: load/put may be called from any number of EnginePool
/// workers concurrently; counters are atomic, and the write/evict path
/// serializes on an internal mutex. Deserialized programs are re-interned
/// into the *caller's* TypeContext/CoercionFactory, preserving the
/// engine-per-thread affinity rules.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_STORE_STORE_H
#define GRIFT_STORE_STORE_H

#include "runtime/FaultInjector.h"
#include "runtime/Mode.h"
#include "store/Serialize.h"

#include <atomic>
#include <mutex>
#include <string>

namespace grift::store {

struct StoreConfig {
  /// Cache directory; empty disables the store entirely.
  std::string Dir;
  /// Eviction cap on the summed size of entries (0 = uncapped).
  uint64_t MaxBytes = 256ull << 20;
  /// Optional deterministic file-I/O faults (not owned).
  FaultInjector *Faults = nullptr;
};

struct StoreStats {
  uint64_t Hits = 0;    ///< programs served from a validated image
  uint64_t Misses = 0;  ///< every lookup that fell back to a compile
  uint64_t Corrupt = 0; ///< misses caused by a failed validation
  uint64_t Evicted = 0; ///< entries removed by the size cap
};

/// RAII read-only mapping of one entry file.
class MappedImage {
public:
  MappedImage() = default;
  MappedImage(MappedImage &&Other) noexcept;
  MappedImage &operator=(MappedImage &&Other) noexcept;
  MappedImage(const MappedImage &) = delete;
  MappedImage &operator=(const MappedImage &) = delete;
  ~MappedImage();

  const uint8_t *data() const { return Data; }
  size_t size() const { return Size; }
  explicit operator bool() const { return Data != nullptr; }

private:
  friend class Store;
  uint8_t *Data = nullptr;
  size_t Size = 0;
};

class Store {
public:
  explicit Store(StoreConfig Config);

  bool enabled() const { return !Config.Dir.empty(); }
  const std::string &dir() const { return Config.Dir; }

  /// Content key for a compile request. Folds in FormatVersion so a
  /// serializer change cold-starts cleanly instead of mass-invalidating
  /// via read-time version skew.
  static uint64_t key(std::string_view Source, CastMode Mode, bool Optimize);

  /// Full warm-start lookup: map, validate, deserialize into \p Out
  /// (re-interning through \p Types / \p Coercions). True only on a
  /// validated hit. Every other outcome counts as a miss — corrupt
  /// entries additionally count as corrupt and are deleted so the
  /// follow-up put() replaces them.
  bool load(uint64_t Key, TypeContext &Types, CoercionFactory &Coercions,
            VMProgram &Out);

  /// Serializes \p Prog and publishes it under \p Key via temp + fsync +
  /// rename, then enforces the size cap. False when the write could not
  /// complete (the store is then simply not warmed — never an error for
  /// the caller).
  bool put(uint64_t Key, const VMProgram &Prog);

  /// Offline integrity sweep (griftc --store-verify, crash-recovery CI):
  /// deep-validates every entry against a scratch engine, removes the
  /// invalid ones and any stray temp files left by a crash.
  struct VerifyResult {
    uint64_t Valid = 0;
    uint64_t Removed = 0;
    uint64_t TmpRemoved = 0;
  };
  VerifyResult verifyAll();

  /// Outcome of the most recent non-hit load() (diagnostics for tools
  /// and tests; mutex-guarded snapshot).
  LoadStatus lastStatus() const;
  std::string lastReason() const;

  StoreStats stats() const;

private:
  std::string entryPath(uint64_t Key) const;
  LoadStatus mapEntry(const std::string &Path, MappedImage &Out);
  bool writeAtomic(const std::string &Path, const std::string &Bytes);
  void removeEntry(const std::string &Path);
  void evictToCap(const std::string &JustWritten);
  void noteMiss(LoadStatus Status, std::string Reason, bool IsCorrupt);

  StoreConfig Config;
  mutable std::mutex WriteMu;
  std::atomic<uint64_t> Hits{0}, Misses{0}, Corrupt{0}, Evicted{0};
  std::atomic<uint64_t> TmpSeq{0};
  LoadStatus LastStatus = LoadStatus::Missing; ///< guarded by WriteMu
  std::string LastReason;                      ///< guarded by WriteMu
};

} // namespace grift::store

#endif // GRIFT_STORE_STORE_H
