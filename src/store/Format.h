//===----------------------------------------------------------------------===//
///
/// \file
/// On-disk image format for the persistent compiled-program store.
///
/// A store entry is a single file:
///
///   +--------------------+  offset 0
///   | ImageHeader        |  fixed size, self-checksummed
///   +--------------------+
///   | SectionEntry[N]    |  N = Header.SectionCount, covered by TableCRC
///   +--------------------+
///   | section payloads   |  each covered by its entry's CRC32
///   +--------------------+
///
/// The header and the section table are fully validated — magic, format
/// version, declared file size, section count bound, header CRC, table
/// CRC, per-section bounds and CRCs — before ANY payload byte is
/// interpreted. Every validation failure is a structured, non-fatal
/// verdict (LoadStatus + reason string): the store treats it as a miss,
/// deletes the entry, and falls back to a fresh compile. Nothing in this
/// layer aborts, throws past its API, or reads out of bounds.
///
/// Versioning policy: FormatVersion names the exact serializer encoding,
/// including the bytecode opcode numbering it embeds. Any change to the
/// VMProgram encoding, the type/coercion section layouts, or the opcode
/// set MUST bump it; a version mismatch is a miss (never a migration),
/// so skew after a binary upgrade costs one recompile per program.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_STORE_FORMAT_H
#define GRIFT_STORE_FORMAT_H

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace grift::store {

/// "GRFTIMG\0" little-endian.
constexpr uint64_t ImageMagic = 0x00474D4954465247ull;

/// Bump on ANY encoding change (see the versioning policy above).
constexpr uint32_t FormatVersion = 1;

/// Section identifiers. Order in the file is not significant; the table
/// is searched by id.
enum class SectionId : uint32_t {
  Meta = 1,      ///< mode, main function, table sizes
  Strings = 2,   ///< interned blame labels and names
  Types = 3,     ///< interned type table, topologically ordered
  Coercions = 4, ///< normal-form coercion graph (μ back-edges allowed)
  Code = 5,      ///< functions, instructions, pools, cast table
};

/// Upper bound on SectionCount: a header claiming more is corrupt, not
/// merely from the future (future versions fail the version check first).
constexpr uint32_t MaxSections = 16;

struct SectionEntry {
  uint32_t Id = 0;       ///< SectionId
  uint32_t CRC = 0;      ///< CRC-32 (IEEE) of the payload bytes
  uint64_t Offset = 0;   ///< absolute file offset of the payload
  uint64_t Size = 0;     ///< payload bytes
};
static_assert(sizeof(SectionEntry) == 24, "section entry layout is the format");

struct ImageHeader {
  uint64_t Magic = ImageMagic;
  uint32_t Version = FormatVersion;
  uint32_t SectionCount = 0;
  uint64_t KeyHash = 0;  ///< content key: hash(source, mode, optimize, version)
  uint64_t FileSize = 0; ///< total image size; truncation check
  uint32_t TableCRC = 0; ///< CRC-32 of the SectionEntry array
  uint32_t HeaderCRC = 0;///< CRC-32 of this struct with HeaderCRC zeroed
};
static_assert(sizeof(ImageHeader) == 40, "header layout is the format");

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) — the classic
/// table-driven implementation; detects all single-bit flips and all
/// burst errors up to 32 bits, which is exactly the corruption class the
/// tests inject.
inline uint32_t crc32(const void *Data, size_t Size, uint32_t Seed = 0) {
  static const uint32_t *Table = [] {
    static uint32_t T[256];
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  uint32_t C = ~Seed;
  const auto *P = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I != Size; ++I)
    C = Table[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return ~C;
}

/// Header CRC is computed with the HeaderCRC field itself zeroed.
inline uint32_t headerCRC(const ImageHeader &H) {
  ImageHeader Copy = H;
  Copy.HeaderCRC = 0;
  return crc32(&Copy, sizeof Copy);
}

/// Why a lookup did not produce a usable image. Everything except Hit is
/// a counted graceful miss.
enum class LoadStatus : uint8_t {
  Hit,             ///< header, table, and every section validated
  Missing,         ///< no entry on disk for the key
  TruncatedHeader, ///< file smaller than the fixed header
  BadMagic,
  VersionSkew,     ///< written by a different serializer version
  KeyMismatch,     ///< header key differs from the key looked up
  TruncatedFile,   ///< declared FileSize != actual size
  BadHeaderCRC,
  BadSectionTable, ///< count bound, table CRC, bounds, overlap, oversize
  BadSectionCRC,
  BadPayload,      ///< section bytes failed structural validation on load
  IOError,         ///< open/map failed for a reason other than ENOENT
};

inline const char *loadStatusName(LoadStatus S) {
  switch (S) {
  case LoadStatus::Hit:             return "hit";
  case LoadStatus::Missing:         return "missing";
  case LoadStatus::TruncatedHeader: return "truncated-header";
  case LoadStatus::BadMagic:        return "bad-magic";
  case LoadStatus::VersionSkew:     return "version-skew";
  case LoadStatus::KeyMismatch:     return "key-mismatch";
  case LoadStatus::TruncatedFile:   return "truncated-file";
  case LoadStatus::BadHeaderCRC:    return "bad-header-crc";
  case LoadStatus::BadSectionTable: return "bad-section-table";
  case LoadStatus::BadSectionCRC:   return "bad-section-crc";
  case LoadStatus::BadPayload:      return "bad-payload";
  case LoadStatus::IOError:         return "io-error";
  }
  return "?";
}

} // namespace grift::store

#endif // GRIFT_STORE_FORMAT_H
