//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark suite of the paper's Section 4, written in GTLC+ (fully
/// typed). Programs read their size parameters with `read-int`, wrap the
/// measured kernel in `(time ...)` (the paper uses internal timing so
/// setup is excluded), and print a checksum so results can be compared
/// across cast modes and configurations.
///
/// Provenance (paper Section 4.1):
///   sieve        — Gradual Typing Performance benchmarks (streams via
///                  equirecursive types)
///   n-body       — Computer Language Benchmarks Game
///   tak, ray, fft— R6RS Scheme benchmark suite
///   blackscholes — PARSEC (synthetic portfolio replaces the PARSEC input
///                  files; see DESIGN.md §5)
///   matmult, quicksort — textbook kernels
///   even/odd     — the CPS example of paper Figure 2
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_BENCH_PROGRAMS_BENCHMARKS_H
#define GRIFT_BENCH_PROGRAMS_BENCHMARKS_H

#include <string>
#include <vector>

namespace grift {

/// One benchmark program.
struct BenchProgram {
  std::string Name;
  std::string Source;       ///< fully typed GTLC+ source
  std::string BenchInput;   ///< input for benchmark-scale runs
  std::string TestInput;    ///< small input for correctness tests
  std::string TestOutput;   ///< expected program output on TestInput
};

/// All nine suite benchmarks (everything except even/odd, which is a
/// microbenchmark with its own driver).
const std::vector<BenchProgram> &allBenchmarks();

/// Looks a benchmark up by name; aborts on unknown names.
const BenchProgram &getBenchmark(const std::string &Name);

/// The even/odd CPS program of paper Figure 2 (partially typed exactly as
/// in the figure). Reads n from input.
std::string evenOddSource();

/// The quicksort of paper Figure 3: fully typed except the vector
/// parameter of sort!, which is (Vect Dyn). Reads the array length.
std::string quicksortFig3Source();

} // namespace grift

#endif // GRIFT_BENCH_PROGRAMS_BENCHMARKS_H
