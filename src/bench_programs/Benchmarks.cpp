#include "bench_programs/Benchmarks.h"

#include <cassert>

using namespace grift;

namespace {

//===----------------------------------------------------------------------===//
// even/odd (paper Figure 2)
//===----------------------------------------------------------------------===//

const char *EvenOdd = R"(
(define even? : (Dyn (Dyn -> Bool) -> Bool)
  (lambda ([n : Dyn] [k : (Dyn -> Bool)])
    (if (= n 0)
        (k #t)
        (odd? (- n 1) k))))

(define odd? : (Int (Bool -> Bool) -> Bool)
  (lambda ([n : Int] [k : (Bool -> Bool)])
    (if (= n 0)
        (k #f)
        (even? (- n 1) k))))

(define n : Int (read-int))
(define r : Bool
  (time (even? (ann n Dyn) (lambda ([b : Dyn]) (ann b Bool)))))
(print-bool r)
)";

//===----------------------------------------------------------------------===//
// quicksort — fully typed, and the Figure 3 variant with one Dyn
//===----------------------------------------------------------------------===//

// %VPARAM% is replaced by (Vect Int) or (Vect Dyn).
const char *QuicksortTemplate = R"(
(define swap! : ((Vect Int) Int Int -> ())
  (lambda ([v : (Vect Int)] [i : Int] [j : Int])
    (let ([tmp : Int (vector-ref v i)])
      (begin
        (vector-set! v i (vector-ref v j))
        (vector-set! v j tmp)))))

(define partition! : ((Vect Int) Int Int -> Int)
  (lambda ([v : (Vect Int)] [l : Int] [h : Int])
    (let ([p : Int (vector-ref v h)]
          [i : (Ref Int) (box (- l 1))])
      (begin
        (repeat (j l h)
          (when (<= (vector-ref v j) p)
            (box-set! i (+ (unbox i) 1))
            (swap! v (unbox i) j)))
        (swap! v (+ (unbox i) 1) h)
        (+ (unbox i) 1)))))

(define sort! : ((Vect Int) Int Int -> ())
  (lambda ([v : %VPARAM%] [lo : Int] [hi : Int])
    (when (< lo hi)
      (let ([pivot : Int (partition! v lo hi)])
        (begin
          (sort! v lo (- pivot 1))
          (sort! v (+ pivot 1) hi))))))

(define n : Int (read-int))
(define v : (Vect Int) (make-vector n 0))
(repeat (i 0 n) (vector-set! v i (+ i 1)))
(time (sort! v 0 (- n 1)))
(define ok : Bool
  (repeat (i 0 n) (acc : Bool #t)
    (if (= (vector-ref v i) (+ i 1)) acc #f)))
(print-bool ok)
)";

std::string quicksortWithParam(const char *Param) {
  std::string Out = QuicksortTemplate;
  std::string Needle = "%VPARAM%";
  size_t At = Out.find(Needle);
  assert(At != std::string::npos);
  Out.replace(At, Needle.size(), Param);
  return Out;
}

//===----------------------------------------------------------------------===//
// sieve — streams via equirecursive types (GTP)
//===----------------------------------------------------------------------===//

const char *Sieve = R"(
;; A stream of integers: a pair of the head and a thunk for the rest.
(define count-from : (Int -> (Rec s (Tuple Int (-> s))))
  (lambda ([n : Int])
    (tuple n (lambda () (count-from (+ n 1))))))

(define stream-head : ((Rec s (Tuple Int (-> s))) -> Int)
  (lambda ([st : (Rec s (Tuple Int (-> s)))])
    (tuple-proj st 0)))

(define stream-tail
  : ((Rec s (Tuple Int (-> s))) -> (Rec s (Tuple Int (-> s))))
  (lambda ([st : (Rec s (Tuple Int (-> s)))])
    ((tuple-proj st 1))))

(define sift
  : (Int (Rec s (Tuple Int (-> s))) -> (Rec s (Tuple Int (-> s))))
  (lambda ([p : Int] [st : (Rec s (Tuple Int (-> s)))])
    (if (= 0 (% (stream-head st) p))
        (sift p (stream-tail st))
        (tuple (stream-head st)
               (lambda () (sift p (stream-tail st)))))))

(define sieve
  : ((Rec s (Tuple Int (-> s))) -> (Rec s (Tuple Int (-> s))))
  (lambda ([st : (Rec s (Tuple Int (-> s)))])
    (tuple (stream-head st)
           (lambda () (sieve (sift (stream-head st) (stream-tail st)))))))

(define nth-prime : (Int -> Int)
  (lambda ([k : Int])
    (letrec ([go : ((Rec s (Tuple Int (-> s))) Int -> Int)
               (lambda ([st : (Rec s (Tuple Int (-> s)))] [i : Int]) : Int
                 (if (= i 0)
                     (stream-head st)
                     (go (stream-tail st) (- i 1))))])
      (go (sieve (count-from 2)) k))))

(print-int (time (nth-prime (read-int))))
)";

//===----------------------------------------------------------------------===//
// n-body (CLBG)
//===----------------------------------------------------------------------===//

const char *NBody = R"(
(define nb : Int 5)
(define px : (Vect Float) (make-vector nb 0.0))
(define py : (Vect Float) (make-vector nb 0.0))
(define pz : (Vect Float) (make-vector nb 0.0))
(define vx : (Vect Float) (make-vector nb 0.0))
(define vy : (Vect Float) (make-vector nb 0.0))
(define vz : (Vect Float) (make-vector nb 0.0))
(define ms : (Vect Float) (make-vector nb 0.0))
(define solar-mass : Float 39.47841760435743)
(define dpy : Float 365.24)

(define set-body!
  : (Int Float Float Float Float Float Float Float -> ())
  (lambda ([i : Int] [x : Float] [y : Float] [z : Float]
           [ux : Float] [uy : Float] [uz : Float] [m : Float])
    (begin
      (vector-set! px i x) (vector-set! py i y) (vector-set! pz i z)
      (vector-set! vx i (fl* ux dpy))
      (vector-set! vy i (fl* uy dpy))
      (vector-set! vz i (fl* uz dpy))
      (vector-set! ms i (fl* m solar-mass)))))

;; Sun, Jupiter, Saturn, Uranus, Neptune.
(set-body! 0 0.0 0.0 0.0 0.0 0.0 0.0 1.0)
(set-body! 1 4.84143144246472090 -1.16032004402742839 -0.103622044471123109
           0.00166007664274403694 0.00769901118419740425
           -0.0000690460016972063023 0.000954791938424326609)
(set-body! 2 8.34336671824457987 4.12479856412430479 -0.403523417114321381
           -0.00276742510726862411 0.00499852801234917238
           0.0000230417297573763929 0.000285885980666130812)
(set-body! 3 12.8943695621391310 -15.1111514016986312 -0.223307578892655734
           0.00296460137564761618 0.00237847173959480950
           -0.0000296589568540237556 0.0000436624404335156298)
(set-body! 4 15.3796971148509165 -25.9193146099879641 0.179258772950371181
           0.00268067772490389322 0.00162824170038242295
           -0.0000951592254519715870 0.0000515138902046611451)

;; Offset the sun's momentum so the system's is zero.
(define offset-momentum : (-> ())
  (lambda ()
    (let ([sx : (Ref Float) (box 0.0)]
          [sy : (Ref Float) (box 0.0)]
          [sz : (Ref Float) (box 0.0)])
      (begin
        (repeat (i 0 nb)
          (begin
            (box-set! sx (fl+ (unbox sx) (fl* (vector-ref vx i) (vector-ref ms i))))
            (box-set! sy (fl+ (unbox sy) (fl* (vector-ref vy i) (vector-ref ms i))))
            (box-set! sz (fl+ (unbox sz) (fl* (vector-ref vz i) (vector-ref ms i))))))
        (vector-set! vx 0 (fl/ (flnegate (unbox sx)) solar-mass))
        (vector-set! vy 0 (fl/ (flnegate (unbox sy)) solar-mass))
        (vector-set! vz 0 (fl/ (flnegate (unbox sz)) solar-mass))))))
(offset-momentum)

(define advance! : (Float -> ())
  (lambda ([dt : Float])
    (begin
      (repeat (i 0 nb)
        (repeat (j (+ i 1) nb)
          (let ([dx : Float (fl- (vector-ref px i) (vector-ref px j))]
                [dy : Float (fl- (vector-ref py i) (vector-ref py j))]
                [dz : Float (fl- (vector-ref pz i) (vector-ref pz j))])
            (let ([d2 : Float (fl+ (fl* dx dx) (fl+ (fl* dy dy) (fl* dz dz)))])
              (let ([mag : Float (fl/ dt (fl* d2 (flsqrt d2)))])
                (begin
                  (vector-set! vx i (fl- (vector-ref vx i)
                                         (fl* dx (fl* (vector-ref ms j) mag))))
                  (vector-set! vy i (fl- (vector-ref vy i)
                                         (fl* dy (fl* (vector-ref ms j) mag))))
                  (vector-set! vz i (fl- (vector-ref vz i)
                                         (fl* dz (fl* (vector-ref ms j) mag))))
                  (vector-set! vx j (fl+ (vector-ref vx j)
                                         (fl* dx (fl* (vector-ref ms i) mag))))
                  (vector-set! vy j (fl+ (vector-ref vy j)
                                         (fl* dy (fl* (vector-ref ms i) mag))))
                  (vector-set! vz j (fl+ (vector-ref vz j)
                                         (fl* dz (fl* (vector-ref ms i) mag))))))))))
      (repeat (i 0 nb)
        (begin
          (vector-set! px i (fl+ (vector-ref px i) (fl* dt (vector-ref vx i))))
          (vector-set! py i (fl+ (vector-ref py i) (fl* dt (vector-ref vy i))))
          (vector-set! pz i (fl+ (vector-ref pz i) (fl* dt (vector-ref vz i)))))))))

(define energy : (-> Float)
  (lambda ()
    (let ([e : (Ref Float) (box 0.0)])
      (begin
        (repeat (i 0 nb)
          (begin
            (box-set! e (fl+ (unbox e)
              (fl* 0.5 (fl* (vector-ref ms i)
                (fl+ (fl* (vector-ref vx i) (vector-ref vx i))
                     (fl+ (fl* (vector-ref vy i) (vector-ref vy i))
                          (fl* (vector-ref vz i) (vector-ref vz i))))))))
            (repeat (j (+ i 1) nb)
              (let ([dx : Float (fl- (vector-ref px i) (vector-ref px j))]
                    [dy : Float (fl- (vector-ref py i) (vector-ref py j))]
                    [dz : Float (fl- (vector-ref pz i) (vector-ref pz j))])
                (box-set! e (fl- (unbox e)
                  (fl/ (fl* (vector-ref ms i) (vector-ref ms j))
                       (flsqrt (fl+ (fl* dx dx)
                                    (fl+ (fl* dy dy) (fl* dz dz)))))))))))
        (unbox e)))))

(define steps : Int (read-int))
(print-float (energy))
(print-char #\space)
(time (repeat (s 0 steps) (advance! 0.01)))
(print-float (energy))
)";

//===----------------------------------------------------------------------===//
// tak (R6RS / Gabriel)
//===----------------------------------------------------------------------===//

const char *Tak = R"(
(define tak : (Int Int Int -> Int)
  (lambda ([x : Int] [y : Int] [z : Int])
    (if (not (< y x))
        z
        (tak (tak (- x 1) y z)
             (tak (- y 1) z x)
             (tak (- z 1) x y)))))

(define x : Int (read-int))
(define y : Int (read-int))
(define z : Int (read-int))
(print-int (time (tak x y z)))
)";

//===----------------------------------------------------------------------===//
// ray — sphere ray tracer (adapted from the R6RS `ray` benchmark)
//===----------------------------------------------------------------------===//

const char *Ray = R"(
(define nsph : Int 6)
(define sx : (Vect Float) (make-vector nsph 0.0))
(define sy : (Vect Float) (make-vector nsph 0.0))
(define sz : (Vect Float) (make-vector nsph 0.0))
(define sr : (Vect Float) (make-vector nsph 0.0))
(repeat (i 0 nsph)
  (begin
    (vector-set! sx i (fl- (int->float i) 2.5))
    (vector-set! sy i (fl* 0.4 (flsin (int->float i))))
    (vector-set! sz i (fl+ 6.0 (int->float (% i 3))))
    (vector-set! sr i 0.6)))

;; Distance along the (normalized) ray from the origin to sphere i, or
;; 1e30 when it misses.
(define sphere-hit : (Int Float Float Float -> Float)
  (lambda ([i : Int] [dx : Float] [dy : Float] [dz : Float])
    (let ([cx : Float (vector-ref sx i)]
          [cy : Float (vector-ref sy i)]
          [cz : Float (vector-ref sz i)])
      (let ([b : Float (fl+ (fl* cx dx) (fl+ (fl* cy dy) (fl* cz dz)))]
            [cc : Float (fl- (fl+ (fl* cx cx) (fl+ (fl* cy cy) (fl* cz cz)))
                             (fl* (vector-ref sr i) (vector-ref sr i)))])
        (let ([disc : Float (fl- (fl* b b) cc)])
          (if (fl< disc 0.0)
              1e30
              (let ([t : Float (fl- b (flsqrt disc))])
                (if (fl> t 0.0001) t 1e30))))))))

;; Lambert shading against a fixed directional light.
(define trace : (Float Float Float -> Float)
  (lambda ([dx : Float] [dy : Float] [dz : Float])
    (let ([best : (Ref Float) (box 1e30)]
          [bi : (Ref Int) (box (- 0 1))])
      (begin
        (repeat (i 0 nsph)
          (let ([t : Float (sphere-hit i dx dy dz)])
            (when (fl< t (unbox best))
              (box-set! best t)
              (box-set! bi i))))
        (if (< (unbox bi) 0)
            0.0
            (let ([t : Float (unbox best)] [i : Int (unbox bi)])
              (let ([nx0 : Float (fl- (fl* t dx) (vector-ref sx i))]
                    [ny0 : Float (fl- (fl* t dy) (vector-ref sy i))]
                    [nz0 : Float (fl- (fl* t dz) (vector-ref sz i))])
                (let ([nl : Float (flsqrt (fl+ (fl* nx0 nx0)
                                               (fl+ (fl* ny0 ny0)
                                                    (fl* nz0 nz0))))])
                  (flmax 0.0
                    (fl+ (fl* (fl/ nx0 nl) 0.5773502691896258)
                         (fl+ (fl* (fl/ ny0 nl) 0.5773502691896258)
                              (fl* (fl/ nz0 nl) -0.5773502691896258))))))))))))

(define size : Int (read-int))
(define total : Float
  (time
    (repeat (py 0 size) (accy : Float 0.0)
      (fl+ accy
        (repeat (px 0 size) (accx : Float 0.0)
          (fl+ accx
            (let ([x : Float (fl- (fl/ (int->float px) (int->float size)) 0.5)]
                  [y : Float (fl- (fl/ (int->float py) (int->float size)) 0.5)])
              (let ([len : Float (flsqrt (fl+ (fl* x x)
                                              (fl+ (fl* y y) 1.0)))])
                (trace (fl/ x len) (fl/ y len) (fl/ 1.0 len)))))))))
  )
(print-float total)
)";

//===----------------------------------------------------------------------===//
// blackscholes (PARSEC; synthetic portfolio, see DESIGN.md §5)
//===----------------------------------------------------------------------===//

const char *BlackScholes = R"(
;; Cumulative normal distribution (Abramowitz & Stegun 26.2.17).
(define cndf : (Float -> Float)
  (lambda ([x : Float])
    (let ([ax : Float (flabs x)])
      (let ([k : Float (fl/ 1.0 (fl+ 1.0 (fl* 0.2316419 ax)))])
        (let ([poly : Float
               (fl* (fl/ (flexp (fl* -0.5 (fl* ax ax))) 2.5066282746310002)
                    (fl* k
                      (fl+ 0.319381530
                        (fl* k
                          (fl+ -0.356563782
                            (fl* k
                              (fl+ 1.781477937
                                (fl* k
                                  (fl+ -1.821255978
                                       (fl* k 1.330274429))))))))))])
          (if (fl< x 0.0) poly (fl- 1.0 poly)))))))

(define black-scholes : (Float Float Float Float Float Bool -> Float)
  (lambda ([s : Float] [k : Float] [r : Float] [v : Float] [t : Float]
           [call : Bool])
    (let ([srt : Float (flsqrt t)])
      (let ([d1 : Float (fl/ (fl+ (fllog (fl/ s k))
                                  (fl* (fl+ r (fl* 0.5 (fl* v v))) t))
                             (fl* v srt))])
        (let ([d2 : Float (fl- d1 (fl* v srt))]
              [kert : Float (fl* k (flexp (fl* (flnegate r) t)))])
          (if call
              (fl- (fl* s (cndf d1)) (fl* kert (cndf d2)))
              (fl- (fl* kert (cndf (flnegate d2)))
                   (fl* s (cndf (flnegate d1))))))))))

(define n : Int (read-int))
(define spt : (Vect Float) (make-vector n 0.0))
(define strike : (Vect Float) (make-vector n 0.0))
(define vol : (Vect Float) (make-vector n 0.0))
(define tim : (Vect Float) (make-vector n 0.0))
(repeat (i 0 n)
  (begin
    (vector-set! spt i (fl+ 40.0 (int->float (% i 60))))
    (vector-set! strike i (fl+ 35.0 (int->float (% (* i 7) 70))))
    (vector-set! vol i (fl+ 0.1 (fl* 0.005 (int->float (% i 80)))))
    (vector-set! tim i (fl+ 0.25 (fl* 0.05 (int->float (% i 20)))))))

(define total : Float
  (time
    (repeat (i 0 n) (acc : Float 0.0)
      (fl+ acc (black-scholes (vector-ref spt i) (vector-ref strike i)
                              0.1 (vector-ref vol i) (vector-ref tim i)
                              (= 0 (% i 2)))))))
(print-float total)
)";

//===----------------------------------------------------------------------===//
// matmult (textbook)
//===----------------------------------------------------------------------===//

const char *Matmult = R"(
(define n : Int (read-int))
(define a : (Vect Int) (make-vector (* n n) 0))
(define b : (Vect Int) (make-vector (* n n) 0))
(define c : (Vect Int) (make-vector (* n n) 0))
(repeat (i 0 n)
  (repeat (j 0 n)
    (begin
      (vector-set! a (+ (* i n) j) (+ i j))
      (vector-set! b (+ (* i n) j) (- i j)))))
(time
  (repeat (i 0 n)
    (repeat (j 0 n)
      (vector-set! c (+ (* i n) j)
        (repeat (k 0 n) (acc : Int 0)
          (+ acc (* (vector-ref a (+ (* i n) k))
                    (vector-ref b (+ (* k n) j)))))))))
(print-int
  (repeat (j 0 n) (acc : Int 0)
    (+ acc (vector-ref c j))))
)";

//===----------------------------------------------------------------------===//
// matmult-float (the same textbook kernel over Float matrices — every
// inner-loop value is a double, so this isolates float representation
// cost the way the Int version isolates fixnum arithmetic)
//===----------------------------------------------------------------------===//

const char *MatmultFloat = R"(
(define n : Int (read-int))
(define a : (Vect Float) (make-vector (* n n) 0.0))
(define b : (Vect Float) (make-vector (* n n) 0.0))
(define c : (Vect Float) (make-vector (* n n) 0.0))
(repeat (i 0 n)
  (repeat (j 0 n)
    (begin
      (vector-set! a (+ (* i n) j) (int->float (+ i j)))
      (vector-set! b (+ (* i n) j) (fl* 0.5 (int->float (- i j)))))))
(time
  (repeat (i 0 n)
    (repeat (j 0 n)
      (vector-set! c (+ (* i n) j)
        (repeat (k 0 n) (acc : Float 0.0)
          (fl+ acc (fl* (vector-ref a (+ (* i n) k))
                        (vector-ref b (+ (* k n) j)))))))))
(print-float
  (repeat (j 0 n) (acc : Float 0.0)
    (fl+ acc (vector-ref c j))))
)";

//===----------------------------------------------------------------------===//
// fft (R6RS-style, iterative radix-2 Cooley-Tukey)
//===----------------------------------------------------------------------===//

const char *FFT = R"(
(define expt2 : (Int -> Int)
  (lambda ([k : Int]) (if (= k 0) 1 (* 2 (expt2 (- k 1))))))

(define ilog2 : (Int -> Int)
  (lambda ([n : Int]) (if (= n 1) 0 (+ 1 (ilog2 (/ n 2))))))

;; Advance the bit-reversal counter: while (m >= 1 and j >= m)
;;   { j -= m; m /= 2 }; j += m.
(define bit-advance : (Int Int -> Int)
  (lambda ([j : Int] [m : Int])
    (if (and (>= m 1) (>= j m))
        (bit-advance (- j m) (/ m 2))
        (+ j m))))

(define fft! : ((Vect Float) (Vect Float) Int -> ())
  (lambda ([re : (Vect Float)] [im : (Vect Float)] [n : Int])
    (begin
      ;; Bit-reversal permutation.
      (let ([j : (Ref Int) (box 0)])
        (repeat (i 0 n)
          (begin
            (when (< i (unbox j))
              (let ([t : Int (unbox j)])
                (begin
                  (let ([tr : Float (vector-ref re i)])
                    (begin
                      (vector-set! re i (vector-ref re t))
                      (vector-set! re t tr)))
                  (let ([ti : Float (vector-ref im i)])
                    (begin
                      (vector-set! im i (vector-ref im t))
                      (vector-set! im t ti))))))
            (box-set! j (bit-advance (unbox j) (/ n 2))))))
      ;; Butterfly stages.
      (repeat (s 1 (+ (ilog2 n) 1))
        (let ([m : Int (expt2 s)])
          (let ([mh : Int (/ m 2)]
                [theta : Float (fl/ -6.283185307179586 (int->float m))])
            (repeat (blk 0 (/ n m))
              (let ([base : Int (* blk m)])
                (repeat (q 0 mh)
                  (let ([ang : Float (fl* theta (int->float q))]
                        [a : Int (+ base q)])
                    (let ([wr : Float (flcos ang)]
                          [wi : Float (flsin ang)]
                          [b : Int (+ a mh)])
                      (let ([xr : Float (fl- (fl* wr (vector-ref re b))
                                             (fl* wi (vector-ref im b)))]
                            [xi : Float (fl+ (fl* wr (vector-ref im b))
                                             (fl* wi (vector-ref re b)))])
                        (begin
                          (vector-set! re b (fl- (vector-ref re a) xr))
                          (vector-set! im b (fl- (vector-ref im a) xi))
                          (vector-set! re a (fl+ (vector-ref re a) xr))
                          (vector-set! im a (fl+ (vector-ref im a) xi))))))))))))
      ())))

(define n : Int (read-int))
(define re : (Vect Float) (make-vector n 0.0))
(define im : (Vect Float) (make-vector n 0.0))
(repeat (i 0 n)
  (vector-set! re i (flsin (fl* 0.001 (int->float i)))))
(time (fft! re im n))
(print-float (vector-ref re 0))
(print-char #\space)
(print-float (vector-ref im 1))
)";

} // namespace

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

const std::vector<BenchProgram> &grift::allBenchmarks() {
  static const std::vector<BenchProgram> Programs = [] {
    std::vector<BenchProgram> Out;
    Out.push_back({"sieve", Sieve, "600", "10", "31"});
    Out.push_back({"n-body", NBody, "2000", "10",
                   "-0.16907516382852447 -0.16907302171469984"});
    Out.push_back({"tak", Tak, "22 16 8", "14 10 4", "5"});
    Out.push_back({"ray", Ray, "40", "8", "3.2800126162665455"});
    Out.push_back({"blackscholes", BlackScholes, "20000", "64",
                   "812.4453088247459"});
    Out.push_back({"matmult", Matmult, "36", "8", "336"});
    Out.push_back({"matmult-float", MatmultFloat, "36", "8", "168.0"});
    Out.push_back({"quicksort", quicksortWithParam("(Vect Int)"), "448", "64",
                   "#t"});
    Out.push_back({"fft", FFT, "8192", "64",
                   "2.015322715021492 0.6509979802776309"});
    return Out;
  }();
  return Programs;
}

const BenchProgram &grift::getBenchmark(const std::string &Name) {
  for (const BenchProgram &P : allBenchmarks())
    if (P.Name == Name)
      return P;
  assert(false && "unknown benchmark");
  static BenchProgram Empty;
  return Empty;
}

std::string grift::evenOddSource() { return EvenOdd; }

std::string grift::quicksortFig3Source() {
  return quicksortWithParam("(Vect Dyn)");
}
