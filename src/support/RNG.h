//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generation for the configuration
/// sampler and the property tests. SplitMix64 is tiny, fast, and has
/// reproducible behaviour across platforms (unlike std::mt19937 seeded
/// through std::seed_seq distribution helpers).
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_SUPPORT_RNG_H
#define GRIFT_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace grift {

/// SplitMix64: a 64-bit PRNG with full-period state advance.
class RNG {
public:
  explicit RNG(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "bound must be positive");
    // Rejection-free multiply-shift; bias is negligible for our bounds.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double unit() { return (next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Bernoulli draw with probability \p P of returning true.
  bool flip(double P) { return unit() < P; }

private:
  uint64_t State;
};

} // namespace grift

#endif // GRIFT_SUPPORT_RNG_H
