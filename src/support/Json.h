//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal JSON support shared by the griftd batch front end, the
/// service::Server request pipeline, and griftload: RFC 8259 string
/// escaping for response documents plus a parser for the flat job-object
/// subset the JSONL protocol speaks (one object of string/number/bool
/// members — no arrays, no nesting). Both directions are hardened for
/// hostile input: escape() never emits invalid UTF-8 or raw control
/// bytes, and LineParser fails with a positioned error instead of
/// crashing or over-reading on any byte sequence.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_SUPPORT_JSON_H
#define GRIFT_SUPPORT_JSON_H

#include <map>
#include <string>

namespace grift::json {

/// RFC 8259 string escaping. Controls and DEL are \u-escaped, and the
/// output is always valid UTF-8: well-formed multi-byte sequences pass
/// through unchanged, while stray bytes (lone continuation bytes,
/// overlong or truncated sequences, surrogates — hostile ids and
/// program output can contain any of them) are escaped as \u00XX
/// instead of being copied raw into the response document.
std::string escape(const std::string &S);

/// One parsed member value of a flat job object.
struct Value {
  enum Kind { Str, Num, Bool } K = Str;
  std::string S;
  double N = 0;
  bool B = false;
};

/// Parses one line of the JSONL job protocol: exactly one flat object
/// {"key": value, ...} whose values are strings, numbers, booleans, or
/// null (read as the empty string). Arrays and nested objects are
/// rejected — the job schema is flat by design, and refusing nesting
/// up front bounds parser memory on hostile input.
class LineParser {
public:
  explicit LineParser(const std::string &Text) : Text(Text) {}

  /// Parses into \p Out; false + Error ("why at offset N") on malformed
  /// input. Trailing non-whitespace after the closing '}' is an error —
  /// a frame must contain exactly one object.
  bool parse(std::map<std::string, Value> &Out);

  std::string Error;

private:
  const std::string &Text;
  size_t Pos = 0;

  bool fail(const char *Why);
  void skipWS();
  bool eat(char C);
  bool parseValue(Value &V);
  bool parseString(std::string &Out);
};

} // namespace grift::json

#endif // GRIFT_SUPPORT_JSON_H
