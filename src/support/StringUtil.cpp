#include "support/StringUtil.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace grift;

bool grift::parseInt64(std::string_view Text, int64_t &Out) {
  if (Text.empty())
    return false;
  std::string Buf(Text);
  errno = 0;
  char *End = nullptr;
  long long Value = std::strtoll(Buf.c_str(), &End, 10);
  if (errno == ERANGE || End != Buf.c_str() + Buf.size())
    return false;
  Out = static_cast<int64_t>(Value);
  return true;
}

bool grift::parseDouble(std::string_view Text, double &Out) {
  if (Text.empty())
    return false;
  std::string Buf(Text);
  errno = 0;
  char *End = nullptr;
  double Value = std::strtod(Buf.c_str(), &End);
  if (End != Buf.c_str() + Buf.size())
    return false;
  // ERANGE covers both overflow (result is ±HUGE_VAL) and underflow
  // (result is a representable denormal, or zero). Denormals like
  // 5e-324 are perfectly good doubles — only reject overflow.
  if (errno == ERANGE && std::isinf(Value))
    return false;
  Out = Value;
  return true;
}

std::string grift::formatDouble(double Value) {
  if (std::isnan(Value))
    return "+nan.0";
  if (std::isinf(Value))
    return Value > 0 ? "+inf.0" : "-inf.0";
  char Buf[64];
  // %.17g round-trips; try shorter representations first for readability.
  for (int Precision = 1; Precision <= 17; ++Precision) {
    std::snprintf(Buf, sizeof(Buf), "%.*g", Precision, Value);
    double Back = 0;
    if (parseDouble(Buf, Back) && Back == Value)
      break;
  }
  std::string Out(Buf);
  if (Out.find('.') == std::string::npos &&
      Out.find('e') == std::string::npos &&
      Out.find("inf") == std::string::npos &&
      Out.find("nan") == std::string::npos)
    Out += ".0";
  return Out;
}

std::string grift::join(const std::vector<std::string> &Parts,
                        std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I != Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

uint64_t grift::hashBytes(const void *Data, size_t Size, uint64_t Seed) {
  const unsigned char *Bytes = static_cast<const unsigned char *>(Data);
  uint64_t Hash = Seed;
  for (size_t I = 0; I != Size; ++I) {
    Hash ^= Bytes[I];
    Hash *= 1099511628211ULL;
  }
  return Hash;
}
