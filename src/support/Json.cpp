#include "support/Json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace grift::json;

std::string grift::json::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  auto escapeByte = [&Out](unsigned char B) {
    char Buf[8];
    std::snprintf(Buf, sizeof Buf, "\\u%04x", B);
    Out += Buf;
  };
  for (size_t I = 0; I < S.size(); ++I) {
    unsigned char C = static_cast<unsigned char>(S[I]);
    switch (C) {
    case '"': Out += "\\\""; continue;
    case '\\': Out += "\\\\"; continue;
    case '\n': Out += "\\n"; continue;
    case '\t': Out += "\\t"; continue;
    case '\r': Out += "\\r"; continue;
    default: break;
    }
    if (C < 0x20 || C == 0x7F) {
      escapeByte(C);
      continue;
    }
    if (C < 0x80) {
      Out.push_back(static_cast<char>(C));
      continue;
    }
    // Multi-byte lead: validate the whole sequence before passing it on.
    // 0x80–0xC1 (continuations and overlong 2-byte leads) get Len 0.
    size_t Len = C >= 0xF0 ? 4 : C >= 0xE0 ? 3 : C >= 0xC2 ? 2 : 0;
    bool OK = Len != 0 && I + Len <= S.size();
    for (size_t J = 1; OK && J < Len; ++J)
      OK = (static_cast<unsigned char>(S[I + J]) & 0xC0) == 0x80;
    if (OK && Len > 2) {
      unsigned char C1 = static_cast<unsigned char>(S[I + 1]);
      if (C == 0xE0)
        OK = C1 >= 0xA0; // overlong 3-byte
      else if (C == 0xED)
        OK = C1 < 0xA0; // UTF-16 surrogates
      else if (C == 0xF0)
        OK = C1 >= 0x90; // overlong 4-byte
      else if (C == 0xF4)
        OK = C1 < 0x90; // above U+10FFFF
      else if (C > 0xF4)
        OK = false; // no such code point
    }
    if (OK) {
      Out.append(S, I, Len);
      I += Len - 1;
    } else {
      escapeByte(C);
    }
  }
  return Out;
}

bool LineParser::fail(const char *Why) {
  Error = std::string(Why) + " at offset " + std::to_string(Pos);
  return false;
}

void LineParser::skipWS() {
  while (Pos < Text.size() &&
         std::isspace(static_cast<unsigned char>(Text[Pos])))
    ++Pos;
}

bool LineParser::eat(char C) {
  if (Pos < Text.size() && Text[Pos] == C) {
    ++Pos;
    return true;
  }
  return false;
}

bool LineParser::parse(std::map<std::string, Value> &Out) {
  skipWS();
  if (!eat('{'))
    return fail("expected '{'");
  skipWS();
  bool Closed = eat('}');
  while (!Closed) {
    skipWS();
    std::string Key;
    if (!parseString(Key))
      return false;
    skipWS();
    if (!eat(':'))
      return fail("expected ':'");
    skipWS();
    Value V;
    if (!parseValue(V))
      return false;
    Out[Key] = std::move(V);
    skipWS();
    if (eat(','))
      continue;
    if (eat('}')) {
      Closed = true;
      break;
    }
    return fail("expected ',' or '}'");
  }
  skipWS();
  if (Pos != Text.size())
    return fail("trailing bytes after object");
  return true;
}

bool LineParser::parseValue(Value &V) {
  if (Pos >= Text.size())
    return fail("unexpected end");
  char C = Text[Pos];
  if (C == '"') {
    V.K = Value::Str;
    return parseString(V.S);
  }
  if (C == '{' || C == '[')
    return fail("nested values are not part of the job schema");
  if (Text.compare(Pos, 4, "true") == 0) {
    V.K = Value::Bool;
    V.B = true;
    Pos += 4;
    return true;
  }
  if (Text.compare(Pos, 5, "false") == 0) {
    V.K = Value::Bool;
    V.B = false;
    Pos += 5;
    return true;
  }
  if (Text.compare(Pos, 4, "null") == 0) {
    V.K = Value::Str; // null reads as the empty string
    Pos += 4;
    return true;
  }
  // Number.
  size_t Start = Pos;
  if (C == '-')
    ++Pos;
  while (Pos < Text.size() &&
         (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
          Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
          Text[Pos] == '+' || Text[Pos] == '-'))
    ++Pos;
  if (Pos == Start)
    return fail("expected a JSON value");
  V.K = Value::Num;
  V.N = std::strtod(Text.c_str() + Start, nullptr);
  return true;
}

bool LineParser::parseString(std::string &Out) {
  if (!eat('"'))
    return fail("expected '\"'");
  Out.clear();
  while (Pos < Text.size()) {
    char C = Text[Pos++];
    if (C == '"')
      return true;
    if (C != '\\') {
      Out.push_back(C);
      continue;
    }
    if (Pos >= Text.size())
      return fail("dangling escape");
    char E = Text[Pos++];
    switch (E) {
    case '"': Out.push_back('"'); break;
    case '\\': Out.push_back('\\'); break;
    case '/': Out.push_back('/'); break;
    case 'n': Out.push_back('\n'); break;
    case 't': Out.push_back('\t'); break;
    case 'r': Out.push_back('\r'); break;
    case 'b': Out.push_back('\b'); break;
    case 'f': Out.push_back('\f'); break;
    case 'u': {
      if (Pos + 4 > Text.size())
        return fail("short \\u escape");
      unsigned Code = 0;
      for (int I = 0; I != 4; ++I) {
        char H = Text[Pos++];
        Code <<= 4;
        if (H >= '0' && H <= '9')
          Code |= H - '0';
        else if (H >= 'a' && H <= 'f')
          Code |= H - 'a' + 10;
        else if (H >= 'A' && H <= 'F')
          Code |= H - 'A' + 10;
        else
          return fail("bad \\u escape");
      }
      // Job sources are ASCII; encode anything else as UTF-8.
      if (Code < 0x80) {
        Out.push_back(static_cast<char>(Code));
      } else if (Code < 0x800) {
        Out.push_back(static_cast<char>(0xC0 | (Code >> 6)));
        Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
      } else {
        Out.push_back(static_cast<char>(0xE0 | (Code >> 12)));
        Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
        Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
      }
      break;
    }
    default:
      return fail("unknown escape");
    }
  }
  return fail("unterminated string");
}
