//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine used by the front end. Parse and type errors
/// are collected rather than thrown, so library clients can render them
/// however they like.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_SUPPORT_DIAGNOSTICS_H
#define GRIFT_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace grift {

/// Severity of a diagnostic message.
enum class DiagSeverity { Note, Warning, Error };

/// One diagnostic: a severity, a location, and a rendered message.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;

  /// Renders "error: 3:14: message" style text.
  std::string str() const;
};

/// Accumulates diagnostics during parsing and type checking.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message);
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every diagnostic, one per line.
  std::string str() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace grift

#endif // GRIFT_SUPPORT_DIAGNOSTICS_H
