//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations for diagnostics and blame labels. Every token and AST
/// node carries a SourceLoc so that runtime blame can point back at the
/// offending cast site, as Grift's blame labels do.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_SUPPORT_SOURCELOC_H
#define GRIFT_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace grift {

/// A (line, column) position in a source buffer. Lines and columns are
/// 1-based; a default-constructed SourceLoc is "unknown".
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Column = 0;

  constexpr SourceLoc() = default;
  constexpr SourceLoc(uint32_t Line, uint32_t Column)
      : Line(Line), Column(Column) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &Other) const {
    return Line == Other.Line && Column == Other.Column;
  }

  /// Renders "line:col" or "?" for an unknown location.
  std::string str() const {
    if (!isValid())
      return "?";
    return std::to_string(Line) + ":" + std::to_string(Column);
  }
};

} // namespace grift

#endif // GRIFT_SUPPORT_SOURCELOC_H
