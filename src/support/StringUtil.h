//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers shared across modules.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_SUPPORT_STRINGUTIL_H
#define GRIFT_SUPPORT_STRINGUTIL_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace grift {

/// Returns true if \p Text parses completely as a signed 64-bit integer.
bool parseInt64(std::string_view Text, int64_t &Out);

/// Returns true if \p Text parses completely as a double.
bool parseDouble(std::string_view Text, double &Out);

/// Renders a double the way the runtime prints Float values: shortest
/// round-trip representation with a trailing ".0" when integral.
std::string formatDouble(double Value);

/// Joins \p Parts with \p Sep between elements.
std::string join(const std::vector<std::string> &Parts, std::string_view Sep);

/// 64-bit FNV-1a hash, used for structural hashing of types and coercions.
uint64_t hashBytes(const void *Data, size_t Size, uint64_t Seed = 14695981039346656037ULL);

/// Combines two hashes (boost-style mix).
inline uint64_t hashCombine(uint64_t A, uint64_t B) {
  A ^= B + 0x9e3779b97f4a7c15ULL + (A << 6) + (A >> 2);
  return A;
}

} // namespace grift

#endif // GRIFT_SUPPORT_STRINGUTIL_H
