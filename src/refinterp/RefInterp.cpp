#include "refinterp/RefInterp.h"

#include "runtime/Blame.h"
#include "support/StringUtil.h"
#include "types/TypeOps.h"

#include <cassert>
#include <cctype>
#include <chrono>
#include <cmath>
#include <memory>
#include <new>
#include <pthread.h>
#include <unordered_map>
#include <vector>

using namespace grift;
using namespace grift::core;
using namespace grift::refinterp;

namespace {

//===----------------------------------------------------------------------===//
// Values (Figure 18)
//===----------------------------------------------------------------------===//

struct RV;
using RVal = std::shared_ptr<RV>;

struct EnvNode;
using Env = std::shared_ptr<EnvNode>;

/// v ::= u | (v, v) | u⟨g ; I!⟩ | u⟨c → d⟩ ... plus addresses and
/// reference proxies.
struct RV {
  enum class Kind {
    Unit,
    Bool,
    Int,
    Float,
    Char,
    Tuple,
    Closure,  ///< λ with captured environment
    FunProxy, ///< u⟨c → d⟩ — Wrapped is always a Closure (normal form)
    Addr,     ///< a — index into the store
    RefProxy, ///< u⟨Ref c d⟩ — Wrapped is always an Addr
    Dyn,      ///< u⟨g ; I!⟩ — an injected value with its source type
  };

  Kind K = Kind::Unit;
  bool B = false;
  int64_t I = 0;
  double F = 0;
  char C = 0;
  std::vector<RVal> Elements;        // Tuple
  const Node *Lambda = nullptr;      // Closure
  Env Captured;                      // Closure
  RVal Wrapped;                      // FunProxy / RefProxy / Dyn
  const Coercion *Crcn = nullptr;    // FunProxy / RefProxy
  const Type *SourceType = nullptr;  // Dyn
  size_t Address = 0;                // Addr
};

RVal mk(RV::Kind K) {
  auto V = std::make_shared<RV>();
  V->K = K;
  return V;
}

RVal mkUnit() { return mk(RV::Kind::Unit); }

RVal mkBool(bool B) {
  RVal V = mk(RV::Kind::Bool);
  V->B = B;
  return V;
}

RVal mkInt(int64_t I) {
  RVal V = mk(RV::Kind::Int);
  V->I = I;
  return V;
}

RVal mkFloat(double F) {
  RVal V = mk(RV::Kind::Float);
  V->F = F;
  return V;
}

RVal mkChar(char C) {
  RVal V = mk(RV::Kind::Char);
  V->C = C;
  return V;
}

/// Environments are immutable linked lists; letrec cells are patched
/// through the shared node.
struct EnvNode {
  std::string Name;
  RVal Value;
  Env Parent;
};

Env extend(Env Parent, std::string Name, RVal Value) {
  auto N = std::make_shared<EnvNode>();
  N->Name = std::move(Name);
  N->Value = std::move(Value);
  N->Parent = std::move(Parent);
  return N;
}

//===----------------------------------------------------------------------===//
// The interpreter
//===----------------------------------------------------------------------===//

class Interp {
public:
  Interp(TypeContext &Types, CoercionFactory &F, std::string Input,
         const RunLimits &Limits)
      : Types(Types), F(F), Input(std::move(Input)), Limits(Limits),
        StartTime(std::chrono::steady_clock::now()) {}

  RefResult run(const CoreProgram &Prog) {
    RefResult Result;
    try {
      RVal Last = mkUnit();
      for (const Def &D : Prog.Defs) {
        RVal V = eval(*D.Body, nullptr);
        if (!D.Name.empty())
          Globals[D.Name] = V;
        Last = V;
      }
      Result.OK = true;
      Result.ResultText = render(Last, 6);
    } catch (RuntimeError &E) {
      Result.OK = false;
      Result.Kind = E.Kind;
      Result.Label = E.Label;
      Result.Message = E.Message;
    } catch (std::bad_alloc &) {
      Result.OK = false;
      Result.Kind = ErrorKind::OutOfMemory;
      Result.Message = "allocator failed growing interpreter state";
    }
    Result.Output = Output;
    return Result;
  }

private:
  TypeContext &Types;
  CoercionFactory &F;
  std::string Input;
  size_t InputPos = 0;
  std::string Output;
  std::unordered_map<std::string, RVal> Globals;
  std::vector<std::vector<RVal>> Store; // μ: addresses to cells
  std::vector<bool> IsBoxCell;          // rendering: box vs vector
  RunLimits Limits;
  uint64_t Steps = 0;
  size_t CallDepth = 0; // interpreted (apply) nesting, mirrors VM frames
  size_t EvalDepth = 0; // native eval() recursion, tracks the C++ stack
  std::chrono::steady_clock::time_point StartTime;

  [[noreturn]] void blame(const std::string &Label, std::string Message) {
    throw RuntimeError{ErrorKind::Blame, Label, std::move(Message)};
  }
  [[noreturn]] void trap(std::string Message) {
    throw RuntimeError{ErrorKind::Trap, "", std::move(Message)};
  }

  /// One fuel unit per eval() step; the wall clock is sampled every 4096
  /// steps (this interpreter is slow enough that finer is pointless).
  void chargeStep() {
    ++Steps;
    // Preemptive cancellation: one relaxed load per eval() step. This
    // interpreter dispatches a few million steps per second at most, so
    // the cost is noise and a watchdog's store is seen almost at once.
    if (Limits.Cancel && Limits.Cancel->load(std::memory_order_relaxed))
      throw RuntimeError{ErrorKind::Cancelled, "",
                         "run cancelled from outside (watchdog or shutdown)"};
    if (Limits.MaxSteps && Steps >= Limits.MaxSteps)
      throw RuntimeError{ErrorKind::FuelExhausted, "",
                         "step budget of " +
                             std::to_string(Limits.MaxSteps) +
                             " eval steps exhausted"};
    if (Limits.MaxWallNanos && (Steps & 4095) == 0) {
      int64_t Elapsed =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - StartTime)
              .count();
      if (Elapsed > Limits.MaxWallNanos)
        throw RuntimeError{ErrorKind::Timeout, "",
                           "wall-clock budget of " +
                               std::to_string(Limits.MaxWallNanos) +
                               " ns exhausted"};
    }
  }

  /// Hard cap on native eval() recursion. The reference interpreter has
  /// no tail calls — every interpreted call consumes real C++ stack — so
  /// without this guard a divergent program overflows the process stack
  /// long before any fuel budget trips. interpret() runs the evaluator
  /// on a thread whose stack is provisioned for this many levels even
  /// with sanitizer-inflated frames.
  static constexpr size_t NativeEvalDepthCap = 6000;

  /// RAII guard for native eval() recursion (always on).
  struct EvalDepthGuard {
    Interp &I;
    explicit EvalDepthGuard(Interp &I) : I(I) {
      if (I.EvalDepth >= NativeEvalDepthCap)
        throw RuntimeError{
            ErrorKind::StackOverflow, "",
            "evaluator recursion exceeded " +
                std::to_string(NativeEvalDepthCap) +
                " levels (the reference interpreter has no tail calls)"};
      ++I.EvalDepth;
    }
    ~EvalDepthGuard() { --I.EvalDepth; }
  };

  /// RAII guard for interpreted call depth (MaxFrames budget).
  struct DepthGuard {
    Interp &I;
    explicit DepthGuard(Interp &I) : I(I) {
      if (I.Limits.MaxFrames && I.CallDepth >= I.Limits.MaxFrames)
        throw RuntimeError{ErrorKind::StackOverflow, "",
                           "call depth exceeded " +
                               std::to_string(I.Limits.MaxFrames) +
                               " frames"};
      ++I.CallDepth;
    }
    ~DepthGuard() { --I.CallDepth; }
  };

  //===--------------------------------------------------------------------===//
  // Lookup
  //===--------------------------------------------------------------------===//

  RVal lookup(const Env &E, const std::string &Name) {
    for (const EnvNode *N = E.get(); N; N = N->Parent.get())
      if (N->Name == Name)
        return N->Value;
    trap("unbound local '" + Name + "' in reference interpreter");
  }

  //===--------------------------------------------------------------------===//
  // Dyn introspection (lazy-D: injected values carry their type)
  //===--------------------------------------------------------------------===//

  const Type *typeOfDyn(const RVal &V) {
    switch (V->K) {
    case RV::Kind::Unit:
      return Types.unit();
    case RV::Kind::Bool:
      return Types.boolean();
    case RV::Kind::Int:
      return Types.integer();
    case RV::Kind::Float:
      return Types.floating();
    case RV::Kind::Char:
      return Types.character();
    case RV::Kind::Dyn:
      return V->SourceType;
    default:
      trap("untagged structured value in Dyn position");
    }
  }

  RVal dynUnwrap(const RVal &V) {
    return V->K == RV::Kind::Dyn ? V->Wrapped : V;
  }

  RVal inject(RVal V, const Type *S) {
    if (S->isAtomic())
      return V; // atomic values are self-describing
    RVal D = mk(RV::Kind::Dyn);
    D->Wrapped = std::move(V);
    D->SourceType = S;
    return D;
  }

  //===--------------------------------------------------------------------===//
  // Cast reduction (Figure 18 cast rules + Figure 6 structure)
  //===--------------------------------------------------------------------===//

  RVal applyCoercion(const RVal &V, const Coercion *C) {
    switch (C->kind()) {
    case CoercionKind::Id:
      return V;
    case CoercionKind::Sequence:
      return applyCoercion(applyCoercion(V, C->first()), C->second());
    case CoercionKind::Project: {
      const Type *S = typeOfDyn(V);
      const Coercion *C2 = F.makeForProjection(C, S);
      return applyCoercion(dynUnwrap(V), C2);
    }
    case CoercionKind::Inject:
      return inject(V, C->type());
    case CoercionKind::Fail:
      blame(C->label(), "the value " + render(V, 3) +
                            " does not have the type promised at this cast");
    case CoercionKind::Fun: {
      // u⟨i⟩⟨c⟩ → u⟨i ⨟ c⟩ — the space-efficiency reduction.
      if (V->K == RV::Kind::FunProxy) {
        const Coercion *Composed = F.compose(V->Crcn, C);
        if (Composed->isId())
          return V->Wrapped;
        RVal P = mk(RV::Kind::FunProxy);
        P->Wrapped = V->Wrapped;
        P->Crcn = Composed;
        return P;
      }
      assert(V->K == RV::Kind::Closure && "fun coercion on non-function");
      RVal P = mk(RV::Kind::FunProxy);
      P->Wrapped = V;
      P->Crcn = C;
      return P;
    }
    case CoercionKind::RefC: {
      if (V->K == RV::Kind::RefProxy) {
        const Coercion *Composed = F.compose(V->Crcn, C);
        if (Composed->isId())
          return V->Wrapped;
        RVal P = mk(RV::Kind::RefProxy);
        P->Wrapped = V->Wrapped;
        P->Crcn = Composed;
        return P;
      }
      assert(V->K == RV::Kind::Addr && "ref coercion on non-reference");
      RVal P = mk(RV::Kind::RefProxy);
      P->Wrapped = V;
      P->Crcn = C;
      return P;
    }
    case CoercionKind::TupleC: {
      assert(V->K == RV::Kind::Tuple);
      RVal T = mk(RV::Kind::Tuple);
      for (size_t I = 0; I != V->Elements.size(); ++I)
        T->Elements.push_back(
            applyCoercion(V->Elements[I], C->element(I)));
      return T;
    }
    case CoercionKind::Rec:
      return applyCoercion(V, C->body());
    }
    trap("unknown coercion");
  }

  RVal castTo(const RVal &V, const Type *S, const Type *T,
              const std::string &Label) {
    return applyCoercion(V, F.make(S, T, Label));
  }

  //===--------------------------------------------------------------------===//
  // Store operations (the statefull reduction rules)
  //===--------------------------------------------------------------------===//

  RVal storeRead(const RVal &Ref, int64_t Index) {
    if (Ref->K == RV::Kind::RefProxy) {
      // !(a⟨Ref c d⟩) → (!a)⟨d⟩
      RVal Raw = storeRead(Ref->Wrapped, Index);
      return applyCoercion(Raw, Ref->Crcn->readCoercion());
    }
    assert(Ref->K == RV::Kind::Addr);
    auto &Cell = Store[Ref->Address];
    if (Index < 0 || static_cast<size_t>(Index) >= Cell.size())
      trap("vector index " + std::to_string(Index) + " out of bounds");
    return Cell[static_cast<size_t>(Index)];
  }

  void storeWrite(const RVal &Ref, int64_t Index, RVal V) {
    if (Ref->K == RV::Kind::RefProxy) {
      // a⟨Ref c d⟩ := v → a := v⟨c⟩
      storeWrite(Ref->Wrapped, Index,
                 applyCoercion(V, Ref->Crcn->writeCoercion()));
      return;
    }
    assert(Ref->K == RV::Kind::Addr);
    auto &Cell = Store[Ref->Address];
    if (Index < 0 || static_cast<size_t>(Index) >= Cell.size())
      trap("vector index " + std::to_string(Index) + " out of bounds");
    Cell[static_cast<size_t>(Index)] = std::move(V);
  }

  size_t storeLength(const RVal &Ref) {
    if (Ref->K == RV::Kind::RefProxy)
      return storeLength(Ref->Wrapped);
    return Store[Ref->Address].size();
  }

  //===--------------------------------------------------------------------===//
  // Application
  //===--------------------------------------------------------------------===//

  RVal apply(const RVal &Callee, std::vector<RVal> Args,
             const std::string &Where) {
    if (Callee->K == RV::Kind::FunProxy) {
      // u⟨c → d⟩ v → (u (v⟨c⟩))⟨d⟩
      const Coercion *C = Callee->Crcn;
      assert(C->kind() == CoercionKind::Fun && C->arity() == Args.size());
      for (size_t I = 0; I != Args.size(); ++I)
        Args[I] = applyCoercion(Args[I], C->arg(I));
      RVal Result = apply(Callee->Wrapped, std::move(Args), Where);
      return applyCoercion(Result, C->result());
    }
    if (Callee->K != RV::Kind::Closure)
      trap("application of a non-function at " + Where);
    const Node &Lambda = *Callee->Lambda;
    if (Lambda.ParamNames.size() != Args.size())
      trap("arity mismatch at " + Where);
    Env E = Callee->Captured;
    for (size_t I = 0; I != Args.size(); ++I)
      E = extend(E, Lambda.ParamNames[I], std::move(Args[I]));
    DepthGuard Depth(*this);
    return eval(*Lambda.Subs[0], E);
  }

  //===--------------------------------------------------------------------===//
  // Evaluation
  //===--------------------------------------------------------------------===//

  RVal eval(const Node &N, Env E) {
    EvalDepthGuard Depth(*this);
    chargeStep();
    switch (N.Kind) {
    case NodeKind::LitUnit:
      return mkUnit();
    case NodeKind::LitBool:
      return mkBool(N.BoolVal);
    case NodeKind::LitInt:
      return mkInt(N.IntVal);
    case NodeKind::LitFloat:
      return mkFloat(N.FloatVal);
    case NodeKind::LitChar:
      return mkChar(N.CharVal);
    case NodeKind::LocalRef:
      return lookup(E, N.Name);
    case NodeKind::GlobalRef: {
      auto It = Globals.find(N.Name);
      if (It == Globals.end())
        trap("global '" + N.Name + "' used before its definition");
      return It->second;
    }
    case NodeKind::If: {
      RVal Cond = eval(*N.Subs[0], E);
      assert(Cond->K == RV::Kind::Bool);
      return eval(Cond->B ? *N.Subs[1] : *N.Subs[2], E);
    }
    case NodeKind::Lambda: {
      RVal V = mk(RV::Kind::Closure);
      V->Lambda = &N;
      V->Captured = E;
      return V;
    }
    case NodeKind::App: {
      RVal Callee = eval(*N.Subs[0], E);
      std::vector<RVal> Args;
      for (size_t I = 1; I != N.Subs.size(); ++I)
        Args.push_back(eval(*N.Subs[I], E));
      return apply(Callee, std::move(Args), N.Loc.str());
    }
    case NodeKind::AppDyn: {
      RVal Callee = eval(*N.Subs[0], E);
      std::vector<RVal> Args;
      for (size_t I = 1; I != N.Subs.size(); ++I)
        Args.push_back(eval(*N.Subs[I], E));
      const Type *FT = typeOfDyn(Callee);
      if (FT->isRec())
        FT = Types.unfold(FT);
      if (!FT->isFunction())
        blame(N.BlameLabel,
              "application of a value of type " + FT->str());
      if (FT->arity() != Args.size())
        blame(N.BlameLabel, "arity mismatch");
      for (size_t I = 0; I != Args.size(); ++I)
        Args[I] = castTo(Args[I], Types.dyn(), FT->param(I), N.BlameLabel);
      RVal Result =
          apply(dynUnwrap(Callee), std::move(Args), N.Loc.str());
      return castTo(Result, FT->result(), Types.dyn(), N.BlameLabel);
    }
    case NodeKind::PrimApp:
      return evalPrim(N, E);
    case NodeKind::Let: {
      Env E2 = E;
      for (size_t I = 0; I != N.BindingNames.size(); ++I)
        E2 = extend(E2, N.BindingNames[I], eval(*N.Subs[I], E));
      return eval(*N.Subs.back(), E2);
    }
    case NodeKind::Letrec: {
      Env E2 = E;
      std::vector<EnvNode *> Cells;
      for (const std::string &Name : N.BindingNames) {
        E2 = extend(E2, Name, mkUnit());
        Cells.push_back(E2.get());
      }
      for (size_t I = 0; I != N.BindingNames.size(); ++I)
        Cells[I]->Value = eval(*N.Subs[I], E2);
      return eval(*N.Subs.back(), E2);
    }
    case NodeKind::Begin: {
      RVal Last = mkUnit();
      for (const NodePtr &Sub : N.Subs)
        Last = eval(*Sub, E);
      return Last;
    }
    case NodeKind::Repeat: {
      RVal Lo = eval(*N.Subs[0], E);
      RVal Hi = eval(*N.Subs[1], E);
      RVal Acc = mkUnit();
      size_t BodyIndex = 2;
      if (N.HasAcc) {
        Acc = eval(*N.Subs[2], E);
        BodyIndex = 3;
      }
      for (int64_t I = Lo->I; I < Hi->I; ++I) {
        Env E2 = extend(E, N.Name, mkInt(I));
        if (N.HasAcc)
          E2 = extend(E2, N.AccName, Acc);
        RVal Body = eval(*N.Subs[BodyIndex], E2);
        if (N.HasAcc)
          Acc = Body;
      }
      return Acc;
    }
    case NodeKind::Time:
      return eval(*N.Subs[0], E); // no measurement in the ref semantics
    case NodeKind::Tuple: {
      RVal T = mk(RV::Kind::Tuple);
      for (const NodePtr &Sub : N.Subs)
        T->Elements.push_back(eval(*Sub, E));
      return T;
    }
    case NodeKind::TupleProj: {
      RVal T = eval(*N.Subs[0], E);
      assert(T->K == RV::Kind::Tuple && N.Index < T->Elements.size());
      return T->Elements[N.Index];
    }
    case NodeKind::TupleProjDyn: {
      RVal V = eval(*N.Subs[0], E);
      const Type *T = typeOfDyn(V);
      if (T->isRec())
        T = Types.unfold(T);
      if (!T->isTuple() || N.Index >= T->tupleSize())
        blame(N.BlameLabel,
              "tuple projection from a value of type " + T->str());
      RVal Tup = dynUnwrap(V);
      return castTo(Tup->Elements[N.Index], T->element(N.Index),
                    Types.dyn(), N.BlameLabel);
    }
    case NodeKind::BoxAlloc: {
      RVal Init = eval(*N.Subs[0], E);
      RVal A = mk(RV::Kind::Addr);
      A->Address = Store.size();
      Store.push_back({std::move(Init)});
      IsBoxCell.push_back(true);
      return A;
    }
    case NodeKind::Unbox:
      return storeRead(eval(*N.Subs[0], E), 0);
    case NodeKind::UnboxDyn: {
      RVal V = eval(*N.Subs[0], E);
      const Type *T = typeOfDyn(V);
      if (T->isRec())
        T = Types.unfold(T);
      if (!T->isBox())
        blame(N.BlameLabel, "unbox of a value of type " + T->str());
      RVal Content = storeRead(dynUnwrap(V), 0);
      return castTo(Content, T->inner(), Types.dyn(), N.BlameLabel);
    }
    case NodeKind::BoxSet: {
      RVal Ref = eval(*N.Subs[0], E);
      RVal V = eval(*N.Subs[1], E);
      storeWrite(Ref, 0, std::move(V));
      return mkUnit();
    }
    case NodeKind::BoxSetDyn: {
      RVal D = eval(*N.Subs[0], E);
      RVal V = eval(*N.Subs[1], E);
      const Type *T = typeOfDyn(D);
      if (T->isRec())
        T = Types.unfold(T);
      if (!T->isBox())
        blame(N.BlameLabel, "box-set! of a value of type " + T->str());
      storeWrite(dynUnwrap(D), 0,
                 castTo(V, Types.dyn(), T->inner(), N.BlameLabel));
      return mkUnit();
    }
    case NodeKind::MakeVect: {
      RVal Size = eval(*N.Subs[0], E);
      RVal Init = eval(*N.Subs[1], E);
      if (Size->I < 0)
        trap("invalid vector size " + std::to_string(Size->I));
      RVal A = mk(RV::Kind::Addr);
      A->Address = Store.size();
      Store.emplace_back(static_cast<size_t>(Size->I), Init);
      IsBoxCell.push_back(false);
      return A;
    }
    case NodeKind::VectRef: {
      RVal Ref = eval(*N.Subs[0], E);
      RVal Index = eval(*N.Subs[1], E);
      return storeRead(Ref, Index->I);
    }
    case NodeKind::VectRefDyn: {
      RVal D = eval(*N.Subs[0], E);
      RVal Index = eval(*N.Subs[1], E);
      const Type *T = typeOfDyn(D);
      if (T->isRec())
        T = Types.unfold(T);
      if (!T->isVect())
        blame(N.BlameLabel, "vector-ref of a value of type " + T->str());
      RVal V = storeRead(dynUnwrap(D), Index->I);
      return castTo(V, T->inner(), Types.dyn(), N.BlameLabel);
    }
    case NodeKind::VectSet: {
      RVal Ref = eval(*N.Subs[0], E);
      RVal Index = eval(*N.Subs[1], E);
      RVal V = eval(*N.Subs[2], E);
      storeWrite(Ref, Index->I, std::move(V));
      return mkUnit();
    }
    case NodeKind::VectSetDyn: {
      RVal D = eval(*N.Subs[0], E);
      RVal Index = eval(*N.Subs[1], E);
      RVal V = eval(*N.Subs[2], E);
      const Type *T = typeOfDyn(D);
      if (T->isRec())
        T = Types.unfold(T);
      if (!T->isVect())
        blame(N.BlameLabel, "vector-set! of a value of type " + T->str());
      storeWrite(dynUnwrap(D), Index->I,
                 castTo(V, Types.dyn(), T->inner(), N.BlameLabel));
      return mkUnit();
    }
    case NodeKind::VectLen:
      return mkInt(static_cast<int64_t>(storeLength(eval(*N.Subs[0], E))));
    case NodeKind::VectLenDyn: {
      RVal D = eval(*N.Subs[0], E);
      const Type *T = typeOfDyn(D);
      if (T->isRec())
        T = Types.unfold(T);
      if (!T->isVect())
        blame(N.BlameLabel,
              "vector-length of a value of type " + T->str());
      return mkInt(static_cast<int64_t>(storeLength(dynUnwrap(D))));
    }
    case NodeKind::Cast: {
      RVal V = eval(*N.Subs[0], E);
      return castTo(V, N.SrcTy, N.Ty, N.BlameLabel);
    }
    }
    trap("unhandled node kind in reference interpreter");
  }

  RVal evalPrim(const Node &N, Env E) {
    std::vector<RVal> Args;
    for (const NodePtr &Sub : N.Subs)
      Args.push_back(eval(*Sub, E));
    auto AsI = [&](size_t I) { return Args[I]->I; };
    auto AsF = [&](size_t I) { return Args[I]->F; };
    switch (N.Prim) {
    case PrimOp::AddI:
      return mkInt(AsI(0) + AsI(1));
    case PrimOp::SubI:
      return mkInt(AsI(0) - AsI(1));
    case PrimOp::MulI:
      return mkInt(AsI(0) * AsI(1));
    case PrimOp::DivI:
      if (AsI(1) == 0)
        trap("integer division by zero");
      return mkInt(AsI(0) / AsI(1));
    case PrimOp::ModI:
      if (AsI(1) == 0)
        trap("integer modulo by zero");
      return mkInt(AsI(0) % AsI(1));
    case PrimOp::LtI:
      return mkBool(AsI(0) < AsI(1));
    case PrimOp::LeI:
      return mkBool(AsI(0) <= AsI(1));
    case PrimOp::EqI:
      return mkBool(AsI(0) == AsI(1));
    case PrimOp::GeI:
      return mkBool(AsI(0) >= AsI(1));
    case PrimOp::GtI:
      return mkBool(AsI(0) > AsI(1));
    case PrimOp::AddF:
      return mkFloat(AsF(0) + AsF(1));
    case PrimOp::SubF:
      return mkFloat(AsF(0) - AsF(1));
    case PrimOp::MulF:
      return mkFloat(AsF(0) * AsF(1));
    case PrimOp::DivF:
      return mkFloat(AsF(0) / AsF(1));
    case PrimOp::ModF:
      return mkFloat(std::fmod(AsF(0), AsF(1)));
    case PrimOp::ExptF:
      return mkFloat(std::pow(AsF(0), AsF(1)));
    case PrimOp::Atan2F:
      return mkFloat(std::atan2(AsF(0), AsF(1)));
    case PrimOp::MinF:
      return mkFloat(std::fmin(AsF(0), AsF(1)));
    case PrimOp::MaxF:
      return mkFloat(std::fmax(AsF(0), AsF(1)));
    case PrimOp::LtF:
      return mkBool(AsF(0) < AsF(1));
    case PrimOp::LeF:
      return mkBool(AsF(0) <= AsF(1));
    case PrimOp::EqF:
      return mkBool(AsF(0) == AsF(1));
    case PrimOp::GeF:
      return mkBool(AsF(0) >= AsF(1));
    case PrimOp::GtF:
      return mkBool(AsF(0) > AsF(1));
    case PrimOp::NegF:
      return mkFloat(-AsF(0));
    case PrimOp::AbsF:
      return mkFloat(std::fabs(AsF(0)));
    case PrimOp::SqrtF:
      return mkFloat(std::sqrt(AsF(0)));
    case PrimOp::SinF:
      return mkFloat(std::sin(AsF(0)));
    case PrimOp::CosF:
      return mkFloat(std::cos(AsF(0)));
    case PrimOp::TanF:
      return mkFloat(std::tan(AsF(0)));
    case PrimOp::AsinF:
      return mkFloat(std::asin(AsF(0)));
    case PrimOp::AcosF:
      return mkFloat(std::acos(AsF(0)));
    case PrimOp::AtanF:
      return mkFloat(std::atan(AsF(0)));
    case PrimOp::ExpF:
      return mkFloat(std::exp(AsF(0)));
    case PrimOp::LogF:
      return mkFloat(std::log(AsF(0)));
    case PrimOp::FloorF:
      return mkFloat(std::floor(AsF(0)));
    case PrimOp::CeilingF:
      return mkFloat(std::ceil(AsF(0)));
    case PrimOp::RoundF:
      return mkFloat(std::nearbyint(AsF(0)));
    case PrimOp::IntToFloat:
      return mkFloat(static_cast<double>(AsI(0)));
    case PrimOp::FloatToInt:
      return mkInt(static_cast<int64_t>(AsF(0)));
    case PrimOp::IntToChar:
      return mkChar(static_cast<char>(AsI(0)));
    case PrimOp::CharToInt:
      return mkInt(static_cast<unsigned char>(Args[0]->C));
    case PrimOp::Not:
      return mkBool(!Args[0]->B);
    case PrimOp::PrintInt:
      Output += std::to_string(AsI(0));
      return mkUnit();
    case PrimOp::PrintFloat:
      Output += formatDouble(AsF(0));
      return mkUnit();
    case PrimOp::PrintChar:
      Output += Args[0]->C;
      return mkUnit();
    case PrimOp::PrintBool:
      Output += Args[0]->B ? "#t" : "#f";
      return mkUnit();
    case PrimOp::ReadInt:
      return mkInt(readIntFromInput());
    case PrimOp::ReadChar: {
      if (InputPos >= Input.size())
        trap("read-char: end of input");
      return mkChar(Input[InputPos++]);
    }
    }
    trap("unknown primitive");
  }

  int64_t readIntFromInput() {
    while (InputPos < Input.size() &&
           std::isspace(static_cast<unsigned char>(Input[InputPos])))
      ++InputPos;
    size_t Start = InputPos;
    if (InputPos < Input.size() &&
        (Input[InputPos] == '-' || Input[InputPos] == '+'))
      ++InputPos;
    while (InputPos < Input.size() &&
           std::isdigit(static_cast<unsigned char>(Input[InputPos])))
      ++InputPos;
    int64_t Out = 0;
    if (!parseInt64(std::string_view(Input).substr(Start, InputPos - Start),
                    Out))
      trap("read-int: no integer available on input");
    return Out;
  }

  //===--------------------------------------------------------------------===//
  // Rendering
  //===--------------------------------------------------------------------===//

  std::string render(const RVal &V, unsigned Depth) {
    if (Depth == 0)
      return "...";
    switch (V->K) {
    case RV::Kind::Unit:
      return "()";
    case RV::Kind::Bool:
      return V->B ? "#t" : "#f";
    case RV::Kind::Int:
      return std::to_string(V->I);
    case RV::Kind::Float:
      return formatDouble(V->F);
    case RV::Kind::Char:
      return std::string("#\\") + V->C;
    case RV::Kind::Tuple: {
      std::string Out = "#(";
      for (size_t I = 0; I != V->Elements.size(); ++I) {
        if (I != 0)
          Out += ' ';
        Out += render(V->Elements[I], Depth - 1);
      }
      return Out + ")";
    }
    case RV::Kind::Closure:
    case RV::Kind::FunProxy:
      return "#<procedure>";
    case RV::Kind::Addr:
    case RV::Kind::RefProxy: {
      size_t Length = storeLength(V);
      RVal Base = V;
      while (Base->K == RV::Kind::RefProxy)
        Base = Base->Wrapped;
      if (IsBoxCell[Base->Address])
        return "#&" + render(storeRead(V, 0), Depth - 1);
      std::string Out = "#vec(";
      size_t Limit = std::min<size_t>(Length, 8);
      for (size_t I = 0; I != Limit; ++I) {
        if (I != 0)
          Out += ' ';
        Out += render(storeRead(V, static_cast<int64_t>(I)), Depth - 1);
      }
      if (Length > Limit)
        Out += " ...";
      return Out + ")";
    }
    case RV::Kind::Dyn:
      return render(V->Wrapped, Depth);
    }
    return "?";
  }
};

} // namespace

RefResult grift::refinterp::interpret(TypeContext &Types,
                                      CoercionFactory &Coercions,
                                      const CoreProgram &Prog,
                                      std::string Input,
                                      const RunLimits &Limits) {
  // Run the evaluator on a thread with a large explicit stack: eval()
  // recursion tracks interpreted call depth (no tail calls), and
  // sanitizer builds inflate each frame several-fold, so the default
  // process stack cannot hold NativeEvalDepthCap levels. 128 MB of
  // (lazily committed) stack gives the cap a wide margin in any build.
  struct Job {
    TypeContext &Types;
    CoercionFactory &Coercions;
    const CoreProgram &Prog;
    std::string Input;
    const RunLimits &Limits;
    RefResult Result;
  } TheJob{Types, Coercions, Prog, std::move(Input), Limits, {}};

  auto Run = [](void *Arg) -> void * {
    Job &J = *static_cast<Job *>(Arg);
    J.Result = Interp(J.Types, J.Coercions, std::move(J.Input), J.Limits)
                   .run(J.Prog);
    return nullptr;
  };

  pthread_attr_t Attr;
  pthread_t Thread;
  if (pthread_attr_init(&Attr) != 0 ||
      pthread_attr_setstacksize(&Attr, 128u << 20) != 0 ||
      pthread_create(&Thread, &Attr, Run, &TheJob) != 0) {
    // Could not provision the big stack; interpret on this thread (the
    // eval-depth guard still bounds recursion, with less headroom).
    return Interp(Types, Coercions, std::move(TheJob.Input), Limits)
        .run(Prog);
  }
  pthread_attr_destroy(&Attr);
  pthread_join(Thread, nullptr);
  return std::move(TheJob.Result);
}
