//===----------------------------------------------------------------------===//
///
/// \file
/// A definitional interpreter for the paper's Appendix B operational
/// semantics (Figure 18): a direct, slow, obviously-correct evaluator
/// over the explicit-cast core IR with the lazy-D space-efficient
/// coercion semantics.
///
///   * values follow the Figure 18 grammar: raw values u, tuples,
///     injected values u⟨g ; I!⟩ (represented as an explicit Dyn
///     wrapper), proxied functions u⟨c → d⟩, addresses, and proxied
///     references u⟨Ref c d⟩;
///   * cast application implements the cast reduction rules, with
///     u⟨i⟩⟨c⟩ → u⟨i ⨟ c⟩ (space efficiency via composition);
///   * the store maps addresses to cells; proxied reads/writes apply the
///     proxy's read/write coercions.
///
/// The VM (src/vm) is differential-tested against this interpreter: same
/// programs, same outputs, same blame.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_REFINTERP_REFINTERP_H
#define GRIFT_REFINTERP_REFINTERP_H

#include "coercions/CoercionFactory.h"
#include "frontend/CoreIR.h"
#include "runtime/Blame.h"
#include "runtime/Limits.h"

#include <string>

namespace grift::refinterp {

/// Outcome of a reference-interpreter run.
struct RefResult {
  bool OK = false;
  std::string ResultText; ///< rendering of the final value (when OK)
  std::string Output;     ///< everything printed
  ErrorKind Kind = ErrorKind::Trap; ///< when !OK: what went wrong
  std::string Label;      ///< blame label (Kind == Blame)
  std::string Message;    ///< error message

  bool isBlame() const { return Kind == ErrorKind::Blame; }
};

/// Interprets \p Prog under the Figure 18 semantics. \p Input feeds
/// read-int / read-char. Deterministic; no timing side effects ((time E)
/// evaluates E and reports no measurement). \p Limits imposes resource
/// budgets: MaxSteps counts eval() steps, MaxFrames bounds interpreted
/// call depth, MaxWallNanos bounds wall time (MaxHeapBytes is not
/// meaningful here — the reference interpreter's values live on the C++
/// heap and are reclaimed by shared_ptr, not by the governed Heap).
RefResult interpret(TypeContext &Types, CoercionFactory &Coercions,
                    const core::CoreProgram &Prog, std::string Input = "",
                    const RunLimits &Limits = {});

} // namespace grift::refinterp

#endif // GRIFT_REFINTERP_REFINTERP_H
