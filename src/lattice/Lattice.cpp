#include "lattice/Lattice.h"

#include "support/RNG.h"

#include <cassert>
#include <cmath>
#include <functional>

using namespace grift;

//===----------------------------------------------------------------------===//
// Annotation traversal
//===----------------------------------------------------------------------===//

namespace {

/// Visits every type-annotation slot in an expression tree. The callback
/// receives a mutable pointer-to-annotation; a null annotation slot (an
/// omitted annotation) is skipped.
void forEachAnnot(Expr &E, const std::function<void(const Type *&)> &Visit) {
  for (Param &P : E.Params)
    if (P.Annot)
      Visit(P.Annot);
  for (Binding &B : E.Bindings) {
    if (B.Annot)
      Visit(B.Annot);
    if (B.Init)
      forEachAnnot(*B.Init, Visit);
  }
  if (E.ReturnAnnot)
    Visit(E.ReturnAnnot);
  if (E.AccAnnot)
    Visit(E.AccAnnot);
  if (E.Annot)
    Visit(E.Annot);
  for (ExprPtr &Sub : E.SubExprs)
    forEachAnnot(*Sub, Visit);
}

void forEachAnnot(Program &Prog,
                  const std::function<void(const Type *&)> &Visit) {
  for (Define &D : Prog.Defines) {
    if (D.Annot)
      Visit(D.Annot);
    forEachAnnot(*D.Body, Visit);
  }
}

/// Rebuilds \p T keeping each constructor with probability \p Keep and
/// replacing it (and its subtree) with Dyn otherwise.
const Type *randomErase(TypeContext &Ctx, const Type *T, double Keep,
                        RNG &Gen) {
  if (!Gen.flip(Keep))
    return Ctx.dyn();
  switch (T->kind()) {
  case TypeKind::Function: {
    std::vector<const Type *> Params;
    Params.reserve(T->arity());
    for (size_t I = 0; I != T->arity(); ++I)
      Params.push_back(randomErase(Ctx, T->param(I), Keep, Gen));
    return Ctx.function(std::move(Params),
                        randomErase(Ctx, T->result(), Keep, Gen));
  }
  case TypeKind::Tuple: {
    std::vector<const Type *> Elements;
    Elements.reserve(T->tupleSize());
    for (size_t I = 0; I != T->tupleSize(); ++I)
      Elements.push_back(randomErase(Ctx, T->element(I), Keep, Gen));
    return Ctx.tuple(std::move(Elements));
  }
  case TypeKind::Box:
    return Ctx.box(randomErase(Ctx, T->inner(), Keep, Gen));
  case TypeKind::Vect:
    return Ctx.vect(randomErase(Ctx, T->inner(), Keep, Gen));
  case TypeKind::Rec:
    return Ctx.rec(randomErase(Ctx, T->inner(), Keep, Gen));
  case TypeKind::Var:
    // Erasing a bound variable occurrence (to Dyn) is legal; keeping it
    // keeps the back edge.
    return T;
  default:
    return T;
  }
}

/// Wraps a constructed value with an explicit ascription to Dyn (the
/// "every constructed value is explicitly cast to Dyn" part of the
/// Dynamic Grift configuration).
bool isValueConstructor(ExprKind Kind) {
  switch (Kind) {
  case ExprKind::LitBool:
  case ExprKind::LitInt:
  case ExprKind::LitFloat:
  case ExprKind::LitChar:
  case ExprKind::Lambda:
  case ExprKind::Tuple:
  case ExprKind::BoxE:
  case ExprKind::MakeVect:
    return true;
  default:
    return false;
  }
}

void dynamizeExpr(ExprPtr &E, TypeContext &Ctx, bool WrapTop = true) {
  Expr &Node = *E;
  for (Param &P : Node.Params)
    P.Annot = Ctx.dyn();
  bool IsLetrec = Node.Kind == ExprKind::Letrec;
  for (Binding &B : Node.Bindings) {
    // letrec initializers must stay syntactic lambdas (no ascription
    // wrapper) and take their Dyn type from the lambda's parameters.
    B.Annot = IsLetrec ? nullptr : Ctx.dyn();
    dynamizeExpr(B.Init, Ctx, /*WrapTop=*/!IsLetrec);
  }
  if (Node.Kind == ExprKind::Lambda)
    Node.ReturnAnnot = Ctx.dyn();
  if (Node.AccAnnot || Node.HasAcc)
    Node.AccAnnot = Ctx.dyn();
  if (Node.Kind == ExprKind::Ascribe)
    Node.Annot = Ctx.dyn();
  for (ExprPtr &Sub : Node.SubExprs)
    dynamizeExpr(Sub, Ctx);

  if (WrapTop && isValueConstructor(Node.Kind)) {
    auto Wrapper = std::make_unique<Expr>();
    Wrapper->Kind = ExprKind::Ascribe;
    Wrapper->Loc = Node.Loc;
    Wrapper->Annot = Ctx.dyn();
    Wrapper->SubExprs.push_back(std::move(E));
    E = std::move(Wrapper);
  }
}

void dynamizeDefine(Define &D, TypeContext &Ctx) {
  D.Annot = Ctx.dyn();
  dynamizeExpr(D.Body, Ctx);
}

} // namespace

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

double grift::programPrecision(const Program &Prog) {
  uint64_t Nodes = 0;
  uint64_t Typed = 0;
  // forEachAnnot needs a mutable program; clone metadata-free walk
  // instead by const_cast (the callback only reads).
  auto &Mutable = const_cast<Program &>(Prog);
  forEachAnnot(Mutable, [&](const Type *&T) {
    Nodes += T->nodeCount();
    Typed += T->typedNodeCount();
  });
  if (Nodes == 0)
    return 0;
  return static_cast<double>(Typed) / static_cast<double>(Nodes);
}

Program grift::eraseTypes(const Program &Prog, TypeContext &Ctx) {
  Program Out = Prog.clone();
  for (Define &D : Out.Defines)
    dynamizeDefine(D, Ctx);
  return Out;
}

std::vector<Configuration> grift::sampleFineGrained(const Program &Prog,
                                                    TypeContext &Ctx,
                                                    unsigned Bins,
                                                    unsigned PerBin,
                                                    uint64_t Seed) {
  std::vector<Configuration> Out;
  if (Bins == 0 || PerBin == 0)
    return Out;
  RNG Gen(Seed);
  for (unsigned Bin = 0; Bin != Bins; ++Bin) {
    double Lo = static_cast<double>(Bin) / Bins;
    double Hi = static_cast<double>(Bin + 1) / Bins;
    for (unsigned Sample = 0; Sample != PerBin; ++Sample) {
      // Try keep-probabilities around the bin midpoint until the actual
      // precision lands inside the bin; accept the closest attempt after
      // a bounded number of tries (extreme bins can be hard to hit).
      Configuration Best;
      double BestDistance = 2.0;
      for (unsigned Attempt = 0; Attempt != 24; ++Attempt) {
        // Erasing a node discards its whole subtree, so the achieved
        // precision is below the per-node keep probability; bias the
        // keep probability upward (square root ≈ inverting an average
        // annotation depth of two).
        double Target = Lo + (Hi - Lo) * Gen.unit();
        double Keep = std::sqrt(Target);
        Program Candidate = Prog.clone();
        forEachAnnot(Candidate, [&](const Type *&T) {
          T = randomErase(Ctx, T, Keep, Gen);
        });
        double Precision = programPrecision(Candidate);
        double Mid = (Lo + Hi) / 2;
        double Distance = Precision >= Lo && Precision < Hi
                              ? 0.0
                              : std::abs(Precision - Mid);
        if (Distance < BestDistance) {
          BestDistance = Distance;
          Best.Prog = std::move(Candidate);
          Best.Precision = Precision;
        }
        if (BestDistance == 0.0)
          break;
      }
      Out.push_back(std::move(Best));
    }
  }
  return Out;
}

std::vector<Configuration> grift::coarseConfigs(const Program &Prog,
                                                TypeContext &Ctx,
                                                unsigned MaxConfigs,
                                                uint64_t Seed) {
  // Collect the indices of named defines ("modules").
  std::vector<size_t> Modules;
  for (size_t I = 0; I != Prog.Defines.size(); ++I)
    if (!Prog.Defines[I].Name.empty())
      Modules.push_back(I);
  size_t M = Modules.size();

  auto buildConfig = [&](uint64_t Mask) {
    Configuration C;
    C.Prog = Prog.clone();
    for (size_t I = 0; I != M; ++I)
      if (Mask & (UINT64_C(1) << I))
        dynamizeDefine(C.Prog.Defines[Modules[I]], Ctx);
    C.Precision = programPrecision(C.Prog);
    return C;
  };

  std::vector<Configuration> Out;
  if (MaxConfigs == 0)
    return Out;
  if (M < 64 && (UINT64_C(1) << M) <= MaxConfigs) {
    for (uint64_t Mask = 0; Mask != (UINT64_C(1) << M); ++Mask)
      Out.push_back(buildConfig(Mask));
    return Out;
  }
  // Sample: always include all-typed and (budget permitting) all-dynamic.
  RNG Gen(Seed);
  Out.push_back(buildConfig(0));
  if (MaxConfigs == 1)
    return Out;
  uint64_t Full = M >= 64 ? ~UINT64_C(0) : (UINT64_C(1) << M) - 1;
  Out.push_back(buildConfig(Full));
  for (unsigned I = 2; I < MaxConfigs; ++I)
    Out.push_back(buildConfig(Gen.next() & Full));
  return Out;
}
