//===----------------------------------------------------------------------===//
///
/// \file
/// The configuration machinery for the paper's performance-lattice
/// experiments (Section 4.1):
///
///  * `eraseTypes` — the "Dynamic Grift" configuration: every type
///    annotation becomes Dyn and every constructed value is explicitly
///    ascribed to Dyn.
///
///  * `sampleFineGrained` — the binned random sampler: starting from a
///    fully typed program, draws configurations whose overall type
///    precision falls uniformly across bins, by replacing random type
///    sub-trees with Dyn (the paper samples a linear number of
///    configurations, following Greenman and Migeed).
///
///  * `coarseConfigs` — the module-level lattice used by Figure 8's left
///    column: each top-level define is either fully typed or fully
///    dynamic (2^m configurations, enumerated or sampled).
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_LATTICE_LATTICE_H
#define GRIFT_LATTICE_LATTICE_H

#include "ast/Ast.h"
#include "types/TypeContext.h"

#include <cstdint>
#include <vector>

namespace grift {

/// A sampled configuration: the program plus its type precision in
/// [0, 1] relative to the fully typed original.
struct Configuration {
  Program Prog;
  double Precision = 0;
};

/// Fraction of type-annotation constructors that are not Dyn, across all
/// annotations in the program (0 = untyped, 1 = fully typed).
double programPrecision(const Program &Prog);

/// The fully dynamic configuration of \p Prog.
Program eraseTypes(const Program &Prog, TypeContext &Ctx);

/// Draws ≈ \p PerBin configurations in each of \p Bins precision bins
/// from the fully typed \p Prog. Deterministic in \p Seed. Returns an
/// empty vector when \p Bins or \p PerBin is zero.
std::vector<Configuration> sampleFineGrained(const Program &Prog,
                                             TypeContext &Ctx, unsigned Bins,
                                             unsigned PerBin, uint64_t Seed);

/// Module-level (per-define) configurations: every subset of defines
/// erased, enumerated exhaustively up to \p MaxConfigs and sampled
/// beyond that. The all-typed and all-dynamic configurations are always
/// included when the budget allows; \p MaxConfigs of zero yields none.
std::vector<Configuration> coarseConfigs(const Program &Prog,
                                         TypeContext &Ctx,
                                         unsigned MaxConfigs, uint64_t Seed);

} // namespace grift

#endif // GRIFT_LATTICE_LATTICE_H
