//===----------------------------------------------------------------------===//
///
/// \file
/// The cast runtime: the `coerce` function of paper Figure 6, the
/// traditional type-based `cast` it is compared against, and the
/// proxy-aware reference operations shared by both. The VM calls into
/// this class for every runtime type conversion.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_RUNTIME_RUNTIME_H
#define GRIFT_RUNTIME_RUNTIME_H

#include "coercions/CoercionFactory.h"
#include "runtime/Blame.h"
#include "runtime/Heap.h"
#include "runtime/Mode.h"
#include "runtime/Stats.h"
#include "runtime/Value.h"

#include <memory>
#include <string>

namespace grift {

class CastBackend;

/// A compiled cast site: source type, target type, blame label, and (in
/// coercion mode) the statically allocated coercion. The VM's cast table
/// holds one of these per cast instruction — paper: "the coercions that
/// are statically known are allocated once at the start of the program".
struct CastDescriptor {
  const Type *Src = nullptr;
  const Type *Tgt = nullptr;
  const std::string *Label = nullptr;
  const Coercion *C = nullptr; // coercion mode only
};

/// A small inline cache for runtime-resolved coercions. Types, coercions
/// and blame labels are interned, so a cache key is up to three raw
/// pointers and a probe is a handful of pointer compares — the
/// steady-state replacement for a MakeCache / ComposeCache /
/// ProjectCache hash lookup at a hot cast site. Four entries with
/// round-robin replacement: one entry thrashes on sites that alternate
/// between two operands (the fig4 even/odd pair), and the fully-dynamic
/// Figure 8 programs funnel several value types through one Dyn
/// elimination site; beyond four the probe stops being cheaper than the
/// hash it replaces.
struct CoercionCache {
  struct Entry {
    const void *K0 = nullptr;
    const void *K1 = nullptr;
    const void *K2 = nullptr;
    const Coercion *R = nullptr;
  };
  Entry E[4];
  uint8_t Next = 0;

  const Coercion *lookup(const void *K0, const void *K1,
                         const void *K2) const {
    for (const Entry &En : E)
      if (En.R && En.K0 == K0 && En.K1 == K1 && En.K2 == K2)
        return En.R;
    return nullptr;
  }

  void insert(const void *K0, const void *K1, const void *K2,
              const Coercion *R) {
    E[Next] = {K0, K1, K2, R};
    Next = (Next + 1) & 3;
  }
};

class Runtime {
public:
  Runtime(TypeContext &Types, CoercionFactory &Coercions, CastMode Mode);
  ~Runtime();
  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  TypeContext &typeContext() { return Types; }
  CoercionFactory &coercionFactory() { return Coercions; }
  Heap &heap() { return TheHeap; }
  RuntimeStats &stats() { return Stats; }
  CastMode mode() const { return Mode; }

  /// The mode's cast backend: owns cast application, Dyn elimination,
  /// reference semantics, and the VM call-protocol predicates. Every
  /// former `switch (Mode)` in the runtime delegates through here.
  CastBackend &backend() { return *Backend; }

  //===--------------------------------------------------------------------===//
  // Cast application (mode dispatch)
  //===--------------------------------------------------------------------===//

  /// Applies a compiled cast site to a value. Counts one runtime cast.
  /// \p IC, when given, is the call site's inline cache (the VM passes
  /// one per Cast instruction); without one the runtime falls back to
  /// its own shared per-operation caches.
  Value applyCast(Value V, const CastDescriptor &Desc,
                  CoercionCache *IC = nullptr);

  /// Applies a coercion (coercion mode). Counts one runtime cast.
  Value applyCoercion(Value V, const Coercion *C, CoercionCache *IC = nullptr);

  /// Applies a type-based cast (type-based mode). Counts one runtime cast.
  Value applyTypeBased(Value V, const Type *S, const Type *T,
                       const std::string *Label);

  /// Casts between \p S and \p T at runtime under the current mode; used
  /// by the Dyn elimination forms whose target types are only known at
  /// run time. Counts one runtime cast.
  Value castRuntime(Value V, const Type *S, const Type *T,
                    const std::string *Label, CoercionCache *IC = nullptr);

  /// The interned normal-form coercion for S ⇒ T (shared DynCastIC on
  /// repeats). Used by the VM to turn a runtime-typed pending return
  /// cast into an explicit coercion argument (coercion-passing style).
  const Coercion *internedCoercion(const Type *S, const Type *T,
                                   const std::string *Label);

  /// compose(First, Second): the coercion applying \p First then
  /// \p Second, through the shared return-composition cache. Counts one
  /// composition. Used by the VM to fold a frame's pending return
  /// coercions into one (coercion-passing style).
  const Coercion *composeForReturn(const Coercion *First,
                                   const Coercion *Second);

  //===--------------------------------------------------------------------===//
  // Dyn introspection (lazy-D)
  //===--------------------------------------------------------------------===//

  /// TYPE(v): the source type of a value of static type Dyn.
  const Type *runtimeTypeOf(Value V) const;

  /// UNTAG(v): the underlying value of a value of static type Dyn.
  Value dynUnwrap(Value V) const;

  /// INJECT(v, S): tags \p V (of type \p S ≠ Dyn) as Dyn. Self-describing
  /// values (ints, bools, chars, unit, floats) are returned unchanged;
  /// everything else is wrapped in a DynBox recording \p S.
  Value inject(Value V, const Type *S);

  //===--------------------------------------------------------------------===//
  // Proxy-aware reference operations
  //===--------------------------------------------------------------------===//

  Value boxRead(Value Box);
  void boxWrite(Value Box, Value Content);
  Value vectorRef(Value Vect, int64_t Index);
  void vectorSet(Value Vect, int64_t Index, Value Content);
  int64_t vectorLength(Value Vect);

  /// The function-proxy chain length starting at \p Callee (0 for a plain
  /// closure). Used by the VM for chain statistics.
  static unsigned proxyDepth(Value Callee);

  //===--------------------------------------------------------------------===//
  // Monotonic references (CastMode::Monotonic)
  //===--------------------------------------------------------------------===//

  /// Monotonic cast: like a type-based cast except reference casts never
  /// allocate a proxy — they strengthen the target cell's runtime type
  /// (meta slot 0) to the meet of its current type and the cast's element
  /// type, converting stored values in place. Function casts use
  /// coercions. Counts one runtime cast.
  Value applyMonotonic(Value V, const Type *S, const Type *T,
                       const std::string *Label);

  /// Monotonic read: loads from a bare cell whose runtime type (RTTI) may
  /// be more precise than the static view type \p ViewElem, converting
  /// the loaded value up to the view. The fully static fast path never
  /// reaches here (the compiler emits unchecked reads).
  Value monoBoxRead(Value Box, const Type *ViewElem,
                    const std::string *Label);
  void monoBoxWrite(Value Box, Value Content, const Type *ViewElem,
                    const std::string *Label);
  Value monoVectorRef(Value Vect, int64_t Index, const Type *ViewElem,
                      const std::string *Label);
  void monoVectorSet(Value Vect, int64_t Index, Value Content,
                     const Type *ViewElem, const std::string *Label);

  //===--------------------------------------------------------------------===//
  // Errors
  //===--------------------------------------------------------------------===//

  [[noreturn]] void blame(const std::string *Label, std::string Message);
  [[noreturn]] void trap(std::string Message);

  /// Renders a value for program output / tests. Reads through proxies
  /// (applying read conversions) so every mode prints the same answer.
  std::string valueToString(Value V, unsigned Depth = 6);

private:
  friend class CastBackend; // reaches cachedCoercion / strengthenCell /
                            // the shared fallback caches on behalf of
                            // the concrete backends

  TypeContext &Types;
  CoercionFactory &Coercions;
  CastMode Mode;
  std::unique_ptr<CastBackend> Backend;
  Heap TheHeap;
  RuntimeStats Stats;

  Value coerce(Value V, const Coercion *C, CoercionCache *IC = nullptr);
  Value castTB(Value V, const Type *S, const Type *T,
               const std::string *Label);

  /// Probes \p IC for (K0, K1, K2); on a miss runs \p Make, fills the
  /// cache and returns the result. Counts the probe in the stats either
  /// way (a site's first visit is the miss that seeds its cache).
  template <class MakeFn>
  const Coercion *cachedCoercion(CoercionCache &IC, const void *K0,
                                 const void *K1, const void *K2,
                                 MakeFn Make) {
    if (const Coercion *C = IC.lookup(K0, K1, K2)) {
      ++Stats.CacheHits;
      return C;
    }
    ++Stats.CacheMisses;
    const Coercion *C = Make();
    IC.insert(K0, K1, K2, C);
    return C;
  }

  /// Shared fallback caches for conversion sites that have no per-site
  /// slot in the VM: proxy-apply composition (function and reference),
  /// projection of a Dyn payload, runtime-typed make (doReturn's
  /// pending Dyn result casts, monotonic function casts), and pending
  /// return-coercion composition (coercion-passing style).
  CoercionCache FunComposeIC, RefComposeIC, ProjectIC, DynCastIC,
      RetComposeIC;
  Value castMono(Value V, const Type *S, const Type *T,
                 const std::string *Label);
  void strengthenCell(HeapObject *Cell, const Type *TargetElem,
                      const std::string *Label);

  HeapObject *underlyingRef(Value Ref) const;

  /// (cell, target-type) pairs currently being strengthened; breaks
  /// cycles through self-referential heap structures. Each entry points
  /// at a Value pinned as a heap temp root by the owning strengthenCell
  /// frame, so when a mid-strengthen minor collection promotes the cell
  /// the identity comparison follows it — a raw HeapObject* would go
  /// stale the moment the nursery copy moved.
  std::vector<std::pair<const Value *, const Type *>> Strengthening;
};

} // namespace grift

#endif // GRIFT_RUNTIME_RUNTIME_H
