//===----------------------------------------------------------------------===//
///
/// \file
/// The cast-backend interface: one object per CastMode owning the
/// mode-varying half of the runtime — cast application, runtime-typed
/// casts at Dyn elimination sites, reference-coercion semantics
/// (proxy-compose vs monotonic in-place strengthening), the proxied
/// reference slow paths, and the calling convention the VM uses for
/// proxy closures and pending return casts.
///
/// The Runtime keeps its public API and the mode-independent machinery
/// (coerce's non-reference branches, castTB, castMono, Dyn tagging, the
/// shared inline caches) and delegates every former `switch (Mode)` to
/// its backend. createCastBackend() is the single exhaustive map from
/// CastMode to behavior: adding a mode without extending it fails the
/// build via the static_assert on NumCastModes.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_RUNTIME_CASTBACKEND_H
#define GRIFT_RUNTIME_CASTBACKEND_H

#include "runtime/Mode.h"
#include "runtime/Value.h"

#include <cstdint>
#include <memory>
#include <string>

namespace grift {

class Coercion;
class Runtime;
class Type;
struct CastDescriptor;
struct CoercionCache;

class CastBackend {
public:
  explicit CastBackend(Runtime &RT) : RT(RT) {}
  virtual ~CastBackend() = default;
  CastBackend(const CastBackend &) = delete;
  CastBackend &operator=(const CastBackend &) = delete;

  virtual CastMode castMode() const = 0;

  //===--------------------------------------------------------------------===//
  // Cast application
  //===--------------------------------------------------------------------===//

  /// Applies a compiled cast site (the VM's Cast instruction).
  virtual Value applyCast(Value V, const CastDescriptor &Desc,
                          CoercionCache *IC) = 0;

  /// Casts between types only known at run time (Dyn elimination forms,
  /// monotonic view conversions, pending Dyn result casts).
  virtual Value castRuntime(Value V, const Type *S, const Type *T,
                            const std::string *Label, CoercionCache *IC) = 0;

  /// The RefC branch of coerce: what a reference coercion does to a
  /// reference value. Default: space-efficient proxy composition (at
  /// most one proxy per reference). Monotonic overrides this to
  /// strengthen the cell in place and never allocate a proxy.
  virtual Value coerceRef(Value V, const Coercion *C, CoercionCache *IC);

  //===--------------------------------------------------------------------===//
  // Proxied reference slow paths
  //
  // Runtime::boxRead and friends keep the bare-object fast path inline
  // and only delegate here once a value is proxied, so these virtuals
  // are never on the fully typed hot path.
  //===--------------------------------------------------------------------===//

  virtual Value proxyBoxRead(Value Box) = 0;
  virtual void proxyBoxWrite(Value Box, Value Content) = 0;
  virtual Value proxyVectorRef(Value Vect, int64_t Index) = 0;
  virtual void proxyVectorSet(Value Vect, int64_t Index, Value Content) = 0;

  //===--------------------------------------------------------------------===//
  // Dyn-site reference elimination (UnboxDyn / BoxSetDyn / VecRefDyn /
  // VecSetDyn). \p Inner is the untagged reference, \p Elem the DynBox's
  // view element type. Default: guarded read/write through the (possibly
  // proxied) reference plus a runtime cast to/from Dyn. Monotonic reads
  // and writes against the cell's own runtime type instead.
  //===--------------------------------------------------------------------===//

  virtual Value dynBoxRead(Value Inner, const Type *Elem,
                           const std::string *Label, CoercionCache *IC);
  virtual void dynBoxWrite(Value Inner, Value Content, const Type *Elem,
                           const std::string *Label, CoercionCache *IC);
  virtual Value dynVectorRef(Value Inner, int64_t Index, const Type *Elem,
                             const std::string *Label, CoercionCache *IC);
  virtual void dynVectorSet(Value Inner, int64_t Index, Value Content,
                            const Type *Elem, const std::string *Label,
                            CoercionCache *IC);

  //===--------------------------------------------------------------------===//
  // Call protocol
  //===--------------------------------------------------------------------===//

  /// True when proxy closures carry a Fun coercion in meta(0) (every
  /// mode but TypeBased, whose proxies carry the S/T/label triple).
  virtual bool coercionCallProtocol() const { return true; }

  /// True when the VM must compose a frame's pending return coercions
  /// into a single per-frame coercion argument instead of stacking them
  /// (coercion-passing style). With this off, a chain of n proxied tail
  /// calls accumulates Θ(n) pending return casts on the reused frame;
  /// with it on, every frame carries at most one.
  virtual bool composesPendingReturns() const { return false; }

protected:
  Runtime &RT;

  // Forwarders into Runtime's private machinery (CastBackend is a
  // friend; protected so the concrete backends can reach them too).
  const Coercion *cachedCompose(CoercionCache *IC, const Coercion *Old,
                                const Coercion *New);
  const Coercion *cachedMake(CoercionCache *IC, const Type *S, const Type *T,
                             const std::string *Label);
  void strengthenCell(Value Ref, const Type *TargetElem,
                      const std::string *Label);
};

/// The exhaustive CastMode → backend map. Compile-time guarded: adding a
/// mode breaks the build here until a backend is registered.
std::unique_ptr<CastBackend> createCastBackend(CastMode Mode, Runtime &RT);

} // namespace grift

#endif // GRIFT_RUNTIME_CASTBACKEND_H
