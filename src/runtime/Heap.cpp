#include "runtime/Heap.h"

#include "runtime/Blame.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

using namespace grift;

Heap::Heap() = default;

Heap::~Heap() {
  HeapObject *Object = AllObjects;
  while (Object) {
    HeapObject *Next = Object->Next;
    std::free(Object);
    Object = Next;
  }
}

HeapObject *Heap::allocateObject(ObjectKind Kind, uint32_t NumSlots) {
  size_t Bytes = sizeof(HeapObject) + NumSlots * sizeof(Value);
  if (Injector) {
    ++Injector->AllocCount;
    if (Injector->FailAllocAt &&
        Injector->AllocCount == Injector->FailAllocAt)
      throw RuntimeError{ErrorKind::OutOfMemory, "",
                         "injected failure of allocation #" +
                             std::to_string(Injector->AllocCount)};
    if (Injector->GCTorturePeriod &&
        Injector->AllocCount % Injector->GCTorturePeriod == 0) {
      ++Injector->ForcedCollections;
      collect();
    }
  }
  maybeCollect(Bytes);
  if (HeapLimit && LiveBytesAtGC + BytesSinceGC + Bytes > HeapLimit) {
    // Floating garbage must not count against the budget: collect once,
    // then re-measure before declaring defeat.
    collect();
    if (LiveBytesAtGC + BytesSinceGC + Bytes > HeapLimit)
      throw RuntimeError{ErrorKind::OutOfMemory, "",
                         "heap limit of " + std::to_string(HeapLimit) +
                             " bytes exceeded allocating " +
                             std::to_string(Bytes) + " bytes"};
  }
  void *Memory = std::malloc(Bytes);
  if (!Memory) {
    // The allocator itself failed; reclaim garbage and retry once, then
    // degrade to a reportable OutOfMemory instead of crashing.
    collect();
    Memory = std::malloc(Bytes);
    if (!Memory)
      throw RuntimeError{ErrorKind::OutOfMemory, "",
                         "allocator failed for a " + std::to_string(Bytes) +
                             "-byte object"};
  }
  assert((reinterpret_cast<uintptr_t>(Memory) & Value::TagMask) == 0 &&
         "heap objects must be 8-byte aligned");
  HeapObject *Object = new (Memory) HeapObject();
  Object->Kind = Kind;
  Object->NumSlots = NumSlots;
  Object->SlotArray = reinterpret_cast<Value *>(
      static_cast<char *>(Memory) + sizeof(HeapObject));
  for (uint32_t I = 0; I != NumSlots; ++I)
    Object->SlotArray[I] = Value::unit();
  Object->Next = AllObjects;
  AllObjects = Object;
  ++LiveObjects;
  BytesAllocated += Bytes;
  BytesSinceGC += Bytes;
  PeakHeapBytes = std::max(PeakHeapBytes, LiveBytesAtGC + BytesSinceGC);
  return Object;
}

Value Heap::allocFloat(double D) {
  HeapObject *Object = allocateObject(ObjectKind::Float, 0);
  uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof(Bits));
  Object->Raw = Bits;
  return Value::fromHeap(Object);
}

Value Heap::allocTuple(uint32_t Size) {
  return Value::fromHeap(allocateObject(ObjectKind::Tuple, Size));
}

Value Heap::allocBox(Value Content) {
  Rooted Root(*this, Content);
  HeapObject *Object = allocateObject(ObjectKind::Box, 1);
  Object->slot(0) = Root.get();
  return Value::fromHeap(Object);
}

Value Heap::allocVector(uint32_t Size, Value Fill) {
  Rooted Root(*this, Fill);
  HeapObject *Object = allocateObject(ObjectKind::Vector, Size);
  for (uint32_t I = 0; I != Size; ++I)
    Object->slot(I) = Root.get();
  return Value::fromHeap(Object);
}

Value Heap::allocClosure(uint32_t FunctionIndex, uint32_t NumFree) {
  HeapObject *Object = allocateObject(ObjectKind::Closure, NumFree);
  Object->Raw = FunctionIndex;
  return Value::fromHeap(Object);
}

Value Heap::allocDynBox(Value Wrapped, const Type *SourceType) {
  Rooted Root(*this, Wrapped);
  HeapObject *Object = allocateObject(ObjectKind::DynBox, 1);
  Object->slot(0) = Root.get();
  Object->setMeta(0, SourceType);
  return Value::fromHeap(Object);
}

Value Heap::allocProxyClosure(Value Wrapped, const void *M0, const void *M1,
                              const void *M2) {
  Rooted Root(*this, Wrapped);
  HeapObject *Object = allocateObject(ObjectKind::ProxyClosure, 1);
  Object->slot(0) = Root.get();
  Object->setMeta(0, M0);
  Object->setMeta(1, M1);
  Object->setMeta(2, M2);
  return Value::fromProxy(Object);
}

Value Heap::allocRefProxy(Value Wrapped, const void *M0, const void *M1,
                          const void *M2) {
  Rooted Root(*this, Wrapped);
  HeapObject *Object = allocateObject(ObjectKind::RefProxy, 1);
  Object->slot(0) = Root.get();
  Object->setMeta(0, M0);
  Object->setMeta(1, M1);
  Object->setMeta(2, M2);
  return Value::fromProxy(Object);
}

void Heap::addRootProvider(RootProvider *Provider) {
  RootProviders.push_back(Provider);
}

void Heap::removeRootProvider(RootProvider *Provider) {
  RootProviders.erase(
      std::remove(RootProviders.begin(), RootProviders.end(), Provider),
      RootProviders.end());
}

void Heap::mark(Value V) {
  if (!V.isPointer())
    return;
  HeapObject *Object = V.object();
  if (Object->Marked)
    return;
  Object->Marked = true;
  MarkStack.push_back(Object);
  while (!MarkStack.empty()) {
    HeapObject *Current = MarkStack.back();
    MarkStack.pop_back();
    for (uint32_t I = 0; I != Current->NumSlots; ++I) {
      Value Slot = Current->SlotArray[I];
      if (!Slot.isPointer())
        continue;
      HeapObject *Child = Slot.object();
      if (!Child->Marked) {
        Child->Marked = true;
        MarkStack.push_back(Child);
      }
    }
  }
}

void Heap::maybeCollect(size_t UpcomingBytes) {
  if (BytesSinceGC + UpcomingBytes >= GCThreshold)
    collect();
}

void Heap::collect() {
  // Mark.
  for (RootProvider *Provider : RootProviders)
    Provider->visitRoots(
        [](Value &Slot, void *Ctx) { static_cast<Heap *>(Ctx)->mark(Slot); },
        this);
  for (Value *Slot : TempRoots) {
    assert(Slot && "dangling temp root at collection time — push/pop "
                   "mismatch (use the RAII Rooted helper)");
    mark(*Slot);
  }

  // Sweep.
  HeapObject **Link = &AllObjects;
  size_t Live = 0;
  size_t LiveBytes = 0;
  while (*Link) {
    HeapObject *Object = *Link;
    if (Object->Marked) {
      Object->Marked = false;
      ++Live;
      LiveBytes += sizeof(HeapObject) + Object->NumSlots * sizeof(Value);
      Link = &Object->Next;
    } else {
      *Link = Object->Next;
      std::free(Object);
    }
  }
  LiveObjects = Live;
  BytesSinceGC = 0;
  LiveBytesAtGC = LiveBytes;
  PeakHeapBytes = std::max(PeakHeapBytes, LiveBytes);
  ++Collections;
  // Grow the threshold with the live set so GC stays amortized-linear —
  // but never past a fraction of the hard heap limit, or maybeCollect
  // would stop firing and every allocation near the limit would take the
  // full-collect path in allocateObject.
  GCThreshold = std::max<size_t>(LiveBytes * 2, 8u << 20);
  clampThresholdToLimit();
}
