#include "runtime/Heap.h"

#include "runtime/Blame.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

using namespace grift;

namespace {

/// Per-thread cache of retired pool blocks. Executables build a fresh
/// Heap per run, so without recycling every run would re-malloc its
/// blocks; with it, steady-state runs allocate no block memory at all.
/// Capped so an occasional huge run cannot pin memory forever; engine
/// pools additionally purge the cache at epoch resets. The wrapper's
/// destructor frees whatever is still cached at thread exit — the
/// blocks are raw malloc'd memory the vector does not own.
constexpr size_t BlockCacheCap = 64;

struct BlockCache {
  std::vector<void *> Blocks;
  ~BlockCache() {
    for (void *Block : Blocks)
      std::free(Block);
  }
};
thread_local BlockCache ThreadCache;

} // namespace

Heap::Heap() = default;

Heap::~Heap() {
  HeapObject *Object = LargeObjects;
  while (Object) {
    HeapObject *Next = Object->Next;
    std::free(Object);
    Object = Next;
  }
  for (SizeClass &C : Classes) {
    for (PoolBlock *Block : C.Blocks) {
      GRIFT_UNPOISON(Block, BlockBytes);
      if (ThreadCache.Blocks.size() < BlockCacheCap)
        ThreadCache.Blocks.push_back(Block);
      else
        std::free(Block);
    }
  }
}

void Heap::purgeThreadBlockCache() {
  for (void *Block : ThreadCache.Blocks)
    std::free(Block);
  ThreadCache.Blocks.clear();
  ThreadCache.Blocks.shrink_to_fit();
}

PoolBlock *Heap::refillBlock(unsigned Class) {
  void *Memory;
  if (!ThreadCache.Blocks.empty()) {
    Memory = ThreadCache.Blocks.back();
    ThreadCache.Blocks.pop_back();
  } else {
    Memory = std::malloc(BlockBytes);
    if (!Memory)
      return nullptr;
  }
  GRIFT_UNPOISON(Memory, BlockBytes);
  PoolBlock *Block = new (Memory) PoolBlock();
  Block->CellSize = ClassCellSizes[Class];
  Block->Capacity =
      static_cast<uint32_t>((BlockBytes - sizeof(PoolBlock)) / Block->CellSize);
  Block->Bump = 0;
  Block->SweepBound = 0;
  SizeClass &C = Classes[Class];
  // Appending while a lazy sweep is pending is fine: the new block's
  // SweepBound is 0, so the sweep passes over it without touching cells.
  C.Blocks.push_back(Block);
  return Block;
}

void Heap::sweepBlock(PoolBlock *Block, SizeClass &C) {
  for (uint32_t I = 0; I != Block->SweepBound; ++I) {
    HeapObject *Object = Block->cell(I);
    if (Object->Marked) {
      Object->Marked = false;
      continue;
    }
    // Dead since the last mark phase, or already free from an earlier
    // cycle (free lists are rebuilt from scratch each cycle).
    Object->Free = true;
    Object->Next = C.FreeList;
    C.FreeList = Object;
    GRIFT_POISON(reinterpret_cast<char *>(Object) + sizeof(HeapObject),
                 Block->CellSize - sizeof(HeapObject));
  }
}

bool Heap::sweepForFreeCells(SizeClass &C) {
  while (C.SweepCursor < C.Blocks.size()) {
    sweepBlock(C.Blocks[C.SweepCursor++], C);
    if (C.FreeList)
      return true;
  }
  return false;
}

void Heap::finishSweep() {
  for (SizeClass &C : Classes)
    while (C.SweepCursor < C.Blocks.size())
      sweepBlock(C.Blocks[C.SweepCursor++], C);
}

HeapObject *Heap::acquireSmallCell(unsigned Class) {
  SizeClass &C = Classes[Class];
  for (;;) {
    if (HeapObject *Object = C.FreeList) {
      C.FreeList = Object->Next;
      GRIFT_UNPOISON(reinterpret_cast<char *>(Object) + sizeof(HeapObject),
                     ClassCellSizes[Class] - sizeof(HeapObject));
      return Object;
    }
    if (!C.Blocks.empty()) {
      PoolBlock *Block = C.Blocks.back();
      if (Block->Bump < Block->Capacity)
        return Block->cell(Block->Bump++);
    }
    if (sweepForFreeCells(C))
      continue;
    if (!refillBlock(Class))
      return nullptr;
  }
}

HeapObject *Heap::allocateObject(ObjectKind Kind, uint32_t NumSlots) {
  size_t Bytes = cellBytesFor(NumSlots);
  if (Injector) {
    ++Injector->AllocCount;
    if (Injector->FailAllocAt &&
        Injector->AllocCount == Injector->FailAllocAt)
      throw RuntimeError{ErrorKind::OutOfMemory, "",
                         "injected failure of allocation #" +
                             std::to_string(Injector->AllocCount)};
    if (Injector->GCTorturePeriod &&
        Injector->AllocCount % Injector->GCTorturePeriod == 0) {
      ++Injector->ForcedCollections;
      collect();
    }
  }
  bool Collected = false;
  if (BytesSinceGC + Bytes >= GCThreshold) {
    collect();
    Collected = true;
  }
  if (HeapLimit && LiveBytesAtGC + BytesSinceGC + Bytes > HeapLimit) {
    // Floating garbage must not count against the budget: collect once,
    // then re-measure before declaring defeat — but when the threshold
    // path just collected, nothing has been allocated since, so a second
    // back-to-back collection could not reclaim anything more.
    if (Collected)
      ++DoubleCollectionsAvoided;
    else
      collect();
    if (LiveBytesAtGC + BytesSinceGC + Bytes > HeapLimit)
      throw RuntimeError{ErrorKind::OutOfMemory, "",
                         "heap limit of " + std::to_string(HeapLimit) +
                             " bytes exceeded allocating " +
                             std::to_string(Bytes) + " bytes"};
  }

  void *Memory;
  if (NumSlots > MaxSmallSlots) {
    Memory = std::malloc(Bytes);
    if (!Memory) {
      // The allocator itself failed; reclaim garbage and retry once,
      // then degrade to a reportable OutOfMemory instead of crashing.
      collect();
      Memory = std::malloc(Bytes);
      if (!Memory)
        throw RuntimeError{ErrorKind::OutOfMemory, "",
                           "allocator failed for a " + std::to_string(Bytes) +
                               "-byte object"};
    }
    ++LargeAllocated;
  } else {
    unsigned Class = classForSlots(NumSlots);
    Memory = acquireSmallCell(Class);
    if (!Memory) {
      // Block mapping failed; a collection refills the lazy-sweep queue,
      // so retry the acquire before giving up.
      collect();
      Memory = acquireSmallCell(Class);
      if (!Memory)
        throw RuntimeError{ErrorKind::OutOfMemory, "",
                           "allocator failed for a " + std::to_string(Bytes) +
                               "-byte object"};
    }
    ++Classes[Class].ObjectsAllocated;
  }
  assert((reinterpret_cast<uintptr_t>(Memory) & 7) == 0 &&
         "heap objects must be 8-byte aligned");
  HeapObject *Object = initObject(Memory, Kind, NumSlots);
  if (NumSlots > MaxSmallSlots) {
    Object->Next = LargeObjects;
    LargeObjects = Object;
  }
  ++LiveObjects;
  BytesAllocated += Bytes;
  BytesSinceGC += Bytes;
  PeakHeapBytes = std::max(PeakHeapBytes, LiveBytesAtGC + BytesSinceGC);
  return Object;
}

Value Heap::allocBoxSlow(Value Content) {
  Rooted Root(*this, Content);
  HeapObject *Object = allocateObject(ObjectKind::Box, 1);
  Object->slot(0) = Root.get();
  return Value::fromHeap(Object);
}

Value Heap::allocVectorSlow(uint32_t Size, Value Fill) {
  Rooted Root(*this, Fill);
  HeapObject *Object = allocateObject(ObjectKind::Vector, Size);
  for (uint32_t I = 0; I != Size; ++I)
    Object->slot(I) = Root.get();
  return Value::fromHeap(Object);
}

Value Heap::allocClosureSlow(uint32_t FunctionIndex, uint32_t NumFree) {
  HeapObject *Object = allocateObject(ObjectKind::Closure, NumFree);
  Object->Raw = FunctionIndex;
  return Value::fromHeap(Object);
}

Value Heap::allocDynBox(Value Wrapped, const Type *SourceType) {
  Rooted Root(*this, Wrapped);
  HeapObject *Object;
  if (HeapObject *Fast = tryFastAlloc(ObjectKind::DynBox, 1))
    Object = Fast;
  else
    Object = allocateObject(ObjectKind::DynBox, 1);
  Object->slot(0) = Root.get();
  Object->setMeta(0, SourceType);
  return Value::fromHeap(Object);
}

Value Heap::allocProxyClosure(Value Wrapped, const void *M0, const void *M1,
                              const void *M2) {
  Rooted Root(*this, Wrapped);
  HeapObject *Object;
  if (HeapObject *Fast = tryFastAlloc(ObjectKind::ProxyClosure, 1))
    Object = Fast;
  else
    Object = allocateObject(ObjectKind::ProxyClosure, 1);
  Object->slot(0) = Root.get();
  Object->setMeta(0, M0);
  Object->setMeta(1, M1);
  Object->setMeta(2, M2);
  return Value::fromProxy(Object);
}

Value Heap::allocRefProxy(Value Wrapped, const void *M0, const void *M1,
                          const void *M2) {
  Rooted Root(*this, Wrapped);
  HeapObject *Object;
  if (HeapObject *Fast = tryFastAlloc(ObjectKind::RefProxy, 1))
    Object = Fast;
  else
    Object = allocateObject(ObjectKind::RefProxy, 1);
  Object->slot(0) = Root.get();
  Object->setMeta(0, M0);
  Object->setMeta(1, M1);
  Object->setMeta(2, M2);
  return Value::fromProxy(Object);
}

void Heap::addRootProvider(RootProvider *Provider) {
  RootProviders.push_back(Provider);
}

void Heap::removeRootProvider(RootProvider *Provider) {
  RootProviders.erase(
      std::remove(RootProviders.begin(), RootProviders.end(), Provider),
      RootProviders.end());
}

void Heap::mark(Value V) {
  if (!V.isPointer())
    return;
  HeapObject *Object = V.object();
  if (Object->Marked)
    return;
  Object->Marked = true;
  ++MarkedObjects;
  MarkedBytes += cellBytesFor(Object->NumSlots);
  MarkStack.push_back(Object);
  while (!MarkStack.empty()) {
    HeapObject *Current = MarkStack.back();
    MarkStack.pop_back();
    for (uint32_t I = 0; I != Current->NumSlots; ++I) {
      Value Slot = Current->SlotArray[I];
      if (!Slot.isPointer())
        continue;
      HeapObject *Child = Slot.object();
      if (!Child->Marked) {
        Child->Marked = true;
        ++MarkedObjects;
        MarkedBytes += cellBytesFor(Child->NumSlots);
        MarkStack.push_back(Child);
      }
    }
  }
}

void Heap::collect() {
  auto Start = std::chrono::steady_clock::now();

  // Finish the previous cycle's lazy sweep first: unswept blocks still
  // carry last cycle's mark bits, which would corrupt this mark phase.
  finishSweep();

  // Mark. Live object/byte counts are taken here so the accounting is
  // exact the moment collect() returns, before any lazy sweeping.
  MarkedObjects = 0;
  MarkedBytes = 0;
  for (RootProvider *Provider : RootProviders)
    Provider->visitRoots(
        [](Value &Slot, void *Ctx) { static_cast<Heap *>(Ctx)->mark(Slot); },
        this);
  for (Value *Slot : TempRoots) {
    assert(Slot && "dangling temp root at collection time — push/pop "
                   "mismatch (use the RAII Rooted helper)");
    mark(*Slot);
  }

  // Sweep the large-object list eagerly: it is short (big vectors only)
  // and each entry returns real memory to malloc.
  HeapObject **Link = &LargeObjects;
  while (*Link) {
    HeapObject *Object = *Link;
    if (Object->Marked) {
      Object->Marked = false;
      Link = &Object->Next;
    } else {
      *Link = Object->Next;
      std::free(Object);
    }
  }

  // Schedule the lazy sweep of every pool block. Free lists are rebuilt
  // from scratch by the sweep — clearing them here is what makes cells
  // allocated *after* this point (bump or swept-list pops) safe from
  // being treated as dead by the pending sweep: pops only ever return
  // cells a sweep has already visited, and bump cells sit at or above
  // SweepBound.
  for (SizeClass &C : Classes) {
    C.FreeList = nullptr;
    C.SweepCursor = 0;
    for (PoolBlock *Block : C.Blocks)
      Block->SweepBound = Block->Bump;
  }

  LiveObjects = MarkedObjects;
  BytesSinceGC = 0;
  LiveBytesAtGC = MarkedBytes;
  PeakHeapBytes = std::max(PeakHeapBytes, MarkedBytes);
  ++Collections;
  // Grow the threshold with the live set so GC stays amortized-linear —
  // but never past a fraction of the hard heap limit, or maybeCollect
  // would stop firing and every allocation near the limit would take the
  // full-collect path in allocateObject.
  GCThreshold = std::max<size_t>(MarkedBytes * 2, 8u << 20);
  clampThresholdToLimit();

  uint64_t Nanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
  GCPauseTotalNs += Nanos;
  GCPauseMaxNs = std::max(GCPauseMaxNs, Nanos);
}
