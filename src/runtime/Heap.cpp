#include "runtime/Heap.h"

#include "runtime/Blame.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_set>

using namespace grift;

namespace {

/// Per-thread cache of retired pool blocks. Executables build a fresh
/// Heap per run, so without recycling every run would re-malloc its
/// blocks; with it, steady-state runs allocate no block memory at all.
/// Capped so an occasional huge run cannot pin memory forever; engine
/// pools additionally purge the cache at epoch resets. The wrapper's
/// destructor frees whatever is still cached at thread exit — the
/// blocks are raw malloc'd memory the vector does not own.
constexpr size_t BlockCacheCap = 64;

/// Cells a post-minor incremental sweep slice may examine. Two blocks'
/// worth: enough to keep reclamation ahead of a 256 KiB nursery's
/// promotion rate, small enough that the slice stays off the pause path.
constexpr size_t MinorSweepSliceCells = 2048;

struct BlockCache {
  std::vector<void *> Blocks;
  ~BlockCache() {
    for (void *Block : Blocks)
      std::free(Block);
  }
};
thread_local BlockCache ThreadCache;

} // namespace

Heap::Heap() = default;

Heap::~Heap() {
  HeapObject *Object = LargeObjects;
  while (Object) {
    HeapObject *Next = Object->Next;
    std::free(Object);
    Object = Next;
  }
  for (SizeClass &C : Classes) {
    for (PoolBlock *Block : C.Blocks) {
      GRIFT_UNPOISON(Block, BlockBytes);
      if (ThreadCache.Blocks.size() < BlockCacheCap)
        ThreadCache.Blocks.push_back(Block);
      else
        std::free(Block);
    }
  }
  if (NurseryBase) {
    GRIFT_UNPOISON(NurseryBase, NurserySize);
    std::free(NurseryBase);
  }
}

void Heap::purgeThreadBlockCache() {
  for (void *Block : ThreadCache.Blocks)
    std::free(Block);
  ThreadCache.Blocks.clear();
  ThreadCache.Blocks.shrink_to_fit();
}

PoolBlock *Heap::refillBlock(unsigned Class) {
  void *Memory;
  if (!ThreadCache.Blocks.empty()) {
    Memory = ThreadCache.Blocks.back();
    ThreadCache.Blocks.pop_back();
  } else {
    Memory = std::malloc(BlockBytes);
    if (!Memory)
      return nullptr;
  }
  GRIFT_UNPOISON(Memory, BlockBytes);
  PoolBlock *Block = new (Memory) PoolBlock();
  Block->CellSize = ClassCellSizes[Class];
  Block->Capacity =
      static_cast<uint32_t>((BlockBytes - sizeof(PoolBlock)) / Block->CellSize);
  Block->Bump = 0;
  Block->SweepBound = 0;
  SizeClass &C = Classes[Class];
  // Appending while a lazy sweep is pending is fine: the new block's
  // SweepBound is 0, so the sweep passes over it without touching cells.
  C.Blocks.push_back(Block);
  return Block;
}

void Heap::ensureNursery() {
  if (NurseryBase || !NurserySizeCfg)
    return;
  void *Memory = std::malloc(NurserySizeCfg);
  if (!Memory) {
    // Out of memory before the program even allocated: degrade to the
    // nursery-off configuration rather than failing the run here — the
    // pools' own failure paths produce a reportable OutOfMemory.
    NurserySizeCfg = 0;
    return;
  }
  NurseryBase = static_cast<char *>(Memory);
  NurserySize = NurserySizeCfg;
  NurseryUsed = 0;
  YoungObjects = 0;
  GRIFT_POISON(NurseryBase, NurserySize);
}

void Heap::resetNursery() {
  GRIFT_POISON(NurseryBase, NurserySize);
  NurseryUsed = 0;
  YoungObjects = 0;
}

void Heap::setNurserySize(size_t Bytes) {
  // Evacuate residents so no live object is freed with the region.
  if (NurseryBase && NurseryUsed)
    minorCollect();
  if (NurseryBase) {
    GRIFT_UNPOISON(NurseryBase, NurserySize);
    std::free(NurseryBase);
    NurseryBase = nullptr;
    NurserySize = 0;
    NurseryUsed = 0;
    YoungObjects = 0;
  }
  flushRememberedSet();
  NurserySizeCfg = Bytes == SIZE_MAX ? DefaultNurseryBytes : Bytes;
  if (NurserySizeCfg && NurserySizeCfg < MinNurseryBytes)
    NurserySizeCfg = MinNurseryBytes;
  // Mapped lazily: the first slow-path small allocation calls
  // ensureNursery, after which tryFastAlloc bumps inline.
}

void Heap::flushRememberedSet() {
  for (HeapObject *Owner : RememberedSet)
    Owner->Flags &= ~HeapObject::FlagInRemembered;
  RememberedSet.clear();
}

void Heap::sweepBlock(PoolBlock *Block, SizeClass &C) {
  for (uint32_t I = 0; I != Block->SweepBound; ++I) {
    HeapObject *Object = Block->cell(I);
    // Live iff reached by the last completed mark. No unmark pass: the
    // epoch comparison ages out by itself when the next mark begins.
    if (Object->MarkEpoch == LiveEpoch && !(Object->Flags & HeapObject::FlagFree))
      continue;
    // Dead since the last mark phase, or already free from an earlier
    // cycle (free lists are rebuilt from scratch each cycle).
    Object->Flags = HeapObject::FlagFree;
    Object->Next = C.FreeList;
    C.FreeList = Object;
    GRIFT_POISON(reinterpret_cast<char *>(Object) + sizeof(HeapObject),
                 Block->CellSize - sizeof(HeapObject));
  }
}

bool Heap::sweepForFreeCells(SizeClass &C) {
  while (C.SweepCursor < C.Blocks.size()) {
    sweepBlock(C.Blocks[C.SweepCursor++], C);
    if (C.FreeList)
      return true;
  }
  return false;
}

void Heap::finishSweep() {
  for (SizeClass &C : Classes)
    while (C.SweepCursor < C.Blocks.size())
      sweepBlock(C.Blocks[C.SweepCursor++], C);
}

void Heap::sweepSlice(size_t MaxCells) {
  bool Swept = false;
  for (SizeClass &C : Classes) {
    while (C.SweepCursor < C.Blocks.size()) {
      PoolBlock *Block = C.Blocks[C.SweepCursor];
      size_t Cells = Block->SweepBound;
      if (Swept && Cells > MaxCells)
        return; // budget exhausted; the next slice resumes here
      sweepBlock(Block, C);
      ++C.SweepCursor;
      Swept = true;
      MaxCells -= std::min(MaxCells, Cells);
    }
  }
}

HeapObject *Heap::acquireSmallCell(unsigned Class) {
  SizeClass &C = Classes[Class];
  for (;;) {
    if (HeapObject *Object = C.FreeList) {
      C.FreeList = Object->Next;
      GRIFT_UNPOISON(reinterpret_cast<char *>(Object) + sizeof(HeapObject),
                     ClassCellSizes[Class] - sizeof(HeapObject));
      return Object;
    }
    if (!C.Blocks.empty()) {
      PoolBlock *Block = C.Blocks.back();
      if (Block->Bump < Block->Capacity)
        return Block->cell(Block->Bump++);
    }
    if (sweepForFreeCells(C))
      continue;
    if (!refillBlock(Class))
      return nullptr;
  }
}

HeapObject *Heap::allocateObject(ObjectKind Kind, uint32_t NumSlots) {
  size_t Bytes = cellBytesFor(NumSlots);
  if (Injector) {
    ++Injector->AllocCount;
    if (Injector->FailAllocAt &&
        Injector->AllocCount == Injector->FailAllocAt)
      throw RuntimeError{ErrorKind::OutOfMemory, "",
                         "injected failure of allocation #" +
                             std::to_string(Injector->AllocCount)};
    if (Injector->GCTorturePeriod &&
        Injector->AllocCount % Injector->GCTorturePeriod == 0) {
      ++Injector->ForcedCollections;
      collect();
    }
    if (Injector->MinorGCTorturePeriod &&
        Injector->AllocCount % Injector->MinorGCTorturePeriod == 0) {
      ++Injector->ForcedMinorCollections;
      minorCollect();
    }
  }
  bool Small = NumSlots <= MaxSmallSlots;
  bool Collected = false;
  if (Small && NurserySizeCfg) {
    ensureNursery();
    // ensureNursery can disable itself on mapping failure; re-test.
    if (NurseryBase && NurseryUsed + Bytes > NurserySize)
      // Nursery exhausted mid-allocation: evacuate survivors. A chained
      // major counts as "collected" for the heap-limit retry logic.
      Collected = minorCollect();
  }
  if (!(Small && NurseryBase) && BytesSinceGC + Bytes >= GCThreshold) {
    collect();
    Collected = true;
  }
  if (HeapLimit && heapEstimate() + Bytes > HeapLimit) {
    // Floating garbage must not count against the budget: collect once,
    // then re-measure before declaring defeat — but when the threshold
    // path just collected, nothing has been allocated since, so a second
    // back-to-back collection could not reclaim anything more. collect()
    // finishes any pending lazy sweep before taking its counts, so this
    // retry can never double-count cells an interleaved sweep already
    // returned to a free list.
    if (Collected)
      ++DoubleCollectionsAvoided;
    else
      collect();
    if (heapEstimate() + Bytes > HeapLimit)
      throw RuntimeError{ErrorKind::OutOfMemory, "",
                         "heap limit of " + std::to_string(HeapLimit) +
                             " bytes exceeded allocating " +
                             std::to_string(Bytes) + " bytes"};
  }

  void *Memory;
  if (!Small) {
    Memory = std::malloc(Bytes);
    if (!Memory) {
      // The allocator itself failed; reclaim garbage and retry once,
      // then degrade to a reportable OutOfMemory instead of crashing.
      collect();
      Memory = std::malloc(Bytes);
      if (!Memory)
        throw RuntimeError{ErrorKind::OutOfMemory, "",
                           "allocator failed for a " + std::to_string(Bytes) +
                               "-byte object"};
    }
    ++LargeAllocated;
  } else if (NurseryBase && NurseryUsed + Bytes <= NurserySize) {
    // Young allocation (slow path: injector attached, or the minor above
    // just made room). Any nonzero nursery fits any small cell.
    HeapObject *Object =
        reinterpret_cast<HeapObject *>(NurseryBase + NurseryUsed);
    GRIFT_UNPOISON(Object, Bytes);
    NurseryUsed += Bytes;
    ++YoungObjects;
    ++Classes[classForSlots(NumSlots)].ObjectsAllocated;
    ++LiveObjects;
    BytesAllocated += Bytes;
    PeakHeapBytes = std::max(PeakHeapBytes, heapEstimate());
    return initObject(Object, Kind, NumSlots);
  } else {
    unsigned Class = classForSlots(NumSlots);
    Memory = acquireSmallCell(Class);
    if (!Memory) {
      // Block mapping failed; a collection refills the lazy-sweep queue,
      // so retry the acquire before giving up.
      collect();
      Memory = acquireSmallCell(Class);
      if (!Memory)
        throw RuntimeError{ErrorKind::OutOfMemory, "",
                           "allocator failed for a " + std::to_string(Bytes) +
                               "-byte object"};
    }
    ++Classes[Class].ObjectsAllocated;
  }
  assert((reinterpret_cast<uintptr_t>(Memory) & 7) == 0 &&
         "heap objects must be 8-byte aligned");
  HeapObject *Object = initObject(Memory, Kind, NumSlots);
  if (!Small) {
    Object->Next = LargeObjects;
    LargeObjects = Object;
  }
  ++LiveObjects;
  BytesAllocated += Bytes;
  BytesSinceGC += Bytes;
  PeakHeapBytes = std::max(PeakHeapBytes, heapEstimate());
  return Object;
}

Value Heap::allocBoxSlow(Value Content) {
  Rooted Root(*this, Content);
  HeapObject *Object = allocateObject(ObjectKind::Box, 1);
  Object->slot(0) = Root.get();
  return Value::fromHeap(Object);
}

Value Heap::allocVectorSlow(uint32_t Size, Value Fill) {
  Rooted Root(*this, Fill);
  HeapObject *Object = allocateObject(ObjectKind::Vector, Size);
  for (uint32_t I = 0; I != Size; ++I)
    Object->slot(I) = Root.get();
  // Large vectors are pre-tenured (old) but may be filled with a young
  // value — the only allocation path that creates an old→young edge.
  recordWrite(Object, Root.get());
  return Value::fromHeap(Object);
}

Value Heap::allocClosureSlow(uint32_t FunctionIndex, uint32_t NumFree) {
  HeapObject *Object = allocateObject(ObjectKind::Closure, NumFree);
  Object->Raw = FunctionIndex;
  return Value::fromHeap(Object);
}

Value Heap::allocDynBox(Value Wrapped, const Type *SourceType) {
  Rooted Root(*this, Wrapped);
  HeapObject *Object;
  if (HeapObject *Fast = tryFastAlloc(ObjectKind::DynBox, 1))
    Object = Fast;
  else
    Object = allocateObject(ObjectKind::DynBox, 1);
  Object->slot(0) = Root.get();
  Object->setMeta(0, SourceType);
  return Value::fromHeap(Object);
}

Value Heap::allocProxyClosure(Value Wrapped, const void *M0, const void *M1,
                              const void *M2) {
  Rooted Root(*this, Wrapped);
  HeapObject *Object;
  if (HeapObject *Fast = tryFastAlloc(ObjectKind::ProxyClosure, 1))
    Object = Fast;
  else
    Object = allocateObject(ObjectKind::ProxyClosure, 1);
  Object->slot(0) = Root.get();
  Object->setMeta(0, M0);
  Object->setMeta(1, M1);
  Object->setMeta(2, M2);
  return Value::fromProxy(Object);
}

Value Heap::allocRefProxy(Value Wrapped, const void *M0, const void *M1,
                          const void *M2) {
  Rooted Root(*this, Wrapped);
  HeapObject *Object;
  if (HeapObject *Fast = tryFastAlloc(ObjectKind::RefProxy, 1))
    Object = Fast;
  else
    Object = allocateObject(ObjectKind::RefProxy, 1);
  Object->slot(0) = Root.get();
  Object->setMeta(0, M0);
  Object->setMeta(1, M1);
  Object->setMeta(2, M2);
  return Value::fromProxy(Object);
}

void Heap::addRootProvider(RootProvider *Provider) {
  RootProviders.push_back(Provider);
}

void Heap::removeRootProvider(RootProvider *Provider) {
  RootProviders.erase(
      std::remove(RootProviders.begin(), RootProviders.end(), Provider),
      RootProviders.end());
}

//===----------------------------------------------------------------------===//
// Promotion and minor collection
//===----------------------------------------------------------------------===//

HeapObject *Heap::promote(HeapObject *Object) {
  uint32_t NumSlots = Object->NumSlots;
  assert(NumSlots <= MaxSmallSlots && "large objects are pre-tenured");
  unsigned Class = classForSlots(NumSlots);
  // Straight to the pools: no injector hook, no threshold check, and no
  // per-class ObjectsAllocated recount — the object was counted when it
  // was allocated, and the alloc_by_class counters must be identical
  // with the nursery on or off. acquireSmallCell can sweep a pending
  // block mid-promotion; that is safe because sweeps test against
  // LiveEpoch (the last *completed* mark) and never examine fresh cells.
  HeapObject *Memory = acquireSmallCell(Class);
  if (!Memory)
    throw RuntimeError{ErrorKind::OutOfMemory, "",
                       "allocator failed promoting a nursery object"};
  size_t Bytes = ClassCellSizes[Class];
  std::memcpy(Memory, Object, sizeof(HeapObject) + NumSlots * sizeof(Value));
  Memory->SlotArray = reinterpret_cast<Value *>(
      reinterpret_cast<char *>(Memory) + sizeof(HeapObject));
  Memory->Flags = 0;
  Memory->MarkEpoch = LiveEpoch;
  Memory->Next = nullptr;
  Object->Flags |= HeapObject::FlagForwarded;
  Object->Next = Memory;
  ++PromotedObjects;
  PromotedBytes += Bytes;
  BytesSinceGC += Bytes; // promotion is old-generation growth
  return Memory;
}

void Heap::evacuateSlot(Value &Slot) {
  if (!Slot.isPointer())
    return;
  HeapObject *Object = Slot.object();
  if (!isYoung(Object))
    return;
  if (Object->Flags & HeapObject::FlagForwarded) {
    Slot = retag(Slot, Object->Next);
    return;
  }
  HeapObject *Copy = promote(Object);
  Slot = retag(Slot, Copy);
  MarkStack.push_back(Copy);
}

void Heap::drainScanStack(void (Heap::*VisitSlot)(Value &)) {
  while (!MarkStack.empty()) {
    HeapObject *Current = MarkStack.back();
    MarkStack.pop_back();
    for (uint32_t I = 0; I != Current->NumSlots; ++I)
      (this->*VisitSlot)(Current->SlotArray[I]);
  }
}

bool Heap::minorCollect() {
  if (!NurseryBase)
    return false;
  assert(!InCollection && "re-entrant collection");
  InCollection = true;
  auto Start = std::chrono::steady_clock::now();

  uint64_t PromotedBefore = PromotedObjects;
  for (RootProvider *Provider : RootProviders)
    Provider->visitRoots(
        [](Value &Slot, void *Ctx) {
          static_cast<Heap *>(Ctx)->evacuateSlot(Slot);
        },
        this);
  for (Value *Slot : TempRoots) {
    assert(Slot && "dangling temp root at collection time — push/pop "
                   "mismatch (use the RAII Rooted helper)");
    evacuateSlot(*Slot);
  }
  // Old→young edges recorded by the write barrier. Object granularity:
  // rescan every slot of each remembered owner. Owners are live (a
  // mutator can only store into objects it reaches, and sweeps only free
  // objects that were already dead at the last mark), but skip freed
  // cells defensively — their payload is poisoned.
  RememberedSetPeak = std::max(RememberedSetPeak, RememberedSet.size());
  for (HeapObject *Owner : RememberedSet) {
    Owner->Flags &= ~HeapObject::FlagInRemembered;
    if (Owner->Flags & HeapObject::FlagFree)
      continue;
    for (uint32_t I = 0; I != Owner->NumSlots; ++I)
      evacuateSlot(Owner->SlotArray[I]);
  }
  RememberedSet.clear();
  drainScanStack(&Heap::evacuateSlot);

  uint64_t Promoted = PromotedObjects - PromotedBefore;
  assert(YoungObjects >= Promoted && "promoted more than was allocated");
  LiveObjects -= YoungObjects - static_cast<size_t>(Promoted);
  resetNursery();
  ++MinorCollections;
  PeakHeapBytes = std::max(PeakHeapBytes, heapEstimate());

  uint64_t Nanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
  recordPause(Nanos, GCMinorPauseTotalNs, GCMinorPauseMaxNs, MinorPauseHist);
  GCPauseTotalNs += Nanos;
  GCPauseMaxNs = std::max(GCPauseMaxNs, Nanos);
  InCollection = false;
  maybeVerify();

  // Promotion grew the old generation; pay the debt outside the pause:
  // chain a major when past the threshold, else one incremental sweep
  // slice so dead old cells are reclaimed steadily rather than in a
  // stop-the-world finish.
  if (BytesSinceGC >= GCThreshold) {
    collect();
    return true;
  }
  sweepSlice(MinorSweepSliceCells);
  return false;
}

//===----------------------------------------------------------------------===//
// Major collection (evacuating mark, epoch liveness)
//===----------------------------------------------------------------------===//

void Heap::markValue(Value &Slot) {
  if (!Slot.isPointer())
    return;
  HeapObject *Object = Slot.object();
  if (isYoung(Object)) {
    if (Object->Flags & HeapObject::FlagForwarded) {
      Slot = retag(Slot, Object->Next);
      return;
    }
    // The major mark evacuates: every reachable nursery object is
    // promoted during the trace and its referencing slot rewritten.
    // Majors therefore never depend on the remembered set.
    HeapObject *Copy = promote(Object);
    Copy->MarkEpoch = Epoch;
    ++MarkedObjects;
    MarkedBytes += cellBytesFor(Copy->NumSlots);
    Slot = retag(Slot, Copy);
    MarkStack.push_back(Copy);
    return;
  }
  if (Object->MarkEpoch == Epoch)
    return;
  Object->MarkEpoch = Epoch;
  ++MarkedObjects;
  MarkedBytes += cellBytesFor(Object->NumSlots);
  MarkStack.push_back(Object);
}

void Heap::collect() {
  assert(!InCollection && "re-entrant collection");
  InCollection = true;
  auto Start = std::chrono::steady_clock::now();

  // Finish the previous cycle's lazy sweep first: it still holds the
  // previous mark's view of its SweepBound cells, and the live counts
  // taken below must not be double-counted by a sweep that resumes
  // after them.
  finishSweep();

  // Mark with evacuation. Live object/byte counts are taken here so the
  // accounting is exact the moment collect() returns, before any lazy
  // sweeping. ++Epoch distinguishes this mark from the last completed
  // one; LiveEpoch catches up only when the sweep schedule below is in
  // place.
  ++Epoch;
  MarkedObjects = 0;
  MarkedBytes = 0;
  for (RootProvider *Provider : RootProviders)
    Provider->visitRoots(
        [](Value &Slot, void *Ctx) {
          static_cast<Heap *>(Ctx)->markValue(Slot);
        },
        this);
  for (Value *Slot : TempRoots) {
    assert(Slot && "dangling temp root at collection time — push/pop "
                   "mismatch (use the RAII Rooted helper)");
    markValue(*Slot);
  }
  drainScanStack(&Heap::markValue);

  // Sweep the large-object list eagerly: it is short (big vectors only)
  // and each entry returns real memory to malloc.
  HeapObject **Link = &LargeObjects;
  while (*Link) {
    HeapObject *Object = *Link;
    if (Object->MarkEpoch == Epoch) {
      Link = &Object->Next;
    } else {
      *Link = Object->Next;
      std::free(Object);
    }
  }

  // Schedule the lazy sweep of every pool block. Free lists are rebuilt
  // from scratch by the sweep — clearing them here is what makes cells
  // allocated *after* this point (bump or swept-list pops) safe from
  // being treated as dead by the pending sweep: pops only ever return
  // cells a sweep has already visited, and bump cells sit at or above
  // SweepBound.
  for (SizeClass &C : Classes) {
    C.FreeList = nullptr;
    C.SweepCursor = 0;
    for (PoolBlock *Block : C.Blocks)
      Block->SweepBound = Block->Bump;
  }
  LiveEpoch = Epoch;

  // The nursery is empty now — every survivor was promoted by the mark.
  if (NurseryBase)
    resetNursery();
  flushRememberedSet();

  LiveObjects = MarkedObjects;
  BytesSinceGC = 0;
  LiveBytesAtGC = MarkedBytes;
  PeakHeapBytes = std::max(PeakHeapBytes, MarkedBytes);
  ++Collections;
  // Grow the threshold with the live set so GC stays amortized-linear —
  // but never past a fraction of the hard heap limit, or maybeCollect
  // would stop firing and every allocation near the limit would take the
  // full-collect path in allocateObject.
  GCThreshold = std::max<size_t>(MarkedBytes * 2, 8u << 20);
  clampThresholdToLimit();

  uint64_t Nanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
  recordPause(Nanos, GCPauseTotalNs, GCPauseMaxNs, MajorPauseHist);
  InCollection = false;
  maybeVerify();
}

void Heap::recordPause(uint64_t Nanos, uint64_t &TotalNs, uint64_t &MaxNs,
                       uint64_t *Hist) {
  TotalNs += Nanos;
  MaxNs = std::max(MaxNs, Nanos);
  unsigned Bucket = 0;
  uint64_t Us = Nanos / 1000;
  while (Us && Bucket < PauseHistBuckets - 1) {
    Us >>= 1;
    ++Bucket;
  }
  ++Hist[Bucket];
}

void Heap::castTortureSlow(Value &Pinned) {
  assert(Injector && Injector->MinorGCTorturePeriod);
  if (++CastTortureCount % Injector->MinorGCTorturePeriod != 0)
    return;
  if (!NurseryBase)
    return;
  ++Injector->ForcedMinorCollections;
  pushTempRoot(&Pinned);
  minorCollect();
  popTempRoot();
}

//===----------------------------------------------------------------------===//
// Invariant verification
//===----------------------------------------------------------------------===//

namespace {
struct VerifyState {
  Heap *H;
  std::unordered_set<const HeapObject *> Seen;
  std::vector<const HeapObject *> Work;

  void visit(Value V) {
    if (!V.isPointer())
      return;
    const HeapObject *Object = V.object();
    if (Seen.insert(Object).second)
      Work.push_back(Object);
  }
};
} // namespace

size_t Heap::verify() {
  size_t Violations = 0;
  auto complain = [&](const char *What, const void *Object) {
    ++Violations;
    std::fprintf(stderr, "Heap::verify: %s (object %p)\n", What, Object);
  };

  // 1. Nursery header walk: strides must tile [0, NurseryUsed) exactly
  // and every header must be internally consistent.
  size_t Offset = 0;
  size_t Walked = 0;
  while (Offset < NurseryUsed) {
    const HeapObject *Object =
        reinterpret_cast<const HeapObject *>(NurseryBase + Offset);
    if (Object->NumSlots > MaxSmallSlots) {
      complain("nursery object with a large slot count", Object);
      break;
    }
    if (Object->Flags & HeapObject::FlagFree)
      complain("free-flagged object inside the nursery", Object);
    if (!InCollection && (Object->Flags & HeapObject::FlagForwarded))
      complain("forwarded nursery object outside a collection", Object);
    ++Walked;
    Offset += ClassCellSizes[classForSlots(Object->NumSlots)];
  }
  if (Offset != NurseryUsed)
    complain("nursery walk does not land exactly on the bump pointer",
             nullptr);
  else if (Walked != YoungObjects)
    complain("nursery object count disagrees with the walk", nullptr);

  // 2. Reachability from every root, without marking or moving.
  VerifyState State;
  State.H = this;
  for (RootProvider *Provider : RootProviders)
    Provider->visitRoots(
        [](Value &Slot, void *Ctx) {
          static_cast<VerifyState *>(Ctx)->visit(Slot);
        },
        &State);
  for (Value *Slot : TempRoots) {
    if (!Slot) {
      complain("null temp root", nullptr);
      continue;
    }
    State.visit(*Slot);
  }
  while (!State.Work.empty()) {
    const HeapObject *Object = State.Work.back();
    State.Work.pop_back();
    if (Object->Flags & HeapObject::FlagFree)
      complain("reachable object sits on a free list", Object);
    if (!InCollection && (Object->Flags & HeapObject::FlagForwarded))
      complain("reachable forwarded object outside a collection (dangling "
               "promoted pointer)",
               Object);
    if (isYoung(Object)) {
      const char *P = reinterpret_cast<const char *>(Object);
      if (P >= NurseryBase + NurseryUsed)
        complain("young pointer past the nursery bump pointer", Object);
    } else if (NurseryBase && !(Object->Flags & HeapObject::FlagInRemembered)) {
      // An old object outside the remembered set must have no young
      // edges: every old→young store goes through recordWrite.
      for (uint32_t I = 0; I != Object->NumSlots; ++I) {
        Value Slot = Object->SlotArray[I];
        if (Slot.isPointer() && isYoung(Slot.object())) {
          complain("unrecorded old→young edge (write-barrier miss)", Object);
          break;
        }
      }
    }
    for (uint32_t I = 0; I != Object->NumSlots; ++I)
      State.visit(Object->SlotArray[I]);
  }
  if (State.Seen.size() > LiveObjects)
    complain("reachable objects exceed the live-object count", nullptr);

  // 3. Remembered-set hygiene.
  for (const HeapObject *Owner : RememberedSet) {
    if (!Owner) {
      complain("null remembered-set entry", nullptr);
      continue;
    }
    if (isYoung(Owner))
      complain("young object in the remembered set", Owner);
    if (!(Owner->Flags & HeapObject::FlagInRemembered))
      complain("remembered-set entry without its InRemembered flag", Owner);
  }
  return Violations;
}

void Heap::maybeVerify() {
  bool Active = VerifyAfterGC;
#if GRIFT_ASAN
  Active = true;
#endif
  if (Injector &&
      (Injector->GCTorturePeriod || Injector->MinorGCTorturePeriod))
    Active = true;
  if (!Active)
    return;
  if (size_t N = verify()) {
    std::fprintf(stderr,
                 "Heap::verify: %zu invariant violation(s) after a "
                 "collection; aborting\n",
                 N);
    std::abort();
  }
}
