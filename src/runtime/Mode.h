//===----------------------------------------------------------------------===//
///
/// \file
/// The cast implementation strategies compared in the paper's evaluation.
///
/// Every mapping over CastMode in the tree is either a delegation to the
/// CastBackend interface (src/runtime/CastBackend.h) or a compile-time
/// exhaustive switch guarded by a static_assert on NumCastModes, so
/// adding a mode breaks the build at each site instead of falling
/// through a default branch at runtime.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_RUNTIME_MODE_H
#define GRIFT_RUNTIME_MODE_H

#include <string_view>

namespace grift {

enum class CastMode {
  /// Space-efficient coercions in normal form (the paper's contribution):
  /// proxies carry a composed coercion; at most one proxy per value.
  Coercions,
  /// Traditional type-based casts: every higher-order cast adds a proxy;
  /// chains grow without bound (the paper's baseline).
  TypeBased,
  /// No gradual typing support at all; requires a fully static program
  /// ("Static Grift"). Vector/box operations skip proxy checks.
  Static,
  /// Monotonic references (paper Section 5 / Siek et al. ESOP'15):
  /// functions use coercions, but references are never proxied — casting
  /// a reference strengthens the heap cell's runtime type to the meet
  /// and converts the stored values in place. Reads and writes at fully
  /// static types compile to unchecked operations, eliminating the
  /// proxy-check overhead in typed code.
  Monotonic,
  /// Coercion-passing style (Tsuda, Igarashi & Tabuchi): casts compile to
  /// the same interned normal-form coercions as `Coercions`, but the
  /// pending return coercions of a call are *composed* into one per-frame
  /// coercion argument instead of stacked, so a chain of proxied tail
  /// calls uses O(1) return-cast space per frame instead of Θ(n).
  /// Appended last: the serialized mode byte of every pre-existing mode
  /// (store image key and meta, jobKey) keeps its value.
  CoercionPassing,
};

/// Number of enumerators in CastMode. Every compile-time mode map
/// static_asserts against this so a new mode fails the build there.
inline constexpr unsigned NumCastModes = 5;

/// All modes, in enum order (iteration for store round-trip tests,
/// benchmark matrices, and the like).
inline constexpr CastMode AllCastModes[NumCastModes] = {
    CastMode::Coercions, CastMode::TypeBased, CastMode::Static,
    CastMode::Monotonic, CastMode::CoercionPassing};

/// The gradual modes — every mode that accepts partially typed programs
/// and can therefore participate in lattice/blame differential oracles
/// at arbitrary configurations. Static is excluded: it only admits the
/// fully typed top of the lattice.
inline constexpr CastMode GradualCastModes[] = {
    CastMode::Coercions, CastMode::TypeBased, CastMode::Monotonic,
    CastMode::CoercionPassing};
inline constexpr unsigned NumGradualCastModes =
    sizeof(GradualCastModes) / sizeof(GradualCastModes[0]);
static_assert(NumGradualCastModes == NumCastModes - 1,
              "every mode except Static is gradual; register new modes in "
              "GradualCastModes (or update this assert with rationale)");

inline const char *castModeName(CastMode Mode) {
  static_assert(NumCastModes == 5, "add the new mode's name here");
  switch (Mode) {
  case CastMode::Coercions:
    return "coercions";
  case CastMode::TypeBased:
    return "type-based";
  case CastMode::Static:
    return "static";
  case CastMode::Monotonic:
    return "monotonic";
  case CastMode::CoercionPassing:
    return "coercion-passing";
  }
  return "?";
}

/// True for modes whose cast sites are compiled to interned normal-form
/// coercions (CastDescriptor::C filled at compile time): plain coercions
/// and coercion-passing style, which shares the coercion compilation
/// pipeline and differs only in the VM's return-cast protocol.
inline constexpr bool castModePrebuildsCoercions(CastMode Mode) {
  static_assert(NumCastModes == 5,
                "decide whether the new mode prebuilds coercions");
  switch (Mode) {
  case CastMode::Coercions:
  case CastMode::CoercionPassing:
    return true;
  case CastMode::TypeBased:
  case CastMode::Static:
  case CastMode::Monotonic:
    return false;
  }
  return false;
}

/// Parses the wire/CLI spelling of a mode (the castModeName strings).
/// Returns false on anything else — callers treat that as a structured
/// bad request / usage error, never a default. The single shared parser
/// keeps griftc, the griftd protocol, and the benches in agreement.
inline bool castModeFromName(std::string_view Name, CastMode &Out) {
  for (CastMode Mode : AllCastModes)
    if (Name == castModeName(Mode)) {
      Out = Mode;
      return true;
    }
  return false;
}

} // namespace grift

#endif // GRIFT_RUNTIME_MODE_H
