//===----------------------------------------------------------------------===//
///
/// \file
/// The cast implementation strategies compared in the paper's evaluation.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_RUNTIME_MODE_H
#define GRIFT_RUNTIME_MODE_H

namespace grift {

enum class CastMode {
  /// Space-efficient coercions in normal form (the paper's contribution):
  /// proxies carry a composed coercion; at most one proxy per value.
  Coercions,
  /// Traditional type-based casts: every higher-order cast adds a proxy;
  /// chains grow without bound (the paper's baseline).
  TypeBased,
  /// No gradual typing support at all; requires a fully static program
  /// ("Static Grift"). Vector/box operations skip proxy checks.
  Static,
  /// Monotonic references (paper Section 5 / Siek et al. ESOP'15):
  /// functions use coercions, but references are never proxied — casting
  /// a reference strengthens the heap cell's runtime type to the meet
  /// and converts the stored values in place. Reads and writes at fully
  /// static types compile to unchecked operations, eliminating the
  /// proxy-check overhead in typed code.
  Monotonic,
};

inline const char *castModeName(CastMode Mode) {
  switch (Mode) {
  case CastMode::Coercions:
    return "coercions";
  case CastMode::TypeBased:
    return "type-based";
  case CastMode::Static:
    return "static";
  case CastMode::Monotonic:
    return "monotonic";
  }
  return "?";
}

} // namespace grift

#endif // GRIFT_RUNTIME_MODE_H
