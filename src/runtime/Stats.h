//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime statistics backing the paper's plots: the number of casts
/// executed and the longest proxy chain traversed (paper Figures 4 and 7),
/// plus allocation and GC counters.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_RUNTIME_STATS_H
#define GRIFT_RUNTIME_STATS_H

#include <algorithm>
#include <cstdint>

namespace grift {

struct RuntimeStats {
  /// Runtime casts executed (every cast application: Cast instructions,
  /// proxy argument/result conversions, reference read/write conversions,
  /// Dyn elimination-form conversions).
  uint64_t CastsApplied = 0;
  /// Coercion compositions performed (coercion mode only).
  uint64_t Compositions = 0;
  /// Longest chain of proxies traversed by any single operation.
  uint64_t LongestProxyChain = 0;
  /// Largest number of pending return casts carried by any single call
  /// frame. Coercion-passing style composes them into one explicit
  /// coercion argument, so it stays ≤ 1; the stacked protocol grows
  /// Θ(n) over n proxied tail calls (a tail loop driven through a cast
  /// function reference — each call appends the proxy's result
  /// coercion to the reused frame).
  uint64_t MaxRetCastsPerFrame = 0;
  /// Function/reference proxies allocated.
  uint64_t ProxiesAllocated = 0;
  /// Cast-site inline-cache hits: a repeated cast resolved its coercion
  /// with a pointer compare instead of a MakeCache/ComposeCache hash
  /// lookup.
  uint64_t CacheHits = 0;
  /// Cast-site inline-cache misses (the slow factory path ran and the
  /// cache was refilled).
  uint64_t CacheMisses = 0;
  /// Nanoseconds measured by the innermost (time ...) form, if any.
  int64_t TimedNanos = -1;

  //===------------------------------------------------------------------===//
  // Allocation / GC observability. Copied from the Heap at the end of a
  // run (VM::run), so a RunResult carries the whole allocation profile.
  // Byte and object counters are deterministic for a deterministic
  // program; pause times are machine-dependent (benchjson emits both,
  // bench_compare.py checks counters exactly and bands the pauses).
  //===------------------------------------------------------------------===//

  /// Size classes (same table as Heap::ClassCellSizes) plus one trailing
  /// bucket for large malloc-backed objects.
  static constexpr unsigned NumAllocClasses = 8;
  /// Total bytes allocated (size-class cell bytes + exact large sizes).
  uint64_t AllocBytes = 0;
  /// Objects allocated per size class; index NumAllocClasses-1 counts
  /// large objects.
  uint64_t AllocObjectsByClass[NumAllocClasses] = {};
  /// Major (full) collections performed during the run.
  uint64_t Collections = 0;
  /// Total / worst-case GC pause across *all* pauses, minor and major
  /// (mark/evacuation + eager large sweep; incremental block sweeping is
  /// mutator time and deliberately not counted).
  uint64_t GCPauseTotalNs = 0;
  uint64_t GCPauseMaxNs = 0;
  /// Minor (nursery) collections and their pause share.
  uint64_t MinorCollections = 0;
  uint64_t GCMinorPauseTotalNs = 0;
  uint64_t GCMinorPauseMaxNs = 0;
  /// Bytes / objects promoted from the nursery into the old generation.
  uint64_t PromotedBytes = 0;
  uint64_t PromotedObjects = 0;
  /// Largest remembered-set population observed at a collection.
  uint64_t RememberedSetPeak = 0;
  /// Per-phase log2 pause histograms (same layout as the Heap's):
  /// bucket 0 is < 1 µs, each next bucket doubles, the last bucket
  /// collects everything ≥ 16.4 ms.
  static constexpr unsigned NumPauseBuckets = 16;
  uint64_t MinorPauseHist[NumPauseBuckets] = {};
  uint64_t MajorPauseHist[NumPauseBuckets] = {};
  /// Redundant back-to-back collections skipped on the heap-limit path.
  uint64_t DoubleCollectionsAvoided = 0;

  /// Objects allocated across all size classes (large included).
  uint64_t allocObjects() const {
    uint64_t Total = 0;
    for (uint64_t N : AllocObjectsByClass)
      Total += N;
    return Total;
  }

  /// Inline-cache hit rate in [0, 1]; 0 when no cached site was reached.
  double cacheHitRate() const {
    uint64_t Total = CacheHits + CacheMisses;
    return Total ? static_cast<double>(CacheHits) / Total : 0.0;
  }

  void noteChain(uint64_t Length) {
    LongestProxyChain = std::max(LongestProxyChain, Length);
  }

  void noteRetCasts(uint64_t Count) {
    MaxRetCastsPerFrame = std::max(MaxRetCastsPerFrame, Count);
  }

  void reset() { *this = RuntimeStats(); }
};

} // namespace grift

#endif // GRIFT_RUNTIME_STATS_H
