//===----------------------------------------------------------------------===//
///
/// \file
/// Heap objects and the generational garbage collector.
///
/// Objects carry an 8-byte header (kind, flag byte, mark epoch, slot
/// count) followed by Value slots and up to four metadata pointer slots
/// (types, coercions, blame labels — all immortal, never traced).
///
/// Allocation is generational. Small objects (cell size ≤ 512 bytes)
/// are bump-allocated from a contiguous *nursery* region; when the
/// nursery fills, a minor collection evacuates the survivors into the
/// old generation's size-class segregated pool (per-class free lists
/// threaded through 64 KiB bump-allocated blocks) and resets the bump
/// pointer. Large objects (big vectors) are pre-tenured: one malloc
/// each on an intrusive list. With the nursery disabled
/// (setNurserySize(0)) small objects go straight to the pools and the
/// heap behaves exactly like the pre-generational collector, which is
/// the escape hatch `--gc-nursery=0` exposes.
///
/// Minor collections find old→young edges through a remembered set fed
/// by recordWrite(), the write barrier every mutating store into a
/// possibly-old object must pass through (the VM's set opcodes, the
/// runtime's box/vector writes, monotonic in-place strengthening, and
/// proxy installation — see docs/INTERNALS.md for the site table).
/// Promotion copies; published *old* references never move, preserving
/// the monotonic-reference non-moving requirement (DESIGN.md §5): only
/// objects that have never been visible to another thread and are still
/// nursery-resident are relocated, and every live reference to them is
/// a root or a remembered slot that the collector rewrites.
///
/// Major collections are precise stop-the-world mark *with evacuation*:
/// the mark phase visits every root and live slot by reference, so any
/// still-young object is promoted and its referencing slots rewritten
/// during the trace. Majors therefore never depend on the remembered
/// set — a missed barrier can only affect a minor, and Heap::verify()
/// exists to catch exactly that. Liveness is tracked by a 16-bit mark
/// *epoch* instead of a mark bit: an old object is live iff its
/// MarkEpoch equals the epoch of the last completed mark, which removes
/// the unmark pass from the pause and lets dead cells be reclaimed
/// *incrementally* — sweepSlice() releases a bounded number of cells at
/// a time (called after each minor, outside the pause timer), and
/// allocation sweeps on demand, so the old stop-the-world sweep finish
/// survives only as the pre-mark finishSweep() that keeps accounting
/// exact. The paper's Grift uses the Boehm-Demers-Weiser conservative
/// collector; we substitute a precise block-structured collector — both
/// keep published objects non-moving, which is what the experiments
/// depend on. Roots come from registered RootProviders (the VM stack,
/// globals) and from Rooted<> RAII handles used inside runtime helpers
/// that allocate; since allocation can now move young objects, any raw
/// Value held across an allocating call must be (re-)derived from a
/// root.
///
/// Under GRIFT_SANITIZE=address the slot payload of every swept-free
/// cell and the unused tail of the nursery are poisoned, so a
/// use-after-sweep or use-after-minor trips ASan even though the memory
/// is never returned to malloc.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_RUNTIME_HEAP_H
#define GRIFT_RUNTIME_HEAP_H

#include "runtime/FaultInjector.h"
#include "runtime/Value.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#ifndef GRIFT_ASAN
#if defined(__SANITIZE_ADDRESS__)
#define GRIFT_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GRIFT_ASAN 1
#endif
#endif
#endif
#ifndef GRIFT_ASAN
#define GRIFT_ASAN 0
#endif

#if GRIFT_ASAN
#include <sanitizer/asan_interface.h>
#define GRIFT_POISON(Addr, Size) ASAN_POISON_MEMORY_REGION(Addr, Size)
#define GRIFT_UNPOISON(Addr, Size) ASAN_UNPOISON_MEMORY_REGION(Addr, Size)
#else
#define GRIFT_POISON(Addr, Size) ((void)0)
#define GRIFT_UNPOISON(Addr, Size) ((void)0)
#endif

namespace grift {

class Type;
class Coercion;

/// What a heap object is. Proxy objects are referenced through
/// Proxy-tagged Values; everything else through Heap-tagged Values.
/// Floats are immediates (NaN-boxed in Value) and never hit the heap.
enum class ObjectKind : uint8_t {
  Tuple,        ///< Slots = elements
  Box,          ///< Slots = [content]
  Vector,       ///< Slots = elements
  Closure,      ///< Raw = function index; Slots = free variables
  ProxyClosure, ///< Slots = [wrapped]; Meta = coercion / (src,tgt,label)
  DynBox,       ///< Slots = [value]; Meta[0] = source type
  RefProxy,     ///< Slots = [wrapped ref]; Meta = coercion / (src,tgt,label)
};

/// Header + payload of every heap allocation.
class HeapObject {
public:
  ObjectKind kind() const { return Kind; }
  uint32_t slotCount() const { return NumSlots; }

  Value *slots() { return SlotArray; }
  const Value *slots() const { return SlotArray; }
  Value &slot(uint32_t Index) {
    assert(Index < NumSlots && "slot out of range");
    return SlotArray[Index];
  }

  /// Raw payload: function index for closures.
  uint64_t raw() const { return Raw; }
  void setRaw(uint64_t Value) { Raw = Value; }

  /// Immortal metadata (types, coercions, labels) — never traced.
  const void *meta(unsigned Index) const {
    assert(Index < 4 && "meta index out of range");
    return Meta[Index];
  }
  void setMeta(unsigned Index, const void *Pointer) {
    assert(Index < 4 && "meta index out of range");
    Meta[Index] = Pointer;
  }

private:
  friend class Heap;
  HeapObject() = default;

  /// Flag bits. Liveness is *not* a flag — it is MarkEpoch (below), so
  /// sweeping needs no unmark pass.
  static constexpr uint8_t FlagFree = 1; ///< on a free list, awaiting reuse
  static constexpr uint8_t FlagInRemembered = 2; ///< already in the RS
  static constexpr uint8_t FlagForwarded = 4; ///< evacuated; Next = copy

  ObjectKind Kind = ObjectKind::Tuple;
  uint8_t Flags = 0;
  /// Epoch of the mark phase that last reached this object. Live iff it
  /// equals the heap's epoch of the last *completed* mark; a uint16
  /// wraparound can only delay one dead object's reclaim by one cycle.
  uint16_t MarkEpoch = 0;
  uint32_t NumSlots = 0;
  uint64_t Raw = 0;
  const void *Meta[4] = {nullptr, nullptr, nullptr, nullptr};
  HeapObject *Next = nullptr; // free-list / large-list / forwarding link
  Value *SlotArray = nullptr; // points just past this header
};
static_assert(sizeof(HeapObject) == 64, "header must stay one cache line");

/// A 64 KiB bump-allocated block carved into equal-size cells of one
/// size class. Non-moving: a cell's address is stable for the lifetime
/// of the heap. The header is padded to 64 bytes so cells start
/// cache-line aligned.
struct alignas(64) PoolBlock {
  uint32_t CellSize = 0;   ///< bytes per cell (a size-class constant)
  uint32_t Capacity = 0;   ///< total cells in this block
  uint32_t Bump = 0;       ///< cells handed out by bump allocation
  uint32_t SweepBound = 0; ///< cells the pending lazy sweep must examine

  char *cells() { return reinterpret_cast<char *>(this + 1); }
  HeapObject *cell(uint32_t Index) {
    return reinterpret_cast<HeapObject *>(cells() +
                                          static_cast<size_t>(Index) *
                                              CellSize);
  }
};
static_assert(sizeof(PoolBlock) == 64, "block header must stay one line");

/// Enumerates GC roots; the VM implements this over its stack and globals.
class RootProvider {
public:
  virtual ~RootProvider() = default;
  /// Calls \p Visit on every root slot. Visited slots *are* updated:
  /// evacuation rewrites roots that point at moved nursery objects.
  virtual void visitRoots(void (*Visit)(Value &, void *), void *Ctx) = 0;
};

/// The garbage-collected heap.
class Heap {
public:
  /// Size classes by cell size (header + slots, 8-byte slots). 512 bytes
  /// covers 56 slots; anything bigger is a large object.
  static constexpr unsigned NumSizeClasses = 7;
  static constexpr uint32_t ClassCellSizes[NumSizeClasses] = {
      64, 96, 128, 192, 256, 384, 512};
  static constexpr uint32_t MaxSmallCell = 512;
  static constexpr uint32_t MaxSmallSlots =
      (MaxSmallCell - sizeof(HeapObject)) / sizeof(Value); // 56
  static constexpr size_t BlockBytes = 64u * 1024;

  /// Nursery sizing. The default is small enough that a minor pause
  /// (evacuate ≤ 256 KiB of survivors) stays in the tens of
  /// microseconds; the floor guarantees any small cell fits.
  static constexpr size_t DefaultNurseryBytes = 256u * 1024;
  static constexpr size_t MinNurseryBytes = 4096;

  /// Log2 pause-histogram buckets: bucket 0 is < 1 µs, each next bucket
  /// doubles, bucket 15 collects everything ≥ 16.4 ms.
  static constexpr unsigned PauseHistBuckets = 16;

  Heap();
  ~Heap();
  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  //===--------------------------------------------------------------------===//
  // Allocation
  //===--------------------------------------------------------------------===//

  Value allocTuple(uint32_t Size) {
    if (HeapObject *O = tryFastAlloc(ObjectKind::Tuple, Size))
      return Value::fromHeap(O);
    return Value::fromHeap(allocateObject(ObjectKind::Tuple, Size));
  }
  Value allocBox(Value Content) {
    if (HeapObject *O = tryFastAlloc(ObjectKind::Box, 1)) {
      O->slot(0) = Content;
      return Value::fromHeap(O);
    }
    return allocBoxSlow(Content);
  }
  Value allocVector(uint32_t Size, Value Fill) {
    if (HeapObject *O = tryFastAlloc(ObjectKind::Vector, Size)) {
      for (uint32_t I = 0; I != Size; ++I)
        O->slot(I) = Fill;
      return Value::fromHeap(O);
    }
    return allocVectorSlow(Size, Fill);
  }
  Value allocClosure(uint32_t FunctionIndex, uint32_t NumFree) {
    if (HeapObject *O = tryFastAlloc(ObjectKind::Closure, NumFree)) {
      O->Raw = FunctionIndex;
      return Value::fromHeap(O);
    }
    return allocClosureSlow(FunctionIndex, NumFree);
  }
  Value allocDynBox(Value Wrapped, const Type *SourceType);
  /// Proxy closure over \p Wrapped; metadata is mode-specific.
  Value allocProxyClosure(Value Wrapped, const void *M0, const void *M1,
                          const void *M2);
  Value allocRefProxy(Value Wrapped, const void *M0, const void *M1,
                      const void *M2);

  //===--------------------------------------------------------------------===//
  // Generations and the write barrier
  //===--------------------------------------------------------------------===//

  /// True when \p Object lives in the nursery (young generation).
  bool isYoung(const HeapObject *Object) const {
    const char *P = reinterpret_cast<const char *>(Object);
    return NurseryBase && P >= NurseryBase && P < NurseryBase + NurserySize;
  }

  /// The write barrier. Call after storing \p Stored into a slot of
  /// \p Owner whenever Owner may be old: records Owner in the remembered
  /// set the first time it acquires a young edge. Cheap no-op when the
  /// nursery is off, the stored value is unboxed/old, or Owner is young.
  void recordWrite(HeapObject *Owner, Value Stored) {
    if (!NurseryBase || !Stored.isPointer() || !isYoung(Stored.object()))
      return;
    if (isYoung(Owner) || (Owner->Flags & HeapObject::FlagInRemembered))
      return;
    Owner->Flags |= HeapObject::FlagInRemembered;
    RememberedSet.push_back(Owner);
  }
  void recordWrite(Value Owner, Value Stored) {
    if (Owner.isPointer())
      recordWrite(Owner.object(), Stored);
  }

  /// Reconfigures the nursery: 0 disables it (all allocation goes to the
  /// pools — the pre-generational behaviour), SIZE_MAX restores the
  /// default, anything else is a byte size (clamped up to
  /// MinNurseryBytes). Evacuates any current residents first, so it is
  /// safe to call mid-run.
  void setNurserySize(size_t Bytes);
  size_t nurseryBytes() const { return NurserySizeCfg; }

  //===--------------------------------------------------------------------===//
  // Roots and collection
  //===--------------------------------------------------------------------===//

  void addRootProvider(RootProvider *Provider);
  void removeRootProvider(RootProvider *Provider);

  void pushTempRoot(Value *Slot) {
    assert(Slot && "null temp root");
    TempRoots.push_back(Slot);
  }
  void popTempRoot() {
    assert(!TempRoots.empty() && "popTempRoot without a matching push");
    TempRoots.pop_back();
  }
  /// Current temp-root stack depth. Engines assert this returns to its
  /// entry value at the run() boundary, catching unbalanced manual
  /// push/pop pairs (prefer the RAII Rooted helper, which cannot leak).
  size_t tempRootDepth() const { return TempRoots.size(); }

  /// Forces a full (major) collection. Finishes any pending lazy sweep
  /// *before* accounting (an interleaved pending sweep must not see this
  /// cycle's epochs), marks with evacuation — promoting every reachable
  /// nursery object — then schedules the next incremental sweep. Live
  /// counts are exact when this returns.
  void collect();

  /// Evacuates nursery survivors into the old generation and resets the
  /// bump pointer. Chains a full collection when promotion pushed the
  /// old generation past the GC threshold; returns true exactly then.
  /// No-op (returns false) when the nursery is off or unmapped.
  bool minorCollect();

  /// Sweeps up to \p MaxCells pending old-generation cells (block
  /// granularity, but always at least one block when any are pending).
  /// This is the incremental replacement for the old stop-the-world
  /// sweep finish; minorCollect runs one slice after its pause.
  void sweepSlice(size_t MaxCells);

  /// Walks roots, the nursery, and the remembered set, checking the
  /// generational invariants: no reachable free/forwarded object, no
  /// reachable young object past the bump pointer, no old→young edge
  /// whose owner is missing from the remembered set, and sane nursery
  /// headers. Returns the number of violations (0 = clean) after
  /// describing each on stderr. Read-only: never marks or moves.
  size_t verify();

  /// When set, verify() runs after every collection and aborts on any
  /// violation. Forced on under ASan builds and whenever a GC-torture
  /// fault injector is attached.
  void setVerifyAfterGC(bool Enabled) { VerifyAfterGC = Enabled; }

  /// Torture hook for cast application: when the attached injector sets
  /// MinorGCTorturePeriod, every Nth call forces a minor collection.
  /// \p Pinned is rooted across the collection and updated in place, so
  /// callers may keep using it afterwards.
  void maybeCastTortureMinor(Value &Pinned) {
    if (Injector && Injector->MinorGCTorturePeriod)
      castTortureSlow(Pinned);
  }

  size_t liveObjects() const { return LiveObjects; }
  size_t bytesAllocated() const { return BytesAllocated; }
  uint64_t collections() const { return Collections; }
  /// High-water mark of (estimated) live bytes: live-at-last-GC plus
  /// bytes allocated since (old generation + nursery occupancy). This is
  /// the space-efficiency observable — proxy chains show up here.
  size_t peakHeapBytes() const { return PeakHeapBytes; }

  //===--------------------------------------------------------------------===//
  // Allocation / GC observability (RuntimeStats, benchjson)
  //===--------------------------------------------------------------------===//

  /// Cumulative objects served from size class \p Class (never reset).
  /// Nursery allocations count here too — the class of an object is a
  /// function of its slot count, not of which generation served it, so
  /// these counters are identical with the nursery on or off.
  uint64_t objectsAllocatedInClass(unsigned Class) const {
    assert(Class < NumSizeClasses);
    return Classes[Class].ObjectsAllocated;
  }
  /// Cumulative large (malloc-backed, pre-tenured) objects.
  uint64_t largeObjectsAllocated() const { return LargeAllocated; }
  /// Pool blocks currently owned across all size classes (boundedness
  /// observable: an allocate–collect loop must hold this steady).
  size_t poolBlocks() const {
    size_t N = 0;
    for (const SizeClass &C : Classes)
      N += C.Blocks.size();
    return N;
  }
  uint64_t gcPauseTotalNs() const { return GCPauseTotalNs; }
  uint64_t gcPauseMaxNs() const { return GCPauseMaxNs; }
  uint64_t minorCollections() const { return MinorCollections; }
  uint64_t gcMinorPauseTotalNs() const { return GCMinorPauseTotalNs; }
  uint64_t gcMinorPauseMaxNs() const { return GCMinorPauseMaxNs; }
  uint64_t promotedBytes() const { return PromotedBytes; }
  uint64_t promotedObjects() const { return PromotedObjects; }
  /// Largest remembered-set population observed at a collection.
  size_t rememberedSetPeak() const { return RememberedSetPeak; }
  size_t rememberedSetSize() const { return RememberedSet.size(); }
  const uint64_t *minorPauseHistogram() const { return MinorPauseHist; }
  const uint64_t *majorPauseHistogram() const { return MajorPauseHist; }
  /// Back-to-back collect() calls skipped on the heap-limit path because
  /// nothing was allocated since the threshold-triggered collection.
  uint64_t doubleCollectionsAvoided() const {
    return DoubleCollectionsAvoided;
  }

  /// Sets the allocation threshold that triggers collection (tests use a
  /// tiny threshold to stress the collector).
  void setGCThreshold(size_t Bytes) { GCThreshold = Bytes; }

  /// Hard cap on live bytes (0 = unlimited). When an allocation would
  /// push the live estimate past the cap, the heap collects once; if
  /// still over, the allocation throws ErrorKind::OutOfMemory instead of
  /// aborting the process. Malloc failure degrades the same way.
  void setHeapLimit(size_t Bytes) {
    HeapLimit = Bytes;
    clampThresholdToLimit();
  }
  size_t heapLimit() const { return HeapLimit; }

  /// Attaches a caller-owned fault injector (nullptr detaches). See
  /// runtime/FaultInjector.h; injected failures throw OutOfMemory.
  /// While attached, every allocation takes the out-of-line slow path so
  /// the injector observes an exact per-allocation count.
  void setFaultInjector(FaultInjector *Injector) { this->Injector = Injector; }

  /// Frees this thread's cached pool blocks. Engine pools call this at
  /// epoch resets so block memory does not accumulate across jobs.
  static void purgeThreadBlockCache();

private:
  struct SizeClass {
    HeapObject *FreeList = nullptr;
    std::vector<PoolBlock *> Blocks;
    size_t SweepCursor = 0; ///< first block the lazy sweep has not visited
    uint64_t ObjectsAllocated = 0;
  };

  static constexpr unsigned classForSlots(uint32_t NumSlots) {
    uint32_t Bytes = sizeof(HeapObject) + NumSlots * sizeof(Value);
    if (Bytes <= 64)
      return 0;
    if (Bytes <= 96)
      return 1;
    if (Bytes <= 128)
      return 2;
    if (Bytes <= 192)
      return 3;
    if (Bytes <= 256)
      return 4;
    if (Bytes <= 384)
      return 5;
    return 6;
  }

  /// Accounting size of an object: its size-class cell, or the exact
  /// malloc size for large objects. Deterministic from the slot count.
  static constexpr size_t cellBytesFor(uint32_t NumSlots) {
    return NumSlots > MaxSmallSlots
               ? sizeof(HeapObject) + NumSlots * sizeof(Value)
               : ClassCellSizes[classForSlots(NumSlots)];
  }

  /// Rebuilds \p Old's pointer Value around \p Object, preserving the
  /// Heap vs Proxy tag (evacuation must not change how a value
  /// dispatches).
  static Value retag(Value Old, HeapObject *Object) {
    return Old.isProxy() ? Value::fromProxy(Object)
                         : Value::fromHeap(Object);
  }

  /// Live-bytes estimate the heap limit and peak tracking use: live at
  /// the last major plus old-generation growth plus nursery occupancy.
  /// With the nursery off the last term is 0, matching the
  /// pre-generational accounting exactly.
  size_t heapEstimate() const {
    return LiveBytesAtGC + BytesSinceGC + NurseryUsed;
  }

  /// Re-initializes a cell as a fresh object. Shared by the inline fast
  /// path and the out-of-line allocator. New objects carry the epoch of
  /// the last completed mark so a pending sweep can never confuse them
  /// with cells that were dead at that mark.
  HeapObject *initObject(void *Memory, ObjectKind Kind, uint32_t NumSlots) {
    HeapObject *Object = new (Memory) HeapObject();
    Object->Kind = Kind;
    Object->MarkEpoch = LiveEpoch;
    Object->NumSlots = NumSlots;
    Object->SlotArray =
        reinterpret_cast<Value *>(static_cast<char *>(Memory) +
                                  sizeof(HeapObject));
    for (uint32_t I = 0; I != NumSlots; ++I)
      Object->SlotArray[I] = Value::unit();
    return Object;
  }

  /// The inline allocation fast path. With the nursery mapped this is a
  /// pure pointer bump; otherwise it pops a ready old-generation free
  /// cell. Returns nullptr — deferring to allocateObject — whenever
  /// anything interesting must happen: fault injection, nursery full,
  /// GC threshold or heap limit reached, large object, or an empty free
  /// list (bump, lazy sweep and block refill are all out of line).
  HeapObject *tryFastAlloc(ObjectKind Kind, uint32_t NumSlots) {
    if (Injector || NumSlots > MaxSmallSlots)
      return nullptr;
    unsigned Class = classForSlots(NumSlots);
    SizeClass &C = Classes[Class];
    size_t Bytes = ClassCellSizes[Class];
    if (NurserySizeCfg) {
      if (!NurseryBase)
        return nullptr; // first touch maps the nursery out of line
      if (NurseryUsed + Bytes > NurserySize)
        return nullptr; // minor collection due
      if (HeapLimit && heapEstimate() + Bytes > HeapLimit)
        return nullptr;
      HeapObject *Object =
          reinterpret_cast<HeapObject *>(NurseryBase + NurseryUsed);
      GRIFT_UNPOISON(Object, Bytes);
      NurseryUsed += Bytes;
      ++YoungObjects;
      ++C.ObjectsAllocated;
      ++LiveObjects;
      BytesAllocated += Bytes;
      PeakHeapBytes = std::max(PeakHeapBytes, heapEstimate());
      return initObject(Object, Kind, NumSlots);
    } // NurserySizeCfg
    HeapObject *Object = C.FreeList;
    if (!Object)
      return nullptr;
    if (BytesSinceGC + Bytes >= GCThreshold)
      return nullptr;
    if (HeapLimit && heapEstimate() + Bytes > HeapLimit)
      return nullptr;
    C.FreeList = Object->Next;
    GRIFT_UNPOISON(reinterpret_cast<char *>(Object) + sizeof(HeapObject),
                   Bytes - sizeof(HeapObject));
    ++C.ObjectsAllocated;
    ++LiveObjects;
    BytesAllocated += Bytes;
    BytesSinceGC += Bytes;
    PeakHeapBytes = std::max(PeakHeapBytes, heapEstimate());
    return initObject(Object, Kind, NumSlots);
  }

  HeapObject *allocateObject(ObjectKind Kind, uint32_t NumSlots);
  Value allocBoxSlow(Value Content);
  Value allocVectorSlow(uint32_t Size, Value Fill);
  Value allocClosureSlow(uint32_t FunctionIndex, uint32_t NumFree);

  /// Obtains a raw small old-generation cell: free list, bump, lazy
  /// sweep, then block refill. Returns nullptr only when a new block
  /// cannot be mapped.
  HeapObject *acquireSmallCell(unsigned Class);
  /// Sweeps pending blocks of \p Class until its free list is non-empty
  /// or every block has been swept. Returns true if cells were found.
  bool sweepForFreeCells(SizeClass &C);
  void sweepBlock(PoolBlock *Block, SizeClass &C);
  /// Finishes every pending lazy sweep (all classes). Must run before a
  /// new mark phase — and before any exact-live-count accounting: a
  /// pending sweep still holds last cycle's view of SweepBound cells.
  void finishSweep();
  /// Installs a new (or thread-cached) block for \p Class.
  PoolBlock *refillBlock(unsigned Class);

  /// Maps the nursery region on first use (lazily, so heaps that never
  /// allocate never map it). Degrades to nursery-off if malloc fails.
  void ensureNursery();
  /// Poisons the whole nursery payload and resets the bump pointer.
  void resetNursery();
  /// Copies a nursery object into the old generation, installs the
  /// forwarding pointer, and returns the copy. Shared by minor
  /// collections and the evacuating major mark.
  HeapObject *promote(HeapObject *Object);
  /// Minor-GC slot visitor: promotes (or forwards) a young referent and
  /// rewrites \p Slot in place. Promoted copies are pushed for scanning.
  void evacuateSlot(Value &Slot);
  /// Major-GC slot visitor: epoch-marks old referents, evacuates young
  /// ones, rewrites \p Slot, pushes newly-visited objects for scanning.
  void markValue(Value &Slot);
  /// Drains the scan stack through the given per-slot visitor.
  void drainScanStack(void (Heap::*VisitSlot)(Value &));

  /// Clears the remembered set and every owner's InRemembered flag
  /// (minor collections empty the nursery, so no old→young edge can
  /// survive one).
  void flushRememberedSet();

  void castTortureSlow(Value &Pinned);
  /// Runs verify() after a collection when torture/ASan/explicit opt-in
  /// demands it; aborts loudly on any violation.
  void maybeVerify();
  static void recordPause(uint64_t Nanos, uint64_t &TotalNs, uint64_t &MaxNs,
                          uint64_t *Hist);

  /// Keeps the amortized-collection threshold meaningful under a hard
  /// heap limit: without this, a limit below the threshold floor means
  /// maybeCollect never fires and every allocation near the limit pays a
  /// full collection on the hard-limit path in allocateObject. A quarter
  /// of the limit keeps several amortized collections between limit hits
  /// while the 64 KiB floor avoids degenerate per-allocation collections
  /// under tiny limits.
  void clampThresholdToLimit() {
    if (HeapLimit)
      GCThreshold = std::min(GCThreshold,
                             std::max<size_t>(HeapLimit / 4, 64u * 1024));
  }

  SizeClass Classes[NumSizeClasses];
  HeapObject *LargeObjects = nullptr; ///< intrusive list, swept eagerly

  /// Nursery state. NurserySizeCfg is the configured size (0 = off);
  /// NurseryBase/NurserySize describe the mapped region once first
  /// touched; NurseryUsed is the bump offset.
  size_t NurserySizeCfg = DefaultNurseryBytes;
  char *NurseryBase = nullptr;
  size_t NurserySize = 0;
  size_t NurseryUsed = 0;
  size_t YoungObjects = 0; ///< objects in the nursery right now

  size_t LiveObjects = 0;
  size_t BytesAllocated = 0;
  size_t BytesSinceGC = 0; ///< bytes into the *old* gen since last major
  size_t LiveBytesAtGC = 0;
  size_t PeakHeapBytes = 0;
  size_t GCThreshold = 8u << 20;
  size_t HeapLimit = 0;
  FaultInjector *Injector = nullptr;
  uint64_t Collections = 0; ///< major collections only
  uint64_t MinorCollections = 0;
  uint64_t LargeAllocated = 0;
  uint64_t GCPauseTotalNs = 0; ///< all pauses, minor + major
  uint64_t GCPauseMaxNs = 0;
  uint64_t GCMinorPauseTotalNs = 0;
  uint64_t GCMinorPauseMaxNs = 0;
  uint64_t MinorPauseHist[PauseHistBuckets] = {};
  uint64_t MajorPauseHist[PauseHistBuckets] = {};
  uint64_t PromotedBytes = 0;
  uint64_t PromotedObjects = 0;
  uint64_t DoubleCollectionsAvoided = 0;
  uint64_t CastTortureCount = 0;
  /// Current mark epoch (bumped when a mark starts) and the epoch of the
  /// last *completed* mark. An old object is live iff
  /// MarkEpoch == LiveEpoch; sweeps always test against LiveEpoch, so a
  /// sweep interleaved with promotion mid-mark can never free a cell the
  /// in-progress mark has visited.
  uint16_t Epoch = 0;
  uint16_t LiveEpoch = 0;
  bool InCollection = false;
  bool VerifyAfterGC = false;
  size_t MarkedObjects = 0; ///< live count taken during the mark phase
  size_t MarkedBytes = 0;
  std::vector<RootProvider *> RootProviders;
  std::vector<Value *> TempRoots;
  std::vector<HeapObject *> MarkStack;
  std::vector<HeapObject *> RememberedSet;
  size_t RememberedSetPeak = 0;
};

/// RAII temp root: keeps a Value alive across allocations inside runtime
/// helpers — and, now that minor collections move young objects, keeps
/// it *current*: evacuation rewrites the slot in place, so get() after a
/// potential collection returns the object's new address.
/// Exception-safe (blame unwinds pop roots correctly).
class Rooted {
public:
  Rooted(Heap &H, Value V) : H(H), Slot(V) { H.pushTempRoot(&Slot); }
  ~Rooted() { H.popTempRoot(); }
  Rooted(const Rooted &) = delete;
  Rooted &operator=(const Rooted &) = delete;

  Value get() const { return Slot; }
  void set(Value V) { Slot = V; }

private:
  Heap &H;
  Value Slot;
};

} // namespace grift

#endif // GRIFT_RUNTIME_HEAP_H
