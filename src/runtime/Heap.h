//===----------------------------------------------------------------------===//
///
/// \file
/// Heap objects and the garbage collector.
///
/// Objects carry an 8-byte header (kind, mark/free bits, slot count)
/// followed by Value slots and up to four metadata pointer slots (types,
/// coercions, blame labels — all immortal, never traced).
///
/// Allocation is served by a size-class segregated pool: small objects
/// (cell size ≤ 512 bytes) come from per-class free lists threaded
/// through 64 KiB bump-allocated blocks; larger objects (big vectors)
/// fall back to one malloc each on an intrusive list. The hot path —
/// free-list pop + header init — is inlined here so the VM's alloc
/// opcodes never leave the header when a cell is ready.
///
/// Collection is precise stop-the-world mark, with *lazy* per-block
/// sweeping: the pause covers only the mark phase (live counts are taken
/// during the traversal) plus the eager sweep of the short large-object
/// list; dead small cells are reclaimed incrementally, one block at a
/// time, as allocation demands. Any blocks still unswept when the next
/// collection starts are finished first, so mark bits are always
/// consistent. The paper's Grift uses the Boehm-Demers-Weiser
/// conservative collector; we substitute a precise block-structured
/// collector (DESIGN.md §5) — both are non-moving stop-the-world
/// collectors, which is what the experiments depend on. Roots come from
/// registered RootProviders (the VM stack, globals) and from Rooted<>
/// RAII handles used inside runtime helpers that allocate.
///
/// Under GRIFT_SANITIZE=address the slot payload of every swept-free
/// cell is poisoned until it is reallocated, so a use-after-sweep trips
/// ASan even though the memory is never returned to malloc.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_RUNTIME_HEAP_H
#define GRIFT_RUNTIME_HEAP_H

#include "runtime/FaultInjector.h"
#include "runtime/Value.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#ifndef GRIFT_ASAN
#if defined(__SANITIZE_ADDRESS__)
#define GRIFT_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GRIFT_ASAN 1
#endif
#endif
#endif
#ifndef GRIFT_ASAN
#define GRIFT_ASAN 0
#endif

#if GRIFT_ASAN
#include <sanitizer/asan_interface.h>
#define GRIFT_POISON(Addr, Size) ASAN_POISON_MEMORY_REGION(Addr, Size)
#define GRIFT_UNPOISON(Addr, Size) ASAN_UNPOISON_MEMORY_REGION(Addr, Size)
#else
#define GRIFT_POISON(Addr, Size) ((void)0)
#define GRIFT_UNPOISON(Addr, Size) ((void)0)
#endif

namespace grift {

class Type;
class Coercion;

/// What a heap object is. Proxy objects are referenced through
/// Proxy-tagged Values; everything else through Heap-tagged Values.
/// Floats are immediates (NaN-boxed in Value) and never hit the heap.
enum class ObjectKind : uint8_t {
  Tuple,        ///< Slots = elements
  Box,          ///< Slots = [content]
  Vector,       ///< Slots = elements
  Closure,      ///< Raw = function index; Slots = free variables
  ProxyClosure, ///< Slots = [wrapped]; Meta = coercion / (src,tgt,label)
  DynBox,       ///< Slots = [value]; Meta[0] = source type
  RefProxy,     ///< Slots = [wrapped ref]; Meta = coercion / (src,tgt,label)
};

/// Header + payload of every heap allocation.
class HeapObject {
public:
  ObjectKind kind() const { return Kind; }
  uint32_t slotCount() const { return NumSlots; }

  Value *slots() { return SlotArray; }
  const Value *slots() const { return SlotArray; }
  Value &slot(uint32_t Index) {
    assert(Index < NumSlots && "slot out of range");
    return SlotArray[Index];
  }

  /// Raw payload: function index for closures.
  uint64_t raw() const { return Raw; }
  void setRaw(uint64_t Value) { Raw = Value; }

  /// Immortal metadata (types, coercions, labels) — never traced.
  const void *meta(unsigned Index) const {
    assert(Index < 4 && "meta index out of range");
    return Meta[Index];
  }
  void setMeta(unsigned Index, const void *Pointer) {
    assert(Index < 4 && "meta index out of range");
    Meta[Index] = Pointer;
  }

private:
  friend class Heap;
  HeapObject() = default;

  ObjectKind Kind = ObjectKind::Tuple;
  bool Marked = false;
  bool Free = false; // swept onto a free list, awaiting reallocation
  uint32_t NumSlots = 0;
  uint64_t Raw = 0;
  const void *Meta[4] = {nullptr, nullptr, nullptr, nullptr};
  HeapObject *Next = nullptr; // free-list / large-object-list link
  Value *SlotArray = nullptr; // points just past this header
};

/// A 64 KiB bump-allocated block carved into equal-size cells of one
/// size class. Non-moving: a cell's address is stable for the lifetime
/// of the heap. The header is padded to 64 bytes so cells start
/// cache-line aligned.
struct alignas(64) PoolBlock {
  uint32_t CellSize = 0;   ///< bytes per cell (a size-class constant)
  uint32_t Capacity = 0;   ///< total cells in this block
  uint32_t Bump = 0;       ///< cells handed out by bump allocation
  uint32_t SweepBound = 0; ///< cells the pending lazy sweep must examine

  char *cells() { return reinterpret_cast<char *>(this + 1); }
  HeapObject *cell(uint32_t Index) {
    return reinterpret_cast<HeapObject *>(cells() +
                                          static_cast<size_t>(Index) *
                                              CellSize);
  }
};
static_assert(sizeof(PoolBlock) == 64, "block header must stay one line");

/// Enumerates GC roots; the VM implements this over its stack and globals.
class RootProvider {
public:
  virtual ~RootProvider() = default;
  /// Calls \p Visit on every root slot. Visited slots may be updated
  /// (they are not, under mark-sweep, but the interface allows it).
  virtual void visitRoots(void (*Visit)(Value &, void *), void *Ctx) = 0;
};

/// The garbage-collected heap.
class Heap {
public:
  /// Size classes by cell size (header + slots, 8-byte slots). 512 bytes
  /// covers 56 slots; anything bigger is a large object.
  static constexpr unsigned NumSizeClasses = 7;
  static constexpr uint32_t ClassCellSizes[NumSizeClasses] = {
      64, 96, 128, 192, 256, 384, 512};
  static constexpr uint32_t MaxSmallCell = 512;
  static constexpr uint32_t MaxSmallSlots =
      (MaxSmallCell - sizeof(HeapObject)) / sizeof(Value); // 56
  static constexpr size_t BlockBytes = 64u * 1024;

  Heap();
  ~Heap();
  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  //===--------------------------------------------------------------------===//
  // Allocation
  //===--------------------------------------------------------------------===//

  Value allocTuple(uint32_t Size) {
    if (HeapObject *O = tryFastAlloc(ObjectKind::Tuple, Size))
      return Value::fromHeap(O);
    return Value::fromHeap(allocateObject(ObjectKind::Tuple, Size));
  }
  Value allocBox(Value Content) {
    if (HeapObject *O = tryFastAlloc(ObjectKind::Box, 1)) {
      O->slot(0) = Content;
      return Value::fromHeap(O);
    }
    return allocBoxSlow(Content);
  }
  Value allocVector(uint32_t Size, Value Fill) {
    if (HeapObject *O = tryFastAlloc(ObjectKind::Vector, Size)) {
      for (uint32_t I = 0; I != Size; ++I)
        O->slot(I) = Fill;
      return Value::fromHeap(O);
    }
    return allocVectorSlow(Size, Fill);
  }
  Value allocClosure(uint32_t FunctionIndex, uint32_t NumFree) {
    if (HeapObject *O = tryFastAlloc(ObjectKind::Closure, NumFree)) {
      O->Raw = FunctionIndex;
      return Value::fromHeap(O);
    }
    return allocClosureSlow(FunctionIndex, NumFree);
  }
  Value allocDynBox(Value Wrapped, const Type *SourceType);
  /// Proxy closure over \p Wrapped; metadata is mode-specific.
  Value allocProxyClosure(Value Wrapped, const void *M0, const void *M1,
                          const void *M2);
  Value allocRefProxy(Value Wrapped, const void *M0, const void *M1,
                      const void *M2);

  //===--------------------------------------------------------------------===//
  // Roots and collection
  //===--------------------------------------------------------------------===//

  void addRootProvider(RootProvider *Provider);
  void removeRootProvider(RootProvider *Provider);

  void pushTempRoot(Value *Slot) {
    assert(Slot && "null temp root");
    TempRoots.push_back(Slot);
  }
  void popTempRoot() {
    assert(!TempRoots.empty() && "popTempRoot without a matching push");
    TempRoots.pop_back();
  }
  /// Current temp-root stack depth. Engines assert this returns to its
  /// entry value at the run() boundary, catching unbalanced manual
  /// push/pop pairs (prefer the RAII Rooted helper, which cannot leak).
  size_t tempRootDepth() const { return TempRoots.size(); }

  /// Forces a full collection (tests). Finishes any pending lazy sweep,
  /// marks, then schedules the next lazy sweep — live counts are exact
  /// when this returns.
  void collect();

  size_t liveObjects() const { return LiveObjects; }
  size_t bytesAllocated() const { return BytesAllocated; }
  uint64_t collections() const { return Collections; }
  /// High-water mark of (estimated) live bytes: live-at-last-GC plus
  /// bytes allocated since. This is the space-efficiency observable —
  /// proxy chains show up here.
  size_t peakHeapBytes() const { return PeakHeapBytes; }

  //===--------------------------------------------------------------------===//
  // Allocation / GC observability (RuntimeStats, benchjson)
  //===--------------------------------------------------------------------===//

  /// Cumulative objects served from size class \p Class (never reset).
  uint64_t objectsAllocatedInClass(unsigned Class) const {
    assert(Class < NumSizeClasses);
    return Classes[Class].ObjectsAllocated;
  }
  /// Cumulative large (malloc-backed) objects.
  uint64_t largeObjectsAllocated() const { return LargeAllocated; }
  /// Pool blocks currently owned across all size classes (boundedness
  /// observable: an allocate–collect loop must hold this steady).
  size_t poolBlocks() const {
    size_t N = 0;
    for (const SizeClass &C : Classes)
      N += C.Blocks.size();
    return N;
  }
  uint64_t gcPauseTotalNs() const { return GCPauseTotalNs; }
  uint64_t gcPauseMaxNs() const { return GCPauseMaxNs; }
  /// Back-to-back collect() calls skipped on the heap-limit path because
  /// nothing was allocated since the threshold-triggered collection.
  uint64_t doubleCollectionsAvoided() const {
    return DoubleCollectionsAvoided;
  }

  /// Sets the allocation threshold that triggers collection (tests use a
  /// tiny threshold to stress the collector).
  void setGCThreshold(size_t Bytes) { GCThreshold = Bytes; }

  /// Hard cap on live bytes (0 = unlimited). When an allocation would
  /// push the live estimate past the cap, the heap collects once; if
  /// still over, the allocation throws ErrorKind::OutOfMemory instead of
  /// aborting the process. Malloc failure degrades the same way.
  void setHeapLimit(size_t Bytes) {
    HeapLimit = Bytes;
    clampThresholdToLimit();
  }
  size_t heapLimit() const { return HeapLimit; }

  /// Attaches a caller-owned fault injector (nullptr detaches). See
  /// runtime/FaultInjector.h; injected failures throw OutOfMemory.
  /// While attached, every allocation takes the out-of-line slow path so
  /// the injector observes an exact per-allocation count.
  void setFaultInjector(FaultInjector *Injector) { this->Injector = Injector; }

  /// Frees this thread's cached pool blocks. Engine pools call this at
  /// epoch resets so block memory does not accumulate across jobs.
  static void purgeThreadBlockCache();

private:
  struct SizeClass {
    HeapObject *FreeList = nullptr;
    std::vector<PoolBlock *> Blocks;
    size_t SweepCursor = 0; ///< first block the lazy sweep has not visited
    uint64_t ObjectsAllocated = 0;
  };

  static constexpr unsigned classForSlots(uint32_t NumSlots) {
    uint32_t Bytes = sizeof(HeapObject) + NumSlots * sizeof(Value);
    if (Bytes <= 64)
      return 0;
    if (Bytes <= 96)
      return 1;
    if (Bytes <= 128)
      return 2;
    if (Bytes <= 192)
      return 3;
    if (Bytes <= 256)
      return 4;
    if (Bytes <= 384)
      return 5;
    return 6;
  }

  /// Accounting size of an object: its size-class cell, or the exact
  /// malloc size for large objects. Deterministic from the slot count.
  static constexpr size_t cellBytesFor(uint32_t NumSlots) {
    return NumSlots > MaxSmallSlots
               ? sizeof(HeapObject) + NumSlots * sizeof(Value)
               : ClassCellSizes[classForSlots(NumSlots)];
  }

  /// Re-initializes a cell as a fresh object. Shared by the inline fast
  /// path and the out-of-line allocator.
  HeapObject *initObject(void *Memory, ObjectKind Kind, uint32_t NumSlots) {
    HeapObject *Object = new (Memory) HeapObject();
    Object->Kind = Kind;
    Object->NumSlots = NumSlots;
    Object->SlotArray =
        reinterpret_cast<Value *>(static_cast<char *>(Memory) +
                                  sizeof(HeapObject));
    for (uint32_t I = 0; I != NumSlots; ++I)
      Object->SlotArray[I] = Value::unit();
    return Object;
  }

  /// The inline allocation fast path: pop a ready free cell. Returns
  /// nullptr — deferring to allocateObject — whenever anything
  /// interesting must happen: fault injection, GC threshold or heap
  /// limit reached, large object, or an empty free list (bump, lazy
  /// sweep and block refill are all out of line).
  HeapObject *tryFastAlloc(ObjectKind Kind, uint32_t NumSlots) {
    if (Injector || NumSlots > MaxSmallSlots)
      return nullptr;
    unsigned Class = classForSlots(NumSlots);
    SizeClass &C = Classes[Class];
    HeapObject *Object = C.FreeList;
    if (!Object)
      return nullptr;
    size_t Bytes = ClassCellSizes[Class];
    if (BytesSinceGC + Bytes >= GCThreshold)
      return nullptr;
    if (HeapLimit && LiveBytesAtGC + BytesSinceGC + Bytes > HeapLimit)
      return nullptr;
    C.FreeList = Object->Next;
    GRIFT_UNPOISON(reinterpret_cast<char *>(Object) + sizeof(HeapObject),
                   Bytes - sizeof(HeapObject));
    ++C.ObjectsAllocated;
    ++LiveObjects;
    BytesAllocated += Bytes;
    BytesSinceGC += Bytes;
    PeakHeapBytes = std::max(PeakHeapBytes, LiveBytesAtGC + BytesSinceGC);
    return initObject(Object, Kind, NumSlots);
  }

  HeapObject *allocateObject(ObjectKind Kind, uint32_t NumSlots);
  Value allocBoxSlow(Value Content);
  Value allocVectorSlow(uint32_t Size, Value Fill);
  Value allocClosureSlow(uint32_t FunctionIndex, uint32_t NumFree);

  /// Obtains a raw small cell: free list, bump, lazy sweep, then block
  /// refill. Returns nullptr only when a new block cannot be mapped.
  HeapObject *acquireSmallCell(unsigned Class);
  /// Sweeps pending blocks of \p Class until its free list is non-empty
  /// or every block has been swept. Returns true if cells were found.
  bool sweepForFreeCells(SizeClass &C);
  void sweepBlock(PoolBlock *Block, SizeClass &C);
  /// Finishes every pending lazy sweep (all classes). Must run before a
  /// new mark phase: unswept blocks still carry last cycle's mark bits.
  void finishSweep();
  /// Installs a new (or thread-cached) block for \p Class.
  PoolBlock *refillBlock(unsigned Class);

  void mark(Value V);

  /// Keeps the amortized-collection threshold meaningful under a hard
  /// heap limit: without this, a limit below the threshold floor means
  /// maybeCollect never fires and every allocation near the limit pays a
  /// full collection on the hard-limit path in allocateObject. A quarter
  /// of the limit keeps several amortized collections between limit hits
  /// while the 64 KiB floor avoids degenerate per-allocation collections
  /// under tiny limits.
  void clampThresholdToLimit() {
    if (HeapLimit)
      GCThreshold = std::min(GCThreshold,
                             std::max<size_t>(HeapLimit / 4, 64u * 1024));
  }

  SizeClass Classes[NumSizeClasses];
  HeapObject *LargeObjects = nullptr; ///< intrusive list, swept eagerly
  size_t LiveObjects = 0;
  size_t BytesAllocated = 0;
  size_t BytesSinceGC = 0;
  size_t LiveBytesAtGC = 0;
  size_t PeakHeapBytes = 0;
  size_t GCThreshold = 8u << 20;
  size_t HeapLimit = 0;
  FaultInjector *Injector = nullptr;
  uint64_t Collections = 0;
  uint64_t LargeAllocated = 0;
  uint64_t GCPauseTotalNs = 0;
  uint64_t GCPauseMaxNs = 0;
  uint64_t DoubleCollectionsAvoided = 0;
  size_t MarkedObjects = 0; ///< live count taken during the mark phase
  size_t MarkedBytes = 0;
  std::vector<RootProvider *> RootProviders;
  std::vector<Value *> TempRoots;
  std::vector<HeapObject *> MarkStack;
};

/// RAII temp root: keeps a Value alive across allocations inside runtime
/// helpers. Exception-safe (blame unwinds pop roots correctly).
class Rooted {
public:
  Rooted(Heap &H, Value V) : H(H), Slot(V) { H.pushTempRoot(&Slot); }
  ~Rooted() { H.popTempRoot(); }
  Rooted(const Rooted &) = delete;
  Rooted &operator=(const Rooted &) = delete;

  Value get() const { return Slot; }
  void set(Value V) { Slot = V; }

private:
  Heap &H;
  Value Slot;
};

} // namespace grift

#endif // GRIFT_RUNTIME_HEAP_H
