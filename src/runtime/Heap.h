//===----------------------------------------------------------------------===//
///
/// \file
/// Heap objects and the garbage collector.
///
/// Objects carry an 8-byte header (kind, mark bit, slot count) followed by
/// Value slots and up to four metadata pointer slots (types, coercions,
/// blame labels — all immortal, never traced).
///
/// Collection is precise stop-the-world mark-sweep. The paper's Grift uses
/// the Boehm-Demers-Weiser conservative collector; we substitute a precise
/// collector (DESIGN.md §5) — both are non-moving stop-the-world
/// collectors, which is what the experiments depend on. Roots come from
/// registered RootProviders (the VM stack, globals) and from Rooted<>
/// RAII handles used inside runtime helpers that allocate.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_RUNTIME_HEAP_H
#define GRIFT_RUNTIME_HEAP_H

#include "runtime/FaultInjector.h"
#include "runtime/Value.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace grift {

class Type;
class Coercion;

/// What a heap object is. Proxy objects are referenced through
/// Proxy-tagged Values; everything else through Heap-tagged Values.
enum class ObjectKind : uint8_t {
  Float,        ///< boxed double; Raw = bits of the double
  Tuple,        ///< Slots = elements
  Box,          ///< Slots = [content]
  Vector,       ///< Slots = elements
  Closure,      ///< Raw = function index; Slots = free variables
  ProxyClosure, ///< Slots = [wrapped]; Meta = coercion / (src,tgt,label)
  DynBox,       ///< Slots = [value]; Meta[0] = source type
  RefProxy,     ///< Slots = [wrapped ref]; Meta = coercion / (src,tgt,label)
};

/// Header + payload of every heap allocation.
class HeapObject {
public:
  ObjectKind kind() const { return Kind; }
  uint32_t slotCount() const { return NumSlots; }

  Value *slots() { return SlotArray; }
  const Value *slots() const { return SlotArray; }
  Value &slot(uint32_t Index) {
    assert(Index < NumSlots && "slot out of range");
    return SlotArray[Index];
  }

  /// Raw payload: function index for closures, double bits for floats.
  uint64_t raw() const { return Raw; }
  void setRaw(uint64_t Value) { Raw = Value; }

  double floatValue() const {
    assert(Kind == ObjectKind::Float && "not a float");
    double D;
    __builtin_memcpy(&D, &Raw, sizeof(D));
    return D;
  }

  /// Immortal metadata (types, coercions, labels) — never traced.
  const void *meta(unsigned Index) const {
    assert(Index < 4 && "meta index out of range");
    return Meta[Index];
  }
  void setMeta(unsigned Index, const void *Pointer) {
    assert(Index < 4 && "meta index out of range");
    Meta[Index] = Pointer;
  }

private:
  friend class Heap;
  HeapObject() = default;

  ObjectKind Kind = ObjectKind::Float;
  bool Marked = false;
  uint32_t NumSlots = 0;
  uint64_t Raw = 0;
  const void *Meta[4] = {nullptr, nullptr, nullptr, nullptr};
  HeapObject *Next = nullptr; // intrusive all-objects list for sweeping
  Value *SlotArray = nullptr; // points just past this header
};

/// Enumerates GC roots; the VM implements this over its stack and globals.
class RootProvider {
public:
  virtual ~RootProvider() = default;
  /// Calls \p Visit on every root slot. Visited slots may be updated
  /// (they are not, under mark-sweep, but the interface allows it).
  virtual void visitRoots(void (*Visit)(Value &, void *), void *Ctx) = 0;
};

/// The garbage-collected heap.
class Heap {
public:
  Heap();
  ~Heap();
  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  //===--------------------------------------------------------------------===//
  // Allocation
  //===--------------------------------------------------------------------===//

  Value allocFloat(double D);
  Value allocTuple(uint32_t Size);
  Value allocBox(Value Content);
  Value allocVector(uint32_t Size, Value Fill);
  Value allocClosure(uint32_t FunctionIndex, uint32_t NumFree);
  Value allocDynBox(Value Wrapped, const Type *SourceType);
  /// Proxy closure over \p Wrapped; metadata is mode-specific.
  Value allocProxyClosure(Value Wrapped, const void *M0, const void *M1,
                          const void *M2);
  Value allocRefProxy(Value Wrapped, const void *M0, const void *M1,
                      const void *M2);

  //===--------------------------------------------------------------------===//
  // Roots and collection
  //===--------------------------------------------------------------------===//

  void addRootProvider(RootProvider *Provider);
  void removeRootProvider(RootProvider *Provider);

  void pushTempRoot(Value *Slot) {
    assert(Slot && "null temp root");
    TempRoots.push_back(Slot);
  }
  void popTempRoot() {
    assert(!TempRoots.empty() && "popTempRoot without a matching push");
    TempRoots.pop_back();
  }
  /// Current temp-root stack depth. Engines assert this returns to its
  /// entry value at the run() boundary, catching unbalanced manual
  /// push/pop pairs (prefer the RAII Rooted helper, which cannot leak).
  size_t tempRootDepth() const { return TempRoots.size(); }

  /// Forces a full collection (tests).
  void collect();

  size_t liveObjects() const { return LiveObjects; }
  size_t bytesAllocated() const { return BytesAllocated; }
  uint64_t collections() const { return Collections; }
  /// High-water mark of (estimated) live bytes: live-at-last-GC plus
  /// bytes allocated since. This is the space-efficiency observable —
  /// proxy chains show up here.
  size_t peakHeapBytes() const { return PeakHeapBytes; }

  /// Sets the allocation threshold that triggers collection (tests use a
  /// tiny threshold to stress the collector).
  void setGCThreshold(size_t Bytes) { GCThreshold = Bytes; }

  /// Hard cap on live bytes (0 = unlimited). When an allocation would
  /// push the live estimate past the cap, the heap collects once; if
  /// still over, the allocation throws ErrorKind::OutOfMemory instead of
  /// aborting the process. Malloc failure degrades the same way.
  void setHeapLimit(size_t Bytes) {
    HeapLimit = Bytes;
    clampThresholdToLimit();
  }
  size_t heapLimit() const { return HeapLimit; }

  /// Attaches a caller-owned fault injector (nullptr detaches). See
  /// runtime/FaultInjector.h; injected failures throw OutOfMemory.
  void setFaultInjector(FaultInjector *Injector) { this->Injector = Injector; }

private:
  HeapObject *allocateObject(ObjectKind Kind, uint32_t NumSlots);
  void mark(Value V);
  void maybeCollect(size_t UpcomingBytes);

  /// Keeps the amortized-collection threshold meaningful under a hard
  /// heap limit: without this, a limit below the threshold floor means
  /// maybeCollect never fires and every allocation near the limit pays a
  /// full collection on the hard-limit path in allocateObject. A quarter
  /// of the limit keeps several amortized collections between limit hits
  /// while the 64 KiB floor avoids degenerate per-allocation collections
  /// under tiny limits.
  void clampThresholdToLimit() {
    if (HeapLimit)
      GCThreshold = std::min(GCThreshold,
                             std::max<size_t>(HeapLimit / 4, 64u * 1024));
  }

  HeapObject *AllObjects = nullptr;
  size_t LiveObjects = 0;
  size_t BytesAllocated = 0;
  size_t BytesSinceGC = 0;
  size_t LiveBytesAtGC = 0;
  size_t PeakHeapBytes = 0;
  size_t GCThreshold = 8u << 20;
  size_t HeapLimit = 0;
  FaultInjector *Injector = nullptr;
  uint64_t Collections = 0;
  std::vector<RootProvider *> RootProviders;
  std::vector<Value *> TempRoots;
  std::vector<HeapObject *> MarkStack;
};

/// RAII temp root: keeps a Value alive across allocations inside runtime
/// helpers. Exception-safe (blame unwinds pop roots correctly).
class Rooted {
public:
  Rooted(Heap &H, Value V) : H(H), Slot(V) { H.pushTempRoot(&Slot); }
  ~Rooted() { H.popTempRoot(); }
  Rooted(const Rooted &) = delete;
  Rooted &operator=(const Rooted &) = delete;

  Value get() const { return Slot; }
  void set(Value V) { Slot = V; }

private:
  Heap &H;
  Value Slot;
};

} // namespace grift

#endif // GRIFT_RUNTIME_HEAP_H
