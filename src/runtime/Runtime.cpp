#include "runtime/Runtime.h"

#include "runtime/CastBackend.h"
#include "support/StringUtil.h"
#include "types/TypeOps.h"

#include <cassert>

using namespace grift;

Runtime::Runtime(TypeContext &Types, CoercionFactory &Coercions,
                 CastMode Mode)
    : Types(Types), Coercions(Coercions), Mode(Mode),
      Backend(createCastBackend(Mode, *this)) {}

Runtime::~Runtime() = default;

//===----------------------------------------------------------------------===//
// Errors
//===----------------------------------------------------------------------===//

void Runtime::blame(const std::string *Label, std::string Message) {
  throw RuntimeError{ErrorKind::Blame, Label ? *Label : "?",
                     std::move(Message)};
}

void Runtime::trap(std::string Message) {
  throw RuntimeError{ErrorKind::Trap, "", std::move(Message)};
}

//===----------------------------------------------------------------------===//
// Dyn introspection
//===----------------------------------------------------------------------===//

const Type *Runtime::runtimeTypeOf(Value V) const {
  if (V.isFloat()) // NaN-boxed doubles are self-describing
    return Types.floating();
  switch (V.tag()) {
  case ValueTag::Fixnum:
    return Types.integer();
  case ValueTag::Imm:
    switch (V.immKind()) {
    case ImmKind::Unit:
      return Types.unit();
    case ImmKind::False:
    case ImmKind::True:
      return Types.boolean();
    case ImmKind::Char:
      return Types.character();
    }
    return Types.unit();
  case ValueTag::Heap: {
    const HeapObject *Object = V.object();
    if (Object->kind() == ObjectKind::DynBox)
      return static_cast<const Type *>(Object->meta(0));
    // A bare tuple/closure/reference can only reach a Dyn context through
    // a DynBox; seeing one here is a compiler bug.
    assert(false && "untagged heap value in Dyn context");
    return Types.dyn();
  }
  case ValueTag::Proxy:
    assert(false && "proxy value in Dyn context");
    return Types.dyn();
  }
  return Types.dyn();
}

Value Runtime::dynUnwrap(Value V) const {
  if (V.isHeap() && V.object()->kind() == ObjectKind::DynBox)
    return V.object()->slot(0);
  return V;
}

Value Runtime::inject(Value V, const Type *S) {
  assert(!S->isDyn() && "cannot inject Dyn");
  // Self-describing representations stay inline (paper: atomic values are
  // stored inline; NaN-boxed floats carry their type in the encoding, so
  // float injection is a no-op and never allocates).
  if (S->isAtomic())
    return V;
  return TheHeap.allocDynBox(V, S);
}

//===----------------------------------------------------------------------===//
// Cast application entry points
//===----------------------------------------------------------------------===//

Value Runtime::applyCast(Value V, const CastDescriptor &Desc,
                         CoercionCache *IC) {
  // Cast-torture hook: under MinorGCTorturePeriod every Nth cast runs a
  // minor collection with V pinned, so the backend below sees a value
  // that just survived an evacuation.
  TheHeap.maybeCastTortureMinor(V);
  return Backend->applyCast(V, Desc, IC);
}

Value Runtime::applyMonotonic(Value V, const Type *S, const Type *T,
                              const std::string *Label) {
  ++Stats.CastsApplied;
  return castMono(V, S, T, Label);
}

Value Runtime::applyCoercion(Value V, const Coercion *C, CoercionCache *IC) {
  ++Stats.CastsApplied;
  return coerce(V, C, IC);
}

Value Runtime::applyTypeBased(Value V, const Type *S, const Type *T,
                              const std::string *Label) {
  ++Stats.CastsApplied;
  return castTB(V, S, T, Label);
}

Value Runtime::castRuntime(Value V, const Type *S, const Type *T,
                           const std::string *Label, CoercionCache *IC) {
  TheHeap.maybeCastTortureMinor(V);
  return Backend->castRuntime(V, S, T, Label, IC);
}

const Coercion *Runtime::internedCoercion(const Type *S, const Type *T,
                                          const std::string *Label) {
  return cachedCoercion(DynCastIC, S, T, Label,
                        [&] { return Coercions.makeInterned(S, T, Label); });
}

const Coercion *Runtime::composeForReturn(const Coercion *First,
                                          const Coercion *Second) {
  ++Stats.Compositions;
  return cachedCoercion(RetComposeIC, First, Second, nullptr,
                        [&] { return Coercions.compose(First, Second); });
}

//===----------------------------------------------------------------------===//
// coerce — paper Figure 6
//===----------------------------------------------------------------------===//

// GC note: coerce does not root V up front. Every allocating branch roots
// the values it still needs across its own allocations (alloc* helpers
// root their value arguments; the tuple branch keeps explicit roots), so
// a blanket root would only add overhead to the hot Id/Project paths.
Value Runtime::coerce(Value V, const Coercion *C, CoercionCache *IC) {
  switch (C->kind()) {
  case CoercionKind::Id:
    return V;

  case CoercionKind::Sequence:
    return coerce(coerce(V, C->first(), IC), C->second(), IC);

  case CoercionKind::Project: {
    // Build the coercion from the value's runtime type to the target and
    // apply it to the untagged value (lazy-D). The exact-match fast path
    // (types are interned, so equality is pointer equality) covers the
    // overwhelmingly common case of a projection that succeeds outright
    // and is not a cache probe — only the mismatch path consults the
    // inline cache before falling back to the ProjectCache hash.
    const Type *S = runtimeTypeOf(V);
    if (S == C->type())
      return dynUnwrap(V);
    const Coercion *C2 =
        cachedCoercion(IC ? *IC : ProjectIC, C, S, nullptr,
                       [&] { return Coercions.makeForProjection(C, S); });
    return coerce(dynUnwrap(V), C2, IC);
  }

  case CoercionKind::Inject:
    return inject(V, C->type());

  case CoercionKind::Fail:
    blame(&C->label(),
          "the value " + valueToString(V, 3) + " does not have the type "
          "promised at this cast");

  case CoercionKind::Fun: {
    if (V.isProxy()) {
      // Already-proxied function: compose so that there is only ever one
      // proxy — this is what maintains space efficiency.
      HeapObject *P = V.object();
      assert(P->kind() == ObjectKind::ProxyClosure && "expected fun proxy");
      const Coercion *Old = static_cast<const Coercion *>(P->meta(0));
      const Coercion *New =
          cachedCoercion(IC ? *IC : FunComposeIC, Old, C, nullptr,
                         [&] { return Coercions.compose(Old, C); });
      ++Stats.Compositions;
      Value Wrapped = P->slot(0);
      if (New->isId())
        return Wrapped; // the conversions cancelled; drop the proxy
      ++Stats.ProxiesAllocated;
      return TheHeap.allocProxyClosure(Wrapped, New, nullptr, nullptr);
    }
    assert(V.isHeap() && V.object()->kind() == ObjectKind::Closure &&
           "function coercion applied to non-function");
    ++Stats.ProxiesAllocated;
    return TheHeap.allocProxyClosure(V, C, nullptr, nullptr);
  }

  case CoercionKind::RefC:
    // What a reference coercion does is the backend's call: proxy
    // composition (space-efficient, at most one proxy) or monotonic
    // in-place strengthening.
    return Backend->coerceRef(V, C, IC);

  case CoercionKind::TupleC: {
    assert(V.isHeap() && V.object()->kind() == ObjectKind::Tuple &&
           "tuple coercion applied to non-tuple");
    uint32_t Size = V.object()->slotCount();
    assert(Size == C->tupleSize() && "tuple coercion arity mismatch");
    Rooted Src(TheHeap, V);
    Value Fresh = TheHeap.allocTuple(Size);
    Rooted Dst(TheHeap, Fresh);
    for (uint32_t I = 0; I != Size; ++I) {
      Value Element = coerce(Src.get().object()->slot(I), C->element(I));
      // The element coercion may have triggered a minor collection that
      // promoted Dst while Element is still young.
      Dst.get().object()->slot(I) = Element;
      TheHeap.recordWrite(Dst.get(), Element);
    }
    return Dst.get();
  }

  case CoercionKind::Rec:
    return coerce(V, C->body());
  }
  return V;
}

//===----------------------------------------------------------------------===//
// Type-based casts — the traditional baseline
//===----------------------------------------------------------------------===//

Value Runtime::castTB(Value V, const Type *S, const Type *T,
                      const std::string *Label) {
  if (S == T)
    return V;
  if (T->isDyn())
    return inject(V, S);
  if (S->isDyn()) {
    const Type *S2 = runtimeTypeOf(V);
    if (!consistent(Types, S2, T))
      blame(Label, "cannot cast " + S2->str() + " to " + T->str());
    return castTB(dynUnwrap(V), S2, T, Label);
  }
  if (S->isRec())
    return castTB(V, Types.unfold(S), T, Label);
  if (T->isRec())
    return castTB(V, S, Types.unfold(T), Label);
  if (!consistent(Types, S, T))
    blame(Label, "cannot cast " + S->str() + " to " + T->str());

  switch (S->kind()) {
  case TypeKind::Function:
    // Proxies stack: this is the unbounded-space behaviour the paper's
    // coercions eliminate.
    ++Stats.ProxiesAllocated;
    return TheHeap.allocProxyClosure(V, S, T, Label);
  case TypeKind::Box:
  case TypeKind::Vect:
    ++Stats.ProxiesAllocated;
    return TheHeap.allocRefProxy(V, S->inner(), T->inner(), Label);
  case TypeKind::Tuple: {
    assert(V.isHeap() && V.object()->kind() == ObjectKind::Tuple &&
           "tuple cast applied to non-tuple");
    uint32_t Size = V.object()->slotCount();
    Rooted Src(TheHeap, V);
    Value Fresh = TheHeap.allocTuple(Size);
    Rooted Dst(TheHeap, Fresh);
    for (uint32_t I = 0; I != Size; ++I) {
      Value Element = castTB(Src.get().object()->slot(I), S->element(I),
                             T->element(I), Label);
      Dst.get().object()->slot(I) = Element;
      TheHeap.recordWrite(Dst.get(), Element);
    }
    return Dst.get();
  }
  default:
    // Consistent atomic types are equal, which was handled above.
    assert(false && "castTB: unexpected type kind");
    blame(Label, "impossible cast");
  }
}

//===----------------------------------------------------------------------===//
// Monotonic references
//===----------------------------------------------------------------------===//

Value Runtime::castMono(Value V, const Type *S, const Type *T,
                        const std::string *Label) {
  if (S == T)
    return V;
  if (T->isDyn())
    return inject(V, S);
  if (S->isDyn()) {
    const Type *S2 = runtimeTypeOf(V);
    if (!consistent(Types, S2, T))
      blame(Label, "cannot cast " + S2->str() + " to " + T->str());
    return castMono(dynUnwrap(V), S2, T, Label);
  }
  if (S->isRec())
    return castMono(V, Types.unfold(S), T, Label);
  if (T->isRec())
    return castMono(V, S, Types.unfold(T), Label);
  if (!consistent(Types, S, T))
    blame(Label, "cannot cast " + S->str() + " to " + T->str());

  switch (S->kind()) {
  case TypeKind::Function: {
    // Functions still use space-efficient coercions; their reference
    // components are interpreted monotonically when applied (see the
    // RefC branch of coerce).
    const Coercion *C =
        cachedCoercion(DynCastIC, S, T, Label,
                       [&] { return Coercions.makeInterned(S, T, Label); });
    if (C->isId())
      return V;
    return coerce(V, C);
  }
  case TypeKind::Box:
  case TypeKind::Vect: {
    // The monotonic step: no proxy, stronger cell type. Strengthening
    // converts the stored values, which can allocate and run a minor
    // collection, so the cell is pinned and re-derived rather than held
    // as a raw pointer.
    Rooted Ref(TheHeap, V);
    strengthenCell(Ref.get().object(), T->inner(), Label);
    return Ref.get();
  }
  case TypeKind::Tuple: {
    uint32_t Size = V.object()->slotCount();
    Rooted Src(TheHeap, V);
    Value Fresh = TheHeap.allocTuple(Size);
    Rooted Dst(TheHeap, Fresh);
    for (uint32_t I = 0; I != Size; ++I) {
      Value Element = castMono(Src.get().object()->slot(I), S->element(I),
                               T->element(I), Label);
      Dst.get().object()->slot(I) = Element;
      TheHeap.recordWrite(Dst.get(), Element);
    }
    return Dst.get();
  }
  default:
    assert(false && "castMono: unexpected type kind");
    blame(Label, "impossible cast");
  }
}

void Runtime::strengthenCell(HeapObject *Cell, const Type *TargetElem,
                             const std::string *Label) {
  assert((Cell->kind() == ObjectKind::Box ||
          Cell->kind() == ObjectKind::Vector) &&
         "monotonic cast of a non-reference");
  const Type *M = static_cast<const Type *>(Cell->meta(0));
  assert(M && "monotonic cell without runtime type information");
  const Type *M2 = meet(Types, M, TargetElem);
  if (!M2)
    blame(Label, "a reference holding " + M->str() +
                     " cannot be viewed at " + TargetElem->str());
  if (M2 == M)
    return;
  // Guard against cycles through self-referential structures: updating
  // the RTTI before converting makes re-entrant strengthening with the
  // same target a no-op; the explicit stack catches deeper cycles. The
  // identity Value is pinned as a temp root, so when a mid-strengthen
  // minor collection promotes the cell both this frame's view and every
  // stacked cycle entry follow the move.
  Value CellVal = Value::fromHeap(Cell);
  for (const auto &Entry : Strengthening)
    if (Entry.first->object() == Cell && Entry.second == M2)
      return;
  TheHeap.pushTempRoot(&CellVal);
  Strengthening.push_back({&CellVal, M2});
  // Slot conversion can blame; unwind must still unpin the cell and pop
  // the cycle entry so the runtime stays usable after a caught error.
  struct Scope {
    Heap &H;
    std::vector<std::pair<const Value *, const Type *>> &S;
    ~Scope() {
      S.pop_back();
      H.popTempRoot();
    }
  } Unpin{TheHeap, Strengthening};
  CellVal.object()->setMeta(0, M2);
  for (uint32_t I = 0; I != CellVal.object()->slotCount(); ++I) {
    Value Converted = castMono(CellVal.object()->slot(I), M, M2, Label);
    HeapObject *Current = CellVal.object(); // re-derive: cell may have moved
    Current->slot(I) = Converted;
    TheHeap.recordWrite(Current, Converted);
  }
}

Value Runtime::monoBoxRead(Value Box, const Type *ViewElem,
                           const std::string *Label) {
  HeapObject *Cell = Box.object();
  Value V = Cell->slot(0);
  const Type *M = static_cast<const Type *>(Cell->meta(0));
  if (M == ViewElem)
    return V;
  // The cell is at least as precise as any view; convert outward.
  return castRuntime(V, M, ViewElem, Label);
}

void Runtime::monoBoxWrite(Value Box, Value Content, const Type *ViewElem,
                           const std::string *Label) {
  const Type *M = static_cast<const Type *>(Box.object()->meta(0));
  if (M != ViewElem) {
    // The inward conversion may allocate (and so move the cell); pin the
    // box and re-derive the raw pointer after.
    Rooted Cell(TheHeap, Box);
    Content = castRuntime(Content, ViewElem, M, Label); // may blame
    Box = Cell.get();
  }
  HeapObject *Object = Box.object();
  Object->slot(0) = Content;
  TheHeap.recordWrite(Object, Content);
}

Value Runtime::monoVectorRef(Value Vect, int64_t Index, const Type *ViewElem,
                             const std::string *Label) {
  HeapObject *Cell = Vect.object();
  if (Index < 0 || Index >= Cell->slotCount())
    trap("vector index " + std::to_string(Index) + " out of bounds");
  Value V = Cell->slot(static_cast<uint32_t>(Index));
  const Type *M = static_cast<const Type *>(Cell->meta(0));
  if (M == ViewElem)
    return V;
  return castRuntime(V, M, ViewElem, Label);
}

void Runtime::monoVectorSet(Value Vect, int64_t Index, Value Content,
                            const Type *ViewElem, const std::string *Label) {
  if (Index < 0 || Index >= Vect.object()->slotCount())
    trap("vector index " + std::to_string(Index) + " out of bounds");
  const Type *M = static_cast<const Type *>(Vect.object()->meta(0));
  if (M != ViewElem) {
    Rooted Cell(TheHeap, Vect);
    Content = castRuntime(Content, ViewElem, M, Label);
    Vect = Cell.get();
  }
  HeapObject *Object = Vect.object();
  Object->slot(static_cast<uint32_t>(Index)) = Content;
  TheHeap.recordWrite(Object, Content);
}

//===----------------------------------------------------------------------===//
// Proxy-aware reference operations
//===----------------------------------------------------------------------===//

HeapObject *Runtime::underlyingRef(Value Ref) const {
  HeapObject *Object = Ref.object();
  while (Object->kind() == ObjectKind::RefProxy)
    Object = Object->slot(0).object();
  return Object;
}

// The bare-object fast paths stay inline here; only a proxied reference
// pays the virtual dispatch into the backend's slow path.

Value Runtime::boxRead(Value Box) {
  if (!Box.isProxy())
    return Box.object()->slot(0);
  return Backend->proxyBoxRead(Box);
}

void Runtime::boxWrite(Value Box, Value Content) {
  if (!Box.isProxy()) {
    HeapObject *Object = Box.object();
    Object->slot(0) = Content;
    TheHeap.recordWrite(Object, Content);
    return;
  }
  Backend->proxyBoxWrite(Box, Content);
}

Value Runtime::vectorRef(Value Vect, int64_t Index) {
  if (!Vect.isProxy()) {
    HeapObject *Object = Vect.object();
    if (Index < 0 || Index >= Object->slotCount())
      trap("vector index " + std::to_string(Index) + " out of bounds for " +
           "length " + std::to_string(Object->slotCount()));
    return Object->slot(static_cast<uint32_t>(Index));
  }
  return Backend->proxyVectorRef(Vect, Index);
}

void Runtime::vectorSet(Value Vect, int64_t Index, Value Content) {
  if (!Vect.isProxy()) {
    HeapObject *Object = Vect.object();
    if (Index < 0 || Index >= Object->slotCount())
      trap("vector index " + std::to_string(Index) + " out of bounds for " +
           "length " + std::to_string(Object->slotCount()));
    Object->slot(static_cast<uint32_t>(Index)) = Content;
    TheHeap.recordWrite(Object, Content);
    return;
  }
  Backend->proxyVectorSet(Vect, Index, Content);
}

int64_t Runtime::vectorLength(Value Vect) {
  if (!Vect.isProxy())
    return Vect.object()->slotCount();
  uint64_t Depth = 0;
  const HeapObject *Object = Vect.object();
  while (Object->kind() == ObjectKind::RefProxy) {
    ++Depth;
    Object = Object->slots()[0].object();
  }
  Stats.noteChain(Depth);
  return Object->slotCount();
}

unsigned Runtime::proxyDepth(Value Callee) {
  unsigned Depth = 0;
  while (Callee.isProxy() &&
         Callee.object()->kind() == ObjectKind::ProxyClosure) {
    ++Depth;
    Callee = Callee.object()->slot(0);
  }
  return Depth;
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

std::string Runtime::valueToString(Value V, unsigned Depth) {
  if (Depth == 0)
    return "...";
  if (V.isFloat())
    return formatDouble(V.asFloat());
  switch (V.tag()) {
  case ValueTag::Fixnum:
    return std::to_string(V.asFixnum());
  case ValueTag::Imm:
    switch (V.immKind()) {
    case ImmKind::Unit:
      return "()";
    case ImmKind::False:
      return "#f";
    case ImmKind::True:
      return "#t";
    case ImmKind::Char:
      return std::string("#\\") + V.asChar();
    }
    return "()";
  case ValueTag::Heap: {
    // Nested prints can allocate (reading a proxied element applies its
    // conversion); pin the object and re-derive it each iteration.
    Rooted Self(TheHeap, V);
    switch (Self.get().object()->kind()) {
    case ObjectKind::Tuple: {
      std::string Out = "#(";
      for (uint32_t I = 0; I != Self.get().object()->slotCount(); ++I) {
        if (I != 0)
          Out += ' ';
        Out += valueToString(Self.get().object()->slot(I), Depth - 1);
      }
      return Out + ")";
    }
    case ObjectKind::Box:
      return "#&" + valueToString(boxRead(Self.get()), Depth - 1);
    case ObjectKind::Vector: {
      std::string Out = "#vec(";
      uint32_t Limit = std::min<uint32_t>(Self.get().object()->slotCount(), 8);
      for (uint32_t I = 0; I != Limit; ++I) {
        if (I != 0)
          Out += ' ';
        Out += valueToString(Self.get().object()->slot(I), Depth - 1);
      }
      if (Self.get().object()->slotCount() > Limit)
        Out += " ...";
      return Out + ")";
    }
    case ObjectKind::Closure:
      return "#<procedure>";
    case ObjectKind::DynBox:
      return valueToString(Self.get().object()->slot(0), Depth);
    default:
      return "#<object>";
    }
  }
  case ValueTag::Proxy: {
    if (V.object()->kind() == ObjectKind::ProxyClosure)
      return "#<procedure>";
    // Proxied reference: render through the proxy so every cast mode
    // prints the same contents. Reading through the proxy applies its
    // conversions, which can allocate — keep the proxy pinned.
    Rooted Self(TheHeap, V);
    if (underlyingRef(Self.get())->kind() == ObjectKind::Box)
      return "#&" + valueToString(boxRead(Self.get()), Depth - 1);
    std::string Out = "#vec(";
    int64_t Length = vectorLength(Self.get());
    int64_t Limit = std::min<int64_t>(Length, 8);
    for (int64_t I = 0; I != Limit; ++I) {
      if (I != 0)
        Out += ' ';
      Out += valueToString(vectorRef(Self.get(), I), Depth - 1);
    }
    if (Length > Limit)
      Out += " ...";
    return Out + ")";
  }
  }
  return "?";
}
