//===----------------------------------------------------------------------===//
///
/// \file
/// The five cast backends. Coercions is the paper's space-efficient
/// semantics; CoercionPassing shares its value-level behavior and only
/// flips the call protocol to composed per-frame return coercions;
/// Monotonic reuses the coercion machinery for functions but strengthens
/// reference cells in place; TypeBased is the proxy-stacking baseline;
/// Static admits no runtime casts at all.
///
//===----------------------------------------------------------------------===//
#include "runtime/CastBackend.h"

#include "runtime/Runtime.h"

#include <cassert>

using namespace grift;

//===----------------------------------------------------------------------===//
// Protected forwarders into Runtime privates
//===----------------------------------------------------------------------===//

const Coercion *CastBackend::cachedCompose(CoercionCache *IC,
                                           const Coercion *Old,
                                           const Coercion *New) {
  return RT.cachedCoercion(IC ? *IC : RT.RefComposeIC, Old, New, nullptr,
                           [&] { return RT.Coercions.compose(Old, New); });
}

const Coercion *CastBackend::cachedMake(CoercionCache *IC, const Type *S,
                                        const Type *T,
                                        const std::string *Label) {
  return RT.cachedCoercion(IC ? *IC : RT.DynCastIC, S, T, Label, [&] {
    return RT.Coercions.makeInterned(S, T, Label);
  });
}

void CastBackend::strengthenCell(Value Ref, const Type *TargetElem,
                                 const std::string *Label) {
  RT.strengthenCell(Ref.object(), TargetElem, Label);
}

//===----------------------------------------------------------------------===//
// Base defaults shared by the coercion-flavored backends
//===----------------------------------------------------------------------===//

Value CastBackend::coerceRef(Value V, const Coercion *C, CoercionCache *IC) {
  if (V.isProxy()) {
    HeapObject *P = V.object();
    assert(P->kind() == ObjectKind::RefProxy && "expected ref proxy");
    const Coercion *Old = static_cast<const Coercion *>(P->meta(0));
    const Coercion *New = cachedCompose(IC, Old, C);
    ++RT.stats().Compositions;
    Value Wrapped = P->slot(0);
    if (New->isId())
      return Wrapped;
    ++RT.stats().ProxiesAllocated;
    return RT.heap().allocRefProxy(Wrapped, New, nullptr, nullptr);
  }
  assert(V.isHeap() && (V.object()->kind() == ObjectKind::Box ||
                        V.object()->kind() == ObjectKind::Vector) &&
         "reference coercion applied to non-reference");
  ++RT.stats().ProxiesAllocated;
  return RT.heap().allocRefProxy(V, C, nullptr, nullptr);
}

Value CastBackend::dynBoxRead(Value Inner, const Type *Elem,
                              const std::string *Label, CoercionCache *IC) {
  Value Content = RT.boxRead(Inner);
  return castRuntime(Content, Elem, RT.typeContext().dyn(), Label, IC);
}

void CastBackend::dynBoxWrite(Value Inner, Value Content, const Type *Elem,
                              const std::string *Label, CoercionCache *IC) {
  // The content cast can allocate and move Inner; pin it across the cast.
  Rooted Ref(RT.heap(), Inner);
  Value Converted =
      castRuntime(Content, RT.typeContext().dyn(), Elem, Label, IC);
  RT.boxWrite(Ref.get(), Converted);
}

Value CastBackend::dynVectorRef(Value Inner, int64_t Index, const Type *Elem,
                                const std::string *Label, CoercionCache *IC) {
  Value Element = RT.vectorRef(Inner, Index);
  return castRuntime(Element, Elem, RT.typeContext().dyn(), Label, IC);
}

void CastBackend::dynVectorSet(Value Inner, int64_t Index, Value Content,
                               const Type *Elem, const std::string *Label,
                               CoercionCache *IC) {
  Rooted Ref(RT.heap(), Inner);
  Value Converted =
      castRuntime(Content, RT.typeContext().dyn(), Elem, Label, IC);
  RT.vectorSet(Ref.get(), Index, Converted);
}

namespace {

//===----------------------------------------------------------------------===//
// Coercions — the paper's space-efficient normal-form semantics
//===----------------------------------------------------------------------===//

class CoercionsBackend : public CastBackend {
public:
  using CastBackend::CastBackend;

  CastMode castMode() const override { return CastMode::Coercions; }

  Value applyCast(Value V, const CastDescriptor &Desc,
                  CoercionCache *IC) override {
    return RT.applyCoercion(V, Desc.C, IC);
  }

  Value castRuntime(Value V, const Type *S, const Type *T,
                    const std::string *Label, CoercionCache *IC) override {
    return RT.applyCoercion(V, cachedMake(IC, S, T, Label), IC);
  }

  // Invariant: at most one proxy per reference, so the slow paths are a
  // single read/write coercion around the base object.
  Value proxyBoxRead(Value Box) override {
    HeapObject *P = Box.object();
    RT.stats().noteChain(1);
    Value Raw = P->slot(0).object()->slot(0);
    const Coercion *C = static_cast<const Coercion *>(P->meta(0));
    return RT.applyCoercion(Raw, C->readCoercion());
  }

  void proxyBoxWrite(Value Box, Value Content) override {
    RT.stats().noteChain(1);
    // The write coercion can allocate (and so move the proxy and its
    // base); the coercion itself is interned and safe to read up front.
    const Coercion *C = static_cast<const Coercion *>(Box.object()->meta(0));
    Rooted Proxy(RT.heap(), Box);
    Value Converted = RT.applyCoercion(Content, C->writeCoercion());
    HeapObject *Base = Proxy.get().object()->slot(0).object();
    Base->slot(0) = Converted;
    RT.heap().recordWrite(Base, Converted);
  }

  Value proxyVectorRef(Value Vect, int64_t Index) override {
    HeapObject *P = Vect.object();
    RT.stats().noteChain(1);
    HeapObject *Base = P->slot(0).object();
    if (Index < 0 || Index >= Base->slotCount())
      RT.trap("vector index out of bounds");
    const Coercion *C = static_cast<const Coercion *>(P->meta(0));
    return RT.applyCoercion(Base->slot(static_cast<uint32_t>(Index)),
                            C->readCoercion());
  }

  void proxyVectorSet(Value Vect, int64_t Index, Value Content) override {
    RT.stats().noteChain(1);
    const Coercion *C = static_cast<const Coercion *>(Vect.object()->meta(0));
    Rooted Proxy(RT.heap(), Vect);
    Value Converted = RT.applyCoercion(Content, C->writeCoercion());
    HeapObject *Base = Proxy.get().object()->slot(0).object();
    if (Index < 0 || Index >= Base->slotCount())
      RT.trap("vector index out of bounds");
    Base->slot(static_cast<uint32_t>(Index)) = Converted;
    RT.heap().recordWrite(Base, Converted);
  }
};

//===----------------------------------------------------------------------===//
// Coercion-passing style (Tsuda, Igarashi & Tabuchi)
//===----------------------------------------------------------------------===//

/// Identical value-level semantics to Coercions — casts compile to the
/// same interned normal-form coercion graph, so zero-new-nodes and the
/// one-proxy invariant carry over verbatim. The observable difference is
/// the call protocol: the VM composes a frame's pending return coercions
/// into one explicit coercion argument per frame (composesPendingReturns),
/// bounding return-cast space at O(1) per frame where the stacked
/// protocol grows Θ(n) across n proxied tail calls.
class CoercionPassingBackend : public CoercionsBackend {
public:
  using CoercionsBackend::CoercionsBackend;
  CastMode castMode() const override { return CastMode::CoercionPassing; }
  bool composesPendingReturns() const override { return true; }
};

//===----------------------------------------------------------------------===//
// Type-based casts — the proxy-stacking baseline
//===----------------------------------------------------------------------===//

class TypeBasedBackend : public CastBackend {
public:
  using CastBackend::CastBackend;

  CastMode castMode() const override { return CastMode::TypeBased; }
  bool coercionCallProtocol() const override { return false; }

  Value applyCast(Value V, const CastDescriptor &Desc,
                  CoercionCache *IC) override {
    (void)IC; // type-based casts re-walk the types; nothing to cache
    return RT.applyTypeBased(V, Desc.Src, Desc.Tgt, Desc.Label);
  }

  Value castRuntime(Value V, const Type *S, const Type *T,
                    const std::string *Label, CoercionCache *) override {
    return RT.applyTypeBased(V, S, T, Label);
  }

  // Chains grow without bound; every operation traverses the whole chain
  // (reads innermost-outwards, writes outermost-inwards).
  //
  // The recorded chain holds the proxies' (S, T, label) triples, not the
  // proxy objects: types, labels — and the triples — are interned and
  // immortal, while the proxies themselves can move when a conversion
  // below allocates and triggers a minor collection.
  struct ProxyView {
    const Type *S;
    const Type *T;
    const std::string *L;
  };

  Value proxyBoxRead(Value Box) override {
    std::vector<ProxyView> Chain;
    const HeapObject *Object = Box.object();
    while (Object->kind() == ObjectKind::RefProxy) {
      Chain.push_back({static_cast<const Type *>(Object->meta(0)),
                       static_cast<const Type *>(Object->meta(1)),
                       static_cast<const std::string *>(Object->meta(2))});
      Object = Object->slots()[0].object();
    }
    RT.stats().noteChain(Chain.size());
    Value V = Object->slots()[0];
    for (size_t I = Chain.size(); I-- > 0;)
      V = RT.applyTypeBased(V, Chain[I].S, Chain[I].T, Chain[I].L);
    return V;
  }

  void proxyBoxWrite(Value Box, Value Content) override {
    // Inward walk: each conversion can allocate, so the current position
    // is held in a pinned slot and re-derived after every step.
    Rooted Pos(RT.heap(), Box);
    uint64_t Depth = 0;
    Value V = Content;
    while (Pos.get().object()->kind() == ObjectKind::RefProxy) {
      ++Depth;
      const HeapObject *P = Pos.get().object();
      const Type *From = static_cast<const Type *>(P->meta(1));
      const Type *To = static_cast<const Type *>(P->meta(0));
      const std::string *L = static_cast<const std::string *>(P->meta(2));
      V = RT.applyTypeBased(V, From, To, L);
      Pos.set(Pos.get().object()->slot(0));
    }
    RT.stats().noteChain(Depth);
    HeapObject *Base = Pos.get().object();
    Base->slot(0) = V;
    RT.heap().recordWrite(Base, V);
  }

  Value proxyVectorRef(Value Vect, int64_t Index) override {
    std::vector<ProxyView> Chain;
    const HeapObject *Object = Vect.object();
    while (Object->kind() == ObjectKind::RefProxy) {
      Chain.push_back({static_cast<const Type *>(Object->meta(0)),
                       static_cast<const Type *>(Object->meta(1)),
                       static_cast<const std::string *>(Object->meta(2))});
      Object = Object->slots()[0].object();
    }
    RT.stats().noteChain(Chain.size());
    if (Index < 0 || Index >= Object->slotCount())
      RT.trap("vector index out of bounds");
    Value V = Object->slots()[static_cast<uint32_t>(Index)];
    for (size_t I = Chain.size(); I-- > 0;)
      V = RT.applyTypeBased(V, Chain[I].S, Chain[I].T, Chain[I].L);
    return V;
  }

  void proxyVectorSet(Value Vect, int64_t Index, Value Content) override {
    Rooted Pos(RT.heap(), Vect);
    uint64_t Depth = 0;
    Value V = Content;
    while (Pos.get().object()->kind() == ObjectKind::RefProxy) {
      ++Depth;
      const HeapObject *P = Pos.get().object();
      const Type *From = static_cast<const Type *>(P->meta(1));
      const Type *To = static_cast<const Type *>(P->meta(0));
      const std::string *L = static_cast<const std::string *>(P->meta(2));
      V = RT.applyTypeBased(V, From, To, L);
      Pos.set(Pos.get().object()->slot(0));
    }
    RT.stats().noteChain(Depth);
    HeapObject *Base = Pos.get().object();
    if (Index < 0 || Index >= Base->slotCount())
      RT.trap("vector index out of bounds");
    Base->slot(static_cast<uint32_t>(Index)) = V;
    RT.heap().recordWrite(Base, V);
  }
};

//===----------------------------------------------------------------------===//
// Monotonic references
//===----------------------------------------------------------------------===//

/// Functions use coercions (so the proxy-closure protocol and fun-proxy
/// slow paths come from CoercionsBackend); references are never proxied —
/// coerceRef strengthens the cell's runtime type in place, and the Dyn
/// elimination forms read/write against the cell's own RTTI. The proxied
/// reference slow paths inherited from CoercionsBackend are unreachable
/// (no RefProxy is ever allocated in this mode).
class MonotonicBackend : public CoercionsBackend {
public:
  using CoercionsBackend::CoercionsBackend;

  CastMode castMode() const override { return CastMode::Monotonic; }

  Value applyCast(Value V, const CastDescriptor &Desc,
                  CoercionCache *) override {
    return RT.applyMonotonic(V, Desc.Src, Desc.Tgt, Desc.Label);
  }

  Value castRuntime(Value V, const Type *S, const Type *T,
                    const std::string *Label, CoercionCache *) override {
    return RT.applyMonotonic(V, S, T, Label);
  }

  Value coerceRef(Value V, const Coercion *C, CoercionCache *) override {
    // Strengthening converts stored values and can run a minor
    // collection; return the pinned (possibly moved) reference.
    Rooted Ref(RT.heap(), V);
    strengthenCell(Ref.get(), C->type()->inner(), C->labelPointer());
    return Ref.get();
  }

  Value dynBoxRead(Value Inner, const Type *, const std::string *Label,
                   CoercionCache *) override {
    // Monotonic cells may be more precise than the DynBox's view type;
    // read against the cell's own runtime type.
    return RT.monoBoxRead(Inner, RT.typeContext().dyn(), Label);
  }

  void dynBoxWrite(Value Inner, Value Content, const Type *,
                   const std::string *Label, CoercionCache *) override {
    RT.monoBoxWrite(Inner, Content, RT.typeContext().dyn(), Label);
  }

  Value dynVectorRef(Value Inner, int64_t Index, const Type *,
                     const std::string *Label, CoercionCache *) override {
    return RT.monoVectorRef(Inner, Index, RT.typeContext().dyn(), Label);
  }

  void dynVectorSet(Value Inner, int64_t Index, Value Content, const Type *,
                    const std::string *Label, CoercionCache *) override {
    RT.monoVectorSet(Inner, Index, Content, RT.typeContext().dyn(), Label);
  }
};

//===----------------------------------------------------------------------===//
// Static — no gradual typing, no runtime casts
//===----------------------------------------------------------------------===//

/// The compiler rejects any program with Dyn in it, so none of these
/// entry points can be reached by a well-compiled static program; the
/// asserts document that contract (release builds fall back to the
/// shared coercion machinery, which is a no-op on identity casts).
class StaticBackend : public CoercionsBackend {
public:
  using CoercionsBackend::CoercionsBackend;

  CastMode castMode() const override { return CastMode::Static; }

  Value applyCast(Value V, const CastDescriptor &,
                  CoercionCache *) override {
    assert(false && "cast instruction in a static program");
    return V;
  }

  Value castRuntime(Value V, const Type *S, const Type *T,
                    const std::string *Label, CoercionCache *) override {
    assert(false && "runtime cast in a static program");
    return RT.applyTypeBased(V, S, T, Label);
  }
};

} // namespace

std::unique_ptr<CastBackend> grift::createCastBackend(CastMode Mode,
                                                      Runtime &RT) {
  static_assert(NumCastModes == 5,
                "new cast mode: register its backend in createCastBackend");
  switch (Mode) {
  case CastMode::Coercions:
    return std::make_unique<CoercionsBackend>(RT);
  case CastMode::TypeBased:
    return std::make_unique<TypeBasedBackend>(RT);
  case CastMode::Static:
    return std::make_unique<StaticBackend>(RT);
  case CastMode::Monotonic:
    return std::make_unique<MonotonicBackend>(RT);
  case CastMode::CoercionPassing:
    return std::make_unique<CoercionPassingBackend>(RT);
  }
  assert(false && "invalid cast mode");
  return std::make_unique<CoercionsBackend>(RT);
}
