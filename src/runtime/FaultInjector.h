//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the heap. Two torture modes, both
/// keyed to the global allocation counter so failures are exactly
/// reproducible:
///
///   * GC torture: force a full collection every Nth allocation. Period 1
///     collects before *every* allocation, which flushes out any value
///     held across an allocating call without a Rooted / RootProvider
///     registration (the classic precise-GC bug: the collector frees or
///     fails to trace an object the mutator still holds in a C++ local).
///
///   * Scheduled allocation failure: make the Nth allocation throw
///     ErrorKind::OutOfMemory. Sweeping N across a program's allocation
///     count exercises every OOM unwind path — each Rooted destructor,
///     each catch — deterministically, without needing to actually
///     exhaust memory.
/// A third family targets file I/O (the persistent compiled-program
/// store): truncate the Nth file write, fail the Nth fsync, or flip one
/// bit of the Nth whole-file read. All three are keyed to per-operation
/// counters the I/O layer advances through the should*() helpers, so a
/// failure schedule found by one run replays exactly on the next.
///
/// The injector is owned by the caller (tests, the CLI) and attached to a
/// Heap with setFaultInjector; the heap only reads/advances the counter,
/// so the caller can inspect AllocCount after a run to plan a failure
/// schedule. The file-I/O hooks work the same way: store::Store consults
/// them but never owns them.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_RUNTIME_FAULTINJECTOR_H
#define GRIFT_RUNTIME_FAULTINJECTOR_H

#include <cstdint>

namespace grift {

struct FaultInjector {
  /// Force a full collection every Nth allocation (0 = off).
  uint64_t GCTorturePeriod = 0;

  /// Force a *minor* (nursery) collection every Nth allocation — and
  /// every Nth cast application, through the heap's cast-torture hook —
  /// (0 = off). Minor collections move young objects, so period 1 is
  /// the harshest test of the write barrier and of every Value held
  /// across an allocating or casting call. No-op while the nursery is
  /// disabled.
  uint64_t MinorGCTorturePeriod = 0;

  /// Throw ErrorKind::OutOfMemory on the Nth allocation, 1-based
  /// (0 = off). One-shot: the counter keeps advancing afterwards, so a
  /// retried run on the same injector does not re-fail unless re-armed.
  uint64_t FailAllocAt = 0;

  /// Allocations observed so far (advanced by the heap). Read this after
  /// an uninstrumented run to learn a program's allocation count, then
  /// schedule FailAllocAt anywhere in [1, AllocCount].
  uint64_t AllocCount = 0;

  /// Collections forced by GC torture (diagnostics).
  uint64_t ForcedCollections = 0;

  /// Minor collections forced by MinorGCTorturePeriod (diagnostics).
  uint64_t ForcedMinorCollections = 0;

  //===------------------------------------------------------------------===//
  // File-I/O fault family (persistent store, crash-only testing).
  //
  // Each fault is one-shot and 1-based, mirroring FailAllocAt: the Nth
  // operation of its kind triggers, the counter keeps advancing, and a
  // later operation does not re-fail unless the field is re-armed. 0
  // disarms a fault. Counters advance even while disarmed so a schedule
  // can be planned from an uninstrumented run.
  //===------------------------------------------------------------------===//

  /// Truncate the Nth whole-file write to roughly half its bytes and
  /// report failure — a torn write, as left by a crash mid-write.
  uint64_t ShortWriteAt = 0;

  /// Report failure from the Nth fsync (data may or may not be durable,
  /// exactly like a real fsync error).
  uint64_t FailFsyncAt = 0;

  /// Flip one bit of the Nth whole-file read, as seen by the reader
  /// only — the file on disk is not modified (a decaying sector or a
  /// bad DMA, not a persistent overwrite).
  uint64_t FlipReadBitAt = 0;

  /// Which bit of the read image FlipReadBitAt flips, as an absolute bit
  /// index; reduced modulo the image size by the reader.
  uint64_t FlipReadBitIndex = 0;

  /// File operations observed so far (advanced by the I/O layer).
  uint64_t FileWriteCount = 0;
  uint64_t FsyncCount = 0;
  uint64_t FileReadCount = 0;

  /// Faults actually delivered (diagnostics).
  uint64_t ShortWritesInjected = 0;
  uint64_t FsyncFailuresInjected = 0;
  uint64_t ReadBitsFlipped = 0;

  /// Advances the write counter; true when this write must be torn.
  bool shouldShortWrite() {
    if (++FileWriteCount != ShortWriteAt || ShortWriteAt == 0)
      return false;
    ++ShortWritesInjected;
    return true;
  }

  /// Advances the fsync counter; true when this fsync must report failure.
  bool shouldFailFsync() {
    if (++FsyncCount != FailFsyncAt || FailFsyncAt == 0)
      return false;
    ++FsyncFailuresInjected;
    return true;
  }

  /// Advances the read counter; true when this read must see one flipped
  /// bit, returning the absolute bit index through \p BitIndex.
  bool shouldFlipReadBit(uint64_t &BitIndex) {
    if (++FileReadCount != FlipReadBitAt || FlipReadBitAt == 0)
      return false;
    ++ReadBitsFlipped;
    BitIndex = FlipReadBitIndex;
    return true;
  }
};

} // namespace grift

#endif // GRIFT_RUNTIME_FAULTINJECTOR_H
