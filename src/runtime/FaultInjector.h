//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the heap. Two torture modes, both
/// keyed to the global allocation counter so failures are exactly
/// reproducible:
///
///   * GC torture: force a full collection every Nth allocation. Period 1
///     collects before *every* allocation, which flushes out any value
///     held across an allocating call without a Rooted / RootProvider
///     registration (the classic precise-GC bug: the collector frees or
///     fails to trace an object the mutator still holds in a C++ local).
///
///   * Scheduled allocation failure: make the Nth allocation throw
///     ErrorKind::OutOfMemory. Sweeping N across a program's allocation
///     count exercises every OOM unwind path — each Rooted destructor,
///     each catch — deterministically, without needing to actually
///     exhaust memory.
///
/// The injector is owned by the caller (tests, the CLI) and attached to a
/// Heap with setFaultInjector; the heap only reads/advances the counter,
/// so the caller can inspect AllocCount after a run to plan a failure
/// schedule.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_RUNTIME_FAULTINJECTOR_H
#define GRIFT_RUNTIME_FAULTINJECTOR_H

#include <cstdint>

namespace grift {

struct FaultInjector {
  /// Force a full collection every Nth allocation (0 = off).
  uint64_t GCTorturePeriod = 0;

  /// Throw ErrorKind::OutOfMemory on the Nth allocation, 1-based
  /// (0 = off). One-shot: the counter keeps advancing afterwards, so a
  /// retried run on the same injector does not re-fail unless re-armed.
  uint64_t FailAllocAt = 0;

  /// Allocations observed so far (advanced by the heap). Read this after
  /// an uninstrumented run to learn a program's allocation count, then
  /// schedule FailAllocAt anywhere in [1, AllocCount].
  uint64_t AllocCount = 0;

  /// Collections forced by GC torture (diagnostics).
  uint64_t ForcedCollections = 0;
};

} // namespace grift

#endif // GRIFT_RUNTIME_FAULTINJECTOR_H
