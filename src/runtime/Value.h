//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime value representation (paper Section 3.1, and the companion
/// report's section on bit-level value encodings). A Value is one 64-bit
/// word, NaN-boxed: every IEEE-754 double is stored directly, and all
/// non-float values live in the *negative* quiet-NaN space, which no
/// canonical arithmetic result ever occupies.
///
///   bit 63                                                    bit 0
///   ┌─┬───────────┬────────────────────────────────────────────────┐
///   │s│ exponent  │                  mantissa                      │
///   └─┴───────────┴────────────────────────────────────────────────┘
///
///   float   any word < 0xFFF8'0000'0000'0000 (all doubles incl. +qNaN;
///           NaN results are canonicalized to 0x7FF8'0000'0000'0000)
///   tagged  0xFFF8'0000'0000'0000 | tag<<48 | payload(48 bits)
///
///   tag 0  fixnum        — 48-bit signed integer (sign-extended on read)
///   tag 1  heap pointer  — plain heap object (closure, tuple, box,
///                          vector, DynBox)
///   tag 2  proxy pointer — proxy closure or proxied reference; paper:
///                          "the lowest bit of the pointer indicates
///                          which kind" — we spend a whole tag instead,
///                          and call sites / reference operations branch
///                          on it exactly the same way
///   tag 3  immediate     — unit, #t, #f, characters (subtag in payload
///                          bits 0-1, character code in bits 2-9)
///
/// The scheme relies on two facts: (1) user-space pointers fit in 48
/// bits on every supported platform, and (2) the hardware's default
/// quiet NaN on x86 is 0xFFF8'0000'0000'0000 — exactly the base of our
/// tag space — so fromFloat() canonicalizes any NaN to the positive
/// quiet NaN before storing. All tag tests are one compare; floats are
/// the no-tag fast path (isFloat() is a single unsigned compare).
///
/// Values of type Dyn are self-describing: fixnums, immediates and
/// floats carry their type in the encoding (floats need no box at all),
/// while injected tuples, functions and references are wrapped in a
/// DynBox holding the value and its source type (paper: "for types with
/// larger values, the bits are a pointer to a pair of the injected value
/// and its type").
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_RUNTIME_VALUE_H
#define GRIFT_RUNTIME_VALUE_H

#include <cassert>
#include <cstdint>
#include <cstring>

namespace grift {

class HeapObject;

/// Tag field of a non-float value word (bits 48-50).
enum class ValueTag : uint64_t {
  Fixnum = 0,
  Heap = 1,
  Proxy = 2,
  Imm = 3,
};

/// Subtags for immediates (payload bits 0-1).
enum class ImmKind : uint64_t {
  Unit = 0,
  False = 1,
  True = 2,
  Char = 3,
};

/// A 64-bit NaN-boxed value word.
struct Value {
  /// Base of the tag space: the negative quiet-NaN encodings. Everything
  /// >= TagBase is a tagged non-float; everything below is a double.
  static constexpr uint64_t TagBase = UINT64_C(0xFFF8000000000000);
  static constexpr uint64_t PayloadMask = UINT64_C(0x0000FFFFFFFFFFFF);
  /// The canonical (positive) quiet NaN every NaN float is normalized to.
  static constexpr uint64_t CanonicalNaN = UINT64_C(0x7FF8000000000000);
  static constexpr int TagShift = 48;

  static constexpr int64_t FixnumMax = (INT64_C(1) << 47) - 1;
  static constexpr int64_t FixnumMin = -(INT64_C(1) << 47);

  uint64_t Bits = TagBase | (static_cast<uint64_t>(ValueTag::Imm) << TagShift);
  // default-constructed Value is Unit (ImmKind::Unit payload == 0)

  /// Tag of a non-float word. Meaningless for floats (isFloat() first).
  ValueTag tag() const {
    assert(!isFloat() && "floats carry no tag");
    return static_cast<ValueTag>((Bits >> TagShift) & 0x7);
  }

  bool isFloat() const { return Bits < TagBase; }
  bool isFixnum() const {
    return (Bits >> TagShift) ==
           (TagBase >> TagShift | static_cast<uint64_t>(ValueTag::Fixnum));
  }
  bool isHeap() const {
    return (Bits >> TagShift) ==
           (TagBase >> TagShift | static_cast<uint64_t>(ValueTag::Heap));
  }
  bool isProxy() const {
    return (Bits >> TagShift) ==
           (TagBase >> TagShift | static_cast<uint64_t>(ValueTag::Proxy));
  }
  bool isImm() const {
    return (Bits >> TagShift) ==
           (TagBase >> TagShift | static_cast<uint64_t>(ValueTag::Imm));
  }
  bool isPointer() const { return isHeap() || isProxy(); }

  ImmKind immKind() const {
    assert(isImm() && "not an immediate");
    return static_cast<ImmKind>(Bits & 0b11);
  }
  bool isUnit() const { return isImm() && immKind() == ImmKind::Unit; }
  bool isBool() const {
    return isImm() &&
           (immKind() == ImmKind::False || immKind() == ImmKind::True);
  }
  bool isChar() const { return isImm() && immKind() == ImmKind::Char; }

  //===--------------------------------------------------------------------===//
  // Constructors
  //===--------------------------------------------------------------------===//

  static Value fromFloat(double D) {
    uint64_t Bits;
    std::memcpy(&Bits, &D, sizeof(Bits));
    Value V;
    // Canonicalize NaNs: x86 arithmetic produces the *negative* quiet NaN
    // 0xFFF8... — the base of the tag space. One branch keeps every NaN
    // payload out of tagged territory.
    V.Bits = D == D ? Bits : CanonicalNaN;
    return V;
  }

  static Value fromFixnum(int64_t I) {
    assert(I >= FixnumMin && I <= FixnumMax && "fixnum overflow");
    Value V;
    V.Bits = TagBase | (static_cast<uint64_t>(I) & PayloadMask);
    return V;
  }

  static Value unit() { return Value(); }

  static Value fromBool(bool B) {
    Value V;
    V.Bits = TagBase | (static_cast<uint64_t>(ValueTag::Imm) << TagShift) |
             static_cast<uint64_t>(B ? ImmKind::True : ImmKind::False);
    return V;
  }

  static Value fromChar(char C) {
    Value V;
    V.Bits = TagBase | (static_cast<uint64_t>(ValueTag::Imm) << TagShift) |
             (static_cast<uint64_t>(static_cast<unsigned char>(C)) << 2) |
             static_cast<uint64_t>(ImmKind::Char);
    return V;
  }

  static Value fromHeap(HeapObject *Object) {
    assert((reinterpret_cast<uint64_t>(Object) & ~PayloadMask) == 0 &&
           "pointer exceeds 48 bits");
    Value V;
    V.Bits = TagBase | (static_cast<uint64_t>(ValueTag::Heap) << TagShift) |
             reinterpret_cast<uint64_t>(Object);
    return V;
  }

  static Value fromProxy(HeapObject *Object) {
    assert((reinterpret_cast<uint64_t>(Object) & ~PayloadMask) == 0 &&
           "pointer exceeds 48 bits");
    Value V;
    V.Bits = TagBase | (static_cast<uint64_t>(ValueTag::Proxy) << TagShift) |
             reinterpret_cast<uint64_t>(Object);
    return V;
  }

  //===--------------------------------------------------------------------===//
  // Accessors
  //===--------------------------------------------------------------------===//

  double asFloat() const {
    assert(isFloat() && "not a float");
    double D;
    std::memcpy(&D, &Bits, sizeof(D));
    return D;
  }

  int64_t asFixnum() const {
    assert(isFixnum() && "not a fixnum");
    // Sign-extend the 48-bit payload.
    return static_cast<int64_t>(Bits << 16) >> 16;
  }

  bool asBool() const {
    assert(isBool() && "not a boolean");
    return immKind() == ImmKind::True;
  }

  char asChar() const {
    assert(isChar() && "not a character");
    return static_cast<char>((Bits >> 2) & 0xFF);
  }

  /// The heap object behind a Heap- or Proxy-tagged value. This is the
  /// paper's "clear the tag bits of the pointer" step in the shared
  /// closure calling convention.
  HeapObject *object() const {
    assert(isPointer() && "not a pointer value");
    return reinterpret_cast<HeapObject *>(Bits & PayloadMask);
  }

  /// Bitwise equality. Correct for floats too because fromFloat
  /// canonicalizes NaNs — but note it makes distinct NaNs equal and
  /// 0.0 != -0.0, which is why numeric `=` goes through asFloat.
  bool operator==(const Value &Other) const { return Bits == Other.Bits; }
};

} // namespace grift

#endif // GRIFT_RUNTIME_VALUE_H
