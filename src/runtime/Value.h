//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime value representation (paper Section 3.1). A Value is one
/// 64-bit word whose low 3 bits are a tag:
///
///   000  fixnum        — 61-bit signed integer stored shifted left by 3
///   001  heap pointer  — plain heap object (closure, tuple, box, vector,
///                        boxed float, DynBox)
///   010  proxy pointer — proxy closure or proxied reference; paper: "the
///                        lowest bit of the pointer indicates which kind",
///                        and call sites / reference operations branch on
///                        this tag
///   011  immediate     — unit, #t, #f, characters (subtag in bits 3-4)
///
/// Values of type Dyn are self-describing: fixnums, immediates and boxed
/// floats carry their type in the tag/kind, while injected tuples,
/// functions and references are wrapped in a DynBox holding the value and
/// its source type (paper: "for types with larger values, the 61 bits are
/// a pointer to a pair of the injected value and its type").
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_RUNTIME_VALUE_H
#define GRIFT_RUNTIME_VALUE_H

#include <cassert>
#include <cstdint>

namespace grift {

class HeapObject;

/// Low three bits of a value word.
enum class ValueTag : uint64_t {
  Fixnum = 0b000,
  Heap = 0b001,
  Proxy = 0b010,
  Imm = 0b011,
};

/// Subtags for immediates (bits 3-4).
enum class ImmKind : uint64_t {
  Unit = 0,
  False = 1,
  True = 2,
  Char = 3,
};

/// A 64-bit tagged value word.
struct Value {
  uint64_t Bits = 0b011; // default-constructed Value is Unit

  static constexpr uint64_t TagMask = 0b111;
  static constexpr int64_t FixnumMax = (INT64_C(1) << 60) - 1;
  static constexpr int64_t FixnumMin = -(INT64_C(1) << 60);

  ValueTag tag() const { return static_cast<ValueTag>(Bits & TagMask); }

  bool isFixnum() const { return tag() == ValueTag::Fixnum; }
  bool isHeap() const { return tag() == ValueTag::Heap; }
  bool isProxy() const { return tag() == ValueTag::Proxy; }
  bool isImm() const { return tag() == ValueTag::Imm; }
  bool isPointer() const { return isHeap() || isProxy(); }

  ImmKind immKind() const {
    assert(isImm() && "not an immediate");
    return static_cast<ImmKind>((Bits >> 3) & 0b11);
  }
  bool isUnit() const { return isImm() && immKind() == ImmKind::Unit; }
  bool isBool() const {
    return isImm() &&
           (immKind() == ImmKind::False || immKind() == ImmKind::True);
  }
  bool isChar() const { return isImm() && immKind() == ImmKind::Char; }

  //===--------------------------------------------------------------------===//
  // Constructors
  //===--------------------------------------------------------------------===//

  static Value fromFixnum(int64_t I) {
    assert(I >= FixnumMin && I <= FixnumMax && "fixnum overflow");
    Value V;
    V.Bits = static_cast<uint64_t>(I) << 3;
    return V;
  }

  static Value unit() {
    Value V;
    V.Bits = (static_cast<uint64_t>(ImmKind::Unit) << 3) |
             static_cast<uint64_t>(ValueTag::Imm);
    return V;
  }

  static Value fromBool(bool B) {
    Value V;
    V.Bits = (static_cast<uint64_t>(B ? ImmKind::True : ImmKind::False) << 3) |
             static_cast<uint64_t>(ValueTag::Imm);
    return V;
  }

  static Value fromChar(char C) {
    Value V;
    V.Bits = (static_cast<uint64_t>(static_cast<unsigned char>(C)) << 5) |
             (static_cast<uint64_t>(ImmKind::Char) << 3) |
             static_cast<uint64_t>(ValueTag::Imm);
    return V;
  }

  static Value fromHeap(HeapObject *Object) {
    Value V;
    V.Bits = reinterpret_cast<uint64_t>(Object) |
             static_cast<uint64_t>(ValueTag::Heap);
    return V;
  }

  static Value fromProxy(HeapObject *Object) {
    Value V;
    V.Bits = reinterpret_cast<uint64_t>(Object) |
             static_cast<uint64_t>(ValueTag::Proxy);
    return V;
  }

  //===--------------------------------------------------------------------===//
  // Accessors
  //===--------------------------------------------------------------------===//

  int64_t asFixnum() const {
    assert(isFixnum() && "not a fixnum");
    return static_cast<int64_t>(Bits) >> 3; // arithmetic shift keeps sign
  }

  bool asBool() const {
    assert(isBool() && "not a boolean");
    return immKind() == ImmKind::True;
  }

  char asChar() const {
    assert(isChar() && "not a character");
    return static_cast<char>(Bits >> 5);
  }

  /// The heap object behind a Heap- or Proxy-tagged value. This is the
  /// paper's "clear the lowest bit of the pointer" step in the shared
  /// closure calling convention.
  HeapObject *object() const {
    assert(isPointer() && "not a pointer value");
    return reinterpret_cast<HeapObject *>(Bits & ~TagMask);
  }

  bool operator==(const Value &Other) const { return Bits == Other.Bits; }
};

} // namespace grift

#endif // GRIFT_RUNTIME_VALUE_H
