//===----------------------------------------------------------------------===//
///
/// \file
/// Resource budgets for one program execution. A zero field means
/// "unlimited" (beyond the engine's own safety caps). Both execution
/// engines honour the same struct:
///
///   * the VM counts dispatched instructions against MaxSteps (checked
///     once per dispatch batch, so overshoot is bounded by the batch
///     size), enforces MaxHeapBytes in Heap::allocateObject, MaxFrames in
///     doCall, and MaxWallNanos at batch boundaries;
///   * the reference interpreter counts eval() steps against MaxSteps and
///     interpreted-call depth against MaxFrames.
///
/// Exhausting a budget raises a RuntimeError with the matching resource
/// ErrorKind (FuelExhausted / OutOfMemory / StackOverflow / Timeout); the
/// engine unwinds cleanly and the owning Grift instance remains usable.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_RUNTIME_LIMITS_H
#define GRIFT_RUNTIME_LIMITS_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace grift {

/// Hard budgets for Executable::run / refinterp::interpret. Defaults are
/// all "unlimited" so existing callers see no behaviour change.
struct RunLimits {
  /// Fuel: interpreter steps (VM instructions / refinterp eval calls).
  /// 0 = unlimited. Enforcement is batched; a divergent program is
  /// stopped within one batch of the budget.
  uint64_t MaxSteps = 0;

  /// Heap budget in bytes of live data (measured as live-at-last-GC plus
  /// bytes allocated since). The heap collects once before declaring
  /// defeat, so floating garbage does not count against the budget.
  /// 0 = unlimited.
  size_t MaxHeapBytes = 0;

  /// Call-depth budget in frames. 0 = the engine's built-in safety cap.
  uint32_t MaxFrames = 0;

  /// Wall-clock budget in nanoseconds, checked at batch boundaries.
  /// 0 = unlimited.
  int64_t MaxWallNanos = 0;

  /// Nursery (young-generation) size in bytes for this run. The
  /// SIZE_MAX sentinel keeps the heap's built-in default; 0 disables the
  /// nursery entirely (the `--gc-nursery=0` escape hatch: all allocation
  /// goes straight to the old generation's pools, restoring the
  /// pre-generational collector); anything else is an explicit size.
  size_t GCNurseryBytes = std::numeric_limits<size_t>::max();

  /// Preemptive cancellation token. When non-null, the engines poll it
  /// at the same cadence as the wall clock (VM dispatch-batch boundary /
  /// refinterp recursion check); once another thread stores true the run
  /// unwinds with ErrorKind::Cancelled. The token must outlive the run.
  /// The engines only ever read it (relaxed loads); writers — watchdogs,
  /// signal handlers, shutdown paths — own the store side.
  const std::atomic<bool> *Cancel = nullptr;
};

} // namespace grift

#endif // GRIFT_RUNTIME_LIMITS_H
