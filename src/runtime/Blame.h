//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime error signalling. A failed cast raises blame carrying the label
/// of the responsible cast site (lazy-D blame tracking); other runtime
/// traps (index out of bounds, arity mismatch on a Dyn call, ...) use the
/// same channel without a blame label.
///
/// This is the one place the library uses C++ exceptions: blame must
/// unwind the recursive coerce/cast/interpreter machinery. Exceptions are
/// caught at the VM boundary and surfaced as a RunResult; none escape the
/// public API (see DESIGN.md §4).
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_RUNTIME_BLAME_H
#define GRIFT_RUNTIME_BLAME_H

#include <string>

namespace grift {

/// Raised when a cast fails (IsBlame) or the runtime traps (!IsBlame).
struct RuntimeError {
  bool IsBlame = false;
  std::string Label;   ///< cast-site blame label ("line:col"), if IsBlame
  std::string Message; ///< human-readable description

  /// Renders "blame 3:14: message" or "trap: message".
  std::string str() const {
    if (IsBlame)
      return "blame " + Label + ": " + Message;
    return "trap: " + Message;
  }
};

} // namespace grift

#endif // GRIFT_RUNTIME_BLAME_H
