//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime error signalling. A failed cast raises blame carrying the label
/// of the responsible cast site (lazy-D blame tracking); other runtime
/// traps (index out of bounds, arity mismatch on a Dyn call, ...) use the
/// same channel without a blame label. Resource exhaustion — fuel, heap,
/// call depth, wall clock — uses dedicated kinds so callers can tell a
/// program error (the program is wrong) from resource exhaustion (the
/// program was stopped; with a larger budget it might have finished).
///
/// This is the one place the library uses C++ exceptions: errors must
/// unwind the recursive coerce/cast/interpreter machinery. Exceptions are
/// caught at the VM / reference-interpreter boundary and surfaced as a
/// RunResult / RefResult; none escape the public API (see DESIGN.md §4).
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_RUNTIME_BLAME_H
#define GRIFT_RUNTIME_BLAME_H

#include <cstdint>
#include <string>

namespace grift {

/// What went wrong. The first two are program errors (deterministic for a
/// given program and input); the rest are resource errors imposed by
/// RunLimits or the allocator and depend on the configured budgets.
enum class ErrorKind : uint8_t {
  Blame,         ///< a cast failed; Label names the responsible cast site
  Trap,          ///< runtime trap (bounds, division by zero, bad input...)
  OutOfMemory,   ///< heap budget exhausted or the allocator failed
  StackOverflow, ///< call-frame or value-stack budget exhausted
  FuelExhausted, ///< step budget (RunLimits::MaxSteps) exhausted
  Timeout,       ///< wall-clock budget (RunLimits::MaxWallNanos) exhausted
  Cancelled,     ///< stopped from outside via RunLimits::Cancel
  Overloaded,    ///< shed by the service before running (admission/quota)
};

/// Stable machine-readable name ("blame", "trap", "out-of-memory", ...).
inline const char *errorKindName(ErrorKind Kind) {
  switch (Kind) {
  case ErrorKind::Blame:
    return "blame";
  case ErrorKind::Trap:
    return "trap";
  case ErrorKind::OutOfMemory:
    return "out-of-memory";
  case ErrorKind::StackOverflow:
    return "stack-overflow";
  case ErrorKind::FuelExhausted:
    return "fuel-exhausted";
  case ErrorKind::Timeout:
    return "timeout";
  case ErrorKind::Cancelled:
    return "cancelled";
  case ErrorKind::Overloaded:
    return "overloaded";
  }
  return "?";
}

/// Raised when a cast fails, the runtime traps, or a resource budget is
/// exhausted. Caught at the run() boundary; never escapes the public API.
struct RuntimeError {
  ErrorKind Kind = ErrorKind::Trap;
  std::string Label;   ///< cast-site blame label ("line:col"), if Blame
  std::string Message; ///< human-readable description

  bool isBlame() const { return Kind == ErrorKind::Blame; }

  /// Resource errors say nothing about the program itself: a bigger
  /// budget might have let it finish (or fail differently).
  bool isResourceExhaustion() const {
    return Kind != ErrorKind::Blame && Kind != ErrorKind::Trap;
  }

  /// Renders "blame 3:14: message" or "<kind>: message".
  std::string str() const {
    if (Kind == ErrorKind::Blame)
      return "blame " + Label + ": " + Message;
    return std::string(errorKindName(Kind)) + ": " + Message;
  }
};

} // namespace grift

#endif // GRIFT_RUNTIME_BLAME_H
