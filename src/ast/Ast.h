//===----------------------------------------------------------------------===//
///
/// \file
/// The GTLC+ surface AST (paper Figure 5). Nodes are intentionally plain
/// structs with public members: the configuration sampler (src/lattice)
/// rewrites type annotations in place, and the front end consumes the tree
/// read-only. Sub-expression layout per kind is documented on ExprKind.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_AST_AST_H
#define GRIFT_AST_AST_H

#include "ast/Prim.h"
#include "support/SourceLoc.h"
#include "types/Type.h"

#include <memory>
#include <string>
#include <vector>

namespace grift {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression constructors. `Sub` below names Expr::SubExprs.
enum class ExprKind : uint8_t {
  LitUnit,   ///< ()
  LitBool,   ///< #t / #f; BoolVal
  LitInt,    ///< IntVal
  LitFloat,  ///< FloatVal
  LitChar,   ///< CharVal
  Var,       ///< Name
  If,        ///< Sub = [cond, then, else]
  Lambda,    ///< Params, ReturnAnnot?; Sub = [body]
  App,       ///< Sub = [callee, args...]
  PrimApp,   ///< Prim; Sub = args
  Let,       ///< Bindings; Sub = body sequence
  Letrec,    ///< Bindings (lambda RHS only); Sub = body sequence
  Begin,     ///< Sub = expressions (non-empty)
  Repeat,    ///< Name = index var; Sub = [lo, hi, (accInit)?, body];
             ///< AccName/AccAnnot when HasAcc
  Time,      ///< Sub = [body]
  Tuple,     ///< Sub = elements
  TupleProj, ///< Index; Sub = [tuple]
  BoxE,      ///< Sub = [init]
  Unbox,     ///< Sub = [box]
  BoxSet,    ///< Sub = [box, value]
  MakeVect,  ///< Sub = [size, init]
  VectRef,   ///< Sub = [vect, index]
  VectSet,   ///< Sub = [vect, index, value]
  VectLen,   ///< Sub = [vect]
  Ascribe,   ///< Annot; Sub = [body]  — (ann E T)
};

/// A formal parameter; Annot == nullptr means the annotation was omitted
/// (which the type checker reads as Dyn, fine-grained gradual typing).
struct Param {
  std::string Name;
  const Type *Annot = nullptr;
  SourceLoc Loc;
};

/// A let/letrec binding; Annot == nullptr means "synthesize from Init".
struct Binding {
  std::string Name;
  const Type *Annot = nullptr;
  ExprPtr Init;
  SourceLoc Loc;
};

/// One surface expression.
struct Expr {
  ExprKind Kind = ExprKind::LitUnit;
  SourceLoc Loc;

  // Literal payloads.
  int64_t IntVal = 0;
  double FloatVal = 0;
  bool BoolVal = false;
  char CharVal = 0;

  std::string Name;    // Var, Repeat index variable
  PrimOp Prim{};       // PrimApp
  uint32_t Index = 0;  // TupleProj
  bool HasAcc = false; // Repeat accumulator present?
  std::string AccName; // Repeat accumulator variable
  const Type *AccAnnot = nullptr;    // Repeat accumulator annotation
  const Type *ReturnAnnot = nullptr; // Lambda return annotation
  const Type *Annot = nullptr;       // Ascribe target type

  std::vector<Param> Params;       // Lambda
  std::vector<Binding> Bindings;   // Let / Letrec
  std::vector<ExprPtr> SubExprs;   // layout per ExprKind

  /// Deep copy (the sampler clones programs before mutating annotations).
  ExprPtr clone() const;

  /// Renders surface syntax (annotations included).
  std::string str() const;
};

/// Factory helpers; every node gets a location.
ExprPtr makeLitUnit(SourceLoc Loc);
ExprPtr makeLitBool(bool Value, SourceLoc Loc);
ExprPtr makeLitInt(int64_t Value, SourceLoc Loc);
ExprPtr makeLitFloat(double Value, SourceLoc Loc);
ExprPtr makeLitChar(char Value, SourceLoc Loc);
ExprPtr makeVar(std::string Name, SourceLoc Loc);
ExprPtr makeNode(ExprKind Kind, std::vector<ExprPtr> SubExprs,
                 SourceLoc Loc);

/// A top-level definition: (define x : T E) or a bare expression
/// (Name empty). Function defines are desugared to lambda bindings by the
/// parser.
struct Define {
  std::string Name;           // empty for an expression statement
  const Type *Annot = nullptr; // nullptr: synthesize
  ExprPtr Body;
  SourceLoc Loc;

  Define clone() const;
};

/// A whole program: an ordered sequence of definitions and expressions.
struct Program {
  std::vector<Define> Defines;

  Program clone() const;
  /// Renders the program as concrete syntax.
  std::string str() const;
};

} // namespace grift

#endif // GRIFT_AST_AST_H
