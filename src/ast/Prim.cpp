#include "ast/Prim.h"

#include <cassert>
#include <unordered_map>

using namespace grift;

namespace {

struct PrimInfo {
  std::string_view Name;
  std::string_view Signature; // params before ':', result after
};

constexpr PrimInfo PrimTable[] = {
#define GRIFT_PRIM(ID, NAME, SIG) {NAME, SIG},
#include "ast/Prims.def"
#undef GRIFT_PRIM
};

constexpr unsigned NumPrimOps = sizeof(PrimTable) / sizeof(PrimTable[0]);

const PrimInfo &info(PrimOp Op) {
  unsigned Index = static_cast<unsigned>(Op);
  assert(Index < NumPrimOps && "bad primop");
  return PrimTable[Index];
}

const Type *letterType(TypeContext &Ctx, char Letter) {
  switch (Letter) {
  case 'i':
    return Ctx.integer();
  case 'f':
    return Ctx.floating();
  case 'b':
    return Ctx.boolean();
  case 'c':
    return Ctx.character();
  case 'u':
    return Ctx.unit();
  default:
    assert(false && "bad signature letter");
    return Ctx.dyn();
  }
}

} // namespace

unsigned grift::numPrims() { return NumPrimOps; }

std::string_view grift::primName(PrimOp Op) { return info(Op).Name; }

unsigned grift::primArity(PrimOp Op) {
  return static_cast<unsigned>(info(Op).Signature.find(':'));
}

std::vector<const Type *> grift::primParams(TypeContext &Ctx, PrimOp Op) {
  std::string_view Signature = info(Op).Signature;
  std::vector<const Type *> Params;
  for (char Letter : Signature) {
    if (Letter == ':')
      break;
    Params.push_back(letterType(Ctx, Letter));
  }
  return Params;
}

const Type *grift::primResult(TypeContext &Ctx, PrimOp Op) {
  std::string_view Signature = info(Op).Signature;
  size_t Colon = Signature.find(':');
  assert(Colon != std::string_view::npos && Colon + 1 < Signature.size());
  return letterType(Ctx, Signature[Colon + 1]);
}

std::optional<PrimOp> grift::lookupPrim(std::string_view Name) {
  static const std::unordered_map<std::string_view, PrimOp> ByName = [] {
    std::unordered_map<std::string_view, PrimOp> Map;
    for (unsigned I = 0; I != NumPrimOps; ++I)
      Map.emplace(PrimTable[I].Name, static_cast<PrimOp>(I));
    return Map;
  }();
  auto It = ByName.find(Name);
  if (It == ByName.end())
    return std::nullopt;
  return It->second;
}
