//===----------------------------------------------------------------------===//
///
/// \file
/// The fixed table of GTLC+ primitive operators (paper Figure 5). Each
/// primitive has a fixed monomorphic signature; there is no numeric tower,
/// so integer and float arithmetic are distinct operators (`+` vs `fl+`).
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_AST_PRIM_H
#define GRIFT_AST_PRIM_H

#include "types/TypeContext.h"

#include <optional>
#include <string_view>
#include <vector>

namespace grift {

/// Every primitive operator. The X-macro in Prim.cpp carries the surface
/// name and signature; signatures use one letter per type:
/// i=Int, f=Float, b=Bool, c=Char, u=Unit.
enum class PrimOp : uint8_t {
#define GRIFT_PRIM(ID, NAME, SIG) ID,
#include "ast/Prims.def"
#undef GRIFT_PRIM
};

/// Number of primitive operators.
unsigned numPrims();

/// Surface syntax of \p Op, e.g. "fl+".
std::string_view primName(PrimOp Op);

/// Number of operands \p Op takes.
unsigned primArity(PrimOp Op);

/// Parameter types of \p Op, materialized in \p Ctx.
std::vector<const Type *> primParams(TypeContext &Ctx, PrimOp Op);

/// Result type of \p Op, materialized in \p Ctx.
const Type *primResult(TypeContext &Ctx, PrimOp Op);

/// Looks up an operator by surface name.
std::optional<PrimOp> lookupPrim(std::string_view Name);

} // namespace grift

#endif // GRIFT_AST_PRIM_H
