#include "ast/Ast.h"

#include "support/StringUtil.h"

#include <cassert>

using namespace grift;

ExprPtr Expr::clone() const {
  auto Copy = std::make_unique<Expr>();
  Copy->Kind = Kind;
  Copy->Loc = Loc;
  Copy->IntVal = IntVal;
  Copy->FloatVal = FloatVal;
  Copy->BoolVal = BoolVal;
  Copy->CharVal = CharVal;
  Copy->Name = Name;
  Copy->Prim = Prim;
  Copy->Index = Index;
  Copy->HasAcc = HasAcc;
  Copy->AccName = AccName;
  Copy->AccAnnot = AccAnnot;
  Copy->ReturnAnnot = ReturnAnnot;
  Copy->Annot = Annot;
  Copy->Params = Params;
  Copy->Bindings.reserve(Bindings.size());
  for (const Binding &B : Bindings) {
    Binding NewBinding;
    NewBinding.Name = B.Name;
    NewBinding.Annot = B.Annot;
    NewBinding.Init = B.Init ? B.Init->clone() : nullptr;
    NewBinding.Loc = B.Loc;
    Copy->Bindings.push_back(std::move(NewBinding));
  }
  Copy->SubExprs.reserve(SubExprs.size());
  for (const ExprPtr &Sub : SubExprs)
    Copy->SubExprs.push_back(Sub->clone());
  return Copy;
}

Define Define::clone() const {
  Define Copy;
  Copy.Name = Name;
  Copy.Annot = Annot;
  Copy.Body = Body ? Body->clone() : nullptr;
  Copy.Loc = Loc;
  return Copy;
}

Program Program::clone() const {
  Program Copy;
  Copy.Defines.reserve(Defines.size());
  for (const Define &D : Defines)
    Copy.Defines.push_back(D.clone());
  return Copy;
}

ExprPtr grift::makeLitUnit(SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::LitUnit;
  E->Loc = Loc;
  return E;
}

ExprPtr grift::makeLitBool(bool Value, SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::LitBool;
  E->BoolVal = Value;
  E->Loc = Loc;
  return E;
}

ExprPtr grift::makeLitInt(int64_t Value, SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::LitInt;
  E->IntVal = Value;
  E->Loc = Loc;
  return E;
}

ExprPtr grift::makeLitFloat(double Value, SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::LitFloat;
  E->FloatVal = Value;
  E->Loc = Loc;
  return E;
}

ExprPtr grift::makeLitChar(char Value, SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::LitChar;
  E->CharVal = Value;
  E->Loc = Loc;
  return E;
}

ExprPtr grift::makeVar(std::string Name, SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Var;
  E->Name = std::move(Name);
  E->Loc = Loc;
  return E;
}

ExprPtr grift::makeNode(ExprKind Kind, std::vector<ExprPtr> SubExprs,
                        SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = Kind;
  E->SubExprs = std::move(SubExprs);
  E->Loc = Loc;
  return E;
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

namespace {

void printExpr(const Expr &E, std::string &Out);

void printChar(char C, std::string &Out) {
  if (C == '\n')
    Out += "#\\newline";
  else if (C == ' ')
    Out += "#\\space";
  else if (C == '\t')
    Out += "#\\tab";
  else {
    Out += "#\\";
    Out += C;
  }
}

void printParam(const Param &P, std::string &Out) {
  if (P.Annot) {
    Out += '[';
    Out += P.Name;
    Out += " : ";
    Out += P.Annot->str();
    Out += ']';
  } else {
    Out += P.Name;
  }
}

void printBody(const std::vector<ExprPtr> &Body, size_t Start,
               std::string &Out) {
  for (size_t I = Start; I != Body.size(); ++I) {
    Out += ' ';
    printExpr(*Body[I], Out);
  }
}

void printExpr(const Expr &E, std::string &Out) {
  switch (E.Kind) {
  case ExprKind::LitUnit:
    Out += "()";
    return;
  case ExprKind::LitBool:
    Out += E.BoolVal ? "#t" : "#f";
    return;
  case ExprKind::LitInt:
    Out += std::to_string(E.IntVal);
    return;
  case ExprKind::LitFloat:
    Out += formatDouble(E.FloatVal);
    return;
  case ExprKind::LitChar:
    printChar(E.CharVal, Out);
    return;
  case ExprKind::Var:
    Out += E.Name;
    return;
  case ExprKind::If:
    Out += "(if ";
    printExpr(*E.SubExprs[0], Out);
    Out += ' ';
    printExpr(*E.SubExprs[1], Out);
    Out += ' ';
    printExpr(*E.SubExprs[2], Out);
    Out += ')';
    return;
  case ExprKind::Lambda: {
    Out += "(lambda (";
    for (size_t I = 0; I != E.Params.size(); ++I) {
      if (I != 0)
        Out += ' ';
      printParam(E.Params[I], Out);
    }
    Out += ')';
    if (E.ReturnAnnot) {
      Out += " : ";
      Out += E.ReturnAnnot->str();
    }
    Out += ' ';
    printExpr(*E.SubExprs[0], Out);
    Out += ')';
    return;
  }
  case ExprKind::App: {
    Out += '(';
    for (size_t I = 0; I != E.SubExprs.size(); ++I) {
      if (I != 0)
        Out += ' ';
      printExpr(*E.SubExprs[I], Out);
    }
    Out += ')';
    return;
  }
  case ExprKind::PrimApp: {
    Out += '(';
    Out += primName(E.Prim);
    printBody(E.SubExprs, 0, Out);
    Out += ')';
    return;
  }
  case ExprKind::Let:
  case ExprKind::Letrec: {
    Out += E.Kind == ExprKind::Let ? "(let (" : "(letrec (";
    for (size_t I = 0; I != E.Bindings.size(); ++I) {
      const Binding &B = E.Bindings[I];
      if (I != 0)
        Out += ' ';
      Out += '[';
      Out += B.Name;
      if (B.Annot) {
        Out += " : ";
        Out += B.Annot->str();
      }
      Out += ' ';
      printExpr(*B.Init, Out);
      Out += ']';
    }
    Out += ')';
    printBody(E.SubExprs, 0, Out);
    Out += ')';
    return;
  }
  case ExprKind::Begin:
    Out += "(begin";
    printBody(E.SubExprs, 0, Out);
    Out += ')';
    return;
  case ExprKind::Repeat: {
    Out += "(repeat (";
    Out += E.Name;
    Out += ' ';
    printExpr(*E.SubExprs[0], Out);
    Out += ' ';
    printExpr(*E.SubExprs[1], Out);
    Out += ')';
    size_t BodyIndex = 2;
    if (E.HasAcc) {
      Out += " (";
      Out += E.AccName;
      if (E.AccAnnot) {
        Out += " : ";
        Out += E.AccAnnot->str();
      }
      Out += ' ';
      printExpr(*E.SubExprs[2], Out);
      Out += ')';
      BodyIndex = 3;
    }
    Out += ' ';
    printExpr(*E.SubExprs[BodyIndex], Out);
    Out += ')';
    return;
  }
  case ExprKind::Time:
    Out += "(time ";
    printExpr(*E.SubExprs[0], Out);
    Out += ')';
    return;
  case ExprKind::Tuple:
    Out += "(tuple";
    printBody(E.SubExprs, 0, Out);
    Out += ')';
    return;
  case ExprKind::TupleProj:
    Out += "(tuple-proj ";
    printExpr(*E.SubExprs[0], Out);
    Out += ' ';
    Out += std::to_string(E.Index);
    Out += ')';
    return;
  case ExprKind::BoxE:
    Out += "(box ";
    printExpr(*E.SubExprs[0], Out);
    Out += ')';
    return;
  case ExprKind::Unbox:
    Out += "(unbox ";
    printExpr(*E.SubExprs[0], Out);
    Out += ')';
    return;
  case ExprKind::BoxSet:
    Out += "(box-set! ";
    printExpr(*E.SubExprs[0], Out);
    Out += ' ';
    printExpr(*E.SubExprs[1], Out);
    Out += ')';
    return;
  case ExprKind::MakeVect:
    Out += "(make-vector ";
    printExpr(*E.SubExprs[0], Out);
    Out += ' ';
    printExpr(*E.SubExprs[1], Out);
    Out += ')';
    return;
  case ExprKind::VectRef:
    Out += "(vector-ref ";
    printExpr(*E.SubExprs[0], Out);
    Out += ' ';
    printExpr(*E.SubExprs[1], Out);
    Out += ')';
    return;
  case ExprKind::VectSet:
    Out += "(vector-set! ";
    printExpr(*E.SubExprs[0], Out);
    Out += ' ';
    printExpr(*E.SubExprs[1], Out);
    Out += ' ';
    printExpr(*E.SubExprs[2], Out);
    Out += ')';
    return;
  case ExprKind::VectLen:
    Out += "(vector-length ";
    printExpr(*E.SubExprs[0], Out);
    Out += ')';
    return;
  case ExprKind::Ascribe:
    Out += "(ann ";
    printExpr(*E.SubExprs[0], Out);
    Out += ' ';
    Out += E.Annot->str();
    Out += ')';
    return;
  }
}

} // namespace

std::string Expr::str() const {
  std::string Out;
  printExpr(*this, Out);
  return Out;
}

std::string Program::str() const {
  std::string Out;
  for (const Define &D : Defines) {
    if (D.Name.empty()) {
      Out += D.Body->str();
    } else {
      Out += "(define ";
      Out += D.Name;
      if (D.Annot) {
        Out += " : ";
        Out += D.Annot->str();
      }
      Out += ' ';
      Out += D.Body->str();
      Out += ')';
    }
    Out += '\n';
  }
  return Out;
}
