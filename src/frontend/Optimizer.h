//===----------------------------------------------------------------------===//
///
/// \file
/// Optional general-purpose optimizations over the core IR. The paper's
/// Grift deliberately performs none of these (Section 3: "Grift does not
/// perform any other general-purpose or global optimizations"), and
/// Section 5 conjectures that adding them would "eliminate many
/// first-order checks, the main cause of slowdowns in dynamically typed
/// code". This pass implements the local subset so the conjecture can be
/// measured (bench/ablation_optimizer):
///
///   * constant folding of integer/float/boolean primitives;
///   * branch folding of `if` with a literal condition;
///   * `begin` flattening and elimination of effect-free statements;
///   * cast folding: a cast applied to a literal whose target is a
///     concrete base type reduces to the literal (the cast must be the
///     identity for the program to have type checked).
///
/// The pass is OFF by default everywhere so benchmark results keep the
/// paper's "no optimizations" baseline.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_FRONTEND_OPTIMIZER_H
#define GRIFT_FRONTEND_OPTIMIZER_H

#include "frontend/CoreIR.h"
#include "types/TypeContext.h"

namespace grift {

/// Rewrites \p Prog in place; returns the number of rewrites performed.
/// Idempotent once it returns 0.
unsigned optimizeCore(TypeContext &Types, core::CoreProgram &Prog);

} // namespace grift

#endif // GRIFT_FRONTEND_OPTIMIZER_H
