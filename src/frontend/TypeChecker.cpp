#include "frontend/TypeChecker.h"

#include "types/TypeOps.h"

#include <cassert>
#include <unordered_map>

using namespace grift;
using namespace grift::core;

namespace {

class TypeChecker {
public:
  TypeChecker(TypeContext &Ctx, DiagnosticEngine &Diags)
      : Ctx(Ctx), Diags(Diags) {}

  std::optional<CoreProgram> run(const Program &Prog) {
    declareGlobals(Prog);
    if (Diags.hasErrors())
      return std::nullopt;
    CoreProgram Out;
    for (const Define &D : Prog.Defines) {
      Def CoreDef;
      CoreDef.Name = D.Name;
      if (D.Name.empty()) {
        CoreDef.Body = check(*D.Body);
        if (!CoreDef.Body)
          return std::nullopt;
        CoreDef.Ty = CoreDef.Body->Ty;
        Out.Defs.push_back(std::move(CoreDef));
        continue;
      }
      auto It = Globals.find(D.Name);
      const Type *Declared = It != Globals.end() ? It->second : nullptr;
      // A function define without a separate annotation commits to its
      // declared type so recursive calls and the body agree without an
      // extra wrapper cast; an explicitly annotated define keeps the cast
      // (that cast is the interesting one, cf. sort! in paper Figure 3).
      NodePtr Body;
      if (D.Body->Kind == ExprKind::Lambda && !D.Annot && Declared)
        Body = checkLambda(*D.Body, Declared);
      else
        Body = check(*D.Body);
      if (!Body)
        return std::nullopt;
      if (Declared) {
        Body = coerceTo(std::move(Body), Declared, D.Loc);
        if (!Body)
          return std::nullopt;
      } else {
        Declared = Body->Ty;
        Globals[D.Name] = Declared;
      }
      CoreDef.Ty = Declared;
      CoreDef.Body = std::move(Body);
      Out.Defs.push_back(std::move(CoreDef));
    }
    if (Diags.hasErrors())
      return std::nullopt;
    return Out;
  }

private:
  TypeContext &Ctx;
  DiagnosticEngine &Diags;
  std::unordered_map<std::string, const Type *> Globals;
  std::vector<std::unordered_map<std::string, const Type *>> Scopes;

  //===--------------------------------------------------------------------===//
  // Environment
  //===--------------------------------------------------------------------===//

  struct ScopeGuard {
    TypeChecker &Checker;
    explicit ScopeGuard(TypeChecker &Checker) : Checker(Checker) {
      Checker.Scopes.emplace_back();
    }
    ~ScopeGuard() { Checker.Scopes.pop_back(); }
  };

  void bind(const std::string &Name, const Type *T) {
    assert(!Scopes.empty() && "no scope to bind in");
    Scopes.back()[Name] = T;
  }

  const Type *lookupLocal(const std::string &Name) const {
    for (size_t I = Scopes.size(); I-- > 0;) {
      auto It = Scopes[I].find(Name);
      if (It != Scopes[I].end())
        return It->second;
    }
    return nullptr;
  }

  /// Declares every annotated or function-shaped define before checking
  /// bodies, enabling (mutual) recursion at the top level.
  void declareGlobals(const Program &Prog) {
    std::unordered_map<std::string, bool> Seen;
    for (const Define &D : Prog.Defines) {
      if (D.Name.empty())
        continue;
      if (!Seen.emplace(D.Name, true).second) {
        Diags.error(D.Loc, "duplicate definition of '" + D.Name + "'");
        continue;
      }
      if (D.Annot) {
        Globals[D.Name] = D.Annot;
        continue;
      }
      if (D.Body->Kind == ExprKind::Lambda) {
        Globals[D.Name] = lambdaDeclaredType(*D.Body);
        continue;
      }
      // Value define without annotation: synthesized at its program point;
      // forward references are "undefined variable" errors.
    }
  }

  /// The committed type of a recursive lambda: annotated parameter types
  /// (Dyn when omitted) and the annotated return type (Dyn when omitted).
  const Type *lambdaDeclaredType(const Expr &Lambda) {
    std::vector<const Type *> Params;
    for (const Param &P : Lambda.Params)
      Params.push_back(P.Annot ? P.Annot : Ctx.dyn());
    const Type *Ret = Lambda.ReturnAnnot ? Lambda.ReturnAnnot : Ctx.dyn();
    return Ctx.function(std::move(Params), Ret);
  }

  //===--------------------------------------------------------------------===//
  // Node construction
  //===--------------------------------------------------------------------===//

  NodePtr make(NodeKind Kind, const Type *Ty, SourceLoc Loc) {
    auto N = std::make_unique<Node>();
    N->Kind = Kind;
    N->Ty = Ty;
    N->Loc = Loc;
    return N;
  }

  std::string blameLabel(SourceLoc Loc) { return Loc.str(); }

  /// Inserts a cast from \p N's type to \p Target when needed. Reports a
  /// static error when the types are inconsistent.
  NodePtr coerceTo(NodePtr N, const Type *Target, SourceLoc Loc) {
    if (!N)
      return nullptr;
    if (N->Ty == Target)
      return N;
    if (!consistent(Ctx, N->Ty, Target)) {
      Diags.error(Loc, "cannot cast " + N->Ty->str() + " to " + Target->str());
      return nullptr;
    }
    NodePtr CastNode = make(NodeKind::Cast, Target, Loc);
    CastNode->SrcTy = N->Ty;
    CastNode->BlameLabel = blameLabel(Loc);
    CastNode->Subs.push_back(std::move(N));
    return CastNode;
  }

  NodePtr error(SourceLoc Loc, std::string Message) {
    Diags.error(Loc, std::move(Message));
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Checking
  //===--------------------------------------------------------------------===//

  NodePtr check(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::LitUnit:
      return make(NodeKind::LitUnit, Ctx.unit(), E.Loc);
    case ExprKind::LitBool: {
      NodePtr N = make(NodeKind::LitBool, Ctx.boolean(), E.Loc);
      N->BoolVal = E.BoolVal;
      return N;
    }
    case ExprKind::LitInt: {
      NodePtr N = make(NodeKind::LitInt, Ctx.integer(), E.Loc);
      N->IntVal = E.IntVal;
      return N;
    }
    case ExprKind::LitFloat: {
      NodePtr N = make(NodeKind::LitFloat, Ctx.floating(), E.Loc);
      N->FloatVal = E.FloatVal;
      return N;
    }
    case ExprKind::LitChar: {
      NodePtr N = make(NodeKind::LitChar, Ctx.character(), E.Loc);
      N->CharVal = E.CharVal;
      return N;
    }
    case ExprKind::Var:
      return checkVar(E);
    case ExprKind::If:
      return checkIf(E);
    case ExprKind::Lambda:
      return checkLambda(E, nullptr);
    case ExprKind::App:
      return checkApp(E);
    case ExprKind::PrimApp:
      return checkPrimApp(E);
    case ExprKind::Let:
      return checkLet(E);
    case ExprKind::Letrec:
      return checkLetrec(E);
    case ExprKind::Begin:
      return checkBegin(E);
    case ExprKind::Repeat:
      return checkRepeat(E);
    case ExprKind::Time: {
      NodePtr Body = check(*E.SubExprs[0]);
      if (!Body)
        return nullptr;
      NodePtr N = make(NodeKind::Time, Body->Ty, E.Loc);
      N->Subs.push_back(std::move(Body));
      return N;
    }
    case ExprKind::Tuple:
      return checkTuple(E);
    case ExprKind::TupleProj:
      return checkTupleProj(E);
    case ExprKind::BoxE: {
      NodePtr Init = check(*E.SubExprs[0]);
      if (!Init)
        return nullptr;
      NodePtr N = make(NodeKind::BoxAlloc, Ctx.box(Init->Ty), E.Loc);
      N->Subs.push_back(std::move(Init));
      return N;
    }
    case ExprKind::Unbox:
      return checkUnbox(E);
    case ExprKind::BoxSet:
      return checkBoxSet(E);
    case ExprKind::MakeVect:
      return checkMakeVect(E);
    case ExprKind::VectRef:
      return checkVectRef(E);
    case ExprKind::VectSet:
      return checkVectSet(E);
    case ExprKind::VectLen:
      return checkVectLen(E);
    case ExprKind::Ascribe: {
      NodePtr Body = check(*E.SubExprs[0]);
      if (!Body)
        return nullptr;
      return coerceTo(std::move(Body), E.Annot, E.Loc);
    }
    }
    return nullptr;
  }

  NodePtr checkVar(const Expr &E) {
    if (const Type *T = lookupLocal(E.Name)) {
      NodePtr N = make(NodeKind::LocalRef, T, E.Loc);
      N->Name = E.Name;
      return N;
    }
    auto It = Globals.find(E.Name);
    if (It != Globals.end()) {
      NodePtr N = make(NodeKind::GlobalRef, It->second, E.Loc);
      N->Name = E.Name;
      return N;
    }
    return error(E.Loc, "undefined variable '" + E.Name + "'");
  }

  NodePtr checkIf(const Expr &E) {
    NodePtr Cond = check(*E.SubExprs[0]);
    if (!Cond)
      return nullptr;
    Cond = coerceTo(std::move(Cond), Ctx.boolean(), E.SubExprs[0]->Loc);
    if (!Cond)
      return nullptr;
    NodePtr Then = check(*E.SubExprs[1]);
    NodePtr Else = check(*E.SubExprs[2]);
    if (!Then || !Else)
      return nullptr;
    const Type *Joined = meet(Ctx, Then->Ty, Else->Ty);
    if (!Joined)
      return error(E.Loc, "if branches have inconsistent types " +
                              Then->Ty->str() + " and " + Else->Ty->str());
    Then = coerceTo(std::move(Then), Joined, E.SubExprs[1]->Loc);
    Else = coerceTo(std::move(Else), Joined, E.SubExprs[2]->Loc);
    if (!Then || !Else)
      return nullptr;
    NodePtr N = make(NodeKind::If, Joined, E.Loc);
    N->Subs.push_back(std::move(Cond));
    N->Subs.push_back(std::move(Then));
    N->Subs.push_back(std::move(Else));
    return N;
  }

  /// Checks a lambda. When \p Committed is a function type, the lambda is
  /// being checked against a recursive declaration: parameters take the
  /// committed types and the body is cast to the committed return type.
  NodePtr checkLambda(const Expr &E, const Type *Committed) {
    std::vector<const Type *> ParamTypes;
    for (const Param &P : E.Params)
      ParamTypes.push_back(P.Annot ? P.Annot : Ctx.dyn());

    ScopeGuard Guard(*this);
    std::vector<std::string> Names;
    for (size_t I = 0; I != E.Params.size(); ++I) {
      bind(E.Params[I].Name, ParamTypes[I]);
      Names.push_back(E.Params[I].Name);
    }
    NodePtr Body = check(*E.SubExprs[0]);
    if (!Body)
      return nullptr;
    const Type *Ret;
    if (E.ReturnAnnot)
      Ret = E.ReturnAnnot;
    else if (Committed)
      Ret = Committed->result();
    else
      Ret = Body->Ty;
    Body = coerceTo(std::move(Body), Ret, E.Loc);
    if (!Body)
      return nullptr;
    const Type *FnTy = Ctx.function(std::move(ParamTypes), Ret);
    NodePtr N = make(NodeKind::Lambda, FnTy, E.Loc);
    N->ParamNames = std::move(Names);
    N->Subs.push_back(std::move(Body));
    return N;
  }

  NodePtr checkApp(const Expr &E) {
    NodePtr Callee = check(*E.SubExprs[0]);
    if (!Callee)
      return nullptr;
    size_t NumArgs = E.SubExprs.size() - 1;

    if (Callee->Ty->isDyn()) {
      // The Section 3 optimization: apply a Dyn value directly, checking
      // and converting at the call site without allocating a proxy.
      NodePtr N = make(NodeKind::AppDyn, Ctx.dyn(), E.Loc);
      N->BlameLabel = blameLabel(E.Loc);
      N->Subs.push_back(std::move(Callee));
      for (size_t I = 1; I != E.SubExprs.size(); ++I) {
        NodePtr Arg = check(*E.SubExprs[I]);
        if (!Arg)
          return nullptr;
        Arg = coerceTo(std::move(Arg), Ctx.dyn(), E.SubExprs[I]->Loc);
        if (!Arg)
          return nullptr;
        N->Subs.push_back(std::move(Arg));
      }
      return N;
    }

    if (!Callee->Ty->isFunction())
      return error(E.Loc,
                   "cannot apply a value of type " + Callee->Ty->str());
    if (Callee->Ty->arity() != NumArgs)
      return error(E.Loc, "arity mismatch: function expects " +
                              std::to_string(Callee->Ty->arity()) +
                              " arguments, got " + std::to_string(NumArgs));
    NodePtr N = make(NodeKind::App, Callee->Ty->result(), E.Loc);
    const Type *FnTy = Callee->Ty;
    N->Subs.push_back(std::move(Callee));
    for (size_t I = 0; I != NumArgs; ++I) {
      NodePtr Arg = check(*E.SubExprs[I + 1]);
      if (!Arg)
        return nullptr;
      Arg = coerceTo(std::move(Arg), FnTy->param(I), E.SubExprs[I + 1]->Loc);
      if (!Arg)
        return nullptr;
      N->Subs.push_back(std::move(Arg));
    }
    return N;
  }

  NodePtr checkPrimApp(const Expr &E) {
    std::vector<const Type *> Params = primParams(Ctx, E.Prim);
    assert(Params.size() == E.SubExprs.size() && "parser enforced arity");
    NodePtr N = make(NodeKind::PrimApp, primResult(Ctx, E.Prim), E.Loc);
    N->Prim = E.Prim;
    for (size_t I = 0; I != E.SubExprs.size(); ++I) {
      NodePtr Arg = check(*E.SubExprs[I]);
      if (!Arg)
        return nullptr;
      Arg = coerceTo(std::move(Arg), Params[I], E.SubExprs[I]->Loc);
      if (!Arg)
        return nullptr;
      N->Subs.push_back(std::move(Arg));
    }
    return N;
  }

  NodePtr checkLet(const Expr &E) {
    std::vector<NodePtr> Inits;
    std::vector<const Type *> Types;
    for (const Binding &B : E.Bindings) {
      NodePtr Init = check(*B.Init);
      if (!Init)
        return nullptr;
      const Type *T = B.Annot ? B.Annot : Init->Ty;
      Init = coerceTo(std::move(Init), T, B.Loc);
      if (!Init)
        return nullptr;
      Inits.push_back(std::move(Init));
      Types.push_back(T);
    }
    ScopeGuard Guard(*this);
    NodePtr N = make(NodeKind::Let, nullptr, E.Loc);
    for (size_t I = 0; I != E.Bindings.size(); ++I) {
      bind(E.Bindings[I].Name, Types[I]);
      N->BindingNames.push_back(E.Bindings[I].Name);
      N->Subs.push_back(std::move(Inits[I]));
    }
    NodePtr Body = check(*E.SubExprs[0]);
    if (!Body)
      return nullptr;
    N->Ty = Body->Ty;
    N->Subs.push_back(std::move(Body));
    return N;
  }

  NodePtr checkLetrec(const Expr &E) {
    ScopeGuard Guard(*this);
    std::vector<const Type *> Types;
    for (const Binding &B : E.Bindings) {
      if (B.Init->Kind != ExprKind::Lambda) {
        return error(B.Loc, "letrec bindings must be lambda expressions");
      }
      // The annotation need not be a function type: a gradual annotation
      // like Dyn is satisfied by casting the lambda (the recursive uses
      // then go through Dyn application).
      const Type *Declared =
          B.Annot ? B.Annot : lambdaDeclaredType(*B.Init);
      if (!consistent(Ctx, Declared, lambdaDeclaredType(*B.Init)))
        return error(B.Loc, "letrec annotation is inconsistent with the "
                            "bound lambda");
      Types.push_back(Declared);
      bind(B.Name, Declared);
    }
    NodePtr N = make(NodeKind::Letrec, nullptr, E.Loc);
    for (size_t I = 0; I != E.Bindings.size(); ++I) {
      const Binding &B = E.Bindings[I];
      NodePtr Init =
          checkLambda(*B.Init, B.Annot ? nullptr : Types[I]);
      if (!Init)
        return nullptr;
      Init = coerceTo(std::move(Init), Types[I], B.Loc);
      if (!Init)
        return nullptr;
      N->BindingNames.push_back(B.Name);
      N->Subs.push_back(std::move(Init));
    }
    NodePtr Body = check(*E.SubExprs[0]);
    if (!Body)
      return nullptr;
    N->Ty = Body->Ty;
    N->Subs.push_back(std::move(Body));
    return N;
  }

  NodePtr checkBegin(const Expr &E) {
    NodePtr N = make(NodeKind::Begin, nullptr, E.Loc);
    for (const ExprPtr &Sub : E.SubExprs) {
      NodePtr Checked = check(*Sub);
      if (!Checked)
        return nullptr;
      N->Subs.push_back(std::move(Checked));
    }
    N->Ty = N->Subs.back()->Ty;
    return N;
  }

  NodePtr checkRepeat(const Expr &E) {
    NodePtr Lo = check(*E.SubExprs[0]);
    NodePtr Hi = check(*E.SubExprs[1]);
    if (!Lo || !Hi)
      return nullptr;
    Lo = coerceTo(std::move(Lo), Ctx.integer(), E.SubExprs[0]->Loc);
    Hi = coerceTo(std::move(Hi), Ctx.integer(), E.SubExprs[1]->Loc);
    if (!Lo || !Hi)
      return nullptr;

    NodePtr N = make(NodeKind::Repeat, nullptr, E.Loc);
    N->Name = E.Name;
    N->HasAcc = E.HasAcc;
    N->AccName = E.AccName;
    N->Subs.push_back(std::move(Lo));
    N->Subs.push_back(std::move(Hi));

    const Type *AccTy = Ctx.unit();
    size_t BodyIndex = 2;
    if (E.HasAcc) {
      NodePtr AccInit = check(*E.SubExprs[2]);
      if (!AccInit)
        return nullptr;
      AccTy = E.AccAnnot ? E.AccAnnot : AccInit->Ty;
      AccInit = coerceTo(std::move(AccInit), AccTy, E.SubExprs[2]->Loc);
      if (!AccInit)
        return nullptr;
      N->Subs.push_back(std::move(AccInit));
      BodyIndex = 3;
    }

    ScopeGuard Guard(*this);
    bind(E.Name, Ctx.integer());
    if (E.HasAcc)
      bind(E.AccName, AccTy);
    NodePtr Body = check(*E.SubExprs[BodyIndex]);
    if (!Body)
      return nullptr;
    if (E.HasAcc) {
      Body = coerceTo(std::move(Body), AccTy, E.SubExprs[BodyIndex]->Loc);
      if (!Body)
        return nullptr;
    }
    N->Ty = AccTy;
    N->Subs.push_back(std::move(Body));
    return N;
  }

  NodePtr checkTuple(const Expr &E) {
    NodePtr N = make(NodeKind::Tuple, nullptr, E.Loc);
    std::vector<const Type *> Types;
    for (const ExprPtr &Sub : E.SubExprs) {
      NodePtr Checked = check(*Sub);
      if (!Checked)
        return nullptr;
      Types.push_back(Checked->Ty);
      N->Subs.push_back(std::move(Checked));
    }
    N->Ty = Ctx.tuple(std::move(Types));
    return N;
  }

  NodePtr checkTupleProj(const Expr &E) {
    NodePtr Target = check(*E.SubExprs[0]);
    if (!Target)
      return nullptr;
    if (Target->Ty->isDyn()) {
      NodePtr N = make(NodeKind::TupleProjDyn, Ctx.dyn(), E.Loc);
      N->Index = E.Index;
      N->BlameLabel = blameLabel(E.Loc);
      N->Subs.push_back(std::move(Target));
      return N;
    }
    if (!Target->Ty->isTuple()) {
      // A recursive type may hide a tuple one unfolding away.
      if (Target->Ty->isRec()) {
        const Type *Unfolded = Ctx.unfold(Target->Ty);
        Target = coerceTo(std::move(Target), Unfolded, E.Loc);
        if (!Target)
          return nullptr;
        if (Target->Ty->isTuple())
          return finishTupleProj(std::move(Target), E);
      }
      return error(E.Loc, "tuple-proj of non-tuple type");
    }
    return finishTupleProj(std::move(Target), E);
  }

  NodePtr finishTupleProj(NodePtr Target, const Expr &E) {
    if (E.Index >= Target->Ty->tupleSize())
      return error(E.Loc, "tuple index " + std::to_string(E.Index) +
                              " out of bounds for " + Target->Ty->str());
    NodePtr N =
        make(NodeKind::TupleProj, Target->Ty->element(E.Index), E.Loc);
    N->Index = E.Index;
    N->Subs.push_back(std::move(Target));
    return N;
  }

  /// Coerces a Rec-typed node one unfolding when the unfolded type has the
  /// wanted shape; used by the elimination forms.
  NodePtr maybeUnfold(NodePtr N, SourceLoc Loc) {
    if (N && N->Ty->isRec())
      return coerceTo(std::move(N), Ctx.unfold(N->Ty), Loc);
    return N;
  }

  NodePtr checkUnbox(const Expr &E) {
    NodePtr Target = maybeUnfold(check(*E.SubExprs[0]), E.Loc);
    if (!Target)
      return nullptr;
    if (Target->Ty->isDyn()) {
      NodePtr N = make(NodeKind::UnboxDyn, Ctx.dyn(), E.Loc);
      N->BlameLabel = blameLabel(E.Loc);
      N->Subs.push_back(std::move(Target));
      return N;
    }
    if (!Target->Ty->isBox())
      return error(E.Loc, "unbox of non-box type " + Target->Ty->str());
    NodePtr N = make(NodeKind::Unbox, Target->Ty->inner(), E.Loc);
    N->Subs.push_back(std::move(Target));
    return N;
  }

  NodePtr checkBoxSet(const Expr &E) {
    NodePtr Target = maybeUnfold(check(*E.SubExprs[0]), E.Loc);
    NodePtr Value = check(*E.SubExprs[1]);
    if (!Target || !Value)
      return nullptr;
    if (Target->Ty->isDyn()) {
      Value = coerceTo(std::move(Value), Ctx.dyn(), E.SubExprs[1]->Loc);
      if (!Value)
        return nullptr;
      NodePtr N = make(NodeKind::BoxSetDyn, Ctx.unit(), E.Loc);
      N->BlameLabel = blameLabel(E.Loc);
      N->Subs.push_back(std::move(Target));
      N->Subs.push_back(std::move(Value));
      return N;
    }
    if (!Target->Ty->isBox())
      return error(E.Loc, "box-set! of non-box type " + Target->Ty->str());
    Value = coerceTo(std::move(Value), Target->Ty->inner(),
                     E.SubExprs[1]->Loc);
    if (!Value)
      return nullptr;
    NodePtr N = make(NodeKind::BoxSet, Ctx.unit(), E.Loc);
    N->Subs.push_back(std::move(Target));
    N->Subs.push_back(std::move(Value));
    return N;
  }

  NodePtr checkMakeVect(const Expr &E) {
    NodePtr Size = check(*E.SubExprs[0]);
    NodePtr Init = check(*E.SubExprs[1]);
    if (!Size || !Init)
      return nullptr;
    Size = coerceTo(std::move(Size), Ctx.integer(), E.SubExprs[0]->Loc);
    if (!Size)
      return nullptr;
    NodePtr N = make(NodeKind::MakeVect, Ctx.vect(Init->Ty), E.Loc);
    N->Subs.push_back(std::move(Size));
    N->Subs.push_back(std::move(Init));
    return N;
  }

  NodePtr checkVectRef(const Expr &E) {
    NodePtr Target = maybeUnfold(check(*E.SubExprs[0]), E.Loc);
    NodePtr Index = check(*E.SubExprs[1]);
    if (!Target || !Index)
      return nullptr;
    Index = coerceTo(std::move(Index), Ctx.integer(), E.SubExprs[1]->Loc);
    if (!Index)
      return nullptr;
    if (Target->Ty->isDyn()) {
      NodePtr N = make(NodeKind::VectRefDyn, Ctx.dyn(), E.Loc);
      N->BlameLabel = blameLabel(E.Loc);
      N->Subs.push_back(std::move(Target));
      N->Subs.push_back(std::move(Index));
      return N;
    }
    if (!Target->Ty->isVect())
      return error(E.Loc, "vector-ref of non-vector type " +
                              Target->Ty->str());
    NodePtr N = make(NodeKind::VectRef, Target->Ty->inner(), E.Loc);
    N->Subs.push_back(std::move(Target));
    N->Subs.push_back(std::move(Index));
    return N;
  }

  NodePtr checkVectSet(const Expr &E) {
    NodePtr Target = maybeUnfold(check(*E.SubExprs[0]), E.Loc);
    NodePtr Index = check(*E.SubExprs[1]);
    NodePtr Value = check(*E.SubExprs[2]);
    if (!Target || !Index || !Value)
      return nullptr;
    Index = coerceTo(std::move(Index), Ctx.integer(), E.SubExprs[1]->Loc);
    if (!Index)
      return nullptr;
    if (Target->Ty->isDyn()) {
      Value = coerceTo(std::move(Value), Ctx.dyn(), E.SubExprs[2]->Loc);
      if (!Value)
        return nullptr;
      NodePtr N = make(NodeKind::VectSetDyn, Ctx.unit(), E.Loc);
      N->BlameLabel = blameLabel(E.Loc);
      N->Subs.push_back(std::move(Target));
      N->Subs.push_back(std::move(Index));
      N->Subs.push_back(std::move(Value));
      return N;
    }
    if (!Target->Ty->isVect())
      return error(E.Loc, "vector-set! of non-vector type " +
                              Target->Ty->str());
    Value = coerceTo(std::move(Value), Target->Ty->inner(),
                     E.SubExprs[2]->Loc);
    if (!Value)
      return nullptr;
    NodePtr N = make(NodeKind::VectSet, Ctx.unit(), E.Loc);
    N->Subs.push_back(std::move(Target));
    N->Subs.push_back(std::move(Index));
    N->Subs.push_back(std::move(Value));
    return N;
  }

  NodePtr checkVectLen(const Expr &E) {
    NodePtr Target = maybeUnfold(check(*E.SubExprs[0]), E.Loc);
    if (!Target)
      return nullptr;
    if (Target->Ty->isDyn()) {
      NodePtr N = make(NodeKind::VectLenDyn, Ctx.integer(), E.Loc);
      N->BlameLabel = blameLabel(E.Loc);
      N->Subs.push_back(std::move(Target));
      return N;
    }
    if (!Target->Ty->isVect())
      return error(E.Loc, "vector-length of non-vector type " +
                              Target->Ty->str());
    NodePtr N = make(NodeKind::VectLen, Ctx.integer(), E.Loc);
    N->Subs.push_back(std::move(Target));
    return N;
  }
};

} // namespace

std::optional<CoreProgram> grift::typeCheck(TypeContext &Ctx,
                                            const Program &Prog,
                                            DiagnosticEngine &Diags) {
  return TypeChecker(Ctx, Diags).run(Prog);
}
