//===----------------------------------------------------------------------===//
///
/// \file
/// The gradual type checker and cast-insertion pass (paper Section 3 and
/// Appendix B). Checking follows the standard GTLC rules: implicit casts
/// are inserted wherever two *consistent* types meet; inconsistent types
/// are static errors. The output is the explicit-cast core IR.
///
/// Blame labels are derived from source locations, so a runtime cast
/// failure points at the responsible cast site.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_FRONTEND_TYPECHECKER_H
#define GRIFT_FRONTEND_TYPECHECKER_H

#include "ast/Ast.h"
#include "frontend/CoreIR.h"
#include "support/Diagnostics.h"
#include "types/TypeContext.h"

#include <optional>

namespace grift {

/// Type checks \p Prog and inserts explicit casts. Returns nullopt (with
/// diagnostics in \p Diags) when the program has a static type error.
std::optional<core::CoreProgram> typeCheck(TypeContext &Ctx,
                                           const Program &Prog,
                                           DiagnosticEngine &Diags);

} // namespace grift

#endif // GRIFT_FRONTEND_TYPECHECKER_H
