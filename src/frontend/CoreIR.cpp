#include "frontend/CoreIR.h"

#include "support/StringUtil.h"

using namespace grift;
using namespace grift::core;

namespace {

void printNode(const Node &N, std::string &Out);

void printSubs(const Node &N, std::string &Out, size_t Start = 0) {
  for (size_t I = Start; I != N.Subs.size(); ++I) {
    Out += ' ';
    printNode(*N.Subs[I], Out);
  }
}

void printHead(const char *Head, const Node &N, std::string &Out) {
  Out += '(';
  Out += Head;
  printSubs(N, Out);
  Out += ')';
}

void printNode(const Node &N, std::string &Out) {
  switch (N.Kind) {
  case NodeKind::LitUnit:
    Out += "()";
    return;
  case NodeKind::LitBool:
    Out += N.BoolVal ? "#t" : "#f";
    return;
  case NodeKind::LitInt:
    Out += std::to_string(N.IntVal);
    return;
  case NodeKind::LitFloat:
    Out += formatDouble(N.FloatVal);
    return;
  case NodeKind::LitChar:
    Out += "#\\";
    Out += N.CharVal;
    return;
  case NodeKind::LocalRef:
    Out += N.Name;
    return;
  case NodeKind::GlobalRef:
    Out += N.Name;
    return;
  case NodeKind::If:
    printHead("if", N, Out);
    return;
  case NodeKind::Lambda: {
    Out += "(lambda (";
    for (size_t I = 0; I != N.ParamNames.size(); ++I) {
      if (I != 0)
        Out += ' ';
      Out += N.ParamNames[I];
      Out += " : ";
      Out += N.Ty->param(I)->str();
    }
    Out += ") ";
    printNode(*N.Subs[0], Out);
    Out += ')';
    return;
  }
  case NodeKind::App:
    printHead("app", N, Out);
    return;
  case NodeKind::AppDyn:
    printHead("app-dyn", N, Out);
    return;
  case NodeKind::PrimApp: {
    Out += '(';
    Out += primName(N.Prim);
    printSubs(N, Out);
    Out += ')';
    return;
  }
  case NodeKind::Let:
  case NodeKind::Letrec: {
    Out += N.Kind == NodeKind::Let ? "(let (" : "(letrec (";
    for (size_t I = 0; I != N.BindingNames.size(); ++I) {
      if (I != 0)
        Out += ' ';
      Out += '[';
      Out += N.BindingNames[I];
      Out += ' ';
      printNode(*N.Subs[I], Out);
      Out += ']';
    }
    Out += ") ";
    printNode(*N.Subs.back(), Out);
    Out += ')';
    return;
  }
  case NodeKind::Begin:
    printHead("begin", N, Out);
    return;
  case NodeKind::Repeat: {
    Out += "(repeat (";
    Out += N.Name;
    Out += ' ';
    printNode(*N.Subs[0], Out);
    Out += ' ';
    printNode(*N.Subs[1], Out);
    Out += ')';
    if (N.HasAcc) {
      Out += " (";
      Out += N.AccName;
      Out += ' ';
      printNode(*N.Subs[2], Out);
      Out += ')';
    }
    Out += ' ';
    printNode(*N.Subs[N.HasAcc ? 3 : 2], Out);
    Out += ')';
    return;
  }
  case NodeKind::Time:
    printHead("time", N, Out);
    return;
  case NodeKind::Tuple:
    printHead("tuple", N, Out);
    return;
  case NodeKind::TupleProj:
  case NodeKind::TupleProjDyn: {
    Out += N.Kind == NodeKind::TupleProj ? "(tuple-proj " : "(tuple-proj-dyn ";
    printNode(*N.Subs[0], Out);
    Out += ' ';
    Out += std::to_string(N.Index);
    Out += ')';
    return;
  }
  case NodeKind::BoxAlloc:
    printHead("box", N, Out);
    return;
  case NodeKind::Unbox:
    printHead("unbox", N, Out);
    return;
  case NodeKind::UnboxDyn:
    printHead("unbox-dyn", N, Out);
    return;
  case NodeKind::BoxSet:
    printHead("box-set!", N, Out);
    return;
  case NodeKind::BoxSetDyn:
    printHead("box-set-dyn!", N, Out);
    return;
  case NodeKind::MakeVect:
    printHead("make-vector", N, Out);
    return;
  case NodeKind::VectRef:
    printHead("vector-ref", N, Out);
    return;
  case NodeKind::VectRefDyn:
    printHead("vector-ref-dyn", N, Out);
    return;
  case NodeKind::VectSet:
    printHead("vector-set!", N, Out);
    return;
  case NodeKind::VectSetDyn:
    printHead("vector-set-dyn!", N, Out);
    return;
  case NodeKind::VectLen:
    printHead("vector-length", N, Out);
    return;
  case NodeKind::VectLenDyn:
    printHead("vector-length-dyn", N, Out);
    return;
  case NodeKind::Cast: {
    Out += "(cast ";
    printNode(*N.Subs[0], Out);
    Out += ' ';
    Out += N.SrcTy->str();
    Out += ' ';
    Out += N.Ty->str();
    Out += " \"";
    Out += N.BlameLabel;
    Out += "\")";
    return;
  }
  }
}

unsigned countCastsIn(const Node &N) {
  unsigned Count = N.Kind == NodeKind::Cast ? 1 : 0;
  for (const NodePtr &Sub : N.Subs)
    Count += countCastsIn(*Sub);
  return Count;
}

} // namespace

std::string Node::str() const {
  std::string Out;
  printNode(*this, Out);
  return Out;
}

std::string CoreProgram::str() const {
  std::string Out;
  for (const Def &D : Defs) {
    if (!D.Name.empty()) {
      Out += "(define ";
      Out += D.Name;
      Out += " : ";
      Out += D.Ty->str();
      Out += ' ';
      Out += D.Body->str();
      Out += ")\n";
    } else {
      Out += D.Body->str();
      Out += '\n';
    }
  }
  return Out;
}

unsigned grift::core::countCasts(const CoreProgram &Prog) {
  unsigned Count = 0;
  for (const Def &D : Prog.Defs)
    Count += countCastsIn(*D.Body);
  return Count;
}
