//===----------------------------------------------------------------------===//
///
/// \file
/// Parses GTLC+ surface syntax (paper Figure 5) from s-expressions into
/// the AST. Also implements a few standard syntactic sugars found in the
/// Grift benchmarks: `and`, `or`, `when`, `unless`, `cond`.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_FRONTEND_PARSER_H
#define GRIFT_FRONTEND_PARSER_H

#include "ast/Ast.h"
#include "support/Diagnostics.h"
#include "types/TypeContext.h"

#include <optional>
#include <string_view>

namespace grift {

/// Parses a whole program from source text. Returns nullopt (with
/// diagnostics) on any syntax error.
std::optional<Program> parseProgram(TypeContext &Ctx, std::string_view Source,
                                    DiagnosticEngine &Diags);

/// Parses a single expression from source text (REPL, tests).
ExprPtr parseExpr(TypeContext &Ctx, std::string_view Source,
                  DiagnosticEngine &Diags);

} // namespace grift

#endif // GRIFT_FRONTEND_PARSER_H
