//===----------------------------------------------------------------------===//
///
/// \file
/// The explicit-cast intermediate language that cast insertion produces
/// (paper Section 3, Appendix B). Every node carries its static type.
/// Casts appear as explicit `Cast` nodes with source type, target type and
/// a blame label; how a cast is executed (coercions vs. type-based) is
/// decided later by the VM compiler.
///
/// The *Dyn node kinds implement the paper's Section 3 optimization: an
/// elimination form applied to a Dyn value is specialized so that "code
/// that does what a proxy would do" runs without allocating a proxy.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_FRONTEND_COREIR_H
#define GRIFT_FRONTEND_COREIR_H

#include "ast/Prim.h"
#include "support/SourceLoc.h"
#include "types/Type.h"

#include <memory>
#include <string>
#include <vector>

namespace grift::core {

struct Node;
using NodePtr = std::unique_ptr<Node>;

/// Core node constructors. `Sub` names Node::Subs.
enum class NodeKind : uint8_t {
  LitUnit,
  LitBool,
  LitInt,
  LitFloat,
  LitChar,
  LocalRef,     ///< Name resolves lexically
  GlobalRef,    ///< Name resolves in the program's global table
  If,           ///< Sub = [cond, then, else]
  Lambda,       ///< ParamNames/Ty (function type); Sub = [body]
  App,          ///< callee statically a function; Sub = [callee, args...]
  AppDyn,       ///< callee statically Dyn; Sub = [callee, args...]
  PrimApp,      ///< Prim; Sub = args
  Let,          ///< BindingNames; Sub = [inits..., body]
  Letrec,       ///< BindingNames; Sub = [lambda inits..., body]
  Begin,        ///< Sub = exprs
  Repeat,       ///< Name, AccName/HasAcc; Sub = [lo, hi, (accInit)?, body]
  Time,         ///< Sub = [body]
  Tuple,        ///< Sub = elements
  TupleProj,    ///< Index; Sub = [tuple]
  TupleProjDyn, ///< Index; Sub = [dyn]
  BoxAlloc,     ///< Sub = [init]
  Unbox,        ///< Sub = [box]
  UnboxDyn,     ///< Sub = [dyn]
  BoxSet,       ///< Sub = [box, value]
  BoxSetDyn,    ///< Sub = [dyn, value]
  MakeVect,     ///< Sub = [size, init]
  VectRef,      ///< Sub = [vect, index]
  VectRefDyn,   ///< Sub = [dyn, index]
  VectSet,      ///< Sub = [vect, index, value]
  VectSetDyn,   ///< Sub = [dyn, index, value]
  VectLen,      ///< Sub = [vect]
  VectLenDyn,   ///< Sub = [dyn]
  Cast,         ///< SrcTy => Ty with BlameLabel; Sub = [body]
};

/// One core IR node. Plain data; built only by the type checker.
struct Node {
  NodeKind Kind = NodeKind::LitUnit;
  SourceLoc Loc;
  /// Static type of this expression.
  const Type *Ty = nullptr;

  int64_t IntVal = 0;
  double FloatVal = 0;
  bool BoolVal = false;
  char CharVal = 0;

  std::string Name;                      // LocalRef/GlobalRef/Repeat index
  grift::PrimOp Prim{};                  // PrimApp
  uint32_t Index = 0;                    // TupleProj*
  bool HasAcc = false;                   // Repeat
  std::string AccName;                   // Repeat
  std::vector<std::string> ParamNames;   // Lambda
  std::vector<std::string> BindingNames; // Let/Letrec

  const Type *SrcTy = nullptr; // Cast source
  std::string BlameLabel;      // Cast blame label

  std::vector<NodePtr> Subs;

  /// Renders a debug S-expression of the core IR (with explicit casts).
  std::string str() const;
};

/// A checked top-level definition.
struct Def {
  std::string Name; // empty for expression statements
  const Type *Ty = nullptr;
  NodePtr Body;
};

/// A checked program.
struct CoreProgram {
  std::vector<Def> Defs;
  std::string str() const;
};

/// Counts Cast nodes in a program (tests, experiment reporting).
unsigned countCasts(const CoreProgram &Prog);

} // namespace grift::core

#endif // GRIFT_FRONTEND_COREIR_H
