#include "frontend/Parser.h"

#include "runtime/Value.h"
#include "sexp/Reader.h"
#include "types/TypeParser.h"

#include <cassert>

using namespace grift;

namespace {

/// Names that cannot be used as variables because they head special forms.
bool isKeyword(std::string_view Name) {
  static const char *Keywords[] = {
      "define", "lambda",        "let",        "letrec",      "if",
      "begin",  "repeat",        "time",       "tuple",       "tuple-proj",
      "box",    "unbox",         "box-set!",   "make-vector", "vector-ref",
      "vector-set!", "vector-length", "ann",   "and",         "or",
      "when",   "unless",        "cond",       "else",        ":"};
  for (const char *Keyword : Keywords)
    if (Name == Keyword)
      return true;
  return false;
}

class Parser {
public:
  Parser(TypeContext &Ctx, DiagnosticEngine &Diags) : Ctx(Ctx), Diags(Diags) {}

  std::optional<Program> parseProgram(const std::vector<Sexp> &Data) {
    Program Prog;
    for (const Sexp &Datum : Data) {
      if (Datum.isList() && Datum.size() >= 1 && Datum[0].isSymbol("define")) {
        std::optional<Define> D = parseDefine(Datum);
        if (!D)
          return std::nullopt;
        Prog.Defines.push_back(std::move(*D));
        continue;
      }
      ExprPtr E = parse(Datum);
      if (!E)
        return std::nullopt;
      Define Stmt;
      Stmt.Body = std::move(E);
      Stmt.Loc = Datum.loc();
      Prog.Defines.push_back(std::move(Stmt));
    }
    return Prog;
  }

  ExprPtr parse(const Sexp &Datum) {
    switch (Datum.kind()) {
    case Sexp::Kind::Int:
      // Fixnums are 48-bit payloads under NaN-boxing; reject literals the
      // runtime cannot represent rather than silently truncating them.
      if (Datum.intValue() > Value::FixnumMax ||
          Datum.intValue() < Value::FixnumMin)
        return error(Datum.loc(),
                     "integer literal " + std::to_string(Datum.intValue()) +
                         " is outside the fixnum range [-2^47, 2^47)");
      return makeLitInt(Datum.intValue(), Datum.loc());
    case Sexp::Kind::Float:
      return makeLitFloat(Datum.floatValue(), Datum.loc());
    case Sexp::Kind::Bool:
      return makeLitBool(Datum.boolValue(), Datum.loc());
    case Sexp::Kind::Char:
      return makeLitChar(Datum.charValue(), Datum.loc());
    case Sexp::Kind::String:
      return error(Datum.loc(), "string literals are not GTLC+ expressions");
    case Sexp::Kind::Symbol: {
      const std::string &Name = Datum.symbol();
      if (isKeyword(Name) || lookupPrim(Name))
        return error(Datum.loc(), "'" + Name + "' used as a variable");
      return makeVar(Name, Datum.loc());
    }
    case Sexp::Kind::List:
      if (Datum.isEmptyList())
        return makeLitUnit(Datum.loc());
      return parseForm(Datum);
    }
    return nullptr;
  }

private:
  TypeContext &Ctx;
  DiagnosticEngine &Diags;

  ExprPtr error(SourceLoc Loc, std::string Message) {
    Diags.error(Loc, std::move(Message));
    return nullptr;
  }

  const Type *parseTypeAt(const Sexp &Datum) {
    return parseType(Ctx, Datum, Diags);
  }

  /// Parses `elems[I] == ':'` followed by a type; on success advances \p I
  /// past both and returns the type. Returns nullptr without error if no
  /// colon is present; sets \p Bad on malformed annotation.
  const Type *parseOptionalAnnot(const Sexp &List, size_t &I, bool &Bad) {
    const auto &Elements = List.elements();
    if (I >= Elements.size() || !Elements[I].isSymbol(":"))
      return nullptr;
    if (I + 1 >= Elements.size()) {
      Diags.error(List.loc(), "':' must be followed by a type");
      Bad = true;
      return nullptr;
    }
    const Type *T = parseTypeAt(Elements[I + 1]);
    if (!T) {
      Bad = true;
      return nullptr;
    }
    I += 2;
    return T;
  }

  std::optional<Param> parseParam(const Sexp &Datum) {
    if (Datum.isSymbol()) {
      if (isKeyword(Datum.symbol()))
        Diags.error(Datum.loc(), "keyword used as parameter name");
      return Param{Datum.symbol(), nullptr, Datum.loc()};
    }
    // [x : T]
    if (Datum.isList() && Datum.size() == 3 && Datum[0].isSymbol() &&
        Datum[1].isSymbol(":")) {
      const Type *T = parseTypeAt(Datum[2]);
      if (!T)
        return std::nullopt;
      return Param{Datum[0].symbol(), T, Datum.loc()};
    }
    Diags.error(Datum.loc(), "malformed parameter, expected x or [x : T]");
    return std::nullopt;
  }

  /// Parses a body sequence starting at \p Start; wraps multiple
  /// expressions in an implicit begin.
  ExprPtr parseBody(const Sexp &List, size_t Start) {
    const auto &Elements = List.elements();
    if (Start >= Elements.size())
      return error(List.loc(), "empty body");
    if (Start + 1 == Elements.size())
      return parse(Elements[Start]);
    std::vector<ExprPtr> Seq;
    for (size_t I = Start; I != Elements.size(); ++I) {
      ExprPtr E = parse(Elements[I]);
      if (!E)
        return nullptr;
      Seq.push_back(std::move(E));
    }
    return makeNode(ExprKind::Begin, std::move(Seq), List.loc());
  }

  std::optional<Define> parseDefine(const Sexp &Datum) {
    // (define x : T E) | (define x E) | (define (f P...) (: T)? E...)
    if (Datum.size() < 3) {
      Diags.error(Datum.loc(), "malformed define");
      return std::nullopt;
    }
    Define D;
    D.Loc = Datum.loc();
    if (Datum[1].isSymbol()) {
      D.Name = Datum[1].symbol();
      size_t I = 2;
      bool Bad = false;
      D.Annot = parseOptionalAnnot(Datum, I, Bad);
      if (Bad)
        return std::nullopt;
      if (I + 1 != Datum.size()) {
        Diags.error(Datum.loc(), "define takes exactly one body expression");
        return std::nullopt;
      }
      D.Body = parse(Datum[I]);
      if (!D.Body)
        return std::nullopt;
      return D;
    }
    if (!Datum[1].isList() || Datum[1].size() < 1 || !Datum[1][0].isSymbol()) {
      Diags.error(Datum.loc(), "malformed define header");
      return std::nullopt;
    }
    // Function form: desugar to a lambda.
    const Sexp &Header = Datum[1];
    D.Name = Header[0].symbol();
    auto Lambda = std::make_unique<Expr>();
    Lambda->Kind = ExprKind::Lambda;
    Lambda->Loc = Datum.loc();
    for (size_t I = 1; I != Header.size(); ++I) {
      std::optional<Param> P = parseParam(Header[I]);
      if (!P)
        return std::nullopt;
      Lambda->Params.push_back(std::move(*P));
    }
    size_t I = 2;
    bool Bad = false;
    Lambda->ReturnAnnot = parseOptionalAnnot(Datum, I, Bad);
    if (Bad)
      return std::nullopt;
    ExprPtr Body = parseBody(Datum, I);
    if (!Body)
      return std::nullopt;
    Lambda->SubExprs.push_back(std::move(Body));
    D.Body = std::move(Lambda);
    return D;
  }

  ExprPtr parseForm(const Sexp &Datum) {
    const Sexp &Head = Datum[0];
    if (!Head.isSymbol())
      return parseApp(Datum);
    const std::string &Name = Head.symbol();

    if (std::optional<PrimOp> Op = lookupPrim(Name))
      return parsePrim(Datum, *Op);
    if (Name == "if")
      return parseIf(Datum);
    if (Name == "lambda")
      return parseLambda(Datum);
    if (Name == "let" || Name == "letrec")
      return parseLet(Datum, Name == "letrec");
    if (Name == "begin")
      return parseBegin(Datum);
    if (Name == "repeat")
      return parseRepeat(Datum);
    if (Name == "time")
      return parseUnary(Datum, ExprKind::Time);
    if (Name == "tuple")
      return parseTuple(Datum);
    if (Name == "tuple-proj")
      return parseTupleProj(Datum);
    if (Name == "box")
      return parseUnary(Datum, ExprKind::BoxE);
    if (Name == "unbox")
      return parseUnary(Datum, ExprKind::Unbox);
    if (Name == "box-set!")
      return parseNary(Datum, ExprKind::BoxSet, 2);
    if (Name == "make-vector")
      return parseNary(Datum, ExprKind::MakeVect, 2);
    if (Name == "vector-ref")
      return parseNary(Datum, ExprKind::VectRef, 2);
    if (Name == "vector-set!")
      return parseNary(Datum, ExprKind::VectSet, 3);
    if (Name == "vector-length")
      return parseUnary(Datum, ExprKind::VectLen);
    if (Name == "ann")
      return parseAnn(Datum);
    if (Name == "and" || Name == "or")
      return parseAndOr(Datum, Name == "and");
    if (Name == "when" || Name == "unless")
      return parseWhen(Datum, Name == "unless");
    if (Name == "cond")
      return parseCond(Datum);
    if (Name == "define")
      return error(Datum.loc(), "define is only allowed at the top level");
    return parseApp(Datum);
  }

  ExprPtr parseApp(const Sexp &Datum) {
    std::vector<ExprPtr> Parts;
    Parts.reserve(Datum.size());
    for (const Sexp &Element : Datum.elements()) {
      ExprPtr E = parse(Element);
      if (!E)
        return nullptr;
      Parts.push_back(std::move(E));
    }
    return makeNode(ExprKind::App, std::move(Parts), Datum.loc());
  }

  ExprPtr parsePrim(const Sexp &Datum, PrimOp Op) {
    unsigned Arity = primArity(Op);
    if (Datum.size() != Arity + 1)
      return error(Datum.loc(), std::string(primName(Op)) + " expects " +
                                    std::to_string(Arity) + " arguments, got " +
                                    std::to_string(Datum.size() - 1));
    std::vector<ExprPtr> Args;
    for (size_t I = 1; I != Datum.size(); ++I) {
      ExprPtr E = parse(Datum[I]);
      if (!E)
        return nullptr;
      Args.push_back(std::move(E));
    }
    ExprPtr Node = makeNode(ExprKind::PrimApp, std::move(Args), Datum.loc());
    Node->Prim = Op;
    return Node;
  }

  ExprPtr parseIf(const Sexp &Datum) {
    if (Datum.size() != 4)
      return error(Datum.loc(), "if takes exactly three sub-expressions");
    return parseNary(Datum, ExprKind::If, 3);
  }

  ExprPtr parseNary(const Sexp &Datum, ExprKind Kind, size_t Arity) {
    if (Datum.size() != Arity + 1)
      return error(Datum.loc(), "form expects " + std::to_string(Arity) +
                                    " sub-expressions");
    std::vector<ExprPtr> Subs;
    for (size_t I = 1; I != Datum.size(); ++I) {
      ExprPtr E = parse(Datum[I]);
      if (!E)
        return nullptr;
      Subs.push_back(std::move(E));
    }
    return makeNode(Kind, std::move(Subs), Datum.loc());
  }

  ExprPtr parseUnary(const Sexp &Datum, ExprKind Kind) {
    return parseNary(Datum, Kind, 1);
  }

  ExprPtr parseLambda(const Sexp &Datum) {
    if (Datum.size() < 3 || !Datum[1].isList())
      return error(Datum.loc(), "malformed lambda");
    auto Lambda = std::make_unique<Expr>();
    Lambda->Kind = ExprKind::Lambda;
    Lambda->Loc = Datum.loc();
    for (const Sexp &P : Datum[1].elements()) {
      std::optional<Param> Parsed = parseParam(P);
      if (!Parsed)
        return nullptr;
      Lambda->Params.push_back(std::move(*Parsed));
    }
    size_t I = 2;
    bool Bad = false;
    Lambda->ReturnAnnot = parseOptionalAnnot(Datum, I, Bad);
    if (Bad)
      return nullptr;
    ExprPtr Body = parseBody(Datum, I);
    if (!Body)
      return nullptr;
    Lambda->SubExprs.push_back(std::move(Body));
    return Lambda;
  }

  ExprPtr parseLet(const Sexp &Datum, bool IsRec) {
    if (Datum.size() < 3 || !Datum[1].isList())
      return error(Datum.loc(), "malformed let");
    auto Node = std::make_unique<Expr>();
    Node->Kind = IsRec ? ExprKind::Letrec : ExprKind::Let;
    Node->Loc = Datum.loc();
    for (const Sexp &BindDatum : Datum[1].elements()) {
      if (!BindDatum.isList() || BindDatum.size() < 2 ||
          !BindDatum[0].isSymbol())
        return error(BindDatum.loc(), "malformed binding, expected [x (: T)? E]");
      Binding B;
      B.Name = BindDatum[0].symbol();
      B.Loc = BindDatum.loc();
      size_t I = 1;
      bool Bad = false;
      B.Annot = parseOptionalAnnot(BindDatum, I, Bad);
      if (Bad)
        return nullptr;
      if (I + 1 != BindDatum.size())
        return error(BindDatum.loc(), "binding takes exactly one initializer");
      B.Init = parse(BindDatum[I]);
      if (!B.Init)
        return nullptr;
      Node->Bindings.push_back(std::move(B));
    }
    ExprPtr Body = parseBody(Datum, 2);
    if (!Body)
      return nullptr;
    Node->SubExprs.push_back(std::move(Body));
    return Node;
  }

  ExprPtr parseBegin(const Sexp &Datum) {
    if (Datum.size() < 2)
      return error(Datum.loc(), "begin needs at least one expression");
    std::vector<ExprPtr> Seq;
    for (size_t I = 1; I != Datum.size(); ++I) {
      ExprPtr E = parse(Datum[I]);
      if (!E)
        return nullptr;
      Seq.push_back(std::move(E));
    }
    return makeNode(ExprKind::Begin, std::move(Seq), Datum.loc());
  }

  ExprPtr parseRepeat(const Sexp &Datum) {
    // (repeat (x lo hi) [(acc (: T)? init)] body)
    if (Datum.size() < 3 || Datum.size() > 4 || !Datum[1].isList() ||
        Datum[1].size() != 3 || !Datum[1][0].isSymbol())
      return error(Datum.loc(), "malformed repeat, expected "
                                "(repeat (x lo hi) [(acc init)] body)");
    auto Node = std::make_unique<Expr>();
    Node->Kind = ExprKind::Repeat;
    Node->Loc = Datum.loc();
    Node->Name = Datum[1][0].symbol();
    ExprPtr Lo = parse(Datum[1][1]);
    ExprPtr Hi = parse(Datum[1][2]);
    if (!Lo || !Hi)
      return nullptr;
    Node->SubExprs.push_back(std::move(Lo));
    Node->SubExprs.push_back(std::move(Hi));
    size_t BodyIndex = 2;
    if (Datum.size() == 4) {
      const Sexp &AccDatum = Datum[2];
      if (!AccDatum.isList() || AccDatum.size() < 2 || !AccDatum[0].isSymbol())
        return error(AccDatum.loc(), "malformed repeat accumulator");
      Node->HasAcc = true;
      Node->AccName = AccDatum[0].symbol();
      size_t I = 1;
      bool Bad = false;
      Node->AccAnnot = parseOptionalAnnot(AccDatum, I, Bad);
      if (Bad)
        return nullptr;
      if (I + 1 != AccDatum.size())
        return error(AccDatum.loc(), "repeat accumulator takes one initializer");
      ExprPtr Init = parse(AccDatum[I]);
      if (!Init)
        return nullptr;
      Node->SubExprs.push_back(std::move(Init));
      BodyIndex = 3;
    }
    ExprPtr Body = parse(Datum[BodyIndex]);
    if (!Body)
      return nullptr;
    Node->SubExprs.push_back(std::move(Body));
    return Node;
  }

  ExprPtr parseTuple(const Sexp &Datum) {
    if (Datum.size() < 2)
      return error(Datum.loc(), "tuple needs at least one element");
    std::vector<ExprPtr> Elements;
    for (size_t I = 1; I != Datum.size(); ++I) {
      ExprPtr E = parse(Datum[I]);
      if (!E)
        return nullptr;
      Elements.push_back(std::move(E));
    }
    return makeNode(ExprKind::Tuple, std::move(Elements), Datum.loc());
  }

  ExprPtr parseTupleProj(const Sexp &Datum) {
    if (Datum.size() != 3 || Datum[2].kind() != Sexp::Kind::Int)
      return error(Datum.loc(), "expected (tuple-proj E i) with literal index");
    ExprPtr Target = parse(Datum[1]);
    if (!Target)
      return nullptr;
    int64_t Index = Datum[2].intValue();
    if (Index < 0)
      return error(Datum.loc(), "tuple index must be non-negative");
    std::vector<ExprPtr> Subs;
    Subs.push_back(std::move(Target));
    ExprPtr Node = makeNode(ExprKind::TupleProj, std::move(Subs), Datum.loc());
    Node->Index = static_cast<uint32_t>(Index);
    return Node;
  }

  ExprPtr parseAnn(const Sexp &Datum) {
    if (Datum.size() != 3)
      return error(Datum.loc(), "expected (ann E T)");
    ExprPtr Body = parse(Datum[1]);
    if (!Body)
      return nullptr;
    const Type *T = parseTypeAt(Datum[2]);
    if (!T)
      return nullptr;
    std::vector<ExprPtr> Subs;
    Subs.push_back(std::move(Body));
    ExprPtr Node = makeNode(ExprKind::Ascribe, std::move(Subs), Datum.loc());
    Node->Annot = T;
    return Node;
  }

  /// (and a b ...) => (if a (and b ...) #f); (or a b ...) dually.
  ExprPtr parseAndOr(const Sexp &Datum, bool IsAnd) {
    if (Datum.size() < 3)
      return error(Datum.loc(), "and/or need at least two operands");
    return buildAndOr(Datum, 1, IsAnd);
  }

  ExprPtr buildAndOr(const Sexp &Datum, size_t Index, bool IsAnd) {
    ExprPtr First = parse(Datum[Index]);
    if (!First)
      return nullptr;
    if (Index + 1 == Datum.size())
      return First;
    ExprPtr Rest = buildAndOr(Datum, Index + 1, IsAnd);
    if (!Rest)
      return nullptr;
    std::vector<ExprPtr> Subs;
    Subs.push_back(std::move(First));
    if (IsAnd) {
      Subs.push_back(std::move(Rest));
      Subs.push_back(makeLitBool(false, Datum.loc()));
    } else {
      Subs.push_back(makeLitBool(true, Datum.loc()));
      Subs.push_back(std::move(Rest));
    }
    return makeNode(ExprKind::If, std::move(Subs), Datum.loc());
  }

  /// (when c e...) => (if c (begin e...) ()); unless negates.
  ExprPtr parseWhen(const Sexp &Datum, bool Negate) {
    if (Datum.size() < 3)
      return error(Datum.loc(), "when/unless need a condition and a body");
    ExprPtr Cond = parse(Datum[1]);
    if (!Cond)
      return nullptr;
    ExprPtr Body = parseBody(Datum, 2);
    if (!Body)
      return nullptr;
    std::vector<ExprPtr> Subs;
    Subs.push_back(std::move(Cond));
    if (Negate) {
      Subs.push_back(makeLitUnit(Datum.loc()));
      Subs.push_back(std::move(Body));
    } else {
      Subs.push_back(std::move(Body));
      Subs.push_back(makeLitUnit(Datum.loc()));
    }
    return makeNode(ExprKind::If, std::move(Subs), Datum.loc());
  }

  /// (cond [c e...] ... [else e...]) => nested ifs; a missing else arm
  /// defaults to ().
  ExprPtr parseCond(const Sexp &Datum) {
    if (Datum.size() < 2)
      return error(Datum.loc(), "cond needs at least one clause");
    return buildCond(Datum, 1);
  }

  ExprPtr buildCond(const Sexp &Datum, size_t Index) {
    if (Index == Datum.size())
      return makeLitUnit(Datum.loc());
    const Sexp &Clause = Datum[Index];
    if (!Clause.isList() || Clause.size() < 2)
      return error(Clause.loc(), "malformed cond clause");
    if (Clause[0].isSymbol("else")) {
      if (Index + 1 != Datum.size())
        return error(Clause.loc(), "else must be the last cond clause");
      return parseBody(Clause, 1);
    }
    ExprPtr Cond = parse(Clause[0]);
    if (!Cond)
      return nullptr;
    ExprPtr Then = parseBody(Clause, 1);
    if (!Then)
      return nullptr;
    ExprPtr Else = buildCond(Datum, Index + 1);
    if (!Else)
      return nullptr;
    std::vector<ExprPtr> Subs;
    Subs.push_back(std::move(Cond));
    Subs.push_back(std::move(Then));
    Subs.push_back(std::move(Else));
    return makeNode(ExprKind::If, std::move(Subs), Clause.loc());
  }
};

} // namespace

std::optional<Program> grift::parseProgram(TypeContext &Ctx,
                                           std::string_view Source,
                                           DiagnosticEngine &Diags) {
  std::vector<Sexp> Data = readSexps(Source, Diags);
  if (Diags.hasErrors())
    return std::nullopt;
  return Parser(Ctx, Diags).parseProgram(Data);
}

ExprPtr grift::parseExpr(TypeContext &Ctx, std::string_view Source,
                         DiagnosticEngine &Diags) {
  std::vector<Sexp> Data = readSexps(Source, Diags);
  if (Diags.hasErrors())
    return nullptr;
  if (Data.size() != 1) {
    Diags.error(SourceLoc(), "expected exactly one expression");
    return nullptr;
  }
  return Parser(Ctx, Diags).parse(Data[0]);
}
