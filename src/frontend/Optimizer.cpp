#include "frontend/Optimizer.h"

#include <cassert>
#include <cmath>

using namespace grift;
using namespace grift::core;

namespace {

bool isLiteral(const Node &N) {
  switch (N.Kind) {
  case NodeKind::LitUnit:
  case NodeKind::LitBool:
  case NodeKind::LitInt:
  case NodeKind::LitFloat:
  case NodeKind::LitChar:
    return true;
  default:
    return false;
  }
}

/// Effect-free expressions can be dropped from statement position.
bool isEffectFree(const Node &N) {
  switch (N.Kind) {
  case NodeKind::LocalRef:
  case NodeKind::GlobalRef:
  case NodeKind::Lambda:
    return true;
  default:
    return isLiteral(N);
  }
}

NodePtr makeLitInt(TypeContext &Types, int64_t Value, SourceLoc Loc) {
  auto N = std::make_unique<Node>();
  N->Kind = NodeKind::LitInt;
  N->Ty = Types.integer();
  N->IntVal = Value;
  N->Loc = Loc;
  return N;
}

NodePtr makeLitBool(TypeContext &Types, bool Value, SourceLoc Loc) {
  auto N = std::make_unique<Node>();
  N->Kind = NodeKind::LitBool;
  N->Ty = Types.boolean();
  N->BoolVal = Value;
  N->Loc = Loc;
  return N;
}

NodePtr makeLitFloat(TypeContext &Types, double Value, SourceLoc Loc) {
  auto N = std::make_unique<Node>();
  N->Kind = NodeKind::LitFloat;
  N->Ty = Types.floating();
  N->FloatVal = Value;
  N->Loc = Loc;
  return N;
}

class Optimizer {
public:
  explicit Optimizer(TypeContext &Types) : Types(Types) {}

  unsigned run(CoreProgram &Prog) {
    for (Def &D : Prog.Defs)
      rewrite(D.Body);
    return Rewrites;
  }

private:
  TypeContext &Types;
  unsigned Rewrites = 0;

  void rewrite(NodePtr &Slot) {
    // Children first (innermost folds enable outer folds).
    for (NodePtr &Sub : Slot->Subs)
      rewrite(Sub);

    switch (Slot->Kind) {
    case NodeKind::PrimApp:
      foldPrim(Slot);
      return;
    case NodeKind::If:
      // (if #t a b) => a; (if #f a b) => b.
      if (Slot->Subs[0]->Kind == NodeKind::LitBool) {
        NodePtr Taken = std::move(
            Slot->Subs[0]->BoolVal ? Slot->Subs[1] : Slot->Subs[2]);
        Slot = std::move(Taken);
        ++Rewrites;
      }
      return;
    case NodeKind::Begin: {
      // Flatten nested begins and drop effect-free statements.
      std::vector<NodePtr> Flat;
      for (size_t I = 0; I != Slot->Subs.size(); ++I) {
        bool Last = I + 1 == Slot->Subs.size();
        NodePtr &Sub = Slot->Subs[I];
        if (Sub->Kind == NodeKind::Begin) {
          for (NodePtr &Inner : Sub->Subs)
            Flat.push_back(std::move(Inner));
          ++Rewrites;
          continue;
        }
        if (!Last && isEffectFree(*Sub)) {
          ++Rewrites;
          continue;
        }
        Flat.push_back(std::move(Sub));
      }
      Slot->Subs = std::move(Flat);
      if (Slot->Subs.size() == 1) {
        NodePtr Only = std::move(Slot->Subs[0]);
        Slot = std::move(Only);
        ++Rewrites;
      }
      return;
    }
    case NodeKind::Cast: {
      // Injecting an atomic literal into Dyn is a representation
      // identity in every engine (atomic values are self-describing),
      // so the runtime check disappears entirely — the paper's
      // "eliminate many first-order checks" in miniature.
      Node &Body = *Slot->Subs[0];
      if (isLiteral(Body) && Slot->Ty->isDyn() && Body.Ty->isAtomic()) {
        NodePtr Inner = std::move(Slot->Subs[0]);
        Inner->Ty = Slot->Ty;
        Slot = std::move(Inner);
        ++Rewrites;
      }
      return;
    }
    default:
      return;
    }
  }

  void foldPrim(NodePtr &Slot) {
    const Node &N = *Slot;
    auto AllInts = [&] {
      for (const NodePtr &Sub : N.Subs)
        if (Sub->Kind != NodeKind::LitInt)
          return false;
      return true;
    };
    auto AllFloats = [&] {
      for (const NodePtr &Sub : N.Subs)
        if (Sub->Kind != NodeKind::LitFloat)
          return false;
      return true;
    };
    auto I = [&](size_t Index) { return N.Subs[Index]->IntVal; };
    auto Fl = [&](size_t Index) { return N.Subs[Index]->FloatVal; };

    switch (N.Prim) {
    case PrimOp::AddI:
    case PrimOp::SubI:
    case PrimOp::MulI: {
      if (!AllInts())
        return;
      int64_t Value = N.Prim == PrimOp::AddI   ? I(0) + I(1)
                      : N.Prim == PrimOp::SubI ? I(0) - I(1)
                                               : I(0) * I(1);
      Slot = makeLitInt(Types, Value, N.Loc);
      ++Rewrites;
      return;
    }
    case PrimOp::DivI:
    case PrimOp::ModI:
      // Folding would hide the runtime division-by-zero trap; only fold
      // provably safe divisors.
      if (AllInts() && I(1) != 0) {
        Slot = makeLitInt(
            Types, N.Prim == PrimOp::DivI ? I(0) / I(1) : I(0) % I(1),
            N.Loc);
        ++Rewrites;
      }
      return;
    case PrimOp::LtI:
    case PrimOp::LeI:
    case PrimOp::EqI:
    case PrimOp::GeI:
    case PrimOp::GtI: {
      if (!AllInts())
        return;
      bool Value = N.Prim == PrimOp::LtI   ? I(0) < I(1)
                   : N.Prim == PrimOp::LeI ? I(0) <= I(1)
                   : N.Prim == PrimOp::EqI ? I(0) == I(1)
                   : N.Prim == PrimOp::GeI ? I(0) >= I(1)
                                           : I(0) > I(1);
      Slot = makeLitBool(Types, Value, N.Loc);
      ++Rewrites;
      return;
    }
    case PrimOp::AddF:
    case PrimOp::SubF:
    case PrimOp::MulF: {
      if (!AllFloats())
        return;
      double Value = N.Prim == PrimOp::AddF   ? Fl(0) + Fl(1)
                     : N.Prim == PrimOp::SubF ? Fl(0) - Fl(1)
                                              : Fl(0) * Fl(1);
      Slot = makeLitFloat(Types, Value, N.Loc);
      ++Rewrites;
      return;
    }
    case PrimOp::Not:
      if (N.Subs[0]->Kind == NodeKind::LitBool) {
        Slot = makeLitBool(Types, !N.Subs[0]->BoolVal, N.Loc);
        ++Rewrites;
      }
      return;
    case PrimOp::IntToFloat:
      if (N.Subs[0]->Kind == NodeKind::LitInt) {
        Slot = makeLitFloat(Types, static_cast<double>(N.Subs[0]->IntVal),
                            N.Loc);
        ++Rewrites;
      }
      return;
    default:
      return;
    }
  }
};

} // namespace

unsigned grift::optimizeCore(TypeContext &Types, CoreProgram &Prog) {
  return Optimizer(Types).run(Prog);
}
