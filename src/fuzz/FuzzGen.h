//===----------------------------------------------------------------------===//
///
/// \file
/// Type-directed random program generation shared by the griftfuzz
/// correctness harness (tools/griftfuzz) and the gtest differential
/// suites (tests/test_fuzz.cpp, tests/test_vm.cpp). Produces well-typed
/// gradual programs emitted as *source text*, so the reader, parser, and
/// checker are exercised along with the back ends.
///
/// Three grammar profiles, selected via GenOptions:
///
///   * the default profile matches the historical tests/FuzzGen.h
///     generator: casts only move along precision ladders, so every
///     program runs successfully in every engine and cast mode;
///   * the *pure typed* profile (AllowDyn = false) never mentions Dyn at
///     all — every annotation is a full static type, so the program also
///     compiles under CastMode::Static and is a valid top element for
///     the configuration lattice (src/lattice) to erase downward from;
///   * the *failure planting* profile (PlantFailure = true, implies
///     pure typed) deliberately emits exactly one inconsistent cast
///     `(ann (ann <lit-of-U> Dyn) T)` with U ≠ T at a site that is
///     guaranteed to be evaluated, so the blame-differential oracle can
///     predict the precise `line:col` blame label every engine must
///     report. Because the pure profile emits no other `ann`, the
///     planted cast is the unique occurrence of "(ann " in the source
///     and its position is recoverable by search (see plantedSite).
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_FUZZ_FUZZGEN_H
#define GRIFT_FUZZ_FUZZGEN_H

#include "support/RNG.h"
#include "support/SourceLoc.h"
#include "types/TypeContext.h"

#include <string>
#include <vector>

namespace grift::fuzz {

/// Knobs for the generator grammar.
struct GenOptions {
  /// Skews generation toward Float-typed expressions and mixes IEEE edge
  /// values (±0.0, huge/tiny magnitudes, NaN/inf producers like fl/ by
  /// zero) into the float grammar — the stressor for the NaN-boxed value
  /// representation, where every double bit pattern must survive
  /// arithmetic, casts, and Dyn round trips.
  bool FloatBias = false;

  /// Emit Dyn round trips `(ann (ann e Dyn) T)` and calls through Dyn
  /// views. Disabled, the program never mentions Dyn: fully typed,
  /// Static-mode compatible, and a valid lattice top.
  bool AllowDyn = true;

  /// Widen binding/parameter types beyond scalars: boxes, vectors,
  /// nested tuples, and first-class function types (higher-order
  /// functions as arguments — the paper's structural types), plus the
  /// eliminators (unbox, vector-ref, tuple-proj, application) that
  /// consume them.
  bool Structural = false;

  /// Plant exactly one deliberately inconsistent cast at a
  /// guaranteed-evaluated site (forces AllowDyn = false).
  bool PlantFailure = false;
};

/// Generates expressions of a requested type, tracking variables in
/// scope. Emits concrete syntax directly.
class ProgramGen {
public:
  /// Historical two-knob constructor kept for the differential suites.
  ProgramGen(TypeContext &Types, RNG &Gen, bool FloatBias = false)
      : ProgramGen(Types, Gen, GenOptions{FloatBias, true, false, false}) {}

  ProgramGen(TypeContext &Types, RNG &Gen, const GenOptions &Opts);

  /// A whole program: a couple of definitions plus a final expression of
  /// printable type. With Opts.PlantFailure, the program additionally
  /// contains exactly one inconsistent cast that is reached when the
  /// final expression is evaluated.
  std::string program();

  /// After program() with Opts.PlantFailure: the 1-based line:col of the
  /// planted cast's outer `(ann` — the blame label every engine must
  /// report. Invalid when nothing was planted.
  SourceLoc plantedSite() const { return PlantSite; }

private:
  struct Binding {
    std::string Name;
    const Type *Ty;
  };

  TypeContext &Types;
  RNG &Gen;
  GenOptions Opts;
  std::vector<Binding> Scope;
  std::vector<Binding> Funcs;
  unsigned NextVar = 0;
  bool Planted = false;
  unsigned PlantCountdown = 0;
  SourceLoc PlantSite;

  const Type *scalarType();
  const Type *bindingType();
  std::string literal(const Type *T);
  std::string varOfType(const Type *T);
  std::string structuralUse(const Type *T, unsigned Depth, bool MustEval);
  std::string plant(const Type *T);
  std::string expr(const Type *T, unsigned Depth, bool MustEval);
  bool callableResult(const Type *T);
};

/// Locates the planted cast in \p Source: the unique occurrence of
/// "(ann " (pure-typed programs emit no other ascription). Returns the
/// invalid SourceLoc when the marker is absent or ambiguous.
SourceLoc findPlantedCast(const std::string &Source);

/// Iteration count for fuzz loops: the GRIFT_FUZZ_ITERS environment
/// variable when set to a positive integer, \p Default otherwise. Lets
/// CI and local runs crank budgets up or down without recompiling.
unsigned iterationCount(unsigned Default);

} // namespace grift::fuzz

#endif // GRIFT_FUZZ_FUZZGEN_H
