//===----------------------------------------------------------------------===//
///
/// \file
/// The griftfuzz correctness oracles. The paper's claim is that the
/// cast-implementation strategies are observationally interchangeable —
/// same answers, same blame labels, at every point of the configuration
/// lattice, only different speed. These oracles test that claim
/// mechanically on generated programs:
///
///   * the *lattice gradual-guarantee oracle* generates a fully typed
///     program (no Dyn anywhere), samples fine-grained and module-level
///     configurations via src/lattice, and asserts that every
///     configuration produces the identical result text across the
///     reference interpreter and the VM in coercion, type-based, and
///     monotonic modes — and, for the fully typed top element, static
///     mode as well;
///
///   * the *blame-differential oracle* plants exactly one deliberately
///     inconsistent cast at a guaranteed-evaluated site, predicts its
///     `line:col` blame label from the source text, and asserts that
///     every engine reports ErrorKind::Blame with exactly that label —
///     and that less-precise configurations of the same program either
///     succeed or blame the same site, never a different ErrorKind.
///
/// A detected failure carries enough state (seeds, sources, expected vs
/// actual) to re-manifest deterministically; shrinkFailure() minimizes
/// it with the AST-aware delta debugger before the harness dumps a
/// self-contained repro artifact.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_FUZZ_ORACLE_H
#define GRIFT_FUZZ_ORACLE_H

#include "fuzz/Shrink.h"
#include "runtime/Limits.h"

#include <cstdint>
#include <optional>
#include <string>

namespace grift::fuzz {

struct OracleOptions {
  unsigned Bins = 4;      ///< fine-grained precision bins per program
  unsigned PerBin = 2;    ///< configurations sampled per bin
  unsigned CoarseMax = 8; ///< module-lattice configurations per program
  unsigned ShrinkAttempts = 1200; ///< delta-debugging budget per failure
  /// Guard budgets for every engine run. Generated programs are tiny, so
  /// these never fire on a healthy build; when they do, the run shows up
  /// as a resource-kind outcome and the oracle reports it.
  /// Limits.GCNurseryBytes also flows through (--gc-nursery=BYTES).
  RunLimits Limits;

  /// GC torture for every VM run: force a full collection every Nth
  /// allocation (0 = off). Each run gets a fresh deterministic injector.
  uint64_t GCTorturePeriod = 0;
  /// Minor-GC torture: force a nursery collection every Nth allocation
  /// and every Nth cast application (0 = off). The harshest moving-GC
  /// test the oracles can apply.
  uint64_t MinorGCTorturePeriod = 0;
  /// Enrolls a --gc-nursery=0 twin of every VM engine in the
  /// differential set: the same program must produce the identical
  /// canonical outcome under the generational and the pre-generational
  /// collector, in every cast mode.
  bool GCDifferential = false;

  OracleOptions();
};

enum class OracleKind { Lattice, Blame };

inline const char *oracleKindName(OracleKind Kind) {
  return Kind == OracleKind::Lattice ? "lattice" : "blame";
}

/// How a failure re-manifests on candidate sources during shrinking.
enum class RecheckKind {
  /// Engines disagree pairwise on the program itself.
  EnginesDisagree,
  /// Some sampled configuration of the program changes the answer.
  LatticeGuarantee,
  /// The planted cast's contract is broken: an engine misses blame, or
  /// blames a label other than the one derived from the source.
  BlameContract,
};

struct OracleFailure {
  OracleKind Oracle = OracleKind::Lattice;
  RecheckKind Recheck = RecheckKind::EnginesDisagree;
  uint64_t Seed = 0;       ///< generator seed (reproduces the program)
  uint64_t SampleSeed = 0; ///< lattice sampling seed for this program
  std::string Source;      ///< source to shrink (failing config or baseline)
  std::string Baseline;    ///< the fully typed generated program
  std::string What;        ///< one-line description
  std::string Expected;
  std::string Actual;
};

/// One iteration of the respective oracle, deterministic in \p Seed.
/// Returns nullopt when every check passed.
std::optional<OracleFailure> checkLattice(uint64_t Seed,
                                          const OracleOptions &Opts);
std::optional<OracleFailure> checkBlame(uint64_t Seed,
                                        const OracleOptions &Opts);

/// The shrinking predicate for \p Failure evaluated on \p Source:
/// true when the failure class still reproduces. Exposed for tests.
bool recheckFails(const OracleFailure &Failure, const std::string &Source,
                  const OracleOptions &Opts);

/// Minimizes Failure.Source with the AST-aware delta debugger while
/// recheckFails holds.
std::string shrinkFailure(const OracleFailure &Failure,
                          const OracleOptions &Opts,
                          ShrinkStats *Stats = nullptr);

/// Renders a self-contained repro artifact: seeds, oracle, expectation,
/// observed behaviour, original and shrunk sources, and the one-command
/// reproduction line.
std::string reproText(const OracleFailure &Failure,
                      const std::string &Shrunk);

} // namespace grift::fuzz

#endif // GRIFT_FUZZ_ORACLE_H
