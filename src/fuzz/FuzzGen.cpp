#include "fuzz/FuzzGen.h"

#include <cstdlib>

using namespace grift;
using namespace grift::fuzz;

ProgramGen::ProgramGen(TypeContext &Types, RNG &Gen, const GenOptions &Opts)
    : Types(Types), Gen(Gen), Opts(Opts) {
  if (this->Opts.PlantFailure) {
    // A planted cast must be the only ascription in the program so its
    // position (and therefore the blame label) is recoverable by search.
    this->Opts.AllowDyn = false;
    PlantCountdown = static_cast<unsigned>(Gen.below(10));
  }
}

std::string ProgramGen::program() {
  std::string Out;
  unsigned NumDefs = 1 + Gen.below(3);
  for (unsigned I = 0; I != NumDefs; ++I) {
    const Type *Ret = scalarType();
    std::vector<const Type *> Params;
    unsigned Arity = 1 + Gen.below(2);
    for (unsigned P = 0; P != Arity; ++P)
      Params.push_back(bindingType());
    std::string Name = "g" + std::to_string(I);
    Out += "(define (" + Name;
    std::vector<Binding> Saved = Scope;
    for (unsigned P = 0; P != Arity; ++P) {
      std::string PName = Name + "p" + std::to_string(P);
      Out += " [" + PName + " : " + Params[P]->str() + "]";
      Scope.push_back({PName, Params[P]});
    }
    // A define's body only runs if some evaluated call reaches it, so it
    // is not a reliable home for the planted failure (MustEval = false).
    Out += ") : " + Ret->str() + " " + expr(Ret, 3, /*MustEval=*/false) + ")\n";
    Scope = Saved;
    Funcs.push_back({Name, Types.function(std::move(Params), Ret)});
  }
  const Type *Final = scalarType();
  if (Opts.PlantFailure) {
    // Keep the final type ground so the fallback plant below always has
    // an incompatible partner type.
    switch (Gen.below(3)) {
    case 0:
      Final = Types.integer();
      break;
    case 1:
      Final = Types.boolean();
      break;
    default:
      Final = Types.floating();
      break;
    }
  }
  std::string FinalExpr = expr(Final, 4, /*MustEval=*/true);
  if (Opts.PlantFailure && !Planted)
    FinalExpr = plant(Final); // countdown outlived the program: plant on top
  Out += FinalExpr + "\n";
  if (Opts.PlantFailure)
    PlantSite = findPlantedCast(Out);
  return Out;
}

/// Scalar-ish result types keep final values printable/comparable.
const Type *ProgramGen::scalarType() {
  if (Opts.FloatBias && Gen.flip(0.5))
    return Types.floating();
  switch (Gen.below(4)) {
  case 0:
    return Types.integer();
  case 1:
    return Types.boolean();
  case 2:
    return Types.floating();
  default:
    return Types.tuple({Types.integer(), Types.boolean()});
  }
}

/// Types for parameters and let bindings. The structural profile widens
/// these beyond scalars: boxes, vectors, nested tuples, and first-class
/// function types (higher-order functions as arguments).
const Type *ProgramGen::bindingType() {
  if (!Opts.Structural || Gen.flip(0.55))
    return scalarType();
  switch (Gen.below(6)) {
  case 0:
    return Types.box(scalarType());
  case 1:
    return Types.vect(scalarType());
  case 2:
    return Types.tuple({scalarType(), scalarType(), scalarType()});
  case 3: {
    std::vector<const Type *> Params;
    unsigned Arity = 1 + Gen.below(2);
    for (unsigned I = 0; I != Arity; ++I)
      Params.push_back(scalarType());
    return Types.function(std::move(Params), scalarType());
  }
  case 4:
    return Types.box(Types.tuple({scalarType(), scalarType()}));
  default:
    return Types.tuple({Types.box(scalarType()), scalarType()});
  }
}

std::string ProgramGen::literal(const Type *T) {
  switch (T->kind()) {
  case TypeKind::Int:
    return std::to_string(static_cast<int64_t>(Gen.below(200)) - 100);
  case TypeKind::Bool:
    return Gen.flip(0.5) ? "#t" : "#f";
  case TypeKind::Float: {
    if (Opts.FloatBias && Gen.flip(0.25)) {
      // IEEE edge values: signed zeros, extremes of the exponent
      // range, and values whose sums/products overflow to infinity.
      static const char *Edges[] = {"-0.0",    "0.0",    "1e308",
                                    "-1e308",  "5e-324", "-5e-324",
                                    "1.5e300", "-2.5e300"};
      return Edges[Gen.below(sizeof(Edges) / sizeof(Edges[0]))];
    }
    return std::to_string(static_cast<int64_t>(Gen.below(64))) + "." +
           std::to_string(Gen.below(100));
  }
  case TypeKind::Unit:
    return "()";
  case TypeKind::Char:
    return std::string("#\\") + static_cast<char>('a' + Gen.below(26));
  case TypeKind::Tuple: {
    std::string Out = "(tuple";
    for (size_t I = 0; I != T->tupleSize(); ++I)
      Out += " " + literal(T->element(I));
    return Out + ")";
  }
  case TypeKind::Box:
    return "(box " + literal(T->inner()) + ")";
  case TypeKind::Vect:
    return "(make-vector 2 " + literal(T->inner()) + ")";
  case TypeKind::Function: {
    std::string Out = "(lambda (";
    std::vector<std::string> Params;
    for (size_t I = 0; I != T->arity(); ++I) {
      std::string Name = std::string("v") + std::to_string(NextVar++);
      Out += std::string(I ? " [" : "[") + Name + " : " +
             T->param(I)->str() + "]";
      Params.push_back(Name);
    }
    Out += ") : " + T->result()->str() + " ";
    // Body: a literal of the result type (params unused is fine).
    Out += literal(T->result());
    return Out + ")";
  }
  default:
    return "0";
  }
}

/// Variables of exactly type \p T currently in scope.
std::string ProgramGen::varOfType(const Type *T) {
  std::vector<const Binding *> Matches;
  for (const Binding &B : Scope)
    if (B.Ty == T)
      Matches.push_back(&B);
  if (Matches.empty())
    return "";
  return Matches[Gen.below(Matches.size())]->Name;
}

/// Derives a \p T from a structural variable in scope via one
/// eliminator: unbox, vector-ref, tuple-proj, or application (calling a
/// function-typed parameter — the higher-order case). Returns "" when no
/// binding can produce \p T.
std::string ProgramGen::structuralUse(const Type *T, unsigned Depth,
                                      bool MustEval) {
  enum class UseKind { Unbox, VectRef, TupleProj, Call };
  struct Use {
    const Binding *B;
    UseKind Kind;
    size_t Index;
  };
  std::vector<Use> Uses;
  for (const Binding &B : Scope) {
    switch (B.Ty->kind()) {
    case TypeKind::Box:
      if (B.Ty->inner() == T)
        Uses.push_back({&B, UseKind::Unbox, 0});
      break;
    case TypeKind::Vect:
      // Every vector the generator constructs has length 2, so indices
      // 0 and 1 are always in bounds.
      if (B.Ty->inner() == T)
        Uses.push_back({&B, UseKind::VectRef, 0});
      break;
    case TypeKind::Tuple:
      for (size_t I = 0; I != B.Ty->tupleSize(); ++I)
        if (B.Ty->element(I) == T)
          Uses.push_back({&B, UseKind::TupleProj, I});
      break;
    case TypeKind::Function:
      if (B.Ty->result() == T)
        Uses.push_back({&B, UseKind::Call, 0});
      break;
    default:
      break;
    }
  }
  if (Uses.empty())
    return "";
  const Use &U = Uses[Gen.below(Uses.size())];
  switch (U.Kind) {
  case UseKind::Unbox:
    return "(unbox " + U.B->Name + ")";
  case UseKind::VectRef:
    return "(vector-ref " + U.B->Name + " " + std::to_string(Gen.below(2)) +
           ")";
  case UseKind::TupleProj:
    return "(tuple-proj " + U.B->Name + " " + std::to_string(U.Index) + ")";
  case UseKind::Call: {
    std::string Out = std::string("(") + U.B->Name;
    const Type *FnTy = U.B->Ty;
    unsigned SubDepth = Depth ? Depth - 1 : 0;
    for (size_t I = 0; I != FnTy->arity(); ++I)
      Out += std::string(" ") + expr(FnTy->param(I), SubDepth, MustEval);
    return Out + ")";
  }
  }
  return "";
}

/// The deliberately inconsistent cast: a literal of some ground type
/// U ≠ T injected into Dyn and projected out at T. Every engine must
/// blame the outer ascription's line:col.
std::string ProgramGen::plant(const Type *T) {
  const Type *Candidates[] = {Types.integer(), Types.boolean(),
                              Types.floating(), Types.character()};
  const Type *U = T;
  while (U == T)
    U = Candidates[Gen.below(4)];
  Planted = true;
  return "(ann (ann " + literal(U) + " Dyn) " + T->str() + ")";
}

bool ProgramGen::callableResult(const Type *T) {
  return T == Types.integer() || T == Types.boolean() ||
         T == Types.floating() ||
         T == Types.tuple({Types.integer(), Types.boolean()});
}

/// \p MustEval is true when this expression is guaranteed to be
/// evaluated whenever the whole program runs (it is not under an if
/// branch or inside a function body) — the precondition for planting
/// the failure here.
std::string ProgramGen::expr(const Type *T, unsigned Depth, bool MustEval) {
  if (Opts.PlantFailure && !Planted && MustEval &&
      (T == Types.integer() || T == Types.boolean() ||
       T == Types.floating())) {
    if (PlantCountdown == 0)
      return plant(T);
    --PlantCountdown;
  }
  if (Depth == 0) {
    std::string Var = varOfType(T);
    return Var.empty() ? literal(T) : Var;
  }
  if (Opts.Structural && Gen.flip(0.25)) {
    std::string Use = structuralUse(T, Depth, MustEval);
    if (!Use.empty())
      return Use;
  }
  switch (Gen.below(10)) {
  case 0: { // literal / variable
    std::string Var = varOfType(T);
    return Var.empty() || Gen.flip(0.3) ? literal(T) : Var;
  }
  case 1: // if: only the condition is guaranteed to evaluate
    return "(if " + expr(Types.boolean(), Depth - 1, MustEval) + " " +
           expr(T, Depth - 1, /*MustEval=*/false) + " " +
           expr(T, Depth - 1, /*MustEval=*/false) + ")";
  case 2: { // let
    std::string Name = "v" + std::to_string(NextVar++);
    const Type *BindTy = bindingType();
    std::string Init = expr(BindTy, Depth - 1, MustEval);
    Scope.push_back({Name, BindTy});
    std::string Body = expr(T, Depth - 1, MustEval);
    Scope.pop_back();
    return "(let ([" + Name + " : " + BindTy->str() + " " + Init + "]) " +
           Body + ")";
  }
  case 3: // Dyn round trip: the gradual-typing stressor
    if (!Opts.AllowDyn)
      return expr(T, Depth - 1, MustEval);
    return "(ann (ann " + expr(T, Depth - 1, MustEval) + " Dyn) " +
           T->str() + ")";
  case 4: { // call a generated top-level function (possibly via Dyn)
    if (Funcs.empty() || !callableResult(T))
      return expr(T, 0, MustEval);
    std::vector<const Binding *> Usable;
    for (const Binding &F : Funcs)
      if (F.Ty->result() == T)
        Usable.push_back(&F);
    if (Usable.empty())
      return expr(T, 0, MustEval);
    const Binding &F = *Usable[Gen.below(Usable.size())];
    bool ViaDyn = Opts.AllowDyn && Gen.flip(0.3);
    std::string Out =
        ViaDyn ? "((ann (ann " + F.Name + " Dyn) " + F.Ty->str() + ")"
               : "(" + F.Name;
    for (size_t I = 0; I != F.Ty->arity(); ++I)
      Out += " " + expr(F.Ty->param(I), Depth - 1, MustEval);
    return Out + ")";
  }
  case 5: { // arithmetic, when T is Int/Bool/Float
    if (T == Types.integer()) {
      const char *Ops[] = {"+", "-", "*"};
      return std::string("(") + Ops[Gen.below(3)] + " " +
             expr(Types.integer(), Depth - 1, MustEval) + " " +
             expr(Types.integer(), Depth - 1, MustEval) + ")";
    }
    if (T == Types.boolean()) {
      if (Opts.FloatBias && Gen.flip(0.5)) {
        // Float comparisons: NaN makes every one of these false, and
        // fl= treats -0.0 and 0.0 as equal — both engines must agree.
        const char *Ops[] = {"fl<", "fl<=", "fl=", "fl>=", "fl>"};
        return std::string("(") + Ops[Gen.below(5)] + " " +
               expr(Types.floating(), Depth - 1, MustEval) + " " +
               expr(Types.floating(), Depth - 1, MustEval) + ")";
      }
      const char *Ops[] = {"<", "<=", "=", "not"};
      unsigned Pick = Gen.below(4);
      if (Pick == 3)
        return "(not " + expr(Types.boolean(), Depth - 1, MustEval) + ")";
      return std::string("(") + Ops[Pick] + " " +
             expr(Types.integer(), Depth - 1, MustEval) + " " +
             expr(Types.integer(), Depth - 1, MustEval) + ")";
    }
    if (T == Types.floating()) {
      if (Opts.FloatBias && Gen.flip(0.3)) {
        // fl/ reaches ±inf and NaN (x/0.0, 0.0/0.0); the unary rail
        // covers sign and NaN propagation through libm.
        const char *Unary[] = {"flnegate", "flabs", "flsqrt", "flfloor"};
        if (Gen.flip(0.4))
          return std::string("(") + Unary[Gen.below(4)] + " " +
                 expr(Types.floating(), Depth - 1, MustEval) + ")";
        return "(fl/ " + expr(Types.floating(), Depth - 1, MustEval) + " " +
               expr(Types.floating(), Depth - 1, MustEval) + ")";
      }
      const char *Ops[] = {"fl+", "fl-", "fl*", "flmin", "flmax"};
      return std::string("(") + Ops[Gen.below(5)] + " " +
             expr(Types.floating(), Depth - 1, MustEval) + " " +
             expr(Types.floating(), Depth - 1, MustEval) + ")";
    }
    return expr(T, 0, MustEval);
  }
  case 6: { // tuple projection from a wider tuple
    const Type *Other = Gen.flip(0.5) ? Types.integer() : Types.boolean();
    const Type *TupTy = Gen.flip(0.5) ? Types.tuple({T, Other})
                                      : Types.tuple({Other, T});
    unsigned Index = TupTy->element(0) == T && !Gen.flip(0.1) ? 0 : 1;
    if (TupTy->element(Index) != T)
      Index = 1 - Index;
    return "(tuple-proj " + expr(TupTy, Depth - 1, MustEval) + " " +
           std::to_string(Index) + ")";
  }
  case 7: // box round trip
    return "(unbox (box " + expr(T, Depth - 1, MustEval) + "))";
  case 8: { // vector round trip (possibly through a Dyn view)
    std::string Vec = "(make-vector 2 " + expr(T, Depth - 1, MustEval) + ")";
    if (Opts.AllowDyn && Gen.flip(0.4))
      return "(vector-ref (ann (ann " + Vec + " Dyn) (Vect " + T->str() +
             ")) " + std::to_string(Gen.below(2)) + ")";
    return "(vector-ref " + Vec + " " + std::to_string(Gen.below(2)) + ")";
  }
  default: { // begin with a side-effecting print of an int
    return "(begin (print-int " + expr(Types.integer(), Depth - 1, MustEval) +
           ") " + expr(T, Depth - 1, MustEval) + ")";
  }
  }
}

SourceLoc grift::fuzz::findPlantedCast(const std::string &Source) {
  // The planted cast renders as "(ann (ann <lit> Dyn) T)": two adjacent
  // "(ann " markers and no others anywhere in a pure-typed program.
  size_t Outer = Source.find("(ann (ann ");
  if (Outer == std::string::npos)
    return {};
  if (Source.find("(ann (ann ", Outer + 1) != std::string::npos)
    return {};
  size_t Count = 0;
  for (size_t P = Source.find("(ann "); P != std::string::npos;
       P = Source.find("(ann ", P + 1))
    ++Count;
  if (Count != 2)
    return {};
  uint32_t Line = 1, Col = 1;
  for (size_t I = 0; I != Outer; ++I) {
    if (Source[I] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
  }
  return SourceLoc(Line, Col);
}

unsigned grift::fuzz::iterationCount(unsigned Default) {
  const char *Env = std::getenv("GRIFT_FUZZ_ITERS");
  if (!Env || !*Env)
    return Default;
  char *End = nullptr;
  unsigned long Value = std::strtoul(Env, &End, 10);
  if (End == Env || *End != '\0' || Value == 0 || Value > 1000000)
    return Default;
  return static_cast<unsigned>(Value);
}
