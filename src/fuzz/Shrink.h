//===----------------------------------------------------------------------===//
///
/// \file
/// Sexp/AST-aware delta debugging for failing fuzz cases. Rather than
/// chopping bytes, the shrinker parses the program, applies structured
/// reductions — drop a top-level define, hoist a subexpression over its
/// parent (which inlines lets, flattens begins, and picks an if branch),
/// replace a subtree with a scalar literal — re-renders the candidate
/// via the AST printer, and keeps it only when the caller's predicate
/// says the failure still reproduces from the *re-rendered source*.
/// Testing the rendered text (not the mutated in-memory AST) guarantees
/// the final repro is self-contained: anyone can paste it into griftc
/// and observe the same failure, including position-derived blame
/// labels, because the predicate always saw the same bytes.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_FUZZ_SHRINK_H
#define GRIFT_FUZZ_SHRINK_H

#include <functional>
#include <string>

namespace grift::fuzz {

/// Returns true when \p Source still exhibits the failure being
/// minimized. Called on rendered candidate programs; expected to treat
/// non-compiling candidates as "does not fail" (reject them).
using SourcePredicate = std::function<bool(const std::string &Source)>;

struct ShrinkStats {
  unsigned Attempts = 0; ///< candidates generated and tested
  unsigned Accepted = 0; ///< candidates that kept the failure
  unsigned Rounds = 0;   ///< greedy passes over the program
};

/// Minimizes \p Source while \p StillFails holds. Greedy fixed point:
/// each accepted reduction strictly shrinks the rendered text, so the
/// loop terminates; \p MaxAttempts caps total predicate evaluations.
/// Returns \p Source unchanged if it does not satisfy the predicate.
std::string shrinkSource(const std::string &Source,
                         const SourcePredicate &StillFails,
                         unsigned MaxAttempts = 1500,
                         ShrinkStats *Stats = nullptr);

} // namespace grift::fuzz

#endif // GRIFT_FUZZ_SHRINK_H
