#include "fuzz/Shrink.h"

#include "ast/Ast.h"
#include "grift/Grift.h"

#include <vector>

using namespace grift;
using namespace grift::fuzz;

namespace {

/// Collects every mutable expression slot (define bodies, binding
/// initializers, subexpressions) in pre-order, parents before children,
/// so the greedy pass tries the biggest reductions first.
void collectSlots(Expr &E, std::vector<ExprPtr *> &Slots) {
  for (Binding &B : E.Bindings)
    if (B.Init) {
      Slots.push_back(&B.Init);
      collectSlots(*B.Init, Slots);
    }
  for (ExprPtr &Sub : E.SubExprs) {
    Slots.push_back(&Sub);
    collectSlots(*Sub, Slots);
  }
}

void collectSlots(Program &Prog, std::vector<ExprPtr *> &Slots) {
  for (Define &D : Prog.Defines)
    if (D.Body) {
      Slots.push_back(&D.Body);
      collectSlots(*D.Body, Slots);
    }
}

/// Children of the expression in slot \p Index of a fresh clone of
/// \p Ast: SubExprs first, then binding initializers.
size_t childCount(const Program &Ast, size_t Index) {
  Program Clone = Ast.clone();
  std::vector<ExprPtr *> Slots;
  collectSlots(Clone, Slots);
  const Expr &Node = **Slots[Index];
  size_t Count = Node.SubExprs.size();
  for (const Binding &B : Node.Bindings)
    if (B.Init)
      ++Count;
  return Count;
}

/// Clones \p Ast and replaces slot \p Index with its \p Child-th child
/// (hoisting it over the parent). Returns the rendered candidate.
std::string hoistChild(const Program &Ast, size_t Index, size_t Child) {
  Program Clone = Ast.clone();
  std::vector<ExprPtr *> Slots;
  collectSlots(Clone, Slots);
  Expr &Node = **Slots[Index];
  ExprPtr Replacement;
  if (Child < Node.SubExprs.size()) {
    Replacement = std::move(Node.SubExprs[Child]);
  } else {
    size_t Want = Child - Node.SubExprs.size();
    for (Binding &B : Node.Bindings)
      if (B.Init && Want-- == 0) {
        Replacement = std::move(B.Init);
        break;
      }
  }
  if (!Replacement)
    return {};
  *Slots[Index] = std::move(Replacement);
  return Clone.str();
}

/// Clones \p Ast and replaces slot \p Index with a scalar literal.
std::string literalize(const Program &Ast, size_t Index, unsigned Which) {
  Program Clone = Ast.clone();
  std::vector<ExprPtr *> Slots;
  collectSlots(Clone, Slots);
  SourceLoc Loc = (*Slots[Index])->Loc;
  switch (Which) {
  case 0:
    *Slots[Index] = makeLitInt(0, Loc);
    break;
  case 1:
    *Slots[Index] = makeLitBool(true, Loc);
    break;
  default:
    *Slots[Index] = makeLitFloat(0.0, Loc);
    break;
  }
  return Clone.str();
}

} // namespace

std::string grift::fuzz::shrinkSource(const std::string &Source,
                                      const SourcePredicate &StillFails,
                                      unsigned MaxAttempts,
                                      ShrinkStats *Stats) {
  ShrinkStats Local;
  ShrinkStats &S = Stats ? *Stats : Local;
  if (!StillFails(Source))
    return Source;

  Grift G; // parser + printer host; candidates are judged as text
  std::string Current = Source;
  bool Progress = true;
  while (Progress && S.Attempts < MaxAttempts) {
    Progress = false;
    ++S.Rounds;
    std::string Errors;
    auto Ast = G.parse(Current, Errors);
    if (!Ast)
      break; // predicate accepted text the parser rejects; stop here

    // Accepting only strictly smaller candidates guarantees termination.
    auto accept = [&](const std::string &Text) {
      if (Text.empty() || Text.size() >= Current.size())
        return false;
      ++S.Attempts;
      if (!StillFails(Text))
        return false;
      ++S.Accepted;
      Current = Text;
      Progress = true;
      return true;
    };

    // 1) Drop whole top-level defines / statements.
    for (size_t I = 0; I != Ast->Defines.size(); ++I) {
      if (Ast->Defines.size() == 1)
        break;
      Program Cand = Ast->clone();
      Cand.Defines.erase(Cand.Defines.begin() + static_cast<long>(I));
      if (accept(Cand.str()))
        break;
      if (S.Attempts >= MaxAttempts)
        break;
    }
    if (Progress || S.Attempts >= MaxAttempts)
      continue;

    // 2) Hoist children over their parents (inlines let bodies and
    //    initializers, flattens begin, picks an if branch, unwraps
    //    casts), then 3) collapse subtrees to literals.
    size_t NumSlots;
    {
      std::vector<ExprPtr *> Slots;
      collectSlots(*Ast, Slots);
      NumSlots = Slots.size();
    }
    for (size_t Slot = 0; Slot != NumSlots && !Progress; ++Slot) {
      size_t Children = childCount(*Ast, Slot);
      for (size_t Child = 0; Child != Children && !Progress; ++Child) {
        if (S.Attempts >= MaxAttempts)
          break;
        accept(hoistChild(*Ast, Slot, Child));
      }
      for (unsigned Which = 0; Which != 3 && !Progress; ++Which) {
        if (S.Attempts >= MaxAttempts)
          break;
        accept(literalize(*Ast, Slot, Which));
      }
    }
  }
  return Current;
}
