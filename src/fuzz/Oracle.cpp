#include "fuzz/Oracle.h"

#include "fuzz/FuzzGen.h"
#include "grift/Grift.h"
#include "lattice/Lattice.h"
#include "refinterp/RefInterp.h"

#include <vector>

using namespace grift;
using namespace grift::fuzz;

OracleOptions::OracleOptions() {
  Limits.MaxSteps = 20000000;
  Limits.MaxFrames = 4000; // inside the refinterp's native-stack cap
  Limits.MaxWallNanos = 20ll * 1000000000;
}

namespace {

/// An execution engine in the differential set: the reference
/// interpreter (the oracle), or the VM under one registered cast
/// backend. Engines are derived from the shared mode registry
/// (AllCastModes / GradualCastModes in runtime/Mode.h), so registering
/// a new backend automatically enrolls it in every oracle — the suites
/// are N-way, not hard-coded 4-way.
struct Engine {
  bool IsRef = false;
  bool NoNursery = false; ///< run the VM with the nursery disabled
  CastMode Mode = CastMode::Coercions; // meaningful when !IsRef
};

constexpr Engine RefEngine{true, false, CastMode::Coercions};
constexpr Engine vmEngine(CastMode Mode) { return {false, false, Mode}; }
constexpr Engine vmEngineNoNursery(CastMode Mode) {
  return {false, true, Mode};
}

std::string engineName(Engine E) {
  if (E.IsRef)
    return "refinterp";
  std::string Name = std::string("vm/") + castModeName(E.Mode);
  if (E.NoNursery)
    Name += "/nonursery";
  return Name;
}

/// Every gradual VM backend — twice when the GC differential is on: the
/// generational and the pre-generational collector must be
/// observationally identical, so the nursery-off twin joins the N-way
/// agreement set as one more engine.
std::vector<Engine> vmEngines(const OracleOptions &Opts) {
  std::vector<Engine> Engines;
  Engines.reserve(2 * NumGradualCastModes);
  for (CastMode Mode : GradualCastModes) {
    Engines.push_back(vmEngine(Mode));
    if (Opts.GCDifferential)
      Engines.push_back(vmEngineNoNursery(Mode));
  }
  return Engines;
}

/// The engines every gradually typed configuration must agree across:
/// the reference interpreter plus every gradual VM backend (and its
/// nursery-off twin under --gc-differential).
std::vector<Engine> dynamicEngines(const OracleOptions &Opts) {
  std::vector<Engine> Engines = vmEngines(Opts);
  Engines.insert(Engines.begin(), RefEngine);
  return Engines;
}

struct Outcome {
  bool Compiled = false;
  bool OK = false;
  std::string Text; ///< "result|output" when OK
  ErrorKind Kind = ErrorKind::Trap;
  std::string Label;
  std::string Message;

  /// Comparison key. Error *messages* legitimately differ between the
  /// coercion and type-based runtimes; the observable contract is the
  /// success text or the (kind, blame label) pair.
  std::string canonical() const {
    if (!Compiled)
      return "compile-error";
    if (OK)
      return "ok: " + Text;
    if (Kind == ErrorKind::Blame)
      return "blame@" + Label;
    return std::string("error: ") + errorKindName(Kind);
  }
};

Outcome runEngine(Grift &G, const Program &Ast, Engine E,
                  const OracleOptions &Opts) {
  std::string Errors;
  Outcome O;
  if (E.IsRef) {
    auto Core = G.check(Ast, Errors);
    if (!Core) {
      O.Message = Errors;
      return O;
    }
    refinterp::RefResult R = refinterp::interpret(G.types(), G.coercions(),
                                                  *Core, "", Opts.Limits);
    O.Compiled = true;
    O.OK = R.OK;
    if (R.OK)
      O.Text = R.ResultText + "|" + R.Output;
    O.Kind = R.Kind;
    O.Label = R.Label;
    O.Message = R.Message;
    return O;
  }
  auto Exe = G.compileAst(Ast, E.Mode, Errors);
  if (!Exe) {
    O.Message = Errors;
    return O;
  }
  RunLimits Limits = Opts.Limits;
  if (E.NoNursery)
    Limits.GCNurseryBytes = 0;
  // A fresh injector per run keeps torture schedules deterministic and
  // independent across the N engines.
  FaultInjector Injector;
  Injector.GCTorturePeriod = Opts.GCTorturePeriod;
  Injector.MinorGCTorturePeriod = Opts.MinorGCTorturePeriod;
  bool Tortured = Opts.GCTorturePeriod || Opts.MinorGCTorturePeriod;
  RunResult R = Exe->run("", Limits, Tortured ? &Injector : nullptr);
  O.Compiled = true;
  O.OK = R.OK;
  if (R.OK)
    O.Text = R.ResultText + "|" + R.Output;
  O.Kind = R.Error.Kind;
  O.Label = R.Error.Label;
  O.Message = R.Error.Message;
  return O;
}

std::string describe(Engine E, const Outcome &O) {
  std::string Out = std::string(engineName(E)) + ": " + O.canonical();
  if (!O.Message.empty() && !O.OK)
    Out += " (" + O.Message + ")";
  return Out;
}

/// All sampled configurations of \p Ast: fine-grained precision bins
/// plus the module-level (coarse) lattice.
std::vector<Configuration> sampleConfigs(const Program &Ast, Grift &G,
                                         const OracleOptions &Opts,
                                         uint64_t SampleSeed) {
  std::vector<Configuration> Configs =
      sampleFineGrained(Ast, G.types(), Opts.Bins, Opts.PerBin, SampleSeed);
  std::vector<Configuration> Coarse = coarseConfigs(
      Ast, G.types(), Opts.CoarseMax, SampleSeed ^ 0x51ED270C0A5E5EEDull);
  for (Configuration &C : Coarse)
    Configs.push_back(std::move(C));
  return Configs;
}

/// Finds the Ascribe node whose source location is \p Site.
Expr *findAscribeAt(Expr &E, const std::string &Site) {
  if (E.Kind == ExprKind::Ascribe && E.Loc.str() == Site)
    return &E;
  for (Binding &B : E.Bindings)
    if (B.Init)
      if (Expr *Found = findAscribeAt(*B.Init, Site))
        return Found;
  for (ExprPtr &Sub : E.SubExprs)
    if (Expr *Found = findAscribeAt(*Sub, Site))
      return Found;
  return nullptr;
}

Expr *findAscribeAt(Program &Prog, const std::string &Site) {
  for (Define &D : Prog.Defines)
    if (Expr *Found = findAscribeAt(*D.Body, Site))
      return Found;
  return nullptr;
}

OracleFailure makeFailure(OracleKind Oracle, RecheckKind Recheck,
                          uint64_t Seed, uint64_t SampleSeed,
                          std::string Source, std::string Baseline,
                          std::string What, std::string Expected,
                          std::string Actual) {
  OracleFailure F;
  F.Oracle = Oracle;
  F.Recheck = Recheck;
  F.Seed = Seed;
  F.SampleSeed = SampleSeed;
  F.Source = std::move(Source);
  F.Baseline = std::move(Baseline);
  F.What = std::move(What);
  F.Expected = std::move(Expected);
  F.Actual = std::move(Actual);
  return F;
}

} // namespace

//===----------------------------------------------------------------------===//
// Lattice gradual-guarantee oracle
//===----------------------------------------------------------------------===//

std::optional<OracleFailure> grift::fuzz::checkLattice(
    uint64_t Seed, const OracleOptions &Opts) {
  Grift G;
  RNG Gen(Seed);
  GenOptions GO;
  GO.Structural = true;
  GO.AllowDyn = false; // fully typed: a valid lattice top, Static-compatible
  GO.FloatBias = Gen.flip(0.25);
  ProgramGen PG(G.types(), Gen, GO);
  std::string Source = PG.program();
  uint64_t SampleSeed = Gen.next();

  std::string Errors;
  auto Ast = G.parse(Source, Errors);
  if (!Ast)
    return makeFailure(OracleKind::Lattice, RecheckKind::EnginesDisagree,
                       Seed, SampleSeed, Source, Source,
                       "generator emitted an unparseable program",
                       "parse success", Errors);

  // The fully typed top element: reference interpreter, every gradual
  // VM mode, and — uniquely here — static mode must all agree.
  Outcome Base = runEngine(G, *Ast, RefEngine, Opts);
  if (!Base.Compiled || !Base.OK)
    return makeFailure(OracleKind::Lattice, RecheckKind::EnginesDisagree,
                       Seed, SampleSeed, Source, Source,
                       "fully typed program failed on the reference "
                       "interpreter (generator contract: it never fails)",
                       "ok", describe(RefEngine, Base));
  std::vector<Engine> TopEngines;
  for (CastMode Mode : AllCastModes) {
    TopEngines.push_back(vmEngine(Mode));
    if (Opts.GCDifferential)
      TopEngines.push_back(vmEngineNoNursery(Mode));
  }
  for (Engine E : TopEngines) {
    Outcome O = runEngine(G, *Ast, E, Opts);
    if (O.canonical() != Base.canonical())
      return makeFailure(OracleKind::Lattice, RecheckKind::EnginesDisagree,
                         Seed, SampleSeed, Source, Source,
                         std::string("fully typed program: ") +
                             engineName(E) + " disagrees with refinterp",
                         describe(RefEngine, Base), describe(E, O));
  }

  // Every sampled configuration must produce the identical answer in
  // every engine — the dynamic gradual guarantee for programs that
  // cannot fail.
  for (const Configuration &C : sampleConfigs(*Ast, G, Opts, SampleSeed)) {
    Outcome Ref = runEngine(G, C.Prog, RefEngine, Opts);
    for (Engine E : vmEngines(Opts)) {
      Outcome O = runEngine(G, C.Prog, E, Opts);
      if (O.canonical() != Ref.canonical())
        return makeFailure(
            OracleKind::Lattice, RecheckKind::EnginesDisagree, Seed,
            SampleSeed, C.Prog.str(), Source,
            std::string("configuration (precision ") +
                std::to_string(C.Precision) + "): " + engineName(E) +
                " disagrees with refinterp",
            describe(RefEngine, Ref), describe(E, O));
    }
    if (Ref.canonical() != Base.canonical())
      return makeFailure(
          OracleKind::Lattice, RecheckKind::LatticeGuarantee, Seed,
          SampleSeed, Source, Source,
          std::string("gradual guarantee violated: configuration "
                      "(precision ") +
              std::to_string(C.Precision) +
              ") changes the program's answer\nconfiguration:\n" +
              C.Prog.str(),
          Base.canonical(), Ref.canonical());
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Blame-differential oracle
//===----------------------------------------------------------------------===//

std::optional<OracleFailure> grift::fuzz::checkBlame(
    uint64_t Seed, const OracleOptions &Opts) {
  Grift G;
  RNG Gen(Seed);
  GenOptions GO;
  GO.Structural = true;
  GO.PlantFailure = true;
  GO.FloatBias = Gen.flip(0.25);
  ProgramGen PG(G.types(), Gen, GO);
  std::string Source = PG.program();
  uint64_t SampleSeed = Gen.next();

  SourceLoc Site = PG.plantedSite();
  if (!Site.isValid())
    return makeFailure(OracleKind::Blame, RecheckKind::BlameContract, Seed,
                       SampleSeed, Source, Source,
                       "generator failed to plant a locatable cast",
                       "one unique planted ascription", "none/ambiguous");
  std::string Predicted = Site.str();

  std::string Errors;
  auto Ast = G.parse(Source, Errors);
  if (!Ast)
    return makeFailure(OracleKind::Blame, RecheckKind::BlameContract, Seed,
                       SampleSeed, Source, Source,
                       "generator emitted an unparseable program",
                       "parse success", Errors);

  // The planted cast sits at a guaranteed-evaluated site: every engine
  // must blame with exactly the predicted line:col label.
  for (Engine E : dynamicEngines(Opts)) {
    Outcome O = runEngine(G, *Ast, E, Opts);
    if (!O.Compiled || O.OK || O.Kind != ErrorKind::Blame ||
        O.Label != Predicted)
      return makeFailure(OracleKind::Blame, RecheckKind::BlameContract, Seed,
                         SampleSeed, Source, Source,
                         std::string(engineName(E)) +
                             " did not report the planted blame",
                         "blame@" + Predicted, describe(E, O));
  }

  // Less-precise configurations either succeed or blame the same site —
  // never a different label, never a different ErrorKind — and every
  // engine agrees on which. That contract only holds if the planted
  // ascription itself keeps its annotation: erasing it would let the
  // ill-typed value escape and get blamed at whatever downstream
  // consumer first re-checks it (legal gradual-typing behaviour, not an
  // engine bug). So the planted slot is pinned: the samplers vary the
  // precision of everything else, and we restore the planted annotation
  // in every configuration before running it.
  const Expr *PlantedNode = findAscribeAt(*Ast, Predicted);
  if (!PlantedNode)
    return makeFailure(OracleKind::Blame, RecheckKind::BlameContract, Seed,
                       SampleSeed, Source, Source,
                       "predicted site does not parse to an ascription",
                       "ascribe node at " + Predicted, "none");
  const Type *PlantedAnnot = PlantedNode->Annot;
  std::vector<Configuration> Configs =
      sampleConfigs(*Ast, G, Opts, SampleSeed);
  for (Configuration &C : Configs)
    if (Expr *Node = findAscribeAt(C.Prog, Predicted))
      Node->Annot = PlantedAnnot;
  for (const Configuration &C : Configs) {
    Outcome Ref = runEngine(G, C.Prog, RefEngine, Opts);
    for (Engine E : vmEngines(Opts)) {
      Outcome O = runEngine(G, C.Prog, E, Opts);
      if (O.canonical() != Ref.canonical())
        return makeFailure(
            OracleKind::Blame, RecheckKind::EnginesDisagree, Seed,
            SampleSeed, C.Prog.str(), Source,
            std::string("configuration (precision ") +
                std::to_string(C.Precision) + "): " + engineName(E) +
                " disagrees with refinterp",
            describe(RefEngine, Ref), describe(E, O));
    }
    bool OKOutcome = Ref.Compiled && Ref.OK;
    bool SameBlame = Ref.Compiled && !Ref.OK &&
                     Ref.Kind == ErrorKind::Blame && Ref.Label == Predicted;
    if (!OKOutcome && !SameBlame)
      return makeFailure(
          OracleKind::Blame, RecheckKind::BlameContract, Seed, SampleSeed,
          C.Prog.str(), Source,
          std::string("configuration (precision ") +
              std::to_string(C.Precision) +
              ") neither succeeds nor blames the planted site",
          "ok, or blame@" + Predicted, describe(RefEngine, Ref));
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Shrinking and artifacts
//===----------------------------------------------------------------------===//

bool grift::fuzz::recheckFails(const OracleFailure &Failure,
                               const std::string &Source,
                               const OracleOptions &Opts) {
  Grift G;
  std::string Errors;
  auto Ast = G.parse(Source, Errors);
  if (!Ast)
    return false;

  std::vector<Outcome> Outcomes;
  for (Engine E : dynamicEngines(Opts))
    Outcomes.push_back(runEngine(G, *Ast, E, Opts));
  size_t N = Outcomes.size();
  // Shrink mutations never introduce Dyn, so a candidate derived from a
  // pure-typed baseline stays Static-compatible; include static mode in
  // the disagreement check whenever it compiles.
  Outcome Static =
      runEngine(G, *Ast, vmEngine(CastMode::Static), Opts);

  auto anyDisagreement = [&] {
    for (size_t I = 1; I != N; ++I)
      if (Outcomes[I].canonical() != Outcomes[0].canonical())
        return true;
    if (Static.Compiled && Static.canonical() != Outcomes[0].canonical())
      return true;
    return false;
  };

  switch (Failure.Recheck) {
  case RecheckKind::EnginesDisagree:
    return anyDisagreement();

  case RecheckKind::LatticeGuarantee: {
    if (anyDisagreement())
      return true; // a sharper failure than the original; keep it
    if (!Outcomes[0].Compiled || !Outcomes[0].OK)
      return false;
    for (const Configuration &C :
         sampleConfigs(*Ast, G, Opts, Failure.SampleSeed)) {
      Outcome Ref = runEngine(G, C.Prog, RefEngine, Opts);
      Outcome Co =
          runEngine(G, C.Prog, vmEngine(CastMode::Coercions), Opts);
      if (Ref.canonical() != Outcomes[0].canonical() ||
          Co.canonical() != Outcomes[0].canonical())
        return true;
    }
    return false;
  }

  case RecheckKind::BlameContract: {
    SourceLoc Site = findPlantedCast(Source);
    if (!Site.isValid())
      return false; // the planted cast was shrunk away: uninteresting
    std::string Predicted = Site.str();
    if (anyDisagreement())
      return true;
    for (size_t I = 0; I != N; ++I) {
      const Outcome &O = Outcomes[I];
      if (!O.Compiled)
        return false;
      if (!O.OK && O.Kind != ErrorKind::Blame)
        return true; // wrong ErrorKind
      if (!O.OK && O.Label != Predicted)
        return true; // wrong blame label
    }
    return false;
  }
  }
  return false;
}

std::string grift::fuzz::shrinkFailure(const OracleFailure &Failure,
                                       const OracleOptions &Opts,
                                       ShrinkStats *Stats) {
  return shrinkSource(
      Failure.Source,
      [&](const std::string &Candidate) {
        return recheckFails(Failure, Candidate, Opts);
      },
      Opts.ShrinkAttempts, Stats);
}

std::string grift::fuzz::reproText(const OracleFailure &Failure,
                                   const std::string &Shrunk) {
  std::string Out;
  Out += "griftfuzz repro\n";
  Out += std::string("oracle: ") + oracleKindName(Failure.Oracle) + "\n";
  Out += "seed: " + std::to_string(Failure.Seed) + "\n";
  Out += "sample-seed: " + std::to_string(Failure.SampleSeed) + "\n";
  Out += "what: " + Failure.What + "\n";
  Out += "expected: " + Failure.Expected + "\n";
  Out += "actual: " + Failure.Actual + "\n";
  Out += std::string("rerun: griftfuzz --oracle=") +
         oracleKindName(Failure.Oracle) +
         " --seed=" + std::to_string(Failure.Seed) + " --iters=1\n";
  Out += "--- fully typed baseline ---\n" + Failure.Baseline;
  if (Failure.Source != Failure.Baseline)
    Out += "--- failing source ---\n" + Failure.Source;
  Out += "--- shrunk repro ---\n" + Shrunk;
  if (!Shrunk.empty() && Shrunk.back() != '\n')
    Out += "\n";
  return Out;
}
