//===----------------------------------------------------------------------===//
///
/// \file
/// The public Grift API. Typical use:
///
/// \code
///   grift::Grift G;
///   std::string Errors;
///   auto Exe = G.compile("(+ 1 41)", grift::CastMode::Coercions, Errors);
///   if (!Exe) { /* report Errors */ }
///   grift::RunResult R = Exe->run();
///   // R.ResultText == "42"
/// \endcode
///
/// A Grift instance owns the type and coercion contexts shared by every
/// program it compiles; Executables remain valid as long as their Grift
/// lives.
///
/// Thread-safety / affinity rules:
///
///   * A Grift instance and every Executable it produced form one
///     affinity group: the interned TypeContext and CoercionFactory are
///     mutated by compilation *and* by runtime casts, with no internal
///     locking. All compile() and run() calls of one group must happen
///     on one thread at a time.
///   * The supported concurrency model is engine-per-thread: either a
///     plain "one Grift per thread", or a service::EnginePool slot that
///     owns the engine and hands it to exactly one worker thread.
///   * bindToCurrentThread() records the owning thread; from then on,
///     debug builds assert that compile() and Executable::run() are
///     called only from that thread, turning a silent data race into an
///     immediate failure. The pool binds each slot's engine to the
///     worker that leases it. Release builds keep the bookkeeping but
///     skip the assert.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_GRIFT_GRIFT_H
#define GRIFT_GRIFT_GRIFT_H

#include "ast/Ast.h"
#include "coercions/CoercionFactory.h"
#include "frontend/CoreIR.h"
#include "runtime/FaultInjector.h"
#include "runtime/Limits.h"
#include "runtime/Mode.h"
#include "types/TypeContext.h"
#include "vm/Bytecode.h"
#include "vm/VM.h"

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

namespace grift {

class Grift;

/// A compiled GTLC+ program, bound to the Grift that created it.
class Executable {
public:
  /// Runs the program on a fresh heap. \p Input feeds read-int/read-char.
  /// \p Limits imposes resource budgets (default: unlimited); exhausting
  /// one returns a RunResult whose Error carries the matching resource
  /// ErrorKind. \p Injector optionally attaches a deterministic fault
  /// injector (GC torture / scheduled allocation failure) to the run's
  /// heap. run() never throws and never terminates the process; the
  /// owning Grift stays usable after any failure.
  RunResult run(std::string Input = "", const RunLimits &Limits = {},
                FaultInjector *Injector = nullptr) const;

  /// The compiled bytecode (inspection, tests).
  const VMProgram &program() const { return Prog; }

  CastMode mode() const { return Prog.Mode; }

private:
  friend class Grift;
  Executable(Grift &Owner, VMProgram Prog)
      : Owner(&Owner), Prog(std::move(Prog)) {}

  Grift *Owner;
  VMProgram Prog;
};

/// The compiler entry point.
class Grift {
public:
  Grift() : Coercions(Types) {}
  Grift(const Grift &) = delete;
  Grift &operator=(const Grift &) = delete;

  /// Parses GTLC+ source into a surface AST (used by the configuration
  /// sampler). On failure returns nullopt and appends to \p Errors.
  std::optional<Program> parse(std::string_view Source, std::string &Errors);

  /// Type checks and cast-inserts a surface program.
  std::optional<core::CoreProgram> check(const Program &Ast,
                                         std::string &Errors);

  /// Compiles source text end to end for \p Mode. \p Optimize enables
  /// the optional core-IR optimizer (OFF by default, matching the
  /// paper's "no general-purpose optimizations" baseline). \p Fuse
  /// controls the bytecode superinstruction pass (ON by default;
  /// disabling it produces the unfused expansion the differential tests
  /// compare against).
  std::optional<Executable> compile(std::string_view Source, CastMode Mode,
                                    std::string &Errors,
                                    bool Optimize = false, bool Fuse = true);

  /// Compiles an already-parsed AST for \p Mode.
  std::optional<Executable> compileAst(const Program &Ast, CastMode Mode,
                                       std::string &Errors,
                                       bool Optimize = false,
                                       bool Fuse = true);

  /// Wraps a program deserialized from the persistent store (src/store)
  /// in an Executable bound to this engine. The program must have been
  /// loaded against THIS engine's TypeContext and CoercionFactory, so
  /// every interned pointer it holds lives in this affinity group and
  /// shares the lifecycle of a freshly compiled program.
  Executable adopt(VMProgram Prog) {
    return Executable(*this, std::move(Prog));
  }

  TypeContext &types() { return Types; }
  CoercionFactory &coercions() { return Coercions; }

  /// Binds this engine (and its Executables) to the calling thread; see
  /// the affinity rules above. Rebinding is allowed — a pool slot rebinds
  /// when a different worker leases it — but only between runs.
  void bindToCurrentThread() {
    OwnerThread.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }

  /// Releases the thread binding (engine usable from any single thread).
  void unbindThread() {
    OwnerThread.store(std::thread::id(), std::memory_order_relaxed);
  }

  /// True when unbound or bound to the calling thread. Debug builds
  /// assert this on every compile() and Executable::run().
  bool ownsCurrentThread() const {
    std::thread::id Owner = OwnerThread.load(std::memory_order_relaxed);
    return Owner == std::thread::id() || Owner == std::this_thread::get_id();
  }

private:
  friend class Executable;
  TypeContext Types;
  CoercionFactory Coercions;
  /// Owning thread when bound (service::EnginePool slots bind their
  /// engine to the leasing worker); default-constructed id = unbound.
  std::atomic<std::thread::id> OwnerThread{};
};

} // namespace grift

#endif // GRIFT_GRIFT_GRIFT_H
