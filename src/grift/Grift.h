//===----------------------------------------------------------------------===//
///
/// \file
/// The public Grift API. Typical use:
///
/// \code
///   grift::Grift G;
///   std::string Errors;
///   auto Exe = G.compile("(+ 1 41)", grift::CastMode::Coercions, Errors);
///   if (!Exe) { /* report Errors */ }
///   grift::RunResult R = Exe->run();
///   // R.ResultText == "42"
/// \endcode
///
/// A Grift instance owns the type and coercion contexts shared by every
/// program it compiles; Executables remain valid as long as their Grift
/// lives. Instances are not thread-safe; use one per thread.
///
//===----------------------------------------------------------------------===//
#ifndef GRIFT_GRIFT_GRIFT_H
#define GRIFT_GRIFT_GRIFT_H

#include "ast/Ast.h"
#include "coercions/CoercionFactory.h"
#include "frontend/CoreIR.h"
#include "runtime/FaultInjector.h"
#include "runtime/Limits.h"
#include "runtime/Mode.h"
#include "types/TypeContext.h"
#include "vm/Bytecode.h"
#include "vm/VM.h"

#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace grift {

class Grift;

/// A compiled GTLC+ program, bound to the Grift that created it.
class Executable {
public:
  /// Runs the program on a fresh heap. \p Input feeds read-int/read-char.
  /// \p Limits imposes resource budgets (default: unlimited); exhausting
  /// one returns a RunResult whose Error carries the matching resource
  /// ErrorKind. \p Injector optionally attaches a deterministic fault
  /// injector (GC torture / scheduled allocation failure) to the run's
  /// heap. run() never throws and never terminates the process; the
  /// owning Grift stays usable after any failure.
  RunResult run(std::string Input = "", const RunLimits &Limits = {},
                FaultInjector *Injector = nullptr) const;

  /// The compiled bytecode (inspection, tests).
  const VMProgram &program() const { return Prog; }

  CastMode mode() const { return Prog.Mode; }

private:
  friend class Grift;
  Executable(Grift &Owner, VMProgram Prog)
      : Owner(&Owner), Prog(std::move(Prog)) {}

  Grift *Owner;
  VMProgram Prog;
};

/// The compiler entry point.
class Grift {
public:
  Grift() : Coercions(Types) {}
  Grift(const Grift &) = delete;
  Grift &operator=(const Grift &) = delete;

  /// Parses GTLC+ source into a surface AST (used by the configuration
  /// sampler). On failure returns nullopt and appends to \p Errors.
  std::optional<Program> parse(std::string_view Source, std::string &Errors);

  /// Type checks and cast-inserts a surface program.
  std::optional<core::CoreProgram> check(const Program &Ast,
                                         std::string &Errors);

  /// Compiles source text end to end for \p Mode. \p Optimize enables
  /// the optional core-IR optimizer (OFF by default, matching the
  /// paper's "no general-purpose optimizations" baseline).
  std::optional<Executable> compile(std::string_view Source, CastMode Mode,
                                    std::string &Errors,
                                    bool Optimize = false);

  /// Compiles an already-parsed AST for \p Mode.
  std::optional<Executable> compileAst(const Program &Ast, CastMode Mode,
                                       std::string &Errors,
                                       bool Optimize = false);

  TypeContext &types() { return Types; }
  CoercionFactory &coercions() { return Coercions; }

private:
  friend class Executable;
  TypeContext Types;
  CoercionFactory Coercions;
};

} // namespace grift

#endif // GRIFT_GRIFT_GRIFT_H
