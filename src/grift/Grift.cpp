#include "grift/Grift.h"

#include "frontend/Optimizer.h"
#include "frontend/Parser.h"
#include "frontend/TypeChecker.h"
#include "vm/Compiler.h"

#include <cassert>

using namespace grift;

RunResult Executable::run(std::string Input, const RunLimits &Limits,
                          FaultInjector *Injector) const {
  assert(Owner->ownsCurrentThread() &&
         "Executable run on a thread that does not own its engine "
         "(see Grift.h affinity rules)");
  Runtime RT(Owner->Types, Owner->Coercions, Prog.Mode);
  RT.heap().setFaultInjector(Injector);
  VM Machine(RT, Prog);
  return Machine.run(std::move(Input), Limits);
}

std::optional<Program> Grift::parse(std::string_view Source,
                                    std::string &Errors) {
  DiagnosticEngine Diags;
  std::optional<Program> Ast = parseProgram(Types, Source, Diags);
  if (!Ast || Diags.hasErrors()) {
    Errors += Diags.str();
    return std::nullopt;
  }
  return Ast;
}

std::optional<core::CoreProgram> Grift::check(const Program &Ast,
                                              std::string &Errors) {
  DiagnosticEngine Diags;
  std::optional<core::CoreProgram> Core = typeCheck(Types, Ast, Diags);
  if (!Core || Diags.hasErrors()) {
    Errors += Diags.str();
    return std::nullopt;
  }
  return Core;
}

std::optional<Executable> Grift::compile(std::string_view Source,
                                         CastMode Mode, std::string &Errors,
                                         bool Optimize, bool Fuse) {
  assert(ownsCurrentThread() &&
         "Grift::compile on a thread that does not own this engine "
         "(see Grift.h affinity rules)");
  std::optional<Program> Ast = parse(Source, Errors);
  if (!Ast)
    return std::nullopt;
  return compileAst(*Ast, Mode, Errors, Optimize, Fuse);
}

std::optional<Executable> Grift::compileAst(const Program &Ast, CastMode Mode,
                                            std::string &Errors,
                                            bool Optimize, bool Fuse) {
  std::optional<core::CoreProgram> Core = check(Ast, Errors);
  if (!Core)
    return std::nullopt;
  if (Optimize) {
    // To a fixed point (each pass enables the next, e.g. folded branch
    // conditions expose foldable arithmetic).
    for (unsigned Pass = 0; Pass != 8; ++Pass)
      if (optimizeCore(Types, *Core) == 0)
        break;
  }
  std::string CompileError;
  std::optional<VMProgram> Prog =
      compileProgram(*Core, Types, Coercions, Mode, CompileError, Fuse);
  if (!Prog) {
    Errors += CompileError;
    return std::nullopt;
  }
  return Executable(*this, std::move(*Prog));
}
