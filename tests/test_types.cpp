//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and property tests for the type system: interning, parsing,
/// printing, consistency, meet, precision, and equirecursive types.
///
//===----------------------------------------------------------------------===//
#include "sexp/Reader.h"
#include "support/RNG.h"
#include "types/TypeOps.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

using namespace grift;

namespace {

class TypesTest : public ::testing::Test {
protected:
  TypeContext Ctx;
  DiagnosticEngine Diags;

  const Type *parse(std::string_view Text) {
    DiagnosticEngine LocalDiags;
    auto Data = readSexps(Text, LocalDiags);
    EXPECT_FALSE(LocalDiags.hasErrors()) << LocalDiags.str();
    EXPECT_EQ(Data.size(), 1u);
    const Type *T = parseType(Ctx, Data[0], LocalDiags);
    EXPECT_TRUE(T != nullptr) << LocalDiags.str();
    return T;
  }

  const Type *parseBad(std::string_view Text) {
    DiagnosticEngine LocalDiags;
    auto Data = readSexps(Text, LocalDiags);
    EXPECT_EQ(Data.size(), 1u);
    const Type *T = parseType(Ctx, Data[0], LocalDiags);
    EXPECT_TRUE(LocalDiags.hasErrors());
    return T;
  }
};

} // namespace

TEST_F(TypesTest, AtomicSingletons) {
  EXPECT_EQ(Ctx.integer(), Ctx.integer());
  EXPECT_NE(Ctx.integer(), Ctx.boolean());
  EXPECT_TRUE(Ctx.dyn()->isDyn());
  EXPECT_TRUE(Ctx.integer()->isAtomic());
  EXPECT_FALSE(Ctx.dyn()->isAtomic());
}

TEST_F(TypesTest, InterningGivesPointerEquality) {
  const Type *F1 = Ctx.function({Ctx.integer()}, Ctx.boolean());
  const Type *F2 = Ctx.function({Ctx.integer()}, Ctx.boolean());
  EXPECT_EQ(F1, F2);
  const Type *F3 = Ctx.function({Ctx.boolean()}, Ctx.boolean());
  EXPECT_NE(F1, F3);
  EXPECT_EQ(Ctx.tuple({Ctx.integer(), Ctx.floating()}),
            Ctx.tuple({Ctx.integer(), Ctx.floating()}));
  EXPECT_EQ(Ctx.box(Ctx.integer()), Ctx.box(Ctx.integer()));
  EXPECT_NE(Ctx.box(Ctx.integer()), Ctx.vect(Ctx.integer()));
}

TEST_F(TypesTest, ParsePrintRoundTrip) {
  for (const char *Text :
       {"Int", "Bool", "Dyn", "Unit", "Char", "Float", "(Int -> Bool)",
        "(Int Int -> Int)", "(-> Int)", "(Tuple Int Float)", "(Ref Int)",
        "(Vect (Tuple Int Int))", "(Rec r0 (Tuple Int (-> r0)))",
        "((Dyn -> Bool) -> Bool)"}) {
    const Type *T = parse(Text);
    ASSERT_NE(T, nullptr);
    EXPECT_EQ(parse(T->str()), T) << Text << " printed as " << T->str();
  }
}

TEST_F(TypesTest, ParseErrors) {
  parseBad("Intx");
  parseBad("(Tuple)");
  parseBad("(Ref Int Int)");
  parseBad("(Rec x)");
  parseBad("(Weird Int)");
  parseBad("unboundvar");
}

TEST_F(TypesTest, RecAlphaEquivalence) {
  const Type *A = parse("(Rec s (Tuple Int (-> s)))");
  const Type *B = parse("(Rec t (Tuple Int (-> t)))");
  EXPECT_EQ(A, B);
}

TEST_F(TypesTest, RecNormalization) {
  // (Rec x Dyn) = Dyn; (Rec x Int) = Int; (Rec x x) = Dyn.
  EXPECT_EQ(Ctx.rec(Ctx.dyn()), Ctx.dyn());
  EXPECT_EQ(Ctx.rec(Ctx.integer()), Ctx.integer());
  EXPECT_EQ(Ctx.rec(Ctx.var(0)), Ctx.dyn());
}

TEST_F(TypesTest, UnfoldSubstitutes) {
  const Type *Stream = parse("(Rec s (Tuple Int (-> s)))");
  const Type *Unfolded = Ctx.unfold(Stream);
  ASSERT_TRUE(Unfolded->isTuple());
  EXPECT_EQ(Unfolded->element(0), Ctx.integer());
  const Type *Thunk = Unfolded->element(1);
  ASSERT_TRUE(Thunk->isFunction());
  EXPECT_EQ(Thunk->result(), Stream);
  // Unfolding is memoized and deterministic.
  EXPECT_EQ(Ctx.unfold(Stream), Unfolded);
}

TEST_F(TypesTest, ConsistencyBasics) {
  const Type *I = Ctx.integer();
  const Type *B = Ctx.boolean();
  const Type *D = Ctx.dyn();
  EXPECT_TRUE(consistent(Ctx, I, I));
  EXPECT_TRUE(consistent(Ctx, I, D));
  EXPECT_TRUE(consistent(Ctx, D, I));
  EXPECT_FALSE(consistent(Ctx, I, B));
  EXPECT_FALSE(consistent(Ctx, I, Ctx.floating()));
}

TEST_F(TypesTest, ConsistencyStructural) {
  const Type *F1 = parse("(Int -> Bool)");
  const Type *F2 = parse("(Dyn -> Bool)");
  const Type *F3 = parse("(Bool -> Bool)");
  EXPECT_TRUE(consistent(Ctx, F1, F2));
  EXPECT_FALSE(consistent(Ctx, F1, F3));
  EXPECT_FALSE(consistent(Ctx, F1, parse("(Int Int -> Bool)")));
  EXPECT_FALSE(consistent(Ctx, F1, Ctx.integer()));
  EXPECT_TRUE(consistent(Ctx, parse("(Ref Dyn)"), parse("(Ref Int)")));
  EXPECT_FALSE(consistent(Ctx, parse("(Ref Int)"), parse("(Vect Int)")));
  EXPECT_TRUE(
      consistent(Ctx, parse("(Tuple Int Dyn)"), parse("(Tuple Dyn Bool)")));
  EXPECT_FALSE(
      consistent(Ctx, parse("(Tuple Int Int)"), parse("(Tuple Int)")));
}

TEST_F(TypesTest, ConsistencyEquirecursive) {
  const Type *S = parse("(Rec s (Tuple Int (-> s)))");
  // A recursive type is consistent with its own unfolding.
  EXPECT_TRUE(consistent(Ctx, S, Ctx.unfold(S)));
  // And with a less precise variant.
  const Type *SDyn = parse("(Rec s (Tuple Dyn (-> s)))");
  EXPECT_TRUE(consistent(Ctx, S, SDyn));
  // But not with a clashing one.
  const Type *SBool = parse("(Rec s (Tuple Bool (-> s)))");
  EXPECT_FALSE(consistent(Ctx, S, SBool));
}

TEST_F(TypesTest, MeetBasics) {
  const Type *I = Ctx.integer();
  const Type *D = Ctx.dyn();
  EXPECT_EQ(meet(Ctx, I, D), I);
  EXPECT_EQ(meet(Ctx, D, I), I);
  EXPECT_EQ(meet(Ctx, D, D), D);
  EXPECT_EQ(meet(Ctx, I, I), I);
  EXPECT_EQ(meet(Ctx, I, Ctx.boolean()), nullptr);
}

TEST_F(TypesTest, MeetStructural) {
  const Type *A = parse("(Int -> Dyn)");
  const Type *B = parse("(Dyn -> Bool)");
  EXPECT_EQ(meet(Ctx, A, B), parse("(Int -> Bool)"));
  EXPECT_EQ(meet(Ctx, parse("(Tuple Dyn Int)"), parse("(Tuple Bool Dyn)")),
            parse("(Tuple Bool Int)"));
  EXPECT_EQ(meet(Ctx, parse("(Ref Dyn)"), parse("(Ref Int)")),
            parse("(Ref Int)"));
  EXPECT_EQ(meet(Ctx, parse("(Int -> Int)"), parse("(Bool -> Int)")),
            nullptr);
}

TEST_F(TypesTest, MeetEquirecursive) {
  const Type *S = parse("(Rec s (Tuple Int (-> s)))");
  const Type *SDyn = parse("(Rec s (Tuple Dyn (-> s)))");
  const Type *M = meet(Ctx, S, SDyn);
  ASSERT_NE(M, nullptr);
  // The meet of a recursive type with a less precise version is the type.
  EXPECT_TRUE(consistent(Ctx, M, S));
  EXPECT_TRUE(lessPrecise(Ctx, SDyn, M));
  // Meeting with its own unfolding is consistent too.
  EXPECT_NE(meet(Ctx, S, Ctx.unfold(S)), nullptr);
}

TEST_F(TypesTest, PrecisionMetric) {
  EXPECT_DOUBLE_EQ(precision(Ctx.dyn()), 0.0);
  EXPECT_DOUBLE_EQ(precision(Ctx.integer()), 1.0);
  // (Int -> Dyn): 3 nodes, 2 typed.
  EXPECT_DOUBLE_EQ(precision(parse("(Int -> Dyn)")), 2.0 / 3.0);
}

TEST_F(TypesTest, NodeCounts) {
  const Type *T = parse("(Tuple Int (Ref Dyn))");
  EXPECT_EQ(T->nodeCount(), 4u);
  EXPECT_EQ(T->typedNodeCount(), 3u);
  EXPECT_EQ(T->height(), 3u);
}

TEST_F(TypesTest, StaticAndDynFlags) {
  EXPECT_TRUE(parse("(Int -> Bool)")->isStatic());
  EXPECT_FALSE(parse("(Int -> Dyn)")->isStatic());
  EXPECT_TRUE(parse("(Int -> Dyn)")->hasDyn());
  EXPECT_TRUE(parse("(Rec s (-> s))")->hasRec());
  EXPECT_FALSE(parse("(Int -> Bool)")->hasRec());
}

TEST_F(TypesTest, LessPrecise) {
  EXPECT_TRUE(lessPrecise(Ctx, Ctx.dyn(), parse("(Int -> Bool)")));
  EXPECT_TRUE(lessPrecise(Ctx, parse("(Dyn -> Bool)"), parse("(Int -> Bool)")));
  EXPECT_FALSE(
      lessPrecise(Ctx, parse("(Int -> Bool)"), parse("(Dyn -> Bool)")));
  EXPECT_FALSE(lessPrecise(Ctx, Ctx.integer(), Ctx.boolean()));
  EXPECT_TRUE(lessPrecise(Ctx, parse("(Rec s (Tuple Dyn (-> s)))"),
                          parse("(Rec s (Tuple Int (-> s)))")));
}

// Property sweep: random type pairs keep the algebraic laws of Figure 17.
namespace {

const Type *randomType(TypeContext &Ctx, RNG &Gen, unsigned Depth) {
  unsigned Choice = Gen.below(Depth == 0 ? 6 : 10);
  switch (Choice) {
  case 0:
    return Ctx.dyn();
  case 1:
    return Ctx.integer();
  case 2:
    return Ctx.boolean();
  case 3:
    return Ctx.floating();
  case 4:
    return Ctx.unit();
  case 5:
    return Ctx.character();
  case 6: {
    std::vector<const Type *> Params;
    unsigned NumParams = Gen.below(3);
    for (unsigned I = 0; I != NumParams; ++I)
      Params.push_back(randomType(Ctx, Gen, Depth - 1));
    return Ctx.function(std::move(Params), randomType(Ctx, Gen, Depth - 1));
  }
  case 7: {
    std::vector<const Type *> Elements;
    unsigned NumElements = 1 + Gen.below(3);
    for (unsigned I = 0; I != NumElements; ++I)
      Elements.push_back(randomType(Ctx, Gen, Depth - 1));
    return Ctx.tuple(std::move(Elements));
  }
  case 8:
    return Ctx.box(randomType(Ctx, Gen, Depth - 1));
  default:
    return Ctx.vect(randomType(Ctx, Gen, Depth - 1));
  }
}

} // namespace

class TypeLawsTest : public ::testing::TestWithParam<int> {};

TEST_P(TypeLawsTest, ConsistencyAndMeetLaws) {
  TypeContext Ctx;
  RNG Gen(GetParam() * 7919 + 13);
  for (int Iter = 0; Iter != 200; ++Iter) {
    const Type *A = randomType(Ctx, Gen, 3);
    const Type *B = randomType(Ctx, Gen, 3);
    // Consistency is reflexive and symmetric.
    EXPECT_TRUE(consistent(Ctx, A, A));
    EXPECT_EQ(consistent(Ctx, A, B), consistent(Ctx, B, A));
    const Type *M = meet(Ctx, A, B);
    EXPECT_EQ(M != nullptr, consistent(Ctx, A, B));
    if (M) {
      // The meet is at least as precise as both inputs and consistent
      // with them; meet is commutative.
      EXPECT_TRUE(lessPrecise(Ctx, A, M));
      EXPECT_TRUE(lessPrecise(Ctx, B, M));
      EXPECT_TRUE(consistent(Ctx, A, M));
      EXPECT_EQ(M, meet(Ctx, B, A));
      // Meet is idempotent on its result.
      EXPECT_EQ(meet(Ctx, M, M), M);
    }
    // Dyn is the unit of meet.
    EXPECT_EQ(meet(Ctx, A, Ctx.dyn()), A);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, TypeLawsTest,
                         ::testing::Range(0, 8));
