//===----------------------------------------------------------------------===//
///
/// \file
/// Printer fidelity: parsing a program, printing it, and reparsing must
/// preserve semantics — checked end to end on every benchmark and on the
/// sampled configurations the lattice harness serializes. Also covers
/// type printing of tricky shapes (nested μ binders) and core-IR
/// rendering.
///
//===----------------------------------------------------------------------===//
#include "bench_programs/Benchmarks.h"
#include "grift/Grift.h"
#include "lattice/Lattice.h"
#include "sexp/Reader.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

using namespace grift;

namespace {
class PrinterBenchmarks : public ::testing::TestWithParam<int> {};
} // namespace

TEST_P(PrinterBenchmarks, ParsePrintReparseRunsIdentically) {
  const BenchProgram &B = allBenchmarks()[GetParam()];
  Grift G;
  std::string Errors;
  auto Ast = G.parse(B.Source, Errors);
  ASSERT_TRUE(Ast.has_value()) << Errors;

  std::string Printed = Ast->str();
  auto Reparsed = G.parse(Printed, Errors);
  ASSERT_TRUE(Reparsed.has_value())
      << Errors << "\nprinted program:\n" << Printed;
  // Printing is a fixpoint after one round.
  EXPECT_EQ(Reparsed->str(), Printed);

  auto Exe = G.compileAst(*Reparsed, CastMode::Coercions, Errors);
  ASSERT_TRUE(Exe.has_value()) << Errors;
  RunResult R = Exe->run(B.TestInput);
  ASSERT_TRUE(R.OK) << R.Error.str();
  EXPECT_EQ(R.Output, B.TestOutput);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, PrinterBenchmarks,
                         ::testing::Range(0, 8), [](const auto &Info) {
                           std::string Name =
                               allBenchmarks()[Info.param].Name;
                           for (char &C : Name)
                             if (C == '-')
                               C = '_';
                           return Name;
                         });

TEST(PrinterConfigs, SampledConfigurationsSurviveRoundTrip) {
  // The lattice tooling serializes configurations; the printed form must
  // mean the same program.
  const BenchProgram &B = getBenchmark("quicksort");
  Grift G;
  std::string Errors;
  auto Ast = G.parse(B.Source, Errors);
  ASSERT_TRUE(Ast.has_value()) << Errors;
  auto Configs = sampleFineGrained(*Ast, G.types(), 3, 1, 0x9A9A);
  for (const Configuration &C : Configs) {
    auto Reparsed = G.parse(C.Prog.str(), Errors);
    ASSERT_TRUE(Reparsed.has_value()) << Errors;
    EXPECT_NEAR(programPrecision(*Reparsed), C.Precision, 1e-9);
    auto Exe = G.compileAst(*Reparsed, CastMode::Coercions, Errors);
    ASSERT_TRUE(Exe.has_value()) << Errors;
    RunResult R = Exe->run(B.TestInput);
    ASSERT_TRUE(R.OK) << R.Error.str();
    EXPECT_EQ(R.Output, B.TestOutput);
  }
}

namespace {

const Type *parseTy(TypeContext &Ctx, std::string_view Text) {
  DiagnosticEngine Diags;
  auto Data = readSexps(Text, Diags);
  EXPECT_EQ(Data.size(), 1u);
  const Type *T = parseType(Ctx, Data[0], Diags);
  EXPECT_NE(T, nullptr) << Diags.str();
  return T;
}

} // namespace

TEST(PrinterTypes, NestedRecBindersRoundTrip) {
  TypeContext Ctx;
  // Two nested binders with back references at both depths.
  const char *Tricky =
      "(Rec a (Tuple Int (Rec b (Tuple (-> a) (-> b) Int))))";
  const Type *T = parseTy(Ctx, Tricky);
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(parseTy(Ctx, T->str()), T);
}

TEST(PrinterTypes, ShadowedRecNamesStillParse) {
  TypeContext Ctx;
  // The same surface name at both binders: innermost wins, and the
  // printer renames apart.
  const Type *T = parseTy(Ctx, "(Rec s (Tuple Int (Rec s (-> s))))");
  ASSERT_NE(T, nullptr);
  const Type *Round = parseTy(Ctx, T->str());
  EXPECT_EQ(Round, T);
}

TEST(PrinterCore, CoreIRShowsCasts) {
  Grift G;
  std::string Errors;
  auto Ast = G.parse("(ann 1 Dyn)", Errors);
  ASSERT_TRUE(Ast.has_value()) << Errors;
  auto Core = G.check(*Ast, Errors);
  ASSERT_TRUE(Core.has_value()) << Errors;
  std::string Text = Core->str();
  EXPECT_NE(Text.find("(cast 1 Int Dyn"), std::string::npos) << Text;
}

TEST(PrinterBytecode, DisassemblyIsStable) {
  Grift G;
  std::string Errors;
  auto Exe = G.compile("(+ 1 2)", CastMode::Coercions, Errors);
  ASSERT_TRUE(Exe.has_value()) << Errors;
  std::string Text = Exe->program().str();
  // The peephole pass fuses the (push-int 2, prim add) pair; the prim
  // stays in its slot as the fused instruction's placeholder.
  EXPECT_NE(Text.find("push-int 1"), std::string::npos) << Text;
  EXPECT_NE(Text.find("push-int-prim 2"), std::string::npos) << Text;
  EXPECT_NE(Text.find("prim"), std::string::npos) << Text;
  EXPECT_NE(Text.find("halt"), std::string::npos) << Text;
}

TEST(PrinterBytecode, UnfusedDisassemblyKeepsOneOpPerInstruction) {
  Grift G;
  std::string Errors;
  auto Exe = G.compile("(+ 1 2)", CastMode::Coercions, Errors,
                       /*Optimize=*/false, /*Fuse=*/false);
  ASSERT_TRUE(Exe.has_value()) << Errors;
  std::string Text = Exe->program().str();
  EXPECT_NE(Text.find("push-int 1"), std::string::npos) << Text;
  EXPECT_NE(Text.find("push-int 2"), std::string::npos) << Text;
  EXPECT_EQ(Text.find("push-int-prim"), std::string::npos) << Text;
}

TEST(PrinterCoercions, RendersNormalForms) {
  TypeContext Types;
  CoercionFactory F(Types);
  EXPECT_EQ(F.id()->str(), "id");
  EXPECT_EQ(F.make(Types.integer(), Types.dyn(), "p")->str(),
            "(id ; Int!)");
  EXPECT_EQ(F.make(Types.dyn(), Types.integer(), "p")->str(),
            "(Int?p ; id)");
  EXPECT_EQ(F.fail("boom")->str(), "Fail^boom");
  // A μ coercion prints with a bound name and a back reference.
  const Type *S = Types.rec(
      Types.tuple({Types.integer(), Types.function({}, Types.var(0))}));
  const Type *SD = Types.rec(
      Types.tuple({Types.dyn(), Types.function({}, Types.var(0))}));
  std::string Mu = F.make(S, SD, "p")->str();
  EXPECT_NE(Mu.find("(mu X0."), std::string::npos) << Mu;
  EXPECT_NE(Mu.find("X0)"), std::string::npos) << Mu;
}
