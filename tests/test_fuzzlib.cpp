//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the src/fuzz library behind griftfuzz: the extended
/// generator profiles (pure typed, structural, failure planting), the
/// planted-cast locator, the iteration-count override, the AST-aware
/// shrinker, and end-to-end smoke runs of both oracles — every seed
/// must come back clean on a healthy build.
///
//===----------------------------------------------------------------------===//
#include "fuzz/FuzzGen.h"
#include "fuzz/Oracle.h"
#include "fuzz/Shrink.h"
#include "grift/Grift.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace grift;
using namespace grift::fuzz;

namespace {

std::string generate(uint64_t Seed, const GenOptions &Opts,
                     SourceLoc *Site = nullptr) {
  Grift G;
  RNG Gen(Seed);
  ProgramGen PG(G.types(), Gen, Opts);
  std::string Source = PG.program();
  if (Site)
    *Site = PG.plantedSite();
  return Source;
}

} // namespace

//===----------------------------------------------------------------------===//
// Generator profiles
//===----------------------------------------------------------------------===//

TEST(FuzzGenProfiles, PureTypedStructuralProgramsCompileUnderStatic) {
  // AllowDyn = false must mean what it says: no Dyn anywhere, so the
  // program is accepted by the static-mode compiler, which rejects any
  // residual cast.
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    GenOptions GO;
    GO.Structural = true;
    GO.AllowDyn = false;
    std::string Source = generate(Seed, GO);
    EXPECT_EQ(Source.find("Dyn"), std::string::npos)
        << "seed " << Seed << "\n" << Source;

    Grift G;
    std::string Errors;
    auto Exe = G.compile(Source, CastMode::Static, Errors);
    ASSERT_TRUE(Exe.has_value())
        << Errors << "\nseed " << Seed << "\n" << Source;
    RunResult R = Exe->run();
    EXPECT_TRUE(R.OK) << R.Error.str() << "\nseed " << Seed << "\n" << Source;
  }
}

TEST(FuzzGenProfiles, GenerationIsDeterministicInTheSeed) {
  GenOptions GO;
  GO.Structural = true;
  EXPECT_EQ(generate(99, GO), generate(99, GO));
  EXPECT_NE(generate(99, GO), generate(100, GO));
}

TEST(FuzzGenProfiles, PlantedProgramsBlameThePredictedLabelEverywhere) {
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    GenOptions GO;
    GO.Structural = true;
    GO.PlantFailure = true;
    SourceLoc Site;
    std::string Source = generate(Seed, GO, &Site);
    ASSERT_TRUE(Site.isValid()) << "seed " << Seed << "\n" << Source;
    // The locator re-derives the same position from the text alone.
    EXPECT_EQ(findPlantedCast(Source).str(), Site.str())
        << "seed " << Seed << "\n" << Source;

    Grift G;
    std::string Errors;
    for (CastMode Mode : {CastMode::Coercions, CastMode::TypeBased,
                          CastMode::Monotonic}) {
      auto Exe = G.compile(Source, Mode, Errors);
      ASSERT_TRUE(Exe.has_value())
          << Errors << "\nseed " << Seed << "\n" << Source;
      RunResult R = Exe->run();
      ASSERT_FALSE(R.OK) << "seed " << Seed << "\n" << Source;
      EXPECT_EQ(R.Error.Kind, ErrorKind::Blame)
          << "seed " << Seed << "\n" << Source;
      EXPECT_EQ(R.Error.Label, Site.str())
          << "seed " << Seed << "\n" << Source;
    }
  }
}

TEST(FuzzGenProfiles, FindPlantedCastRejectsAbsentOrAmbiguousMarkers) {
  EXPECT_FALSE(findPlantedCast("(+ 1 2)").isValid());
  // Two planted-looking casts: ambiguous, so no prediction.
  EXPECT_FALSE(findPlantedCast("(+ (ann (ann 1 Dyn) Int) "
                               "(ann (ann 2 Dyn) Int))")
                   .isValid());
  SourceLoc Site = findPlantedCast("(+ 1 (ann (ann 2 Dyn) Int))");
  ASSERT_TRUE(Site.isValid());
  EXPECT_EQ(Site.str(), "1:6");
}

//===----------------------------------------------------------------------===//
// Iteration-count override
//===----------------------------------------------------------------------===//

TEST(FuzzIterationCount, DefaultsWhenUnsetAndHonoursTheEnvironment) {
  unsetenv("GRIFT_FUZZ_ITERS");
  EXPECT_EQ(iterationCount(60), 60u);
  setenv("GRIFT_FUZZ_ITERS", "250", 1);
  EXPECT_EQ(iterationCount(60), 250u);
  // Garbage and non-positive values fall back to the default.
  setenv("GRIFT_FUZZ_ITERS", "banana", 1);
  EXPECT_EQ(iterationCount(60), 60u);
  setenv("GRIFT_FUZZ_ITERS", "0", 1);
  EXPECT_EQ(iterationCount(60), 60u);
  unsetenv("GRIFT_FUZZ_ITERS");
}

//===----------------------------------------------------------------------===//
// Shrinker
//===----------------------------------------------------------------------===//

TEST(FuzzShrink, MinimizesToTheInterestingSubtree) {
  const std::string Source =
      "(define (f [x : Int]) : Int (+ x 1))\n"
      "(define (g [y : Int]) : Int (f (f y)))\n"
      "(let ([a : Int (g 3)])\n"
      "  (+ a (tuple-proj (tuple 1 2) 0)))\n";
  ShrinkStats Stats;
  std::string Shrunk = shrinkSource(
      Source,
      [](const std::string &S) {
        return S.find("tuple-proj") != std::string::npos;
      },
      1500, &Stats);
  EXPECT_LT(Shrunk.size(), Source.size() / 2) << Shrunk;
  EXPECT_NE(Shrunk.find("tuple-proj"), std::string::npos) << Shrunk;
  // The unrelated defines must be gone.
  EXPECT_EQ(Shrunk.find("define"), std::string::npos) << Shrunk;
  EXPECT_GT(Stats.Attempts, 0u);
  EXPECT_GT(Stats.Accepted, 0u);

  // The repro is self-contained: the rendered text parses on its own.
  Grift G;
  std::string Errors;
  EXPECT_TRUE(G.parse(Shrunk, Errors).has_value()) << Errors << "\n" << Shrunk;
}

TEST(FuzzShrink, ReturnsSourceUnchangedWhenPredicateNeverHolds) {
  const std::string Source = "(print-int (+ 1 2))";
  std::string Shrunk =
      shrinkSource(Source, [](const std::string &) { return false; });
  EXPECT_EQ(Shrunk, Source);
}

TEST(FuzzShrink, RejectsUnparseableInputGracefully) {
  std::string Shrunk =
      shrinkSource("(((", [](const std::string &) { return true; });
  EXPECT_EQ(Shrunk, "(((");
}

//===----------------------------------------------------------------------===//
// Oracle smoke: a healthy build passes every seed in a deterministic
// sweep of both oracles. Budgets are trimmed to keep the suite fast —
// the long-haul coverage lives in tools/griftfuzz and the nightly job.
//===----------------------------------------------------------------------===//

TEST(FuzzOracles, LatticeOracleIsCleanOnHealthyBuild) {
  OracleOptions Opts;
  Opts.Bins = 3;
  Opts.PerBin = 1;
  Opts.CoarseMax = 4;
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    auto Failure = checkLattice(Seed, Opts);
    EXPECT_FALSE(Failure.has_value())
        << Failure->What << "\nexpected: " << Failure->Expected
        << "\nactual: " << Failure->Actual << "\nsource:\n"
        << Failure->Source;
  }
}

TEST(FuzzOracles, BlameOracleIsCleanOnHealthyBuild) {
  OracleOptions Opts;
  Opts.Bins = 3;
  Opts.PerBin = 1;
  Opts.CoarseMax = 4;
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    auto Failure = checkBlame(Seed, Opts);
    EXPECT_FALSE(Failure.has_value())
        << Failure->What << "\nexpected: " << Failure->Expected
        << "\nactual: " << Failure->Actual << "\nsource:\n"
        << Failure->Source;
  }
}

TEST(FuzzOracles, RecheckDismissesHealthyPlantedPrograms) {
  // recheckFails is the shrinking predicate; on a healthy build a
  // planted program is NOT a failure (every engine blames the predicted
  // label), and a candidate that lost the planted cast is uninteresting.
  GenOptions GO;
  GO.Structural = true;
  GO.PlantFailure = true;
  std::string Source = generate(3, GO);

  OracleFailure F;
  F.Oracle = OracleKind::Blame;
  F.Recheck = RecheckKind::BlameContract;
  F.Source = Source;
  OracleOptions Opts;
  EXPECT_FALSE(recheckFails(F, Source, Opts));
  EXPECT_FALSE(recheckFails(F, "(+ 1 2)", Opts));
  EXPECT_FALSE(recheckFails(F, "not a program", Opts));
}

TEST(FuzzOracles, ReproTextCarriesEverythingNeededToReplay) {
  OracleFailure F;
  F.Oracle = OracleKind::Blame;
  F.Seed = 42;
  F.SampleSeed = 7;
  F.Source = "(ann (ann 0 Dyn) Bool)";
  F.Baseline = F.Source;
  F.What = "engine missed the planted blame";
  F.Expected = "blame@1:1";
  F.Actual = "ok";
  std::string Text = reproText(F, "(ann (ann 0 Dyn) Bool)");
  EXPECT_NE(Text.find("seed: 42"), std::string::npos);
  EXPECT_NE(Text.find("--oracle=blame --seed=42 --iters=1"),
            std::string::npos);
  EXPECT_NE(Text.find("blame@1:1"), std::string::npos);
  EXPECT_NE(Text.find("(ann (ann 0 Dyn) Bool)"), std::string::npos);
}
