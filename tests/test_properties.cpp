//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-mode semantic property tests at the runtime level. For random
/// base types we draw random "precision ladders" (mutually consistent
/// erasures), build random values, and push them through random cast
/// chains under every cast implementation:
///
///   * coercions, applied cast-by-cast (composition happens on proxies);
///   * coercions, pre-composed into a single normal-form coercion
///     (apply(c ⨟ d, v) ≡ apply(d, apply(c, v)) — the soundness of
///     composition, the linchpin of the paper);
///   * traditional type-based casts;
///   * monotonic references (on chains that succeed; monotonic may blame
///     *earlier* than proxy semantics, never differently on success).
///
/// All implementations must agree on success/failure, and on success the
/// observable value (read through any proxies) must be identical.
///
//===----------------------------------------------------------------------===//
#include "runtime/Runtime.h"
#include "support/RNG.h"
#include "types/TypeOps.h"

#include <gtest/gtest.h>

using namespace grift;

namespace {

//===----------------------------------------------------------------------===//
// Random types, erasures, and values
//===----------------------------------------------------------------------===//

/// A random fully static first-order-ish type (no functions: closures
/// need the VM; function-cast semantics are covered in test_vm.cpp).
const Type *randomStaticType(TypeContext &Ctx, RNG &Gen, unsigned Depth) {
  switch (Gen.below(Depth == 0 ? 5 : 8)) {
  case 0:
    return Ctx.integer();
  case 1:
    return Ctx.boolean();
  case 2:
    return Ctx.floating();
  case 3:
    return Ctx.unit();
  case 4:
    return Ctx.character();
  case 5: {
    std::vector<const Type *> Elements;
    unsigned Size = 1 + Gen.below(3);
    for (unsigned I = 0; I != Size; ++I)
      Elements.push_back(randomStaticType(Ctx, Gen, Depth - 1));
    return Ctx.tuple(std::move(Elements));
  }
  case 6:
    return Ctx.box(randomStaticType(Ctx, Gen, Depth - 1));
  default:
    return Ctx.vect(randomStaticType(Ctx, Gen, Depth - 1));
  }
}

/// A random erasure of \p T: every two erasures of the same type are
/// consistent, which is what makes random cast chains well-formed.
const Type *randomErasure(TypeContext &Ctx, const Type *T, RNG &Gen,
                          double Keep) {
  if (!Gen.flip(Keep))
    return Ctx.dyn();
  switch (T->kind()) {
  case TypeKind::Tuple: {
    std::vector<const Type *> Elements;
    for (size_t I = 0; I != T->tupleSize(); ++I)
      Elements.push_back(randomErasure(Ctx, T->element(I), Gen, Keep));
    return Ctx.tuple(std::move(Elements));
  }
  case TypeKind::Box:
    return Ctx.box(randomErasure(Ctx, T->inner(), Gen, Keep));
  case TypeKind::Vect:
    return Ctx.vect(randomErasure(Ctx, T->inner(), Gen, Keep));
  default:
    return T;
  }
}

/// Builds a value of (fully static) type \p T. The same RNG draw sequence
/// builds structurally identical values in different runtimes. Reference
/// cells get monotonic RTTI so the same value works in every mode.
Value genValue(Runtime &RT, const Type *T, RNG &Gen) {
  switch (T->kind()) {
  case TypeKind::Int:
    return Value::fromFixnum(static_cast<int64_t>(Gen.below(2000)) - 1000);
  case TypeKind::Bool:
    return Value::fromBool(Gen.flip(0.5));
  case TypeKind::Float:
    return Value::fromFloat(
        (static_cast<double>(Gen.below(4000)) - 2000.0) / 16.0);
  case TypeKind::Unit:
    return Value::unit();
  case TypeKind::Char:
    return Value::fromChar(static_cast<char>('a' + Gen.below(26)));
  case TypeKind::Tuple: {
    Value Tup = RT.heap().allocTuple(static_cast<uint32_t>(T->tupleSize()));
    Rooted Root(RT.heap(), Tup);
    for (size_t I = 0; I != T->tupleSize(); ++I)
      Root.get().object()->slot(static_cast<uint32_t>(I)) =
          genValue(RT, T->element(I), Gen);
    return Root.get();
  }
  case TypeKind::Box: {
    Value Content = genValue(RT, T->inner(), Gen);
    Value Box = RT.heap().allocBox(Content);
    Box.object()->setMeta(0, T->inner());
    return Box;
  }
  case TypeKind::Vect: {
    Value Vect = RT.heap().allocVector(2, Value::unit());
    Rooted Root(RT.heap(), Vect);
    for (uint32_t I = 0; I != 2; ++I)
      Root.get().object()->slot(I) = genValue(RT, T->inner(), Gen);
    Root.get().object()->setMeta(0, T->inner());
    return Root.get();
  }
  default:
    ADD_FAILURE() << "genValue: unsupported type " << T->str();
    return Value::unit();
  }
}

/// Renders a value *as observed*: proxies are read through, so every
/// mode's representation strategies collapse to the same observation.
/// (valueToString already reads through proxies and DynBoxes.)
struct Outcome {
  bool OK = false;
  std::string Observation; // value rendering, or the trap/blame message
};

} // namespace

class CastChainProperty : public ::testing::TestWithParam<int> {};

TEST_P(CastChainProperty, AllModesAgree) {
  TypeContext Types;
  CoercionFactory Factory(Types);
  uint64_t Seed = 0x5EED + GetParam() * 977;

  for (int Iter = 0; Iter != 120; ++Iter) {
    RNG Shape(Seed + Iter);
    const Type *Base = randomStaticType(Types, Shape, 2);

    // A random ladder of mutually consistent views over Base.
    std::vector<const Type *> Chain;
    Chain.push_back(randomErasure(Types, Base, Shape, 0.7));
    unsigned Steps = 2 + Shape.below(5);
    for (unsigned I = 0; I != Steps; ++I)
      Chain.push_back(randomErasure(Types, Base, Shape, 0.6));

    const std::string *Label = Factory.internLabel("chain");
    uint64_t ValueSeed = Shape.next();

    auto runChain = [&](CastMode Mode, bool Precompose) -> Outcome {
      Runtime RT(Types, Factory, Mode);
      RNG ValueGen(ValueSeed);
      Outcome Out;
      try {
        Value V = genValue(RT, Base, ValueGen);
        Rooted Root(RT.heap(), V);
        // Initial cast from the (static) base type to the first view.
        V = RT.castRuntime(V, Base, Chain[0], Label);
        Root.set(V);
        if (Precompose) {
          const Coercion *C = Factory.id();
          for (size_t I = 0; I + 1 < Chain.size(); ++I)
            C = Factory.compose(
                C, Factory.makeInterned(Chain[I], Chain[I + 1], Label));
          V = RT.applyCoercion(V, C);
        } else {
          for (size_t I = 0; I + 1 < Chain.size(); ++I) {
            V = RT.castRuntime(V, Chain[I], Chain[I + 1], Label);
            Root.set(V);
          }
        }
        Rooted Final(RT.heap(), V);
        Out.OK = true;
        Out.Observation = RT.valueToString(V, 8);
      } catch (RuntimeError &E) {
        Out.OK = false;
        Out.Observation = E.str();
      }
      return Out;
    };

    Outcome Stepwise = runChain(CastMode::Coercions, false);
    Outcome Composed = runChain(CastMode::Coercions, true);
    Outcome TypeBased = runChain(CastMode::TypeBased, false);
    Outcome Mono = runChain(CastMode::Monotonic, false);

    // Composition soundness: composing first changes nothing observable.
    EXPECT_EQ(Stepwise.OK, Composed.OK) << "base " << Base->str();
    if (Stepwise.OK && Composed.OK)
      EXPECT_EQ(Stepwise.Observation, Composed.Observation)
          << "base " << Base->str();

    // Coercions and type-based casts agree on success and observation.
    // (These chains only go up and down the same precision ladder, so
    // they never fail — erasures of one type are always convertible.)
    EXPECT_EQ(Stepwise.OK, TypeBased.OK) << "base " << Base->str();
    if (Stepwise.OK && TypeBased.OK)
      EXPECT_EQ(Stepwise.Observation, TypeBased.Observation)
          << "base " << Base->str();

    // Monotonic agrees whenever it succeeds (it may blame eagerly in
    // principle; on a single ladder every meet exists, so it succeeds).
    if (Stepwise.OK && Mono.OK)
      EXPECT_EQ(Stepwise.Observation, Mono.Observation)
          << "base " << Base->str();
    EXPECT_EQ(Stepwise.OK, Mono.OK) << "base " << Base->str();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, CastChainProperty,
                         ::testing::Range(0, 6));

//===----------------------------------------------------------------------===//
// Blame agreement on failing projections
//===----------------------------------------------------------------------===//

class BlameAgreementProperty : public ::testing::TestWithParam<int> {};

TEST_P(BlameAgreementProperty, CoercionsAndTypeBasedBlameAlike) {
  TypeContext Types;
  CoercionFactory Factory(Types);
  RNG Gen(0xB1A4E + GetParam());

  for (int Iter = 0; Iter != 150; ++Iter) {
    // Inject a value of type A into Dyn, then project at type B. The
    // two implementations must agree on success vs blame (lazy-D).
    const Type *A = randomStaticType(Types, Gen, 1);
    const Type *B = randomStaticType(Types, Gen, 1);
    const std::string *Label = Factory.internLabel("prj");
    uint64_t ValueSeed = Gen.next();

    auto tryIt = [&](CastMode Mode) -> Outcome {
      Runtime RT(Types, Factory, Mode);
      RNG ValueGen(ValueSeed);
      Outcome Out;
      try {
        Value V = genValue(RT, A, ValueGen);
        Rooted Root(RT.heap(), V);
        V = RT.castRuntime(V, A, Types.dyn(), Label);
        Root.set(V);
        V = RT.castRuntime(V, Types.dyn(), B, Label);
        Rooted Final(RT.heap(), V);
        Out.OK = true;
        Out.Observation = RT.valueToString(V, 8);
      } catch (RuntimeError &E) {
        Out.OK = false;
        Out.Observation = E.Label; // blame labels must agree too
        EXPECT_TRUE(E.isBlame());
      }
      return Out;
    };

    Outcome C = tryIt(CastMode::Coercions);
    Outcome T = tryIt(CastMode::TypeBased);
    EXPECT_EQ(C.OK, T.OK) << A->str() << " via Dyn to " << B->str();
    EXPECT_EQ(C.Observation, T.Observation)
        << A->str() << " via Dyn to " << B->str();
    // Success iff the runtime type is consistent with the target
    // (lazy-D projection rule).
    EXPECT_EQ(C.OK, consistent(Types, A, B))
        << A->str() << " via Dyn to " << B->str();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, BlameAgreementProperty,
                         ::testing::Range(0, 6));
