//===----------------------------------------------------------------------===//
///
/// \file
/// Hostile-input conformance of the shared JSON layer (support/Json.h).
/// Escaping: hostile job ids and program output flow through
/// json::escape into response documents, so every byte sequence —
/// including invalid UTF-8 — must produce a string a conforming JSON
/// parser accepts. Parsing: every line of a batch manifest and every
/// socket frame goes through json::LineParser, so arbitrary garbage must
/// come back as a positioned error, never a crash, an over-read, or a
/// silently truncated parse.
///
//===----------------------------------------------------------------------===//
#include "support/Json.h"

#include <gtest/gtest.h>

using grift::json::LineParser;
using grift::json::Value;

static std::string jsonEscape(const std::string &S) {
  return grift::json::escape(S);
}

TEST(JsonEscape, PlainAsciiPassesThrough) {
  EXPECT_EQ(jsonEscape("hello world 42!"), "hello world 42!");
  EXPECT_EQ(jsonEscape(""), "");
}

TEST(JsonEscape, QuotesAndBackslashes) {
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("\\\""), "\\\\\\\"");
}

TEST(JsonEscape, NamedControlEscapes) {
  EXPECT_EQ(jsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
}

TEST(JsonEscape, NumericControlEscapesCoverAllOfC0AndDel) {
  // RFC 8259 §7: all of U+0000..U+001F must be escaped.
  for (unsigned C = 0; C != 0x20; ++C) {
    std::string In(1, static_cast<char>(C));
    std::string Out = jsonEscape(In);
    EXPECT_EQ(Out.substr(0, 1), "\\") << "control byte " << C;
    for (char B : Out)
      EXPECT_TRUE(static_cast<unsigned char>(B) >= 0x20)
          << "raw control byte leaked for " << C;
  }
  EXPECT_EQ(jsonEscape("\x7f"), "\\u007f");
  EXPECT_EQ(jsonEscape(std::string(1, '\0')), "\\u0000");
}

TEST(JsonEscape, ValidUtf8PassesThrough) {
  EXPECT_EQ(jsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");         // U+00E9
  EXPECT_EQ(jsonEscape("\xe2\x82\xac"), "\xe2\x82\xac");       // U+20AC
  EXPECT_EQ(jsonEscape("\xf0\x9f\x98\x80"), "\xf0\x9f\x98\x80"); // U+1F600
}

TEST(JsonEscape, InvalidUtf8IsEscapedNotLeaked) {
  // Lone continuation byte.
  EXPECT_EQ(jsonEscape("\x80"), "\\u0080");
  // Overlong 2-byte lead bytes.
  EXPECT_EQ(jsonEscape("\xc0\xaf"), "\\u00c0\\u00af");
  EXPECT_EQ(jsonEscape("\xc1\xbf"), "\\u00c1\\u00bf");
  // Truncated sequences (end of string and mid-string).
  EXPECT_EQ(jsonEscape("\xc3"), "\\u00c3");
  EXPECT_EQ(jsonEscape("\xe2\x82"), "\\u00e2\\u0082");
  // Overlong 3-byte (would decode below U+0800).
  EXPECT_EQ(jsonEscape("\xe0\x9f\xbf"), "\\u00e0\\u009f\\u00bf");
  // UTF-16 surrogate half encoded as UTF-8.
  EXPECT_EQ(jsonEscape("\xed\xa0\x80"), "\\u00ed\\u00a0\\u0080");
  // Above U+10FFFF and impossible lead bytes.
  EXPECT_EQ(jsonEscape("\xf4\x90\x80\x80"),
            "\\u00f4\\u0090\\u0080\\u0080");
  EXPECT_EQ(jsonEscape("\xfe"), "\\u00fe");
  EXPECT_EQ(jsonEscape("\xff"), "\\u00ff");
}

TEST(JsonEscape, OutputIsAlwaysValidUtf8AndQuoteSafe) {
  // Exhaustive single bytes plus a hostile grab-bag: the escaped form
  // must never contain a raw quote, backslash pair misuse, control
  // byte, or invalid UTF-8 sequence.
  auto validUtf8 = [](const std::string &S) {
    for (size_t I = 0; I < S.size();) {
      unsigned char C = static_cast<unsigned char>(S[I]);
      size_t Len = C < 0x80 ? 1 : C >= 0xF0 ? 4 : C >= 0xE0 ? 3
                   : C >= 0xC2              ? 2
                                            : 0;
      if (Len == 0 || I + Len > S.size())
        return false;
      for (size_t J = 1; J != Len; ++J)
        if ((static_cast<unsigned char>(S[I + J]) & 0xC0) != 0x80)
          return false;
      I += Len;
    }
    return true;
  };
  std::string Hostile = "id\"\\\n\x01\x7f\x80\xc0\xc3\xa9\xed\xa0\x80"
                        "\xf0\x9f\x98\x80\xff tail";
  for (int C = 0; C != 256; ++C)
    Hostile.push_back(static_cast<char>(C));
  std::string Out = jsonEscape(Hostile);
  EXPECT_TRUE(validUtf8(Out));
  for (size_t I = 0; I != Out.size(); ++I) {
    unsigned char B = static_cast<unsigned char>(Out[I]);
    EXPECT_GE(B, 0x20u) << "raw control byte at " << I;
    if (Out[I] == '"') {
      // A quote is escaped iff preceded by an odd run of backslashes.
      size_t Slashes = 0;
      while (Slashes < I && Out[I - 1 - Slashes] == '\\')
        ++Slashes;
      EXPECT_EQ(Slashes % 2, 1u) << "unescaped quote at " << I;
    }
  }
}

//===----------------------------------------------------------------------===//
// LineParser: hostile manifest lines and socket frames.
//===----------------------------------------------------------------------===//

namespace {

bool parses(const std::string &Line, std::map<std::string, Value> *Out =
                                         nullptr) {
  LineParser P(Line);
  std::map<std::string, Value> Obj;
  bool Ok = P.parse(Obj);
  if (Ok && Out)
    *Out = std::move(Obj);
  return Ok;
}

std::string errorOf(const std::string &Line) {
  LineParser P(Line);
  std::map<std::string, Value> Obj;
  EXPECT_FALSE(P.parse(Obj)) << "expected parse failure: " << Line;
  return P.Error;
}

} // namespace

TEST(JsonLineParser, WellFormedJobObject) {
  std::map<std::string, Value> Obj;
  ASSERT_TRUE(parses("{\"id\": \"j1\", \"source\": \"(+ 1 2)\", "
                     "\"optimize\": true, \"max_steps\": 100}",
                     &Obj));
  EXPECT_EQ(Obj["id"].S, "j1");
  EXPECT_EQ(Obj["source"].S, "(+ 1 2)");
  EXPECT_TRUE(Obj["optimize"].B);
  EXPECT_EQ(Obj["max_steps"].N, 100);
}

TEST(JsonLineParser, EmptyObjectAndNull) {
  std::map<std::string, Value> Obj;
  EXPECT_TRUE(parses("{}", &Obj));
  EXPECT_TRUE(Obj.empty());
  ASSERT_TRUE(parses("{\"input\": null}", &Obj));
  EXPECT_EQ(Obj["input"].S, "");
}

TEST(JsonLineParser, MalformedLinesFailWithPositionedErrors) {
  // None of these may crash, loop, or succeed.
  EXPECT_FALSE(parses(""));
  EXPECT_FALSE(parses("not json"));
  EXPECT_FALSE(parses("["));
  EXPECT_FALSE(parses("{\"a\""));
  EXPECT_FALSE(parses("{\"a\": }"));
  EXPECT_FALSE(parses("{\"a\": 1,}"));
  EXPECT_FALSE(parses("{\"a\" 1}"));
  EXPECT_FALSE(parses("{'a': 1}"));
  EXPECT_FALSE(parses("{\"a\": tru}"));
  EXPECT_FALSE(parses("{\"a\": \"unterminated"));
  EXPECT_FALSE(parses("{\"a\": \"dangling\\"));
  EXPECT_FALSE(parses("{\"a\": \"\\q\"}"));
  EXPECT_FALSE(parses("{\"a\": \"\\u12\"}"));
  EXPECT_FALSE(parses("{\"a\": \"\\uXYZW\"}"));
  EXPECT_NE(errorOf("{\"a\": }").find("offset"), std::string::npos);
}

TEST(JsonLineParser, NestedValuesAreRejected) {
  // The job schema is flat; nesting is refused up front so parser
  // memory stays bounded on hostile frames.
  EXPECT_FALSE(parses("{\"a\": {\"b\": 1}}"));
  EXPECT_FALSE(parses("{\"a\": [1, 2, 3]}"));
  EXPECT_FALSE(parses("{\"a\": [[[[[[[[[[[[[[]]]]]]]]]]]]]]}"));
  EXPECT_NE(errorOf("{\"a\": {\"b\": 1}}").find("nested"),
            std::string::npos);
}

TEST(JsonLineParser, TrailingGarbageIsRejected) {
  // A frame must contain exactly one object — smuggling a second object
  // (or anything else) after it is an error, not ignored bytes.
  EXPECT_FALSE(parses("{\"a\": 1} {\"b\": 2}"));
  EXPECT_FALSE(parses("{\"a\": 1}x"));
  EXPECT_TRUE(parses("{\"a\": 1}  \t "));
}

TEST(JsonLineParser, HostileBytesNeverCrash) {
  // Raw control bytes, invalid UTF-8, and embedded NULs inside and
  // outside strings: outcome may be success or failure, never a crash.
  std::string Line = "{\"id\": \"";
  for (int C = 1; C != 256; ++C)
    if (C != '"' && C != '\\')
      Line.push_back(static_cast<char>(C));
  Line += "\"}";
  std::map<std::string, Value> Obj;
  EXPECT_TRUE(parses(Line, &Obj));

  std::string Garbage(512, '\0');
  for (size_t I = 0; I != Garbage.size(); ++I)
    Garbage[I] = static_cast<char>(I * 37 + 11);
  EXPECT_FALSE(parses(Garbage));
}

TEST(JsonLineParser, LongStringsAndKeysRoundTrip) {
  std::string Big(1u << 16, 'x');
  std::map<std::string, Value> Obj;
  ASSERT_TRUE(parses("{\"source\": \"" + Big + "\"}", &Obj));
  EXPECT_EQ(Obj["source"].S.size(), Big.size());
}
