//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for monotonic references (CastMode::Monotonic, paper Section 5):
/// references are never proxied; casting a reference strengthens the heap
/// cell's runtime type in place. Functional behaviour matches the other
/// modes on all benchmarks; the observable differences are structural
/// (no proxies) and temporal (blame can surface at the cast instead of
/// the use).
///
//===----------------------------------------------------------------------===//
#include "bench_programs/Benchmarks.h"
#include "grift/Grift.h"
#include "lattice/Lattice.h"

#include <gtest/gtest.h>

using namespace grift;

namespace {

class MonotonicTest : public ::testing::Test {
protected:
  Grift G;

  RunResult run(std::string_view Source, std::string Input = "") {
    std::string Errors;
    auto Exe = G.compile(Source, CastMode::Monotonic, Errors);
    EXPECT_TRUE(Exe.has_value()) << Errors;
    if (!Exe) {
      RunResult R;
      R.Error = {ErrorKind::Trap, "", "compile failed"};
      return R;
    }
    return Exe->run(std::move(Input));
  }

  void expectResult(std::string_view Source, std::string_view Expected) {
    RunResult R = run(Source);
    ASSERT_TRUE(R.OK) << R.Error.str() << " for " << Source;
    EXPECT_EQ(R.ResultText, Expected) << Source;
  }
};

} // namespace

TEST_F(MonotonicTest, BasicReferenceOps) {
  expectResult("(unbox (box 41))", "41");
  expectResult("(let ([b (box 1)]) (begin (box-set! b 42) (unbox b)))", "42");
  expectResult("(let ([v (make-vector 3 7)]) (vector-ref v 2))", "7");
  expectResult("(vector-length (make-vector 9 0))", "9");
}

TEST_F(MonotonicTest, GradualFlowsWork) {
  expectResult("(ann (ann 42 Dyn) Int)", "42");
  expectResult("((lambda (b) (unbox b)) (box 41))", "41");
  expectResult("((lambda (v) (vector-ref v 0)) (make-vector 2 5))", "5");
  expectResult("((lambda (f) (f 21)) (lambda ([x : Int]) : Int (* 2 x)))",
               "42");
}

TEST_F(MonotonicTest, NoRefProxiesEver) {
  // The quicksort of Figure 3 drives millions of reference operations
  // through a Dyn-viewed vector; monotonic mode must never create a
  // proxy for them. (The one remaining proxy is the composed *function*
  // proxy on sort! itself — length 1, never growing.)
  std::string Errors;
  auto Exe = G.compile(quicksortFig3Source(), CastMode::Monotonic, Errors);
  ASSERT_TRUE(Exe.has_value()) << Errors;
  RunResult R = Exe->run("128");
  ASSERT_TRUE(R.OK) << R.Error.str();
  EXPECT_EQ(R.Output, "#t");
  EXPECT_LE(R.Stats.LongestProxyChain, 1u);
}

TEST_F(MonotonicTest, StrengtheningIsSharedAcrossAliases) {
  // Casting one view strengthens the single heap cell: a later write of
  // the wrong kind through the *other*, dynamic view is rejected.
  const char *Source = "(define v : (Vect Dyn) (make-vector 2 (ann 0 Dyn)))"
                       "(define w : (Vect Int) v)" // strengthens the cell
                       "(vector-set! v 0 (ann #t Dyn))";
  RunResult R = run(Source);
  ASSERT_FALSE(R.OK);
  EXPECT_TRUE(R.Error.isBlame());
}

TEST_F(MonotonicTest, WriteOfRightTypeThroughDynViewWorks) {
  const char *Source = "(define v : (Vect Dyn) (make-vector 2 (ann 0 Dyn)))"
                       "(define w : (Vect Int) v)"
                       "(begin (vector-set! v 0 (ann 7 Dyn))"
                       "       (vector-ref w 0))";
  expectResult(Source, "7");
}

TEST_F(MonotonicTest, InconsistentStrengtheningBlamesEagerly) {
  // The cell already holds Ints; viewing it at Bool blames at the cast
  // itself (monotonic blames earlier than proxy-based semantics).
  const char *Source = "(define v : (Vect Dyn) (make-vector 2 (ann 1 Dyn)))"
                       "(define w : (Vect Int) v)"
                       "(ann (ann v Dyn) (Vect Bool))";
  RunResult R = run(Source);
  ASSERT_FALSE(R.OK);
  EXPECT_TRUE(R.Error.isBlame());
}

TEST_F(MonotonicTest, HigherOrderFunctionsStillCompose) {
  const char *Chain =
      "(define f : (Int -> Int) (lambda ([x : Int]) : Int (+ x 1)))"
      "(define g1 : (Dyn -> Dyn) f)"
      "(define g2 : (Int -> Int) g1)"
      "(g2 41)";
  expectResult(Chain, "42");
  // And the even/odd continuation stays at one proxy.
  std::string Errors;
  auto Exe = G.compile(evenOddSource(), CastMode::Monotonic, Errors);
  ASSERT_TRUE(Exe.has_value()) << Errors;
  RunResult R = Exe->run("500");
  ASSERT_TRUE(R.OK) << R.Error.str();
  EXPECT_EQ(R.Output, "#t");
  EXPECT_LE(R.Stats.LongestProxyChain, 1u);
}

TEST_F(MonotonicTest, FunctionsOverReferences) {
  // A function with reference-typed parameters crossing a Dyn boundary:
  // the coercion's RefC component strengthens at application time.
  const char *Source =
      "(define (fill [v : (Vect Int)] [x : Int]) : ()"
      "  (repeat (i 0 (vector-length v)) (vector-set! v i x)))"
      "(define g : Dyn fill)"
      "(define v : (Vect Int) (make-vector 3 0))"
      "(begin ((ann g ((Vect Int) Int -> ())) v 9)"
      "       (vector-ref v 2))";
  expectResult(Source, "9");
}

TEST_F(MonotonicTest, FullyStaticViewsAreUnchecked) {
  // On a fully typed program the compiler emits the same fast ops as
  // Static Grift: zero casts at runtime.
  const char *Typed = "(define v : (Vect Int) (make-vector 100 1))"
                      "(repeat (i 0 100) (acc : Int 0)"
                      "  (+ acc (vector-ref v i)))";
  RunResult R = run(Typed);
  ASSERT_TRUE(R.OK) << R.Error.str();
  EXPECT_EQ(R.ResultText, "100");
  EXPECT_EQ(R.Stats.CastsApplied, 0u);
}

//===----------------------------------------------------------------------===//
// Benchmark suite under monotonic references
//===----------------------------------------------------------------------===//

namespace {
class MonotonicBenchmarks : public ::testing::TestWithParam<int> {};
} // namespace

TEST_P(MonotonicBenchmarks, GoldenOutput) {
  const BenchProgram &B = allBenchmarks()[GetParam()];
  Grift G;
  std::string Errors;
  // Typed.
  auto Exe = G.compile(B.Source, CastMode::Monotonic, Errors);
  ASSERT_TRUE(Exe.has_value()) << Errors;
  RunResult R = Exe->run(B.TestInput);
  ASSERT_TRUE(R.OK) << B.Name << ": " << R.Error.str();
  EXPECT_EQ(R.Output, B.TestOutput) << B.Name;
  // Erased (fully dynamic).
  auto Ast = G.parse(B.Source, Errors);
  ASSERT_TRUE(Ast.has_value()) << Errors;
  Program Erased = eraseTypes(*Ast, G.types());
  auto ExeD = G.compileAst(Erased, CastMode::Monotonic, Errors);
  ASSERT_TRUE(ExeD.has_value()) << Errors;
  RunResult RD = ExeD->run(B.TestInput);
  ASSERT_TRUE(RD.OK) << B.Name << ": " << RD.Error.str();
  EXPECT_EQ(RD.Output, B.TestOutput) << B.Name;
  // No reference proxies in either configuration.
  EXPECT_LE(R.Stats.LongestProxyChain, 1u);
  EXPECT_LE(RD.Stats.LongestProxyChain, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, MonotonicBenchmarks,
                         ::testing::Range(0, 8), [](const auto &Info) {
                           std::string Name =
                               allBenchmarks()[Info.param].Name;
                           for (char &C : Name)
                             if (C == '-')
                               C = '_';
                           return Name;
                         });

TEST(MonotonicLattice, SampledConfigurationsAgree) {
  // The gradual guarantee holds across the lattice in monotonic mode for
  // programs whose casts succeed.
  const BenchProgram &B = getBenchmark("quicksort");
  Grift G;
  std::string Errors;
  auto Ast = G.parse(B.Source, Errors);
  ASSERT_TRUE(Ast.has_value()) << Errors;
  auto Configs = sampleFineGrained(*Ast, G.types(), 3, 2, 0xFACADE);
  for (const Configuration &C : Configs) {
    auto Exe = G.compileAst(C.Prog, CastMode::Monotonic, Errors);
    ASSERT_TRUE(Exe.has_value()) << Errors;
    RunResult R = Exe->run(B.TestInput);
    ASSERT_TRUE(R.OK) << R.Error.str() << " precision " << C.Precision;
    EXPECT_EQ(R.Output, B.TestOutput);
  }
}
