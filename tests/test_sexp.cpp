//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the s-expression reader.
///
//===----------------------------------------------------------------------===//
#include "sexp/Reader.h"

#include <gtest/gtest.h>

using namespace grift;

namespace {

std::vector<Sexp> readOk(std::string_view Source) {
  DiagnosticEngine Diags;
  std::vector<Sexp> Data = readSexps(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Data;
}

void expectReadError(std::string_view Source) {
  DiagnosticEngine Diags;
  readSexps(Source, Diags);
  EXPECT_TRUE(Diags.hasErrors()) << "expected a read error for: " << Source;
}

} // namespace

TEST(Reader, EmptyInput) {
  EXPECT_TRUE(readOk("").empty());
  EXPECT_TRUE(readOk("   \n\t ").empty());
  EXPECT_TRUE(readOk("; just a comment\n").empty());
}

TEST(Reader, Integers) {
  auto Data = readOk("42 -7 0");
  ASSERT_EQ(Data.size(), 3u);
  EXPECT_EQ(Data[0].intValue(), 42);
  EXPECT_EQ(Data[1].intValue(), -7);
  EXPECT_EQ(Data[2].intValue(), 0);
}

TEST(Reader, Floats) {
  auto Data = readOk("3.5 -0.25 1e3 2.");
  ASSERT_EQ(Data.size(), 4u);
  EXPECT_DOUBLE_EQ(Data[0].floatValue(), 3.5);
  EXPECT_DOUBLE_EQ(Data[1].floatValue(), -0.25);
  EXPECT_DOUBLE_EQ(Data[2].floatValue(), 1000.0);
  EXPECT_DOUBLE_EQ(Data[3].floatValue(), 2.0);
}

TEST(Reader, Booleans) {
  auto Data = readOk("#t #f");
  ASSERT_EQ(Data.size(), 2u);
  EXPECT_TRUE(Data[0].boolValue());
  EXPECT_FALSE(Data[1].boolValue());
}

TEST(Reader, Characters) {
  auto Data = readOk("#\\a #\\newline #\\space #\\0");
  ASSERT_EQ(Data.size(), 4u);
  EXPECT_EQ(Data[0].charValue(), 'a');
  EXPECT_EQ(Data[1].charValue(), '\n');
  EXPECT_EQ(Data[2].charValue(), ' ');
  EXPECT_EQ(Data[3].charValue(), '0');
}

TEST(Reader, Symbols) {
  auto Data = readOk("vector-ref fl+ -> even? - ...");
  ASSERT_EQ(Data.size(), 6u);
  EXPECT_EQ(Data[0].symbol(), "vector-ref");
  EXPECT_EQ(Data[1].symbol(), "fl+");
  EXPECT_EQ(Data[2].symbol(), "->");
  EXPECT_EQ(Data[3].symbol(), "even?");
  EXPECT_EQ(Data[4].symbol(), "-");
  EXPECT_EQ(Data[5].symbol(), "...");
}

TEST(Reader, Strings) {
  auto Data = readOk("\"hello\" \"a\\nb\" \"q\\\"q\"");
  ASSERT_EQ(Data.size(), 3u);
  EXPECT_EQ(Data[0].string(), "hello");
  EXPECT_EQ(Data[1].string(), "a\nb");
  EXPECT_EQ(Data[2].string(), "q\"q");
}

TEST(Reader, NestedLists) {
  auto Data = readOk("(define (f [x : Int]) : Int (+ x 1))");
  ASSERT_EQ(Data.size(), 1u);
  const Sexp &Define = Data[0];
  ASSERT_TRUE(Define.isList());
  ASSERT_EQ(Define.size(), 5u);
  EXPECT_TRUE(Define[0].isSymbol("define"));
  EXPECT_TRUE(Define[1].isList());
  EXPECT_TRUE(Define[1][1].isList());
  EXPECT_TRUE(Define[1][1][0].isSymbol("x"));
}

TEST(Reader, BracketsAreParens) {
  auto Data = readOk("[let ([x 1]) x]");
  ASSERT_EQ(Data.size(), 1u);
  EXPECT_TRUE(Data[0][0].isSymbol("let"));
}

TEST(Reader, MismatchedBracketFails) {
  expectReadError("(let [x 1)]");
  expectReadError("(a b");
  expectReadError(")");
}

TEST(Reader, EmptyListIsUnit) {
  auto Data = readOk("()");
  ASSERT_EQ(Data.size(), 1u);
  EXPECT_TRUE(Data[0].isEmptyList());
}

TEST(Reader, LineComments) {
  auto Data = readOk("1 ; ignored (2 3\n4");
  ASSERT_EQ(Data.size(), 2u);
  EXPECT_EQ(Data[0].intValue(), 1);
  EXPECT_EQ(Data[1].intValue(), 4);
}

TEST(Reader, BlockComments) {
  auto Data = readOk("1 #| a #| nested |# b |# 2");
  ASSERT_EQ(Data.size(), 2u);
  EXPECT_EQ(Data[1].intValue(), 2);
  expectReadError("#| unterminated");
}

TEST(Reader, SourceLocations) {
  auto Data = readOk("\n  (f 1)");
  ASSERT_EQ(Data.size(), 1u);
  EXPECT_EQ(Data[0].loc().Line, 2u);
  EXPECT_EQ(Data[0].loc().Column, 3u);
  EXPECT_EQ(Data[0][1].loc().Column, 6u);
}

TEST(Reader, StrRoundTrip) {
  const char *Source = "(define x (tuple 1 2.5 #t #\\a \"s\" ()))";
  auto Data = readOk(Source);
  ASSERT_EQ(Data.size(), 1u);
  auto Again = readOk(Data[0].str());
  ASSERT_EQ(Again.size(), 1u);
  EXPECT_EQ(Again[0].str(), Data[0].str());
}

TEST(Reader, UnknownHashSyntaxFails) {
  expectReadError("#q");
  expectReadError("#\\bogusname");
}
