//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the generational layer of the heap (runtime/Heap.{h,cpp}):
///
///   * bump allocation in the nursery and promotion at every size class;
///   * nursery exhaustion mid-allocation (the automatic minor collection);
///   * the write barrier: recorded old→young edges survive a minor, and
///     Heap::verify() flags a deliberately unbarriered edge;
///   * monotonic strengthening of an old cell to hold a young value, and
///     proxy chains spanning the generations;
///   * minor-GC torture (every allocation / every cast application);
///   * the escape hatch: a program's output and deterministic counters
///     are identical with the nursery on and off;
///   * the live-count regression on the heap-limit path (a pending lazy
///     sweep must be finished before exact accounting).
///
//===----------------------------------------------------------------------===//
#include "grift/Grift.h"
#include "runtime/Blame.h"
#include "runtime/Heap.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace grift;

namespace {

/// Slot counts that land in each of the seven small size classes.
constexpr uint32_t SlotsPerClass[] = {0, 4, 8, 16, 24, 40, 56};

/// Allocates \p N unrooted (instant-garbage) tuples of \p Slots slots.
void makeGarbage(Heap &H, unsigned N, uint32_t Slots) {
  for (unsigned I = 0; I != N; ++I)
    H.allocTuple(Slots);
}

} // namespace

//===----------------------------------------------------------------------===//
// Nursery bump allocation and promotion
//===----------------------------------------------------------------------===//

TEST(GenerationalGC, SmallAllocationsStartInTheNursery) {
  Heap H;
  Value T = H.allocTuple(4);
  EXPECT_TRUE(H.isYoung(T.object()));
  // Bump allocation maps no pool blocks.
  EXPECT_EQ(H.poolBlocks(), 0u);
  // Large objects are pre-tenured: never young.
  Value Big = H.allocVector(Heap::MaxSmallSlots + 1, Value::unit());
  EXPECT_FALSE(H.isYoung(Big.object()));
}

TEST(GenerationalGC, MinorCollectionPromotesSurvivorsAtEverySizeClass) {
  for (uint32_t Slots : SlotsPerClass) {
    Heap H;
    Value T = H.allocTuple(Slots);
    for (uint32_t I = 0; I != Slots; ++I)
      T.object()->slot(I) = Value::fromFixnum(I + 1);
    Rooted Root(H, T);
    makeGarbage(H, 50, Slots);
    uint64_t PromotedBefore = H.promotedObjects();
    H.minorCollect();
    // The rooted tuple moved to the old generation; the root followed.
    EXPECT_FALSE(H.isYoung(Root.get().object())) << "slots " << Slots;
    EXPECT_EQ(H.promotedObjects(), PromotedBefore + 1) << "slots " << Slots;
    EXPECT_EQ(H.liveObjects(), 1u) << "slots " << Slots;
    for (uint32_t I = 0; I != Slots; ++I)
      EXPECT_EQ(Root.get().object()->slot(I).asFixnum(), I + 1);
    EXPECT_EQ(H.verify(), 0u) << "slots " << Slots;
  }
}

TEST(GenerationalGC, PromotionPreservesReferenceIdentity) {
  // Two roots to the SAME young box must agree on the promoted copy.
  Heap H;
  Value Box = H.allocBox(Value::fromFixnum(7));
  Rooted A(H, Box), B(H, Box);
  H.minorCollect();
  EXPECT_EQ(A.get().object(), B.get().object());
  EXPECT_EQ(A.get().object()->slot(0).asFixnum(), 7);
}

TEST(GenerationalGC, NurseryExhaustionMidAllocationTriggersMinor) {
  Heap H;
  // A small nursery makes exhaustion cheap to reach. The rooted chain of
  // boxes is the survivor set: each link must be evacuated intact by the
  // minor collections that fire mid-loop, inside allocBox.
  H.setNurserySize(Heap::MinNurseryBytes);
  Value Chain = Value::unit();
  Rooted Root(H, Chain);
  constexpr int Links = 120; // 120 * 96 B overflows 4 KiB twice over:
                             // several minors fire while the chain grows
  for (int I = 0; I != Links; ++I)
    Root.set(H.allocBox(Root.get()));
  EXPECT_GE(H.minorCollections(), 1u);
  int Depth = 0;
  for (Value V = Root.get(); V.isPointer(); V = V.object()->slot(0))
    ++Depth;
  EXPECT_EQ(Depth, Links);
  EXPECT_EQ(H.verify(), 0u);
}

TEST(GenerationalGC, SetNurserySizeEvacuatesResidents) {
  Heap H;
  Value Box = H.allocBox(Value::fromFixnum(11));
  Rooted Root(H, Box);
  ASSERT_TRUE(H.isYoung(Root.get().object()));
  H.setNurserySize(0); // turning the nursery off evacuates the box
  EXPECT_FALSE(H.isYoung(Root.get().object()));
  EXPECT_EQ(Root.get().object()->slot(0).asFixnum(), 11);
  // And allocation now goes straight to the pools.
  Value T = H.allocTuple(1);
  EXPECT_FALSE(H.isYoung(T.object()));
  EXPECT_GE(H.poolBlocks(), 1u);
  EXPECT_EQ(H.verify(), 0u);
}

//===----------------------------------------------------------------------===//
// The write barrier and the remembered set
//===----------------------------------------------------------------------===//

TEST(GenerationalGC, RememberedEdgeSurvivesMinorCollection) {
  Heap H;
  Value Old = H.allocTuple(2);
  Rooted Root(H, Old);
  H.minorCollect(); // tenure the tuple
  ASSERT_FALSE(H.isYoung(Root.get().object()));
  // Store a young box into the old tuple, through the barrier.
  Value Young = H.allocBox(Value::fromFixnum(99));
  ASSERT_TRUE(H.isYoung(Young.object()));
  Root.get().object()->slot(0) = Young;
  H.recordWrite(Root.get().object(), Young);
  EXPECT_EQ(H.rememberedSetSize(), 1u);
  EXPECT_EQ(H.verify(), 0u);
  H.minorCollect();
  // The box was promoted and the old tuple's slot rewritten to follow.
  Value Slot = Root.get().object()->slot(0);
  ASSERT_TRUE(Slot.isHeap());
  EXPECT_FALSE(H.isYoung(Slot.object()));
  EXPECT_EQ(Slot.object()->slot(0).asFixnum(), 99);
  // The remembered set is flushed once the nursery is empty.
  EXPECT_EQ(H.rememberedSetSize(), 0u);
  EXPECT_EQ(H.verify(), 0u);
}

TEST(GenerationalGC, VerifyFlagsAnUnbarrieredOldToYoungEdge) {
  Heap H;
  Value Old = H.allocTuple(1);
  Rooted Root(H, Old);
  H.minorCollect();
  Value Young = H.allocBox(Value::fromFixnum(1));
  ASSERT_TRUE(H.isYoung(Young.object()));
  // Deliberately skip the barrier: verify() must call this out.
  Root.get().object()->slot(0) = Young;
  EXPECT_GE(H.verify(), 1u);
  // Recording the edge repairs the invariant.
  H.recordWrite(Root.get().object(), Young);
  EXPECT_EQ(H.verify(), 0u);
}

TEST(GenerationalGC, BarrierIsANoOpForUninterestingStores) {
  Heap H;
  Value Old = H.allocTuple(2);
  Rooted Root(H, Old);
  H.minorCollect();
  // Unboxed store: nothing to remember.
  H.recordWrite(Root.get().object(), Value::fromFixnum(5));
  EXPECT_EQ(H.rememberedSetSize(), 0u);
  // Old→old store: nothing to remember either.
  H.recordWrite(Root.get().object(), Root.get());
  EXPECT_EQ(H.rememberedSetSize(), 0u);
  // Young owner: young→young stores need no remembering.
  Value YoungOwner = H.allocTuple(1);
  Value YoungContent = H.allocBox(Value::unit());
  H.recordWrite(YoungOwner.object(), YoungContent);
  EXPECT_EQ(H.rememberedSetSize(), 0u);
  // Duplicate recording of one owner stays one entry.
  Value Young = H.allocBox(Value::fromFixnum(1));
  Rooted YR(H, Young);
  Root.get().object()->slot(0) = YR.get();
  H.recordWrite(Root.get().object(), YR.get());
  Root.get().object()->slot(1) = YR.get();
  H.recordWrite(Root.get().object(), YR.get());
  EXPECT_EQ(H.rememberedSetSize(), 1u);
}

//===----------------------------------------------------------------------===//
// Cross-generation structures through the cast runtime
//===----------------------------------------------------------------------===//

TEST(GenerationalGC, ProxyChainsSpanGenerations) {
  // An old proxy over a young base (and vice versa) must read correctly
  // after the minor collection moves one end of the edge.
  Heap H;
  Value Base = H.allocBox(Value::fromFixnum(21));
  Rooted BaseRoot(H, Base);
  Value Proxy = H.allocRefProxy(BaseRoot.get(), nullptr, nullptr, nullptr);
  Rooted ProxyRoot(H, Proxy);
  ASSERT_TRUE(ProxyRoot.get().isProxy());
  H.minorCollect(); // both ends tenure; the proxy keeps its Proxy tag
  ASSERT_TRUE(ProxyRoot.get().isProxy());
  EXPECT_FALSE(H.isYoung(ProxyRoot.get().object()));
  // Now the inverse split: old proxy, young replacement base.
  Value NewBase = H.allocBox(Value::fromFixnum(42));
  ASSERT_TRUE(H.isYoung(NewBase.object()));
  ProxyRoot.get().object()->slot(0) = NewBase;
  H.recordWrite(ProxyRoot.get().object(), NewBase);
  H.minorCollect();
  Value Through = ProxyRoot.get().object()->slot(0);
  ASSERT_TRUE(Through.isHeap());
  EXPECT_EQ(Through.object()->slot(0).asFixnum(), 42);
  EXPECT_EQ(H.verify(), 0u);
}

TEST(GenerationalGC, MonotonicStrengtheningOfAnOldCellWithYoungValues) {
  // Monotonic mode strengthens reference cells in place. Box an Int
  // behind Dyn views, force minors at every allocation, and make sure
  // in-place strengthening plus the write barrier keep the cell sound.
  Grift G;
  std::string Errors;
  auto Exe = G.compile(
      "(print-int (repeat (i 0 300) (acc : Int 0)"
      "  (let ([b (box (ann i Dyn))])"
      "    (+ acc (ann (unbox (ann b (Ref Int))) Int)))))",
      CastMode::Monotonic, Errors);
  ASSERT_TRUE(Exe.has_value()) << Errors;
  FaultInjector Injector;
  Injector.MinorGCTorturePeriod = 1;
  RunResult R = Exe->run("", RunLimits(), &Injector);
  ASSERT_TRUE(R.OK) << R.Error.str();
  EXPECT_EQ(R.Output, "44850");
  EXPECT_GE(Injector.ForcedMinorCollections, 1u);
}

//===----------------------------------------------------------------------===//
// Torture: forced minors at adversarial points
//===----------------------------------------------------------------------===//

TEST(GenerationalGC, MinorTortureEveryAllocation) {
  Heap H;
  FaultInjector Injector;
  Injector.MinorGCTorturePeriod = 1;
  H.setFaultInjector(&Injector); // also turns on verify-after-GC
  Value Outer = H.allocTuple(2);
  Rooted Root(H, Outer);
  for (unsigned I = 0; I != 600; ++I) {
    Value Inner = H.allocBox(Value::fromFixnum(static_cast<int64_t>(I)));
    HeapObject *Owner = Root.get().object();
    Owner->slot(0) = Inner;
    H.recordWrite(Owner, Inner);
  }
  EXPECT_GE(Injector.ForcedMinorCollections, 590u);
  EXPECT_EQ(Root.get().object()->slot(0).object()->slot(0).asFixnum(), 599);
  EXPECT_EQ(H.verify(), 0u);
  H.setFaultInjector(nullptr);
}

TEST(GenerationalGC, MinorTortureInsideCastApplication) {
  // The cast-torture hook forces a minor inside every cast application;
  // a cast-heavy partially-typed loop must still compute the right
  // answer in every dynamic mode.
  for (CastMode Mode : {CastMode::Coercions, CastMode::TypeBased,
                        CastMode::Monotonic, CastMode::CoercionPassing}) {
    Grift G;
    std::string Errors;
    auto Exe = G.compile("(print-int (repeat (i 0 200) (acc : Int 0)"
                         "  (+ acc (ann (ann i Dyn) Int))))",
                         Mode, Errors);
    ASSERT_TRUE(Exe.has_value()) << Errors;
    FaultInjector Injector;
    Injector.MinorGCTorturePeriod = 1;
    RunResult R = Exe->run("", RunLimits(), &Injector);
    ASSERT_TRUE(R.OK) << "mode " << static_cast<int>(Mode) << ": "
                      << R.Error.str();
    EXPECT_EQ(R.Output, "19900") << "mode " << static_cast<int>(Mode);
  }
}

//===----------------------------------------------------------------------===//
// The escape hatch: nursery on vs off
//===----------------------------------------------------------------------===//

TEST(GenerationalGC, OutputAndCountersIdenticalNurseryOnAndOff) {
  // --gc-nursery=0 restores the pre-generational collector. Output and
  // the deterministic counters (casts, allocation-by-class) must not
  // depend on which collector ran.
  for (CastMode Mode : {CastMode::Coercions, CastMode::TypeBased,
                        CastMode::Monotonic, CastMode::CoercionPassing}) {
    Grift G;
    std::string Errors;
    auto Exe = G.compile(
        "(print-int (repeat (i 0 2000) (acc : Int 0)"
        "  (let ([v (make-vector 3 (ann i Dyn))])"
        "    (+ acc (ann (vector-ref v (ann 1 Int)) Int)))))",
        Mode, Errors);
    ASSERT_TRUE(Exe.has_value()) << Errors;
    RunLimits On; // small nursery: the 2000 Dyn-vectors overflow it often
    On.GCNurseryBytes = 16u * 1024;
    RunLimits Off;
    Off.GCNurseryBytes = 0;
    RunResult A = Exe->run("", On);
    RunResult B = Exe->run("", Off);
    ASSERT_TRUE(A.OK) << A.Error.str();
    ASSERT_TRUE(B.OK) << B.Error.str();
    EXPECT_EQ(A.Output, B.Output);
    EXPECT_EQ(A.Stats.CastsApplied, B.Stats.CastsApplied);
    EXPECT_EQ(A.Stats.AllocBytes, B.Stats.AllocBytes);
    for (unsigned C = 0; C != RuntimeStats::NumAllocClasses; ++C)
      EXPECT_EQ(A.Stats.AllocObjectsByClass[C], B.Stats.AllocObjectsByClass[C])
          << "class " << C << " mode " << static_cast<int>(Mode);
    // The split differs — B can only do majors — but the generational
    // run actually exercised the nursery.
    EXPECT_GE(A.Stats.MinorCollections, 1u);
    EXPECT_EQ(B.Stats.MinorCollections, 0u);
  }
}

TEST(GenerationalGC, RunResultCarriesGenerationalCounters) {
  Grift G;
  std::string Errors;
  auto Exe = G.compile("(print-int (repeat (i 0 20000) (acc : Int 0)"
                       "  (+ acc (unbox (box 1)))))",
                       CastMode::Coercions, Errors);
  ASSERT_TRUE(Exe.has_value()) << Errors;
  RunResult R = Exe->run();
  ASSERT_TRUE(R.OK) << R.Error.str();
  EXPECT_GE(R.Stats.MinorCollections, 1u);
  // Histogram totals match the pause counts.
  uint64_t MinorBuckets = 0, MajorBuckets = 0;
  for (unsigned I = 0; I != RuntimeStats::NumPauseBuckets; ++I) {
    MinorBuckets += R.Stats.MinorPauseHist[I];
    MajorBuckets += R.Stats.MajorPauseHist[I];
  }
  EXPECT_EQ(MinorBuckets, R.Stats.MinorCollections);
  EXPECT_EQ(MajorBuckets, R.Stats.Collections);
  // This workload's survivors are a handful of scaffolding objects;
  // promotion must be a sliver of total allocation.
  EXPECT_LT(R.Stats.PromotedBytes, R.Stats.AllocBytes / 10);
}

//===----------------------------------------------------------------------===//
// Live-count accounting with a pending lazy sweep (heap-limit path)
//===----------------------------------------------------------------------===//

TEST(GenerationalGC, PendingSweepDoesNotSkewLiveCounts) {
  // Regression: collect() schedules an incremental sweep; a second
  // collection arriving before the sweep finished must finish it first,
  // or the dead cells still on the sweep schedule are double-counted
  // and the heap-limit retry path rejects allocations that fit.
  Heap H;
  H.setNurserySize(0);
  Value Keep = H.allocTuple(3);
  Rooted Root(H, Keep);
  makeGarbage(H, 2000, 3);
  H.collect(); // schedules the sweep of ~2000 dead cells
  EXPECT_EQ(H.liveObjects(), 1u);
  makeGarbage(H, 500, 3);
  H.collect(); // pending sweep must be finished before accounting
  EXPECT_EQ(H.liveObjects(), 1u);
  // And under a hard limit: everything dead is reclaimable, so a
  // same-size workload keeps fitting forever.
  H.setHeapLimit(1u << 20);
  for (int Round = 0; Round != 8; ++Round)
    makeGarbage(H, 4000, 3); // ~384 KiB per round under a 1 MiB cap
  EXPECT_EQ(H.verify(), 0u);
}

TEST(GenerationalGC, IncrementalSweepSliceMakesProgress) {
  Heap H;
  H.setNurserySize(0);
  makeGarbage(H, 3000, 3);
  H.collect();
  // Slices at block granularity: each call frees at least one block's
  // worth of cells until nothing is pending, and liveObjects (exact
  // since the mark) never moves.
  size_t Live = H.liveObjects();
  for (int I = 0; I != 64; ++I)
    H.sweepSlice(256);
  EXPECT_EQ(H.liveObjects(), Live);
  // A fresh allocation after slicing reuses swept cells: no new block.
  size_t Blocks = H.poolBlocks();
  Value T = H.allocTuple(3);
  (void)T;
  EXPECT_EQ(H.poolBlocks(), Blocks);
}
