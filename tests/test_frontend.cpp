//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the parser and the gradual type checker / cast insertion.
///
//===----------------------------------------------------------------------===//
#include "frontend/Parser.h"
#include "frontend/TypeChecker.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

using namespace grift;

namespace {

class FrontendTest : public ::testing::Test {
protected:
  TypeContext Ctx;

  Program parseOk(std::string_view Source) {
    DiagnosticEngine Diags;
    auto Prog = parseProgram(Ctx, Source, Diags);
    EXPECT_TRUE(Prog.has_value()) << Diags.str();
    return Prog ? std::move(*Prog) : Program{};
  }

  void parseFails(std::string_view Source) {
    DiagnosticEngine Diags;
    auto Prog = parseProgram(Ctx, Source, Diags);
    EXPECT_TRUE(!Prog || Diags.hasErrors())
        << "expected parse failure for: " << Source;
  }

  core::CoreProgram checkOk(std::string_view Source) {
    DiagnosticEngine Diags;
    auto Prog = parseProgram(Ctx, Source, Diags);
    EXPECT_TRUE(Prog.has_value()) << Diags.str();
    auto Core = typeCheck(Ctx, *Prog, Diags);
    EXPECT_TRUE(Core.has_value()) << Diags.str();
    return Core ? std::move(*Core) : core::CoreProgram{};
  }

  void checkFails(std::string_view Source) {
    DiagnosticEngine Diags;
    auto Prog = parseProgram(Ctx, Source, Diags);
    ASSERT_TRUE(Prog.has_value()) << Diags.str();
    auto Core = typeCheck(Ctx, *Prog, Diags);
    EXPECT_FALSE(Core.has_value()) << "expected type error for: " << Source;
  }

  /// Type of the final top-level expression.
  const Type *resultType(std::string_view Source) {
    core::CoreProgram Core = checkOk(Source);
    if (Core.Defs.empty())
      return nullptr;
    return Core.Defs.back().Ty;
  }

};

} // namespace

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST_F(FrontendTest, ParseLiteralKinds) {
  Program P = parseOk("42 3.5 #t #\\a ()");
  ASSERT_EQ(P.Defines.size(), 5u);
  EXPECT_EQ(P.Defines[0].Body->Kind, ExprKind::LitInt);
  EXPECT_EQ(P.Defines[1].Body->Kind, ExprKind::LitFloat);
  EXPECT_EQ(P.Defines[2].Body->Kind, ExprKind::LitBool);
  EXPECT_EQ(P.Defines[3].Body->Kind, ExprKind::LitChar);
  EXPECT_EQ(P.Defines[4].Body->Kind, ExprKind::LitUnit);
}

TEST_F(FrontendTest, ParseDefineForms) {
  Program P = parseOk("(define x : Int 5)"
                      "(define y 6)"
                      "(define (f [a : Int]) : Int (+ a 1))"
                      "(define (g a) a)");
  ASSERT_EQ(P.Defines.size(), 4u);
  EXPECT_EQ(P.Defines[0].Name, "x");
  EXPECT_NE(P.Defines[0].Annot, nullptr);
  EXPECT_EQ(P.Defines[1].Annot, nullptr);
  EXPECT_EQ(P.Defines[2].Body->Kind, ExprKind::Lambda);
  EXPECT_NE(P.Defines[2].Body->ReturnAnnot, nullptr);
  EXPECT_EQ(P.Defines[3].Body->Params[0].Annot, nullptr);
}

TEST_F(FrontendTest, ParseLambdaAndLet) {
  Program P = parseOk("(let ([x : Int 1] [y 2]) (+ x y))");
  const Expr &Let = *P.Defines[0].Body;
  ASSERT_EQ(Let.Kind, ExprKind::Let);
  ASSERT_EQ(Let.Bindings.size(), 2u);
  EXPECT_NE(Let.Bindings[0].Annot, nullptr);
  EXPECT_EQ(Let.Bindings[1].Annot, nullptr);
}

TEST_F(FrontendTest, ParseSugar) {
  // and/or/when/unless/cond all desugar to if.
  for (const char *Source :
       {"(and #t #f)", "(or #t #f)", "(when #t 1 2)", "(unless #f 1)",
        "(cond [#t 1] [else 2])"}) {
    Program P = parseOk(Source);
    EXPECT_EQ(P.Defines[0].Body->Kind, ExprKind::If) << Source;
  }
}

TEST_F(FrontendTest, ParseRepeat) {
  Program P = parseOk("(repeat (i 0 10) (acc : Int 0) (+ acc i))");
  const Expr &R = *P.Defines[0].Body;
  ASSERT_EQ(R.Kind, ExprKind::Repeat);
  EXPECT_TRUE(R.HasAcc);
  EXPECT_EQ(R.AccName, "acc");
  EXPECT_EQ(R.SubExprs.size(), 4u);
}

TEST_F(FrontendTest, ParseErrors) {
  parseFails("(define)");
  parseFails("(if #t 1)");
  parseFails("(lambda)");
  parseFails("(tuple-proj x y)");
  parseFails("(let ([x]) x)");
  parseFails("(+ 1)");
  parseFails("(repeat (i 0) 1)");
  parseFails("(f (define x 1))");
  parseFails("(cond [else 1] [#t 2])");
  parseFails("(ann 1 NotAType)");
}

TEST_F(FrontendTest, ProgramPrintRoundTrip) {
  const char *Source = "(define (f [x : Int]) : Int (+ x 1)) (f 41)";
  Program P = parseOk(Source);
  Program P2 = parseOk(P.str());
  EXPECT_EQ(P.str(), P2.str());
}

//===----------------------------------------------------------------------===//
// Type checking
//===----------------------------------------------------------------------===//

TEST_F(FrontendTest, LiteralTypes) {
  EXPECT_EQ(resultType("42"), Ctx.integer());
  EXPECT_EQ(resultType("3.5"), Ctx.floating());
  EXPECT_EQ(resultType("#t"), Ctx.boolean());
  EXPECT_EQ(resultType("#\\a"), Ctx.character());
  EXPECT_EQ(resultType("()"), Ctx.unit());
}

TEST_F(FrontendTest, PrimTypes) {
  EXPECT_EQ(resultType("(+ 1 2)"), Ctx.integer());
  EXPECT_EQ(resultType("(< 1 2)"), Ctx.boolean());
  EXPECT_EQ(resultType("(fl+ 1.0 2.0)"), Ctx.floating());
  EXPECT_EQ(resultType("(int->float 3)"), Ctx.floating());
}

TEST_F(FrontendTest, NoNumericTower) {
  checkFails("(+ 1.0 2)");
  checkFails("(fl+ 1 2.0)");
  checkFails("(+ #t 1)");
}

TEST_F(FrontendTest, LambdaTypes) {
  EXPECT_EQ(resultType("(lambda ([x : Int]) x)"),
            Ctx.function({Ctx.integer()}, Ctx.integer()));
  // Unannotated parameters default to Dyn (fine-grained gradual typing).
  EXPECT_EQ(resultType("(lambda (x) x)"),
            Ctx.function({Ctx.dyn()}, Ctx.dyn()));
  EXPECT_EQ(resultType("((lambda ([x : Int]) : Int (+ x 1)) 41)"),
            Ctx.integer());
}

TEST_F(FrontendTest, ApplicationChecks) {
  checkFails("((lambda ([x : Int]) x) #t)");  // inconsistent argument
  checkFails("((lambda ([x : Int]) x) 1 2)"); // arity
  checkFails("(1 2)");                        // non-function
  // Dyn callee is fine (checked at run time).
  EXPECT_EQ(resultType("((lambda (f) (f 1)) (lambda (x) x))"), Ctx.dyn());
}

TEST_F(FrontendTest, CastInsertionOnDynArgument) {
  core::CoreProgram Core = checkOk("((lambda ([x : Dyn]) x) 42)");
  // 42 : Int flows into x : Dyn — exactly one cast.
  EXPECT_EQ(core::countCasts(Core), 1u);
}

TEST_F(FrontendTest, NoCastsInFullyTypedCode) {
  core::CoreProgram Core =
      checkOk("(define (f [x : Int]) : Int (+ x 1)) (f 41)");
  EXPECT_EQ(core::countCasts(Core), 0u);
}

TEST_F(FrontendTest, AppOnDynUsesAppDyn) {
  core::CoreProgram Core = checkOk("(lambda ([f : Dyn]) (f 42))");
  const core::Node &Lambda = *Core.Defs[0].Body;
  const core::Node &Body = *Lambda.Subs[0];
  // Body is a cast-to-Dyn of the AppDyn or the AppDyn itself.
  const core::Node &AppNode =
      Body.Kind == core::NodeKind::Cast ? *Body.Subs[0] : Body;
  EXPECT_EQ(AppNode.Kind, core::NodeKind::AppDyn);
}

TEST_F(FrontendTest, IfJoinUsesMeet) {
  // One branch Int, other Dyn: result Int (meet), Dyn branch gets cast.
  EXPECT_EQ(resultType("(lambda ([d : Dyn]) (if #t 1 d))"),
            Ctx.function({Ctx.dyn()}, Ctx.integer()));
  checkFails("(if #t 1 #f)");
  checkFails("(if 1 2 3)");
}

TEST_F(FrontendTest, IfCondFromDyn) {
  core::CoreProgram Core = checkOk("(lambda ([d : Dyn]) (if d 1 2))");
  EXPECT_EQ(core::countCasts(Core), 1u);
}

TEST_F(FrontendTest, MutualRecursionAtTopLevel) {
  const char *Source =
      "(define (even? [n : Int]) : Bool (if (= n 0) #t (odd? (- n 1))))"
      "(define (odd? [n : Int]) : Bool (if (= n 0) #f (even? (- n 1))))"
      "(even? 10)";
  EXPECT_EQ(resultType(Source), Ctx.boolean());
}

TEST_F(FrontendTest, LetrecRequiresLambda) {
  checkFails("(letrec ([x 5]) x)");
  EXPECT_EQ(resultType("(letrec ([f : (Int -> Int)"
                       "           (lambda ([n : Int]) : Int"
                       "             (if (= n 0) 1 (* n (f (- n 1)))))])"
                       "  (f 5))"),
            Ctx.integer());
}

TEST_F(FrontendTest, TupleTypes) {
  EXPECT_EQ(resultType("(tuple 1 2.0)"),
            Ctx.tuple({Ctx.integer(), Ctx.floating()}));
  EXPECT_EQ(resultType("(tuple-proj (tuple 1 2.0) 1)"), Ctx.floating());
  checkFails("(tuple-proj (tuple 1) 3)");
  checkFails("(tuple-proj 5 0)");
  // Projection from Dyn is allowed, checked at run time.
  EXPECT_EQ(resultType("(lambda ([d : Dyn]) (tuple-proj d 0))"),
            Ctx.function({Ctx.dyn()}, Ctx.dyn()));
}

TEST_F(FrontendTest, ReferenceTypes) {
  EXPECT_EQ(resultType("(box 5)"), Ctx.box(Ctx.integer()));
  EXPECT_EQ(resultType("(unbox (box 5))"), Ctx.integer());
  EXPECT_EQ(resultType("(box-set! (box 5) 6)"), Ctx.unit());
  checkFails("(unbox 5)");
  checkFails("(box-set! (box 5) #t)");
  EXPECT_EQ(resultType("(make-vector 3 0)"), Ctx.vect(Ctx.integer()));
  EXPECT_EQ(resultType("(vector-ref (make-vector 3 0) 0)"), Ctx.integer());
  EXPECT_EQ(resultType("(vector-length (make-vector 3 0))"), Ctx.integer());
  checkFails("(vector-ref (make-vector 3 0) #t)");
  checkFails("(vector-set! (make-vector 3 0) 0 1.5)");
}

TEST_F(FrontendTest, AnnInsertsCast) {
  core::CoreProgram Core = checkOk("(lambda ([d : Dyn]) (ann d Int))");
  EXPECT_EQ(core::countCasts(Core), 1u);
  checkFails("(ann 1 Bool)");
}

TEST_F(FrontendTest, UndefinedVariable) {
  checkFails("nope");
  checkFails("(define x : Int y)");
}

TEST_F(FrontendTest, DuplicateDefine) {
  checkFails("(define x 1) (define x 2)");
}

TEST_F(FrontendTest, RepeatTyping) {
  EXPECT_EQ(resultType("(repeat (i 0 10) (acc : Int 0) (+ acc i))"),
            Ctx.integer());
  EXPECT_EQ(resultType("(repeat (i 0 10) (+ i 1))"), Ctx.unit());
  checkFails("(repeat (i #t 10) 1)");
}

TEST_F(FrontendTest, RecursiveTypeAnnotations) {
  // A stream of integers, sieve-style.
  const char *Source =
      "(define (ones) : (Rec s (Tuple Int (-> s)))"
      "  (tuple 1 ones))"
      "(tuple-proj (ones) 0)";
  EXPECT_EQ(resultType(Source), Ctx.integer());
}

TEST_F(FrontendTest, QuicksortHeaderCast) {
  // The paper's Figure 3 pattern: declared type (Vect Int), lambda
  // parameter (Vect Dyn). The define body must contain exactly one cast.
  const char *Source =
      "(define sort! : ((Vect Int) Int Int -> ())"
      "  (lambda ([v : (Vect Dyn)] [lo : Int] [hi : Int]) ()))";
  core::CoreProgram Core = checkOk(Source);
  EXPECT_EQ(core::countCasts(Core), 1u);
  EXPECT_EQ(Core.Defs[0].Body->Kind, core::NodeKind::Cast);
}

TEST_F(FrontendTest, BlameLabelsCarryLocation) {
  core::CoreProgram Core = checkOk("(ann\n  1 Dyn)");
  const core::Node &Cast = *Core.Defs[0].Body;
  ASSERT_EQ(Cast.Kind, core::NodeKind::Cast);
  EXPECT_EQ(Cast.BlameLabel, "1:1");
}

TEST_F(FrontendTest, TimePreservesType) {
  EXPECT_EQ(resultType("(time (+ 1 2))"), Ctx.integer());
}

TEST_F(FrontendTest, BeginTypeIsLast) {
  EXPECT_EQ(resultType("(begin 1 2.0 #t)"), Ctx.boolean());
}

TEST_F(FrontendTest, InconsistentDefineAnnotations) {
  checkFails("(define x : Int #t)");
  checkFails("(define f : (Int -> Int) (lambda ([x : Bool]) x))");
  checkFails("(define f : Bool (lambda ([x : Int]) x))");
  // A Dyn annotation accepts anything.
  EXPECT_EQ(resultType("(define f : Dyn (lambda ([x : Int]) x)) 1"),
            Ctx.integer());
}

TEST_F(FrontendTest, LetrecAnnotationConsistency) {
  // Dyn annotation on a letrec binding is legal gradual typing...
  EXPECT_EQ(resultType("(letrec ([f : Dyn (lambda ([n : Int]) n)]) 5)"),
            Ctx.integer());
  // ...but an inconsistent one is a static error.
  checkFails("(letrec ([f : Int (lambda ([n : Int]) n)]) 5)");
  checkFails("(letrec ([f : (Bool -> Int) (lambda ([n : Int]) : Int n)])"
             "  (f 1))");
}

TEST_F(FrontendTest, RepeatAccumulatorConsistency) {
  checkFails("(repeat (i 0 3) (acc : Int 0) #t)");
  checkFails("(repeat (i 0 3) (acc : Int #f) 1)");
  // A Dyn accumulator absorbs both.
  EXPECT_EQ(resultType("(repeat (i 0 3) (acc : Dyn 0) #t)"), Ctx.dyn());
}

TEST_F(FrontendTest, ZeroArityFunctions) {
  EXPECT_EQ(resultType("(lambda () 5)"), Ctx.function({}, Ctx.integer()));
  EXPECT_EQ(resultType("((lambda () 5))"), Ctx.integer());
  checkFails("((lambda () 5) 1)");
  // Zero-arity through Dyn is checked at run time.
  EXPECT_EQ(resultType("((ann (lambda () 5) Dyn))"), Ctx.dyn());
}

TEST_F(FrontendTest, SingleElementTupleTypes) {
  EXPECT_EQ(resultType("(tuple 9)"), Ctx.tuple({Ctx.integer()}));
  EXPECT_EQ(resultType("(tuple-proj (tuple 9) 0)"), Ctx.integer());
}

TEST_F(FrontendTest, NestedAscriptionsCompose) {
  core::CoreProgram Core =
      checkOk("(ann (ann (ann 1 Dyn) Int) Dyn)");
  EXPECT_EQ(core::countCasts(Core), 3u);
}

TEST_F(FrontendTest, KeywordsRejectedAsVariables) {
  parseFails("(let ([define 1]) define)");
  parseFails("(+ if 1)");
  parseFails("(lambda (lambda) 1)");
}

TEST_F(FrontendTest, DeeplyNestedTypesParse) {
  EXPECT_NE(resultType("(lambda ([f : ((Vect (Tuple Int (Ref Dyn))) "
                       "-> (Rec s (Tuple Float (-> s))))]) 0)"),
            nullptr);
}

TEST_F(FrontendTest, ConditionMustBeConsistentWithBool) {
  checkFails("(if 3.5 1 2)");
  checkFails("(if () 1 2)");
  // Dyn condition is checked at run time.
  EXPECT_EQ(resultType("(lambda ([c : Dyn]) (if c 1 2))"),
            Ctx.function({Ctx.dyn()}, Ctx.integer()));
}

TEST_F(FrontendTest, VectorOfVectors) {
  EXPECT_EQ(resultType("(make-vector 2 (make-vector 3 0))"),
            Ctx.vect(Ctx.vect(Ctx.integer())));
  EXPECT_EQ(resultType("(vector-ref (make-vector 2 (make-vector 3 0)) 0)"),
            Ctx.vect(Ctx.integer()));
}

TEST_F(FrontendTest, FunctionReturningFunction) {
  EXPECT_EQ(
      resultType("(lambda ([x : Int]) (lambda ([y : Int]) (+ x y)))"),
      Ctx.function({Ctx.integer()},
                   Ctx.function({Ctx.integer()}, Ctx.integer())));
}
